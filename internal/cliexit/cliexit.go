// Package cliexit defines the exit-status convention every LICM CLI
// follows (modeled on go vet), so scripts and the CI gates can branch
// on codes without per-tool tables:
//
//	0  clean — the tool ran and found nothing to report
//	1  findings — the tool found what it exists to find (diagnostics,
//	   trace diffs, rejected certificates, lint findings)
//	2  usage — unusable flags or input; nothing was analyzed
//	3  degraded — -strict was set and the result fell below exact
//	   (supervised solves in licmq, skipped components in licmverify)
//
// The constants are plain ints so run(...) signatures stay untouched.
package cliexit

const (
	OK       = 0
	Findings = 1
	Usage    = 2
	Degraded = 3
)
