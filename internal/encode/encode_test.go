package encode

import (
	"testing"

	"licm/internal/anon"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/hierarchy"
	"licm/internal/solver"
)

// tinyData builds a handmade dataset small enough for exhaustive world
// enumeration after encoding.
func tinyData() (*dataset.Dataset, *hierarchy.Hierarchy) {
	d := &dataset.Dataset{}
	for i := 0; i < 8; i++ {
		d.Items = append(d.Items, dataset.Item{ID: int32(i), Name: "it", Price: int64(i)})
	}
	d.Trans = []dataset.Transaction{
		{ID: 0, Location: 10, Items: []int32{0, 4}},
		{ID: 1, Location: 20, Items: []int32{1, 4}},
		{ID: 2, Location: 10, Items: []int32{2, 5}},
		{ID: 3, Location: 30, Items: []int32{3, 5}},
	}
	h, err := hierarchy.Build(8, 2, nil)
	if err != nil {
		panic(err)
	}
	return d, h
}

// worldContains reports whether the instantiated TransItem rows
// include (tid, item).
func worldContains(rows [][]core.Value, tid, item int64) bool {
	for _, r := range rows {
		if r[0].Int() == tid && r[1].Int() == item {
			return true
		}
	}
	return false
}

func TestGeneralizedEncoding(t *testing.T) {
	d, h := tinyData()
	g, err := anon.KAnonymize(d, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := Generalized(g, d.Items)
	if enc.Trans.Len() != 4 {
		t.Fatalf("Trans len = %d", enc.Trans.Len())
	}
	if len(enc.Groups) == 0 {
		t.Fatal("expected generalization groups")
	}
	for _, grp := range enc.Groups {
		if grp.Kind != SubsetGE1 {
			t.Fatalf("unexpected group kind %v", grp.Kind)
		}
	}
	if enc.DB.NumVars() > 24 {
		t.Skipf("encoding too large to enumerate (%d vars)", enc.DB.NumVars())
	}
	worlds := enc.DB.EnumWorlds()
	if len(worlds) == 0 {
		t.Fatal("no valid worlds")
	}
	// Every world instantiates at least one leaf per generalized node,
	// i.e. at least one item per original generalized slot.
	for _, w := range worlds {
		rows := core.Instantiate(enc.TransItem, w)
		if len(rows) == 0 {
			t.Fatal("empty world")
		}
	}
	// The original dataset must be among the possible worlds.
	found := false
	for _, w := range worlds {
		rows := core.Instantiate(enc.TransItem, w)
		ok := true
		total := 0
		for _, tr := range d.Trans {
			for _, it := range tr.Items {
				if !worldContains(rows, int64(tr.ID), int64(it)) {
					ok = false
				}
			}
			total += len(tr.Items)
		}
		if ok && len(rows) == total {
			found = true
			break
		}
	}
	if !found {
		t.Error("original dataset is not a possible world of its own encoding")
	}
}

func TestGeneralizedCertainLeafStaysCertain(t *testing.T) {
	d, h := tinyData()
	// k=1 keeps everything exact: encoding must be fully certain.
	g, err := anon.KmAnonymize(d, h, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := Generalized(g, d.Items)
	if enc.DB.NumVars() != 0 {
		t.Fatalf("k=1 should create no variables, got %d", enc.DB.NumVars())
	}
	if enc.TransItem.Len() != 8 {
		t.Fatalf("TransItem len = %d, want 8", enc.TransItem.Len())
	}
}

func TestBipartiteEncoding(t *testing.T) {
	d, _ := tinyData()
	bg, err := anon.BipartiteAnonymize(d, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := Bipartite(d, bg)
	if enc.Graph.Len() != 8 {
		t.Fatalf("graph edges = %d, want 8", enc.Graph.Len())
	}
	// The identity mapping must be a valid world.
	assign := make([]uint8, enc.DB.NumVars())
	for _, grp := range enc.Groups {
		if grp.Kind != Permutation {
			t.Fatalf("unexpected group kind")
		}
		for i := range grp.Matrix {
			assign[grp.Matrix[i][i]] = 1
		}
	}
	enc.DB.Extend(assign)
	if !enc.DB.Valid(assign) {
		t.Fatal("identity mapping is not a valid world")
	}
	// Under the identity world, the derived TransItem equals the
	// original dataset.
	ti := enc.BuildTransItem(nil, nil)
	full := make([]uint8, enc.DB.NumVars())
	copy(full, assign)
	enc.DB.Extend(full)
	rows := core.Instantiate(ti, full)
	want := 0
	for _, tr := range d.Trans {
		for _, it := range tr.Items {
			if !worldContains(rows, int64(tr.ID), int64(it)) {
				t.Fatalf("identity world missing (%d,%d)", tr.ID, it)
			}
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("identity world has %d rows, want %d", len(rows), want)
	}
}

func TestBipartiteWorldCount(t *testing.T) {
	// Two transactions sharing no items, grouped 2x2 on both sides:
	// worlds = 2 (trans perms) x 2 x 2 (two item groups) = 8.
	d := &dataset.Dataset{
		Items: []dataset.Item{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}},
		Trans: []dataset.Transaction{
			{ID: 0, Location: 0, Items: []int32{0, 2}},
			{ID: 1, Location: 1, Items: []int32{1, 3}},
		},
	}
	bg := &anon.BipartiteGroups{
		TransGroups: [][]int{{0, 1}},
		ItemGroups:  [][]int32{{0, 1}, {2, 3}},
		Safe:        true,
	}
	enc := Bipartite(d, bg)
	worlds := enc.DB.EnumWorlds()
	if len(worlds) != 8 {
		t.Fatalf("worlds = %d, want 8", len(worlds))
	}
}

func TestSuppressedEncoding(t *testing.T) {
	d, _ := tinyData()
	// Suppress items occurring once (items 0..3 occur once; 4,5 twice).
	s, err := anon.SuppressAnonymize(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := Suppressed(s, d.Items)
	if len(enc.Groups) != 4 {
		t.Fatalf("groups = %d, want 4 (one per transaction with a suppressed slot)", len(enc.Groups))
	}
	for _, grp := range enc.Groups {
		if grp.Kind != ExactCount || grp.Count != 1 {
			t.Fatalf("unexpected group %+v", grp.Kind)
		}
		if len(grp.Vars) != 4 {
			t.Fatalf("candidate pool = %d, want 4", len(grp.Vars))
		}
	}
	if enc.DB.NumVars() > 24 {
		t.Skip("too large to enumerate")
	}
	worlds := enc.DB.EnumWorlds()
	// Each of the 4 transactions independently picks 1 of 4
	// candidates: 4^4 = 256 worlds.
	if len(worlds) != 256 {
		t.Fatalf("worlds = %d, want 256", len(worlds))
	}
}

func TestSuppressedCountBounds(t *testing.T) {
	d, _ := tinyData()
	s, err := anon.SuppressAnonymize(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := Suppressed(s, d.Items)
	// COUNT of transactions containing item 0: item 0 is suppressed;
	// up to 4 transactions could hold it, possibly none.
	sel := core.Select(enc.TransItem, func(r core.Row) bool { return r.Int("Item") == 0 })
	proj := core.Project(enc.DB, sel, "TID")
	res, err := core.CountBounds(enc.DB, proj, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Min != 0 || res.Max != 4 {
		t.Fatalf("bounds = [%d,%d], want [0,4]", res.Min, res.Max)
	}
}

func TestGeneralizedSizeLinear(t *testing.T) {
	// Appendix A: the LICM representation is O(N) — one tuple per
	// possible item and each variable appears once in a constraint.
	d, h := tinyData()
	g, err := anon.KAnonymize(d, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := Generalized(g, d.Items)
	seen := map[int32]int{}
	for _, c := range enc.DB.Constraints() {
		for _, tm := range c.Lin.Terms() {
			seen[int32(tm.Var)]++
		}
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("variable b%d appears in %d constraint terms, want 1", v, n)
		}
	}
	if enc.TransItem.Len() < 8 {
		t.Error("encoding lost tuples")
	}
}
