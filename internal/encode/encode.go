// Package encode turns anonymized set-valued data into LICM databases,
// implementing the Appendix of the paper:
//
//   - generalization (k-anonymity, k^m-anonymity): each generalized
//     item becomes one maybe-tuple per covered leaf plus a
//     "sum >= 1" cardinality constraint (Appendix A, Figure 2(c));
//   - permutation (safe (k,l) bipartite grouping): TransGroup and
//     ItemGroup relations hold one maybe-tuple per (entity, node) pair
//     within a group, under bijection constraints (Appendix B,
//     Figures 8/9); the graph itself is certain;
//   - suppression: transactions with s suppressed items get one
//     maybe-tuple per globally suppressed candidate plus a
//     "sum = s" constraint (Appendix C).
//
// Alongside the relations, encoders record the base uncertainty
// structure as sampling groups so the Monte-Carlo baseline
// (internal/mc) can draw uniform valid worlds directly.
package encode

import (
	"licm/internal/anon"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/expr"
)

// GroupKind classifies a base uncertainty group for samplers.
type GroupKind uint8

// Group kinds.
const (
	// SubsetGE1: any non-empty subset of Vars is true (generalized
	// item).
	SubsetGE1 GroupKind = iota
	// Permutation: Matrix[i][j] true iff entity i maps to slot j
	// under a uniformly unknown bijection.
	Permutation
	// ExactCount: exactly Count of Vars are true (suppression).
	ExactCount
)

// Group describes one independent unit of base uncertainty.
type Group struct {
	Kind   GroupKind
	Vars   []expr.Var   // SubsetGE1, ExactCount
	Count  int          // ExactCount
	Matrix [][]expr.Var // Permutation: len k rows × k cols
}

// Encoded is an anonymized dataset in LICM form.
type Encoded struct {
	DB *core.DB
	// Trans is the certain TRANS(TID, Location) relation.
	Trans *core.Relation
	// Items is the certain ITEM(Item, Price) relation (catalog).
	Items *core.Relation
	// TransItem is the possibilistic TRANSITEM(TID, Item) relation.
	// It is populated by the generalization and suppression encoders;
	// the bipartite encoder leaves it nil (membership must be derived
	// by joining the group relations with the graph).
	TransItem *core.Relation
	// TransGroup, ItemGroup and Graph are only set by the bipartite
	// encoder: TRANSGROUP(TID, LNodeID), ITEMGROUP(Item, RNodeID) and
	// the certain G(LNodeID, RNodeID).
	TransGroup *core.Relation
	ItemGroup  *core.Relation
	Graph      *core.Relation
	// Groups records the base uncertainty structure for samplers.
	Groups []Group
}

// itemsRelation builds the certain catalog relation.
func itemsRelation(items []dataset.Item) *core.Relation {
	r := core.NewRelation("Item", "Item", "Price")
	for _, it := range items {
		r.Insert(core.Certain, core.IntVal(int64(it.ID)), core.IntVal(it.Price))
	}
	return r
}

// Generalized encodes the output of a generalization-based anonymizer
// (Appendix A). Exact (leaf) items become certain tuples; a
// generalized node covering leaves I1..Ik becomes k maybe-tuples with
// the constraint b1 + ... + bk >= 1.
func Generalized(g *anon.Generalized, items []dataset.Item) *Encoded {
	db := core.NewDB()
	enc := &Encoded{
		DB:        db,
		Trans:     core.NewRelation("Trans", "TID", "Location"),
		Items:     itemsRelation(items),
		TransItem: core.NewRelation("TransItem", "TID", "Item"),
	}
	for _, t := range g.Trans {
		tid := core.IntVal(int64(t.ID))
		enc.Trans.Insert(core.Certain, tid, core.IntVal(t.Location))
		for _, n := range t.Nodes {
			if g.H.IsLeaf(n) {
				enc.TransItem.Insert(core.Certain, tid, core.IntVal(int64(n)))
				continue
			}
			leaves := g.H.LeavesUnder(n)
			vars := db.NewVars(len(leaves))
			for i, leaf := range leaves {
				enc.TransItem.Insert(core.Maybe(vars[i]), tid, core.IntVal(int64(leaf)))
			}
			db.AddCardinality(vars, 1, -1)
			enc.Groups = append(enc.Groups, Group{Kind: SubsetGE1, Vars: vars})
		}
	}
	return enc
}

// Bipartite encodes a safe (k,l) grouping (Appendix B). Node ids in
// the published graph reuse the original transaction/item ids — the
// anonymization hides the mapping, not the graph — so LNodeID values
// range over transaction ids and RNodeID values over item ids, with
// the true mapping an unknown bijection within each group.
func Bipartite(d *dataset.Dataset, bg *anon.BipartiteGroups) *Encoded {
	db := core.NewDB()
	enc := &Encoded{
		DB:         db,
		Trans:      core.NewRelation("Trans", "TID", "Location"),
		Items:      itemsRelation(d.Items),
		TransGroup: core.NewRelation("TransGroup", "TID", "LNodeID"),
		ItemGroup:  core.NewRelation("ItemGroup", "Item", "RNodeID"),
		Graph:      core.NewRelation("G", "LNodeID", "RNodeID"),
	}
	for _, t := range d.Trans {
		enc.Trans.Insert(core.Certain, core.IntVal(int64(t.ID)), core.IntVal(t.Location))
		for _, it := range t.Items {
			enc.Graph.Insert(core.Certain, core.IntVal(int64(t.ID)), core.IntVal(int64(it)))
		}
	}
	for _, grp := range bg.TransGroups {
		k := len(grp)
		matrix := make([][]expr.Var, k)
		for i := range grp {
			matrix[i] = db.NewVars(k)
			for j := range grp {
				enc.TransGroup.Insert(core.Maybe(matrix[i][j]),
					core.IntVal(int64(d.Trans[grp[i]].ID)),
					core.IntVal(int64(d.Trans[grp[j]].ID)))
			}
		}
		addBijection(db, matrix)
		enc.Groups = append(enc.Groups, Group{Kind: Permutation, Matrix: matrix})
	}
	for _, grp := range bg.ItemGroups {
		l := len(grp)
		matrix := make([][]expr.Var, l)
		for i := range grp {
			matrix[i] = db.NewVars(l)
			for j := range grp {
				enc.ItemGroup.Insert(core.Maybe(matrix[i][j]),
					core.IntVal(int64(grp[i])),
					core.IntVal(int64(grp[j])))
			}
		}
		addBijection(db, matrix)
		enc.Groups = append(enc.Groups, Group{Kind: Permutation, Matrix: matrix})
	}
	return enc
}

// addBijection emits the permutation constraints of Example 3 /
// Figure 9: every row and every column of the matrix sums to one.
func addBijection(db *core.DB, m [][]expr.Var) {
	k := len(m)
	for i := 0; i < k; i++ {
		db.AddExactlyOne(m[i])
		col := make([]expr.Var, k)
		for j := 0; j < k; j++ {
			col[j] = m[j][i]
		}
		db.AddExactlyOne(col)
	}
}

// Suppressed encodes suppression-based output (Appendix C): kept items
// are certain; a transaction with s > 0 suppressed items gets one
// maybe-tuple per global candidate with the cardinality constraint
// "exactly s of them".
func Suppressed(s *anon.Suppressed, items []dataset.Item) *Encoded {
	db := core.NewDB()
	enc := &Encoded{
		DB:        db,
		Trans:     core.NewRelation("Trans", "TID", "Location"),
		Items:     itemsRelation(items),
		TransItem: core.NewRelation("TransItem", "TID", "Item"),
	}
	for _, t := range s.Trans {
		tid := core.IntVal(int64(t.ID))
		enc.Trans.Insert(core.Certain, tid, core.IntVal(t.Location))
		for _, it := range t.Kept {
			enc.TransItem.Insert(core.Certain, tid, core.IntVal(int64(it)))
		}
		if t.NumSuppressed == 0 {
			continue
		}
		vars := db.NewVars(len(s.Candidates))
		for i, it := range s.Candidates {
			enc.TransItem.Insert(core.Maybe(vars[i]), tid, core.IntVal(int64(it)))
		}
		db.AddCardinality(vars, t.NumSuppressed, t.NumSuppressed)
		enc.Groups = append(enc.Groups, Group{Kind: ExactCount, Vars: vars, Count: t.NumSuppressed})
	}
	return enc
}

// BuildTransItem derives the possibilistic TRANSITEM(TID, Item)
// relation for a bipartite encoding, restricted to the given
// transaction and item subsets (nil means no restriction): transaction
// t contains item i iff for some edge (L,R) of the graph, t maps to L
// and i maps to R. It is the LICM pipeline
// π_{TID,Item}(σ(TransGroup ⋈ G ⋈ ItemGroup)) and creates the
// corresponding AND/OR lineage variables in the encoded DB.
func (enc *Encoded) BuildTransItem(tids map[int64]bool, itemIDs map[int64]bool) *core.Relation {
	tg := enc.TransGroup
	if tids != nil {
		tg = core.Select(tg, func(r core.Row) bool { return tids[r.Int("TID")] })
	}
	ig := enc.ItemGroup
	if itemIDs != nil {
		ig = core.Select(ig, func(r core.Row) bool { return itemIDs[r.Int("Item")] })
	}
	j1 := core.Join(enc.DB, tg, enc.Graph, "LNodeID") // (TID, LNodeID, RNodeID)
	j2 := core.Join(enc.DB, j1, ig, "RNodeID")        // + Item... join col order: ig has (Item, RNodeID)
	proj := core.Project(enc.DB, j2, "TID", "Item")   // OR over alternative node pairs
	proj.Name = "TransItem"
	return proj
}
