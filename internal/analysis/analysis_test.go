package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestAnalyzersOnFixtures loads the lintme fixture module and checks
// the analyzers' findings against the `// want "substr"` markers in
// the fixture sources, in both directions: every marker must be hit
// and every finding must be expected.
func TestAnalyzersOnFixtures(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "lintme"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 4 {
		t.Fatalf("loaded %d packages, want 4", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				strings.Contains(d.Message, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding at %s:%d matching %q", w.file, w.line, w.substr)
		}
	}
}

// TestAnalyzersCleanOnRepo is the self-test the CI step relies on:
// the production packages with analyzer-relevant invariants must lint
// clean.
func TestAnalyzersCleanOnRepo(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./internal/obs", "./internal/simplex", "./internal/prior", "./internal/solver")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

type want struct {
	file   string
	line   int
	substr string
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

func collectWants(dir string) ([]want, error) {
	var wants []want
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				wants = append(wants, want{file: path, line: line, substr: m[1]})
			}
		}
		return sc.Err()
	})
	if err != nil {
		return nil, err
	}
	if len(wants) == 0 {
		return nil, fmt.Errorf("no want markers found under %s", dir)
	}
	return wants, nil
}
