package analysis

import (
	"go/ast"
	"go/types"
)

// CtxCancel flags context cancel functions that escape uncalled: a
// context.CancelFunc (or CancelCauseFunc) result that is assigned to
// the blank identifier, or bound to a variable whose only subsequent
// "use" is being discarded (`_ = cancel`). Either way the derived
// context — and every timer and goroutine parked on it — leaks until
// the parent context ends.
//
// The repo's long-running surfaces (licmq -deadline, the anytime
// supervisor, the debug server) derive cancellable contexts on every
// request; one dropped cancel per solve is a slow, invisible leak the
// fault-injection harness cannot see because nothing fails.
//
// Limits, honestly: the check is per-function and syntactic about
// uses. A cancel stored into a struct field, appended to a slice, or
// captured by a closure counts as used even if nothing ever calls it,
// and a cancel bound by plain `=` to a variable declared elsewhere is
// only checked within the assigning function. It catches the two
// patterns that actually compile and actually happen — `ctx, _ :=`
// and the `_ = cancel` silencer — not every conceivable leak.
var CtxCancel = &Analyzer{
	Name: "ctxcancel",
	Doc: "context cancel functions must not escape uncalled: assigning " +
		"one to _ (or silencing it with `_ = cancel`) leaks the derived " +
		"context until its parent ends",
	Run: runCtxCancel,
}

func runCtxCancel(pass *Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCancelFlow(pass, fd.Body)
		}
	}
	return nil
}

func checkCancelFlow(pass *Pass, body *ast.BlockStmt) {
	// bound maps each cancel-func variable introduced in this body to
	// the ident that bound it; discards are `_ = v` uses that must not
	// count as real ones.
	bound := map[*types.Var]*ast.Ident{}
	realUse := map[*types.Var]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		tuple, ok := pass.TypesInfo.Types[call].Type.(*types.Tuple)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= tuple.Len() || !isCancelFunc(tuple.At(i).Type()) {
				continue
			}
			ident, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if ident.Name == "_" {
				pass.Reportf(ident.Pos(),
					"cancel function assigned to the blank identifier; the derived context leaks until its parent ends")
				continue
			}
			var v *types.Var
			if def, ok := pass.TypesInfo.Defs[ident].(*types.Var); ok {
				v = def
			} else if use, ok := pass.TypesInfo.Uses[ident].(*types.Var); ok {
				v = use
			}
			if v != nil {
				bound[v] = ident
			}
		}
		return true
	})
	if len(bound) == 0 {
		return
	}

	// Second walk: any use of a bound cancel variable outside its
	// binding ident and outside `_ = v` discards counts as real.
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if l, ok := as.Lhs[0].(*ast.Ident); ok && l.Name == "_" {
				if r, ok := as.Rhs[0].(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[r].(*types.Var); ok {
						if _, tracked := bound[v]; tracked {
							return false // skip: a discard, not a use
						}
					}
				}
			}
		}
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[ident].(*types.Var)
		if !ok {
			return true
		}
		if binder, tracked := bound[v]; tracked && ident != binder {
			realUse[v] = true
		}
		return true
	})

	for v, ident := range bound {
		if !realUse[v] {
			pass.Reportf(ident.Pos(),
				"cancel function %s is never called or passed on; the derived context leaks until its parent ends", v.Name())
		}
	}
}

// isCancelFunc reports whether t is context.CancelFunc or
// context.CancelCauseFunc.
func isCancelFunc(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return false
	}
	return obj.Name() == "CancelFunc" || obj.Name() == "CancelCauseFunc"
}
