package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Error      *struct{ Err string }
}

// Load typechecks the packages matching patterns in the module rooted
// at (or containing) dir. Only non-test GoFiles are loaded — the
// analyzers enforce invariants on production code, and skipping test
// files keeps the dependency closure to what `go list -deps` of the
// library code exports.
//
// The loader works offline and without golang.org/x/tools: one
// `go list -deps -export -json` invocation both compiles export data
// for every dependency (into the build cache) and reports where each
// file landed; the targets are then parsed and typechecked from source
// with an importer that reads that export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// Targets are the non-standard packages matching the patterns; the
	// -deps listing includes the whole closure, so resolve the pattern
	// set with a second, cheap `go list`.
	targetPaths, err := goListPaths(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	byPath := make(map[string]*listedPkg, len(listed))
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		byPath[p.ImportPath] = p
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, path := range targetPaths {
		lp, ok := byPath[path]
		if !ok {
			return nil, fmt.Errorf("package %s missing from go list -deps output", path)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", path, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  path,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	out, err := runGo(dir, args)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// goListPaths resolves patterns to import paths.
func goListPaths(dir string, patterns []string) ([]string, error) {
	out, err := runGo(dir, append([]string{"list"}, patterns...))
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, line := range strings.Split(string(out), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			paths = append(paths, line)
		}
	}
	return paths, nil
}

func runGo(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("go %s: %s", strings.Join(args, " "), msg)
	}
	return out, nil
}
