package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicCounter enforces encapsulation of atomic state: a struct
// field whose type comes from sync/atomic (atomic.Int64, atomic.Bool,
// …, or an array of them) may only be accessed from methods of the
// struct that declares it.
//
// The obs counters and the solver's cancellation/progress control
// block are mutated from multiple goroutines; their invariants (the
// nil-receiver no-op contract, monotonicity, the pairing of a counter
// with its histogram) hold only while every load and store goes
// through the owning type's methods. A stray `reg.counters["x"].v`
// from another file compiles fine and silently bypasses them.
var AtomicCounter = &Analyzer{
	Name: "atomiccounter",
	Doc: "fields of sync/atomic type may be touched only by methods " +
		"of the struct that owns them",
	Run: runAtomicCounter,
}

func runAtomicCounter(pass *Pass) error {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owner := receiverNamed(pass.TypesInfo, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pass.TypesInfo.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal || !atomicBearing(s.Obj().Type()) {
					return true
				}
				holder := namedBase(s.Recv())
				if holder == nil || holder == owner {
					return true
				}
				where := "a function"
				if owner != nil {
					where = "a method of " + owner.Obj().Name()
				}
				pass.Reportf(sel.Sel.Pos(),
					"atomic field %s.%s accessed from %s; only %s methods may touch it",
					holder.Obj().Name(), s.Obj().Name(), where, holder.Obj().Name())
				return true
			})
		}
	}
	return nil
}

// atomicBearing reports whether t is a sync/atomic type or an array
// of one.
func atomicBearing(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		return atomicBearing(arr.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

// namedBase strips pointers off t and returns the named type, if any.
func namedBase(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// receiverNamed returns the named type of fd's receiver, or nil for a
// plain function.
func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedBase(tv.Type)
}
