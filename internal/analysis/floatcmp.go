package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// FloatCmp reports == and != between floating-point values anywhere
// outside a file named tol.go.
//
// The simplex phase-1/phase-2 relaxation is the one place the solver
// leaves exact int64 arithmetic, and its history of bugs is the usual
// one: a comparison that was exact on the machine it was written on
// and wrong after a refactor reorders the operations. The repo's rule
// is that every float comparison must either use the eps-based
// helpers or live in tol.go, where the exact-comparison helpers are
// defined once, with the argument for their exactness next to them.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= on floating-point operands outside tol.go; " +
		"use the tolerance helpers (internal/simplex/tol.go) instead",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "tol.go" {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo, be.X) || isFloat(pass.TypesInfo, be.Y) {
				pass.Reportf(be.OpPos,
					"floating-point %s comparison; use a tol.go helper (exact) or an eps tolerance",
					be.Op)
			}
			return true
		})
	}
	return nil
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
