package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ObsNil enforces the obs package's central contract: a nil *Tracer,
// *Span, *Registry, *Counter, *Gauge or *Histogram is a valid no-op
// value, so every exported pointer-receiver method on those types (in
// a package named "obs") must be safe to call on a nil receiver.
//
// Sinks are deliberately outside the contract: a sink is supplied by
// the caller and nil sinks are absorbed by Tracer.Enabled before any
// sink method is reached, so sink implementations may assume a
// non-nil receiver.
//
// Instrumented code all over the solver calls these methods
// unconditionally (`opts.Metrics.Counter("x").Add(1)` with Metrics
// possibly nil); one method that forgets its guard turns "tracing
// off" into a crash — and only on the untraced path, which tests
// rarely run. The analyzer accepts the idioms the package uses:
//
//   - a leading terminating guard: `if t == nil { return ... }`, or
//     `if !t.Enabled() { return }` where Enabled is itself nil-safe
//     (statements before the guard may not mention the receiver);
//   - a `return t != nil && ...` expression (short-circuit protects
//     the right operand);
//   - wrapping receiver uses in `if t != nil { ... }`;
//   - pure delegation to a nil-safe method: `c.Add(1)`,
//     `snap := r.Snapshot()`.
//
// Unexported methods are classified (so delegation chains resolve)
// but only exported methods are reported: unexported helpers like
// Tracer.start are allowed to assume a non-nil receiver established
// by their exported callers.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc: "exported pointer-receiver methods on obs instrument types " +
		"must guard against a nil receiver before dereferencing it",
	Run: runObsNil,
}

// nilContractTypes are the obs types whose nil pointer is documented
// as a valid no-op instrument.
var nilContractTypes = map[string]bool{
	"Tracer":    true,
	"Span":      true,
	"Registry":  true,
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runObsNil(pass *Pass) error {
	if pass.Pkg.Name() != "obs" {
		return nil
	}
	c := &nilChecker{
		pass:  pass,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func]nilSafety),
	}
	var methods []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
				methods = append(methods, fd)
			}
		}
	}
	for _, fd := range methods {
		if !fd.Name.IsExported() || !pointerReceiver(pass.TypesInfo, fd) {
			continue
		}
		if named := receiverNamed(pass.TypesInfo, fd); named == nil || !nilContractTypes[named.Obj().Name()] {
			continue
		}
		fn := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if c.nilSafe(fn) {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"exported method %s may dereference a nil receiver: start with a nil guard or delegate to a guarded method (use at %s)",
			fn.Name(), pass.Fset.Position(c.firstUnsafe[fn]))
	}
	return nil
}

type nilSafety int

const (
	safetyUnknown nilSafety = iota
	safetyChecking
	safetySafe
	safetyUnsafe
)

type nilChecker struct {
	pass        *Pass
	decls       map[*types.Func]*ast.FuncDecl
	memo        map[*types.Func]nilSafety
	firstUnsafe map[*types.Func]token.Pos
}

// nilSafe reports whether calling fn on a nil receiver is safe.
func (c *nilChecker) nilSafe(fn *types.Func) bool {
	switch c.memo[fn] {
	case safetySafe, safetyChecking:
		// In-progress means mutual recursion; assume safe to break the
		// cycle — an actual crash cycle would need an unguarded deref,
		// which its own frame reports.
		return true
	case safetyUnsafe:
		return false
	}
	c.memo[fn] = safetyChecking
	ok := c.check(fn)
	if ok {
		c.memo[fn] = safetySafe
	} else {
		c.memo[fn] = safetyUnsafe
	}
	return ok
}

func (c *nilChecker) check(fn *types.Func) bool {
	fd := c.decls[fn]
	if fd == nil || fd.Body == nil {
		return false // cross-package or bodyless: assume unsafe
	}
	if !pointerReceiver(c.pass.TypesInfo, fd) {
		return true // value receiver: a nil pointer never reaches it
	}
	recv := receiverObject(c.pass.TypesInfo, fd)
	if recv == nil {
		return true // unnamed receiver cannot be dereferenced
	}
	m := &methodCheck{c: c, recv: recv}
	// A leading terminating guard makes everything after it safe.
	for _, st := range fd.Body.List {
		if !m.mentionsRecv(st) {
			continue
		}
		if ifs, ok := st.(*ast.IfStmt); ok && ifs.Init == nil &&
			m.guardCond(ifs.Cond) && terminates(ifs.Body) {
			return true
		}
		break
	}
	// Otherwise every receiver dereference must be individually
	// protected (nil-comparison short-circuit, `if recv != nil` block,
	// or delegation to a nil-safe method).
	m.walk(fd.Body, false)
	if m.unsafeAt.IsValid() {
		if c.firstUnsafe == nil {
			c.firstUnsafe = make(map[*types.Func]token.Pos)
		}
		c.firstUnsafe[fn] = m.unsafeAt
		return false
	}
	return true
}

type methodCheck struct {
	c        *nilChecker
	recv     types.Object
	unsafeAt token.Pos
}

func (m *methodCheck) isRecv(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && m.c.pass.TypesInfo.Uses[id] == m.recv
}

func (m *methodCheck) mentionsRecv(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && m.c.pass.TypesInfo.Uses[id] == m.recv {
			found = true
		}
		return !found
	})
	return found
}

// guardCond recognizes conditions that are false only when the
// receiver is usable: `recv == nil`, `!recv.M()` for nil-safe M, and
// `||` combinations thereof.
func (m *methodCheck) guardCond(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if x.Op == token.LOR {
			return m.guardCond(x.X) || m.guardCond(x.Y)
		}
		return x.Op == token.EQL && m.nilComparison(x)
	case *ast.UnaryExpr:
		return x.Op == token.NOT && m.nilSafeCall(x.X)
	}
	return false
}

// nilComparison reports whether e compares the receiver against nil.
func (m *methodCheck) nilComparison(e *ast.BinaryExpr) bool {
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil" && m.c.pass.TypesInfo.Uses[id] == types.Universe.Lookup("nil")
	}
	return (m.isRecv(e.X) && isNil(e.Y)) || (m.isRecv(e.Y) && isNil(e.X))
}

// nilSafeCall reports whether e is a call recv.M(...) with M nil-safe.
func (m *methodCheck) nilSafeCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !m.isRecv(sel.X) {
		return false
	}
	callee, ok := m.c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && m.c.nilSafe(callee)
}

// nonNilConjunct reports whether e contains a `recv != nil` conjunct
// at the top of a && chain (so code guarded by e sees a non-nil
// receiver).
func (m *methodCheck) nonNilConjunct(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if x.Op == token.LAND {
			return m.nonNilConjunct(x.X) || m.nonNilConjunct(x.Y)
		}
		return x.Op == token.NEQ && m.nilComparison(x)
	}
	return false
}

// eqNilDisjunct: `recv == nil` at the top of a || chain (the else
// branch, or the right operand, sees a non-nil receiver).
func (m *methodCheck) eqNilDisjunct(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.BinaryExpr:
		if x.Op == token.LOR {
			return m.eqNilDisjunct(x.X) || m.eqNilDisjunct(x.Y)
		}
		return x.Op == token.EQL && m.nilComparison(x)
	}
	return false
}

// walk records the first unprotected receiver dereference under n.
// protected means a dominating check already established the receiver
// is non-nil.
func (m *methodCheck) walk(n ast.Node, protected bool) {
	if n == nil || m.unsafeAt.IsValid() {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if m.unsafeAt.IsValid() {
			return false
		}
		switch v := x.(type) {
		case *ast.IfStmt:
			if v.Init != nil {
				m.walk(v.Init, protected)
			}
			m.walk(v.Cond, protected)
			m.walk(v.Body, protected || m.nonNilConjunct(v.Cond))
			if v.Else != nil {
				m.walk(v.Else, protected || m.eqNilDisjunct(v.Cond))
			}
			return false
		case *ast.BinaryExpr:
			switch v.Op {
			case token.LAND:
				m.walk(v.X, protected)
				m.walk(v.Y, protected || m.nonNilConjunct(v.X))
				return false
			case token.LOR:
				m.walk(v.X, protected)
				m.walk(v.Y, protected || m.eqNilDisjunct(v.X))
				return false
			case token.EQL, token.NEQ:
				if m.nilComparison(v) {
					return false // comparing recv to nil is always safe
				}
			}
		case *ast.CallExpr:
			if !protected && m.nilSafeCall(v) {
				for _, a := range v.Args {
					m.walk(a, protected)
				}
				return false
			}
		case *ast.SelectorExpr:
			if !protected && m.isRecv(v.X) {
				m.unsafeAt = v.Sel.Pos()
				return false
			}
		case *ast.StarExpr:
			if !protected && m.isRecv(v.X) {
				m.unsafeAt = v.Star
				return false
			}
		case *ast.IndexExpr:
			if !protected && m.isRecv(v.X) {
				m.unsafeAt = v.Lbrack
				return false
			}
		}
		return true
	})
}

// terminates reports whether a block always transfers control out
// (return, panic, or an unlabeled branch statement at its end).
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func pointerReceiver(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := info.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	_, isPtr := tv.Type.(*types.Pointer)
	return isPtr
}

func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return info.Defs[names[0]]
}
