// Package ctx exercises the ctxcancel analyzer: cancel functions that
// escape uncalled versus the legitimate ways to handle one.
package ctx

import (
	"context"
	"time"
)

func watch(ctx context.Context) { <-ctx.Done() }

// discardTimeout drops the cancel on the floor with the blank
// identifier — the timer behind WithTimeout leaks until it fires.
func discardTimeout() context.Context {
	ctx, _ := context.WithTimeout(context.Background(), time.Second) // want "blank identifier"
	return ctx
}

// silenced binds the cancel but only ever discards it, which
// compiles (unlike simply not using it) and leaks just the same.
func silenced() context.Context {
	ctx, cancel := context.WithCancel(context.Background()) // want "never called or passed on"
	_ = cancel
	return ctx
}

// silencedCause does the same through WithCancelCause.
func silencedCause() context.Context {
	ctx, cancel := context.WithCancelCause(context.Background()) // want "never called or passed on"
	_ = cancel
	return ctx
}

// deferred is the canonical correct shape.
func deferred() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watch(ctx)
}

// handedOff returns the pair without ever binding the cancel; the
// caller owns it.
func handedOff() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// captured passes the cancel into a goroutine that calls it — a real
// use even though this function never invokes it directly.
func captured() {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		defer cancel()
		watch(ctx)
	}()
}

// rebound assigns into a predeclared variable and defers it later.
func rebound() {
	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if time.Now().Unix()%2 == 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Second)
	}
	defer cancel()
	watch(ctx)
}
