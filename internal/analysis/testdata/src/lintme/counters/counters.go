// Package counters is an atomiccounter fixture: atomic struct fields
// accessed outside the owning type's methods must be reported.
package counters

import "sync/atomic"

type Stats struct {
	hits   atomic.Int64
	shards [4]atomic.Int64
	name   string
}

// Hit is a method of Stats: direct atomic field access is allowed.
func (s *Stats) Hit(shard int) {
	s.hits.Add(1)
	s.shards[shard].Add(1)
}

// Total is also fine.
func (s *Stats) Total() int64 { return s.hits.Load() }

// Name touches a non-atomic field from a method; never reported.
func (s *Stats) Name() string { return s.name }

// Reset is a free function reaching into the atomic field.
func Reset(s *Stats) {
	s.hits.Store(0) // want "atomic field Stats.hits accessed from a function"
}

type wrapper struct{ st *Stats }

// Drain is a method of another type touching Stats internals.
func (w *wrapper) Drain() int64 {
	return w.st.hits.Load() // want "atomic field Stats.hits accessed from a method of wrapper"
}

// PeekShards reads the atomic array field from outside.
func PeekShards(s *Stats) int64 {
	return s.shards[0].Load() // want "atomic field Stats.shards accessed from a function"
}

// NameOf reads a plain field from outside; not reported.
func NameOf(s *Stats) string { return s.name }
