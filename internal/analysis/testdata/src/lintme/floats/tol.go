package floats

// tol.go is exempt from floatcmp: exact comparisons are allowed here.

func exactlyZero(v float64) bool { return v == 0 }
