// Package floats is a floatcmp fixture: every comparison marked
// "want" below must be reported, everything else must not.
package floats

type vec struct{ x, y float64 }

func Bad(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func BadNeq(a float32, b float32) bool {
	return a != b // want "floating-point != comparison"
}

func BadLiteral(a float64) bool {
	return a == 0.5 // want "floating-point == comparison"
}

func BadField(v vec) bool {
	return v.x != v.y // want "floating-point != comparison"
}

func BadNamed() bool {
	type temp float64
	var t temp
	return t == 1 // want "floating-point == comparison"
}

func GoodInt(a, b int) bool       { return a == b }
func GoodString(a, b string) bool { return a == b }

func GoodOrdered(a, b float64) bool { return a < b || a > b }

func GoodEps(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
