// Package obs is an obsnil fixture mirroring the real obs package's
// shapes: guarded methods in their several idioms, delegation chains,
// and methods that forget the guard.
package obs

// Tracer is a nil-contract type (the analyzer keys on the name).
type Tracer struct {
	sink  func(string)
	count int64
}

// Enabled uses the short-circuit return idiom.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Emit delegates to a guarded unexported helper.
func (t *Tracer) Emit(name string) { t.emit(name) }

func (t *Tracer) emit(name string) {
	if !t.Enabled() {
		return
	}
	t.count++
	t.sink(name)
}

// BadDirect dereferences with no guard at all.
func (t *Tracer) BadDirect(name string) { // want "BadDirect may dereference a nil receiver"
	t.sink(name)
}

// BadLateGuard dereferences before its guard.
func (t *Tracer) BadLateGuard() int64 { // want "BadLateGuard may dereference a nil receiver"
	n := t.count
	if t == nil {
		return 0
	}
	return n
}

// GoodLateGuard's guard is not the first statement, but no receiver
// use precedes it.
func (t *Tracer) GoodLateGuard() int64 {
	total := int64(0)
	if t == nil {
		return total
	}
	return total + t.count
}

// GoodWrapped wraps every use in a non-nil check.
func (t *Tracer) GoodWrapped(name string) {
	if t != nil {
		t.sink(name)
	}
}

// BadWrongGuard guards the wrong branch.
func (t *Tracer) BadWrongGuard(name string) { // want "BadWrongGuard may dereference a nil receiver"
	if t == nil {
		t.sink(name)
	}
}

// Counter is also a nil-contract type.
type Counter struct{ v int64 }

// Add has the classic wrap guard.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Inc delegates to the guarded Add.
func (c *Counter) Inc() { c.Add(1) }

// BadInc delegates to an unguarded helper.
func (c *Counter) BadInc() { // want "BadInc may dereference a nil receiver"
	c.bump()
}

func (c *Counter) bump() { c.v++ }

// Value guards with an early return.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Sink is NOT a nil-contract type: unguarded methods are fine.
type Sink struct{ out []string }

// Push has no guard and must not be reported.
func (s *Sink) Push(line string) { s.out = append(s.out, line) }
