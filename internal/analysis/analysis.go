// Package analysis is a minimal, dependency-free reimplementation of
// the go/analysis vocabulary (Analyzer, Pass, Diagnostic) plus a
// package loader, just large enough to host this repository's custom
// lints (floatcmp, obsnil, atomiccounter, ctxcancel — see their files
// for what they enforce and why the solver needs them).
//
// golang.org/x/tools is deliberately not imported: the module has no
// external dependencies, and the subset of the framework these
// analyzers need — parsed files, full type information and a reporting
// channel — is small. Packages are typechecked from source; their
// imports are satisfied from the compiler's export data, located by
// shelling out to `go list -deps -export` (see load.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one lint: a name, a documentation string, and a Run
// function invoked once per package.
type Analyzer struct {
	// Name identifies the analyzer in reports and on the licmlint
	// command line.
	Name string
	// Doc is a one-paragraph description, shown by licmlint -help.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the
// accumulated diagnostics sorted by file position. A failing analyzer
// aborts with its error (analyzer bugs should be loud, not silently
// produce a clean report).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report:    func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the repository's analyzers in reporting order.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, ObsNil, AtomicCounter, CtxCancel}
}
