// Package expr provides sparse integer linear expressions and linear
// constraints over binary variables. It is the shared vocabulary between
// the LICM data model (internal/core), which accumulates constraints
// while translating relational operators, and the BIP solver
// (internal/solver), which optimizes over them.
//
// Variables are identified by dense non-negative integer ids allocated
// by the owner of the constraint store (a core.DB or a solver.Problem).
// All coefficients and right-hand sides are integers: every constraint
// produced by the LICM operator translations in the paper is integral.
package expr

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies a binary decision variable. Ids are dense and
// non-negative; the zero value is a valid variable id.
type Var int32

// Term is a single coefficient–variable product inside a linear
// expression.
type Term struct {
	Var  Var
	Coef int64
}

// Lin is a sparse integer linear expression c1*b1 + c2*b2 + ... + const.
// The zero value is the empty expression (constant 0). Lin values are
// normalized: terms are sorted by variable id, and no term has a zero
// coefficient or a duplicated variable.
type Lin struct {
	terms []Term
	konst int64
}

// NewLin returns an expression built from the given terms plus an
// additive constant. Duplicate variables are merged and zero
// coefficients dropped.
func NewLin(konst int64, terms ...Term) Lin {
	l := Lin{konst: konst, terms: append([]Term(nil), terms...)}
	l.normalize()
	return l
}

// RawLin wraps terms into an expression without normalizing, trusting
// the caller that they are sorted by variable id with no duplicate or
// zero-coefficient entries; the slice is taken over, not copied. It
// exists for decoders that already hold normalized data and for tests
// that need to build deliberately malformed expressions — misuse is
// caught by solver.Problem.Validate and check.Check, not here.
func RawLin(konst int64, terms []Term) Lin {
	return Lin{terms: terms, konst: konst}
}

// Sum returns b1 + b2 + ... + bn with unit coefficients.
func Sum(vars ...Var) Lin {
	terms := make([]Term, 0, len(vars))
	for _, v := range vars {
		terms = append(terms, Term{Var: v, Coef: 1})
	}
	l := Lin{terms: terms}
	l.normalize()
	return l
}

func (l *Lin) normalize() {
	sort.Slice(l.terms, func(i, j int) bool { return l.terms[i].Var < l.terms[j].Var })
	out := l.terms[:0]
	for _, t := range l.terms {
		if n := len(out); n > 0 && out[n-1].Var == t.Var {
			out[n-1].Coef += t.Coef
			continue
		}
		out = append(out, t)
	}
	// Drop zero coefficients produced by cancellation.
	w := 0
	for _, t := range out {
		if t.Coef != 0 {
			out[w] = t
			w++
		}
	}
	l.terms = out[:w]
}

// Terms returns the normalized terms of the expression. The returned
// slice is owned by the expression and must not be modified.
func (l Lin) Terms() []Term { return l.terms }

// Const returns the additive constant of the expression.
func (l Lin) Const() int64 { return l.konst }

// Len returns the number of variables with non-zero coefficient.
func (l Lin) Len() int { return len(l.terms) }

// IsConst reports whether the expression has no variable terms.
func (l Lin) IsConst() bool { return len(l.terms) == 0 }

// Coef returns the coefficient of v (zero if absent).
func (l Lin) Coef(v Var) int64 {
	i := sort.Search(len(l.terms), func(i int) bool { return l.terms[i].Var >= v })
	if i < len(l.terms) && l.terms[i].Var == v {
		return l.terms[i].Coef
	}
	return 0
}

// Add returns l + m.
func (l Lin) Add(m Lin) Lin {
	terms := make([]Term, 0, len(l.terms)+len(m.terms))
	terms = append(terms, l.terms...)
	terms = append(terms, m.terms...)
	r := Lin{terms: terms, konst: l.konst + m.konst}
	r.normalize()
	return r
}

// AddTerm returns l + coef*v.
func (l Lin) AddTerm(v Var, coef int64) Lin {
	terms := make([]Term, 0, len(l.terms)+1)
	terms = append(terms, l.terms...)
	terms = append(terms, Term{Var: v, Coef: coef})
	r := Lin{terms: terms, konst: l.konst}
	r.normalize()
	return r
}

// AddConst returns l + k.
func (l Lin) AddConst(k int64) Lin {
	return Lin{terms: l.terms, konst: l.konst + k}
}

// Scale returns k*l.
func (l Lin) Scale(k int64) Lin {
	if k == 0 {
		return Lin{}
	}
	terms := make([]Term, len(l.terms))
	for i, t := range l.terms {
		terms[i] = Term{Var: t.Var, Coef: t.Coef * k}
	}
	return Lin{terms: terms, konst: l.konst * k}
}

// Neg returns -l.
func (l Lin) Neg() Lin { return l.Scale(-1) }

// Eval evaluates the expression under an assignment of binary values.
// The assignment function must be defined for every variable in l.
func (l Lin) Eval(value func(Var) bool) int64 {
	s := l.konst
	for _, t := range l.terms {
		if value(t.Var) {
			s += t.Coef
		}
	}
	return s
}

// Bounds returns the minimum and maximum value the expression can take
// over all 0/1 assignments, ignoring constraints.
func (l Lin) Bounds() (lo, hi int64) {
	lo, hi = l.konst, l.konst
	for _, t := range l.terms {
		if t.Coef > 0 {
			hi += t.Coef
		} else {
			lo += t.Coef
		}
	}
	return lo, hi
}

// MaxVar returns the largest variable id used, or -1 if none.
func (l Lin) MaxVar() Var {
	if len(l.terms) == 0 {
		return -1
	}
	return l.terms[len(l.terms)-1].Var
}

// String renders the expression in a human-readable form such as
// "2*b3 - b7 + 1".
func (l Lin) String() string {
	if len(l.terms) == 0 {
		return fmt.Sprintf("%d", l.konst)
	}
	var sb strings.Builder
	for i, t := range l.terms {
		c := t.Coef
		switch {
		case i == 0 && c < 0:
			sb.WriteString("-")
			c = -c
		case i > 0 && c < 0:
			sb.WriteString(" - ")
			c = -c
		case i > 0:
			sb.WriteString(" + ")
		}
		if c != 1 {
			fmt.Fprintf(&sb, "%d*", c)
		}
		fmt.Fprintf(&sb, "b%d", t.Var)
	}
	if l.konst > 0 {
		fmt.Fprintf(&sb, " + %d", l.konst)
	} else if l.konst < 0 {
		fmt.Fprintf(&sb, " - %d", -l.konst)
	}
	return sb.String()
}

// Op is a comparison operator in a linear constraint.
type Op int8

// The three operators allowed by the LICM model (Definition 3).
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // ==
)

// String returns the usual symbol for the operator.
func (op Op) String() string {
	switch op {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// Constraint is a linear constraint  lin op rhs  over binary variables,
// the building block of an LICM database's constraint set C.
type Constraint struct {
	Lin Lin
	Op  Op
	RHS int64
}

// NewConstraint builds a constraint, folding the expression's additive
// constant into the right-hand side so that Lin.Const() == 0.
func NewConstraint(lin Lin, op Op, rhs int64) Constraint {
	c := Constraint{Lin: lin, Op: op, RHS: rhs}
	if k := c.Lin.Const(); k != 0 {
		c.Lin = c.Lin.AddConst(-k)
		c.RHS -= k
	}
	return c
}

// Holds reports whether the constraint is satisfied under the given
// assignment.
func (c Constraint) Holds(value func(Var) bool) bool {
	v := c.Lin.Eval(value)
	switch c.Op {
	case LE:
		return v <= c.RHS
	case GE:
		return v >= c.RHS
	case EQ:
		return v == c.RHS
	default:
		return false
	}
}

// Trivial reports whether the constraint holds for every 0/1
// assignment.
func (c Constraint) Trivial() bool {
	lo, hi := c.Lin.Bounds()
	switch c.Op {
	case LE:
		return hi <= c.RHS
	case GE:
		return lo >= c.RHS
	case EQ:
		return lo == c.RHS && hi == c.RHS
	default:
		return false
	}
}

// Infeasible reports whether the constraint fails for every 0/1
// assignment.
func (c Constraint) Infeasible() bool {
	lo, hi := c.Lin.Bounds()
	switch c.Op {
	case LE:
		return lo > c.RHS
	case GE:
		return hi < c.RHS
	case EQ:
		return c.RHS < lo || c.RHS > hi
	default:
		return false
	}
}

// String renders the constraint, e.g. "b1 + b2 + b3 >= 1".
func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %d", c.Lin, c.Op, c.RHS)
}
