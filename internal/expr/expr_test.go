package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewLinMergesAndSorts(t *testing.T) {
	l := NewLin(2, Term{Var: 5, Coef: 1}, Term{Var: 1, Coef: 3}, Term{Var: 5, Coef: 2})
	want := []Term{{Var: 1, Coef: 3}, {Var: 5, Coef: 3}}
	got := l.Terms()
	if len(got) != len(want) {
		t.Fatalf("terms = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("term %d = %v, want %v", i, got[i], want[i])
		}
	}
	if l.Const() != 2 {
		t.Errorf("const = %d, want 2", l.Const())
	}
}

func TestNewLinDropsZeroCoefficients(t *testing.T) {
	l := NewLin(0, Term{Var: 3, Coef: 2}, Term{Var: 3, Coef: -2}, Term{Var: 4, Coef: 0})
	if l.Len() != 0 || !l.IsConst() {
		t.Fatalf("expected empty expression, got %v", l)
	}
}

func TestSum(t *testing.T) {
	l := Sum(2, 0, 1)
	if l.Len() != 3 || l.Coef(0) != 1 || l.Coef(1) != 1 || l.Coef(2) != 1 {
		t.Fatalf("Sum(2,0,1) = %v", l)
	}
}

func TestCoefAbsent(t *testing.T) {
	l := Sum(1, 3)
	if c := l.Coef(2); c != 0 {
		t.Errorf("Coef(2) = %d, want 0", c)
	}
}

func TestAdd(t *testing.T) {
	a := NewLin(1, Term{Var: 0, Coef: 2}, Term{Var: 1, Coef: -1})
	b := NewLin(3, Term{Var: 1, Coef: 1}, Term{Var: 2, Coef: 5})
	c := a.Add(b)
	if c.Const() != 4 || c.Coef(0) != 2 || c.Coef(1) != 0 || c.Coef(2) != 5 || c.Len() != 2 {
		t.Fatalf("Add = %v", c)
	}
}

func TestAddTermAndConst(t *testing.T) {
	l := Sum(0).AddTerm(1, 4).AddConst(-2)
	if l.Coef(0) != 1 || l.Coef(1) != 4 || l.Const() != -2 {
		t.Fatalf("got %v", l)
	}
	l = l.AddTerm(1, -4)
	if l.Len() != 1 {
		t.Fatalf("cancellation failed: %v", l)
	}
}

func TestScaleNeg(t *testing.T) {
	l := NewLin(1, Term{Var: 0, Coef: 2})
	n := l.Neg()
	if n.Const() != -1 || n.Coef(0) != -2 {
		t.Fatalf("Neg = %v", n)
	}
	if z := l.Scale(0); z.Len() != 0 || z.Const() != 0 {
		t.Fatalf("Scale(0) = %v", z)
	}
}

func TestEval(t *testing.T) {
	l := NewLin(-1, Term{Var: 0, Coef: 2}, Term{Var: 1, Coef: 3})
	val := func(v Var) bool { return v == 1 }
	if got := l.Eval(val); got != 2 {
		t.Errorf("Eval = %d, want 2", got)
	}
}

func TestBounds(t *testing.T) {
	l := NewLin(1, Term{Var: 0, Coef: 2}, Term{Var: 1, Coef: -3})
	lo, hi := l.Bounds()
	if lo != -2 || hi != 3 {
		t.Errorf("Bounds = (%d,%d), want (-2,3)", lo, hi)
	}
}

func TestMaxVar(t *testing.T) {
	if v := (Lin{}).MaxVar(); v != -1 {
		t.Errorf("empty MaxVar = %d, want -1", v)
	}
	if v := Sum(4, 9, 2).MaxVar(); v != 9 {
		t.Errorf("MaxVar = %d, want 9", v)
	}
}

func TestString(t *testing.T) {
	l := NewLin(-1, Term{Var: 0, Coef: 1}, Term{Var: 2, Coef: -2})
	if got := l.String(); got != "b0 - 2*b2 - 1" {
		t.Errorf("String = %q", got)
	}
	if got := (Lin{konst: 3}).String(); got != "3" {
		t.Errorf("const String = %q", got)
	}
	c := NewConstraint(Sum(1, 2), GE, 1)
	if got := c.String(); got != "b1 + b2 >= 1" {
		t.Errorf("constraint String = %q", got)
	}
}

func TestNewConstraintFoldsConstant(t *testing.T) {
	c := NewConstraint(NewLin(2, Term{Var: 0, Coef: 1}), LE, 5)
	if c.Lin.Const() != 0 || c.RHS != 3 {
		t.Fatalf("constant not folded: %v", c)
	}
}

func TestConstraintHolds(t *testing.T) {
	all := func(Var) bool { return true }
	none := func(Var) bool { return false }
	cases := []struct {
		c          Constraint
		wantAll    bool
		wantNone   bool
		wantString string
	}{
		{NewConstraint(Sum(0, 1), GE, 1), true, false, "b0 + b1 >= 1"},
		{NewConstraint(Sum(0, 1), LE, 1), false, true, "b0 + b1 <= 1"},
		{NewConstraint(Sum(0, 1), EQ, 2), true, false, "b0 + b1 = 2"},
	}
	for _, tc := range cases {
		if got := tc.c.Holds(all); got != tc.wantAll {
			t.Errorf("%v Holds(all) = %v, want %v", tc.c, got, tc.wantAll)
		}
		if got := tc.c.Holds(none); got != tc.wantNone {
			t.Errorf("%v Holds(none) = %v, want %v", tc.c, got, tc.wantNone)
		}
		if got := tc.c.String(); got != tc.wantString {
			t.Errorf("String = %q, want %q", got, tc.wantString)
		}
	}
}

func TestTrivialInfeasible(t *testing.T) {
	if !NewConstraint(Sum(0, 1), LE, 2).Trivial() {
		t.Error("b0+b1 <= 2 should be trivial")
	}
	if !NewConstraint(Sum(0, 1), GE, 3).Infeasible() {
		t.Error("b0+b1 >= 3 should be infeasible")
	}
	if NewConstraint(Sum(0, 1), EQ, 1).Trivial() {
		t.Error("b0+b1 = 1 should not be trivial")
	}
	if NewConstraint(Sum(0, 1), EQ, 1).Infeasible() {
		t.Error("b0+b1 = 1 should not be infeasible")
	}
	if !NewConstraint(Lin{}, EQ, 1).Infeasible() {
		t.Error("0 = 1 should be infeasible")
	}
}

// randomLin builds a random expression over variables [0,8).
func randomLin(r *rand.Rand) Lin {
	n := r.Intn(6)
	terms := make([]Term, n)
	for i := range terms {
		terms[i] = Term{Var: Var(r.Intn(8)), Coef: int64(r.Intn(9) - 4)}
	}
	return NewLin(int64(r.Intn(7)-3), terms...)
}

// TestQuickEvalMatchesTermSum checks that Eval agrees with a direct
// term-by-term evaluation on random expressions and assignments.
func TestQuickEvalMatchesTermSum(t *testing.T) {
	f := func(seed int64, mask uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLin(r)
		val := func(v Var) bool { return mask&(1<<uint(v)) != 0 }
		want := l.Const()
		for _, tm := range l.Terms() {
			if val(tm.Var) {
				want += tm.Coef
			}
		}
		return l.Eval(val) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundsContainEval checks lo <= Eval <= hi for random
// expressions and assignments.
func TestQuickBoundsContainEval(t *testing.T) {
	f := func(seed int64, mask uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := randomLin(r)
		lo, hi := l.Bounds()
		v := l.Eval(func(v Var) bool { return mask&(1<<uint(v)) != 0 })
		return lo <= v && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickAddEval checks (a+b).Eval == a.Eval + b.Eval.
func TestQuickAddEval(t *testing.T) {
	f := func(seed int64, mask uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomLin(r), randomLin(r)
		val := func(v Var) bool { return mask&(1<<uint(v)) != 0 }
		return a.Add(b).Eval(val) == a.Eval(val)+b.Eval(val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickScaleEval checks (k*a).Eval == k * a.Eval.
func TestQuickScaleEval(t *testing.T) {
	f := func(seed int64, mask uint8, k int8) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomLin(r)
		val := func(v Var) bool { return mask&(1<<uint(v)) != 0 }
		return a.Scale(int64(k)).Eval(val) == int64(k)*a.Eval(val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
