package workload

// Exact float comparisons for the licm-load/1 validator live here
// (the floatcmp lint confines ==/!= on floats to tol.go files). Both
// uses are genuinely exact: an unproven record's qerr is the literal
// constant 0, and an exact solve against an exact reference has
// lb == ub == gt, so qerror computes (x+1)/(x+1) — exactly 1.0 in
// IEEE arithmetic, with no intervening operations to round.

// floatEq reports a == b.
func floatEq(a, b float64) bool { return a == b }
