package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"licm/internal/bench"
)

// stubAnswer builds a deterministic answer source: every 5th query
// errors, every 3rd degrades to a shed sampled answer, the rest are
// exact. The latency is fixed so quantiles are predictable.
func stubAnswer(latency time.Duration) func(Spec) (*Answer, error) {
	var n atomic.Int64
	return func(sp Spec) (*Answer, error) {
		i := n.Add(1)
		time.Sleep(latency)
		if i%5 == 0 {
			return nil, fmt.Errorf("stub: query %d refused", i)
		}
		a := &Answer{Quality: "exact", RequestID: fmt.Sprintf("stub-%d", i), LatencyNs: int64(latency)}
		if i%3 == 0 {
			a.Quality = "sampled"
			a.Shed = true
		}
		return a, nil
	}
}

func TestLoadGenRun(t *testing.T) {
	specs := GenerateSpecs(10, 7, 1000, 40)
	gen := LoadGen{Answer: stubAnswer(time.Millisecond), Concurrency: 4, Repeat: 3}
	p, err := gen.Run(specs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p.Offered != 30 {
		t.Errorf("offered %d, want 30", p.Offered)
	}
	// Every 5th of 30 queries errors: 6 errors, 24 answered.
	if p.Errors != 6 || p.Answered != 24 {
		t.Errorf("errors/answered = %d/%d, want 6/24", p.Errors, p.Answered)
	}
	// Every 3rd sheds: 10 offered land on i%3==0, of which i=15,30 also
	// hit the error path (i%5==0), leaving 8 shed answers.
	if p.Shed != 8 {
		t.Errorf("shed %d, want 8", p.Shed)
	}
	if got := p.ByQuality["sampled"] + p.ByQuality["exact"]; got != p.Answered {
		t.Errorf("quality mix %v accounts for %d of %d answers", p.ByQuality, got, p.Answered)
	}
	if p.QPS <= 0 || p.WallNs <= 0 {
		t.Errorf("throughput not measured: qps=%g wall=%d", p.QPS, p.WallNs)
	}
	if p.LatencyP50Ns < int64(time.Millisecond) {
		t.Errorf("p50 %s below the stub's floor", time.Duration(p.LatencyP50Ns))
	}
	if p.LatencyP50Ns > p.LatencyP99Ns || p.LatencyP99Ns > p.LatencyMaxNs {
		t.Errorf("quantiles not monotone: p50=%d p99=%d max=%d",
			p.LatencyP50Ns, p.LatencyP99Ns, p.LatencyMaxNs)
	}
}

func TestLoadGenRejectsDegenerateRuns(t *testing.T) {
	specs := GenerateSpecs(3, 7, 1000, 40)
	if _, err := (LoadGen{}).Run(specs); err == nil {
		t.Error("nil Answer accepted")
	}
	if _, err := (LoadGen{Answer: stubAnswer(0)}).Run(nil); err == nil {
		t.Error("empty spec list accepted")
	}
	allFail := func(Spec) (*Answer, error) { return nil, fmt.Errorf("down") }
	p, err := (LoadGen{Answer: allFail, Concurrency: 2}).Run(specs)
	if err == nil {
		t.Error("zero-answered run did not error")
	}
	if p == nil || p.Errors != 3 {
		t.Errorf("profile %+v, want 3 errors reported alongside the error", p)
	}
}

// TestServeProfileSnapshot pins the profile → licm-bench/1 mapping so
// the serving snapshot stays diffable by licmtrace bench-diff.
func TestServeProfileSnapshot(t *testing.T) {
	p := &ServeProfile{
		Offered: 100, Answered: 80, Errors: 20, Shed: 8,
		ByQuality:    map[string]int{"exact": 40, "proven-interval": 20, "sampled": 20},
		WallNs:       int64(2 * time.Second),
		QPS:          40,
		LatencyP50Ns: 1e6, LatencyP90Ns: 2e6, LatencyP99Ns: 4e6, LatencyMaxNs: 9e6,
	}
	cfg := Config{NumTransactions: 60, NumItems: 30, Scheme: "k", K: 4, Seed: 3, MCSamples: 10}
	snap := p.Snapshot("serve", cfg)

	type cellView struct {
		solveNs int64
		prune   float64
	}
	cells := map[string]cellView{}
	var raw struct {
		Cells []struct {
			Scheme     string  `json:"scheme"`
			Query      string  `json:"query"`
			K          int     `json:"k"`
			Quality    string  `json:"quality"`
			LMinProven bool    `json:"l_min_proven"`
			LMaxProven bool    `json:"l_max_proven"`
			LSolveNs   int64   `json:"l_solve_ns"`
			PruneRatio float64 `json:"prune_ratio"`
		} `json:"cells"`
	}
	var buf bytes.Buffer
	if err := bench.WriteSnapshotJSON(&buf, snap); err != nil {
		t.Fatalf("WriteSnapshotJSON: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	for _, c := range raw.Cells {
		if c.Scheme != "serving" || c.K != 4 || c.Quality != "profile" {
			t.Errorf("cell %s mis-keyed: scheme=%s k=%d quality=%s", c.Query, c.Scheme, c.K, c.Quality)
		}
		if c.LMinProven || c.LMaxProven {
			t.Errorf("cell %s claims proven bounds; serving cells never do", c.Query)
		}
		cells[c.Query] = cellView{solveNs: c.LSolveNs, prune: c.PruneRatio}
	}
	if len(cells) != 8 {
		t.Fatalf("snapshot has %d distinct cells, want 8", len(cells))
	}
	if got := cells["latency_p99"].solveNs; got != int64(4*time.Millisecond) {
		t.Errorf("latency_p99 solve %v, want 4ms", time.Duration(got))
	}
	// 40 QPS → 25ms per answer.
	if got := cells["throughput"].solveNs; got != int64(25*time.Millisecond) {
		t.Errorf("throughput solve %v, want 25ms", time.Duration(got))
	}
	if got := cells["availability"].prune; got != 0.8 {
		t.Errorf("availability %g, want 0.8", got)
	}
	if got := cells["shed"].prune; got != 0.9 {
		t.Errorf("shed survival %g, want 0.9", got)
	}
	if got := cells["ladder_proven"].prune; got != 0.75 {
		t.Errorf("proven share %g, want 0.75", got)
	}
	if got := cells["ladder_exact"].prune; got != 0.5 {
		t.Errorf("exact share %g, want 0.5", got)
	}

	// Round-trip through the bench reader and self-diff clean: the CI
	// gate reads exactly this artifact. The serving cells are far below
	// the default 5ms floor, so a low MinTimeNs proves the cells carry
	// diffable figures rather than hiding under the floor.
	rt, err := bench.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	diff := bench.DiffSnapshots(rt, snap, bench.SnapshotTol{MinTimeNs: 1})
	if diff.Breached {
		t.Errorf("self-diff breached: %+v", diff)
	}
	if len(diff.OnlyOld) != 0 || len(diff.OnlyNew) != 0 {
		t.Errorf("self-diff coverage drift: only_old=%v only_new=%v", diff.OnlyOld, diff.OnlyNew)
	}
}
