package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Schema versions the workload result stream: per-query "query"
// records in run order followed by exactly one "summary" record.
const Schema = "licm-load/1"

// Record is one answered workload query: what was asked, how fast it
// was answered, how trustworthy the answer is (ladder quality), and
// how tight the proven bounds are against ground truth.
type Record struct {
	Schema string `json:"schema"`
	Type   string `json:"type"` // always "query"
	Name   string `json:"name"`
	Spec   Spec   `json:"spec"`

	// Quality is the supervisor's ladder tag: exact, proven-interval,
	// sampled or failed.
	Quality   string `json:"quality"`
	LatencyNs int64  `json:"latency_ns"`
	// RequestID is the server-assigned request id of a remote (-target)
	// answer; empty for local solves and absent from older streams. It
	// correlates this record with the server's forensics: the request_id
	// trace attribute and the /debug/licm/requests flight-recorder entry.
	RequestID string `json:"request_id,omitempty"`
	// Shed marks a remote answer produced on the server's overload shed
	// path (skipped the solver queue; sampled-rung Monte-Carlo answer).
	Shed bool `json:"shed,omitempty"`

	// Lb/Ub are the reported aggregate bounds; Proven says whether
	// they are proven outer bounds (exact or proven-interval quality).
	Lb         int64 `json:"lb"`
	Ub         int64 `json:"ub"`
	Proven     bool  `json:"proven"`
	Infeasible bool  `json:"infeasible,omitempty"`

	// GtSource says where ground truth came from: "exact" (independent
	// reference solve proved both optima) or "mc" (Monte-Carlo range —
	// a subset of the true answer range, so containment is still a
	// sound check). GtMin/GtMax are that ground-truth range.
	GtSource string `json:"gt_source"`
	GtMin    int64  `json:"gt_min"`
	GtMax    int64  `json:"gt_max"`
	// McMin/McMax are the sampled cross-check range, recorded even
	// when ground truth is exact (the Flesca-style consistency check:
	// every sampled world's answer must lie inside proven bounds).
	McMin int64 `json:"mc_min"`
	McMax int64 `json:"mc_max"`

	// Qerr is the q-error-style bound tightness
	// max((ub+1)/(gtMax+1), (gtMin+1)/(lb+1)), clamped to >= 1 and
	// computed only for proven records (0 otherwise). 1.0 means the
	// proven bounds coincide with ground truth; for an exactly solved
	// query with exact ground truth it must be exactly 1.0.
	Qerr float64 `json:"qerr"`

	// Problem shape after query building plus the explain census hook:
	// component count and distinct fingerprints of this query's solve.
	Vars                 int `json:"vars"`
	Cons                 int `json:"cons"`
	Components           int `json:"components"`
	DistinctFingerprints int `json:"distinct_fingerprints"`

	// Violations are hard consistency failures (ground truth or a
	// sampled world outside proven bounds, exact-vs-exact mismatch).
	// Any violation fails the run.
	Violations []string `json:"violations,omitempty"`
}

// Summary is the run-level rollup, the last line of a licm-load/1
// stream and the unit the CI workload gate diffs.
type Summary struct {
	Schema string `json:"schema"`
	Type   string `json:"type"` // always "summary"
	Label  string `json:"label,omitempty"`

	// Environment and run parameters (the diff's identity check).
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Trans      int    `json:"trans"`
	Items      int    `json:"items"`
	Scheme     string `json:"scheme"`
	K          int    `json:"k"`
	M          int    `json:"m,omitempty"`
	Seed       int64  `json:"seed"`
	Queries    int    `json:"queries"`
	DeadlineNs int64  `json:"deadline_ns"`
	MCSamples  int    `json:"mc_samples"`

	WallNs int64 `json:"wall_ns"`

	// Degradation census over the ladder tags.
	ByQuality map[string]int `json:"by_quality"`

	// Latency quantiles (nearest-rank) over all queries.
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP95Ns int64 `json:"latency_p95_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`

	// Tightness quantiles over proven records (qerr > 0).
	QerrP50 float64 `json:"qerr_p50"`
	QerrP90 float64 `json:"qerr_p90"`
	QerrMax float64 `json:"qerr_max"`

	// Proven counts: records with proven bounds, records solved
	// exactly, and records whose ground truth was an exact reference
	// solve.
	Proven     int `json:"proven"`
	Exact      int `json:"exact"`
	ExactRef   int `json:"exact_ref"`
	Violations int `json:"violations"`

	// Component census across the run (the cache-design feed).
	Components           int64   `json:"components"`
	DistinctFingerprints int     `json:"distinct_fingerprints"`
	CacheHitRate         float64 `json:"cache_hit_rate"`
}

// Run is one parsed licm-load/1 stream.
type Run struct {
	Records []Record
	Summary *Summary
}

// Validate checks one record's internal consistency.
func (r *Record) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("workload: record schema %q, want %s", r.Schema, Schema)
	}
	if r.Type != "query" {
		return fmt.Errorf("workload: record type %q, want query", r.Type)
	}
	if err := r.Spec.Validate(); err != nil {
		return err
	}
	if r.Name != r.Spec.Name() {
		return fmt.Errorf("workload: record name %q does not match spec %q", r.Name, r.Spec.Name())
	}
	switch r.Quality {
	case "exact", "proven-interval", "sampled", "failed":
	default:
		return fmt.Errorf("workload: record %s: unknown quality %q", r.Name, r.Quality)
	}
	if r.LatencyNs < 0 {
		return fmt.Errorf("workload: record %s: negative latency", r.Name)
	}
	proven := r.Quality == "exact" || r.Quality == "proven-interval"
	if proven != r.Proven {
		return fmt.Errorf("workload: record %s: proven=%v inconsistent with quality %q", r.Name, r.Proven, r.Quality)
	}
	if r.Proven && !r.Infeasible && r.Lb > r.Ub {
		return fmt.Errorf("workload: record %s: proven bounds inverted [%d, %d]", r.Name, r.Lb, r.Ub)
	}
	switch r.GtSource {
	case "exact", "mc":
	case "none":
		// Infeasible or failed records may carry no ground truth.
	default:
		return fmt.Errorf("workload: record %s: unknown gt_source %q", r.Name, r.GtSource)
	}
	if r.Proven && !r.Infeasible {
		if r.Qerr < 1 {
			return fmt.Errorf("workload: record %s: proven record with qerr %g < 1", r.Name, r.Qerr)
		}
		if r.Quality == "exact" && r.GtSource == "exact" && !floatEq(r.Qerr, 1) {
			return fmt.Errorf("workload: record %s: exact solve vs exact ground truth has qerr %g != 1", r.Name, r.Qerr)
		}
	} else if !floatEq(r.Qerr, 0) {
		return fmt.Errorf("workload: record %s: unproven record with qerr %g != 0", r.Name, r.Qerr)
	}
	return nil
}

// Validate checks the summary's internal consistency.
func (s *Summary) Validate() error {
	if s.Schema != Schema {
		return fmt.Errorf("workload: summary schema %q, want %s", s.Schema, Schema)
	}
	if s.Type != "summary" {
		return fmt.Errorf("workload: summary type %q, want summary", s.Type)
	}
	n := 0
	for q, c := range s.ByQuality {
		switch q {
		case "exact", "proven-interval", "sampled", "failed":
		default:
			return fmt.Errorf("workload: summary by_quality has unknown tag %q", q)
		}
		if c < 0 {
			return fmt.Errorf("workload: summary by_quality[%s] negative", q)
		}
		n += c
	}
	if n != s.Queries {
		return fmt.Errorf("workload: summary by_quality sums to %d, queries is %d", n, s.Queries)
	}
	if s.Exact > s.Proven || s.Proven > s.Queries {
		return fmt.Errorf("workload: summary counts inconsistent (exact %d, proven %d, queries %d)", s.Exact, s.Proven, s.Queries)
	}
	if s.Violations < 0 {
		return fmt.Errorf("workload: summary violations negative")
	}
	return nil
}

// Validate checks the whole run: every record, the summary, and their
// agreement (counts, violations, quality census).
func (run *Run) Validate() error {
	if run.Summary == nil {
		return fmt.Errorf("workload: run has no summary record")
	}
	byQ := map[string]int{}
	viol, exact, proven := 0, 0, 0
	seen := map[int]bool{}
	for i := range run.Records {
		r := &run.Records[i]
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.Spec.ID] {
			return fmt.Errorf("workload: duplicate record for spec %d", r.Spec.ID)
		}
		seen[r.Spec.ID] = true
		byQ[r.Quality]++
		viol += len(r.Violations)
		if r.Quality == "exact" {
			exact++
		}
		if r.Proven {
			proven++
		}
	}
	s := run.Summary
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Queries != len(run.Records) {
		return fmt.Errorf("workload: summary queries %d, stream has %d records", s.Queries, len(run.Records))
	}
	for q, c := range byQ {
		if s.ByQuality[q] != c {
			return fmt.Errorf("workload: summary by_quality[%s]=%d, records say %d", q, s.ByQuality[q], c)
		}
	}
	if s.Violations != viol {
		return fmt.Errorf("workload: summary violations %d, records carry %d", s.Violations, viol)
	}
	if s.Exact != exact || s.Proven != proven {
		return fmt.Errorf("workload: summary exact/proven %d/%d, records say %d/%d", s.Exact, s.Proven, exact, proven)
	}
	return nil
}

// WriteRecord appends one record line.
func WriteRecord(w io.Writer, r *Record) error {
	return json.NewEncoder(w).Encode(r)
}

// WriteSummary appends the summary line.
func WriteSummary(w io.Writer, s *Summary) error {
	return json.NewEncoder(w).Encode(s)
}

// WriteRun writes a complete licm-load/1 stream.
func WriteRun(w io.Writer, run *Run) error {
	bw := bufio.NewWriter(w)
	for i := range run.Records {
		if err := WriteRecord(bw, &run.Records[i]); err != nil {
			return err
		}
	}
	if run.Summary != nil {
		if err := WriteSummary(bw, run.Summary); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRun parses a licm-load/1 stream. strict additionally rejects
// unknown fields and any semantic inconsistency (Run.Validate); the
// lenient mode still requires the schema tag, line types and a single
// trailing summary.
func ReadRun(r io.Reader, strict bool) (*Run, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 16<<20)
	run := &Run{}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var head struct {
			Schema string `json:"schema"`
			Type   string `json:"type"`
		}
		if err := json.Unmarshal(raw, &head); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if !strings.HasPrefix(head.Schema, "licm-load/") {
			return nil, fmt.Errorf("workload: line %d: schema %q, want %s", line, head.Schema, Schema)
		}
		if head.Schema != Schema {
			return nil, fmt.Errorf("workload: line %d: unsupported schema %q (this reader understands %s)", line, head.Schema, Schema)
		}
		if run.Summary != nil {
			return nil, fmt.Errorf("workload: line %d: record after summary", line)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		if strict {
			dec.DisallowUnknownFields()
		}
		switch head.Type {
		case "query":
			var rec Record
			if err := dec.Decode(&rec); err != nil {
				return nil, fmt.Errorf("workload: line %d: %w", line, err)
			}
			run.Records = append(run.Records, rec)
		case "summary":
			var s Summary
			if err := dec.Decode(&s); err != nil {
				return nil, fmt.Errorf("workload: line %d: %w", line, err)
			}
			run.Summary = &s
		default:
			return nil, fmt.Errorf("workload: line %d: unknown line type %q", line, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if run.Summary == nil {
		return nil, fmt.Errorf("workload: stream has no summary record")
	}
	if strict {
		if err := run.Validate(); err != nil {
			return nil, err
		}
	}
	return run, nil
}

// LoadTol are the diff tolerances. Everything except wall latency is
// deterministic for a fixed seed, so only latency gets a factor;
// bound values, qualities and tightness are compared hard.
type LoadTol struct {
	// LatencyFactor bounds summary latency-quantile growth
	// (new <= old * factor); generous because baseline and runner are
	// different machines.
	LatencyFactor float64
	// MinLatencyNs is the noise floor: quantiles below it on both
	// sides are never flagged.
	MinLatencyNs int64
	// QerrSlack is the absolute slack on tightness-quantile growth.
	// Tightness is deterministic, so this only absorbs float
	// formatting; regressions mean the solver proves looser bounds.
	QerrSlack float64
}

// DefaultLoadTol returns the CI gate's tolerances.
func DefaultLoadTol() LoadTol {
	return LoadTol{LatencyFactor: 3.0, MinLatencyNs: 2_000_000, QerrSlack: 1e-9}
}

// LoadDiff is the outcome of comparing two runs: Warnings note
// context differences (environment, parameters), Breaches are
// regressions or correctness failures that should fail a gate.
type LoadDiff struct {
	Warnings []string
	Breaches []string
}

// OK reports whether the diff found no breaches.
func (d *LoadDiff) OK() bool { return len(d.Breaches) == 0 }

// DiffRuns compares a new run against a baseline. Parameter
// mismatches (different seed, scale, scheme) degrade the comparison
// to warnings plus whatever record overlap exists; with identical
// parameters every divergence in deterministic figures is a breach.
func DiffRuns(old, new *Run, tol LoadTol) *LoadDiff {
	if tol.LatencyFactor <= 0 {
		tol.LatencyFactor = DefaultLoadTol().LatencyFactor
	}
	if tol.MinLatencyNs <= 0 {
		tol.MinLatencyNs = DefaultLoadTol().MinLatencyNs
	}
	if tol.QerrSlack <= 0 {
		tol.QerrSlack = DefaultLoadTol().QerrSlack
	}
	d := &LoadDiff{}
	os, ns := old.Summary, new.Summary
	if os == nil || ns == nil {
		d.Breaches = append(d.Breaches, "run missing summary record")
		return d
	}
	sameParams := true
	warn := func(format string, args ...any) {
		d.Warnings = append(d.Warnings, fmt.Sprintf(format, args...))
	}
	breach := func(format string, args ...any) {
		d.Breaches = append(d.Breaches, fmt.Sprintf(format, args...))
	}
	if os.GoVersion != ns.GoVersion || os.GOOS != ns.GOOS || os.GOARCH != ns.GOARCH {
		warn("environment differs: %s/%s/%s vs %s/%s/%s",
			os.GoVersion, os.GOOS, os.GOARCH, ns.GoVersion, ns.GOOS, ns.GOARCH)
	}
	if os.Trans != ns.Trans || os.Items != ns.Items || os.Scheme != ns.Scheme ||
		os.K != ns.K || os.M != ns.M || os.Seed != ns.Seed ||
		os.MCSamples != ns.MCSamples || os.DeadlineNs != ns.DeadlineNs {
		warn("run parameters differ (trans/items/scheme/k/m/seed/mc/deadline): deterministic comparisons limited to overlapping specs")
		sameParams = false
	}

	// Correctness first: a new run with violations never passes.
	if ns.Violations > 0 {
		breach("new run has %d consistency violations", ns.Violations)
	}

	byID := make(map[int]*Record, len(old.Records))
	for i := range old.Records {
		byID[old.Records[i].Spec.ID] = &old.Records[i]
	}
	matched := 0
	for i := range new.Records {
		nr := &new.Records[i]
		or, ok := byID[nr.Spec.ID]
		if !ok {
			if sameParams {
				breach("query %s: present in new run only", nr.Name)
			}
			continue
		}
		delete(byID, nr.Spec.ID)
		if or.Spec != nr.Spec {
			breach("query %s: spec drifted between runs", nr.Name)
			continue
		}
		matched++
		// Proven bounds are deterministic figures, not measurements: a
		// changed value under the same seed and budget means the solver
		// changed its answer.
		if or.Proven && nr.Proven && sameParams && (or.Lb != nr.Lb || or.Ub != nr.Ub) {
			breach("query %s: proven bounds changed [%d, %d] -> [%d, %d]",
				nr.Name, or.Lb, or.Ub, nr.Lb, nr.Ub)
		}
		if qualityRank(nr.Quality) > qualityRank(or.Quality) {
			breach("query %s: quality regressed %s -> %s", nr.Name, or.Quality, nr.Quality)
		}
	}
	if sameParams {
		for _, or := range byID {
			breach("query %s: missing from new run", or.Name)
		}
	}

	if ns.Exact < os.Exact {
		breach("exactly-solved queries dropped %d -> %d", os.Exact, ns.Exact)
	}
	if ns.Proven < os.Proven {
		breach("proven queries dropped %d -> %d", os.Proven, ns.Proven)
	}
	if sameParams && ns.QerrP90 > os.QerrP90+tol.QerrSlack {
		breach("bound tightness regressed: qerr p90 %.6g -> %.6g", os.QerrP90, ns.QerrP90)
	}
	if sameParams && ns.QerrMax > os.QerrMax+tol.QerrSlack {
		breach("bound tightness regressed: qerr max %.6g -> %.6g", os.QerrMax, ns.QerrMax)
	}
	for _, q := range []struct {
		name     string
		old, new int64
	}{
		{"p50", os.LatencyP50Ns, ns.LatencyP50Ns},
		{"p95", os.LatencyP95Ns, ns.LatencyP95Ns},
	} {
		if q.new <= tol.MinLatencyNs {
			continue
		}
		// Clamp the baseline to the noise floor before computing the
		// growth factor: a zero or near-zero baseline quantile (a fast
		// machine, a trivial store) would otherwise make any measurable
		// latency look like an unbounded regression and fire the gate
		// spuriously.
		base := float64(q.old)
		if base < float64(tol.MinLatencyNs) {
			base = float64(tol.MinLatencyNs)
		}
		if float64(q.new) > base*tol.LatencyFactor {
			breach("latency %s regressed %.2fms -> %.2fms (factor %.2f > %.2f)",
				q.name, float64(q.old)/1e6, float64(q.new)/1e6,
				float64(q.new)/base, tol.LatencyFactor)
		}
	}
	_ = matched
	return d
}

// qualityRank orders the supervisor's degradation ladder; a diff
// breaches whenever a query slides down it, including exact ->
// proven-interval (the bounds may still be proven, but the solver
// stopped closing the gap).
func qualityRank(q string) int {
	switch q {
	case "exact":
		return 0
	case "proven-interval":
		return 1
	case "sampled":
		return 2
	default:
		return 3
	}
}

// quantileI64 returns the nearest-rank q-quantile (0 < q <= 1) of xs.
func quantileI64(xs []int64, q float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[rank(len(s), q)]
}

// quantileF64 is quantileI64 over float64 samples.
func quantileF64(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[rank(len(s), q)]
}

// rank maps a quantile to its nearest-rank index in a sorted slice of
// length n.
func rank(n int, q float64) int {
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}
