package workload

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"time"

	"licm/internal/anon"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/explain"
	"licm/internal/hierarchy"
	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/seedflag"
	"licm/internal/solver"
	"licm/internal/super"
)

// DefaultExactRefMaxVars is the post-query store size up to which the
// runner attempts an exact, budget-free reference solve for ground
// truth. Above it the reference would dominate the run's wall clock,
// so the sampled range takes over as ground truth.
const DefaultExactRefMaxVars = 4000

// worldChecks is the number of uniformly sampled worlds whose answers
// (computed by the deterministic engine, independent of the solver)
// are asserted to lie inside each query's proven bounds.
const worldChecks = 3

// Config controls one workload run.
type Config struct {
	// Dataset scale and anonymization, mirroring the licmq flags:
	// Scheme is "km", "k", "bipartite" or "suppress"; K is the
	// anonymity parameter (or the support threshold for suppress), M
	// the subset size of k^m-anonymity.
	NumTransactions int
	NumItems        int
	HierarchyFanout int
	Scheme          string
	K               int
	M               int
	// Seed is the master seed (see internal/seedflag): the dataset,
	// the ground-truth sampler, and the supervisor's fallback all
	// derive their streams from it.
	Seed int64
	// Deadline caps each query's supervised solve; 0 means none.
	Deadline time.Duration
	// MCSamples sizes the ground-truth estimate, the containment
	// cross-check and the degraded-mode fallback.
	MCSamples int
	// ExactRefMaxVars overrides DefaultExactRefMaxVars; negative
	// disables exact references entirely (ground truth is always MC).
	ExactRefMaxVars int
	// Solver holds the base options of the measured solve.
	Solver solver.Options

	Trace   *obs.Tracer
	Metrics *obs.Registry
	Log     *slog.Logger
	Label   string
	// Census, if non-nil, additionally receives every query's explain
	// report, attributing tightness and solve cost to component
	// fingerprints across the run.
	Census *explain.Census
	// OnRecord, if non-nil, is called with each record as it
	// completes — the streaming hook licmload uses to emit JSONL
	// before the run finishes.
	OnRecord func(*Record)
	// Answer, if non-nil, replaces the local supervised solve as the
	// measured answer source — the licmd client behind licmload
	// -target. Ground truth, containment checks and tightness scoring
	// still run locally against a fresh encoding, so the run gates a
	// remote server's answers with the same rigor as in-process
	// solves. The dataset parameters above must match the server's
	// store for the scoring to be sound.
	Answer func(Spec) (*Answer, error)
}

// Answer is one measured answer of a workload spec, however produced:
// the local supervised solve or a remote licmd response. Proven-ness
// is derived from Quality, not carried, so a confused remote cannot
// claim proven sampled bounds.
type Answer struct {
	// Quality is the supervisor ladder tag: exact, proven-interval,
	// sampled or failed.
	Quality string
	// RequestID is the server-assigned request id of a remote answer
	// (empty for local solves). It keys the client-side record to the
	// server's forensics: the request_id trace attribute and the flight
	// recorder entry at /debug/licm/requests.
	RequestID string
	// Shed marks a remote answer produced on the overload shed path.
	Shed       bool
	Lb, Ub     int64
	Infeasible bool
	// LatencyNs is the measured answer latency. Remote sources report
	// the client-observed round trip, so serving overhead (queueing,
	// transport) is part of the scored figure.
	LatencyNs int64
	// Problem shape and decomposition of the answering solve, as
	// reported by the source.
	Vars, Cons           int
	Components           int
	DistinctFingerprints int
}

// Normalized fills the config's zero values with defaults. Execute
// applies it automatically; external store hosts (cmd/licmd) call it
// so their serving parameters match what a local run would use.
func (cfg Config) Normalized() Config {
	if cfg.NumTransactions == 0 {
		cfg.NumTransactions = 300
	}
	if cfg.NumItems == 0 {
		cfg.NumItems = 60
	}
	if cfg.HierarchyFanout == 0 {
		cfg.HierarchyFanout = 8
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "k"
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.M == 0 {
		cfg.M = 2
	}
	if cfg.MCSamples == 0 {
		cfg.MCSamples = 30
	}
	if cfg.ExactRefMaxVars == 0 {
		cfg.ExactRefMaxVars = DefaultExactRefMaxVars
	}
	return cfg
}

// Encoder generates the dataset and anonymizes it once, returning a
// factory that encodes a fresh constraint store per call. Queries
// grow the store they run against (BuildLICM adds auxiliary variables
// and constraints), so every query needs its own encoding; the
// anonymization, which queries never touch, is shared. The factory is
// safe for concurrent use: it only reads the shared anonymized data,
// which is how the licmd worker pool answers many queries against one
// loaded store at once.
func (cfg Config) Encoder() (func() *encode.Encoded, error) {
	cfg = cfg.Normalized()
	dcfg := dataset.DefaultConfig(cfg.NumTransactions)
	dcfg.NumItems = cfg.NumItems
	dcfg.Seed = seedflag.Derive(cfg.Seed, seedflag.DatasetStream)
	d, err := dataset.Generate(dcfg)
	if err != nil {
		return nil, err
	}
	switch cfg.Scheme {
	case "km", "k":
		h, err := hierarchy.Build(cfg.NumItems, cfg.HierarchyFanout, nil)
		if err != nil {
			return nil, err
		}
		var g *anon.Generalized
		if cfg.Scheme == "km" {
			g, err = anon.KmAnonymize(d, h, cfg.K, cfg.M)
		} else {
			g, err = anon.KAnonymize(d, h, cfg.K)
		}
		if err != nil {
			return nil, err
		}
		return func() *encode.Encoded { return encode.Generalized(g, d.Items) }, nil
	case "bipartite":
		bg, err := anon.BipartiteAnonymize(d, cfg.K, cfg.K)
		if err != nil {
			return nil, err
		}
		return func() *encode.Encoded { return encode.Bipartite(d, bg) }, nil
	case "suppress":
		s, err := anon.SuppressAnonymize(d, cfg.K)
		if err != nil {
			return nil, err
		}
		return func() *encode.Encoded { return encode.Suppressed(s, d.Items) }, nil
	default:
		return nil, fmt.Errorf("workload: unknown scheme %q", cfg.Scheme)
	}
}

// Execute runs every spec through the supervised solver and scores
// it, returning the complete licm-load/1 run. Everything except wall
// latency is deterministic in (cfg, specs).
func Execute(cfg Config, specs []Spec) (*Run, error) {
	cfg = cfg.Normalized()
	start := time.Now()
	newEnc, err := cfg.Encoder()
	if err != nil {
		return nil, err
	}
	census := explain.NewCensus()
	run := &Run{}
	for i := range specs {
		rec, err := cfg.runOne(newEnc, specs[i], census)
		if err != nil {
			return nil, err
		}
		run.Records = append(run.Records, *rec)
		if cfg.OnRecord != nil {
			cfg.OnRecord(rec)
		}
	}
	run.Summary = cfg.summarize(run.Records, census, time.Since(start))
	return run, nil
}

// runOne answers one spec end to end: measured answer (local
// supervised solve or the configured remote source), independent
// ground truth, consistency checks, tightness score.
func (cfg Config) runOne(newEnc func() *encode.Encoded, sp Spec, census *explain.Census) (*Record, error) {
	rec := &Record{Schema: Schema, Type: "query", Name: sp.Name(), Spec: sp}
	tsp := cfg.Trace.Start("workload.query", obs.Str("name", rec.Name))

	var err error
	if cfg.Answer != nil {
		err = cfg.remoteAnswer(sp, rec)
	} else {
		err = cfg.localAnswer(newEnc, sp, rec, census)
	}
	if err != nil {
		return nil, err
	}

	if rec.Infeasible {
		rec.GtSource = "none"
	} else {
		cfg.groundTruth(newEnc, sp, rec)
	}
	cfg.recordMetrics(rec)
	tsp.End(
		obs.Str("quality", rec.Quality),
		obs.I64("lb", rec.Lb), obs.I64("ub", rec.Ub),
		obs.Str("gt_source", rec.GtSource),
		obs.F64("qerr", rec.Qerr),
		obs.Int("violations", len(rec.Violations)))
	return rec, nil
}

// remoteAnswer fills the measured fields of rec from the configured
// remote answer source. Proven-ness is recomputed from the quality
// tag so the local containment checks never trust a remote claim the
// ladder semantics would not grant.
func (cfg Config) remoteAnswer(sp Spec, rec *Record) error {
	a, err := cfg.Answer(sp)
	if err != nil {
		return fmt.Errorf("workload: %s: %w", rec.Name, err)
	}
	rec.Quality = a.Quality
	rec.RequestID = a.RequestID
	rec.Shed = a.Shed
	rec.LatencyNs = a.LatencyNs
	rec.Infeasible = a.Infeasible
	rec.Lb, rec.Ub = a.Lb, a.Ub
	rec.Proven = a.Quality == "exact" || a.Quality == "proven-interval"
	rec.Vars, rec.Cons = a.Vars, a.Cons
	rec.Components = a.Components
	rec.DistinctFingerprints = a.DistinctFingerprints
	return nil
}

// localAnswer runs the measured supervised solve: fresh encoding,
// per-query deadline, explain recorder for fingerprint attribution,
// sampled fallback at the bottom of the ladder.
func (cfg Config) localAnswer(newEnc func() *encode.Encoded, sp Spec, rec *Record, census *explain.Census) error {
	enc := newEnc()
	enc.DB.SetTracer(cfg.Trace)
	obj, _, err := sp.Build(enc)
	if err != nil {
		return fmt.Errorf("workload: %s: %w", rec.Name, err)
	}
	rec.Vars, rec.Cons = enc.DB.NumVars(), enc.DB.NumConstraints()

	opts := cfg.Solver
	if opts.Trace == nil {
		opts.Trace = cfg.Trace
	}
	if opts.Metrics == nil {
		opts.Metrics = cfg.Metrics
	}
	xrec := &solver.ExplainRecorder{}
	opts.Explain = xrec
	ctx := context.Background()
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	scfg := super.Config{
		Solver: opts,
		Sample: super.MCFallback(enc, obj,
			seedflag.Derive(cfg.Seed, seedflag.FallbackStream), cfg.MCSamples),
		Log: cfg.Log,
	}
	out := super.Bounds(ctx, core.BuildProblem(enc.DB, obj), scfg)
	rec.Quality = out.Quality.String()
	rec.LatencyNs = int64(out.Elapsed)
	rec.Infeasible = out.Infeasible
	rec.Lb, rec.Ub = out.Interval()
	rec.Proven = out.Quality == super.Exact || out.Quality == super.ProvenInterval

	// Component fingerprints: feed the per-run census (and the
	// caller's, when attached) so tightness can be attributed to
	// component shapes across the workload.
	rep := explain.Build(rec.Name, xrec)
	rep.Scheme = cfg.Scheme
	rep.K = cfg.K
	rep.Quality = rec.Quality
	fps := map[string]bool{}
	for ri := range rep.Runs {
		rec.Components += len(rep.Runs[ri].Components)
		for ci := range rep.Runs[ri].Components {
			fps[rep.Runs[ri].Components[ci].Fingerprint] = true
		}
	}
	rec.DistinctFingerprints = len(fps)
	census.Observe(rep)
	if cfg.Census != nil {
		cfg.Census.Observe(rep)
	}
	return nil
}

// groundTruth establishes the reference answer range on a second,
// untouched encoding (the measured solve's store has been pruned and
// extended), cross-checks containment, and scores tightness.
func (cfg Config) groundTruth(newEnc func() *encode.Encoded, sp Spec, rec *Record) {
	encRef := newEnc()
	objRef, evalRef, err := sp.Build(encRef)
	if err != nil {
		// Build succeeded on the measured encoding, so this cannot
		// differ; record it as a violation rather than crash the run.
		rec.GtSource = "none"
		rec.Violations = append(rec.Violations,
			fmt.Sprintf("reference build failed: %v", err))
		return
	}

	// Exact reference on small stores: the same solver, but with no
	// deadline, no cancellation and no recorder — if it proves both
	// optima, ground truth is the true answer range.
	rec.GtSource = "mc"
	if cfg.ExactRefMaxVars > 0 && encRef.DB.NumVars() <= cfg.ExactRefMaxVars {
		refOpts := cfg.Solver
		refOpts.Cancel = nil
		refOpts.Explain = nil
		refOpts.Certify = nil
		refOpts.Snapshots = nil
		refOpts.Trace = nil
		refOpts.Metrics = nil
		if res, err := core.Bounds(encRef.DB, objRef, refOpts); err == nil && res.MinProven && res.MaxProven {
			rec.GtSource = "exact"
			rec.GtMin, rec.GtMax = res.MinBound, res.MaxBound
		}
	}

	// Sampled range: always computed (a) as ground truth when the
	// exact reference was unavailable, (b) as the Flesca-style
	// consistency cross-check otherwise. The per-spec offset keeps
	// query streams decorrelated while staying derived from -seed.
	sampler := mc.NewSampler(encRef,
		seedflag.Derive(cfg.Seed, seedflag.MCStream)+int64(sp.ID))
	est := sampler.EstimateObjective(objRef, cfg.MCSamples)
	rec.McMin, rec.McMax = est.Min, est.Max
	if rec.GtSource == "mc" {
		rec.GtMin, rec.GtMax = est.Min, est.Max
	}

	if !rec.Proven {
		return
	}
	// Proven bounds must contain ground truth: the exact range
	// entirely, and every sampled observation (the MC range is a
	// subset of the true range by construction).
	if rec.GtMin < rec.Lb || rec.GtMax > rec.Ub {
		rec.Violations = append(rec.Violations, fmt.Sprintf(
			"proven bounds [%d, %d] exclude %s ground truth [%d, %d]",
			rec.Lb, rec.Ub, rec.GtSource, rec.GtMin, rec.GtMax))
	}
	if rec.McMin < rec.Lb || rec.McMax > rec.Ub {
		rec.Violations = append(rec.Violations, fmt.Sprintf(
			"proven bounds [%d, %d] exclude sampled range [%d, %d]",
			rec.Lb, rec.Ub, rec.McMin, rec.McMax))
	}
	// Independent spot check: answers of uniformly sampled worlds,
	// computed by the deterministic engine with no solver involved.
	for i := 0; i < worldChecks; i++ {
		if v := evalRef(sampler.SampleWorld()); v < rec.Lb || v > rec.Ub {
			rec.Violations = append(rec.Violations, fmt.Sprintf(
				"sampled world answer %d outside proven bounds [%d, %d]",
				v, rec.Lb, rec.Ub))
		}
	}
	if rec.Quality == "exact" && rec.GtSource == "exact" &&
		(rec.Lb != rec.GtMin || rec.Ub != rec.GtMax) {
		rec.Violations = append(rec.Violations, fmt.Sprintf(
			"exact solve [%d, %d] disagrees with exact reference [%d, %d]",
			rec.Lb, rec.Ub, rec.GtMin, rec.GtMax))
	}
	rec.Qerr = qerror(rec.Lb, rec.Ub, rec.GtMin, rec.GtMax)
}

// qerror is the bound-tightness score: how far the proven interval
// overshoots ground truth on either end, as a ratio >= 1. The +1
// smoothing keeps zero-valued counts meaningful (classic q-error is
// undefined at 0); aggregates here are non-negative.
func qerror(lb, ub, gtMin, gtMax int64) float64 {
	q := ratio(ub+1, gtMax+1)
	if r := ratio(gtMin+1, lb+1); r > q {
		q = r
	}
	if q < 1 {
		q = 1
	}
	return q
}

// ratio divides with denominators clamped to >= 1.
func ratio(num, den int64) float64 {
	if den < 1 {
		den = 1
	}
	return float64(num) / float64(den)
}

// recordMetrics publishes one record to the live registry (no-op
// without Metrics): licm_workload_* in the Prometheus exposition.
func (cfg Config) recordMetrics(rec *Record) {
	reg := cfg.Metrics
	if reg == nil {
		return
	}
	reg.Counter("workload.queries").Inc()
	switch rec.Quality {
	case "exact":
		reg.Counter("workload.exact").Inc()
	case "proven-interval":
		reg.Counter("workload.proven_interval").Inc()
	case "sampled":
		reg.Counter("workload.sampled").Inc()
	default:
		reg.Counter("workload.failed").Inc()
	}
	reg.Histogram("workload.latency_ns").Observe(rec.LatencyNs)
	if rec.Qerr > 0 {
		reg.Gauge("workload.qerr_ppm").Set(int64(rec.Qerr * 1e6))
	}
	if n := len(rec.Violations); n > 0 {
		reg.Counter("workload.violations").Add(int64(n))
	}
}

// summarize rolls the records up into the run's summary line.
func (cfg Config) summarize(recs []Record, census *explain.Census, wall time.Duration) *Summary {
	s := &Summary{
		Schema:     Schema,
		Type:       "summary",
		Label:      cfg.Label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Trans:      cfg.NumTransactions,
		Items:      cfg.NumItems,
		Scheme:     cfg.Scheme,
		K:          cfg.K,
		Seed:       cfg.Seed,
		Queries:    len(recs),
		DeadlineNs: int64(cfg.Deadline),
		MCSamples:  cfg.MCSamples,
		WallNs:     int64(wall),
		ByQuality:  map[string]int{},
	}
	if cfg.Scheme == "km" {
		s.M = cfg.M
	}
	var lats []int64
	var qerrs []float64
	for i := range recs {
		r := &recs[i]
		s.ByQuality[r.Quality]++
		lats = append(lats, r.LatencyNs)
		if r.Proven {
			s.Proven++
		}
		if r.Quality == "exact" {
			s.Exact++
		}
		if r.GtSource == "exact" {
			s.ExactRef++
		}
		s.Violations += len(r.Violations)
		if r.Qerr > 0 {
			qerrs = append(qerrs, r.Qerr)
			if r.Qerr > s.QerrMax {
				s.QerrMax = r.Qerr
			}
		}
	}
	s.LatencyP50Ns = quantileI64(lats, 0.50)
	s.LatencyP95Ns = quantileI64(lats, 0.95)
	s.LatencyP99Ns = quantileI64(lats, 0.99)
	s.QerrP50 = quantileF64(qerrs, 0.50)
	s.QerrP90 = quantileF64(qerrs, 0.90)
	cs := census.Summarize(0)
	s.Components = cs.Components
	s.DistinctFingerprints = cs.Distinct
	s.CacheHitRate = cs.HitRate
	return s
}
