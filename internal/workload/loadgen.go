package workload

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"licm/internal/bench"
)

// LoadGen drives sustained concurrent load against an answer source —
// in practice serve.Client.Answer pointed at a live licmd. Where
// Execute is the serial correctness harness (ground truth, containment
// checks, scoring), LoadGen is the throughput harness: many in-flight
// queries, no local reference solves, and a ServeProfile of what the
// server actually sustained (achieved QPS, shed rate, ladder mix,
// latency quantiles).
type LoadGen struct {
	// Answer is the measured answer source; required.
	Answer func(Spec) (*Answer, error)
	// Concurrency is the number of parallel in-flight queries; 0 means
	// GOMAXPROCS.
	Concurrency int
	// Repeat is the number of passes over the spec list; 0 means 1.
	// Passes repeat the same specs, so sustained throughput is measured
	// on a fixed query population.
	Repeat int
}

// ServeProfile is one sustained-throughput serving measurement, the
// licm-bench/1 serving snapshot's source data.
type ServeProfile struct {
	// Offered counts queries sent; Answered those that produced a
	// ladder answer (Offered - Answered errored, typed or transport).
	Offered  int `json:"offered"`
	Answered int `json:"answered"`
	Errors   int `json:"errors"`
	// Shed counts answers produced on the server's overload shed path.
	Shed int `json:"shed"`
	// ByQuality is the ladder mix of answered queries.
	ByQuality map[string]int `json:"by_quality"`

	WallNs int64 `json:"wall_ns"`
	// QPS is achieved throughput: Answered / wall.
	QPS float64 `json:"qps"`

	// Client-observed per-query round-trip quantiles (nearest-rank).
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP90Ns int64 `json:"latency_p90_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`
	LatencyMaxNs int64 `json:"latency_max_ns"`
}

// Run offers every spec Repeat times through Concurrency workers and
// profiles what came back. Individual query errors do not abort the
// run — a sustained-load harness keeps offering load and reports the
// error count — but a run where nothing was answered returns an error.
func (g LoadGen) Run(specs []Spec) (*ServeProfile, error) {
	if g.Answer == nil {
		return nil, fmt.Errorf("workload: LoadGen needs an Answer source")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: LoadGen needs specs")
	}
	conc := g.Concurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	repeat := g.Repeat
	if repeat <= 0 {
		repeat = 1
	}

	p := &ServeProfile{ByQuality: map[string]int{}}
	var mu sync.Mutex
	var lats []int64

	jobs := make(chan Spec)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sp := range jobs {
				t0 := time.Now()
				a, err := g.Answer(sp)
				lat := time.Since(t0).Nanoseconds()
				mu.Lock()
				p.Offered++
				if err != nil {
					p.Errors++
				} else {
					p.Answered++
					p.ByQuality[a.Quality]++
					if a.Shed {
						p.Shed++
					}
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}()
	}
	for r := 0; r < repeat; r++ {
		for i := range specs {
			jobs <- specs[i]
		}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	p.WallNs = wall.Nanoseconds()
	if p.Answered > 0 && wall > 0 {
		p.QPS = float64(p.Answered) / wall.Seconds()
	}
	p.LatencyP50Ns = quantileI64(lats, 0.50)
	p.LatencyP90Ns = quantileI64(lats, 0.90)
	p.LatencyP99Ns = quantileI64(lats, 0.99)
	p.LatencyMaxNs = quantileI64(lats, 1.0)
	if p.Answered == 0 {
		return p, fmt.Errorf("workload: sustained load answered 0 of %d queries", p.Offered)
	}
	return p, nil
}

// servingScheme tags every serving-profile cell; the K column carries
// the store's anonymity parameter so snapshots against differently
// anonymized stores never silently compare.
const servingScheme = "serving"

// Snapshot converts the profile into a licm-bench/1 snapshot so the
// existing bench-diff machinery (licmtrace bench-diff, the CI perf
// gate) covers serving throughput. The mapping folds each figure into
// the cell fields the diff already judges:
//
//   - latency quantiles are cell solve times (growth breaches via the
//     time factor);
//   - throughput becomes ns-per-answer in the throughput cell's solve
//     time, so a QPS drop breaches as time growth;
//   - availability, shed pressure and the ladder mix are survival
//     fractions in prune_ratio (a drop past the tolerance breaches):
//     answered/offered, non-shed share, proven share, exact share.
//
// No cell claims proven bounds, so the diff's exact-equality checks
// never fire on measurement noise.
func (p *ServeProfile) Snapshot(label string, wcfg Config) bench.Snapshot {
	wcfg = wcfg.Normalized()
	bcfg := bench.Config{
		NumTransactions: wcfg.NumTransactions,
		NumItems:        wcfg.NumItems,
		Seed:            wcfg.Seed,
		Ks:              []int{wcfg.K},
		MCSamples:       wcfg.MCSamples,
	}
	frac := func(num int) float64 {
		if p.Answered == 0 {
			return 0
		}
		return float64(num) / float64(p.Answered)
	}
	avail := 0.0
	if p.Offered > 0 {
		avail = float64(p.Answered) / float64(p.Offered)
	}
	nsPerAnswer := int64(0)
	if p.QPS > 0 {
		nsPerAnswer = int64(1e9 / p.QPS)
	}
	proven := p.ByQuality["exact"] + p.ByQuality["proven-interval"]
	cell := func(query string, solveNs int64, nodes int, prune float64) bench.Cell {
		return bench.Cell{
			Scheme:     bench.Scheme(servingScheme),
			Query:      query,
			K:          wcfg.K,
			Quality:    "profile",
			LSolve:     time.Duration(solveNs),
			Nodes:      int64(nodes),
			PruneRatio: prune,
		}
	}
	cells := []bench.Cell{
		cell("latency_p50", p.LatencyP50Ns, p.Answered, 1),
		cell("latency_p90", p.LatencyP90Ns, p.Answered, 1),
		cell("latency_p99", p.LatencyP99Ns, p.Answered, 1),
		cell("throughput", nsPerAnswer, p.Offered, 1),
		cell("availability", 0, p.Offered, avail),
		cell("shed", 0, p.Shed, 1-frac(p.Shed)),
		cell("ladder_proven", 0, proven, frac(proven)),
		cell("ladder_exact", 0, p.ByQuality["exact"], frac(p.ByQuality["exact"])),
	}
	return bench.NewSnapshot(label, bcfg, cells, time.Duration(p.WallNs))
}
