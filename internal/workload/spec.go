// Package workload is the randomized query observatory: a seeded
// generator that produces diverse aggregate queries (varying
// selections, count predicates, join shapes and aggregate ops) over
// the possibilistic stores, a runner that answers each under the
// anytime supervisor and scores it with wall latency plus a
// q-error-style bound-tightness metric against ground truth, and the
// strict licm-load/1 result schema the CI workload gate diffs.
//
// The paper's evaluation is three fixed queries; this package is the
// workload-diversity counterpart the ROADMAP asks for, shaped like
// the SEICS per-query latency + q-error harness: every query becomes
// one record (latency, proven bounds, ground truth, tightness,
// degradation tag, component fingerprints) and a run ends with one
// summary (latency and tightness quantiles, degradation counts).
package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"licm/internal/core"
	"licm/internal/encode"
	"licm/internal/expr"
	"licm/internal/queries"
)

// SpecSchema versions the replayable query-set artifact
// (licmgen -queries, licmload -replay).
const SpecSchema = "licm-queries/1"

// Spec is one randomized aggregate query, fully self-contained: the
// predicate windows are stored as explicit inclusive ranges (not
// selectivities), so a spec file replays identically on any machine.
//
// Kinds follow the paper's query shapes; Agg extends them with a
// second aggregate op:
//
//	q1/count  COUNT of Pa-transactions with >= 1 Pb item
//	q1/sum    SUM of Pb-item prices over distinct Pa-transaction pairs
//	q2/count  COUNT of Pa-transactions with >= X Pb and >= Y Pc items
//	q3/count  COUNT of Pa-transactions sharing an item with >= X
//	          Pb-transactions (join shape)
type Spec struct {
	ID   int    `json:"id"`
	Kind string `json:"kind"` // q1 | q2 | q3
	Agg  string `json:"agg"`  // count | sum
	PaLo int64  `json:"pa_lo"`
	PaHi int64  `json:"pa_hi"`
	PbLo int64  `json:"pb_lo"`
	PbHi int64  `json:"pb_hi"`
	PcLo int64  `json:"pc_lo"`
	PcHi int64  `json:"pc_hi"`
	X    int    `json:"x"`
	Y    int    `json:"y"`
}

// Name labels the spec in records, traces and census reports.
func (s Spec) Name() string { return fmt.Sprintf("%s-%s#%d", s.Kind, s.Agg, s.ID) }

// pa/pb/pc return the predicate windows as queries.Pred.
func (s Spec) pa() queries.Pred { return queries.Pred{Lo: s.PaLo, Hi: s.PaHi} }
func (s Spec) pb() queries.Pred { return queries.Pred{Lo: s.PbLo, Hi: s.PbHi} }
func (s Spec) pc() queries.Pred { return queries.Pred{Lo: s.PcLo, Hi: s.PcHi} }

// Validate checks the structural invariants of one spec.
func (s Spec) Validate() error {
	switch s.Kind {
	case "q1":
		if s.Agg != "count" && s.Agg != "sum" {
			return fmt.Errorf("workload: spec %d: q1 agg %q, want count or sum", s.ID, s.Agg)
		}
	case "q2", "q3":
		if s.Agg != "count" {
			return fmt.Errorf("workload: spec %d: %s agg %q, want count", s.ID, s.Kind, s.Agg)
		}
	default:
		return fmt.Errorf("workload: spec %d: unknown kind %q", s.ID, s.Kind)
	}
	if s.PaLo > s.PaHi || s.PbLo > s.PbHi {
		return fmt.Errorf("workload: spec %d: empty predicate window", s.ID)
	}
	if s.Kind == "q2" {
		if s.PcLo > s.PcHi {
			return fmt.Errorf("workload: spec %d: empty Pc window", s.ID)
		}
		if s.X < 1 || s.Y < 1 {
			return fmt.Errorf("workload: spec %d: q2 thresholds X=%d Y=%d, want >= 1", s.ID, s.X, s.Y)
		}
	}
	if s.Kind == "q3" && s.X < 1 {
		return fmt.Errorf("workload: spec %d: q3 threshold X=%d, want >= 1", s.ID, s.X)
	}
	return nil
}

// GenerateSpecs draws n randomized query specs, deterministic in
// seed. locRange and priceRange are the attribute domains of the
// dataset the specs will run against (licmgen's defaults are 1000 and
// 40). The mix covers all four kind/agg shapes with randomized
// selectivities, window offsets and count thresholds.
func GenerateSpecs(n int, seed, locRange, priceRange int64) []Spec {
	r := rand.New(rand.NewSource(seed))
	loc := func(minFrac, maxFrac float64) queries.Pred {
		frac := minFrac + r.Float64()*(maxFrac-minFrac)
		return queries.RangeWithSelectivity(locRange, frac, r.Int63n(locRange))
	}
	price := func() queries.Pred {
		frac := 0.1 + r.Float64()*0.4
		return queries.RangeWithSelectivity(priceRange, frac, r.Int63n(priceRange))
	}
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		sp := Spec{ID: i, Agg: "count"}
		switch roll := r.Float64(); {
		case roll < 0.30:
			sp.Kind = "q1"
		case roll < 0.50:
			sp.Kind = "q1"
			sp.Agg = "sum"
		case roll < 0.75:
			sp.Kind = "q2"
			sp.X = 1 + r.Intn(4)
			sp.Y = 1 + r.Intn(3)
		default:
			sp.Kind = "q3"
			sp.X = 1 + r.Intn(3)
		}
		var pa, pb, pc queries.Pred
		switch sp.Kind {
		case "q3":
			// Join shape: both predicates range over locations; wider
			// windows so the popularity threshold stays reachable.
			pa, pb = loc(0.02, 0.3), loc(0.02, 0.3)
		default:
			pa, pb = loc(0.005, 0.2), price()
			if sp.Kind == "q2" {
				pc = price()
			}
		}
		sp.PaLo, sp.PaHi = pa.Lo, pa.Hi
		sp.PbLo, sp.PbHi = pb.Lo, pb.Hi
		sp.PcLo, sp.PcHi = pc.Lo, pc.Hi
		specs = append(specs, sp)
	}
	return specs
}

// specLine is the JSONL wire form of one spec.
type specLine struct {
	Schema string `json:"schema"`
	Spec
}

// WriteSpecs writes a replayable query-set file, one licm-queries/1
// JSON line per spec.
func WriteSpecs(w io.Writer, specs []Spec) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range specs {
		if err := enc.Encode(specLine{Schema: SpecSchema, Spec: sp}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpecs parses a query-set file, rejecting wrong schema tags,
// unknown fields and invalid specs — a replay artifact that drifted
// from the generator fails loudly.
func ReadSpecs(r io.Reader) ([]Spec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 16<<20)
	var out []Spec
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var sl specLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sl); err != nil {
			return nil, fmt.Errorf("workload: specs line %d: %w", line, err)
		}
		if !strings.HasPrefix(sl.Schema, "licm-queries/") {
			return nil, fmt.Errorf("workload: specs line %d: schema %q, want %s", line, sl.Schema, SpecSchema)
		}
		if sl.Schema != SpecSchema {
			return nil, fmt.Errorf("workload: specs line %d: unsupported schema %q (this reader understands %s)", line, sl.Schema, SpecSchema)
		}
		if err := sl.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("workload: specs line %d: %w", line, err)
		}
		out = append(out, sl.Spec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Build translates the spec over a fresh encoding, growing its
// constraint store, and returns the aggregate objective plus the
// deterministic per-world evaluator used for independent ground-truth
// cross-checks (the role the paper's SQL Server plays for MC).
func (s Spec) Build(enc *encode.Encoded) (expr.Lin, func(*queries.World) int64, error) {
	if err := s.Validate(); err != nil {
		return expr.Lin{}, nil, err
	}
	if s.Agg == "sum" {
		return s.buildSum(enc)
	}
	var q queries.Query
	switch s.Kind {
	case "q1":
		q = queries.Q1{Pa: s.pa(), Pb: s.pb()}
	case "q2":
		q = queries.Q2{Pa: s.pa(), Pb: s.pb(), Pc: s.pc(), X: s.X, Y: s.Y}
	default:
		q = queries.Q3{Pa: s.pa(), Pb: s.pb(), X: s.X}
	}
	rel, err := q.BuildLICM(enc)
	if err != nil {
		return expr.Lin{}, nil, err
	}
	return core.CountStar(rel), q.Eval, nil
}

// buildSum is the q1/sum shape: SUM of item prices over the distinct
// (Pa-transaction, Pb-item) pairs. The pair projection dedups
// maybe-tuples covering the same pair (a generalized transaction can
// admit one item through several nodes) so the objective and the
// per-world evaluator agree on set semantics.
func (s Spec) buildSum(enc *encode.Encoded) (expr.Lin, func(*queries.World) int64, error) {
	pa, pb := s.pa(), s.pb()
	tids := make(map[int64]bool)
	for i := 0; i < enc.Trans.Len(); i++ {
		row := enc.Trans.RowAt(i)
		if pa.Match(row.Int("Location")) {
			tids[row.Int("TID")] = true
		}
	}
	items := make(map[int64]bool)
	for i := 0; i < enc.Items.Len(); i++ {
		row := enc.Items.RowAt(i)
		if pb.Match(row.Int("Price")) {
			items[row.Int("Item")] = true
		}
	}
	var ti *core.Relation
	if enc.TransItem != nil {
		ti = core.Select(enc.TransItem, func(row core.Row) bool {
			return tids[row.Int("TID")] && items[row.Int("Item")]
		})
	} else {
		ti = enc.BuildTransItem(tids, items)
	}
	pairs := core.Project(enc.DB, ti, "TID", "Item")
	priced := core.Join(enc.DB, pairs, enc.Items, "Item")
	obj, err := core.SumOf(priced, "Price")
	if err != nil {
		return expr.Lin{}, nil, err
	}
	eval := func(w *queries.World) int64 {
		paSet := make(map[int64]bool)
		for i := 0; i < w.Trans.Len(); i++ {
			r := w.Trans.RowAt(i)
			if pa.Match(r.Int("Location")) {
				paSet[r.Int("TID")] = true
			}
		}
		price := make(map[int64]int64)
		pbSet := make(map[int64]bool)
		for i := 0; i < w.Items.Len(); i++ {
			r := w.Items.RowAt(i)
			price[r.Int("Item")] = r.Int("Price")
			if pb.Match(r.Int("Price")) {
				pbSet[r.Int("Item")] = true
			}
		}
		seen := make(map[[2]int64]bool)
		var sum int64
		for i := 0; i < w.TransItem.Len(); i++ {
			r := w.TransItem.RowAt(i)
			tid, it := r.Int("TID"), r.Int("Item")
			key := [2]int64{tid, it}
			if paSet[tid] && pbSet[it] && !seen[key] {
				seen[key] = true
				sum += price[it]
			}
		}
		return sum
	}
	return obj, eval, nil
}
