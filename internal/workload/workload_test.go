package workload

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"licm/internal/explain"
	"licm/internal/solver"
)

// testConfig is a small fixed-seed run: large enough to exercise all
// four query shapes, small enough for the exact reference solver on
// every query.
func testConfig() Config {
	opts := solver.DefaultOptions()
	opts.CompleteWitness = false
	return Config{
		NumTransactions: 120,
		NumItems:        40,
		Scheme:          "k",
		K:               4,
		Seed:            3,
		MCSamples:       20,
		Solver:          opts,
	}
}

func testSpecs(t *testing.T, n int) []Spec {
	t.Helper()
	specs := GenerateSpecs(n, 7, 1000, 40)
	if len(specs) != n {
		t.Fatalf("GenerateSpecs returned %d specs, want %d", len(specs), n)
	}
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Fatalf("generated spec invalid: %v", err)
		}
	}
	return specs
}

func TestGenerateSpecsDeterministicAndDiverse(t *testing.T) {
	a := GenerateSpecs(200, 42, 1000, 40)
	b := GenerateSpecs(200, 42, 1000, 40)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different specs")
	}
	c := GenerateSpecs(200, 43, 1000, 40)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical specs")
	}
	kinds := map[string]int{}
	for _, sp := range a {
		kinds[sp.Kind+"/"+sp.Agg]++
	}
	for _, want := range []string{"q1/count", "q1/sum", "q2/count", "q3/count"} {
		if kinds[want] == 0 {
			t.Errorf("200 specs contain no %s queries (got %v)", want, kinds)
		}
	}
}

func TestSpecsRoundTrip(t *testing.T) {
	specs := testSpecs(t, 50)
	var buf bytes.Buffer
	if err := WriteSpecs(&buf, specs); err != nil {
		t.Fatalf("WriteSpecs: %v", err)
	}
	got, err := ReadSpecs(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSpecs: %v", err)
	}
	if !reflect.DeepEqual(specs, got) {
		t.Fatal("specs did not round-trip")
	}
}

func TestReadSpecsRejects(t *testing.T) {
	cases := map[string]string{
		"wrong schema":  `{"schema":"licm-bench/1","id":0,"kind":"q1","agg":"count","pa_lo":0,"pa_hi":1,"pb_lo":0,"pb_hi":1,"pc_lo":0,"pc_hi":0,"x":0,"y":0}`,
		"newer schema":  `{"schema":"licm-queries/9","id":0,"kind":"q1","agg":"count","pa_lo":0,"pa_hi":1,"pb_lo":0,"pb_hi":1,"pc_lo":0,"pc_hi":0,"x":0,"y":0}`,
		"unknown field": `{"schema":"licm-queries/1","id":0,"kind":"q1","agg":"count","pa_lo":0,"pa_hi":1,"pb_lo":0,"pb_hi":1,"pc_lo":0,"pc_hi":0,"x":0,"y":0,"extra":1}`,
		"bad kind":      `{"schema":"licm-queries/1","id":0,"kind":"q9","agg":"count","pa_lo":0,"pa_hi":1,"pb_lo":0,"pb_hi":1,"pc_lo":0,"pc_hi":0,"x":0,"y":0}`,
		"empty window":  `{"schema":"licm-queries/1","id":0,"kind":"q1","agg":"count","pa_lo":5,"pa_hi":1,"pb_lo":0,"pb_hi":1,"pc_lo":0,"pc_hi":0,"x":0,"y":0}`,
		"sum on q2":     `{"schema":"licm-queries/1","id":0,"kind":"q2","agg":"sum","pa_lo":0,"pa_hi":1,"pb_lo":0,"pb_hi":1,"pc_lo":0,"pc_hi":1,"x":1,"y":1}`,
	}
	for name, line := range cases {
		if _, err := ReadSpecs(strings.NewReader(line)); err == nil {
			t.Errorf("%s: ReadSpecs accepted %s", name, line)
		}
	}
}

func TestExecuteScoresAndValidates(t *testing.T) {
	cfg := testConfig()
	specs := testSpecs(t, 8)
	run, err := Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if err := run.Validate(); err != nil {
		t.Fatalf("run does not validate: %v", err)
	}
	if len(run.Records) != len(specs) {
		t.Fatalf("got %d records, want %d", len(run.Records), len(specs))
	}
	if run.Summary.Violations != 0 {
		for _, r := range run.Records {
			for _, v := range r.Violations {
				t.Errorf("%s: violation: %s", r.Name, v)
			}
		}
		t.Fatalf("run has %d consistency violations", run.Summary.Violations)
	}
	for _, r := range run.Records {
		// The acceptance criterion: an exactly-solved query checked
		// against exact ground truth must have perfectly tight bounds.
		if r.Quality == "exact" && r.GtSource == "exact" && r.Qerr != 1.0 {
			t.Errorf("%s: exact/exact qerr = %g, want exactly 1.0", r.Name, r.Qerr)
		}
		if r.Proven && r.Qerr < 1 {
			t.Errorf("%s: proven record has qerr %g < 1", r.Name, r.Qerr)
		}
	}
	if run.Summary.ExactRef == 0 {
		t.Error("no query got an exact ground-truth reference at this scale")
	}
	// JSONL round-trip in strict mode.
	var buf bytes.Buffer
	if err := WriteRun(&buf, run); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	got, err := ReadRun(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatalf("ReadRun strict: %v", err)
	}
	if !reflect.DeepEqual(run.Records, got.Records) {
		t.Error("records did not round-trip")
	}
	if !reflect.DeepEqual(run.Summary, got.Summary) {
		t.Error("summary did not round-trip")
	}
}

// stripTimings zeroes every wall-clock figure so two runs of the same
// seeded workload can be compared for determinism.
func stripTimings(run *Run) {
	for i := range run.Records {
		run.Records[i].LatencyNs = 0
	}
	if run.Summary != nil {
		run.Summary.WallNs = 0
		run.Summary.LatencyP50Ns = 0
		run.Summary.LatencyP95Ns = 0
		run.Summary.LatencyP99Ns = 0
	}
}

func TestExecuteDeterministic(t *testing.T) {
	cfg := testConfig()
	specs := testSpecs(t, 5)
	a, err := Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	b, err := Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	stripTimings(a)
	stripTimings(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of the same seeded workload differ beyond timings")
	}
}

func TestExecuteFeedsCensus(t *testing.T) {
	cfg := testConfig()
	cfg.Census = explain.NewCensus()
	specs := testSpecs(t, 4)
	run, err := Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	cs := cfg.Census.Summarize(0)
	if cs.Queries != len(specs) {
		t.Errorf("census saw %d queries, want %d", cs.Queries, len(specs))
	}
	// The external census observed exactly what the internal one
	// rolled into the summary.
	if cs.Components != run.Summary.Components {
		t.Errorf("census components %d, summary says %d", cs.Components, run.Summary.Components)
	}
	if cs.Distinct != run.Summary.DistinctFingerprints {
		t.Errorf("census distinct %d, summary says %d", cs.Distinct, run.Summary.DistinctFingerprints)
	}
	if cs.HitRate != run.Summary.CacheHitRate {
		t.Errorf("census hit rate %g, summary says %g", cs.HitRate, run.Summary.CacheHitRate)
	}
	var recComps int
	for _, r := range run.Records {
		recComps += r.Components
	}
	if int64(recComps) != run.Summary.Components {
		t.Errorf("record components sum to %d, summary says %d", recComps, run.Summary.Components)
	}
}

func TestOnRecordStreams(t *testing.T) {
	cfg := testConfig()
	var streamed []string
	cfg.OnRecord = func(r *Record) { streamed = append(streamed, r.Name) }
	specs := testSpecs(t, 3)
	run, err := Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(streamed) != len(run.Records) {
		t.Fatalf("OnRecord fired %d times for %d records", len(streamed), len(run.Records))
	}
	for i, r := range run.Records {
		if streamed[i] != r.Name {
			t.Errorf("OnRecord order: got %s at %d, want %s", streamed[i], i, r.Name)
		}
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		lb, ub, gtMin, gtMax int64
		want                 float64
	}{
		{10, 20, 10, 20, 1.0},  // perfectly tight
		{0, 0, 0, 0, 1.0},      // zero counts, +1 smoothing
		{5, 41, 10, 20, 2.0},   // ub overshoot dominates: 42/21
		{4, 20, 9, 20, 2.0},    // lb overshoot dominates: 10/5
		{0, 100, 50, 50, 51.0}, // lb collapse to 0 dominates: 51/1
	}
	for _, c := range cases {
		if got := qerror(c.lb, c.ub, c.gtMin, c.gtMax); got != c.want {
			t.Errorf("qerror(%d,%d,%d,%d) = %g, want %g", c.lb, c.ub, c.gtMin, c.gtMax, got, c.want)
		}
	}
}

func TestReadRunRejects(t *testing.T) {
	valid := func() *Run {
		cfg := testConfig()
		run, err := Execute(cfg, testSpecs(t, 2))
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		return run
	}()
	var buf bytes.Buffer
	if err := WriteRun(&buf, valid); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	base := buf.String()

	mutations := map[string]func(string) string{
		"wrong schema": func(s string) string {
			return strings.ReplaceAll(s, "licm-load/1", "licm-load/9")
		},
		"no summary": func(s string) string {
			lines := strings.Split(strings.TrimSpace(s), "\n")
			return strings.Join(lines[:len(lines)-1], "\n") + "\n"
		},
		"unknown field strict": func(s string) string {
			return strings.Replace(s, `"type":"query"`, `"type":"query","bogus":1`, 1)
		},
		"qerr below one": func(s string) string {
			return strings.Replace(s, `"qerr":1`, `"qerr":0.5`, 1)
		},
	}
	for name, mutate := range mutations {
		if _, err := ReadRun(strings.NewReader(mutate(base)), true); err == nil {
			t.Errorf("%s: strict ReadRun accepted the mutated stream", name)
		}
	}
	// Lenient mode still parses unknown fields.
	if _, err := ReadRun(strings.NewReader(mutations["unknown field strict"](base)), false); err != nil {
		t.Errorf("lenient ReadRun rejected unknown field: %v", err)
	}
}

func TestDiffRuns(t *testing.T) {
	cfg := testConfig()
	specs := testSpecs(t, 3)
	old, err := Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	clone := func() *Run {
		var buf bytes.Buffer
		if err := WriteRun(&buf, old); err != nil {
			t.Fatalf("WriteRun: %v", err)
		}
		run, err := ReadRun(bytes.NewReader(buf.Bytes()), true)
		if err != nil {
			t.Fatalf("ReadRun: %v", err)
		}
		return run
	}

	if d := DiffRuns(old, clone(), DefaultLoadTol()); !d.OK() {
		t.Fatalf("identical runs diff with breaches: %v", d.Breaches)
	}

	t.Run("changed proven bounds", func(t *testing.T) {
		mod := clone()
		for i := range mod.Records {
			if mod.Records[i].Proven {
				mod.Records[i].Ub++
				break
			}
		}
		if d := DiffRuns(old, mod, DefaultLoadTol()); d.OK() {
			t.Error("changed proven bounds not flagged")
		}
	})
	t.Run("missing query", func(t *testing.T) {
		mod := clone()
		mod.Records = mod.Records[1:]
		mod.Summary.Queries--
		mod.Summary.ByQuality[old.Records[0].Quality]--
		if d := DiffRuns(old, mod, DefaultLoadTol()); d.OK() {
			t.Error("missing query not flagged")
		}
	})
	t.Run("new violations", func(t *testing.T) {
		mod := clone()
		mod.Records[0].Violations = append(mod.Records[0].Violations, "synthetic")
		mod.Summary.Violations++
		if d := DiffRuns(old, mod, DefaultLoadTol()); d.OK() {
			t.Error("new violations not flagged")
		}
	})
	t.Run("exact count drop", func(t *testing.T) {
		mod := clone()
		mod.Summary.Exact--
		if d := DiffRuns(old, mod, DefaultLoadTol()); d.OK() {
			t.Error("exact count drop not flagged")
		}
	})
	t.Run("tightness regression", func(t *testing.T) {
		mod := clone()
		mod.Summary.QerrP90 = old.Summary.QerrP90 + 0.5
		if d := DiffRuns(old, mod, DefaultLoadTol()); d.OK() {
			t.Error("qerr p90 regression not flagged")
		}
	})
	t.Run("latency regression", func(t *testing.T) {
		mod := clone()
		mod.Summary.LatencyP95Ns = old.Summary.LatencyP95Ns*10 + 100_000_000
		if d := DiffRuns(old, mod, DefaultLoadTol()); d.OK() {
			t.Error("latency p95 regression not flagged")
		}
	})
	t.Run("parameter mismatch warns", func(t *testing.T) {
		mod := clone()
		mod.Summary.Seed++
		d := DiffRuns(old, mod, DefaultLoadTol())
		if len(d.Warnings) == 0 {
			t.Error("parameter mismatch produced no warning")
		}
	})
	t.Run("zero baseline latency", func(t *testing.T) {
		// A baseline quantile of (near) zero must not turn the factor
		// gate into an unbounded trip wire: the comparison base is
		// clamped to the noise floor, so a new quantile within
		// factor x floor still passes and one beyond it still breaches.
		tol := DefaultLoadTol()
		o := clone()
		o.Summary.LatencyP50Ns = 0
		n := clone()
		n.Summary.LatencyP50Ns = int64(float64(tol.MinLatencyNs)*tol.LatencyFactor) - 1
		if d := DiffRuns(o, n, tol); !d.OK() {
			t.Errorf("zero-baseline p50 within clamped factor breached: %v", d.Breaches)
		}
		n.Summary.LatencyP50Ns = int64(float64(tol.MinLatencyNs)*tol.LatencyFactor) + 1
		if d := DiffRuns(o, n, tol); d.OK() {
			t.Error("zero-baseline p50 beyond clamped factor not flagged")
		}
	})
}

// TestExecuteRemoteAnswer covers the Answer hook behind licmload
// -target: measured answers come from the hook, ground truth and
// scoring stay local, and a remote that lies about proven bounds is
// caught by the local consistency checks.
func TestExecuteRemoteAnswer(t *testing.T) {
	cfg := testConfig()
	specs := testSpecs(t, 3)
	local, err := Execute(cfg, specs)
	if err != nil {
		t.Fatalf("local Execute: %v", err)
	}

	// An honest remote echoing the local answers scores clean.
	byID := map[int]*Record{}
	for i := range local.Records {
		byID[local.Records[i].Spec.ID] = &local.Records[i]
	}
	rcfg := cfg
	rcfg.Answer = func(sp Spec) (*Answer, error) {
		lr := byID[sp.ID]
		return &Answer{
			Quality: lr.Quality, Lb: lr.Lb, Ub: lr.Ub,
			Infeasible: lr.Infeasible, LatencyNs: lr.LatencyNs,
			Vars: lr.Vars, Cons: lr.Cons,
		}, nil
	}
	remote, err := Execute(rcfg, specs)
	if err != nil {
		t.Fatalf("remote Execute: %v", err)
	}
	if remote.Summary.Violations != 0 {
		t.Fatalf("honest remote scored %d violations", remote.Summary.Violations)
	}
	for i := range remote.Records {
		rr, lr := &remote.Records[i], &local.Records[i]
		if rr.Quality != lr.Quality || rr.Lb != lr.Lb || rr.Ub != lr.Ub || rr.Proven != lr.Proven {
			t.Errorf("record %s: remote (%s [%d,%d] proven=%v) != local (%s [%d,%d] proven=%v)",
				rr.Name, rr.Quality, rr.Lb, rr.Ub, rr.Proven, lr.Quality, lr.Lb, lr.Ub, lr.Proven)
		}
		if err := rr.Validate(); err != nil {
			t.Errorf("record %s: %v", rr.Name, err)
		}
	}

	// A remote claiming exact quality with wrong bounds is flagged by
	// the local ground-truth cross-check — the gate cannot be fooled.
	lcfg := cfg
	lcfg.Answer = func(sp Spec) (*Answer, error) {
		return &Answer{Quality: "exact", Lb: 999_999, Ub: 999_999, LatencyNs: 1}, nil
	}
	lying, err := Execute(lcfg, specs)
	if err != nil {
		t.Fatalf("lying remote Execute: %v", err)
	}
	if lying.Summary.Violations == 0 {
		t.Fatal("lying remote scored no violations")
	}

	// A remote claiming only sampled quality is never held to proven
	// semantics, however wrong its estimate.
	scfg := cfg
	scfg.Answer = func(sp Spec) (*Answer, error) {
		return &Answer{Quality: "sampled", Lb: -5, Ub: -1, LatencyNs: 1}, nil
	}
	sampled, err := Execute(scfg, specs)
	if err != nil {
		t.Fatalf("sampled remote Execute: %v", err)
	}
	for i := range sampled.Records {
		if sampled.Records[i].Proven {
			t.Errorf("record %s: sampled remote answer marked proven", sampled.Records[i].Name)
		}
	}
	if sampled.Summary.Violations != 0 {
		t.Fatalf("unproven sampled answers scored %d violations", sampled.Summary.Violations)
	}

	// A remote transport failure fails the run loudly.
	ecfg := cfg
	ecfg.Answer = func(sp Spec) (*Answer, error) {
		return nil, fmt.Errorf("connection refused")
	}
	if _, err := Execute(ecfg, specs); err == nil {
		t.Fatal("remote answer error did not fail the run")
	}
}
