// Package super is the anytime solve supervisor: it wraps the exact
// BIP solver behind a context deadline and a degradation ladder, so a
// caller always gets *an* answer with an honest quality tag instead of
// a hang, a panic, or a bare error.
//
// The ladder, from best to worst:
//
//  1. Exact — both solves finished and proved their optima.
//  2. ProvenInterval — the budget or deadline ran out (or a solve
//     died), but per-component incumbent/bound snapshots still yield a
//     proven outer interval containing the true answer.
//  3. Sampled — no feasible incumbent exists for some side; a
//     Monte-Carlo estimate (internal/mc) is reported with explicitly
//     non-proven status.
//  4. Failed — nothing usable could be produced (e.g. no sampler was
//     configured and the solve produced no snapshots).
//
// Solver panics are recovered at the supervisor boundary into
// structured errors naming the offending component; a panicked solve
// is retried once with a perturbed branching order before degrading.
package super

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"licm/internal/encode"
	"licm/internal/expr"
	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/solver"
)

// Quality tags how much trust a supervised result deserves. Order is
// worst-to-best so the overall quality of an outcome is the minimum of
// its sides.
type Quality int

const (
	// Failed means no usable value was produced for some side.
	Failed Quality = iota
	// Sampled means some side carries only a Monte-Carlo estimate:
	// feasible worlds were seen, but the true optimum may lie far
	// outside the reported range.
	Sampled
	// ProvenInterval means every side carries a proven outer interval
	// containing its true optimum (at least one side is not exact).
	ProvenInterval
	// Exact means both optima were found and proven.
	Exact
)

// String returns the stable lower-case tag used in CLI and JSON output.
func (q Quality) String() string {
	switch q {
	case Exact:
		return "exact"
	case ProvenInterval:
		return "proven-interval"
	case Sampled:
		return "sampled"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Quality(%d)", int(q))
	}
}

// Config controls a supervised solve.
type Config struct {
	// Solver holds the base solver options. The supervisor owns Cancel
	// (merged with the context), Snapshots, and — on retry — OrderSeed;
	// everything else passes through. Trace/Metrics, when set, also
	// receive the supervisor's own events and counters (super.*).
	Solver solver.Options
	// Sample, if non-nil, is the degraded-mode fallback: it returns the
	// lowest and highest objective values observed over sampled worlds
	// (see MCFallback). Called at most once per Bounds call.
	Sample func() (lo, hi int64, ok bool)
	// RetrySeed perturbs the branching order of the retry after a
	// recovered panic; 0 uses a fixed default. The retry is
	// deterministic either way.
	RetrySeed int64
	// Log, if non-nil, receives warn-level records at the supervisor
	// boundary — degradation below exact, recovered panics, witness
	// exhaustion — so the degradation ladder is visible to log
	// pipelines, not only to trace consumers. nil disables logging.
	Log *slog.Logger
}

// Side is one direction (min or max) of a supervised Bounds call.
type Side struct {
	// Quality of this side alone.
	Quality Quality
	// Lo and Hi bracket the side's true optimum when Quality is Exact
	// (Lo == Hi) or ProvenInterval (Lo <= optimum <= Hi). For Sampled
	// they both hold the non-proven sampled estimate; for Failed they
	// are meaningless.
	Lo, Hi int64
	// Err is the terminal condition that forced degradation below
	// Exact: a wrapped solver error, a *solver.CompPanic, or a context
	// error. nil when the side is exact.
	Err error
	// Stats reports the solver work of the attempt that produced the
	// value (zero when no solve completed).
	Stats solver.Stats
}

// Outcome is the result of a supervised Bounds call. It never reports
// a panic and is always produced, whatever the solver did.
type Outcome struct {
	// Quality is the overall tag: the weaker of the two sides.
	Quality Quality
	// Min and Max are the two directions of the aggregate interval.
	Min, Max Side
	// Infeasible reports that the solver proved no possible world
	// exists; Quality is Exact (it is a proven fact) and the sides'
	// bounds are meaningless.
	Infeasible bool
	// Elapsed is the wall-clock budget spent in the supervisor,
	// including retries and the sampled fallback.
	Elapsed time.Duration
	// Retries counts perturbed-order re-solves after recovered panics.
	Retries int
	// PanicsRecovered counts solver panics contained at the boundary.
	PanicsRecovered int
}

// Interval returns the outer [lo, hi] the outcome claims for the
// aggregate answer: lo from the min side, hi from the max side. The
// claim is proven only when Quality is Exact or ProvenInterval.
func (o Outcome) Interval() (lo, hi int64) {
	return o.Min.Lo, o.Max.Hi
}

// Bounds computes the min and max of p.Objective under supervision:
// the context's deadline/cancellation bounds the solve, panics are
// contained (one perturbed retry each), and on any shortfall the
// result degrades down the ladder instead of erroring out.
func Bounds(ctx context.Context, p *solver.Problem, cfg Config) Outcome {
	start := time.Now()
	tr := cfg.Solver.Trace
	reg := cfg.Solver.Metrics
	rootAttrs := []obs.Attr{
		obs.Int("vars", p.NumVars),
		obs.Int("cons", len(p.Constraints)),
	}
	if cfg.Solver.RequestID != "" {
		// Stamp the serving-layer request id (threaded via
		// Solver.RequestID) so trace consumers can attribute the whole
		// supervised solve — ladder events included — to one request.
		rootAttrs = append(rootAttrs, obs.Str("request_id", cfg.Solver.RequestID))
	}
	sp := tr.Start("super.solve", rootAttrs...)
	s := &run{ctx: ctx, cfg: cfg, p: p, tr: tr, reg: reg}
	out := Outcome{}
	out.Max = s.side(true)
	out.Min = s.side(false)
	out.Retries, out.PanicsRecovered = s.retries, s.panics
	out.Infeasible = s.infeasible
	out.Quality = out.Max.Quality
	if out.Min.Quality < out.Quality {
		out.Quality = out.Min.Quality
	}
	if out.Infeasible {
		out.Quality = Exact
	}
	out.Elapsed = time.Since(start)
	if reg != nil {
		reg.Counter("super." + counterName(out.Quality)).Inc()
	}
	if out.Quality != Exact {
		tr.Event("super.degraded",
			obs.Str("quality", out.Quality.String()),
			obs.Str("min_quality", out.Min.Quality.String()),
			obs.Str("max_quality", out.Max.Quality.String()))
		s.warn("supervised solve degraded",
			"quality", out.Quality.String(),
			"min_quality", out.Min.Quality.String(),
			"max_quality", out.Max.Quality.String(),
			"retries", out.Retries,
			"panics_recovered", out.PanicsRecovered)
	}
	sp.End(
		obs.Str("quality", out.Quality.String()),
		obs.Bool("infeasible", out.Infeasible),
		obs.Int("retries", out.Retries),
		obs.Int("panics_recovered", out.PanicsRecovered),
		obs.DurNs("elapsed", out.Elapsed),
		obs.I64("alloc_bytes", out.Min.Stats.AllocBytes+out.Max.Stats.AllocBytes),
		obs.I64("peak_heap", maxI64(out.Min.Stats.PeakHeap, out.Max.Stats.PeakHeap)))
	return out
}

// maxI64 returns the larger of two int64 readings.
func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// counterName maps a quality to its super.* counter suffix.
func counterName(q Quality) string {
	switch q {
	case Exact:
		return "exact"
	case ProvenInterval:
		return "proven_interval"
	case Sampled:
		return "sampled"
	default:
		return "failed"
	}
}

// run carries the mutable state of one Bounds call.
type run struct {
	ctx context.Context
	cfg Config
	p   *solver.Problem
	tr  *obs.Tracer
	reg *obs.Registry

	retries    int
	panics     int
	infeasible bool

	sampled       bool
	sampleLo      int64
	sampleHi      int64
	sampleOK      bool
	sampleElapsed time.Duration
}

// side runs the degradation ladder for one direction and, when an
// explain recorder is attached, stamps the side's final quality onto
// every run it recorded for this sense (retries included) — the
// explain layer's only window into the ladder's verdict.
func (s *run) side(maximize bool) Side {
	name := "min"
	if maximize {
		name = "max"
	}
	sd := s.ladder(name, maximize)
	if rec := s.cfg.Solver.Explain; rec != nil {
		rec.TagSense(name, sd.Quality.String())
	}
	return sd
}

// ladder is the degradation ladder proper.
func (s *run) ladder(name string, maximize bool) Side {
	opts := s.cfg.Solver
	userCancel := opts.Cancel
	opts.Cancel = func() bool {
		if userCancel != nil && userCancel() {
			return true
		}
		select {
		case <-s.ctx.Done():
			return true
		default:
			return false
		}
	}
	board := &solver.SnapshotBoard{}
	opts.Snapshots = board

	var res solver.Result
	var err error
	var pan *solver.CompPanic
	if s.ctx.Err() != nil {
		// The deadline was spent before this side started: skip the
		// solve entirely (the board stays unregistered, so the ladder
		// falls straight to the sampled fallback).
		err = fmt.Errorf("super: %s side skipped: %w", name, s.ctx.Err())
	} else {
		res, err, pan = guardedSolve(s.p, opts, maximize)
		if pan != nil {
			s.recordPanic(name, pan)
			// One retry with a perturbed branching order: a crash tied
			// to one exploration path should not be replayed verbatim.
			// A fresh board keeps retry snapshots from mixing with the
			// dead solve's.
			s.retries++
			if s.reg != nil {
				s.reg.Counter("super.retries").Inc()
			}
			s.tr.Event("super.retry", obs.Str("side", name), obs.Int("component", pan.Component))
			opts.OrderSeed = s.retrySeed()
			retryBoard := &solver.SnapshotBoard{}
			opts.Snapshots = retryBoard
			var pan2 *solver.CompPanic
			res, err, pan2 = guardedSolve(s.p, opts, maximize)
			if pan2 != nil {
				s.recordPanic(name, pan2)
				pan = pan2
				// Keep whichever board got further; the retry board is
				// at least registered if the first one was.
				board = retryBoard
			} else {
				pan = nil
				board = retryBoard
			}
		}
	}

	if res.Stats.WitnessExhausted {
		s.warn("witness completion exhausted its node budget",
			"side", name, "nodes", res.Stats.Nodes)
	}
	switch {
	case pan == nil && err == nil && res.Proven:
		return Side{Quality: Exact, Lo: res.Value, Hi: res.Value, Stats: res.Stats}
	case pan == nil && err == nil:
		// Anytime result from the solver itself: Value is feasible,
		// Bound proven (upper for max, lower for min).
		sd := Side{Quality: ProvenInterval, Stats: res.Stats,
			Err: fmt.Errorf("super: %s side unproven within budget", name)}
		if maximize {
			sd.Lo, sd.Hi = res.Value, res.Bound
		} else {
			sd.Lo, sd.Hi = res.Bound, res.Value
		}
		return sd
	case pan == nil && errors.Is(err, solver.ErrInfeasible):
		s.infeasible = true
		return Side{Quality: Exact, Err: err}
	}
	if pan != nil {
		err = pan
	}
	// Assemble the anytime interval from the board. Board values are
	// in the internal maximization sense; Minimize negates the
	// objective, so the min side negates and swaps the ends.
	if lo, hi, hasLo, ok := board.Interval(); ok && hasLo {
		sd := Side{Quality: ProvenInterval, Err: err}
		if maximize {
			sd.Lo, sd.Hi = lo, hi
		} else {
			sd.Lo, sd.Hi = -hi, -lo
		}
		s.tr.Event("super.degraded",
			obs.Str("side", name),
			obs.Str("to", "proven-interval"),
			obs.I64("lo", sd.Lo),
			obs.I64("hi", sd.Hi))
		return sd
	}
	// No feasible incumbent anywhere: sampled estimate, clearly
	// non-proven.
	if lo, hi, ok := s.sample(); ok {
		v := lo
		if maximize {
			v = hi
		}
		s.tr.Event("super.degraded",
			obs.Str("side", name),
			obs.Str("to", "sampled"),
			obs.I64("value", v))
		return Side{Quality: Sampled, Lo: v, Hi: v, Err: err}
	}
	s.tr.Event("super.degraded", obs.Str("side", name), obs.Str("to", "failed"))
	return Side{Quality: Failed, Err: err}
}

// retrySeed returns the deterministic branching-order perturbation of
// the panic retry.
func (s *run) retrySeed() int64 {
	if s.cfg.RetrySeed != 0 {
		return s.cfg.RetrySeed
	}
	return 0x5eedbeef
}

// sample invokes the configured fallback at most once per Bounds call
// (both sides share the observed world range).
func (s *run) sample() (lo, hi int64, ok bool) {
	if !s.sampled {
		s.sampled = true
		if s.cfg.Sample != nil {
			t0 := time.Now()
			s.sampleLo, s.sampleHi, s.sampleOK = s.cfg.Sample()
			s.sampleElapsed = time.Since(t0)
		}
	}
	return s.sampleLo, s.sampleHi, s.sampleOK
}

// recordPanic counts, traces and logs one contained solver panic.
func (s *run) recordPanic(side string, pan *solver.CompPanic) {
	s.panics++
	if s.reg != nil {
		s.reg.Counter("super.panics_recovered").Inc()
	}
	s.tr.Event("super.panic_recovered",
		obs.Str("side", side),
		obs.Int("component", pan.Component),
		obs.Str("value", fmt.Sprintf("%v", pan.Value)))
	s.warn("solver panic recovered at supervisor boundary",
		"side", side,
		"component", pan.Component,
		"value", fmt.Sprintf("%v", pan.Value))
}

// warn emits one warn-level record on the configured logger; a nil
// logger discards, mirroring the obs nil no-op contract.
func (s *run) warn(msg string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Warn(msg, args...)
	}
}

// guardedSolve runs one solver call with the panic boundary installed:
// any panic surfaces as a *solver.CompPanic instead of unwinding the
// caller.
func guardedSolve(p *solver.Problem, opts solver.Options, maximize bool) (res solver.Result, err error, pan *solver.CompPanic) {
	defer func() {
		if r := recover(); r != nil {
			if cp, ok := r.(*solver.CompPanic); ok {
				pan = cp
				return
			}
			pan = &solver.CompPanic{Component: -1, Value: r}
		}
	}()
	if maximize {
		res, err = solver.Maximize(p, opts)
	} else {
		res, err = solver.Minimize(p, opts)
	}
	return res, err, nil
}

// MCFallback builds a Config.Sample closure over the Monte-Carlo
// sampler: n uniformly sampled worlds of the encoded database,
// objective evaluated directly on each. Sampling is deterministic in
// seed.
func MCFallback(enc *encode.Encoded, obj expr.Lin, seed int64, n int) func() (lo, hi int64, ok bool) {
	return func() (int64, int64, bool) {
		if n <= 0 {
			return 0, 0, false
		}
		est := mc.NewSampler(enc, seed).EstimateObjective(obj, n)
		return est.Min, est.Max, true
	}
}
