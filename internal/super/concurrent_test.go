package super_test

import (
	"context"
	"sync"
	"testing"

	"licm/internal/core"
	"licm/internal/solver"
	"licm/internal/super"
	"licm/internal/workload"
)

// TestBoundsConcurrentSharedStore is the serving-path concurrency
// contract, run under the chaos CI job's -race build: many goroutines
// answer queries through super.Bounds against one shared encoded
// store, the way the licmd worker pool does. Two properties are
// pinned:
//
//   - No data race: queries grow the store they encode against, so
//     each goroutine builds its own encoding from the shared
//     anonymized data (workload.Config.Encoder), and the solver treats
//     the built problem as read-only.
//   - Determinism under concurrency: every goroutine solving the same
//     spec must produce the identical outcome — scheduling must never
//     leak into proven figures.
func TestBoundsConcurrentSharedStore(t *testing.T) {
	opts := solver.DefaultOptions()
	opts.CompleteWitness = false
	cfg := workload.Config{
		NumTransactions: 80,
		NumItems:        30,
		Scheme:          "k",
		K:               4,
		Seed:            3,
		Solver:          opts,
	}
	newEnc, err := cfg.Encoder()
	if err != nil {
		t.Fatalf("Encoder: %v", err)
	}
	specs := workload.GenerateSpecs(3, 11, 1000, 40)

	const workers = 8
	type result struct {
		quality    super.Quality
		lo, hi     int64
		infeasible bool
	}
	results := make([][]result, len(specs))
	for i := range results {
		results[i] = make([]result, workers)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for si, sp := range specs {
				enc := newEnc()
				obj, _, err := sp.Build(enc)
				if err != nil {
					t.Errorf("worker %d: build %s: %v", w, sp.Name(), err)
					return
				}
				out := super.Bounds(context.Background(),
					core.BuildProblem(enc.DB, obj), chaosConfig())
				lo, hi := out.Interval()
				results[si][w] = result{out.Quality, lo, hi, out.Infeasible}
			}
		}(w)
	}
	wg.Wait()

	for si, sp := range specs {
		ref := results[si][0]
		if ref.quality < super.ProvenInterval {
			t.Errorf("%s: concurrent solve degraded to %v with no fault injected", sp.Name(), ref.quality)
		}
		for w := 1; w < workers; w++ {
			if results[si][w] != ref {
				t.Errorf("%s: worker %d outcome %+v differs from worker 0 %+v — scheduling leaked into the answer",
					sp.Name(), w, results[si][w], ref)
			}
		}
	}
}

// TestBoundsConcurrentOneEncoding pins the stricter sharing mode: many
// goroutines solving different problems built from the same encoding's
// DB concurrently. BuildProblem and the solver only read the store, so
// this must be race-free too (queries that grow the store are excluded
// by construction — each Build here happened before the solves start).
func TestBoundsConcurrentOneEncoding(t *testing.T) {
	opts := solver.DefaultOptions()
	opts.CompleteWitness = false
	cfg := workload.Config{
		NumTransactions: 80,
		NumItems:        30,
		Scheme:          "k",
		K:               4,
		Seed:            3,
		Solver:          opts,
	}
	newEnc, err := cfg.Encoder()
	if err != nil {
		t.Fatalf("Encoder: %v", err)
	}
	specs := workload.GenerateSpecs(4, 11, 1000, 40)

	// One shared encoding: all specs grow it up front, then the solves
	// run concurrently against the final store.
	enc := newEnc()
	probs := make([]*solver.Problem, len(specs))
	for i, sp := range specs {
		obj, _, err := sp.Build(enc)
		if err != nil {
			t.Fatalf("build %s: %v", sp.Name(), err)
		}
		probs[i] = core.BuildProblem(enc.DB, obj)
	}

	var wg sync.WaitGroup
	outs := make([]super.Outcome, len(probs))
	for i := range probs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = super.Bounds(context.Background(), probs[i], chaosConfig())
		}(i)
	}
	wg.Wait()

	// Sequential reference solves on a fresh, identically-grown store:
	// concurrency must not change any proven figure.
	encRef := newEnc()
	for i, sp := range specs {
		obj, _, err := sp.Build(encRef)
		if err != nil {
			t.Fatalf("reference build %s: %v", sp.Name(), err)
		}
		if outs[i].Quality < super.ProvenInterval {
			t.Errorf("%s: concurrent solve degraded to %v with no fault injected", sp.Name(), outs[i].Quality)
			continue
		}
		ref := super.Bounds(context.Background(),
			core.BuildProblem(encRef.DB, obj), chaosConfig())
		lo, hi := outs[i].Interval()
		rlo, rhi := ref.Interval()
		if outs[i].Quality != ref.Quality || lo != rlo || hi != rhi {
			t.Errorf("%s: concurrent outcome %v [%d,%d] differs from sequential %v [%d,%d]",
				sp.Name(), outs[i].Quality, lo, hi, ref.Quality, rlo, rhi)
		}
	}
}
