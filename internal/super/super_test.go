package super_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math/rand"
	"strings"
	"testing"
	"time"

	"licm/internal/expr"
	"licm/internal/faultinject"
	"licm/internal/solver"
	"licm/internal/super"
)

// groupsProblem is the DFS-path fixture: nGroups independent
// "at least one of three" groups, count objective. Many small
// components, so faults sweep across component boundaries.
func groupsProblem(nGroups int) *solver.Problem {
	var cons []expr.Constraint
	var all []expr.Var
	for g := 0; g < nGroups; g++ {
		vs := []expr.Var{expr.Var(3 * g), expr.Var(3*g + 1), expr.Var(3*g + 2)}
		all = append(all, vs...)
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.GE, 1))
	}
	return &solver.Problem{NumVars: 3 * nGroups, Constraints: cons, Objective: expr.Sum(all...)}
}

// orCountProblem is the LP-path fixture: customer records constrained
// to [1,2] present per customer, region OR variables as the objective —
// the fixture family the solver's LP-guided tests use, rebuilt here
// against the public API. One large component, so faults land inside
// LP-bounded search and simplex pivots.
func orCountProblem(nCustomers, nRegions int, seed int64) *solver.Problem {
	r := rand.New(rand.NewSource(seed))
	var cons []expr.Constraint
	numVars := 0
	newVar := func() expr.Var { numVars++; return expr.Var(numVars - 1) }
	regionRecs := make([][]expr.Var, nRegions)
	for c := 0; c < nCustomers; c++ {
		n := 2 + r.Intn(3)
		vars := make([]expr.Var, n)
		for i := range vars {
			vars[i] = newVar()
			regionRecs[r.Intn(nRegions)] = append(regionRecs[r.Intn(nRegions)], vars[i])
		}
		cons = append(cons,
			expr.NewConstraint(expr.Sum(vars...), expr.GE, 1),
			expr.NewConstraint(expr.Sum(vars...), expr.LE, 2),
		)
	}
	derivedStart := numVars
	var objTerms []expr.Term
	for g := 0; g < nRegions; g++ {
		if len(regionRecs[g]) == 0 {
			continue
		}
		or := newVar()
		for _, a := range regionRecs[g] {
			cons = append(cons, expr.NewConstraint(expr.Sum(or).AddTerm(a, -1), expr.GE, 0))
		}
		cons = append(cons, expr.NewConstraint(expr.Sum(or).Add(expr.Sum(regionRecs[g]...).Neg()), expr.LE, 0))
		objTerms = append(objTerms, expr.Term{Var: or, Coef: 1})
	}
	derived := make([]bool, numVars)
	for v := derivedStart; v < numVars; v++ {
		derived[v] = true
	}
	return &solver.Problem{
		NumVars:     numVars,
		Constraints: cons,
		Objective:   expr.NewLin(0, objTerms...),
		Derived:     derived,
	}
}

// exactRef computes the trusted reference interval with the plain
// (unsupervised, unfaulted) solver.
func exactRef(t *testing.T, p *solver.Problem) (int64, int64) {
	t.Helper()
	min, max, err := solver.Bounds(p, solver.DefaultOptions())
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	if !min.Proven || !max.Proven {
		t.Fatalf("reference solve unproven — fixture too hard")
	}
	return min.Value, max.Value
}

func chaosConfig() super.Config {
	return super.Config{
		Solver: solver.DefaultOptions(),
		// A stub fallback so the bottom of the ladder is Sampled, not
		// Failed; values are irrelevant to the proven-side assertions.
		Sample: func() (int64, int64, bool) { return 0, 0, true },
	}
}

// checkOutcome asserts the quality tag's claim against the reference:
// Exact must equal it, ProvenInterval must contain it, Sampled/Failed
// claim nothing.
func checkOutcome(t *testing.T, label string, out super.Outcome, refMin, refMax int64) {
	t.Helper()
	switch out.Quality {
	case super.Exact:
		if out.Min.Lo != refMin || out.Min.Hi != refMin || out.Max.Lo != refMax || out.Max.Hi != refMax {
			t.Errorf("%s: Exact outcome min[%d,%d] max[%d,%d] != reference [%d,%d]",
				label, out.Min.Lo, out.Min.Hi, out.Max.Lo, out.Max.Hi, refMin, refMax)
		}
	case super.ProvenInterval:
		if out.Min.Lo > refMin || out.Min.Hi < refMin {
			t.Errorf("%s: min interval [%d,%d] excludes true min %d", label, out.Min.Lo, out.Min.Hi, refMin)
		}
		if out.Max.Lo > refMax || out.Max.Hi < refMax {
			t.Errorf("%s: max interval [%d,%d] excludes true max %d", label, out.Max.Lo, out.Max.Hi, refMax)
		}
	}
	// Per-side proven claims hold regardless of the overall tag.
	for _, sd := range []struct {
		name string
		s    super.Side
		ref  int64
	}{{"min", out.Min, refMin}, {"max", out.Max, refMax}} {
		if sd.s.Quality >= super.ProvenInterval && (sd.s.Lo > sd.ref || sd.s.Hi < sd.ref) {
			t.Errorf("%s: %s side [%d,%d] excludes true value %d", label, sd.name, sd.s.Lo, sd.s.Hi, sd.ref)
		}
	}
}

// TestChaosSweep is the harness's centerpiece: inject a fault at every
// reachable batch boundary (and a sample of LP pivots) of a fixed-seed
// supervised solve, and require that the supervisor never lets a panic
// escape and never mislabels a degraded result.
func TestChaosSweep(t *testing.T) {
	fixtures := []struct {
		name string
		p    *solver.Problem
	}{
		{"groups", groupsProblem(20)},
		{"orcount", orCountProblem(60, 6, 3)},
	}
	siteActions := map[faultinject.Site][]faultinject.Action{
		faultinject.CtrlBatch: {faultinject.Panic, faultinject.Cancel},
		faultinject.LPPivot:   {faultinject.Panic, faultinject.JitterNaN, faultinject.JitterInf},
	}
	for _, fx := range fixtures {
		refMin, refMax := exactRef(t, fx.p)

		// Counting pass: an armed-but-inert plan records how many times
		// each site is reached by the full supervised solve.
		disarm := faultinject.Arm(faultinject.Plan{Site: faultinject.CtrlBatch, Hit: -1, Action: faultinject.None})
		out := super.Bounds(context.Background(), fx.p, chaosConfig())
		hits := map[faultinject.Site]int64{
			faultinject.CtrlBatch: faultinject.Hits(faultinject.CtrlBatch),
			faultinject.LPPivot:   faultinject.Hits(faultinject.LPPivot),
		}
		disarm()
		if out.Quality != super.Exact {
			t.Fatalf("%s: unfaulted supervised solve quality = %v, want Exact", fx.name, out.Quality)
		}
		checkOutcome(t, fx.name+"/clean", out, refMin, refMax)
		if hits[faultinject.CtrlBatch] == 0 {
			t.Fatalf("%s: no ctrl batch boundaries reached — sweep would be empty", fx.name)
		}

		for site, actions := range siteActions {
			n := hits[site]
			if n == 0 {
				continue
			}
			// Sweep every hit when cheap, else stride to ~24 probes.
			step := n / 24
			if step < 1 {
				step = 1
			}
			for _, action := range actions {
				for h := int64(0); h < n; h += step {
					disarm := faultinject.Arm(faultinject.Plan{Site: site, Hit: h, Action: action})
					out := super.Bounds(context.Background(), fx.p, chaosConfig())
					disarm()
					label := fx.name + "/" + site.String() + "/" + action.String()
					checkOutcome(t, label, out, refMin, refMax)
					if action == faultinject.Panic && out.PanicsRecovered == 0 {
						t.Errorf("%s hit %d: injected panic was not recorded as recovered", label, h)
					}
				}
			}
		}
	}
}

// TestDeadlineAlreadyExpired: a spent deadline must degrade to
// Sampled (or Failed without a sampler) immediately — never hang,
// never claim proof.
func TestDeadlineAlreadyExpired(t *testing.T) {
	p := orCountProblem(60, 6, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan super.Outcome, 1)
	go func() { done <- super.Bounds(ctx, p, chaosConfig()) }()
	select {
	case out := <-done:
		if out.Quality != super.Sampled {
			t.Fatalf("quality = %v, want Sampled (stub sampler configured)", out.Quality)
		}
		if out.Min.Err == nil || out.Max.Err == nil {
			t.Fatal("degraded sides must carry the terminal error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("supervised solve hung on an expired deadline")
	}

	cfg := chaosConfig()
	cfg.Sample = nil
	out := super.Bounds(ctx, p, cfg)
	if out.Quality != super.Failed {
		t.Fatalf("quality without sampler = %v, want Failed", out.Quality)
	}
}

// TestDeadlineMidSolve: a deadline that can expire during the search
// still yields an honestly-labeled result.
func TestDeadlineMidSolve(t *testing.T) {
	p := orCountProblem(120, 10, 7)
	refMin, refMax := exactRef(t, p)
	for _, d := range []time.Duration{time.Nanosecond, 200 * time.Microsecond, 50 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		out := super.Bounds(ctx, p, chaosConfig())
		cancel()
		checkOutcome(t, "deadline "+d.String(), out, refMin, refMax)
	}
}

// TestRetryAfterPanicReachesExact: a single injected panic must be
// absorbed by the perturbed-order retry, ending Exact.
func TestRetryAfterPanicReachesExact(t *testing.T) {
	p := groupsProblem(12)
	refMin, refMax := exactRef(t, p)
	disarm := faultinject.Arm(faultinject.Plan{Site: faultinject.CtrlBatch, Hit: 0, Action: faultinject.Panic})
	out := super.Bounds(context.Background(), p, chaosConfig())
	disarm()
	if out.Quality != super.Exact {
		t.Fatalf("quality = %v, want Exact after retry", out.Quality)
	}
	if out.Retries != 1 || out.PanicsRecovered != 1 {
		t.Fatalf("retries=%d panics=%d, want 1/1", out.Retries, out.PanicsRecovered)
	}
	checkOutcome(t, "retry", out, refMin, refMax)
}

// TestInfeasibleIsExact: proven infeasibility is a fact, not a
// degradation.
func TestInfeasibleIsExact(t *testing.T) {
	v := []expr.Var{0, 1}
	p := &solver.Problem{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(v...), expr.GE, 2),
			expr.NewConstraint(expr.Sum(v...), expr.LE, 1),
		},
		Objective: expr.Sum(v...),
	}
	out := super.Bounds(context.Background(), p, chaosConfig())
	if !out.Infeasible || out.Quality != super.Exact {
		t.Fatalf("infeasible=%v quality=%v, want true/Exact", out.Infeasible, out.Quality)
	}
}

// TestSupervisorWarnLogging: the supervisor boundary emits structured
// warn records for degradation and recovered panics when Config.Log is
// set, stays silent on clean exact solves, and tolerates a nil logger.
func TestSupervisorWarnLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))

	// Every record must be one valid JSON object at level WARN.
	checkRecords := func(wantMsg string) {
		t.Helper()
		found := false
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("log line is not JSON: %q: %v", line, err)
			}
			if rec["level"] != "WARN" {
				t.Errorf("level = %v, want WARN: %q", rec["level"], line)
			}
			if rec["msg"] == wantMsg {
				found = true
			}
		}
		if !found {
			t.Errorf("no %q record in:\n%s", wantMsg, buf.String())
		}
	}

	// Degradation: an already-expired deadline lands on the sampled rung.
	p := orCountProblem(60, 6, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := chaosConfig()
	cfg.Log = logger
	if out := super.Bounds(ctx, p, cfg); out.Quality != super.Sampled {
		t.Fatalf("quality = %v, want Sampled", out.Quality)
	}
	checkRecords("supervised solve degraded")

	// Panic recovery: one injected panic is absorbed, retried, and logged.
	buf.Reset()
	disarm := faultinject.Arm(faultinject.Plan{Site: faultinject.CtrlBatch, Hit: 0, Action: faultinject.Panic})
	out := super.Bounds(context.Background(), groupsProblem(12), cfg)
	disarm()
	if out.PanicsRecovered != 1 {
		t.Fatalf("panics recovered = %d, want 1", out.PanicsRecovered)
	}
	checkRecords("solver panic recovered at supervisor boundary")

	// A clean exact solve logs nothing at warn level.
	buf.Reset()
	if out := super.Bounds(context.Background(), groupsProblem(12), cfg); out.Quality != super.Exact {
		t.Fatalf("quality = %v, want Exact", out.Quality)
	}
	if buf.Len() != 0 {
		t.Errorf("clean solve produced warn records:\n%s", buf.String())
	}

	// Nil logger on a degraded solve must not panic.
	if out := super.Bounds(ctx, p, chaosConfig()); out.Quality != super.Sampled {
		t.Fatalf("nil-logger quality = %v, want Sampled", out.Quality)
	}
}
