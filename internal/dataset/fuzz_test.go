package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the parser never panics and that every successfully
// parsed dataset round-trips through WriteTo/Read.
func FuzzRead(f *testing.F) {
	f.Add("I 0 5 beer\nT 0 7 0\n")
	f.Add("# comment\n\nI 1 2 a b c\n")
	f.Add("T 3 4 1,2,3\n")
	f.Add("X bogus\n")
	f.Add("I a b c\nT x y z\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo failed on parsed dataset: %v", err)
		}
		d2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if len(d2.Items) != len(d.Items) || len(d2.Trans) != len(d.Trans) {
			t.Fatalf("round-trip changed sizes: %d/%d vs %d/%d",
				len(d.Items), len(d.Trans), len(d2.Items), len(d2.Trans))
		}
	})
}
