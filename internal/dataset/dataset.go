// Package dataset models set-valued transaction data — the substrate
// of the paper's evaluation — and generates synthetic datasets shaped
// like BMS-POS (515K transactions over 1,657 item types, average
// transaction size 6.5, maximum 164).
//
// The real BMS-POS dataset is not redistributable; the generator is
// the documented substitution (DESIGN.md): Zipf-distributed item
// popularity, a heavy-tailed transaction-size distribution matched to
// the reported statistics, and the same synthetic attributes the paper
// adds — a Location id drawn uniformly from [0, 999] per transaction
// and a Price id drawn uniformly from [0, 39] per item.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// Item is a catalog entry.
type Item struct {
	ID    int32
	Name  string
	Price int64
}

// Transaction is one basket: a set of item ids plus the synthetic
// Location attribute.
type Transaction struct {
	ID       int32
	Location int64
	Items    []int32
}

// Dataset is a transaction database.
type Dataset struct {
	Items []Item
	Trans []Transaction
}

// Config controls synthetic generation. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	NumTransactions int
	NumItems        int
	AvgSize         float64 // mean items per transaction
	MaxSize         int     // hard cap on transaction size
	ZipfS           float64 // item popularity skew (> 1)
	LocationRange   int64   // locations drawn uniformly from [0, LocationRange)
	PriceRange      int64   // prices drawn uniformly from [0, PriceRange)
	Seed            int64
}

// DefaultConfig mirrors the BMS-POS statistics at a configurable
// transaction count.
func DefaultConfig(numTransactions int) Config {
	return Config{
		NumTransactions: numTransactions,
		NumItems:        1657,
		AvgSize:         6.5,
		MaxSize:         164,
		ZipfS:           1.25,
		LocationRange:   1000,
		PriceRange:      40,
		Seed:            1,
	}
}

// WebView1Config mirrors BMS-WebView-1 (59,602 transactions over 497
// items, average size 2.5), the second dataset of the paper's
// evaluation ("other experiments on BMS-Webview-1 and -2 showed
// similar trends"), at a configurable transaction count.
func WebView1Config(numTransactions int) Config {
	cfg := DefaultConfig(numTransactions)
	cfg.NumItems = 497
	cfg.AvgSize = 2.5
	cfg.MaxSize = 267
	return cfg
}

// WebView2Config mirrors BMS-WebView-2 (77,512 transactions over
// 3,340 items, average size 5.0).
func WebView2Config(numTransactions int) Config {
	cfg := DefaultConfig(numTransactions)
	cfg.NumItems = 3340
	cfg.AvgSize = 5.0
	cfg.MaxSize = 161
	return cfg
}

// Generate builds a synthetic dataset. Generation is deterministic in
// Config.Seed.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.NumTransactions < 1 || cfg.NumItems < 1 {
		return nil, fmt.Errorf("dataset: need positive sizes, got %d transactions, %d items", cfg.NumTransactions, cfg.NumItems)
	}
	if cfg.AvgSize < 1 {
		return nil, fmt.Errorf("dataset: AvgSize must be >= 1, got %v", cfg.AvgSize)
	}
	if cfg.MaxSize < 1 {
		cfg.MaxSize = cfg.NumItems
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("dataset: ZipfS must be > 1, got %v", cfg.ZipfS)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{}
	for i := 0; i < cfg.NumItems; i++ {
		d.Items = append(d.Items, Item{
			ID:    int32(i),
			Name:  fmt.Sprintf("item%04d", i),
			Price: r.Int63n(cfg.PriceRange),
		})
	}
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.NumItems-1))
	for t := 0; t < cfg.NumTransactions; t++ {
		size := 1 + int(r.ExpFloat64()*(cfg.AvgSize-1))
		if size > cfg.MaxSize {
			size = cfg.MaxSize
		}
		if size > cfg.NumItems {
			size = cfg.NumItems
		}
		seen := make(map[int32]bool, size)
		items := make([]int32, 0, size)
		for tries := 0; len(items) < size && tries < 20*size; tries++ {
			it := int32(zipf.Uint64())
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		d.Trans = append(d.Trans, Transaction{
			ID:       int32(t),
			Location: r.Int63n(cfg.LocationRange),
			Items:    items,
		})
	}
	return d, nil
}

// Stats summarizes a dataset (for sanity checks against the BMS-POS
// numbers quoted in the paper).
type Stats struct {
	NumTransactions int
	NumItems        int
	DistinctItems   int // items appearing in at least one transaction
	AvgSize         float64
	MaxSize         int
	TotalRows       int // total (transaction, item) pairs
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{NumTransactions: len(d.Trans), NumItems: len(d.Items)}
	used := make(map[int32]bool)
	for _, t := range d.Trans {
		s.TotalRows += len(t.Items)
		if len(t.Items) > s.MaxSize {
			s.MaxSize = len(t.Items)
		}
		for _, it := range t.Items {
			used[it] = true
		}
	}
	s.DistinctItems = len(used)
	if len(d.Trans) > 0 {
		s.AvgSize = float64(s.TotalRows) / float64(len(d.Trans))
	}
	return s
}

// ItemFrequencies returns, per item id, the number of transactions
// containing it.
func (d *Dataset) ItemFrequencies() []int {
	freq := make([]int, len(d.Items))
	for _, t := range d.Trans {
		for _, it := range t.Items {
			freq[it]++
		}
	}
	return freq
}

// WriteTo serializes the dataset in a simple line format:
//
//	I <id> <price> <name>
//	T <id> <location> <item,item,...>
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, it := range d.Items {
		k, err := fmt.Fprintf(bw, "I %d %d %s\n", it.ID, it.Price, it.Name)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	for _, t := range d.Trans {
		parts := make([]string, len(t.Items))
		for i, it := range t.Items {
			parts[i] = strconv.Itoa(int(it))
		}
		k, err := fmt.Fprintf(bw, "T %d %d %s\n", t.ID, t.Location, strings.Join(parts, ","))
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses the format produced by WriteTo.
func Read(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.SplitN(text, " ", 4)
		switch fields[0] {
		case "I":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: line %d: malformed item", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			price, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad item numbers", line)
			}
			d.Items = append(d.Items, Item{ID: int32(id), Price: price, Name: fields[3]})
		case "T":
			if len(fields) != 4 {
				return nil, fmt.Errorf("dataset: line %d: malformed transaction", line)
			}
			id, err1 := strconv.Atoi(fields[1])
			loc, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad transaction numbers", line)
			}
			var items []int32
			if fields[3] != "" {
				for _, p := range strings.Split(fields[3], ",") {
					v, err := strconv.Atoi(p)
					if err != nil {
						return nil, fmt.Errorf("dataset: line %d: bad item id %q", line, p)
					}
					items = append(items, int32(v))
				}
			}
			d.Trans = append(d.Trans, Transaction{ID: int32(id), Location: loc, Items: items})
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown record type %q", line, fields[0])
		}
	}
	return d, sc.Err()
}
