package dataset

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(2000)
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.NumTransactions != 2000 || s.NumItems != 1657 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgSize < 4 || s.AvgSize > 9 {
		t.Errorf("avg size %v far from target 6.5", s.AvgSize)
	}
	if s.MaxSize > cfg.MaxSize {
		t.Errorf("max size %d exceeds cap %d", s.MaxSize, cfg.MaxSize)
	}
	for _, tr := range d.Trans {
		if len(tr.Items) < 1 {
			t.Fatal("empty transaction")
		}
		if tr.Location < 0 || tr.Location >= cfg.LocationRange {
			t.Fatalf("location %d out of range", tr.Location)
		}
		seen := map[int32]bool{}
		for _, it := range tr.Items {
			if seen[it] {
				t.Fatalf("transaction %d has duplicate item %d", tr.ID, it)
			}
			seen[it] = true
			if int(it) >= len(d.Items) {
				t.Fatalf("item id %d out of range", it)
			}
		}
	}
	for _, it := range d.Items {
		if it.Price < 0 || it.Price >= cfg.PriceRange {
			t.Fatalf("price %d out of range", it.Price)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(200)
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed should generate identical datasets")
	}
	cfg.Seed = 2
	c, _ := Generate(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestGenerateSkew(t *testing.T) {
	d, err := Generate(DefaultConfig(5000))
	if err != nil {
		t.Fatal(err)
	}
	freq := d.ItemFrequencies()
	// Zipf: the most popular item should dwarf the median.
	max, nonZero := 0, 0
	for _, f := range freq {
		if f > max {
			max = f
		}
		if f > 0 {
			nonZero++
		}
	}
	if max < 500 {
		t.Errorf("top item frequency %d too flat for Zipf", max)
	}
	if nonZero < 100 {
		t.Errorf("only %d items used; distribution too concentrated", nonZero)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []Config{
		{NumTransactions: 0, NumItems: 5, AvgSize: 2, ZipfS: 1.5},
		{NumTransactions: 5, NumItems: 0, AvgSize: 2, ZipfS: 1.5},
		{NumTransactions: 5, NumItems: 5, AvgSize: 0.5, ZipfS: 1.5},
		{NumTransactions: 5, NumItems: 5, AvgSize: 2, ZipfS: 1.0},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestGenerateTinyDomains(t *testing.T) {
	cfg := Config{NumTransactions: 10, NumItems: 2, AvgSize: 5, MaxSize: 10, ZipfS: 1.5, LocationRange: 1, PriceRange: 1, Seed: 3}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range d.Trans {
		if len(tr.Items) > 2 {
			t.Fatalf("transaction exceeds item domain: %v", tr.Items)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	d, err := Generate(DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []string{
		"X 1 2 3",
		"I 1 2",
		"I a 2 name",
		"T 1 2",
		"T a 2 1,2",
		"T 1 2 1,x",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d (%q): want error", i, c)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nI 0 5 beer\nT 0 7 0\n"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Items) != 1 || len(d.Trans) != 1 {
		t.Fatalf("parsed %d items, %d trans", len(d.Items), len(d.Trans))
	}
}

func TestStatsEmpty(t *testing.T) {
	d := &Dataset{}
	s := d.Stats()
	if s.AvgSize != 0 || s.TotalRows != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	if v := math.IsNaN(s.AvgSize); v {
		t.Error("AvgSize must not be NaN")
	}
}

func TestWebViewPresets(t *testing.T) {
	w1 := WebView1Config(100)
	if w1.NumItems != 497 || w1.AvgSize != 2.5 {
		t.Errorf("WebView1 = %+v", w1)
	}
	w2 := WebView2Config(100)
	if w2.NumItems != 3340 || w2.AvgSize != 5.0 {
		t.Errorf("WebView2 = %+v", w2)
	}
	for _, cfg := range []Config{w1, w2} {
		d, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := d.Stats()
		if s.AvgSize < 1 || s.AvgSize > 2*cfg.AvgSize+2 {
			t.Errorf("avg size %v far from target %v", s.AvgSize, cfg.AvgSize)
		}
	}
}
