package anon

import (
	"fmt"
	"sort"

	"licm/internal/dataset"
)

// Suppressed is the output of suppression-based anonymization in the
// style of (h,k,p)-coherence [Xu et al., KDD 2008]: rare "private"
// items are removed globally; each transaction publishes its kept
// (public) items plus the count of items removed from it. Under
// global suppression the removed items no longer appear anywhere, so
// an adversary — and a query answerer — knows only that each
// suppressed slot holds one of the globally suppressed candidates
// (Appendix C).
type Suppressed struct {
	// Trans mirrors the source transactions.
	Trans []SuppressedTransaction
	// Candidates are the globally suppressed item ids: every
	// suppressed slot holds a distinct item from this list.
	Candidates []int32
}

// SuppressedTransaction is one anonymized transaction.
type SuppressedTransaction struct {
	ID            int32
	Location      int64
	Kept          []int32
	NumSuppressed int
}

// SuppressAnonymize removes, globally, every item whose support is
// below minSupport transactions (the "private, too identifying" items
// of the coherence model). It errors if nothing would remain.
func SuppressAnonymize(d *dataset.Dataset, minSupport int) (*Suppressed, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("anon: minSupport must be >= 1, got %d", minSupport)
	}
	if err := validateInput(d, nil, 1); err != nil {
		return nil, err
	}
	freq := make(map[int32]int)
	for _, t := range d.Trans {
		for _, it := range t.Items {
			freq[it]++
		}
	}
	suppressed := make(map[int32]bool)
	for it, f := range freq {
		if f < minSupport {
			suppressed[it] = true
		}
	}
	out := &Suppressed{}
	for it := range suppressed {
		out.Candidates = append(out.Candidates, it)
	}
	sort.Slice(out.Candidates, func(a, b int) bool { return out.Candidates[a] < out.Candidates[b] })
	kept := 0
	for _, t := range d.Trans {
		st := SuppressedTransaction{ID: t.ID, Location: t.Location}
		for _, it := range t.Items {
			if suppressed[it] {
				st.NumSuppressed++
			} else {
				st.Kept = append(st.Kept, it)
				kept++
			}
		}
		out.Trans = append(out.Trans, st)
	}
	if kept == 0 {
		return nil, fmt.Errorf("anon: minSupport %d suppresses every item occurrence", minSupport)
	}
	return out, nil
}

// CheckSuppressed verifies internal consistency: candidates appear in
// no Kept list, per-transaction counts match the source dataset, and
// suppressed counts never exceed the candidate pool.
func CheckSuppressed(d *dataset.Dataset, s *Suppressed) error {
	cand := make(map[int32]bool, len(s.Candidates))
	for _, it := range s.Candidates {
		cand[it] = true
	}
	if len(s.Trans) != len(d.Trans) {
		return fmt.Errorf("anon: %d output transactions for %d inputs", len(s.Trans), len(d.Trans))
	}
	for i, st := range s.Trans {
		for _, it := range st.Kept {
			if cand[it] {
				return fmt.Errorf("anon: transaction %d keeps suppressed item %d", st.ID, it)
			}
		}
		if len(st.Kept)+st.NumSuppressed != len(d.Trans[i].Items) {
			return fmt.Errorf("anon: transaction %d: %d kept + %d suppressed != %d original",
				st.ID, len(st.Kept), st.NumSuppressed, len(d.Trans[i].Items))
		}
		if st.NumSuppressed > len(s.Candidates) {
			return fmt.Errorf("anon: transaction %d suppresses %d items with only %d candidates",
				st.ID, st.NumSuppressed, len(s.Candidates))
		}
	}
	return nil
}
