package anon

import (
	"fmt"
	"sort"

	"licm/internal/dataset"
	"licm/internal/hierarchy"
)

// KAnonymize applies transactional k-anonymity via top-down local
// generalization [He & Naughton, VLDB 2009]: each transaction in the
// output has at least k-1 others with exactly the same generalized
// itemset. Local recoding means different partitions of the data may
// specialize the hierarchy differently.
//
// The algorithm starts with every transaction generalized to the root
// and recursively specializes: for the current partition (whose
// members share an identical generalized representation by
// construction), it picks the cut node covering the most leaves and
// replaces it by its children; transactions then regroup by their new
// representations. Groups still of size >= k recurse; transactions
// falling into smaller groups are retained at the coarser
// representation, topped up from the largest splinter groups when the
// leftovers alone would break k.
func KAnonymize(d *dataset.Dataset, h *hierarchy.Hierarchy, k int) (*Generalized, error) {
	if err := validateInput(d, h, k); err != nil {
		return nil, err
	}
	out := &Generalized{H: h, Trans: make([]GenTransaction, len(d.Trans))}
	idx := make([]int, len(d.Trans))
	for i := range idx {
		idx[i] = i
	}
	rootCut := map[hierarchy.NodeID]bool{h.Root(): true}
	specialize(d, h, k, idx, rootCut, out)
	for i, t := range d.Trans {
		out.Trans[i].ID = t.ID
		out.Trans[i].Location = t.Location
	}
	return out, nil
}

// specialize recursively refines one partition. cut is the partition's
// current generalization cut; every transaction in idx has the same
// representation under it. On return, out.Trans[i].Nodes is final for
// every i in idx.
func specialize(d *dataset.Dataset, h *hierarchy.Hierarchy, k int, idx []int, cut map[hierarchy.NodeID]bool, out *Generalized) {
	represent := func(i int) []hierarchy.NodeID {
		seen := make(map[hierarchy.NodeID]bool)
		var nodes []hierarchy.NodeID
		for _, it := range d.Trans[i].Items {
			n := hierarchy.NodeID(it)
			for !cut[n] {
				n = h.Parent(n)
			}
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		return nodes
	}
	finalize := func(members []int) {
		for _, i := range members {
			out.Trans[i].Nodes = represent(i)
		}
	}
	// Pick the specialization candidate: the cut node with the most
	// leaves that actually occurs in this partition's data.
	occurs := make(map[hierarchy.NodeID]bool)
	for _, i := range idx {
		for _, it := range d.Trans[i].Items {
			n := hierarchy.NodeID(it)
			for !cut[n] {
				n = h.Parent(n)
			}
			occurs[n] = true
		}
	}
	var candidate hierarchy.NodeID = -1
	best := 1 // only internal nodes (>= 2 leaves) are splittable
	// Iterate candidates in sorted order: ties must break
	// deterministically, not by map iteration order.
	cands := make([]hierarchy.NodeID, 0, len(occurs))
	for n := range occurs {
		cands = append(cands, n)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a] < cands[b] })
	for _, n := range cands {
		if h.IsLeaf(n) {
			continue
		}
		if c := h.CountLeavesUnder(n); c > best {
			best, candidate = c, n
		}
	}
	if candidate < 0 {
		finalize(idx)
		return
	}
	// Propose the refined cut.
	newCut := make(map[hierarchy.NodeID]bool, len(cut)+4)
	for n := range cut {
		newCut[n] = true
	}
	delete(newCut, candidate)
	for _, c := range h.Children(candidate) {
		newCut[c] = true
	}
	// Regroup under the refined cut.
	groups := make(map[string][]int)
	var order []string
	for _, i := range idx {
		seen := make(map[hierarchy.NodeID]bool)
		var nodes []hierarchy.NodeID
		for _, it := range d.Trans[i].Items {
			n := hierarchy.NodeID(it)
			for !newCut[n] {
				n = h.Parent(n)
			}
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		key := nodeSetKey(nodes)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	if len(groups) == 1 {
		// No discrimination gained but the representation still
		// specializes (e.g. every member moves from {Alcohol} to
		// {Beer}); recurse with the finer cut on the same partition.
		specialize(d, h, k, idx, newCut, out)
		return
	}
	// Keep groups of size >= k; collect the rest as leftovers staying
	// at the coarser cut.
	var leftovers []int
	var viable [][]int
	for _, key := range order {
		g := groups[key]
		if len(g) >= k {
			viable = append(viable, g)
		} else {
			leftovers = append(leftovers, g...)
		}
	}
	// If leftovers exist but are fewer than k, top them up by
	// reclaiming whole splinter groups (members keep identical
	// coarse representations, so k-anonymity is preserved).
	sort.Slice(viable, func(a, b int) bool { return len(viable[a]) < len(viable[b]) })
	for len(leftovers) > 0 && len(leftovers) < k && len(viable) > 0 {
		g := viable[0]
		viable = viable[1:]
		leftovers = append(leftovers, g...)
	}
	if len(leftovers) > 0 && len(leftovers) < k {
		// Cannot split at all; finalize the whole partition here.
		finalize(idx)
		return
	}
	if len(leftovers) > 0 {
		finalize(leftovers)
	}
	for _, g := range viable {
		specialize(d, h, k, g, newCut, out)
	}
}

// CheckK verifies the k-anonymity guarantee: every generalized
// itemset in the output is shared by at least k transactions.
func CheckK(g *Generalized, k int) error {
	counts := make(map[string]int)
	for _, t := range g.Trans {
		nodes := append([]hierarchy.NodeID(nil), t.Nodes...)
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		counts[nodeSetKey(nodes)]++
	}
	for key, c := range counts {
		if c < k {
			return fmt.Errorf("anon: generalized itemset %v shared by %d < k=%d transactions", decodeKey(key), c, k)
		}
	}
	return nil
}

// EquivalenceClasses groups transaction indices by identical
// generalized itemsets. The bipartite grouping scheme reuses these as
// its transaction groups, exactly as the paper's experiments do.
func (g *Generalized) EquivalenceClasses() [][]int {
	groups := make(map[string][]int)
	var order []string
	for i, t := range g.Trans {
		nodes := append([]hierarchy.NodeID(nil), t.Nodes...)
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		key := nodeSetKey(nodes)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}
	out := make([][]int, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out
}
