package anon

import (
	"fmt"
	"sort"

	"licm/internal/dataset"
)

// BipartiteGroups is the output of safe (k,l) grouping [Cormode et
// al., VLDB 2008]: the transaction/item bipartite graph is published
// exactly, but the mapping from transactions (items) to graph nodes is
// hidden within groups of size at least k (l). Within each group the
// true mapping is an unknown bijection — the permutation constraint of
// Example 3.
type BipartiteGroups struct {
	// TransGroups partitions transaction indices (into the source
	// dataset's Trans slice); every group has size >= k.
	TransGroups [][]int
	// ItemGroups partitions item ids; every group has size >= l.
	// Items that occur in no transaction are omitted.
	ItemGroups [][]int32
	// Safe reports whether the grouping satisfies the safety
	// condition (no double edges between a group pair); the greedy
	// construction achieves it unless the data forces a conflict.
	Safe bool
}

// BipartiteAnonymize builds a safe (k,l) grouping greedily: items are
// packed into groups of l avoiding co-occurring pairs (two items in
// one transaction), transactions into groups of k avoiding pairs that
// share an item. Leftover members are folded into earlier groups,
// still respecting conflicts whenever possible.
func BipartiteAnonymize(d *dataset.Dataset, k, l int) (*BipartiteGroups, error) {
	if k < 1 || l < 1 {
		return nil, fmt.Errorf("anon: group sizes must be >= 1, got k=%d l=%d", k, l)
	}
	if err := validateInput(d, nil, k); err != nil {
		return nil, err
	}
	out := &BipartiteGroups{Safe: true}

	// --- Item side ---
	// Items used at least once, most frequent first (hard ones first).
	freq := make(map[int32]int)
	for _, t := range d.Trans {
		for _, it := range t.Items {
			freq[it]++
		}
	}
	items := make([]int32, 0, len(freq))
	for it := range freq {
		items = append(items, it)
	}
	sort.Slice(items, func(a, b int) bool {
		if freq[items[a]] != freq[items[b]] {
			return freq[items[a]] > freq[items[b]]
		}
		return items[a] < items[b]
	})
	if len(items) < l {
		return nil, fmt.Errorf("anon: %d used items cannot form groups of %d", len(items), l)
	}
	// Co-occurrence adjacency.
	coItems := make(map[int32]map[int32]bool)
	for _, t := range d.Trans {
		for i := 0; i < len(t.Items); i++ {
			for j := i + 1; j < len(t.Items); j++ {
				a, b := t.Items[i], t.Items[j]
				if coItems[a] == nil {
					coItems[a] = make(map[int32]bool)
				}
				if coItems[b] == nil {
					coItems[b] = make(map[int32]bool)
				}
				coItems[a][b] = true
				coItems[b][a] = true
			}
		}
	}
	itemGroupOf := make(map[int32]int)
	var itemGroups [][]int32
	placeItem := func(it int32, full bool) bool {
		conflict := make(map[int]bool)
		for other := range coItems[it] {
			if g, ok := itemGroupOf[other]; ok {
				conflict[g] = true
			}
		}
		for g := range itemGroups {
			if full && len(itemGroups[g]) >= l {
				continue
			}
			if conflict[g] {
				continue
			}
			itemGroups[g] = append(itemGroups[g], it)
			itemGroupOf[it] = g
			return true
		}
		return false
	}
	var itemLeftovers []int32
	for _, it := range items {
		if placeItem(it, true) {
			continue
		}
		g := len(itemGroups)
		if len(items)-len(itemGroupOf) >= l {
			// Enough unplaced items remain to eventually fill a fresh
			// group.
			itemGroups = append(itemGroups, []int32{it})
			itemGroupOf[it] = g
		} else {
			itemLeftovers = append(itemLeftovers, it)
		}
	}
	// Fill undersized groups and leftovers: first conflict-respecting,
	// then forced (marks the grouping unsafe).
	for _, it := range itemLeftovers {
		if placeItem(it, false) {
			continue
		}
		out.Safe = false
		g := smallestGroupIdx(itemGroups)
		itemGroups[g] = append(itemGroups[g], it)
		itemGroupOf[it] = g
	}
	// Merge undersized groups upward.
	itemGroups, ok := mergeSmallInt32Groups(itemGroups, l, func(a, b []int32) bool {
		for _, x := range a {
			for _, y := range b {
				if coItems[x][y] {
					return false
				}
			}
		}
		return true
	})
	if !ok {
		out.Safe = false
	}
	out.ItemGroups = itemGroups
	// Rebuild the final item-group index.
	itemGroupOf = make(map[int32]int)
	for g, grp := range itemGroups {
		for _, it := range grp {
			itemGroupOf[it] = g
		}
	}

	// --- Transaction side ---
	// Conflict: two transactions sharing a common item.
	transOf := make(map[int32][]int) // item -> transactions containing it
	for i, t := range d.Trans {
		for _, it := range t.Items {
			transOf[it] = append(transOf[it], i)
		}
	}
	transGroupOf := make(map[int]int)
	var transGroups [][]int
	placeTrans := func(i int, full bool) bool {
		conflict := make(map[int]bool)
		for _, it := range d.Trans[i].Items {
			for _, j := range transOf[it] {
				if g, ok := transGroupOf[j]; ok {
					conflict[g] = true
				}
			}
		}
		for g := range transGroups {
			if full && len(transGroups[g]) >= k {
				continue
			}
			if conflict[g] {
				continue
			}
			transGroups[g] = append(transGroups[g], i)
			transGroupOf[i] = g
			return true
		}
		return false
	}
	var transLeftovers []int
	for i := range d.Trans {
		if placeTrans(i, true) {
			continue
		}
		if len(d.Trans)-len(transGroupOf) >= k {
			g := len(transGroups)
			transGroups = append(transGroups, []int{i})
			transGroupOf[i] = g
		} else {
			transLeftovers = append(transLeftovers, i)
		}
	}
	for _, i := range transLeftovers {
		if placeTrans(i, false) {
			continue
		}
		out.Safe = false
		g := smallestIntGroupIdx(transGroups)
		transGroups[g] = append(transGroups[g], i)
		transGroupOf[i] = g
	}
	shareItem := func(a, b []int) bool {
		seen := make(map[int32]bool)
		for _, i := range a {
			for _, it := range d.Trans[i].Items {
				seen[it] = true
			}
		}
		for _, j := range b {
			for _, it := range d.Trans[j].Items {
				if seen[it] {
					return true
				}
			}
		}
		return false
	}
	transGroups, ok = mergeSmallIntGroups(transGroups, k, func(a, b []int) bool { return !shareItem(a, b) })
	if !ok {
		out.Safe = false
	}
	out.TransGroups = transGroups
	return out, nil
}

func smallestGroupIdx(groups [][]int32) int {
	best := 0
	for g := range groups {
		if len(groups[g]) < len(groups[best]) {
			best = g
		}
	}
	return best
}

func smallestIntGroupIdx(groups [][]int) int {
	best := 0
	for g := range groups {
		if len(groups[g]) < len(groups[best]) {
			best = g
		}
	}
	return best
}

// mergeSmallInt32Groups folds groups below the minimum size into
// compatible groups (per canMerge); if none is compatible it merges
// anyway and reports false.
func mergeSmallInt32Groups(groups [][]int32, minSize int, canMerge func(a, b []int32) bool) ([][]int32, bool) {
	safe := true
	var out [][]int32
	var small [][]int32
	for _, g := range groups {
		if len(g) >= minSize {
			out = append(out, g)
		} else if len(g) > 0 {
			small = append(small, g)
		}
	}
	for _, g := range small {
		placed := false
		for i := range out {
			if canMerge(out[i], g) {
				out[i] = append(out[i], g...)
				placed = true
				break
			}
		}
		if !placed {
			if len(out) == 0 {
				out = append(out, g)
				if len(g) < minSize {
					safe = false
				}
			} else {
				out[smallestGroupIdx(out)] = append(out[smallestGroupIdx(out)], g...)
				safe = false
			}
		}
	}
	return out, safe
}

// mergeSmallIntGroups is mergeSmallInt32Groups for int slices.
func mergeSmallIntGroups(groups [][]int, minSize int, canMerge func(a, b []int) bool) ([][]int, bool) {
	safe := true
	var out [][]int
	var small [][]int
	for _, g := range groups {
		if len(g) >= minSize {
			out = append(out, g)
		} else if len(g) > 0 {
			small = append(small, g)
		}
	}
	for _, g := range small {
		placed := false
		for i := range out {
			if canMerge(out[i], g) {
				out[i] = append(out[i], g...)
				placed = true
				break
			}
		}
		if !placed {
			if len(out) == 0 {
				out = append(out, g)
				if len(g) < minSize {
					safe = false
				}
			} else {
				out[smallestIntGroupIdx(out)] = append(out[smallestIntGroupIdx(out)], g...)
				safe = false
			}
		}
	}
	return out, safe
}

// CheckBipartite verifies the (k,l) sizes, that the groups partition
// their domains, and — when the grouping claims to be safe — the
// safety condition: between any transaction group and item group there
// is at most one edge per member on either side.
func CheckBipartite(d *dataset.Dataset, g *BipartiteGroups, k, l int) error {
	seenT := make(map[int]bool)
	for _, grp := range g.TransGroups {
		if len(grp) < k {
			return fmt.Errorf("anon: transaction group of size %d < k=%d", len(grp), k)
		}
		for _, i := range grp {
			if seenT[i] {
				return fmt.Errorf("anon: transaction %d in two groups", i)
			}
			seenT[i] = true
		}
	}
	if len(seenT) != len(d.Trans) {
		return fmt.Errorf("anon: %d of %d transactions grouped", len(seenT), len(d.Trans))
	}
	used := make(map[int32]bool)
	for _, t := range d.Trans {
		for _, it := range t.Items {
			used[it] = true
		}
	}
	seenI := make(map[int32]bool)
	for _, grp := range g.ItemGroups {
		if len(grp) < l {
			return fmt.Errorf("anon: item group of size %d < l=%d", len(grp), l)
		}
		for _, it := range grp {
			if seenI[it] {
				return fmt.Errorf("anon: item %d in two groups", it)
			}
			seenI[it] = true
		}
	}
	for it := range used {
		if !seenI[it] {
			return fmt.Errorf("anon: used item %d not grouped", it)
		}
	}
	if !g.Safe {
		return nil
	}
	itemGroupOf := make(map[int32]int)
	for gi, grp := range g.ItemGroups {
		for _, it := range grp {
			itemGroupOf[it] = gi
		}
	}
	for tg, grp := range g.TransGroups {
		// Transaction side: each transaction has <= 1 edge into any
		// item group; item side: each item has <= 1 edge into this
		// transaction group.
		itemSeen := make(map[int32]int)
		for _, i := range grp {
			igSeen := make(map[int]bool)
			for _, it := range d.Trans[i].Items {
				ig := itemGroupOf[it]
				if igSeen[ig] {
					return fmt.Errorf("anon: transaction %d has two edges into item group %d", i, ig)
				}
				igSeen[ig] = true
				if prev, ok := itemSeen[it]; ok {
					return fmt.Errorf("anon: item %d linked to transactions %d and %d in group %d", it, prev, i, tg)
				}
				itemSeen[it] = i
			}
		}
	}
	return nil
}
