package anon

import (
	"testing"

	"licm/internal/dataset"
	"licm/internal/hierarchy"
)

func testData(t *testing.T, n int, seed int64) (*dataset.Dataset, *hierarchy.Hierarchy) {
	t.Helper()
	cfg := dataset.Config{
		NumTransactions: n,
		NumItems:        64,
		AvgSize:         4,
		MaxSize:         12,
		ZipfS:           1.3,
		LocationRange:   20,
		PriceRange:      10,
		Seed:            seed,
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(64, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, h
}

func TestKmAnonymize(t *testing.T) {
	d, h := testData(t, 300, 1)
	for _, k := range []int{2, 4, 8} {
		g, err := KmAnonymize(d, h, k, 2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(g.Trans) != len(d.Trans) {
			t.Fatalf("k=%d: %d output transactions", k, len(g.Trans))
		}
		if err := CheckKm(g, k, 2); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Every generalized node must cover the original items.
		for i, gt := range g.Trans {
			for _, it := range d.Trans[i].Items {
				covered := false
				for _, n := range gt.Nodes {
					if h.IsAncestor(n, hierarchy.NodeID(it)) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("k=%d: item %d of transaction %d not covered by %v", k, it, i, gt.Nodes)
				}
			}
		}
	}
}

func TestKmMoreAnonymityMoreGeneralization(t *testing.T) {
	d, h := testData(t, 300, 2)
	g2, err := KmAnonymize(d, h, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g8, err := KmAnonymize(d, h, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, s8 := g2.Stats(), g8.Stats()
	if s8.CoveredLeaves < s2.CoveredLeaves {
		t.Errorf("k=8 should generalize at least as much as k=2: %+v vs %+v", s8, s2)
	}
}

func TestKmM1(t *testing.T) {
	d, h := testData(t, 200, 3)
	g, err := KmAnonymize(d, h, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckKm(g, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestKmErrors(t *testing.T) {
	d, h := testData(t, 10, 4)
	if _, err := KmAnonymize(d, h, 0, 2); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := KmAnonymize(d, h, 4, 0); err == nil {
		t.Error("want error for m=0")
	}
	if _, err := KmAnonymize(d, h, 11, 2); err == nil {
		t.Error("want error for k > transactions")
	}
}

func TestKAnonymize(t *testing.T) {
	d, h := testData(t, 300, 5)
	for _, k := range []int{2, 4, 8} {
		g, err := KAnonymize(d, h, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := CheckK(g, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for i, gt := range g.Trans {
			if gt.ID != d.Trans[i].ID || gt.Location != d.Trans[i].Location {
				t.Fatalf("k=%d: metadata mismatch on %d", k, i)
			}
			if len(gt.Nodes) == 0 {
				t.Fatalf("k=%d: empty representation for %d", k, i)
			}
			for _, it := range d.Trans[i].Items {
				covered := false
				for _, n := range gt.Nodes {
					if h.IsAncestor(n, hierarchy.NodeID(it)) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("k=%d: item %d of transaction %d not covered", k, it, i)
				}
			}
		}
	}
}

func TestKAnonymityTighterThanRoot(t *testing.T) {
	// With mild k, the top-down split must achieve strictly better
	// utility than everything-at-root.
	d, h := testData(t, 400, 6)
	g, err := KAnonymize(d, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	atRoot := 0
	for _, gt := range g.Trans {
		if len(gt.Nodes) == 1 && gt.Nodes[0] == h.Root() {
			atRoot++
		}
	}
	if atRoot == len(g.Trans) {
		t.Error("no specialization happened at all")
	}
}

func TestEquivalenceClasses(t *testing.T) {
	d, h := testData(t, 200, 7)
	g, err := KAnonymize(d, h, 4)
	if err != nil {
		t.Fatal(err)
	}
	classes := g.EquivalenceClasses()
	total := 0
	for _, c := range classes {
		if len(c) < 4 {
			t.Fatalf("class of size %d < 4", len(c))
		}
		total += len(c)
	}
	if total != len(d.Trans) {
		t.Fatalf("classes cover %d of %d", total, len(d.Trans))
	}
}

func TestBipartiteAnonymize(t *testing.T) {
	d, _ := testData(t, 200, 8)
	for _, k := range []int{2, 4, 8} {
		g, err := BipartiteAnonymize(d, k, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := CheckBipartite(d, g, k, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestBipartiteUsuallySafe(t *testing.T) {
	d, _ := testData(t, 300, 9)
	g, err := BipartiteAnonymize(d, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Safe {
		t.Log("grouping not safe on this data (allowed, but unexpected for sparse data)")
	} else if err := CheckBipartite(d, g, 4, 4); err != nil {
		t.Fatal(err)
	}
}

func TestBipartiteErrors(t *testing.T) {
	d, _ := testData(t, 10, 10)
	if _, err := BipartiteAnonymize(d, 0, 2); err == nil {
		t.Error("want error for k=0")
	}
	if _, err := BipartiteAnonymize(d, 2, 0); err == nil {
		t.Error("want error for l=0")
	}
	if _, err := BipartiteAnonymize(d, 11, 2); err == nil {
		t.Error("want error for k > transactions")
	}
	if _, err := BipartiteAnonymize(d, 2, 10000); err == nil {
		t.Error("want error for l > used items")
	}
}

func TestSuppressAnonymize(t *testing.T) {
	d, _ := testData(t, 300, 11)
	s, err := SuppressAnonymize(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSuppressed(d, s); err != nil {
		t.Fatal(err)
	}
	if len(s.Candidates) == 0 {
		t.Error("expected some rare items to be suppressed")
	}
	// Candidates must really be globally absent from Kept lists
	// (covered by CheckSuppressed) and really rare in the source.
	freq := d.ItemFrequencies()
	for _, it := range s.Candidates {
		if freq[it] >= 5 {
			t.Errorf("item %d has support %d, should not be suppressed", it, freq[it])
		}
	}
}

func TestSuppressErrors(t *testing.T) {
	d, _ := testData(t, 50, 12)
	if _, err := SuppressAnonymize(d, 0); err == nil {
		t.Error("want error for minSupport=0")
	}
	if _, err := SuppressAnonymize(d, 1<<30); err == nil {
		t.Error("want error when everything is suppressed")
	}
}

func TestGenStats(t *testing.T) {
	d, h := testData(t, 100, 13)
	g, err := KmAnonymize(d, h, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Transactions != 100 {
		t.Errorf("stats transactions = %d", s.Transactions)
	}
	if s.ExactItems+s.Generalized == 0 {
		t.Error("no output nodes counted")
	}
	if s.Generalized > 0 && s.MaxGroupLeaves < 2 {
		t.Error("generalized nodes must cover >= 2 leaves")
	}
}

func TestValidateInputBadItem(t *testing.T) {
	d := &dataset.Dataset{
		Items: []dataset.Item{{ID: 0}},
		Trans: []dataset.Transaction{{ID: 0, Items: []int32{5}}},
	}
	if err := validateInput(d, nil, 1); err == nil {
		t.Error("want error for out-of-catalog item")
	}
}
