// Package anon implements the four set-valued-data anonymization
// schemes the paper's evaluation feeds into LICM (Section V and
// Appendix): k^m-anonymity via global generalization (Terrovitis et
// al.), k-anonymity via top-down local generalization (He & Naughton),
// safe (k,l) bipartite grouping (Cormode et al.), and suppression in
// the style of (h,k,p)-coherence (Xu et al.).
//
// The paper obtained the original authors' implementations; these are
// independent from-scratch implementations with the same
// privacy-parameter semantics, which is all the LICM encodings of the
// Appendix depend on (see DESIGN.md, "Substitutions"). Each scheme has
// a matching checker used by tests to verify its guarantee on real
// outputs.
package anon

import (
	"fmt"
	"sort"

	"licm/internal/dataset"
	"licm/internal/hierarchy"
)

// GenTransaction is one anonymized transaction under a
// generalization-based scheme: its (public) location plus a set of
// hierarchy nodes — leaves are still-exact items, internal nodes are
// generalized items.
type GenTransaction struct {
	ID       int32
	Location int64
	Nodes    []hierarchy.NodeID
}

// Generalized is the output of a generalization-based anonymizer.
type Generalized struct {
	H     *hierarchy.Hierarchy
	Trans []GenTransaction
}

// Stats summarizes how much generalization was applied.
type GenStats struct {
	Transactions   int
	ExactItems     int // leaf nodes in the output
	Generalized    int // internal nodes in the output
	CoveredLeaves  int // total leaves covered by generalized nodes
	MaxGroupLeaves int // largest leaf set behind one generalized node
}

// Stats computes output statistics.
func (g *Generalized) Stats() GenStats {
	s := GenStats{Transactions: len(g.Trans)}
	for _, t := range g.Trans {
		for _, n := range t.Nodes {
			if g.H.IsLeaf(n) {
				s.ExactItems++
				continue
			}
			s.Generalized++
			c := g.H.CountLeavesUnder(n)
			s.CoveredLeaves += c
			if c > s.MaxGroupLeaves {
				s.MaxGroupLeaves = c
			}
		}
	}
	return s
}

// generalizeTransaction maps a transaction's items through cur (a
// per-leaf current-generalization mapping) with set semantics, sorted
// for canonical comparison.
func generalizeTransaction(items []int32, cur []hierarchy.NodeID) []hierarchy.NodeID {
	seen := make(map[hierarchy.NodeID]bool, len(items))
	var out []hierarchy.NodeID
	for _, it := range items {
		n := cur[it]
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// nodeSetKey builds a canonical string key for a sorted node set.
func nodeSetKey(nodes []hierarchy.NodeID) string {
	b := make([]byte, 0, 4*len(nodes))
	for _, n := range nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

// validateInput rejects datasets the schemes cannot anonymize.
func validateInput(d *dataset.Dataset, h *hierarchy.Hierarchy, k int) error {
	if k < 1 {
		return fmt.Errorf("anon: k must be >= 1, got %d", k)
	}
	if len(d.Trans) < k {
		return fmt.Errorf("anon: %d transactions cannot be %d-anonymized", len(d.Trans), k)
	}
	if h != nil && h.NumLeaves() < len(d.Items) {
		return fmt.Errorf("anon: hierarchy has %d leaves for %d items", h.NumLeaves(), len(d.Items))
	}
	for _, t := range d.Trans {
		for _, it := range t.Items {
			if int(it) >= len(d.Items) || it < 0 {
				return fmt.Errorf("anon: transaction %d references item %d outside catalog", t.ID, it)
			}
		}
	}
	return nil
}
