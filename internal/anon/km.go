package anon

import (
	"fmt"
	"sort"

	"licm/internal/dataset"
	"licm/internal/hierarchy"
)

// KmAnonymize applies k^m-anonymity with global recoding [Terrovitis
// et al., VLDB 2008]: in the output, every combination of at most m
// (generalized) items that appears in some transaction appears in at
// least k transactions. Global recoding means a single leaf→node
// mapping applied across all transactions: once a generalized item g
// is used, every descendant of g is replaced by g everywhere.
//
// The algorithm is a batched greedy ascent of the hierarchy: count the
// support of every itemset of size <= m in the current recoding; for
// every violating subset, schedule its least-supported node for
// generalization to its parent; apply all scheduled generalizations at
// once and repeat. It terminates because each round strictly raises at
// least one node toward the root.
func KmAnonymize(d *dataset.Dataset, h *hierarchy.Hierarchy, k, m int) (*Generalized, error) {
	if err := validateInput(d, h, k); err != nil {
		return nil, err
	}
	if m < 1 || m > 3 {
		return nil, fmt.Errorf("anon: m must be in [1,3], got %d", m)
	}
	// The global recoding is a "cut" through the hierarchy: a set of
	// active nodes covering every leaf. Each leaf maps to its lowest
	// active ancestor. Lifting a cut node to its parent activates the
	// parent and deactivates the parent's whole subtree, which is
	// exactly the Terrovitis et al. rule that once a generalized item
	// g is used, every descendant of g is replaced by g everywhere.
	active := make([]bool, h.NumNodes())
	for i := 0; i < h.NumLeaves(); i++ {
		active[i] = true
	}
	leafCur := func(leaf int32) hierarchy.NodeID {
		n := hierarchy.NodeID(leaf)
		for !active[n] {
			n = h.Parent(n)
		}
		return n
	}
	liftToParent := func(v hierarchy.NodeID) {
		p := h.Parent(v)
		if p < 0 {
			return
		}
		// Deactivate the entire subtree of p, then activate p.
		stack := []hierarchy.NodeID{p}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			active[x] = false
			stack = append(stack, h.Children(x)...)
		}
		active[p] = true
	}
	for round := 0; ; round++ {
		if round > h.Height(h.Root())+2 {
			return nil, fmt.Errorf("anon: k^m generalization did not converge (k=%d, m=%d)", k, m)
		}
		// Current generalized transactions.
		mapping := make([]hierarchy.NodeID, h.NumLeaves())
		for i := range mapping {
			mapping[i] = leafCur(int32(i))
		}
		gts := make([][]hierarchy.NodeID, len(d.Trans))
		for i, t := range d.Trans {
			gts[i] = generalizeTransaction(t.Items, mapping)
		}
		support := countSubsetSupport(gts, m)
		// Collect nodes to lift: for each violating subset, its
		// least-supported member.
		lift := make(map[hierarchy.NodeID]bool)
		single := support[1]
		for size := 1; size <= m; size++ {
			for key, cnt := range support[size] {
				if cnt >= k {
					continue
				}
				nodes := decodeKey(key)
				victim := nodes[0]
				best := single[nodeSetKey([]hierarchy.NodeID{victim})]
				for _, n := range nodes[1:] {
					if s := single[nodeSetKey([]hierarchy.NodeID{n})]; s < best {
						victim, best = n, s
					}
				}
				if victim != h.Root() {
					lift[victim] = true
				} else if cnt < k {
					// Even the fully generalized itemset is too rare;
					// only possible when the dataset itself is tiny.
					return nil, fmt.Errorf("anon: cannot reach k^m-anonymity (root itemset support %d < k=%d)", cnt, k)
				}
			}
		}
		if len(lift) == 0 {
			out := &Generalized{H: h}
			for i, t := range d.Trans {
				out.Trans = append(out.Trans, GenTransaction{ID: t.ID, Location: t.Location, Nodes: gts[i]})
			}
			return out, nil
		}
		// Apply lifts in sorted order so batched rounds are
		// deterministic (a lift can deactivate other scheduled nodes).
		lifts := make([]hierarchy.NodeID, 0, len(lift))
		for n := range lift {
			lifts = append(lifts, n)
		}
		sort.Slice(lifts, func(a, b int) bool { return lifts[a] < lifts[b] })
		for _, n := range lifts {
			// A batched lift may have already generalized an ancestor
			// of n this round; lifting n again would descend below the
			// cut. Skip nodes that are no longer on the cut.
			if !active[n] {
				continue
			}
			liftToParent(n)
		}
	}
}

// countSubsetSupport counts, for each subset of size 1..m of each
// generalized transaction, the number of transactions containing it.
// The result is indexed by subset size.
func countSubsetSupport(gts [][]hierarchy.NodeID, m int) []map[string]int {
	support := make([]map[string]int, m+1)
	for s := 1; s <= m; s++ {
		support[s] = make(map[string]int)
	}
	for _, nodes := range gts {
		for _, n := range nodes {
			support[1][nodeSetKey([]hierarchy.NodeID{n})]++
		}
		if m >= 2 {
			for i := 0; i < len(nodes); i++ {
				for j := i + 1; j < len(nodes); j++ {
					support[2][nodeSetKey([]hierarchy.NodeID{nodes[i], nodes[j]})]++
				}
			}
		}
		if m >= 3 {
			for i := 0; i < len(nodes); i++ {
				for j := i + 1; j < len(nodes); j++ {
					for l := j + 1; l < len(nodes); l++ {
						support[3][nodeSetKey([]hierarchy.NodeID{nodes[i], nodes[j], nodes[l]})]++
					}
				}
			}
		}
	}
	return support
}

// decodeKey reverses nodeSetKey.
func decodeKey(key string) []hierarchy.NodeID {
	b := []byte(key)
	out := make([]hierarchy.NodeID, 0, len(b)/4)
	for i := 0; i+3 < len(b); i += 4 {
		out = append(out, hierarchy.NodeID(uint32(b[i])|uint32(b[i+1])<<8|uint32(b[i+2])<<16|uint32(b[i+3])<<24))
	}
	return out
}

// CheckKm verifies the k^m guarantee on an anonymized output: every
// itemset of size <= m appearing in a transaction appears in >= k
// transactions.
func CheckKm(g *Generalized, k, m int) error {
	gts := make([][]hierarchy.NodeID, len(g.Trans))
	for i, t := range g.Trans {
		nodes := append([]hierarchy.NodeID(nil), t.Nodes...)
		sort.Slice(nodes, func(a, b int) bool { return nodes[a] < nodes[b] })
		gts[i] = nodes
	}
	support := countSubsetSupport(gts, m)
	for s := 1; s <= m; s++ {
		for key, cnt := range support[s] {
			if cnt < k {
				return fmt.Errorf("anon: itemset %v has support %d < k=%d", decodeKey(key), cnt, k)
			}
		}
	}
	return nil
}
