package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"licm/internal/core"
	"licm/internal/mc"
	"licm/internal/solver"
)

// AblationResult measures one solver variant on one cell.
type AblationResult struct {
	Variant  string
	Min, Max int64
	Proven   bool
	Elapsed  time.Duration
	Nodes    int64
	LPSolves int64
	// Pruned sizes (meaningful for the pruning ablation).
	VarsPruned, ConsPruned int
}

// AblationSolver compares solver variants — pruning on/off,
// decomposition on/off, LP bounding on/off — on the same query
// instance (Query 2, k-anonymity, largest k). It quantifies the
// design choices DESIGN.md calls out.
func (cfg Config) AblationSolver(w io.Writer) ([]AblationResult, error) {
	k := cfg.Ks[len(cfg.Ks)-1]
	q := cfg.Queries()[1] // Query 2
	variants := []struct {
		name   string
		mutate func(*solver.Options)
	}{
		{"baseline", func(*solver.Options) {}},
		{"no-pruning", func(o *solver.Options) { o.Prune = false }},
		{"no-decompose", func(o *solver.Options) { o.Decompose = false }},
		{"no-lp", func(o *solver.Options) { o.UseLP = false }},
	}
	var out []AblationResult
	for _, v := range variants {
		enc, _, err := cfg.Encode(SchemeK, k)
		if err != nil {
			return out, err
		}
		rel, err := q.BuildLICM(enc)
		if err != nil {
			return out, err
		}
		opts := cfg.Solver
		v.mutate(&opts)
		start := time.Now()
		res, err := core.CountBounds(enc.DB, rel, opts)
		if err != nil {
			return out, fmt.Errorf("bench: ablation %s: %w", v.name, err)
		}
		out = append(out, AblationResult{
			Variant:    v.name,
			Min:        res.Min,
			Max:        res.Max,
			Proven:     res.MinProven && res.MaxProven,
			Elapsed:    time.Since(start),
			Nodes:      res.Stats.Nodes,
			LPSolves:   res.Stats.LPSolves,
			VarsPruned: res.Stats.VarsAfterPrune,
			ConsPruned: res.Stats.ConsAfterPrune,
		})
	}
	fmt.Fprintf(w, "\nSolver ablation (%s, %s, k=%d)\n", q.Name(), SchemeK, k)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tmin\tmax\tproven\ttime(ms)\tnodes\tLP solves\tvars kept\tcons kept")
	for _, r := range out {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%.1f\t%d\t%d\t%d\t%d\n",
			r.Variant, r.Min, r.Max, r.Proven, ms(r.Elapsed), r.Nodes, r.LPSolves, r.VarsPruned, r.ConsPruned)
	}
	tw.Flush()
	return out, nil
}

// MCSampleSweep reproduces the paper's observation that increasing the
// MC sample count "does not significantly widen the observed range":
// the MC range as a function of sample count, against the exact
// bounds.
type MCSampleSweep struct {
	Samples int
	MMin    int64
	MMax    int64
	LMin    int64
	LMax    int64
	Elapsed time.Duration
}

// AblationMCSamples sweeps the Monte-Carlo sample count on Query 1
// under k-anonymity at the largest k.
func (cfg Config) AblationMCSamples(w io.Writer, sampleCounts []int) ([]MCSampleSweep, error) {
	k := cfg.Ks[len(cfg.Ks)-1]
	q := cfg.Queries()[0]
	enc, _, err := cfg.Encode(SchemeK, k)
	if err != nil {
		return nil, err
	}
	rel, err := q.BuildLICM(enc)
	if err != nil {
		return nil, err
	}
	res, err := core.CountBounds(enc.DB, rel, cfg.Solver)
	if err != nil {
		return nil, err
	}
	var out []MCSampleSweep
	for _, n := range sampleCounts {
		start := time.Now()
		sampler := mc.NewSampler(enc, cfg.Seed+200)
		r := sampler.Run(q, n)
		out = append(out, MCSampleSweep{
			Samples: n,
			MMin:    r.Min, MMax: r.Max,
			LMin: res.Min, LMax: res.Max,
			Elapsed: time.Since(start),
		})
	}
	fmt.Fprintf(w, "\nMC sample-count sweep (%s, %s, k=%d); exact bounds [%d,%d]\n",
		q.Name(), SchemeK, k, res.Min, res.Max)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "samples\tM_min\tM_max\ttime(ms)")
	for _, r := range out {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\n", r.Samples, r.MMin, r.MMax, ms(r.Elapsed))
	}
	tw.Flush()
	return out, nil
}
