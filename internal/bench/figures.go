package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Fig5 runs the Figure 5 sweep: for every scheme and query, LICM
// bounds vs MC bounds across the anonymity parameters. Progress and
// tables are written to w (pass io.Discard to silence).
func (cfg Config) Fig5(w io.Writer) ([]Cell, error) {
	var cells []Cell
	for _, scheme := range Schemes {
		for _, q := range cfg.Queries() {
			for _, k := range cfg.Ks {
				cell, err := cfg.RunCell(scheme, q, k)
				if err != nil {
					return cells, err
				}
				fmt.Fprintf(w, "cell %s/%s k=%d: L=[%d,%d] M=[%d,%d] quality=%s solve=%.0fms mc=%.0fms\n",
					scheme, q.Name(), k, cell.LMin, cell.LMax, cell.MMin, cell.MMax,
					cell.Quality, ms(cell.LSolve), ms(cell.MCTime))
				cells = append(cells, cell)
			}
		}
	}
	PrintFig5(w, cells)
	return cells, nil
}

// PrintFig5 renders Figure 5 as one table per (scheme, query) panel,
// series L_min/L_max/M_min/M_max against k — the paper's 3x3 grid.
func PrintFig5(w io.Writer, cells []Cell) {
	byPanel := map[string][]Cell{}
	var order []string
	for _, c := range cells {
		key := string(c.Scheme) + " / " + c.Query
		if _, ok := byPanel[key]; !ok {
			order = append(order, key)
		}
		byPanel[key] = append(byPanel[key], c)
	}
	for _, key := range order {
		fmt.Fprintf(w, "\nFigure 5 panel: %s\n", key)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "k\tL_min\tL_max\tM_min\tM_max\tproven")
		for _, c := range byPanel[key] {
			proven := "exact"
			switch {
			case c.Quality == "failed":
				proven = "failed (canceled; LICM series unusable)"
			case !c.LMinProven || !c.LMaxProven:
				proven = fmt.Sprintf("approx (found [%d,%d])", c.LMinFound, c.LMaxFound)
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\n", c.K, c.LMin, c.LMax, c.MMin, c.MMax, proven)
		}
		tw.Flush()
	}
}

// Fig6 runs the Figure 6 timing comparison at the largest k: MC total
// time vs the L-model / L-query / L-solve split, per scheme and query.
func (cfg Config) Fig6(w io.Writer) ([]Cell, error) {
	k := cfg.Ks[len(cfg.Ks)-1]
	var cells []Cell
	for _, q := range cfg.Queries() {
		for _, scheme := range Schemes {
			cell, err := cfg.RunCell(scheme, q, k)
			if err != nil {
				return cells, err
			}
			cells = append(cells, cell)
		}
	}
	PrintFig6(w, cells)
	return cells, nil
}

// PrintFig6 renders the timing table (the paper plots these as
// log-scale bars).
func PrintFig6(w io.Writer, cells []Cell) {
	byQuery := map[string][]Cell{}
	var order []string
	for _, c := range cells {
		if _, ok := byQuery[c.Query]; !ok {
			order = append(order, c.Query)
		}
		byQuery[c.Query] = append(byQuery[c.Query], c)
	}
	for _, q := range order {
		fmt.Fprintf(w, "\nFigure 6: timing for %s (k=%d, times in ms)\n", q, byQuery[q][0].K)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "anonymization\tMC\tL-model\tL-query\tL-solve\tL-total")
		for _, c := range byQuery[q] {
			fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%.2f\t%.1f\t%.1f\n",
				c.Scheme,
				ms(c.MCTime), ms(c.LModel), ms(c.LQuery), ms(c.LSolve),
				ms(c.LModel+c.LQuery+c.LSolve))
		}
		tw.Flush()
	}
}

func ms(d time.Duration) float64 { return d.Seconds() * 1000 }

// Fig7 runs the pruning-effectiveness measurement: variables and
// constraints at modeling time, after query processing, and after
// pruning, for Query 2 and Query 3 under k-anonymity with k=6 —
// exactly the paper's Figure 7(a)/(b).
func (cfg Config) Fig7(w io.Writer) ([]Cell, error) {
	const k = 6
	var cells []Cell
	qs := cfg.Queries()
	for _, q := range []int{1, 2} { // Q2 and Q3
		cell, err := cfg.RunCell(SchemeK, qs[q], k)
		if err != nil {
			return cells, err
		}
		cells = append(cells, cell)
	}
	PrintFig7(w, cells)
	return cells, nil
}

// PrintFig7 renders the pruning tables.
func PrintFig7(w io.Writer, cells []Cell) {
	for _, c := range cells {
		fmt.Fprintf(w, "\nFigure 7: pruning for %s (%s, k=%d)\n", c.Query, c.Scheme, c.K)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "\tLICM modeling\tQuerying\tAfter pruning")
		fmt.Fprintf(tw, "# variables\t%d\t%d\t%d\n", c.VarsModel, c.VarsQuery, c.VarsPruned)
		fmt.Fprintf(tw, "# constraints\t%d\t%d\t%d\n", c.ConsModel, c.ConsQuery, c.ConsPruned)
		tw.Flush()
	}
}
