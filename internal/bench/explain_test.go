package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestCellCarriesComponentsWhenDegraded is the regression test for
// the "failed cells lose their problem shape" bug: component count
// and max component size come from the explain recorder, which
// registers the decomposition before any search work, so they survive
// a deadline that kills the solve itself.
func TestCellCarriesComponentsWhenDegraded(t *testing.T) {
	cfg := tinyConfig()
	cfg.SolveDeadline = time.Nanosecond
	cell, err := cfg.RunCell(SchemeK, cfg.Queries()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Quality == "exact" {
		t.Fatal("a 1ns deadline cannot produce an exact cell")
	}
	if cell.Components <= 0 {
		t.Errorf("degraded %q cell lost its component count: %d", cell.Quality, cell.Components)
	}
	if cell.MaxCompVars <= 0 {
		t.Errorf("degraded %q cell lost its max component size: %d", cell.Quality, cell.MaxCompVars)
	}

	// The JSON view carries the same figures.
	var buf bytes.Buffer
	if err := WriteCellsJSON(&buf, []Cell{cell}); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d cells", len(out))
	}
	if v, ok := out[0]["components"].(float64); !ok || v <= 0 {
		t.Errorf("JSON components = %v, want > 0", out[0]["components"])
	}
	if v, ok := out[0]["max_comp_vars"].(float64); !ok || v <= 0 {
		t.Errorf("JSON max_comp_vars = %v, want > 0", out[0]["max_comp_vars"])
	}
}

// TestCellExplainReport: with Config.Explain the cell carries a valid
// licm-explain/1 report whose prune figures match the cell's own, and
// the report rides into the cell JSON.
func TestCellExplainReport(t *testing.T) {
	cfg := tinyConfig()
	cfg.Explain = true
	cell, err := cfg.RunCell(SchemeK, cfg.Queries()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := cell.Explain
	if rep == nil {
		t.Fatal("Config.Explain did not attach a report")
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Query != cell.Query || rep.Scheme != string(SchemeK) || rep.K != 2 {
		t.Errorf("report labels = %q/%q/%d, want %q/%q/2", rep.Query, rep.Scheme, rep.K, cell.Query, SchemeK)
	}
	if rep.Quality != cell.Quality {
		t.Errorf("report quality %q != cell quality %q", rep.Quality, cell.Quality)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("report has %d runs, want 2 (min and max)", len(rep.Runs))
	}
	if rep.Prune.VarsAfter != cell.VarsPruned || rep.Prune.ConsAfter != cell.ConsPruned {
		t.Errorf("report prune %+v != cell (%d vars, %d cons)", rep.Prune, cell.VarsPruned, cell.ConsPruned)
	}
	for _, run := range rep.Runs {
		if len(run.Components) != cell.Components {
			t.Errorf("%s run has %d components, cell says %d", run.Sense, len(run.Components), cell.Components)
		}
		for _, c := range run.Components {
			if len(c.Fingerprint) != 16 {
				t.Errorf("%s component %d fingerprint %q", run.Sense, c.Index, c.Fingerprint)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteCellsJSON(&buf, []Cell{cell}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"explain"`) || !strings.Contains(buf.String(), `"fingerprint"`) {
		t.Error("cell JSON does not embed the explain report")
	}

	// Without the flag the report is absent and the JSON omits it.
	cfg.Explain = false
	cell, err = cfg.RunCell(SchemeK, cfg.Queries()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Explain != nil {
		t.Error("report attached without Config.Explain")
	}
	buf.Reset()
	if err := WriteCellsJSON(&buf, []Cell{cell}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"explain"`) {
		t.Error("cell JSON carries an explain key without Config.Explain")
	}
}
