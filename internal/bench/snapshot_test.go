package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleCells() []Cell {
	return []Cell{
		{
			Scheme: SchemeK, Query: "Q1", K: 2,
			LMin: 12, LMax: 30, LMinFound: 12, LMaxFound: 30,
			LMinProven: true, LMaxProven: true,
			LSolve: 40 * time.Millisecond,
			Nodes:  5000, LPSolves: 900, PruneRatio: 0.65,
		},
		{
			Scheme: SchemeK, Query: "Q1", K: 4,
			LMin: 10, LMax: 36, LMinFound: 10, LMaxFound: 36,
			LMinProven: true, LMaxProven: true,
			LSolve: 60 * time.Millisecond,
			Nodes:  9000, LPSolves: 1500, PruneRatio: 0.6,
		},
	}
}

func sampleSnapshot(t *testing.T) Snapshot {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumTransactions = 300
	cfg.NumItems = 80
	cfg.Ks = []int{2, 4}
	cfg.MCSamples = 5
	return NewSnapshot("test", cfg, sampleCells(), 900*time.Millisecond)
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := sampleSnapshot(t)
	if snap.Schema != SnapshotSchema {
		t.Errorf("schema = %q", snap.Schema)
	}
	if snap.GoVersion == "" || snap.GOMAXPROCS < 1 {
		t.Errorf("runtime metadata missing: %+v", snap)
	}
	var buf bytes.Buffer
	if err := WriteSnapshotJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "test" || len(got.Cells) != 2 || got.WallNs != snap.WallNs {
		t.Errorf("round trip lost data: %+v", got)
	}
	if got.Dataset.Transactions != 300 || got.Dataset.Items != 80 || got.Dataset.Seed != 1 || got.Dataset.MCSamples != 5 {
		t.Errorf("dataset = %+v", got.Dataset)
	}
	if len(got.Dataset.Ks) != 2 || got.Dataset.Ks[0] != 2 || got.Dataset.Ks[1] != 4 {
		t.Errorf("dataset ks = %v", got.Dataset.Ks)
	}
}

func TestReadSnapshotRejectsForeignAndFutureSchemas(t *testing.T) {
	for _, tc := range []struct {
		json, wantErr string
	}{
		{`{"schema":"something-else/3"}`, "not a bench snapshot"},
		{`{"schema":"licm-bench/2"}`, "unsupported snapshot schema"},
		{`{`, "snapshot"},
	} {
		_, err := ReadSnapshot(strings.NewReader(tc.json))
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ReadSnapshot(%q) err = %v, want containing %q", tc.json, err, tc.wantErr)
		}
	}
}

func TestDiffSnapshotsIdenticalIsClean(t *testing.T) {
	snap := sampleSnapshot(t)
	d := DiffSnapshots(snap, snap, SnapshotTol{})
	if d.Breached {
		t.Fatalf("identical snapshots breached: %+v", d)
	}
	if len(d.Deltas) != 2 || len(d.OnlyOld) != 0 || len(d.OnlyNew) != 0 || len(d.Warnings) != 0 {
		t.Errorf("diff = %+v", d)
	}
}

func TestDiffSnapshotsBreaches(t *testing.T) {
	oldS := sampleSnapshot(t)

	mutate := func(f func(*cellJSON)) Snapshot {
		s := sampleSnapshot(t)
		s.Cells = append([]cellJSON(nil), oldS.Cells...)
		f(&s.Cells[0])
		return s
	}
	cases := []struct {
		name string
		newS Snapshot
		want string
	}{
		{"slow solve", mutate(func(c *cellJSON) { c.LSolveNs *= 3 }), "l_solve_ns"},
		{"node blowup", mutate(func(c *cellJSON) { c.Nodes *= 3 }), "nodes"},
		{"prune collapse", mutate(func(c *cellJSON) { c.PruneRatio = 0.1 }), "prune_ratio"},
		{"proven min changed", mutate(func(c *cellJSON) { c.LMin = 11 }), "proven l_min"},
		{"proven max changed", mutate(func(c *cellJSON) { c.LMax = 31 }), "proven l_max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := DiffSnapshots(oldS, tc.newS, SnapshotTol{})
			if !d.Breached {
				t.Fatalf("no breach: %+v", d)
			}
			found := false
			for _, delta := range d.Deltas {
				for _, b := range delta.Breaches {
					if strings.Contains(b, tc.want) {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("no breach mentioning %q in %+v", tc.want, d.Deltas)
			}
		})
	}
}

func TestDiffSnapshotsMissingCellBreaches(t *testing.T) {
	oldS := sampleSnapshot(t)
	newS := sampleSnapshot(t)
	newS.Cells = newS.Cells[:1]
	d := DiffSnapshots(oldS, newS, SnapshotTol{})
	if !d.Breached || len(d.OnlyOld) != 1 {
		t.Errorf("dropped cell not flagged: %+v", d)
	}
	// Added cells are fine.
	d2 := DiffSnapshots(newS, oldS, SnapshotTol{})
	if d2.Breached || len(d2.OnlyNew) != 1 {
		t.Errorf("added cell mishandled: %+v", d2)
	}
}

func TestDiffSnapshotsNoiseFloor(t *testing.T) {
	oldS := sampleSnapshot(t)
	newS := sampleSnapshot(t)
	newS.Cells = append([]cellJSON(nil), oldS.Cells...)
	// Old solve below the floor: even a 100x new time is ignored.
	oldS.Cells[0].LSolveNs = 100_000
	newS.Cells[0].LSolveNs = 10_000_000
	newS.Cells[0].Nodes = oldS.Cells[0].Nodes
	d := DiffSnapshots(oldS, newS, SnapshotTol{})
	for _, delta := range d.Deltas {
		for _, b := range delta.Breaches {
			if strings.Contains(b, "l_solve_ns") {
				t.Errorf("sub-floor solve time breached: %s", b)
			}
		}
	}
}

func TestDiffSnapshotsWarnsOnMismatchedRuns(t *testing.T) {
	oldS := sampleSnapshot(t)
	newS := sampleSnapshot(t)
	newS.Dataset.Transactions = 500
	newS.GoVersion = "go9.99"
	d := DiffSnapshots(oldS, newS, SnapshotTol{})
	var dataset, gover bool
	for _, w := range d.Warnings {
		if strings.Contains(w, "datasets differ") {
			dataset = true
		}
		if strings.Contains(w, "Go versions differ") {
			gover = true
		}
	}
	if !dataset || !gover {
		t.Errorf("warnings = %v", d.Warnings)
	}
	// Warnings alone do not breach.
	if d.Breached {
		t.Errorf("comparability warnings breached the diff: %+v", d)
	}
}
