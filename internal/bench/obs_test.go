package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"licm/internal/obs"
)

// TestRunCellEmitsTrace: a traced RunCell produces a bench.cell span
// wrapping operator and solver spans, and the cell carries the solve
// trace summary.
func TestRunCellEmitsTrace(t *testing.T) {
	cfg := tinyConfig()
	sink := &obs.CollectSink{}
	cfg.Trace = obs.New(sink)
	q := cfg.Queries()[0]
	cell, err := cfg.RunCell(SchemeK, q, 2)
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]int{}
	for _, e := range sink.Events() {
		if e.Kind == obs.KindSpanEnd {
			seen[e.Name]++
		}
	}
	if seen["bench.cell"] != 1 {
		t.Errorf("bench.cell spans = %d, want 1", seen["bench.cell"])
	}
	// Two solves (max + min) wrapped in one aggregate.bounds, plus the
	// MC baseline and at least one query operator.
	if seen["solver.solve"] != 2 {
		t.Errorf("solver.solve spans = %d, want 2", seen["solver.solve"])
	}
	if seen["aggregate.bounds"] != 1 {
		t.Errorf("aggregate.bounds spans = %d, want 1", seen["aggregate.bounds"])
	}
	if seen["mc.run"] != 1 {
		t.Errorf("mc.run spans = %d, want 1", seen["mc.run"])
	}
	ops := 0
	for name, n := range seen {
		if len(name) > 3 && name[:3] == "op." {
			ops += n
		}
	}
	if ops == 0 {
		t.Error("no operator spans in the cell trace")
	}

	// The summary fields mirror the solve.
	if cell.Nodes == 0 && cell.Propagations == 0 {
		t.Error("cell carries no solve work summary")
	}
	if cell.Components == 0 {
		t.Error("cell.Components not populated")
	}
	if cell.SearchTime <= 0 {
		t.Error("cell.SearchTime not populated")
	}
	if cell.PruneRatio < 0 || cell.PruneRatio > 1 {
		t.Errorf("prune ratio %v out of [0,1]", cell.PruneRatio)
	}
	if cell.MCAcceptance <= 0 || cell.MCAcceptance > 1 {
		t.Errorf("mc acceptance %v out of (0,1]", cell.MCAcceptance)
	}
}

// TestWriteCellsJSON: the emitted JSON is valid, one object per cell,
// with the trace summary fields present in ns units.
func TestWriteCellsJSON(t *testing.T) {
	cells := []Cell{
		{
			Scheme: SchemeK, Query: "Q1", K: 2,
			LMin: 1, LMax: 9, MMin: 3, MMax: 5,
			LSolve: 250 * time.Millisecond,
			Nodes:  1234, LPSolves: 7, Propagations: 999, Components: 3,
			SearchTime: 200 * time.Millisecond,
			PruneRatio: 0.75, MCAcceptance: 1,
		},
		{Scheme: SchemeBipartite, Query: "Q3", K: 4},
	}
	var buf bytes.Buffer
	if err := WriteCellsJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d cells, want 2", len(decoded))
	}
	first := decoded[0]
	checks := map[string]float64{
		"l_min":          1,
		"l_max":          9,
		"nodes":          1234,
		"lp_solves":      7,
		"propagations":   999,
		"components":     3,
		"l_solve_ns":     250e6,
		"search_time_ns": 200e6,
		"prune_ratio":    0.75,
		"mc_acceptance":  1,
	}
	for key, want := range checks {
		got, ok := first[key].(float64)
		if !ok || got != want {
			t.Errorf("cell[0].%s = %v, want %v", key, first[key], want)
		}
	}
	if s, _ := first["scheme"].(string); s != string(SchemeK) {
		t.Errorf("scheme = %v", first["scheme"])
	}
}
