// Package bench regenerates the paper's evaluation (Section V): the
// LICM-vs-Monte-Carlo bound comparison of Figure 5, the timing split
// of Figure 6 (L-model / L-query / L-solve vs MC), and the pruning
// effectiveness tables of Figure 7, plus ablations of the design
// choices called out in DESIGN.md.
//
// The substrate is the synthetic BMS-POS-shaped dataset
// (internal/dataset); scale is configurable and defaults to a
// laptop-sized reduction of the paper's 515K transactions. Absolute
// numbers therefore differ from the paper; the comparisons reproduce
// the paper's *shape*: exact LICM bounds strictly containing the MC
// range, bounds widening with the anonymity parameter k, LICM faster
// than MC on generalization-based schemes, bipartite Query 3 as the
// hard case, and pruning removing the bulk of variables/constraints.
package bench

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"licm/internal/anon"
	"licm/internal/cert"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/explain"
	"licm/internal/hierarchy"
	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/queries"
	"licm/internal/seedflag"
	"licm/internal/solver"
)

// Scheme names an anonymization method.
type Scheme string

// The anonymization schemes of the evaluation.
const (
	SchemeKm        Scheme = "km-anonymity"
	SchemeK         Scheme = "k-anonymity"
	SchemeBipartite Scheme = "bipartite"
	SchemeSuppress  Scheme = "suppression"
)

// Schemes lists the three schemes of Figures 5 and 6, in paper order.
var Schemes = []Scheme{SchemeKm, SchemeK, SchemeBipartite}

// Config controls an experiment run.
type Config struct {
	// Dataset scale (the paper uses 515K transactions over 1657
	// items; defaults reduce this for laptop runtime).
	NumTransactions int
	NumItems        int
	HierarchyFanout int
	Seed            int64
	// Ks are the anonymity parameters swept in Figure 5.
	Ks []int
	// M is the subset size of k^m-anonymity (paper: m=2).
	M int
	// MCSamples is the number of Monte-Carlo worlds (paper: 20).
	MCSamples int
	// Q3X is the popularity threshold of Query 3, scaled to the
	// dataset (the paper uses 80 at 515K transactions).
	Q3X int
	// Q3Frac is the selectivity of Query 3's two location predicates
	// (the paper uses 0.003 at 515K transactions; reduced scales need
	// a wider window so the threshold is reachable).
	Q3Frac float64
	// Solver options; MaxNodes bounds the hard bipartite instances.
	Solver solver.Options
	// SolveDeadline, when positive, caps the wall-clock time of each
	// cell's solve (on top of MaxNodes). A cell that runs out of time
	// degrades instead of aborting the sweep: its Quality drops to
	// "interval" (proven outer bounds only) or "failed" (cancellation
	// before any feasible point), and the sweep moves on.
	SolveDeadline time.Duration
	// Trace, if non-nil, receives a bench.cell span per RunCell with
	// the full operator/solver/MC trace nested in time between its
	// start and end events. It is attached to each cell's DB and
	// sampler and passed into the solver.
	Trace *obs.Tracer
	// Metrics, if non-nil, receives the live solver counters and
	// latency histograms of every cell (it is merged into the solver
	// options and the MC sampler), so a sweep served by -debug-addr is
	// scrapeable at /metrics while it runs.
	Metrics *obs.Registry
	// Log, if non-nil, receives a warn-level record for every cell
	// whose quality lands below "exact", making degradation visible to
	// log pipelines during long sweeps.
	Log *slog.Logger
	// Explain attaches the full licm-explain/1 report to every cell
	// (Cell.Explain): per-run component matrices, fingerprints and
	// search attribution. Component count and max component size are
	// recorded on every cell regardless (the recorder itself is always
	// attached — its overhead is a few small allocations per solve).
	Explain bool
	// Certify attaches licm-cert/1 optimality certificates to every
	// cell (Cell.Certs) by running the solver's certifying post-pass;
	// feed them to licmverify (licmexp -certify).
	Certify bool
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	opts := solver.DefaultOptions()
	opts.MaxNodes = 300_000
	// The experiments need only bounds, not witness worlds; skip the
	// feasibility pass over pruned components.
	opts.CompleteWitness = false
	cfg := Config{
		NumTransactions: 2000,
		NumItems:        400,
		HierarchyFanout: 8,
		Seed:            1,
		Ks:              []int{2, 4, 6, 8},
		M:               2,
		MCSamples:       20,
		Q3X:             2,
		Solver:          opts,
	}
	cfg.Q3Frac = cfg.scaledQ3Frac()
	return cfg
}

// scaledQ3Frac widens Query 3's 0.3% predicate at reduced scale so
// its Pb window keeps roughly the 30+ transactions needed for item
// popularity to be non-trivial.
func (cfg Config) scaledQ3Frac() float64 {
	frac := 0.003
	if cfg.NumTransactions > 0 {
		if need := 30.0 / float64(cfg.NumTransactions); need > frac {
			frac = need
		}
	}
	if frac > 0.25 {
		frac = 0.25
	}
	return frac
}

// data generates the source dataset and hierarchy for a config.
func (cfg Config) data() (*dataset.Dataset, *hierarchy.Hierarchy, error) {
	dcfg := dataset.DefaultConfig(cfg.NumTransactions)
	dcfg.NumItems = cfg.NumItems
	dcfg.Seed = cfg.Seed
	d, err := dataset.Generate(dcfg)
	if err != nil {
		return nil, nil, err
	}
	h, err := hierarchy.Build(cfg.NumItems, cfg.HierarchyFanout, nil)
	if err != nil {
		return nil, nil, err
	}
	return d, h, nil
}

// Queries builds the three paper queries for the config's domains.
func (cfg Config) Queries() []queries.Query {
	locRange := int64(1000)
	priceRange := int64(40)
	frac := cfg.Q3Frac
	if frac <= 0 {
		frac = cfg.scaledQ3Frac()
	}
	return []queries.Query{
		queries.PaperQ1(locRange, priceRange),
		queries.PaperQ2(locRange, priceRange),
		queries.PaperQ3(locRange, frac, cfg.Q3X),
	}
}

// Encode anonymizes the dataset under the scheme with parameter k and
// encodes it into LICM, returning the encoding and the time spent
// (the L-model bar of Figure 6 — anonymization itself is input
// preparation and excluded, as in the paper).
func (cfg Config) Encode(scheme Scheme, k int) (*encode.Encoded, time.Duration, error) {
	d, h, err := cfg.data()
	if err != nil {
		return nil, 0, err
	}
	switch scheme {
	case SchemeKm:
		g, err := anon.KmAnonymize(d, h, k, cfg.M)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		enc := encode.Generalized(g, d.Items)
		return enc, time.Since(start), nil
	case SchemeK:
		g, err := anon.KAnonymize(d, h, k)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		enc := encode.Generalized(g, d.Items)
		return enc, time.Since(start), nil
	case SchemeBipartite:
		bg, err := anon.BipartiteAnonymize(d, k, k)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		enc := encode.Bipartite(d, bg)
		return enc, time.Since(start), nil
	case SchemeSuppress:
		// k plays the role of the support threshold here.
		s, err := anon.SuppressAnonymize(d, k)
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		enc := encode.Suppressed(s, d.Items)
		return enc, time.Since(start), nil
	default:
		return nil, 0, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
}

// Cell is one measured experiment cell: a (scheme, query, k) triple
// with LICM bounds, MC bounds, timings and problem-size statistics.
// Figures 5, 6 and 7 are all views over cells.
type Cell struct {
	Scheme Scheme
	Query  string
	K      int

	// Figure 5 series. LMin/LMax are the proven outer bounds (equal
	// to the exact bounds when the corresponding side is proven);
	// LMinFound/LMaxFound are the best witnessed answers, which
	// differ from the outer bounds only on budget-limited solves.
	LMin, LMax             int64
	LMinFound, LMaxFound   int64
	LMinProven, LMaxProven bool
	MMin, MMax             int64

	// Quality tags how much the cell's LICM series can be trusted:
	// "exact" (both sides proven), "interval" (budget or deadline ran
	// out; LMin/LMax are proven outer bounds), or "failed" (the solve
	// was canceled before any feasible point; the LICM series is
	// meaningless and only the MC series is populated).
	Quality string

	// Figure 6 series.
	LModel, LQuery, LSolve time.Duration
	MCTime                 time.Duration

	// Figure 7 series: store sizes at modeling, after query
	// processing, and after pruning.
	VarsModel, ConsModel   int
	VarsQuery, ConsQuery   int
	VarsPruned, ConsPruned int

	// Solve trace summary (from the maximization solve's Stats): the
	// same figures a --trace run shows live, recorded per cell so the
	// emitted JSON carries them.
	Nodes        int64
	LPSolves     int64
	Propagations int64
	// Components and MaxCompVars come from the explain recorder, which
	// registers the decomposition before any search work — so they are
	// populated even when the cell degrades to "interval" or "failed".
	Components   int
	MaxCompVars  int
	PruneTime    time.Duration
	PresolveTime time.Duration
	SearchTime   time.Duration
	// PruneRatio is the fraction of post-query variables removed by
	// reachability pruning (the paper's Figure 7 headline).
	PruneRatio float64
	// MCAcceptance is the MC run's rejection-sampling acceptance rate
	// (1 when the encoding needs no rejection).
	MCAcceptance float64

	// Explain is the cell's licm-explain/1 report (Config.Explain).
	Explain *explain.Report
	// Certs are the cell's licm-cert/1 certificates (Config.Certify),
	// one per solver run.
	Certs []*cert.Certificate
}

// RunCell executes one experiment cell end to end.
func (cfg Config) RunCell(scheme Scheme, q queries.Query, k int) (Cell, error) {
	cell := Cell{Scheme: scheme, Query: q.Name(), K: k}
	sp := cfg.Trace.Start("bench.cell",
		obs.Str("scheme", string(scheme)), obs.Str("query", q.Name()), obs.Int("k", k))
	enc, tModel, err := cfg.Encode(scheme, k)
	if err != nil {
		sp.End(obs.Bool("ok", false))
		return cell, err
	}
	enc.DB.SetTracer(cfg.Trace)
	cell.LModel = tModel
	cell.VarsModel = enc.DB.NumVars()
	cell.ConsModel = enc.DB.NumConstraints()

	start := time.Now()
	rel, err := q.BuildLICM(enc)
	if err != nil {
		sp.End(obs.Bool("ok", false))
		return cell, err
	}
	cell.LQuery = time.Since(start)
	cell.VarsQuery = enc.DB.NumVars()
	cell.ConsQuery = enc.DB.NumConstraints()

	opts := cfg.Solver
	if opts.Metrics == nil {
		opts.Metrics = cfg.Metrics
	}
	// Always record: the component census (count, max size) must
	// survive cells that degrade to "interval" or "failed", and the
	// recorder's cost is negligible next to the solve.
	rec := &solver.ExplainRecorder{}
	opts.Explain = rec
	var crec *solver.CertRecorder
	if cfg.Certify {
		crec = &solver.CertRecorder{}
		opts.Certify = crec
	}
	if cfg.SolveDeadline > 0 {
		limit := time.Now().Add(cfg.SolveDeadline)
		prev := opts.Cancel
		opts.Cancel = func() bool {
			if prev != nil && prev() {
				return true
			}
			return time.Now().After(limit)
		}
	}
	start = time.Now()
	res, err := core.CountBounds(enc.DB, rel, opts)
	switch {
	case errors.Is(err, solver.ErrCanceled):
		// Deadline struck before any feasible point: record a failed
		// cell (MC series only) instead of aborting the whole sweep.
		cell.LSolve = time.Since(start)
		cell.Quality = "failed"
	case err != nil:
		sp.End(obs.Bool("ok", false))
		return cell, fmt.Errorf("bench: %s/%s k=%d: %w", scheme, q.Name(), k, err)
	default:
		cell.LSolve = time.Since(start)
		cell.LMin, cell.LMax = res.MinBound, res.MaxBound
		cell.LMinFound, cell.LMaxFound = res.Min, res.Max
		cell.LMinProven, cell.LMaxProven = res.MinProven, res.MaxProven
		cell.Quality = "interval"
		if res.MinProven && res.MaxProven {
			cell.Quality = "exact"
		}
		cell.VarsPruned = res.Stats.VarsAfterPrune
		cell.ConsPruned = res.Stats.ConsAfterPrune
		cell.Nodes = res.Stats.Nodes
		cell.LPSolves = res.Stats.LPSolves
		cell.Propagations = res.Stats.Propagations
		cell.PruneTime = res.Stats.PruneTime
		cell.PresolveTime = res.Stats.PresolveTime
		cell.SearchTime = res.Stats.SearchTime
		if cell.VarsQuery > 0 {
			cell.PruneRatio = 1 - float64(cell.VarsPruned)/float64(cell.VarsQuery)
		}
	}
	cell.Components, cell.MaxCompVars = explain.ComponentSummary(rec)
	if cfg.Explain {
		rep := explain.Build(cell.Query, rec)
		rep.Scheme = string(scheme)
		rep.K = k
		rep.Quality = cell.Quality
		cell.Explain = rep
	}
	if crec != nil {
		certs, err := cert.Build(cell.Query, string(scheme), k, crec)
		if err != nil {
			sp.End(obs.Bool("ok", false))
			return cell, fmt.Errorf("bench: %s/%s k=%d: %w", scheme, q.Name(), k, err)
		}
		cell.Certs = certs
	}

	start = time.Now()
	sampler := mc.NewSampler(enc, seedflag.Derive(cfg.Seed, seedflag.MCStream))
	sampler.SetTracer(cfg.Trace)
	sampler.SetMetrics(cfg.Metrics)
	r := sampler.Run(q, cfg.MCSamples)
	cell.MCTime = time.Since(start)
	cell.MMin, cell.MMax = r.Min, r.Max
	cell.MCAcceptance = r.AcceptanceRate()
	if cfg.Log != nil && cell.Quality != "exact" {
		cfg.Log.Warn("experiment cell degraded",
			"scheme", string(scheme),
			"query", q.Name(),
			"k", k,
			"quality", cell.Quality,
			"nodes", cell.Nodes)
	}
	sp.End(
		obs.Bool("ok", true),
		obs.Str("quality", cell.Quality),
		obs.I64("l_min", cell.LMin), obs.I64("l_max", cell.LMax),
		obs.I64("nodes", cell.Nodes),
		obs.F64("prune_ratio", cell.PruneRatio),
		obs.DurNs("solve", cell.LSolve),
	)
	return cell, nil
}
