package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.NumTransactions = 120
	cfg.NumItems = 64
	cfg.Ks = []int{2, 4}
	cfg.MCSamples = 5
	cfg.Q3Frac = 0.1
	cfg.Solver.MaxNodes = 50_000
	return cfg
}

func TestScaledQ3Frac(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumTransactions = 100000
	if f := cfg.scaledQ3Frac(); f != 0.003 {
		t.Errorf("large scale frac = %v, want paper's 0.003", f)
	}
	cfg.NumTransactions = 100
	if f := cfg.scaledQ3Frac(); f != 0.25 {
		t.Errorf("tiny scale frac = %v, want cap 0.25", f)
	}
	cfg.NumTransactions = 1000
	if f := cfg.scaledQ3Frac(); f != 0.03 {
		t.Errorf("mid scale frac = %v, want 0.03", f)
	}
}

func TestQueriesUseQ3Frac(t *testing.T) {
	cfg := tinyConfig()
	qs := cfg.Queries()
	if len(qs) != 3 {
		t.Fatalf("queries = %d", len(qs))
	}
	if qs[0].Name() != "Q1" || qs[1].Name() != "Q2" || qs[2].Name() != "Q3" {
		t.Error("query order wrong")
	}
}

func TestEncodeUnknownScheme(t *testing.T) {
	cfg := tinyConfig()
	if _, _, err := cfg.Encode(Scheme("nope"), 2); err == nil {
		t.Fatal("want error for unknown scheme")
	}
}

func TestEncodeSuppressScheme(t *testing.T) {
	cfg := tinyConfig()
	enc, _, err := cfg.Encode(SchemeSuppress, 3)
	if err != nil {
		t.Fatal(err)
	}
	if enc.TransItem == nil {
		t.Fatal("suppression encoding should populate TransItem")
	}
}

func TestRunCellAndPrinters(t *testing.T) {
	cfg := tinyConfig()
	var cells []Cell
	for _, scheme := range Schemes {
		cell, err := cfg.RunCell(scheme, cfg.Queries()[0], 2)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if cell.VarsQuery < cell.VarsModel {
			t.Errorf("%s: query processing shrank the store", scheme)
		}
		if cell.VarsPruned > cell.VarsQuery {
			t.Errorf("%s: pruning grew the store", scheme)
		}
		cells = append(cells, cell)
	}
	var buf bytes.Buffer
	PrintFig5(&buf, cells)
	if !strings.Contains(buf.String(), "Figure 5 panel") || !strings.Contains(buf.String(), "L_min") {
		t.Errorf("Fig5 output malformed:\n%s", buf.String())
	}
	buf.Reset()
	PrintFig6(&buf, cells)
	if !strings.Contains(buf.String(), "L-solve") {
		t.Errorf("Fig6 output malformed:\n%s", buf.String())
	}
	buf.Reset()
	PrintFig7(&buf, cells)
	if !strings.Contains(buf.String(), "After pruning") {
		t.Errorf("Fig7 output malformed:\n%s", buf.String())
	}
}

func TestRunCellQualityTags(t *testing.T) {
	cfg := tinyConfig()
	cell, err := cfg.RunCell(SchemeK, cfg.Queries()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Quality != "exact" {
		t.Errorf("untimed tiny cell quality = %q, want exact", cell.Quality)
	}

	// With a spent deadline the sweep must survive: the cell degrades
	// to interval (best-effort bounds) or failed (no feasible point),
	// and the MC series is still measured either way.
	cfg.SolveDeadline = time.Nanosecond
	cell, err = cfg.RunCell(SchemeBipartite, cfg.Queries()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Quality != "interval" && cell.Quality != "failed" {
		t.Errorf("deadline cell quality = %q, want interval or failed", cell.Quality)
	}
	if cell.Quality == "exact" {
		t.Error("a 1ns deadline cannot produce an exact cell")
	}
	if cell.MMax < cell.MMin {
		t.Errorf("MC series missing on degraded cell: [%d,%d]", cell.MMin, cell.MMax)
	}

	var buf bytes.Buffer
	PrintFig5(&buf, []Cell{cell})
	if cell.Quality == "failed" && !strings.Contains(buf.String(), "failed") {
		t.Errorf("Fig5 table hides the failed cell:\n%s", buf.String())
	}
}

func TestFig7Tiny(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	cells, err := cfg.Fig7(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("Fig7 cells = %d, want 2 (Q2 and Q3)", len(cells))
	}
	for _, c := range cells {
		if c.Scheme != SchemeK || c.K != 6 {
			t.Errorf("Fig7 cell should be k-anonymity k=6: %+v", c)
		}
		if c.VarsPruned > c.VarsQuery || c.ConsPruned > c.ConsQuery {
			t.Errorf("pruning must not grow: %+v", c)
		}
	}
}

func TestAblationSolverTiny(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	res, err := cfg.AblationSolver(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("variants = %d", len(res))
	}
	// All exact variants must agree on the bounds.
	for _, r := range res[1:] {
		if r.Proven && res[0].Proven && (r.Min != res[0].Min || r.Max != res[0].Max) {
			t.Errorf("variant %s disagrees: [%d,%d] vs [%d,%d]",
				r.Variant, r.Min, r.Max, res[0].Min, res[0].Max)
		}
	}
	// The no-pruning variant must keep at least as much as baseline.
	if res[1].VarsPruned < res[0].VarsPruned {
		t.Errorf("no-pruning kept fewer vars than baseline")
	}
}

func TestAblationMCSamplesTiny(t *testing.T) {
	cfg := tinyConfig()
	var buf bytes.Buffer
	res, err := cfg.AblationMCSamples(&buf, []int{3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("sweeps = %d", len(res))
	}
	for _, r := range res {
		if r.MMin < r.LMin || r.MMax > r.LMax {
			// Only guaranteed when bounds are proven, which they are
			// at this scale.
			t.Errorf("MC [%d,%d] outside exact [%d,%d] at n=%d", r.MMin, r.MMax, r.LMin, r.LMax, r.Samples)
		}
		// More samples can only widen the observed range.
	}
	if res[1].MMax-res[1].MMin < res[0].MMax-res[0].MMin {
		t.Error("larger sample produced a narrower range (same seed prefix expected)")
	}
	_ = time.Millisecond
}
