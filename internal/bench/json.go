package bench

import (
	"encoding/json"
	"io"

	"licm/internal/cert"
	"licm/internal/explain"
)

// cellJSON is the stable machine-readable shape of a Cell. Durations
// are nanoseconds with an explicit _ns suffix, matching the dur_ns
// convention of the obs trace events, so trace post-processors can
// join figures and traces without unit guessing.
type cellJSON struct {
	Scheme string `json:"scheme"`
	Query  string `json:"query"`
	K      int    `json:"k"`

	LMin       int64 `json:"l_min"`
	LMax       int64 `json:"l_max"`
	LMinFound  int64 `json:"l_min_found"`
	LMaxFound  int64 `json:"l_max_found"`
	LMinProven bool  `json:"l_min_proven"`
	LMaxProven bool  `json:"l_max_proven"`
	MMin       int64 `json:"m_min"`
	MMax       int64 `json:"m_max"`
	// Quality is "exact", "interval" (proven outer bounds only) or
	// "failed" (canceled before any feasible point; LICM series
	// unusable).
	Quality string `json:"quality"`

	LModelNs int64 `json:"l_model_ns"`
	LQueryNs int64 `json:"l_query_ns"`
	LSolveNs int64 `json:"l_solve_ns"`
	MCTimeNs int64 `json:"mc_time_ns"`

	VarsModel  int `json:"vars_model"`
	ConsModel  int `json:"cons_model"`
	VarsQuery  int `json:"vars_query"`
	ConsQuery  int `json:"cons_query"`
	VarsPruned int `json:"vars_pruned"`
	ConsPruned int `json:"cons_pruned"`

	Nodes        int64 `json:"nodes"`
	LPSolves     int64 `json:"lp_solves"`
	Propagations int64 `json:"propagations"`
	// Components and MaxCompVars are populated on every cell —
	// including "interval" and "failed" ones — because the explain
	// recorder registers the decomposition before any search work.
	Components   int     `json:"components"`
	MaxCompVars  int     `json:"max_comp_vars"`
	PruneTimeNs  int64   `json:"prune_time_ns"`
	PresolveNs   int64   `json:"presolve_time_ns"`
	SearchNs     int64   `json:"search_time_ns"`
	PruneRatio   float64 `json:"prune_ratio"`
	MCAcceptance float64 `json:"mc_acceptance"`

	// Explain carries the cell's licm-explain/1 report when the run
	// was configured with Explain (licmexp -explain-json).
	Explain *explain.Report `json:"explain,omitempty"`
	// Certs carries the cell's licm-cert/1 certificates when the run
	// was configured with Certify (licmexp -certify).
	Certs []*cert.Certificate `json:"certs,omitempty"`
}

func toCellJSON(c Cell) cellJSON {
	return cellJSON{
		Scheme:       string(c.Scheme),
		Query:        c.Query,
		K:            c.K,
		LMin:         c.LMin,
		LMax:         c.LMax,
		LMinFound:    c.LMinFound,
		LMaxFound:    c.LMaxFound,
		LMinProven:   c.LMinProven,
		LMaxProven:   c.LMaxProven,
		MMin:         c.MMin,
		MMax:         c.MMax,
		Quality:      c.Quality,
		LModelNs:     c.LModel.Nanoseconds(),
		LQueryNs:     c.LQuery.Nanoseconds(),
		LSolveNs:     c.LSolve.Nanoseconds(),
		MCTimeNs:     c.MCTime.Nanoseconds(),
		VarsModel:    c.VarsModel,
		ConsModel:    c.ConsModel,
		VarsQuery:    c.VarsQuery,
		ConsQuery:    c.ConsQuery,
		VarsPruned:   c.VarsPruned,
		ConsPruned:   c.ConsPruned,
		Nodes:        c.Nodes,
		LPSolves:     c.LPSolves,
		Propagations: c.Propagations,
		Components:   c.Components,
		MaxCompVars:  c.MaxCompVars,
		Explain:      c.Explain,
		Certs:        c.Certs,
		PruneTimeNs:  c.PruneTime.Nanoseconds(),
		PresolveNs:   c.PresolveTime.Nanoseconds(),
		SearchNs:     c.SearchTime.Nanoseconds(),
		PruneRatio:   c.PruneRatio,
		MCAcceptance: c.MCAcceptance,
	}
}

// WriteCellsJSON writes the cells as an indented JSON array, each cell
// carrying the Figure 5/6/7 series plus the solve trace summary
// (nodes, LP solves, propagations, phase times, prune ratio).
func WriteCellsJSON(w io.Writer, cells []Cell) error {
	out := make([]cellJSON, len(cells))
	for i, c := range cells {
		out[i] = toCellJSON(c)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
