package bench

import (
	"io"
	"os"
	"testing"
)

// TestFig5MidScale runs the Figure 5 sweep at a reduced scale and
// checks the paper's qualitative claims hold: MC ranges inside proven
// LICM bounds across every scheme, query and k.
func TestFig5MidScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	cfg := DefaultConfig()
	cfg.NumTransactions = 600
	cfg.NumItems = 200
	cfg.Ks = []int{2, 4}
	cfg.MCSamples = 10
	cfg.Q3Frac = 0
	cfg.Solver.MaxNodes = 150_000
	cells, err := cfg.Fig5(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(Schemes)*3*len(cfg.Ks) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.LMinProven && c.MMin < c.LMin {
			t.Errorf("%s/%s k=%d: MC min %d below exact %d", c.Scheme, c.Query, c.K, c.MMin, c.LMin)
		}
		if c.LMaxProven && c.MMax > c.LMax {
			t.Errorf("%s/%s k=%d: MC max %d above exact %d", c.Scheme, c.Query, c.K, c.MMax, c.LMax)
		}
	}
	// The paper's headline: on generalization schemes the exact LICM
	// range strictly contains the MC range somewhere in the sweep.
	strictly := false
	for _, c := range cells {
		if c.LMinProven && c.LMaxProven && (c.LMin < c.MMin || c.LMax > c.MMax) {
			strictly = true
			break
		}
	}
	if !strictly {
		t.Error("MC explored the full range everywhere — expected strict containment somewhere")
	}
}

// TestFig5FullScale runs the default-scale sweep; opt in with
// LICM_FULL=1 (it takes minutes).
func TestFig5FullScale(t *testing.T) {
	if os.Getenv("LICM_FULL") == "" {
		t.Skip("set LICM_FULL=1 to run the full-scale Figure 5 sweep")
	}
	cfg := DefaultConfig()
	cells, err := cfg.Fig5(os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.LMinProven && c.MMin < c.LMin {
			t.Errorf("%s/%s k=%d: MC min %d below exact %d", c.Scheme, c.Query, c.K, c.MMin, c.LMin)
		}
		if c.LMaxProven && c.MMax > c.LMax {
			t.Errorf("%s/%s k=%d: MC max %d above exact %d", c.Scheme, c.Query, c.K, c.MMax, c.LMax)
		}
	}
}
