package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"licm/internal/cert"
)

// TestCellCertificates: with Config.Certify the cell carries
// licm-cert/1 certificates that the independent verifier accepts,
// and they ride into the cell JSON under "certs".
func TestCellCertificates(t *testing.T) {
	cfg := tinyConfig()
	cfg.Certify = true
	cell, err := cfg.RunCell(SchemeK, cfg.Queries()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cell.Certs) == 0 {
		t.Fatal("Config.Certify did not attach certificates")
	}
	for i, c := range cell.Certs {
		if err := c.Validate(); err != nil {
			t.Fatalf("certificate %d: %v", i, err)
		}
		if _, err := cert.Verify(c); err != nil {
			t.Fatalf("certificate %d rejected: %v", i, err)
		}
		if c.Query != cell.Query || c.Scheme != string(SchemeK) || c.K != 2 {
			t.Errorf("certificate %d labels = %q/%q/%d", i, c.Query, c.Scheme, c.K)
		}
	}

	var buf bytes.Buffer
	if err := WriteCellsJSON(&buf, []Cell{cell}); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out[0]["certs"]; !ok {
		t.Error("cell JSON lost the certificates")
	}

	// Without Certify the cell and its JSON stay clean.
	cfg.Certify = false
	cell, err = cfg.RunCell(SchemeK, cfg.Queries()[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Certs != nil {
		t.Error("certificates attached without Config.Certify")
	}
	buf.Reset()
	if err := WriteCellsJSON(&buf, []Cell{cell}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"certs"`)) {
		t.Error("cell JSON carries a certs key without Config.Certify")
	}
}
