package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// SnapshotSchema versions the BENCH_<label>.json artifact layout.
// Readers must reject majors they do not understand; the minor is
// implicit (additive fields only).
const SnapshotSchema = "licm-bench/1"

// SnapshotDataset pins the dataset a snapshot was measured on. Two
// snapshots are only comparable cell-by-cell when these match — the
// diff warns when they do not.
type SnapshotDataset struct {
	Transactions int   `json:"transactions"`
	Items        int   `json:"items"`
	Seed         int64 `json:"seed"`
	Ks           []int `json:"ks"`
	MCSamples    int   `json:"mc_samples"`
}

// Snapshot is one benchmark run as a tracked artifact: the measured
// cells (the same per-cell JSON WriteCellsJSON emits) wrapped with
// enough run metadata to judge whether two snapshots are comparable
// and to explain a delta (different Go version, different box,
// different dataset scale).
type Snapshot struct {
	Schema     string          `json:"schema"`
	Label      string          `json:"label"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Commit     string          `json:"commit,omitempty"`
	Dataset    SnapshotDataset `json:"dataset"`
	WallNs     int64           `json:"wall_ns"`
	Cells      []cellJSON      `json:"cells"`
}

// NewSnapshot wraps measured cells into a snapshot, stamping runtime
// metadata and the VCS commit when the binary carries build info
// (go run / go build from a git checkout does).
func NewSnapshot(label string, cfg Config, cells []Cell, wall time.Duration) Snapshot {
	s := Snapshot{
		Schema:     SnapshotSchema,
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Commit:     vcsRevision(),
		Dataset: SnapshotDataset{
			Transactions: cfg.NumTransactions,
			Items:        cfg.NumItems,
			Seed:         cfg.Seed,
			Ks:           cfg.Ks,
			MCSamples:    cfg.MCSamples,
		},
		WallNs: wall.Nanoseconds(),
		Cells:  make([]cellJSON, len(cells)),
	}
	for i, c := range cells {
		s.Cells[i] = toCellJSON(c)
	}
	return s
}

// vcsRevision extracts the vcs.revision build setting, "" when absent.
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

// WriteSnapshotJSON writes the snapshot as indented JSON.
func WriteSnapshotJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot, rejecting unknown schema majors with
// a clear error instead of mis-comparing.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("bench: snapshot: %w", err)
	}
	if !strings.HasPrefix(s.Schema, "licm-bench/") {
		return Snapshot{}, fmt.Errorf("bench: not a bench snapshot (schema %q, want licm-bench/*)", s.Schema)
	}
	if s.Schema != SnapshotSchema {
		return Snapshot{}, fmt.Errorf("bench: unsupported snapshot schema %q (this reader understands %s)", s.Schema, SnapshotSchema)
	}
	return s, nil
}

// SnapshotTol tunes the cell-by-cell comparison. The zero value is
// replaced by DefaultSnapshotTol field-wise.
type SnapshotTol struct {
	// TimeFactor bounds solve-time growth: new l_solve_ns may be up to
	// old × TimeFactor. CI compares across machines, so keep this
	// generous (the default 2 catches only gross regressions).
	TimeFactor float64
	// NodesFactor bounds search-size growth the same way. Node counts
	// are deterministic for a fixed seed and solver, so breaches here
	// are real algorithmic regressions, not noise.
	NodesFactor float64
	// MinTimeNs is the noise floor: solve times are only compared when
	// the old cell took at least this long (sub-millisecond solves
	// triple on scheduler jitter).
	MinTimeNs int64
	// PruneDrop is the allowed absolute drop in prune_ratio.
	PruneDrop float64
}

// DefaultSnapshotTol returns the licmtrace bench-diff defaults.
func DefaultSnapshotTol() SnapshotTol {
	return SnapshotTol{TimeFactor: 2, NodesFactor: 2, MinTimeNs: 5_000_000, PruneDrop: 0.2}
}

// CellDelta compares one (scheme, query, k) cell across snapshots.
type CellDelta struct {
	Key        string  `json:"key"`
	OldSolveNs int64   `json:"old_solve_ns"`
	NewSolveNs int64   `json:"new_solve_ns"`
	OldNodes   int64   `json:"old_nodes"`
	NewNodes   int64   `json:"new_nodes"`
	OldPrune   float64 `json:"old_prune"`
	NewPrune   float64 `json:"new_prune"`
	// Breaches lists the tolerance violations of this cell, empty when
	// it is within bounds.
	Breaches []string `json:"breaches,omitempty"`
}

// SnapshotDiff is the outcome of comparing two snapshots.
type SnapshotDiff struct {
	Tol    SnapshotTol `json:"tol"`
	Deltas []CellDelta `json:"deltas"`
	// OnlyOld lists cells the new snapshot dropped (a coverage
	// regression, always a breach); OnlyNew lists added cells (fine).
	OnlyOld []string `json:"only_old,omitempty"`
	OnlyNew []string `json:"only_new,omitempty"`
	// Warnings flag comparability problems (dataset or Go version
	// mismatch) that do not fail the diff by themselves.
	Warnings []string `json:"warnings,omitempty"`
	Breached bool     `json:"breached"`
}

func cellKey(c cellJSON) string {
	return fmt.Sprintf("%s/%s/k=%d", c.Scheme, c.Query, c.K)
}

// DiffSnapshots compares snapshots cell-by-cell on l_solve_ns, nodes
// and prune_ratio with the given tolerances, and on the proven bounds
// exactly: two proven runs disagreeing on l_min/l_max is a correctness
// regression no tolerance excuses.
func DiffSnapshots(oldS, newS Snapshot, tol SnapshotTol) SnapshotDiff {
	def := DefaultSnapshotTol()
	if tol.TimeFactor <= 0 {
		tol.TimeFactor = def.TimeFactor
	}
	if tol.NodesFactor <= 0 {
		tol.NodesFactor = def.NodesFactor
	}
	if tol.MinTimeNs <= 0 {
		tol.MinTimeNs = def.MinTimeNs
	}
	if tol.PruneDrop <= 0 {
		tol.PruneDrop = def.PruneDrop
	}
	d := SnapshotDiff{Tol: tol}
	if !datasetEqual(oldS.Dataset, newS.Dataset) {
		d.Warnings = append(d.Warnings, fmt.Sprintf("datasets differ (old %+v, new %+v): cells are not strictly comparable", oldS.Dataset, newS.Dataset))
	}
	if oldS.GoVersion != newS.GoVersion {
		d.Warnings = append(d.Warnings, fmt.Sprintf("Go versions differ (old %s, new %s)", oldS.GoVersion, newS.GoVersion))
	}
	newCells := make(map[string]cellJSON, len(newS.Cells))
	for _, c := range newS.Cells {
		newCells[cellKey(c)] = c
	}
	oldSeen := make(map[string]bool, len(oldS.Cells))
	for _, oc := range oldS.Cells {
		key := cellKey(oc)
		if oldSeen[key] {
			continue // duplicate cell (figure overlap); first occurrence wins
		}
		oldSeen[key] = true
		nc, ok := newCells[key]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, key)
			d.Breached = true
			continue
		}
		delta := CellDelta{
			Key:        key,
			OldSolveNs: oc.LSolveNs,
			NewSolveNs: nc.LSolveNs,
			OldNodes:   oc.Nodes,
			NewNodes:   nc.Nodes,
			OldPrune:   oc.PruneRatio,
			NewPrune:   nc.PruneRatio,
		}
		if oc.LSolveNs >= tol.MinTimeNs && float64(nc.LSolveNs) > float64(oc.LSolveNs)*tol.TimeFactor {
			delta.Breaches = append(delta.Breaches, fmt.Sprintf("l_solve_ns %d -> %d (> %.2gx)", oc.LSolveNs, nc.LSolveNs, tol.TimeFactor))
		}
		if oc.Nodes > 0 && float64(nc.Nodes) > float64(oc.Nodes)*tol.NodesFactor {
			delta.Breaches = append(delta.Breaches, fmt.Sprintf("nodes %d -> %d (> %.2gx)", oc.Nodes, nc.Nodes, tol.NodesFactor))
		}
		if nc.PruneRatio < oc.PruneRatio-tol.PruneDrop {
			delta.Breaches = append(delta.Breaches, fmt.Sprintf("prune_ratio %.3f -> %.3f (drop > %.2g)", oc.PruneRatio, nc.PruneRatio, tol.PruneDrop))
		}
		if oc.LMinProven && nc.LMinProven && oc.LMin != nc.LMin {
			delta.Breaches = append(delta.Breaches, fmt.Sprintf("proven l_min changed: %d -> %d", oc.LMin, nc.LMin))
		}
		if oc.LMaxProven && nc.LMaxProven && oc.LMax != nc.LMax {
			delta.Breaches = append(delta.Breaches, fmt.Sprintf("proven l_max changed: %d -> %d", oc.LMax, nc.LMax))
		}
		if len(delta.Breaches) > 0 {
			d.Breached = true
		}
		d.Deltas = append(d.Deltas, delta)
	}
	for _, nc := range newS.Cells {
		key := cellKey(nc)
		if !oldSeen[key] {
			d.OnlyNew = append(d.OnlyNew, key)
		}
	}
	sort.Slice(d.Deltas, func(i, j int) bool { return d.Deltas[i].Key < d.Deltas[j].Key })
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d
}

// datasetEqual compares datasets including the Ks slice (the struct
// contains a slice, so == is not available).
func datasetEqual(a, b SnapshotDataset) bool {
	if a.Transactions != b.Transactions || a.Items != b.Items || a.Seed != b.Seed || a.MCSamples != b.MCSamples {
		return false
	}
	if len(a.Ks) != len(b.Ks) {
		return false
	}
	for i := range a.Ks {
		if a.Ks[i] != b.Ks[i] {
			return false
		}
	}
	return true
}
