package prior

import (
	"math"
	"testing"

	"licm/internal/core"
	"licm/internal/expr"
)

// uncDB builds an unconstrained db with n base vars and a COUNT
// objective over them.
func uncDB(n int) (*core.DB, expr.Lin) {
	db := core.NewDB()
	vs := db.NewVars(n)
	return db, expr.Sum(vs...)
}

func TestNewValidation(t *testing.T) {
	db, _ := uncDB(2)
	if _, err := New(db, -0.1); err == nil {
		t.Error("want error for p < 0")
	}
	if _, err := New(db, 1.1); err == nil {
		t.Error("want error for p > 1")
	}
	pr, err := New(db, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Set(0, 2); err == nil {
		t.Error("want error for p > 1 in Set")
	}
	if err := pr.Set(0, 0.25); err != nil {
		t.Error(err)
	}
	if pr.Prob(0) != 0.25 {
		t.Error("Set did not stick")
	}
}

func TestSetRejectsDerived(t *testing.T) {
	db := core.NewDB()
	a, b := db.NewVar(), db.NewVar()
	and := db.And(core.Maybe(a), core.Maybe(b))
	pr, _ := New(db, 0.5)
	if err := pr.Set(and.Var(), 0.5); err == nil {
		t.Error("want error setting probability on a derived variable")
	}
}

func TestExactUnconstrained(t *testing.T) {
	// E[count of n independent Bernoulli(p)] = n*p.
	db, obj := uncDB(3)
	pr, _ := New(db, 0.3)
	res, err := pr.Exact(obj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Expected-0.9) > 1e-9 {
		t.Errorf("E = %v, want 0.9", res.Expected)
	}
	if math.Abs(res.ValidMass-1) > 1e-9 {
		t.Errorf("valid mass = %v, want 1", res.ValidMass)
	}
	if res.Worlds != 8 {
		t.Errorf("worlds = %d, want 8", res.Worlds)
	}
}

func TestExactConditioned(t *testing.T) {
	// Two vars, constraint b0+b1 >= 1, p = 1/2 each: valid worlds
	// {01,10,11} equally likely; E[count] = (1+1+2)/3 = 4/3.
	db := core.NewDB()
	vs := db.NewVars(2)
	db.AddCardinality(vs, 1, -1)
	pr, _ := New(db, 0.5)
	res, err := pr.Exact(expr.Sum(vs...))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Expected-4.0/3.0) > 1e-9 {
		t.Errorf("E = %v, want 4/3", res.Expected)
	}
	if math.Abs(res.ValidMass-0.75) > 1e-9 {
		t.Errorf("mass = %v, want 0.75", res.ValidMass)
	}
}

func TestExactWithLineage(t *testing.T) {
	// E[b0 AND b1] with p=1/2 each = 1/4; the objective references the
	// derived variable.
	db := core.NewDB()
	a, b := db.NewVar(), db.NewVar()
	and := db.And(core.Maybe(a), core.Maybe(b))
	pr, _ := New(db, 0.5)
	res, err := pr.Exact(expr.Sum(and.Var()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Expected-0.25) > 1e-9 {
		t.Errorf("E = %v, want 0.25", res.Expected)
	}
}

func TestExactTail(t *testing.T) {
	db := core.NewDB()
	vs := db.NewVars(2)
	pr, _ := New(db, 0.5)
	tail, err := pr.ExactTail(expr.Sum(vs...), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tail-0.75) > 1e-9 {
		t.Errorf("P[count>=1] = %v, want 0.75", tail)
	}
	tail, _ = pr.ExactTail(expr.Sum(vs...), 3)
	if tail != 0 {
		t.Errorf("P[count>=3] = %v, want 0", tail)
	}
}

func TestExactZeroMass(t *testing.T) {
	// p=0 on a variable that must be 1: conditioning event has zero
	// probability.
	db := core.NewDB()
	v := db.NewVar()
	db.AddCardinality([]expr.Var{v}, 1, 1)
	pr, _ := New(db, 0)
	if _, err := pr.Exact(expr.Sum(v)); err == nil {
		t.Error("want zero-mass error")
	}
}

func TestExactInfeasible(t *testing.T) {
	db := core.NewDB()
	v := db.NewVar()
	db.AddCardinality([]expr.Var{v}, 1, 1)
	db.AddCardinality([]expr.Var{v}, 0, 0)
	pr, _ := New(db, 0.5)
	if _, err := pr.Exact(expr.Sum(v)); err == nil {
		t.Error("want no-valid-worlds error")
	}
}

func TestEstimateMatchesExact(t *testing.T) {
	db := core.NewDB()
	vs := db.NewVars(4)
	db.AddCardinality(vs, 1, 3)
	obj := expr.Sum(vs...)
	pr, _ := New(db, 0.4)
	exact, err := pr.Exact(obj)
	if err != nil {
		t.Fatal(err)
	}
	est, err := pr.Estimate(obj, 40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Expected-exact.Expected) > 5*est.StdErr+0.02 {
		t.Errorf("estimate %v ± %v vs exact %v", est.Expected, est.StdErr, exact.Expected)
	}
	accRate := float64(est.Accepted) / float64(est.Proposed)
	if math.Abs(accRate-exact.ValidMass) > 0.02 {
		t.Errorf("acceptance %v vs exact mass %v", accRate, exact.ValidMass)
	}
}

func TestEstimateTailMatchesExact(t *testing.T) {
	db := core.NewDB()
	vs := db.NewVars(4)
	db.AddCardinality(vs, 1, -1)
	obj := expr.Sum(vs...)
	pr, _ := New(db, 0.5)
	exact, err := pr.ExactTail(obj, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := pr.EstimateTail(obj, 2, 40000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > 0.02 {
		t.Errorf("tail estimate %v vs exact %v", est, exact)
	}
}

func TestEstimateAllRejected(t *testing.T) {
	db := core.NewDB()
	v := db.NewVar()
	db.AddCardinality([]expr.Var{v}, 1, 1)
	pr, _ := New(db, 0) // prior never proposes v=1
	if _, err := pr.Estimate(expr.Sum(v), 100, 1); err == nil {
		t.Error("want all-rejected error")
	}
	if _, err := pr.EstimateTail(expr.Sum(v), 1, 100, 1); err == nil {
		t.Error("want all-rejected error")
	}
}

func TestEstimateValidation(t *testing.T) {
	db, obj := uncDB(1)
	pr, _ := New(db, 0.5)
	if _, err := pr.Estimate(obj, 0, 1); err == nil {
		t.Error("want sample-count error")
	}
	if _, err := pr.EstimateTail(obj, 0, 0, 1); err == nil {
		t.Error("want sample-count error")
	}
}

func TestDeterministicEstimates(t *testing.T) {
	db, obj := uncDB(5)
	pr, _ := New(db, 0.5)
	a, _ := pr.Estimate(obj, 1000, 3)
	b, _ := pr.Estimate(obj, 1000, 3)
	if a.Expected != b.Expected {
		t.Error("same seed must reproduce the estimate")
	}
}
