package prior

// The floatcmp lint confines exact float comparisons to tol.go files;
// this is the prior package's.

// zeroMass reports m == 0 with no tolerance, used to detect a
// conditioning event of probability zero. m is a sum of world weights
// — products of probabilities in [0,1], each non-negative — so the sum
// is exactly 0.0 iff every contributing weight is exactly zero (some
// marginal is a hard 0 or 1). Any event with positive probability
// yields a strictly positive float here; an eps threshold would
// misclassify genuinely tiny-but-possible events as impossible.
func zeroMass(m float64) bool { return m == 0 }
