// Package prior implements the probabilistic extension the paper
// leaves as an open problem (Section VI): "extend LICM to incorporate
// prior distributions, perhaps as (independent) distributions over the
// binary variables. The goal of query answering is then to find the
// expected value of an aggregate, or tail bounds on its value."
//
// A Prior attaches an independent Bernoulli probability to every base
// variable of an LICM database. The distribution over possible worlds
// is the product measure conditioned on the constraint store (worlds
// violating a constraint have probability zero and the rest are
// renormalized). Derived (lineage) variables need no probabilities:
// their values are functions of the base variables.
//
// Exact computation enumerates worlds and is exponential; Estimate
// uses rejection sampling from the unconditioned product measure. As
// the paper notes, LICM's possibilistic bounds remain available by
// simply dropping the probabilities.
package prior

import (
	"fmt"
	"math"
	"math/rand"

	"licm/internal/core"
	"licm/internal/expr"
)

// Prior is an independent Bernoulli prior over the base variables of
// an LICM database.
type Prior struct {
	db *core.DB
	p  []float64
}

// New creates a prior with probability defaultP for every base
// variable.
func New(db *core.DB, defaultP float64) (*Prior, error) {
	if defaultP < 0 || defaultP > 1 {
		return nil, fmt.Errorf("prior: probability %v outside [0,1]", defaultP)
	}
	pr := &Prior{db: db, p: make([]float64, db.NumVars())}
	for _, v := range db.BaseVars() {
		pr.p[v] = defaultP
	}
	return pr, nil
}

// Set overrides the probability of one base variable.
func (pr *Prior) Set(v expr.Var, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("prior: probability %v outside [0,1]", p)
	}
	if int(v) >= len(pr.p) || pr.db.Def(v).Kind != core.DefBase {
		return fmt.Errorf("prior: b%d is not a base variable", v)
	}
	pr.p[v] = p
	return nil
}

// Prob returns the prior probability of a base variable.
func (pr *Prior) Prob(v expr.Var) float64 { return pr.p[v] }

// worldWeight returns the unconditioned product-measure probability of
// the base part of an assignment.
func (pr *Prior) worldWeight(assign []uint8) float64 {
	w := 1.0
	for _, v := range pr.db.BaseVars() {
		if assign[v] == 1 {
			w *= pr.p[v]
		} else {
			w *= 1 - pr.p[v]
		}
	}
	return w
}

// ExactResult is the outcome of exact conditional computation.
type ExactResult struct {
	// Expected is E[objective | constraints hold].
	Expected float64
	// ValidMass is the prior probability that the constraints hold.
	ValidMass float64
	// Worlds is the number of valid worlds.
	Worlds int
}

// Exact computes the exact conditional expectation of an integer
// linear objective by enumerating all worlds (<= 24 base variables).
func (pr *Prior) Exact(objective expr.Lin) (ExactResult, error) {
	worlds := pr.db.EnumWorlds()
	if len(worlds) == 0 {
		return ExactResult{}, fmt.Errorf("prior: no valid worlds")
	}
	var mass, acc float64
	for _, w := range worlds {
		weight := pr.worldWeight(w)
		mass += weight
		acc += weight * float64(objective.Eval(func(v expr.Var) bool { return w[v] == 1 }))
	}
	if zeroMass(mass) {
		return ExactResult{Worlds: len(worlds)}, fmt.Errorf("prior: conditioning event has probability zero")
	}
	return ExactResult{Expected: acc / mass, ValidMass: mass, Worlds: len(worlds)}, nil
}

// ExactTail computes P[objective >= t | constraints hold] exactly.
func (pr *Prior) ExactTail(objective expr.Lin, t int64) (float64, error) {
	worlds := pr.db.EnumWorlds()
	if len(worlds) == 0 {
		return 0, fmt.Errorf("prior: no valid worlds")
	}
	var mass, tail float64
	for _, w := range worlds {
		weight := pr.worldWeight(w)
		mass += weight
		if objective.Eval(func(v expr.Var) bool { return w[v] == 1 }) >= t {
			tail += weight
		}
	}
	if zeroMass(mass) {
		return 0, fmt.Errorf("prior: conditioning event has probability zero")
	}
	return tail / mass, nil
}

// EstimateResult is the outcome of rejection-sampling estimation.
type EstimateResult struct {
	// Expected estimates E[objective | constraints hold].
	Expected float64
	// StdErr is the standard error of the estimate over the accepted
	// samples.
	StdErr float64
	// Accepted and Proposed count rejection-sampling outcomes; their
	// ratio estimates the prior probability of validity.
	Accepted, Proposed int
}

// Estimate approximates the conditional expectation by sampling base
// assignments from the product prior, extending them through the
// lineage definitions, and rejecting assignments that violate the
// store. It errors if nothing is accepted (heavily constrained store
// or too few samples — use Exact or raise samples).
func (pr *Prior) Estimate(objective expr.Lin, samples int, seed int64) (EstimateResult, error) {
	if samples < 1 {
		return EstimateResult{}, fmt.Errorf("prior: need at least one sample")
	}
	rng := rand.New(rand.NewSource(seed))
	base := pr.db.BaseVars()
	assign := make([]uint8, pr.db.NumVars())
	res := EstimateResult{Proposed: samples}
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		for _, v := range base {
			if rng.Float64() < pr.p[v] {
				assign[v] = 1
			} else {
				assign[v] = 0
			}
		}
		pr.db.Extend(assign)
		if !pr.db.Valid(assign) {
			continue
		}
		res.Accepted++
		val := float64(objective.Eval(func(v expr.Var) bool { return assign[v] == 1 }))
		sum += val
		sumSq += val * val
	}
	if res.Accepted == 0 {
		return res, fmt.Errorf("prior: all %d samples rejected; the valid region has low prior mass", samples)
	}
	n := float64(res.Accepted)
	res.Expected = sum / n
	if res.Accepted > 1 {
		variance := (sumSq - sum*sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		res.StdErr = math.Sqrt(variance / n)
	}
	return res, nil
}

// EstimateTail approximates P[objective >= t | constraints hold] by
// rejection sampling.
func (pr *Prior) EstimateTail(objective expr.Lin, t int64, samples int, seed int64) (float64, error) {
	if samples < 1 {
		return 0, fmt.Errorf("prior: need at least one sample")
	}
	rng := rand.New(rand.NewSource(seed))
	base := pr.db.BaseVars()
	assign := make([]uint8, pr.db.NumVars())
	accepted, hits := 0, 0
	for i := 0; i < samples; i++ {
		for _, v := range base {
			if rng.Float64() < pr.p[v] {
				assign[v] = 1
			} else {
				assign[v] = 0
			}
		}
		pr.db.Extend(assign)
		if !pr.db.Valid(assign) {
			continue
		}
		accepted++
		if objective.Eval(func(v expr.Var) bool { return assign[v] == 1 }) >= t {
			hits++
		}
	}
	if accepted == 0 {
		return 0, fmt.Errorf("prior: all %d samples rejected", samples)
	}
	return float64(hits) / float64(accepted), nil
}
