package core_test

// Property tests for the model invariants listed in DESIGN.md §6:
// operator determinism, commutation of query evaluation with world
// instantiation, and exactness of aggregate bounds versus exhaustive
// world enumeration.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"licm/internal/core"
	"licm/internal/engine"
	"licm/internal/expr"
	"licm/internal/solver"
)

// toTable instantiates a core relation in a world as an engine table.
func toTable(r *core.Relation, w []uint8) *engine.Table {
	t := engine.New(r.Name, r.Cols...)
	t.InsertRows(core.Instantiate(r, w))
	return t
}

// randRelation builds a random TransItem-style relation over the DB,
// returning it. Tuples are randomly certain or maybe.
func randRelation(r *rand.Rand, db *core.DB, name string, nTID, nItem, maxTuples int) *core.Relation {
	rel := core.NewRelation(name, "TID", "Item")
	n := 1 + r.Intn(maxTuples)
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		tid := core.IntVal(int64(r.Intn(nTID)))
		item := core.IntVal(int64(r.Intn(nItem)))
		k := core.Key([]core.Value{tid, item})
		if seen[k] {
			continue // keep base relations set-semantic
		}
		seen[k] = true
		ext := core.Certain
		if r.Intn(4) != 0 { // 75% maybe
			ext = core.Maybe(db.NewVar())
		}
		rel.Insert(ext, tid, item)
	}
	return rel
}

// addRandConstraints adds random cardinality constraints over the base
// variables, loose enough to usually stay feasible.
func addRandConstraints(r *rand.Rand, db *core.DB) {
	base := db.BaseVars()
	if len(base) == 0 {
		return
	}
	for c := 0; c < r.Intn(3); c++ {
		k := 1 + r.Intn(min(4, len(base)))
		perm := r.Perm(len(base))
		vars := make([]expr.Var, k)
		for i := 0; i < k; i++ {
			vars[i] = base[perm[i]]
		}
		switch r.Intn(3) {
		case 0:
			db.AddCardinality(vars, 1, -1)
		case 1:
			db.AddCardinality(vars, -1, k-r.Intn(k))
		default:
			db.AddCardinality(vars, 1, 1+r.Intn(k))
		}
	}
}

// pipeline pairs a LICM query plan applied symbolically with the same
// plan recorded as per-world deterministic steps.
type pipeline struct {
	db  *core.DB
	cur *core.Relation
	det []func(t *engine.Table, w []uint8) *engine.Table
}

func (p *pipeline) apply(r *rand.Rand) {
	switch op := r.Intn(6); op {
	case 5: // union with a fresh random relation of same schema
		if len(p.cur.Cols) != 2 || p.db.NumVars() > 8 {
			return
		}
		other := randRelation(r, p.db, "U", 3, 3, 4)
		other.Cols = append([]string(nil), p.cur.Cols...)
		out, err := core.Union(p.db, p.cur, other)
		if err != nil {
			panic(err)
		}
		p.cur = out
		name := out.Name
		p.det = append(p.det, func(t *engine.Table, w []uint8) *engine.Table {
			ot := toTable(other, w)
			res, err := t.Union(ot)
			if err != nil {
				panic(err)
			}
			res.Name = name
			return res
		})
	case 0: // selection on a random column threshold
		col := p.cur.Cols[r.Intn(len(p.cur.Cols))]
		cut := int64(r.Intn(4))
		p.cur = core.Select(p.cur, func(row core.Row) bool { return row.Int(col) <= cut })
		name := p.cur.Name
		p.det = append(p.det, func(t *engine.Table, w []uint8) *engine.Table {
			out := t.Select(func(row engine.Row) bool { return row.Int(col) <= cut })
			out.Name = name
			return out
		})
	case 1: // projection onto a random non-empty column subset
		perm := r.Perm(len(p.cur.Cols))
		k := 1 + r.Intn(len(p.cur.Cols))
		cols := make([]string, 0, k)
		for i := 0; i < k; i++ {
			cols = append(cols, p.cur.Cols[perm[i]])
		}
		p.cur = core.Project(p.db, p.cur, cols...)
		name := p.cur.Name
		p.det = append(p.det, func(t *engine.Table, w []uint8) *engine.Table {
			out := t.Project(cols...)
			out.Name = name
			return out
		})
	case 2: // count predicate grouped by the first column
		if len(p.cur.Cols) < 2 {
			return
		}
		group := []string{p.cur.Cols[0]}
		cmp := core.CmpOp(r.Intn(2))
		d := 1 + r.Intn(3)
		p.cur = core.CountPredicate(p.db, p.cur, group, cmp, d)
		name := p.cur.Name
		p.det = append(p.det, func(t *engine.Table, w []uint8) *engine.Table {
			out := t.CountPredicate(group, cmp, d)
			out.Name = name
			return out
		})
	case 3: // intersect with a fresh random relation of same schema
		if len(p.cur.Cols) != 2 || p.db.NumVars() > 8 {
			return
		}
		other := randRelation(r, p.db, "S", 3, 3, 4)
		other.Cols = append([]string(nil), p.cur.Cols...)
		out, err := core.Intersect(p.db, p.cur, other)
		if err != nil {
			panic(err)
		}
		p.cur = out
		name := out.Name
		p.det = append(p.det, func(t *engine.Table, w []uint8) *engine.Table {
			ot := toTable(other, w)
			res, err := t.Intersect(ot)
			if err != nil {
				panic(err)
			}
			res.Name = name
			return res
		})
	case 4: // join with a fresh attribute relation on the first column
		if p.db.NumVars() > 8 {
			return
		}
		joinCol := p.cur.Cols[0]
		attr := core.NewRelation("A", joinCol, "Extra")
		for v := 0; v < 4; v++ {
			ext := core.Certain
			if r.Intn(3) == 0 {
				ext = core.Maybe(p.db.NewVar())
			}
			attr.Insert(ext, core.IntVal(int64(v)), core.IntVal(int64(r.Intn(3))))
		}
		p.cur = core.Join(p.db, p.cur, attr, joinCol)
		name := p.cur.Name
		p.det = append(p.det, func(t *engine.Table, w []uint8) *engine.Table {
			at := toTable(attr, w)
			out := t.Join(at, joinCol)
			out.Name = name
			return out
		})
	}
}

// TestQueryCommutesWithInstantiation is the central semantics check:
// for every valid world, instantiating the LICM query result equals
// running the deterministic query on the instantiated input.
func TestQueryCommutesWithInstantiation(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		db := core.NewDB()
		input := randRelation(r, db, "R", 3, 3, 5)
		addRandConstraints(r, db)
		p := &pipeline{db: db, cur: input}
		steps := 1 + r.Intn(3)
		for s := 0; s < steps; s++ {
			p.apply(r)
		}
		if len(db.BaseVars()) > 9 {
			continue
		}
		worlds := db.EnumWorlds()
		for wi, w := range worlds {
			got := toTable(p.cur, w).SortedKeys()
			oracle := toTable(input, w)
			for _, step := range p.det {
				oracle = step(oracle, w)
			}
			want := oracle.SortedKeys()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d world %d (%v):\nLICM result rows %v\noracle rows %v\nplan result: %v",
					trial, wi, w, got, want, p.cur)
			}
		}
	}
}

// TestOperatorDeterminism checks that for every base assignment there
// is exactly one valid extension to the lineage variables.
func TestOperatorDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		db := core.NewDB()
		input := randRelation(r, db, "R", 3, 3, 5)
		addRandConstraints(r, db)
		nBase := db.NumVars()
		p := &pipeline{db: db, cur: input}
		for s := 0; s < 2; s++ {
			p.apply(r)
		}
		nDerived := 0
		for v := nBase; v < db.NumVars(); v++ {
			if db.Def(expr.Var(v)).Kind != core.DefBase {
				nDerived++
			}
		}
		if len(db.BaseVars()) > 8 || nDerived > 10 {
			continue
		}
		baseVars := db.BaseVars()
		for mask := 0; mask < 1<<len(baseVars); mask++ {
			base := map[expr.Var]uint8{}
			for i, v := range baseVars {
				if mask&(1<<i) != 0 {
					base[v] = 1
				}
			}
			w := db.World(base)
			if !db.Valid(w) {
				// The base assignment violates a base constraint; no
				// world corresponds to it.
				continue
			}
			if !db.DeterministicExtension(base) {
				t.Fatalf("trial %d: non-deterministic extension for base %v", trial, base)
			}
		}
	}
}

// TestBoundsMatchWorldEnumeration checks that the BIP bounds equal the
// exhaustive min/max of the aggregate over all possible worlds.
func TestBoundsMatchWorldEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		db := core.NewDB()
		input := randRelation(r, db, "R", 3, 3, 6)
		addRandConstraints(r, db)
		p := &pipeline{db: db, cur: input}
		for s := 0; s < 1+r.Intn(3); s++ {
			p.apply(r)
		}
		if len(db.BaseVars()) > 9 {
			continue
		}
		worlds := db.EnumWorlds()
		objective := core.CountStar(p.cur)
		res, err := core.Bounds(db, objective, solver.DefaultOptions())
		if len(worlds) == 0 {
			if err == nil {
				t.Fatalf("trial %d: no worlds but Bounds succeeded", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checked++
		wantMin, wantMax := int64(1<<62), int64(-1<<62)
		for _, w := range worlds {
			c := int64(len(core.Instantiate(p.cur, w)))
			if c < wantMin {
				wantMin = c
			}
			if c > wantMax {
				wantMax = c
			}
		}
		if res.Min != wantMin || res.Max != wantMax {
			t.Fatalf("trial %d: bounds [%d,%d], enumeration [%d,%d]\nplan: %v",
				trial, res.Min, res.Max, wantMin, wantMax, p.cur)
		}
		// Witness worlds must be valid and achieve the bounds.
		for side, w := range map[string][]uint8{"min": res.MinWorld, "max": res.MaxWorld} {
			if w == nil {
				t.Fatalf("trial %d: missing %s witness", trial, side)
			}
			if !db.Valid(w) {
				t.Fatalf("trial %d: %s witness invalid", trial, side)
			}
			c := int64(len(core.Instantiate(p.cur, w)))
			if (side == "min" && c != res.Min) || (side == "max" && c != res.Max) {
				t.Fatalf("trial %d: %s witness achieves %d", trial, side, c)
			}
		}
	}
	if checked < 30 {
		t.Fatalf("only %d feasible trials; generator too restrictive", checked)
	}
}

// TestFromWorldsCompleteness: random world sets round-trip exactly
// (Theorem 1).
func TestFromWorldsCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(6)
		universe := make([][]core.Value, n)
		for i := range universe {
			universe[i] = []core.Value{core.IntVal(int64(i))}
		}
		maxWorlds := 6
		if 1<<n < maxWorlds {
			maxWorlds = 1 << n
		}
		nWorlds := 1 + r.Intn(maxWorlds)
		wantMasks := map[int]bool{}
		var worlds [][]int
		for len(worlds) < nWorlds {
			mask := r.Intn(1 << n)
			if wantMasks[mask] {
				continue
			}
			wantMasks[mask] = true
			var w []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w = append(w, i)
				}
			}
			worlds = append(worlds, w)
		}
		db, _, err := core.FromWorlds("W", []string{"X"}, universe, worlds)
		if err != nil {
			t.Fatal(err)
		}
		got := db.EnumWorlds()
		gotMasks := map[int]bool{}
		for _, w := range got {
			mask := 0
			for i := 0; i < n; i++ {
				if w[i] == 1 {
					mask |= 1 << i
				}
			}
			gotMasks[mask] = true
		}
		if !reflect.DeepEqual(gotMasks, wantMasks) {
			t.Fatalf("trial %d: got %v want %v", trial, gotMasks, wantMasks)
		}
	}
}

// TestPruningPreservesBounds: bounds identical with pruning on and off
// on random query plans (DESIGN.md invariant).
func TestPruningPreservesBounds(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	on := solver.DefaultOptions()
	off := solver.DefaultOptions()
	off.Prune = false
	for trial := 0; trial < 60; trial++ {
		db := core.NewDB()
		input := randRelation(r, db, "R", 3, 3, 6)
		addRandConstraints(r, db)
		p := &pipeline{db: db, cur: input}
		for s := 0; s < 1+r.Intn(3); s++ {
			p.apply(r)
		}
		obj := core.CountStar(p.cur)
		a, errA := core.Bounds(db, obj, on)
		b, errB := core.Bounds(db, obj, off)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: err mismatch %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Min != b.Min || a.Max != b.Max {
			t.Fatalf("trial %d: pruned [%d,%d] vs unpruned [%d,%d]", trial, a.Min, a.Max, b.Min, b.Max)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Ensure fmt stays imported even if error formatting above changes.
var _ = fmt.Sprintf
