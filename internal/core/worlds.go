package core

import (
	"licm/internal/expr"
)

// Instantiate realizes a relation in the possible world described by
// the (complete) assignment: tuples whose Ext evaluates to 0 are
// eliminated and the Ext column is dropped (Section III).
func Instantiate(r *Relation, assign []uint8) [][]Value {
	var out [][]Value
	for _, t := range r.Tuples {
		if t.Ext.IsCertain() || assign[t.Ext.Var()] == 1 {
			out = append(out, t.Vals)
		}
	}
	return out
}

// World returns the complete assignment obtained by extending the
// given base-variable assignment through every derived definition.
// base maps base variable ids to values; unlisted base variables
// default to 0.
func (db *DB) World(base map[expr.Var]uint8) []uint8 {
	assign := make([]uint8, db.NumVars())
	for v, val := range base {
		assign[v] = val
	}
	db.Extend(assign)
	return assign
}

// EnumWorlds enumerates every valid possible world of the database by
// exhausting assignments of the base variables, extending each through
// the derived definitions, and keeping those that satisfy the
// constraint store. It is exponential in the number of base variables
// and exists as a test oracle and for tiny databases; it panics beyond
// 24 base variables.
func (db *DB) EnumWorlds() [][]uint8 {
	base := db.BaseVars()
	if len(base) > 24 {
		panic("core: EnumWorlds beyond 24 base variables")
	}
	var worlds [][]uint8
	n := db.NumVars()
	for mask := 0; mask < 1<<len(base); mask++ {
		assign := make([]uint8, n)
		for i, v := range base {
			if mask&(1<<i) != 0 {
				assign[v] = 1
			}
		}
		db.Extend(assign)
		if db.Valid(assign) {
			worlds = append(worlds, assign)
		}
	}
	return worlds
}

// DeterministicExtension reports whether, for the given base
// assignment, the extension computed by Extend is the unique
// assignment of derived variables satisfying the store. This is the
// paper's operator-determinism property ("given an assignment to the
// variables in the input tables ... there exists only one correct
// assignment of the variables in the output tuples"); it is exercised
// by property tests.
func (db *DB) DeterministicExtension(base map[expr.Var]uint8) bool {
	want := db.World(base)
	if !db.Valid(want) {
		// The base assignment itself violates the store; determinism
		// is vacuous here.
		return true
	}
	derived := make([]expr.Var, 0)
	for v := range db.defs {
		if db.defs[v].Kind != DefBase {
			derived = append(derived, expr.Var(v))
		}
	}
	if len(derived) > 20 {
		panic("core: DeterministicExtension beyond 20 derived variables")
	}
	count := 0
	assign := make([]uint8, db.NumVars())
	copy(assign, want)
	for mask := 0; mask < 1<<len(derived); mask++ {
		for i, v := range derived {
			if mask&(1<<i) != 0 {
				assign[v] = 1
			} else {
				assign[v] = 0
			}
		}
		if db.Valid(assign) {
			count++
			for _, v := range derived {
				if assign[v] != want[v] {
					return false
				}
			}
		}
	}
	return count == 1
}
