package core

import (
	"fmt"

	"licm/internal/expr"
)

// FromWorlds is the completeness construction of Theorem 1: given a
// finite set of database instances over a universe of tuples, it
// builds an LICM database that defines exactly that set of possible
// worlds.
//
// universe is the list of all tuples appearing in any world (their
// values); worlds lists, per instance, the indices into universe of
// the tuples present. The returned relation has one maybe-tuple per
// universe tuple; the DB's constraints are the CNF of the worlds' DNF,
// written as linear inequalities. As in the paper, the DNF→CNF
// conversion enumerates assignments and is exponential in the number
// of universe tuples; it is intended for small instances.
func FromWorlds(name string, cols []string, universe [][]Value, worlds [][]int) (*DB, *Relation, error) {
	n := len(universe)
	if n > 20 {
		return nil, nil, fmt.Errorf("core: FromWorlds universe too large (%d tuples)", n)
	}
	if len(worlds) == 0 {
		return nil, nil, fmt.Errorf("core: FromWorlds needs at least one world")
	}
	allowed := make(map[uint32]bool, len(worlds))
	for wi, w := range worlds {
		var mask uint32
		for _, ti := range w {
			if ti < 0 || ti >= n {
				return nil, nil, fmt.Errorf("core: world %d references tuple %d outside universe", wi, ti)
			}
			mask |= 1 << uint(ti)
		}
		allowed[mask] = true
	}
	db := NewDB()
	rel := NewRelation(name, cols...)
	vars := db.NewVars(n)
	for i, vals := range universe {
		if len(vals) != len(cols) {
			return nil, nil, fmt.Errorf("core: universe tuple %d has %d values for %d columns", i, len(vals), len(cols))
		}
		rel.Insert(Maybe(vars[i]), vals...)
	}
	// For every assignment outside the allowed set, add the blocking
	// clause  sum_{a_i=0} b_i + sum_{a_i=1} (1-b_i) >= 1, i.e. at
	// least one variable must differ from the forbidden assignment.
	for mask := uint32(0); mask < 1<<uint(n); mask++ {
		if allowed[mask] {
			continue
		}
		lin := expr.Lin{}
		var ones int64
		terms := make([]expr.Term, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				terms = append(terms, expr.Term{Var: vars[i], Coef: -1})
				ones++
			} else {
				terms = append(terms, expr.Term{Var: vars[i], Coef: 1})
			}
		}
		lin = expr.NewLin(0, terms...)
		db.Add(expr.NewConstraint(lin, expr.GE, 1-ones))
	}
	return db, rel, nil
}
