package core

import "testing"

// FuzzKeyUnambiguous checks that distinct value vectors never collide
// under Key (join/grouping correctness depends on it).
func FuzzKeyUnambiguous(f *testing.F) {
	f.Add("a", int64(1), "b", int64(2))
	f.Add("a|b", int64(0), "", int64(0))
	f.Add("i1", int64(1), "s1:a", int64(11))
	f.Fuzz(func(t *testing.T, s1 string, i1 int64, s2 string, i2 int64) {
		a := []Value{StrVal(s1), IntVal(i1)}
		b := []Value{StrVal(s2), IntVal(i2)}
		if (s1 != s2 || i1 != i2) && Key(a) == Key(b) {
			t.Fatalf("key collision: %v vs %v", a, b)
		}
		// Concatenation ambiguity: splitting content across fields
		// differently must change the key.
		c := []Value{StrVal(s1 + s2)}
		d := []Value{StrVal(s1), StrVal(s2)}
		if len(s1) > 0 && len(s2) > 0 && Key(c) == Key(d) {
			t.Fatalf("concatenation ambiguity: %q vs %q,%q", s1+s2, s1, s2)
		}
	})
}
