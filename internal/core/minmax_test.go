package core_test

import (
	"math/rand"
	"testing"

	"licm/internal/core"
	"licm/internal/expr"
	"licm/internal/solver"
)

func TestMinMaxSimple(t *testing.T) {
	db := core.NewDB()
	r := core.NewRelation("R", "X")
	a, b := db.NewVar(), db.NewVar()
	r.Insert(core.Maybe(a), core.IntVal(10))
	r.Insert(core.Maybe(b), core.IntVal(20))
	r.Insert(core.Certain, core.IntVal(30))
	opts := solver.DefaultOptions()

	min, err := core.MinBounds(db, r, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	// MIN ranges from 10 (a present) to 30 (both maybes absent).
	if min.Lo != 10 || min.Hi != 30 {
		t.Fatalf("MIN bounds = [%d,%d], want [10,30]", min.Lo, min.Hi)
	}
	if min.CanBeEmpty {
		t.Error("relation has a certain tuple; cannot be empty")
	}
	max, err := core.MaxBounds(db, r, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	// MAX is always 30: the certain tuple dominates.
	if max.Lo != 30 || max.Hi != 30 {
		t.Fatalf("MAX bounds = [%d,%d], want [30,30]", max.Lo, max.Hi)
	}
}

func TestMinMaxWithConstraints(t *testing.T) {
	// Mutual exclusion: exactly one of value-10 or value-20 exists.
	db := core.NewDB()
	r := core.NewRelation("R", "X")
	a, b := db.NewVar(), db.NewVar()
	db.AddMutex(a, b)
	r.Insert(core.Maybe(a), core.IntVal(10))
	r.Insert(core.Maybe(b), core.IntVal(20))
	opts := solver.DefaultOptions()

	min, err := core.MinBounds(db, r, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	if min.Lo != 10 || min.Hi != 20 {
		t.Fatalf("MIN bounds = [%d,%d], want [10,20]", min.Lo, min.Hi)
	}
	if min.CanBeEmpty {
		t.Error("mutex keeps exactly one tuple; cannot be empty")
	}
	max, err := core.MaxBounds(db, r, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	if max.Lo != 10 || max.Hi != 20 {
		t.Fatalf("MAX bounds = [%d,%d], want [10,20]", max.Lo, max.Hi)
	}
}

func TestMinMaxForcedPair(t *testing.T) {
	// Co-existence: both or neither; a certain backstop at 50.
	db := core.NewDB()
	r := core.NewRelation("R", "X")
	a, b := db.NewVar(), db.NewVar()
	db.AddCoexist(a, b)
	r.Insert(core.Maybe(a), core.IntVal(5))
	r.Insert(core.Maybe(b), core.IntVal(40))
	r.Insert(core.Certain, core.IntVal(50))
	opts := solver.DefaultOptions()

	min, err := core.MinBounds(db, r, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Worlds: {50} or {5,40,50}: MIN is 50 or 5 — never 40.
	if min.Lo != 5 || min.Hi != 50 {
		t.Fatalf("MIN bounds = [%d,%d], want [5,50]", min.Lo, min.Hi)
	}
	max, err := core.MaxBounds(db, r, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	if max.Lo != 50 || max.Hi != 50 {
		t.Fatalf("MAX bounds = [%d,%d], want [50,50]", max.Lo, max.Hi)
	}
}

func TestMinMaxEmptiness(t *testing.T) {
	db := core.NewDB()
	r := core.NewRelation("R", "X")
	a := db.NewVar()
	r.Insert(core.Maybe(a), core.IntVal(1))
	opts := solver.DefaultOptions()
	min, err := core.MinBounds(db, r, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !min.CanBeEmpty {
		t.Error("single unconstrained maybe-tuple: empty world exists")
	}
	// Now force it to exist.
	db2 := core.NewDB()
	r2 := core.NewRelation("R", "X")
	b := db2.NewVar()
	db2.AddCardinality([]expr.Var{b}, 1, -1)
	r2.Insert(core.Maybe(b), core.IntVal(1))
	min2, err := core.MinBounds(db2, r2, "X", opts)
	if err != nil {
		t.Fatal(err)
	}
	if min2.CanBeEmpty {
		t.Error("forced tuple: no empty world")
	}
}

func TestMinMaxErrors(t *testing.T) {
	db := core.NewDB()
	r := core.NewRelation("R", "X")
	opts := solver.DefaultOptions()
	if _, err := core.MinBounds(db, r, "Nope", opts); err == nil {
		t.Error("want unknown-column error")
	}
	if _, err := core.MinBounds(db, r, "X", opts); err == nil {
		t.Error("want empty-relation error")
	}
	r.Insert(core.Certain, core.IntVal(1))
	r2 := core.NewRelation("S", "X")
	r2.Insert(core.Certain, core.StrVal("a"))
	if _, err := core.MinBounds(db, r2, "X", opts); err == nil {
		t.Error("want non-numeric error")
	}
}

// TestMinMaxAgainstEnumeration cross-checks against exhaustive world
// enumeration on random small instances.
func TestMinMaxAgainstEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	opts := solver.DefaultOptions()
	for trial := 0; trial < 80; trial++ {
		db := core.NewDB()
		rel := core.NewRelation("R", "X")
		n := 2 + r.Intn(5)
		for i := 0; i < n; i++ {
			val := core.IntVal(int64(r.Intn(5)))
			if r.Intn(5) == 0 {
				rel.Insert(core.Certain, val)
			} else {
				rel.Insert(core.Maybe(db.NewVar()), val)
			}
		}
		// A random loose cardinality constraint.
		base := db.BaseVars()
		if len(base) > 1 && r.Intn(2) == 0 {
			db.AddCardinality(base, 1, len(base)-1+r.Intn(2))
		}
		worlds := db.EnumWorlds()
		wantMinLo, wantMinHi := int64(1<<62), int64(-1<<62)
		wantMaxLo, wantMaxHi := int64(1<<62), int64(-1<<62)
		canBeEmpty := false
		nonEmpty := 0
		for _, w := range worlds {
			rows := core.Instantiate(rel, w)
			if len(rows) == 0 {
				canBeEmpty = true
				continue
			}
			nonEmpty++
			mn, mx := int64(1<<62), int64(-1<<62)
			for _, row := range rows {
				v := row[0].Int()
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			if mn < wantMinLo {
				wantMinLo = mn
			}
			if mn > wantMinHi {
				wantMinHi = mn
			}
			if mx < wantMaxLo {
				wantMaxLo = mx
			}
			if mx > wantMaxHi {
				wantMaxHi = mx
			}
		}
		if len(worlds) == 0 || nonEmpty == 0 {
			continue
		}
		min, err := core.MinBounds(db, rel, "X", opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		max, err := core.MaxBounds(db, rel, "X", opts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if min.Lo != wantMinLo || min.Hi != wantMinHi {
			t.Fatalf("trial %d: MIN [%d,%d], enumeration [%d,%d]", trial, min.Lo, min.Hi, wantMinLo, wantMinHi)
		}
		if max.Lo != wantMaxLo || max.Hi != wantMaxHi {
			t.Fatalf("trial %d: MAX [%d,%d], enumeration [%d,%d]", trial, max.Lo, max.Hi, wantMaxLo, wantMaxHi)
		}
		if min.CanBeEmpty != canBeEmpty {
			t.Fatalf("trial %d: CanBeEmpty = %v, enumeration %v", trial, min.CanBeEmpty, canBeEmpty)
		}
	}
}
