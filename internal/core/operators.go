package core

import (
	"fmt"

	"licm/internal/expr"
	"licm/internal/obs"
)

// opSpan opens the "op.<name>" trace span for an operator recording
// into db, annotated with the input sizes. It also returns the
// variable and constraint watermarks that endOp uses to report how
// much lineage the operator created. Nil-safe throughout: without an
// attached tracer it returns a nil span and endOp is a no-op.
func opSpan(db *DB, name string, ins ...*Relation) (sp *obs.Span, vars0, cons0 int) {
	tr := db.Tracer()
	if tr == nil {
		return nil, 0, 0
	}
	attrs := make([]obs.Attr, 0, len(ins))
	for i, r := range ins {
		key := "in_tuples"
		if len(ins) > 1 {
			key = fmt.Sprintf("in%d_tuples", i+1)
		}
		attrs = append(attrs, obs.Int(key, len(r.Tuples)))
	}
	return tr.Start("op."+name, attrs...), db.NumVars(), db.NumConstraints()
}

// endOp closes an operator span with the output size and the lineage
// growth since opSpan.
func endOp(sp *obs.Span, db *DB, out *Relation, vars0, cons0 int) {
	if sp == nil {
		return
	}
	sp.End(
		obs.Int("out_tuples", len(out.Tuples)),
		obs.Int("new_vars", db.NumVars()-vars0),
		obs.Int("new_cons", db.NumConstraints()-cons0),
	)
}

// Select implements the selection operator σ: the output contains the
// tuples satisfying the predicate, with Ext and the constraint store
// unchanged (Section IV-B). Constraints that become irrelevant are
// left in place; reachability pruning removes them before solving.
// The predicate may only reference normal attributes, never Ext.
func Select(r *Relation, pred func(Row) bool) *Relation {
	out := NewRelation("σ("+r.Name+")", r.Cols...)
	for i := range r.Tuples {
		if pred(r.RowAt(i)) {
			out.Tuples = append(out.Tuples, r.Tuples[i])
		}
	}
	return out
}

// Project implements the projection operator π with set semantics
// (Algorithm 1): for each distinct value of the kept columns, the
// output tuple is certain if any matching input tuple is certain, and
// otherwise a maybe-tuple whose variable is the OR of the matching
// input variables (with the single-tuple optimization of Example 7:
// a unique maybe-tuple keeps its own variable).
func Project(db *DB, r *Relation, cols ...string) *Relation {
	sp, v0, c0 := opSpan(db, "project", r)
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = r.colIndex(c)
	}
	out := NewRelation("π("+r.Name+")", cols...)
	groups := make(map[string][]Ext)
	var order []string
	rows := make(map[string][]Value)
	buf := make([]Value, len(cols))
	for _, t := range r.Tuples {
		for i, j := range idx {
			buf[i] = t.Vals[j]
		}
		k := rowKey(buf)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			rows[k] = append([]Value(nil), buf...)
		}
		groups[k] = append(groups[k], t.Ext)
	}
	for _, k := range order {
		out.Tuples = append(out.Tuples, Tuple{Vals: rows[k], Ext: db.Or(groups[k]...)})
	}
	endOp(sp, db, out, v0, c0)
	return out
}

// dedupe merges exact-duplicate tuples (same values on all columns)
// via OR lineage, restoring set semantics. Operators that match
// tuples pairwise (Intersect, CountPredicate) rely on it.
func dedupe(db *DB, r *Relation) *Relation {
	return projectRenamed(db, r, r.Name, r.Cols)
}

// projectRenamed is Project with an explicit output name and the full
// column set preserved.
func projectRenamed(db *DB, r *Relation, name string, cols []string) *Relation {
	out := Project(db, r, cols...)
	out.Name = name
	return out
}

// Intersect implements the intersection operator ∩ (Algorithm 2).
// Schemas must be identical. A tuple is in the result iff it is in
// both inputs; when both sides are maybe-tuples a new lineage variable
// b with b = b_i AND b_j is created (Example 6).
func Intersect(db *DB, r1, r2 *Relation) (*Relation, error) {
	if len(r1.Cols) != len(r2.Cols) {
		return nil, fmt.Errorf("core: intersect schema mismatch: %v vs %v", r1.Cols, r2.Cols)
	}
	for i := range r1.Cols {
		if r1.Cols[i] != r2.Cols[i] {
			return nil, fmt.Errorf("core: intersect schema mismatch: %v vs %v", r1.Cols, r2.Cols)
		}
	}
	sp, v0, c0 := opSpan(db, "intersect", r1, r2)
	a := dedupe(db, r1)
	b := dedupe(db, r2)
	byKey := make(map[string]Ext, len(b.Tuples))
	for _, t := range b.Tuples {
		byKey[rowKey(t.Vals)] = t.Ext
	}
	out := NewRelation(r1.Name+"∩"+r2.Name, r1.Cols...)
	for _, t := range a.Tuples {
		e2, ok := byKey[rowKey(t.Vals)]
		if !ok {
			continue
		}
		out.Tuples = append(out.Tuples, Tuple{Vals: t.Vals, Ext: db.And(t.Ext, e2)})
	}
	endOp(sp, db, out, v0, c0)
	return out, nil
}

// Union implements set union ∪: a tuple is in the result iff it is in
// either input. The lineage is the dual of Intersect's: where both
// sides hold a maybe-tuple with the same values, the output variable
// is the OR of the two. (The paper develops the conjunctive fragment;
// union preserves LICM's closure the same way projection does, via OR
// lineage, and is provided for completeness.)
func Union(db *DB, r1, r2 *Relation) (*Relation, error) {
	if len(r1.Cols) != len(r2.Cols) {
		return nil, fmt.Errorf("core: union schema mismatch: %v vs %v", r1.Cols, r2.Cols)
	}
	for i := range r1.Cols {
		if r1.Cols[i] != r2.Cols[i] {
			return nil, fmt.Errorf("core: union schema mismatch: %v vs %v", r1.Cols, r2.Cols)
		}
	}
	sp, v0, c0 := opSpan(db, "union", r1, r2)
	a := dedupe(db, r1)
	b := dedupe(db, r2)
	out := NewRelation(r1.Name+"∪"+r2.Name, r1.Cols...)
	second := make(map[string]Ext, len(b.Tuples))
	order := make([]string, 0, len(b.Tuples))
	for _, t := range b.Tuples {
		k := rowKey(t.Vals)
		second[k] = t.Ext
		order = append(order, k)
	}
	matched := make(map[string]bool)
	for _, t := range a.Tuples {
		k := rowKey(t.Vals)
		if e2, ok := second[k]; ok {
			matched[k] = true
			out.Tuples = append(out.Tuples, Tuple{Vals: t.Vals, Ext: db.Or(t.Ext, e2)})
			continue
		}
		out.Tuples = append(out.Tuples, t)
	}
	for i, t := range b.Tuples {
		if !matched[order[i]] {
			out.Tuples = append(out.Tuples, t)
		}
	}
	endOp(sp, db, out, v0, c0)
	return out, nil
}

// Product implements the Cartesian product × (Algorithm 3): the
// combined tuple exists iff both inputs exist, so its Ext is the AND
// of the input Ext values (sharing a variable when one side is
// certain, creating a lineage variable when both are maybe).
func Product(db *DB, r1, r2 *Relation) *Relation {
	sp, v0, c0 := opSpan(db, "product", r1, r2)
	cols := make([]string, 0, len(r1.Cols)+len(r2.Cols))
	for _, c := range r1.Cols {
		cols = append(cols, r1.Name+"."+c)
	}
	for _, c := range r2.Cols {
		cols = append(cols, r2.Name+"."+c)
	}
	out := NewRelation(r1.Name+"×"+r2.Name, cols...)
	for _, t1 := range r1.Tuples {
		for _, t2 := range r2.Tuples {
			vals := make([]Value, 0, len(t1.Vals)+len(t2.Vals))
			vals = append(vals, t1.Vals...)
			vals = append(vals, t2.Vals...)
			out.Tuples = append(out.Tuples, Tuple{Vals: vals, Ext: db.And(t1.Ext, t2.Ext)})
		}
	}
	endOp(sp, db, out, v0, c0)
	return out
}

// Join implements the natural equijoin on the named columns. The
// paper builds join from product, selection and projection; this is
// that composition fused into one pass (a hash join) so that no
// lineage variables are created for pairs that fail the join
// predicate. The output schema is r1's columns followed by r2's
// non-join columns.
func Join(db *DB, r1, r2 *Relation, on ...string) *Relation {
	if len(on) == 0 {
		panic("core: Join requires at least one join column")
	}
	sp, v0, c0 := opSpan(db, "join", r1, r2)
	idx1 := make([]int, len(on))
	idx2 := make([]int, len(on))
	for i, c := range on {
		idx1[i] = r1.colIndex(c)
		idx2[i] = r2.colIndex(c)
	}
	keep2 := make([]int, 0, len(r2.Cols))
	var cols []string
	cols = append(cols, r1.Cols...)
	for j, c := range r2.Cols {
		joinCol := false
		for _, oc := range on {
			if c == oc {
				joinCol = true
				break
			}
		}
		if !joinCol {
			keep2 = append(keep2, j)
			cols = append(cols, c)
		}
	}
	out := NewRelation(r1.Name+"⋈"+r2.Name, cols...)
	buckets := make(map[string][]*Tuple)
	buf := make([]Value, len(on))
	for i := range r2.Tuples {
		t := &r2.Tuples[i]
		for k, j := range idx2 {
			buf[k] = t.Vals[j]
		}
		key := rowKey(buf)
		buckets[key] = append(buckets[key], t)
	}
	for i := range r1.Tuples {
		t1 := &r1.Tuples[i]
		for k, j := range idx1 {
			buf[k] = t1.Vals[j]
		}
		for _, t2 := range buckets[rowKey(buf)] {
			vals := make([]Value, 0, len(cols))
			vals = append(vals, t1.Vals...)
			for _, j := range keep2 {
				vals = append(vals, t2.Vals[j])
			}
			out.Tuples = append(out.Tuples, Tuple{Vals: vals, Ext: db.And(t1.Ext, t2.Ext)})
		}
	}
	endOp(sp, db, out, v0, c0)
	return out
}

// CmpOp is the comparison of a count predicate.
type CmpOp uint8

// Count predicate comparisons (Algorithm 4 handles <= and >=; = is
// their conjunction and > / < reduce to >= d+1 / <= d-1).
const (
	CountLE CmpOp = iota
	CountGE
)

// CountPredicate implements the intermediate COUNT operator with an
// attached selection, COUNT θ d, grouped by the given columns
// (Algorithm 4 and Example 8). For each group with m maybe-tuples and
// n certain tuples it emits:
//
//   - a certain tuple when the predicate holds in every world,
//   - nothing when it holds in no world,
//   - otherwise a maybe-tuple with a fresh variable b constrained so
//     that b = 1 iff the group's count satisfies the predicate.
//
// Input duplicates are merged first (set semantics).
//
// Deviation from the literal Algorithm 4: a group appears in the
// output of a GROUP BY only in worlds where it is non-empty, so the
// existence condition here is (count >= 1 AND count θ d) rather than
// just (count θ d). The paper's m+n <= d case would emit a certain
// tuple for a group that can be empty, breaking its own claim that
// "any instantiation of the result table provides the answer to the
// query for the corresponding instantiation of the base table(s)".
// For COUNT >= d with d >= 1 — the only form the paper's evaluation
// uses — the two definitions coincide.
func CountPredicate(db *DB, r *Relation, groupCols []string, op CmpOp, d int) *Relation {
	sp, v0, c0 := opSpan(db, "count_predicate", r)
	rr := dedupe(db, r)
	idx := make([]int, len(groupCols))
	for i, c := range groupCols {
		idx[i] = rr.colIndex(c)
	}
	type group struct {
		vals    []Value
		certain int
		maybes  []Ext
	}
	groups := make(map[string]*group)
	var order []string
	buf := make([]Value, len(groupCols))
	for _, t := range rr.Tuples {
		for i, j := range idx {
			buf[i] = t.Vals[j]
		}
		k := rowKey(buf)
		g, ok := groups[k]
		if !ok {
			g = &group{vals: append([]Value(nil), buf...)}
			groups[k] = g
			order = append(order, k)
		}
		if t.Ext.IsCertain() {
			g.certain++
		} else {
			g.maybes = append(g.maybes, t.Ext)
		}
	}
	out := NewRelation(fmt.Sprintf("count%s%d(%s)", cmpSym(op), d, r.Name), groupCols...)
	for _, k := range order {
		g := groups[k]
		m, n := len(g.maybes), g.certain
		args := make([]Ext, len(g.maybes))
		copy(args, g.maybes)
		switch op {
		case CountLE:
			switch {
			case d < 1 || n > d:
				// No world has 1 <= count <= d for this group.
			case n >= 1 && m+n <= d:
				out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, Ext: Certain})
			case n >= 1:
				// count >= n >= 1 always; only the upper side matters.
				out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, Ext: db.countVar(DefCountLE, args, n, d)})
			case m <= d:
				// n == 0 and the count can never exceed d: the group
				// exists iff it is non-empty.
				out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, Ext: db.Or(args...)})
			default:
				// n == 0, m > d: exists iff 1 <= count <= d.
				nonEmpty := db.Or(args...)
				within := db.countVar(DefCountLE, args, 0, d)
				out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, Ext: db.And(nonEmpty, within)})
			}
		case CountGE:
			dd := d
			if dd < 1 {
				dd = 1 // an output group is non-empty in any case
			}
			switch {
			case n >= dd:
				out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, Ext: Certain})
			case m+n >= dd:
				out.Tuples = append(out.Tuples, Tuple{Vals: g.vals, Ext: db.countVar(DefCountGE, args, n, dd)})
			default: // m+n < d: predicate fails in every world
			}
		}
	}
	endOp(sp, db, out, v0, c0)
	return out
}

func cmpSym(op CmpOp) string {
	if op == CountLE {
		return "<="
	}
	return ">="
}

// countVar creates the count-predicate lineage variable for a group.
// Degenerate cases that Algorithm 4's guards leave behind (d-n == 0
// for >=, or d-n == m for <=) still produce correct constraints, but
// when the predicate reduces to OR/AND of the group the cheaper
// encodings are used.
func (db *DB) countVar(kind DefKind, maybes []Ext, n, d int) Ext {
	m := len(maybes)
	if kind == DefCountGE && d-n == 1 {
		// "at least one more": plain OR.
		return db.Or(maybes...)
	}
	if kind == DefCountGE && d-n == m {
		// "all of them": plain AND.
		return db.And(maybes...)
	}
	vars := make([]expr.Var, 0, m)
	for _, e := range maybes {
		vars = append(vars, e.Var())
	}
	return Maybe(db.newDerived(Def{Kind: kind, Args: vars, N: n, D: d}))
}
