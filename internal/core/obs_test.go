package core_test

import (
	"testing"

	"licm/internal/core"
	"licm/internal/obs"
	"licm/internal/solver"
)

// spanNames collects the names of all closed spans in order.
func spanNames(sink *obs.CollectSink) []string {
	var names []string
	for _, e := range sink.Events() {
		if e.Kind == obs.KindSpanEnd {
			names = append(names, e.Name)
		}
	}
	return names
}

func endOf(t *testing.T, sink *obs.CollectSink, name string) obs.Event {
	t.Helper()
	for _, e := range sink.Events() {
		if e.Kind == obs.KindSpanEnd && e.Name == name {
			return e
		}
	}
	t.Fatalf("no span_end for %s", name)
	return obs.Event{}
}

// TestOperatorSpans: a traced DB emits one op.<name> span per operator
// call, with input/output tuple counts and lineage growth.
func TestOperatorSpans(t *testing.T) {
	sink := &obs.CollectSink{}
	db := core.NewDB()
	db.SetTracer(obs.New(sink))
	bs := db.NewVars(4)
	db.AddCardinality(bs, 1, -1)

	r1 := core.NewRelation("R1", "TID", "Item")
	r1.Insert(core.Maybe(bs[0]), core.StrVal("T1"), core.StrVal("beer"))
	r1.Insert(core.Maybe(bs[1]), core.StrVal("T1"), core.StrVal("wine"))
	r1.Insert(core.Certain, core.StrVal("T2"), core.StrVal("beer"))
	r2 := core.NewRelation("R2", "Item", "Price")
	r2.Insert(core.Maybe(bs[2]), core.StrVal("beer"), core.IntVal(3))
	r2.Insert(core.Maybe(bs[3]), core.StrVal("wine"), core.IntVal(7))

	j := core.Join(db, r1, r2, "Item")
	p := core.Project(db, j, "TID")
	_ = core.CountPredicate(db, j, []string{"TID"}, core.CountGE, 1)
	_ = core.Product(db, r1, r2)
	if _, err := core.Intersect(db, p, p); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Union(db, p, p); err != nil {
		t.Fatal(err)
	}

	names := map[string]bool{}
	for _, n := range spanNames(sink) {
		names[n] = true
	}
	for _, want := range []string{"op.join", "op.project", "op.count_predicate", "op.product", "op.intersect", "op.union"} {
		if !names[want] {
			t.Errorf("missing span %s; got %v", want, names)
		}
	}

	je := endOf(t, sink, "op.join")
	js, _ := findStart(sink, je.Span)
	if got := js.Attrs["in1_tuples"]; got != 3 {
		t.Errorf("join in1_tuples = %v, want 3", got)
	}
	if got := js.Attrs["in2_tuples"]; got != 2 {
		t.Errorf("join in2_tuples = %v, want 2", got)
	}
	if got := je.Attrs["out_tuples"]; got != len(j.Tuples) {
		t.Errorf("join out_tuples = %v, want %d", got, len(j.Tuples))
	}
	// The maybe⋈maybe pairs forced AND lineage: new vars and cons.
	if nv, ok := je.Attrs["new_vars"].(int); !ok || nv <= 0 {
		t.Errorf("join new_vars = %v, want > 0", je.Attrs["new_vars"])
	}
	if nc, ok := je.Attrs["new_cons"].(int); !ok || nc <= 0 {
		t.Errorf("join new_cons = %v, want > 0", je.Attrs["new_cons"])
	}
}

func findStart(sink *obs.CollectSink, span int64) (obs.Event, bool) {
	for _, e := range sink.Events() {
		if e.Kind == obs.KindSpanStart && e.Span == span {
			return e, true
		}
	}
	return obs.Event{}, false
}

// TestUntracedDBEmitsNothing: without SetTracer the operators stay
// silent and behave identically.
func TestUntracedDBEmitsNothing(t *testing.T) {
	db := core.NewDB()
	bs := db.NewVars(2)
	r := core.NewRelation("R", "A")
	r.Insert(core.Maybe(bs[0]), core.StrVal("x"))
	r.Insert(core.Maybe(bs[1]), core.StrVal("x"))
	out := core.Project(db, r, "A")
	if out.Len() != 1 {
		t.Fatalf("project produced %d tuples, want 1", out.Len())
	}
	if db.Tracer() != nil {
		t.Error("fresh DB has a tracer")
	}
}

// TestBoundsInheritsDBTracer: core.Bounds adopts the DB tracer when
// opts.Trace is unset, so the trace shows aggregate.bounds wrapping
// the two solver.solve spans.
func TestBoundsInheritsDBTracer(t *testing.T) {
	sink := &obs.CollectSink{}
	db := core.NewDB()
	db.SetTracer(obs.New(sink))
	bs := db.NewVars(5)
	db.AddCardinality(bs, 1, 3)
	r := core.NewRelation("R", "Item")
	for i, b := range bs {
		r.Insert(core.Maybe(b), core.IntVal(int64(i)))
	}
	res, err := core.CountBounds(db, r, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Min != 1 || res.Max != 3 {
		t.Fatalf("bounds = [%d,%d], want [1,3]", res.Min, res.Max)
	}
	solves := 0
	sawBounds := false
	for _, n := range spanNames(sink) {
		switch n {
		case "solver.solve":
			solves++
		case "aggregate.bounds":
			sawBounds = true
		}
	}
	if !sawBounds {
		t.Error("missing aggregate.bounds span")
	}
	if solves != 2 {
		t.Errorf("saw %d solver.solve spans, want 2 (max + min)", solves)
	}
	be := endOf(t, sink, "aggregate.bounds")
	if got := be.Attrs["min"]; got != int64(1) {
		t.Errorf("bounds span min attr = %v (%T), want 1", got, got)
	}
	if got := be.Attrs["max"]; got != int64(3) {
		t.Errorf("bounds span max attr = %v (%T), want 3", got, got)
	}
}
