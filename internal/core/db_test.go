package core

import (
	"testing"

	"licm/internal/expr"
)

func TestExtBasics(t *testing.T) {
	if !Certain.IsCertain() {
		t.Error("Certain should be certain")
	}
	if Certain.String() != "1" {
		t.Errorf("Certain.String() = %q", Certain.String())
	}
	e := Maybe(3)
	if e.IsCertain() {
		t.Error("Maybe(3) should not be certain")
	}
	if e.Var() != 3 {
		t.Errorf("Var = %d", e.Var())
	}
	if e.String() != "b3" {
		t.Errorf("String = %q", e.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("Var() on certain Ext should panic")
		}
	}()
	Certain.Var()
}

func TestNewVarSequence(t *testing.T) {
	db := NewDB()
	v0 := db.NewVar()
	v1 := db.NewVar()
	if v0 != 0 || v1 != 1 || db.NumVars() != 2 {
		t.Fatalf("vars = %d,%d numVars = %d", v0, v1, db.NumVars())
	}
	vs := db.NewVars(3)
	if len(vs) != 3 || vs[2] != 4 || db.NumVars() != 5 {
		t.Fatalf("NewVars = %v", vs)
	}
	if db.Def(v0).Kind != DefBase {
		t.Error("new vars should be base")
	}
}

func TestAndOrShortcuts(t *testing.T) {
	db := NewDB()
	a, b := db.NewVar(), db.NewVar()
	if e := db.And(Certain, Certain); !e.IsCertain() {
		t.Error("And of certains should be certain")
	}
	if e := db.And(Certain, Maybe(a)); e.IsCertain() || e.Var() != a {
		t.Error("And with one maybe should reuse its variable")
	}
	if e := db.Or(Maybe(a), Certain); !e.IsCertain() {
		t.Error("Or with a certain should be certain")
	}
	if e := db.Or(Maybe(b)); e.Var() != b {
		t.Error("Or of one maybe should reuse its variable")
	}
	before := db.NumVars()
	e := db.And(Maybe(a), Maybe(b))
	if e.IsCertain() || int(e.Var()) != before {
		t.Errorf("And should allocate a new var, got %v", e)
	}
	if db.Def(e.Var()).Kind != DefAnd {
		t.Error("definition kind should be DefAnd")
	}
}

func TestAndConstraintsSemantics(t *testing.T) {
	db := NewDB()
	a, b := db.NewVar(), db.NewVar()
	c := db.And(Maybe(a), Maybe(b)).Var()
	for mask := 0; mask < 4; mask++ {
		assign := make([]uint8, db.NumVars())
		assign[a] = uint8(mask & 1)
		assign[b] = uint8(mask >> 1)
		db.Extend(assign)
		want := assign[a] & assign[b]
		if assign[c] != want {
			t.Errorf("mask %d: extend gave %d, want %d", mask, assign[c], want)
		}
		if !db.Valid(assign) {
			t.Errorf("mask %d: correct extension should satisfy constraints", mask)
		}
		// The wrong value must violate some constraint (determinism).
		assign[c] = 1 - want
		if db.Valid(assign) {
			t.Errorf("mask %d: flipped lineage var should be invalid", mask)
		}
	}
}

func TestOrConstraintsSemantics(t *testing.T) {
	db := NewDB()
	a, b := db.NewVar(), db.NewVar()
	c := db.Or(Maybe(a), Maybe(b)).Var()
	for mask := 0; mask < 4; mask++ {
		assign := make([]uint8, db.NumVars())
		assign[a] = uint8(mask & 1)
		assign[b] = uint8(mask >> 1)
		db.Extend(assign)
		want := assign[a] | assign[b]
		if assign[c] != want {
			t.Errorf("mask %d: extend gave %d, want %d", mask, assign[c], want)
		}
		if !db.Valid(assign) {
			t.Errorf("mask %d: correct extension should be valid", mask)
		}
		assign[c] = 1 - want
		if db.Valid(assign) {
			t.Errorf("mask %d: flipped lineage var should be invalid", mask)
		}
	}
}

func TestAddCardinality(t *testing.T) {
	db := NewDB()
	vs := db.NewVars(5)
	db.AddCardinality(vs, 1, 2)
	if db.NumConstraints() != 2 {
		t.Fatalf("constraints = %d, want 2", db.NumConstraints())
	}
	worlds := db.EnumWorlds()
	// C(5,1) + C(5,2) = 5 + 10 = 15 worlds.
	if len(worlds) != 15 {
		t.Fatalf("worlds = %d, want 15", len(worlds))
	}
}

func TestAddCardinalityExact(t *testing.T) {
	db := NewDB()
	vs := db.NewVars(4)
	db.AddCardinality(vs, 2, 2)
	if db.NumConstraints() != 1 {
		t.Fatalf("exact cardinality should emit one EQ constraint, got %d", db.NumConstraints())
	}
	if len(db.EnumWorlds()) != 6 { // C(4,2)
		t.Fatal("want 6 worlds")
	}
}

func TestAddCardinalityOpenSides(t *testing.T) {
	db := NewDB()
	vs := db.NewVars(3)
	db.AddCardinality(vs, -1, 2) // only an upper bound
	if db.NumConstraints() != 1 {
		t.Fatalf("constraints = %d, want 1", db.NumConstraints())
	}
	db2 := NewDB()
	vs2 := db2.NewVars(3)
	db2.AddCardinality(vs2, 1, -1) // only a lower bound
	if db2.NumConstraints() != 1 {
		t.Fatalf("constraints = %d, want 1", db2.NumConstraints())
	}
}

func TestCorrelationHelpers(t *testing.T) {
	db := NewDB()
	a, b := db.NewVar(), db.NewVar()
	c, d := db.NewVar(), db.NewVar()
	e, f := db.NewVar(), db.NewVar()
	db.AddMutex(a, b)
	db.AddCoexist(c, d)
	db.AddImplies(e, f)
	worlds := db.EnumWorlds()
	for _, w := range worlds {
		if w[a]+w[b] != 1 {
			t.Errorf("mutex violated: %v", w)
		}
		if w[c] != w[d] {
			t.Errorf("coexist violated: %v", w)
		}
		if w[e] == 1 && w[f] == 0 {
			t.Errorf("implication violated: %v", w)
		}
	}
	// 2 (mutex) * 2 (coexist) * 3 (implication) = 12 worlds.
	if len(worlds) != 12 {
		t.Fatalf("worlds = %d, want 12", len(worlds))
	}
}

func TestExactlyOnePermutation(t *testing.T) {
	// Example 3: a 2x2 bijection has exactly 2 worlds.
	db := NewDB()
	m := [][]expr.Var{
		{db.NewVar(), db.NewVar()},
		{db.NewVar(), db.NewVar()},
	}
	db.AddExactlyOne([]expr.Var{m[0][0], m[0][1]})
	db.AddExactlyOne([]expr.Var{m[1][0], m[1][1]})
	db.AddExactlyOne([]expr.Var{m[0][0], m[1][0]})
	db.AddExactlyOne([]expr.Var{m[0][1], m[1][1]})
	if got := len(db.EnumWorlds()); got != 2 {
		t.Fatalf("worlds = %d, want 2", got)
	}
}

func TestDerivedReferencingLaterVarPanics(t *testing.T) {
	db := NewDB()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	db.newDerived(Def{Kind: DefAnd, Args: []expr.Var{5}})
}

func TestCountLEZeroEmitsNothing(t *testing.T) {
	// COUNT <= 0: a group visible in the output is non-empty, so no
	// world can satisfy the predicate (strict GROUP BY semantics).
	db := NewDB()
	r := NewRelation("R", "G", "X")
	r.Insert(Maybe(db.NewVar()), IntVal(1), IntVal(10))
	out := CountPredicate(db, r, []string{"G"}, CountLE, 0)
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %v", out)
	}
}

func TestCountLEBetweenOneAndD(t *testing.T) {
	// Two maybe-tuples, COUNT <= 1: the group exists iff exactly one
	// tuple is present (count in [1,1]).
	db := NewDB()
	r := NewRelation("R", "G", "X")
	a, b := db.NewVar(), db.NewVar()
	r.Insert(Maybe(a), IntVal(1), IntVal(10))
	r.Insert(Maybe(b), IntVal(1), IntVal(11))
	out := CountPredicate(db, r, []string{"G"}, CountLE, 1)
	if out.Len() != 1 || out.Tuples[0].Ext.IsCertain() {
		t.Fatalf("unexpected output: %v", out)
	}
	g := out.Tuples[0].Ext.Var()
	for mask := 0; mask < 4; mask++ {
		assign := make([]uint8, db.NumVars())
		assign[a] = uint8(mask & 1)
		assign[b] = uint8(mask >> 1)
		db.Extend(assign)
		want := uint8(0)
		if assign[a]+assign[b] == 1 {
			want = 1
		}
		if assign[g] != want {
			t.Errorf("mask %d: got %d, want %d", mask, assign[g], want)
		}
		if !db.Valid(assign) {
			t.Errorf("mask %d: extension invalid", mask)
		}
	}
}

func TestCountGENonPositiveD(t *testing.T) {
	// COUNT >= 0 clamps to >= 1: the group exists iff non-empty.
	db := NewDB()
	r := NewRelation("R", "G", "X")
	a := db.NewVar()
	r.Insert(Maybe(a), IntVal(1), IntVal(10))
	out := CountPredicate(db, r, []string{"G"}, CountGE, 0)
	if out.Len() != 1 {
		t.Fatalf("unexpected output: %v", out)
	}
	if out.Tuples[0].Ext.IsCertain() || out.Tuples[0].Ext.Var() != a {
		t.Fatalf("group existence should reuse the single maybe var: %v", out.Tuples[0].Ext)
	}
}

func TestBaseVars(t *testing.T) {
	db := NewDB()
	a, b := db.NewVar(), db.NewVar()
	db.And(Maybe(a), Maybe(b))
	base := db.BaseVars()
	if len(base) != 2 || base[0] != a || base[1] != b {
		t.Fatalf("BaseVars = %v", base)
	}
}

func TestValueBasics(t *testing.T) {
	i := IntVal(7)
	s := StrVal("x")
	if i.Kind() != KindInt || s.Kind() != KindString {
		t.Fatal("kinds wrong")
	}
	if i.Int() != 7 || s.Str() != "x" {
		t.Fatal("contents wrong")
	}
	if !i.Less(s) || s.Less(i) {
		t.Error("ints should order before strings")
	}
	if !IntVal(1).Less(IntVal(2)) || IntVal(2).Less(IntVal(1)) {
		t.Error("int ordering wrong")
	}
	if !StrVal("a").Less(StrVal("b")) {
		t.Error("string ordering wrong")
	}
	if i.String() != "7" || s.String() != "x" {
		t.Error("String() wrong")
	}
	if Key([]Value{i, s}) == Key([]Value{s, i}) {
		t.Error("keys should depend on order")
	}
	if Key([]Value{StrVal("a|b")}) == Key([]Value{StrVal("a"), StrVal("b")}) {
		t.Error("keys must be unambiguous")
	}
}

func TestValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Int() on string should panic")
		}
	}()
	StrVal("x").Int()
}

func TestRelationBasics(t *testing.T) {
	db := NewDB()
	r := NewRelation("R", "TID", "Item")
	r.Insert(Certain, IntVal(1), StrVal("beer"))
	r.Insert(Maybe(db.NewVar()), IntVal(1), StrVal("wine"))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	row := r.RowAt(0)
	if row.Int("TID") != 1 || row.Str("Item") != "beer" || !row.Ext().IsCertain() {
		t.Error("RowAt accessors wrong")
	}
	if !r.HasCol("TID") || r.HasCol("Nope") {
		t.Error("HasCol wrong")
	}
	out := r.String()
	if out == "" {
		t.Error("String should render")
	}
}

func TestRelationInsertArityPanics(t *testing.T) {
	r := NewRelation("R", "A", "B")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.Insert(Certain, IntVal(1))
}

func TestSortTuples(t *testing.T) {
	r := NewRelation("R", "A")
	r.Insert(Certain, IntVal(3))
	r.Insert(Certain, IntVal(1))
	r.Insert(Certain, IntVal(2))
	r.SortTuples()
	if r.Tuples[0].Vals[0].Int() != 1 || r.Tuples[2].Vals[0].Int() != 3 {
		t.Errorf("sorted order wrong: %v", r)
	}
}

func TestEnumWorldsPanicsOnLargeBase(t *testing.T) {
	db := NewDB()
	db.NewVars(25)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for > 24 base vars")
		}
	}()
	db.EnumWorlds()
}

func TestDeterministicExtensionPanicsOnManyDerived(t *testing.T) {
	db := NewDB()
	cur := Maybe(db.NewVar())
	for i := 0; i < 21; i++ {
		cur = db.And(cur, Maybe(db.NewVar()))
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for > 20 derived vars")
		}
	}()
	db.DeterministicExtension(nil)
}

func TestWorldFromMap(t *testing.T) {
	db := NewDB()
	a, b := db.NewVar(), db.NewVar()
	and := db.And(Maybe(a), Maybe(b))
	w := db.World(map[expr.Var]uint8{a: 1, b: 1})
	if w[and.Var()] != 1 {
		t.Error("World should extend derived vars")
	}
	w = db.World(map[expr.Var]uint8{a: 1})
	if w[and.Var()] != 0 {
		t.Error("unlisted base vars default to 0")
	}
}

func TestDeterministicExtensionInvalidBase(t *testing.T) {
	db := NewDB()
	v := db.NewVar()
	db.AddCardinality([]expr.Var{v}, 1, 1)
	// base v=0 violates the store; determinism is vacuous.
	if !db.DeterministicExtension(map[expr.Var]uint8{v: 0}) {
		t.Error("invalid base should be vacuously deterministic")
	}
}
