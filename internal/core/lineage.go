package core

import (
	"fmt"
	"sort"
	"strings"

	"licm/internal/expr"
)

// Lineage is the provenance of a tuple's existence variable: the DAG
// of lineage definitions from the variable down to the base
// (input-uncertainty) variables it depends on. The paper's model
// "does not need to express and extract lineage information
// explicitly like in ULDBs — lineage is implicitly encoded in LICM
// through addition of new variables and constraints"; this type makes
// the implicit encoding traversable when a user asks *why* a result
// tuple may or may not exist.
type Lineage struct {
	// Root is the variable whose lineage this is.
	Root expr.Var
	// Base lists the base variables Root transitively depends on, in
	// increasing order.
	Base []expr.Var
	// Depth is the longest chain of operator applications from Root
	// down to a base variable (0 for a base variable itself).
	Depth int

	db *DB
}

// Trace computes the lineage of a variable by walking the recorded
// definitions down to base variables.
func Trace(db *DB, v expr.Var) Lineage {
	l := Lineage{Root: v, db: db}
	seen := make(map[expr.Var]bool)
	depth := map[expr.Var]int{}
	var walk func(x expr.Var) int
	walk = func(x expr.Var) int {
		if d, ok := depth[x]; ok {
			return d
		}
		def := db.Def(x)
		if def.Kind == DefBase {
			if !seen[x] {
				seen[x] = true
				l.Base = append(l.Base, x)
			}
			depth[x] = 0
			return 0
		}
		max := 0
		for _, a := range def.Args {
			if d := walk(a); d > max {
				max = d
			}
		}
		depth[x] = max + 1
		return max + 1
	}
	l.Depth = walk(v)
	sort.Slice(l.Base, func(i, j int) bool { return l.Base[i] < l.Base[j] })
	return l
}

// TraceExt is Trace for a tuple's Ext; certain tuples have empty
// lineage.
func TraceExt(db *DB, e Ext) Lineage {
	if e.IsCertain() {
		return Lineage{Root: -1}
	}
	return Trace(db, e.Var())
}

// DependsOn reports whether the traced variable depends on base
// variable b.
func (l Lineage) DependsOn(b expr.Var) bool {
	i := sort.Search(len(l.Base), func(i int) bool { return l.Base[i] >= b })
	return i < len(l.Base) && l.Base[i] == b
}

// String renders the lineage as a nested boolean formula over base
// variables, e.g. "b7 := OR(AND(b0, b2), b3)". Shared subtrees are
// expanded at each occurrence; use Base for the support set.
func (l Lineage) String() string {
	if l.Root < 0 {
		return "1"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "b%d := ", l.Root)
	l.render(&sb, l.Root, 0)
	return sb.String()
}

const lineageRenderDepthCap = 12

func (l Lineage) render(sb *strings.Builder, v expr.Var, depth int) {
	def := l.db.Def(v)
	if def.Kind == DefBase {
		fmt.Fprintf(sb, "b%d", v)
		return
	}
	if depth > lineageRenderDepthCap {
		fmt.Fprintf(sb, "b%d{...}", v)
		return
	}
	switch def.Kind {
	case DefAnd:
		sb.WriteString("AND(")
	case DefOr:
		sb.WriteString("OR(")
	case DefCountLE:
		fmt.Fprintf(sb, "COUNT<=%d[+%d](", def.D, def.N)
	case DefCountGE:
		fmt.Fprintf(sb, "COUNT>=%d[+%d](", def.D, def.N)
	}
	for i, a := range def.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		l.render(sb, a, depth+1)
	}
	sb.WriteString(")")
}

// Explain evaluates the lineage under a world and reports, level by
// level, why the root holds or not: for each definition node on a
// satisfying (or refuting) path, one human-readable line.
func (l Lineage) Explain(assign []uint8) []string {
	if l.Root < 0 {
		return []string{"tuple is certain: it exists in every world"}
	}
	var out []string
	var walk func(v expr.Var, indent string)
	walk = func(v expr.Var, indent string) {
		def := l.db.Def(v)
		val := assign[v]
		switch def.Kind {
		case DefBase:
			out = append(out, fmt.Sprintf("%sbase b%d = %d", indent, v, val))
		case DefAnd:
			out = append(out, fmt.Sprintf("%sb%d = %d (AND of %d inputs)", indent, v, val, len(def.Args)))
			if val == 1 {
				for _, a := range def.Args {
					walk(a, indent+"  ")
				}
			} else {
				// show one refuting input
				for _, a := range def.Args {
					if assign[a] == 0 {
						walk(a, indent+"  ")
						break
					}
				}
			}
		case DefOr:
			out = append(out, fmt.Sprintf("%sb%d = %d (OR of %d alternatives)", indent, v, val, len(def.Args)))
			if val == 1 {
				for _, a := range def.Args {
					if assign[a] == 1 {
						walk(a, indent+"  ")
						break
					}
				}
			} else {
				for _, a := range def.Args {
					walk(a, indent+"  ")
				}
			}
		case DefCountLE, DefCountGE:
			cnt := def.N
			for _, a := range def.Args {
				if assign[a] == 1 {
					cnt++
				}
			}
			sym := "<="
			if def.Kind == DefCountGE {
				sym = ">="
			}
			out = append(out, fmt.Sprintf("%sb%d = %d (count %d %s %d)", indent, v, val, cnt, sym, def.D))
		}
	}
	walk(l.Root, "")
	return out
}
