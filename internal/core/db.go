package core

import (
	"fmt"

	"licm/internal/expr"
	"licm/internal/obs"
)

// Ext is the special existence attribute of an LICM tuple
// (Definition 2): the constant 1 for a certain tuple, or a binary
// variable for a maybe-tuple.
type Ext struct {
	v expr.Var // -1 for a certain tuple
}

// Certain is the Ext of a tuple that exists in every possible world.
var Certain = Ext{v: -1}

// Maybe wraps an existence variable into an Ext.
func Maybe(v expr.Var) Ext { return Ext{v: v} }

// IsCertain reports whether the tuple exists in every world.
func (e Ext) IsCertain() bool { return e.v < 0 }

// Var returns the existence variable of a maybe-tuple; it panics on a
// certain tuple.
func (e Ext) Var() expr.Var {
	if e.v < 0 {
		panic("core: Var() on certain Ext")
	}
	return e.v
}

// String renders the Ext as in the paper's figures: "1" or "b<i>".
func (e Ext) String() string {
	if e.v < 0 {
		return "1"
	}
	return fmt.Sprintf("b%d", e.v)
}

// DefKind classifies how a variable's value is determined.
type DefKind uint8

// Definition kinds. Base variables are the input uncertainty; the
// others are lineage variables created by operators, whose value is a
// deterministic function of earlier variables (the paper's
// "deterministic operator" property).
const (
	DefBase    DefKind = iota
	DefAnd             // true iff all argument variables are true
	DefOr              // true iff any argument variable is true
	DefCountLE         // true iff N + sum(args) <= D
	DefCountGE         // true iff N + sum(args) >= D
)

// Def records how a derived variable is determined by earlier ones.
// The linear constraints emitted alongside it make any valid
// assignment agree with this function; keeping the function explicitly
// lets worlds be instantiated by propagation instead of search.
type Def struct {
	Kind DefKind
	Args []expr.Var
	N    int // number of certain tuples in the group (count defs)
	D    int // threshold d (count defs)
}

// DB is an LICM database's shared state (Definition 3): the pool of
// binary variables B, the constraint set C, and the definition of each
// derived variable. Relations reference it; all operators that create
// lineage variables take the DB they should record into.
type DB struct {
	defs []Def
	cons []expr.Constraint
	// tr, when set, receives an "op.<name>" span for every operator
	// call recording lineage into this DB.
	tr *obs.Tracer
}

// NewDB returns an empty LICM database.
func NewDB() *DB { return &DB{} }

// SetTracer attaches a tracer; operators on this DB then emit
// per-operator spans with input/output tuple counts and the number of
// lineage variables and constraints they created. nil detaches.
func (db *DB) SetTracer(tr *obs.Tracer) { db.tr = tr }

// Tracer returns the attached tracer (nil when tracing is off; a nil
// *DB also reports nil).
func (db *DB) Tracer() *obs.Tracer {
	if db == nil {
		return nil
	}
	return db.tr
}

// NumVars returns the number of variables allocated so far.
func (db *DB) NumVars() int { return len(db.defs) }

// NumConstraints returns the number of constraints in the store.
func (db *DB) NumConstraints() int { return len(db.cons) }

// Constraints exposes the constraint store. The returned slice is
// owned by the DB; callers must not modify it.
func (db *DB) Constraints() []expr.Constraint { return db.cons }

// Def returns the definition of variable v.
func (db *DB) Def(v expr.Var) Def { return db.defs[v] }

// NewVar allocates a fresh base (input-uncertainty) variable.
func (db *DB) NewVar() expr.Var {
	db.defs = append(db.defs, Def{Kind: DefBase})
	return expr.Var(len(db.defs) - 1)
}

// NewVars allocates n fresh base variables and returns them.
func (db *DB) NewVars(n int) []expr.Var {
	vs := make([]expr.Var, n)
	for i := range vs {
		vs[i] = db.NewVar()
	}
	return vs
}

// Add appends a raw linear constraint to the store.
func (db *DB) Add(c expr.Constraint) { db.cons = append(db.cons, c) }

// AddCardinality adds the cardinality constraint of Definition 1:
// lo <= |{existing tuples among vars}| <= hi. A side of -1 is
// unconstrained.
func (db *DB) AddCardinality(vars []expr.Var, lo, hi int) {
	s := expr.Sum(vars...)
	if lo == hi && lo >= 0 {
		db.Add(expr.NewConstraint(s, expr.EQ, int64(lo)))
		return
	}
	if lo > 0 {
		db.Add(expr.NewConstraint(s, expr.GE, int64(lo)))
	}
	if hi >= 0 {
		db.Add(expr.NewConstraint(s, expr.LE, int64(hi)))
	}
}

// AddMutex encodes mutual exclusion: exactly one of a, b (Example 5).
func (db *DB) AddMutex(a, b expr.Var) {
	db.Add(expr.NewConstraint(expr.Sum(a, b), expr.EQ, 1))
}

// AddCoexist encodes co-existence: a and b occur together (Example 5).
func (db *DB) AddCoexist(a, b expr.Var) {
	db.Add(expr.NewConstraint(expr.Sum(a).AddTerm(b, -1), expr.EQ, 0))
}

// AddImplies encodes material implication a -> b (Example 5).
func (db *DB) AddImplies(a, b expr.Var) {
	db.Add(expr.NewConstraint(expr.Sum(a).AddTerm(b, -1), expr.LE, 0))
}

// AddExactlyOne encodes that exactly one of vars is true (one side of
// a permutation constraint, Example 3).
func (db *DB) AddExactlyOne(vars []expr.Var) {
	db.Add(expr.NewConstraint(expr.Sum(vars...), expr.EQ, 1))
}

// newDerived allocates a derived variable, records its definition, and
// emits the linear constraints tying it to its arguments.
func (db *DB) newDerived(d Def) expr.Var {
	b := expr.Var(len(db.defs))
	for _, a := range d.Args {
		if a >= b {
			panic(fmt.Sprintf("core: derived b%d references later variable b%d", b, a))
		}
	}
	db.defs = append(db.defs, d)
	m := int64(len(d.Args))
	sum := expr.Sum(d.Args...)
	switch d.Kind {
	case DefAnd:
		// b <= a_i for each i; b >= sum - (m-1).
		for _, a := range d.Args {
			db.Add(expr.NewConstraint(expr.Sum(b).AddTerm(a, -1), expr.LE, 0))
		}
		db.Add(expr.NewConstraint(expr.Sum(b).Add(sum.Neg()), expr.GE, -(m - 1)))
	case DefOr:
		// b >= a_i for each i; b <= sum.
		for _, a := range d.Args {
			db.Add(expr.NewConstraint(expr.Sum(b).AddTerm(a, -1), expr.GE, 0))
		}
		db.Add(expr.NewConstraint(expr.Sum(b).Add(sum.Neg()), expr.LE, 0))
	case DefCountLE:
		// Algorithm 4, case COUNT <= d, with m maybe-tuples and n
		// certain tuples:
		//   d-n+1 <= (d-n+1)*b + sum
		//   m     >= (m-d+n)*b + sum
		dn := int64(d.D - d.N)
		db.Add(expr.NewConstraint(sum.AddTerm(b, dn+1), expr.GE, dn+1))
		db.Add(expr.NewConstraint(sum.AddTerm(b, m-dn), expr.LE, m))
	case DefCountGE:
		// Algorithm 4, case COUNT >= d:
		//   (d-n)*b <= sum
		//   d-n-1 + (m-d+n+1)*b >= sum
		dn := int64(d.D - d.N)
		db.Add(expr.NewConstraint(sum.AddTerm(b, -dn), expr.GE, 0))
		db.Add(expr.NewConstraint(sum.AddTerm(b, -(m-dn+1)), expr.LE, dn-1))
	default:
		panic("core: newDerived on base definition")
	}
	return b
}

// And returns a variable that is true iff all of ext values are true;
// it returns Certain when every input is certain. Used by Intersect,
// Product and Join for lineage.
func (db *DB) And(exts ...Ext) Ext {
	var args []expr.Var
	for _, e := range exts {
		if !e.IsCertain() {
			args = append(args, e.v)
		}
	}
	switch len(args) {
	case 0:
		return Certain
	case 1:
		return Maybe(args[0])
	default:
		return Maybe(db.newDerived(Def{Kind: DefAnd, Args: args}))
	}
}

// Or returns a variable that is true iff any of the ext values is
// true; it returns Certain if any input is certain. Used by Project.
func (db *DB) Or(exts ...Ext) Ext {
	var args []expr.Var
	for _, e := range exts {
		if e.IsCertain() {
			return Certain
		}
		args = append(args, e.v)
	}
	switch len(args) {
	case 0:
		panic("core: Or of no tuples")
	case 1:
		return Maybe(args[0])
	default:
		return Maybe(db.newDerived(Def{Kind: DefOr, Args: args}))
	}
}

// Extend completes a base-variable assignment to all derived
// variables by propagating definitions in allocation order. assign
// must have length NumVars; entries for base variables are inputs,
// entries for derived variables are overwritten.
func (db *DB) Extend(assign []uint8) {
	for v, d := range db.defs {
		switch d.Kind {
		case DefBase:
			// input
		case DefAnd:
			val := uint8(1)
			for _, a := range d.Args {
				if assign[a] == 0 {
					val = 0
					break
				}
			}
			assign[v] = val
		case DefOr:
			val := uint8(0)
			for _, a := range d.Args {
				if assign[a] == 1 {
					val = 1
					break
				}
			}
			assign[v] = val
		case DefCountLE, DefCountGE:
			cnt := d.N
			for _, a := range d.Args {
				if assign[a] == 1 {
					cnt++
				}
			}
			val := uint8(0)
			if d.Kind == DefCountLE && cnt <= d.D {
				val = 1
			}
			if d.Kind == DefCountGE && cnt >= d.D {
				val = 1
			}
			assign[v] = val
		}
	}
}

// Valid reports whether the (complete) assignment satisfies every
// constraint in the store.
func (db *DB) Valid(assign []uint8) bool {
	val := func(v expr.Var) bool { return assign[v] == 1 }
	for _, c := range db.cons {
		if !c.Holds(val) {
			return false
		}
	}
	return true
}

// BaseVars returns the ids of all base variables.
func (db *DB) BaseVars() []expr.Var {
	var vs []expr.Var
	for v, d := range db.defs {
		if d.Kind == DefBase {
			vs = append(vs, expr.Var(v))
		}
	}
	return vs
}
