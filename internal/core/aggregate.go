package core

import (
	"fmt"

	"licm/internal/expr"
	"licm/internal/obs"
	"licm/internal/solver"
)

// CountStar builds the aggregation-at-the-top objective for COUNT(*):
// the sum of the Ext values of the relation (Section IV-C). Certain
// tuples contribute the constant 1.
func CountStar(r *Relation) expr.Lin {
	lin := expr.Lin{}
	var konst int64
	terms := make([]expr.Term, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		if t.Ext.IsCertain() {
			konst++
		} else {
			terms = append(terms, expr.Term{Var: t.Ext.Var(), Coef: 1})
		}
	}
	lin = expr.NewLin(konst, terms...)
	return lin
}

// SumOf builds the objective for SUM(col) where col is a constant
// numeric attribute: each tuple contributes value × Ext.
func SumOf(r *Relation, col string) (expr.Lin, error) {
	j := -1
	for i, c := range r.Cols {
		if c == col {
			j = i
			break
		}
	}
	if j < 0 {
		return expr.Lin{}, fmt.Errorf("core: relation %q has no column %q", r.Name, col)
	}
	var konst int64
	terms := make([]expr.Term, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		v := t.Vals[j]
		if v.Kind() != KindInt {
			return expr.Lin{}, fmt.Errorf("core: SUM over non-numeric column %q", col)
		}
		if t.Ext.IsCertain() {
			konst += v.Int()
		} else if v.Int() != 0 {
			terms = append(terms, expr.Term{Var: t.Ext.Var(), Coef: v.Int()})
		}
	}
	return expr.NewLin(konst, terms...), nil
}

// BoundsResult carries the exact (or budget-limited) lower and upper
// bounds of an aggregate query answer over all possible worlds, plus
// the witness worlds achieving them (Section IV-D).
type BoundsResult struct {
	Min, Max             int64
	MinProven, MaxProven bool
	// MinBound/MaxBound are proven outer bounds; they equal Min/Max
	// when the corresponding side is proven.
	MinBound, MaxBound int64
	// MinWorld/MaxWorld are complete variable assignments (possible
	// worlds) achieving Min and Max; nil if witness completion failed
	// within budget.
	MinWorld, MaxWorld []uint8
	// Stats from the maximization solve (the minimization solve has
	// the same pruned sizes).
	Stats solver.Stats
}

// Bounds solves the binary integer program defined by the objective
// and the DB's constraint store, returning exact upper and lower
// bounds for the aggregate (Section IV-D). The solution vectors
// identify the "boundary case" possible worlds.
//
// When the DB carries a tracer (SetTracer) and opts.Trace is unset,
// the solves inherit the DB's tracer, so a single SetTracer call
// covers the whole query/solve pipeline.
func Bounds(db *DB, objective expr.Lin, opts solver.Options) (BoundsResult, error) {
	if opts.Trace == nil {
		opts.Trace = db.Tracer()
	}
	sp := opts.Trace.Start("aggregate.bounds",
		obs.Int("vars", db.NumVars()),
		obs.Int("cons", db.NumConstraints()),
		obs.Int("obj_terms", len(objective.Terms())))
	p := BuildProblem(db, objective)
	min, max, err := solver.Bounds(p, opts)
	if err != nil {
		sp.End(obs.Bool("ok", false))
		return BoundsResult{}, err
	}
	sp.End(
		obs.Bool("ok", true),
		obs.I64("min", min.Value),
		obs.I64("max", max.Value),
		obs.Bool("min_proven", min.Proven),
		obs.Bool("max_proven", max.Proven),
		obs.Int("components", max.Stats.Components),
		obs.Int("vars_pruned", max.Stats.VarsAfterPrune),
		obs.I64("alloc_bytes", min.Stats.AllocBytes+max.Stats.AllocBytes),
		obs.I64("peak_heap", maxI64(min.Stats.PeakHeap, max.Stats.PeakHeap)),
	)
	return BoundsResult{
		Min:       min.Value,
		Max:       max.Value,
		MinProven: min.Proven,
		MaxProven: max.Proven,
		MinBound:  min.Bound,
		MaxBound:  max.Bound,
		MinWorld:  min.Assignment,
		MaxWorld:  max.Assignment,
		Stats:     max.Stats,
	}, nil
}

// BuildProblem assembles the binary integer program for an aggregate
// objective over the DB's constraint store, without solving it. It is
// the entry point for callers that drive the solver themselves — the
// solve supervisor (internal/super) builds the problem once and then
// owns retries and degradation.
func BuildProblem(db *DB, objective expr.Lin) *solver.Problem {
	derived := make([]bool, db.NumVars())
	for v := range derived {
		derived[v] = db.Def(expr.Var(v)).Kind != DefBase
	}
	return &solver.Problem{
		NumVars:     db.NumVars(),
		Constraints: db.Constraints(),
		Objective:   objective,
		Derived:     derived,
	}
}

// CountBounds is shorthand for Bounds over CountStar(r).
func CountBounds(db *DB, r *Relation, opts solver.Options) (BoundsResult, error) {
	return Bounds(db, CountStar(r), opts)
}

// CardinalityEstimate is a structural (solver-free) estimate of a
// relation's cardinality across worlds — the building block for the
// plan-cost and selectivity estimation the paper's conclusion calls
// for when integrating LICM into a DBMS optimizer. MinCard counts
// certain tuples plus one per "at least one of these tuples" group
// detectable from the store; MaxCard counts all tuples. The true
// count of every world lies in [MinCard, MaxCard]; exact bounds
// require CountBounds.
type CardinalityEstimate struct {
	MinCard, MaxCard int
	Certain          int // tuples present in every world
	Maybe            int // tuples with an existence variable
}

// EstimateCardinality computes a CardinalityEstimate in one pass over
// the relation plus one pass over the constraint store.
func EstimateCardinality(db *DB, r *Relation) CardinalityEstimate {
	est := CardinalityEstimate{}
	inRel := make(map[expr.Var]bool)
	for _, t := range r.Tuples {
		if t.Ext.IsCertain() {
			est.Certain++
		} else {
			est.Maybe++
			inRel[t.Ext.Var()] = true
		}
	}
	est.MaxCard = est.Certain + est.Maybe
	est.MinCard = est.Certain
	// Count disjoint "sum >= k" groups fully contained in the
	// relation: each guarantees k members in every world.
	used := make(map[expr.Var]bool)
	for _, c := range db.Constraints() {
		if c.Op != expr.GE || c.RHS < 1 {
			continue
		}
		ok := true
		for _, tm := range c.Lin.Terms() {
			if tm.Coef != 1 || !inRel[tm.Var] || used[tm.Var] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, tm := range c.Lin.Terms() {
			used[tm.Var] = true
		}
		est.MinCard += int(c.RHS)
	}
	return est
}

// maxI64 avoids the builtin max, which the min/max result variables
// shadow inside Bounds.
func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
