package core_test

import (
	"testing"

	"licm/internal/core"
	"licm/internal/solver"
)

func TestUnionLineage(t *testing.T) {
	db := core.NewDB()
	r1 := core.NewRelation("R", "X")
	r2 := core.NewRelation("S", "X")
	a, b, c := db.NewVar(), db.NewVar(), db.NewVar()
	r1.Insert(core.Maybe(a), core.IntVal(1))
	r1.Insert(core.Certain, core.IntVal(2))
	r2.Insert(core.Maybe(b), core.IntVal(1)) // overlaps value 1
	r2.Insert(core.Maybe(c), core.IntVal(3))
	out, err := core.Union(db, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("union: %v", out)
	}
	byVal := map[int64]core.Ext{}
	for _, tp := range out.Tuples {
		byVal[tp.Vals[0].Int()] = tp.Ext
	}
	if byVal[2] != core.Certain {
		t.Error("certain tuple must stay certain")
	}
	if byVal[3].IsCertain() || byVal[3].Var() != c {
		t.Error("one-sided maybe should keep its variable")
	}
	or := byVal[1]
	if or.IsCertain() {
		t.Fatal("overlapping maybes should stay maybe")
	}
	for _, w := range db.EnumWorlds() {
		if w[or.Var()] != w[a]|w[b] {
			t.Fatalf("union lineage is not OR in world %v", w)
		}
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	db := core.NewDB()
	r1 := core.NewRelation("R", "A")
	r2 := core.NewRelation("S", "B")
	if _, err := core.Union(db, r1, r2); err == nil {
		t.Error("want schema error")
	}
	r3 := core.NewRelation("T", "A", "B")
	if _, err := core.Union(db, r1, r3); err == nil {
		t.Error("want arity error")
	}
}

func TestUnionCountBounds(t *testing.T) {
	// |R ∪ S| where R = {1?, 2} and S = {1?}: between 1 ({2}) and 2.
	db := core.NewDB()
	r1 := core.NewRelation("R", "X")
	r2 := core.NewRelation("S", "X")
	a, b := db.NewVar(), db.NewVar()
	r1.Insert(core.Maybe(a), core.IntVal(1))
	r1.Insert(core.Certain, core.IntVal(2))
	r2.Insert(core.Maybe(b), core.IntVal(1))
	out, err := core.Union(db, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CountBounds(db, out, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Min != 1 || res.Max != 2 {
		t.Fatalf("bounds = [%d,%d], want [1,2]", res.Min, res.Max)
	}
}

func TestUnionDedupesWithinInput(t *testing.T) {
	db := core.NewDB()
	r1 := core.NewRelation("R", "X")
	a, b := db.NewVar(), db.NewVar()
	r1.Insert(core.Maybe(a), core.IntVal(1))
	r1.Insert(core.Maybe(b), core.IntVal(1)) // duplicate value inside one input
	r2 := core.NewRelation("S", "X")
	out, err := core.Union(db, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("union should dedupe within inputs: %v", out)
	}
}

func TestEstimateCardinality(t *testing.T) {
	db := core.NewDB()
	r := core.NewRelation("R", "X")
	r.Insert(core.Certain, core.IntVal(1))
	g1 := db.NewVars(3)
	db.AddCardinality(g1, 1, -1) // at least one of three
	for i, v := range g1 {
		r.Insert(core.Maybe(v), core.IntVal(int64(10+i)))
	}
	free := db.NewVar() // unconstrained maybe
	r.Insert(core.Maybe(free), core.IntVal(99))

	est := core.EstimateCardinality(db, r)
	if est.Certain != 1 || est.Maybe != 4 {
		t.Fatalf("est = %+v", est)
	}
	if est.MinCard != 2 { // 1 certain + >=1 from the group
		t.Errorf("MinCard = %d, want 2", est.MinCard)
	}
	if est.MaxCard != 5 {
		t.Errorf("MaxCard = %d, want 5", est.MaxCard)
	}
	// The structural estimate must contain the exact bounds.
	res, err := core.CountBounds(db, r, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Min < int64(est.MinCard) || res.Max > int64(est.MaxCard) {
		t.Errorf("exact [%d,%d] outside estimate [%d,%d]", res.Min, res.Max, est.MinCard, est.MaxCard)
	}
}

func TestEstimateCardinalityIgnoresPartialGroups(t *testing.T) {
	// A >=1 group only half-contained in the relation must not raise
	// MinCard (its guarantee may be satisfied by the missing half).
	db := core.NewDB()
	r := core.NewRelation("R", "X")
	g := db.NewVars(2)
	db.AddCardinality(g, 1, -1)
	r.Insert(core.Maybe(g[0]), core.IntVal(1)) // g[1] not in the relation
	est := core.EstimateCardinality(db, r)
	if est.MinCard != 0 {
		t.Errorf("MinCard = %d, want 0", est.MinCard)
	}
}
