package core

import (
	"licm/internal/check"
)

// Check runs the static diagnostics pass (internal/check) over the
// database's constraint store. Derived (lineage) variables are marked
// from the recorded definitions, so the pass can flag dangling
// lineage — a derived variable whose defining constraints were lost
// (or never emitted) and whose value is therefore unconstrained
// instead of determined by its arguments.
//
// The objective is not part of a DB (it comes from the query at solve
// time); to vet a full instance, project the store into a
// solver.Problem and use Options.Check or Problem.RunCheck.
func (db *DB) Check() check.Report {
	derived := make([]bool, len(db.defs))
	for v, d := range db.defs {
		derived[v] = d.Kind != DefBase
	}
	return check.Check(check.Store{
		NumVars:     len(db.defs),
		Constraints: db.cons,
		Derived:     derived,
	})
}
