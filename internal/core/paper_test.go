package core_test

// Tests reproducing the worked examples and figures from the paper
// (Figures 2-4, Examples 1-8).

import (
	"testing"

	"licm/internal/core"
	"licm/internal/expr"
	"licm/internal/solver"
)

// fig2c builds the LICM encoding of transaction T1 from Figure 2(c):
// {Alcohol, Shampoo} with Alcohol generalizing {Beer, Wine, Liquor}.
func fig2c() (*core.DB, *core.Relation, []expr.Var) {
	db := core.NewDB()
	r := core.NewRelation("TransItem", "TID", "ItemName")
	bs := db.NewVars(3)
	r.Insert(core.Maybe(bs[0]), StrT1, core.StrVal("Beer"))
	r.Insert(core.Maybe(bs[1]), StrT1, core.StrVal("Wine"))
	r.Insert(core.Maybe(bs[2]), StrT1, core.StrVal("Liquor"))
	r.Insert(core.Certain, StrT1, core.StrVal("Shampoo"))
	db.AddCardinality(bs, 1, -1) // b1 + b2 + b3 >= 1
	return db, r, bs
}

var StrT1 = core.StrVal("T1")

func TestFig2cWorldCount(t *testing.T) {
	db, _, _ := fig2c()
	// Non-empty subsets of {Beer,Wine,Liquor}: 7 worlds, exactly the
	// U-relation enumeration of Figure 1.
	if got := len(db.EnumWorlds()); got != 7 {
		t.Fatalf("worlds = %d, want 7", got)
	}
}

func TestFig2cCountBounds(t *testing.T) {
	db, r, _ := fig2c()
	res, err := core.CountBounds(db, r, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// At least one alcohol item plus the certain shampoo: [2,4].
	if res.Min != 2 || res.Max != 4 {
		t.Fatalf("bounds = [%d,%d], want [2,4]", res.Min, res.Max)
	}
	if !res.MinProven || !res.MaxProven {
		t.Error("bounds must be proven")
	}
}

// fig3 builds R1 and R2 of Figure 3 and returns them with the DB.
func fig3() (*core.DB, *core.Relation, *core.Relation) {
	db := core.NewDB()
	r1 := core.NewRelation("R1", "TID", "ItemName")
	b1, b2 := db.NewVar(), db.NewVar()
	r1.Insert(core.Maybe(b1), core.StrVal("T1"), core.StrVal("wine"))
	r1.Insert(core.Maybe(b2), core.StrVal("T1"), core.StrVal("liquor"))
	r1.Insert(core.Certain, core.StrVal("T2"), core.StrVal("beer"))
	db.AddCardinality([]expr.Var{b1, b2}, 1, -1)
	r2 := core.NewRelation("R2", "TID", "ItemName")
	b3, b4 := db.NewVar(), db.NewVar()
	r2.Insert(core.Maybe(b3), core.StrVal("T1"), core.StrVal("wine"))
	r2.Insert(core.Maybe(b4), core.StrVal("T2"), core.StrVal("beer"))
	return db, r1, r2
}

func TestFig3Intersection(t *testing.T) {
	db, r1, r2 := fig3()
	out, err := core.Intersect(db, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	// Result of Figure 3(c): (T1,wine,b5) and (T2,beer,b4).
	if out.Len() != 2 {
		t.Fatalf("result: %v", out)
	}
	var wine, beer *core.Tuple
	for i := range out.Tuples {
		switch out.Tuples[i].Vals[1].Str() {
		case "wine":
			wine = &out.Tuples[i]
		case "beer":
			beer = &out.Tuples[i]
		}
	}
	if wine == nil || beer == nil {
		t.Fatalf("missing tuples: %v", out)
	}
	if wine.Ext.IsCertain() {
		t.Error("(T1,wine) should be a maybe-tuple")
	}
	// (T2,beer): R1 side certain, so the result reuses b4 (Algorithm 2
	// line 6-7) without a new variable.
	if beer.Ext.IsCertain() || beer.Ext.Var() != 3 {
		t.Errorf("(T2,beer) should reuse b4, got %v", beer.Ext)
	}
	// b5 = b1 AND b3 in every valid world.
	b5 := wine.Ext.Var()
	for _, w := range db.EnumWorlds() {
		if w[b5] != w[0]&w[2] {
			t.Fatalf("b5 != b1 AND b3 in world %v", w)
		}
	}
}

// fig4b builds the relation of Figure 4(b).
func fig4b() (*core.DB, *core.Relation, []expr.Var) {
	db := core.NewDB()
	r := core.NewRelation("R", "TID", "ItemName")
	// Variables b1,b2,b3,b6,b7 of the figure (0-indexed here).
	vars := db.NewVars(5)
	r.Insert(core.Maybe(vars[0]), core.StrVal("T1"), core.StrVal("Pregnancy test"))
	r.Insert(core.Maybe(vars[1]), core.StrVal("T1"), core.StrVal("Diapers"))
	r.Insert(core.Maybe(vars[2]), core.StrVal("T1"), core.StrVal("Shampoo"))
	r.Insert(core.Certain, core.StrVal("T2"), core.StrVal("Wine"))
	r.Insert(core.Maybe(vars[3]), core.StrVal("T2"), core.StrVal("Shampoo"))
	r.Insert(core.Maybe(vars[4]), core.StrVal("T3"), core.StrVal("Pregnancy test"))
	return db, r, vars
}

func TestExample7Projection(t *testing.T) {
	db, r, vars := fig4b()
	out := core.Project(db, r, "TID")
	if out.Len() != 3 {
		t.Fatalf("π_TID should have 3 tuples: %v", out)
	}
	byTID := map[string]core.Ext{}
	for _, tp := range out.Tuples {
		byTID[tp.Vals[0].Str()] = tp.Ext
	}
	// T2 is certain because of (T2, Wine, 1).
	if !byTID["T2"].IsCertain() {
		t.Error("T2 should be certain")
	}
	// T3 is unique, so the optimization reuses b7 (vars[4]).
	if byTID["T3"].IsCertain() || byTID["T3"].Var() != vars[4] {
		t.Errorf("T3 should reuse its variable, got %v", byTID["T3"])
	}
	// T1 gets a fresh OR variable over b1,b2,b3.
	if byTID["T1"].IsCertain() {
		t.Fatal("T1 should be maybe")
	}
	b8 := byTID["T1"].Var()
	if int(b8) < 5 {
		t.Errorf("T1 should get a fresh variable, got b%d", b8)
	}
	for _, w := range db.EnumWorlds() {
		or := w[vars[0]] | w[vars[1]] | w[vars[2]]
		if w[b8] != or {
			t.Fatalf("b8 != OR in world %v", w)
		}
	}
}

func TestExample8CountPredicate(t *testing.T) {
	db, r, vars := fig4b()
	// σ ItemName ∈ {Shampoo, Diapers, Pregnancy test} (Health Care).
	health := map[string]bool{"Shampoo": true, "Diapers": true, "Pregnancy test": true}
	sel := core.Select(r, func(row core.Row) bool { return health[row.Str("ItemName")] })
	if sel.Len() != 5 {
		t.Fatalf("selection should drop only (T2,Wine): %v", sel)
	}
	// COUNT >= 2 grouped by TID.
	out := core.CountPredicate(db, sel, []string{"TID"}, core.CountGE, 2)
	// T2 has one remaining tuple and T3 one: both excluded. T1 is
	// uncertain.
	if out.Len() != 1 || out.Tuples[0].Vals[0].Str() != "T1" {
		t.Fatalf("count predicate result: %v", out)
	}
	b8 := out.Tuples[0].Ext.Var()
	for _, w := range db.EnumWorlds() {
		cnt := w[vars[0]] + w[vars[1]] + w[vars[2]]
		want := uint8(0)
		if cnt >= 2 {
			want = 1
		}
		if w[b8] != want {
			t.Fatalf("count var wrong in world %v", w)
		}
	}
	// Final COUNT(*) bounds: [0,1].
	res, err := core.CountBounds(db, out, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Min != 0 || res.Max != 1 {
		t.Fatalf("bounds = [%d,%d], want [0,1]", res.Min, res.Max)
	}
}

func TestExample1DataCleaning(t *testing.T) {
	// Five address records; at least 1 and at most 2 are correct.
	db := core.NewDB()
	r := core.NewRelation("Addr", "Cust", "Region")
	vs := db.NewVars(5)
	regions := []string{"NE", "NE", "SE", "SW", "W"}
	for i, v := range vs {
		r.Insert(core.Maybe(v), core.StrVal("alice"), core.StrVal(regions[i]))
	}
	db.AddCardinality(vs, 1, 2)
	// "At most how many regions have a customer record?" — project to
	// Region, then count.
	proj := core.Project(db, r, "Region")
	res, err := core.CountBounds(db, proj, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Min: one record true and both NE duplicates give region count 1.
	// Max: two records in different regions.
	if res.Min != 1 || res.Max != 2 {
		t.Fatalf("bounds = [%d,%d], want [1,2]", res.Min, res.Max)
	}
}

func TestExample2Permutation(t *testing.T) {
	// {Alice, Bob, Carol} permuted against {flu, cancer, heart}.
	// "At least how many male patients do not have cancer?" with Bob
	// the only male: Bob has cancer in some world, so min is 0; max 1.
	db := core.NewDB()
	people := []string{"Alice", "Bob", "Carol"}
	diseases := []string{"flu", "cancer", "heart"}
	r := core.NewRelation("PatientDisease", "Name", "Disease")
	m := make([][]expr.Var, 3)
	for i := range people {
		m[i] = db.NewVars(3)
		for j := range diseases {
			r.Insert(core.Maybe(m[i][j]), core.StrVal(people[i]), core.StrVal(diseases[j]))
		}
	}
	for i := 0; i < 3; i++ {
		db.AddExactlyOne([]expr.Var{m[i][0], m[i][1], m[i][2]})
		db.AddExactlyOne([]expr.Var{m[0][i], m[1][i], m[2][i]})
	}
	male := core.Select(r, func(row core.Row) bool { return row.Str("Name") == "Bob" })
	notCancer := core.Select(male, func(row core.Row) bool { return row.Str("Disease") != "cancer" })
	proj := core.Project(db, notCancer, "Name")
	res, err := core.CountBounds(db, proj, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Min != 0 || res.Max != 1 {
		t.Fatalf("bounds = [%d,%d], want [0,1]", res.Min, res.Max)
	}
	// Witness worlds must be permutations.
	for _, w := range [][]uint8{res.MinWorld, res.MaxWorld} {
		if w == nil {
			t.Fatal("missing witness world")
		}
		for i := 0; i < 3; i++ {
			rowSum := w[m[i][0]] + w[m[i][1]] + w[m[i][2]]
			colSum := w[m[0][i]] + w[m[1][i]] + w[m[2][i]]
			if rowSum != 1 || colSum != 1 {
				t.Fatalf("witness is not a permutation: %v", w)
			}
		}
	}
}

func TestProductLineage(t *testing.T) {
	db := core.NewDB()
	r1 := core.NewRelation("R", "A")
	r2 := core.NewRelation("S", "B")
	a, b := db.NewVar(), db.NewVar()
	r1.Insert(core.Maybe(a), core.IntVal(1))
	r1.Insert(core.Certain, core.IntVal(2))
	r2.Insert(core.Maybe(b), core.IntVal(10))
	r2.Insert(core.Certain, core.IntVal(20))
	out := core.Product(db, r1, r2)
	if out.Len() != 4 {
		t.Fatalf("product size = %d", out.Len())
	}
	if len(out.Cols) != 2 || out.Cols[0] != "R.A" || out.Cols[1] != "S.B" {
		t.Fatalf("cols = %v", out.Cols)
	}
	// Algorithm 3 cases: certain×certain stays certain; maybe×certain
	// reuses the maybe variable; maybe×maybe creates an AND variable.
	kinds := map[string]core.Ext{}
	for _, tp := range out.Tuples {
		kinds[core.Key(tp.Vals)] = tp.Ext
	}
	cc := kinds[core.Key([]core.Value{core.IntVal(2), core.IntVal(20)})]
	if !cc.IsCertain() {
		t.Error("certain×certain should be certain")
	}
	mc := kinds[core.Key([]core.Value{core.IntVal(1), core.IntVal(20)})]
	if mc.IsCertain() || mc.Var() != a {
		t.Error("maybe×certain should reuse the maybe variable")
	}
	mm := kinds[core.Key([]core.Value{core.IntVal(1), core.IntVal(10)})]
	if mm.IsCertain() || mm.Var() == a || mm.Var() == b {
		t.Error("maybe×maybe should create a new variable")
	}
	for _, w := range db.EnumWorlds() {
		if w[mm.Var()] != w[a]&w[b] {
			t.Fatalf("AND lineage wrong in %v", w)
		}
	}
}

func TestIntersectSchemaMismatch(t *testing.T) {
	db := core.NewDB()
	r1 := core.NewRelation("R", "A")
	r2 := core.NewRelation("S", "B")
	if _, err := core.Intersect(db, r1, r2); err == nil {
		t.Fatal("expected schema mismatch error")
	}
	r3 := core.NewRelation("T", "A", "B")
	if _, err := core.Intersect(db, r1, r3); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestSumObjective(t *testing.T) {
	db := core.NewDB()
	r := core.NewRelation("Items", "Item", "Price")
	b := db.NewVar()
	r.Insert(core.Certain, core.StrVal("beer"), core.IntVal(5))
	r.Insert(core.Maybe(b), core.StrVal("wine"), core.IntVal(12))
	lin, err := core.SumOf(r, "Price")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Bounds(db, lin, solver.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Min != 5 || res.Max != 17 {
		t.Fatalf("SUM bounds = [%d,%d], want [5,17]", res.Min, res.Max)
	}
	if _, err := core.SumOf(r, "Nope"); err == nil {
		t.Error("expected unknown-column error")
	}
	if _, err := core.SumOf(r, "Item"); err == nil {
		t.Error("expected non-numeric error")
	}
}

func TestFromWorldsRoundTrip(t *testing.T) {
	universe := [][]core.Value{
		{core.IntVal(1)}, {core.IntVal(2)}, {core.IntVal(3)},
	}
	worlds := [][]int{{0}, {0, 1}, {2}}
	db, rel, err := core.FromWorlds("W", []string{"X"}, universe, worlds)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("relation should have one maybe-tuple per universe tuple")
	}
	got := db.EnumWorlds()
	if len(got) != 3 {
		t.Fatalf("worlds = %d, want 3", len(got))
	}
	masks := map[uint8]bool{}
	for _, w := range got {
		var m uint8
		for i := 0; i < 3; i++ {
			if w[i] == 1 {
				m |= 1 << uint(i)
			}
		}
		masks[m] = true
	}
	for _, want := range []uint8{0b001, 0b011, 0b100} {
		if !masks[want] {
			t.Errorf("world %03b missing", want)
		}
	}
}

func TestFromWorldsErrors(t *testing.T) {
	if _, _, err := core.FromWorlds("W", []string{"X"}, [][]core.Value{{core.IntVal(1)}}, nil); err == nil {
		t.Error("want error on empty world set")
	}
	if _, _, err := core.FromWorlds("W", []string{"X"}, [][]core.Value{{core.IntVal(1)}}, [][]int{{5}}); err == nil {
		t.Error("want error on out-of-range tuple index")
	}
	big := make([][]core.Value, 21)
	for i := range big {
		big[i] = []core.Value{core.IntVal(int64(i))}
	}
	if _, _, err := core.FromWorlds("W", []string{"X"}, big, [][]int{{0}}); err == nil {
		t.Error("want error on oversized universe")
	}
	if _, _, err := core.FromWorlds("W", []string{"X", "Y"}, [][]core.Value{{core.IntVal(1)}}, [][]int{{0}}); err == nil {
		t.Error("want error on arity mismatch")
	}
}
