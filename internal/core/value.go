// Package core implements LICM, the Linear Integer Constraint Model of
// Cormode, Shen, Srivastava and Yu (ICDE 2012): a working model for
// possibilistic data in which every tuple carries an existence
// attribute Ext that is either the constant 1 (a certain tuple) or a
// binary variable (a maybe-tuple), and a shared store of integer
// linear constraints over those variables describes the valid
// combinations — in particular cardinality constraints such as "at
// least 1 and at most 2 of these 5 tuples exist" or "these tuples are
// in bijection with those values".
//
// The package provides:
//
//   - the model itself: DB (variable pool + constraint store + lineage
//     definitions) and Relation (Definition 2/3 of the paper);
//   - the relational operators translated to LICM: Select, Project
//     (Algorithm 1), Intersect (Algorithm 2), Product (Algorithm 3),
//     Join, and the count-predicate operator (Algorithm 4);
//   - aggregates: CountStar and SumOf build the integer linear
//     objective whose exact minimum/maximum over all possible worlds
//     is computed by Bounds via the BIP solver (Section IV-D);
//   - possible-world machinery: Extend/Instantiate/Valid realize the
//     semantics of Section III, and FromWorlds is the completeness
//     construction of Theorem 1.
package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates Value variants.
type Kind uint8

// Value kinds.
const (
	KindInt Kind = iota
	KindString
)

// Value is a constant attribute value: an integer or a string. Values
// are comparable (usable as map keys) and ordered within a kind.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// IntVal returns an integer value.
func IntVal(i int64) Value { return Value{kind: KindInt, i: i} }

// StrVal returns a string value.
func StrVal(s string) Value { return Value{kind: KindString, s: s} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer content; it panics on a string value.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("core: Int() on %v", v))
	}
	return v.i
}

// Str returns the string content; it panics on an integer value.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("core: Str() on %v", v))
	}
	return v.s
}

// Less orders values: integers before strings, then by content.
func (v Value) Less(w Value) bool {
	if v.kind != w.kind {
		return v.kind < w.kind
	}
	if v.kind == KindInt {
		return v.i < w.i
	}
	return v.s < w.s
}

// String renders the value.
func (v Value) String() string {
	if v.kind == KindInt {
		return strconv.FormatInt(v.i, 10)
	}
	return v.s
}

// appendKey appends an unambiguous encoding of v to b (used to build
// composite grouping/join keys).
func (v Value) appendKey(b *strings.Builder) {
	if v.kind == KindInt {
		b.WriteByte('i')
		b.WriteString(strconv.FormatInt(v.i, 10))
	} else {
		b.WriteByte('s')
		b.WriteString(strconv.Itoa(len(v.s)))
		b.WriteByte(':')
		b.WriteString(v.s)
	}
	b.WriteByte('|')
}

// Key builds an unambiguous composite key over the given values,
// suitable for use as a map key in grouping and join operations.
func Key(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		v.appendKey(&b)
	}
	return b.String()
}

// rowKey is the internal alias used by the operators.
func rowKey(vals []Value) string { return Key(vals) }
