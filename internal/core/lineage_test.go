package core

import (
	"strings"
	"testing"

	"licm/internal/expr"
)

func TestTraceBaseVar(t *testing.T) {
	db := NewDB()
	v := db.NewVar()
	l := Trace(db, v)
	if l.Depth != 0 || len(l.Base) != 1 || l.Base[0] != v {
		t.Fatalf("lineage = %+v", l)
	}
	if got := l.String(); got != "b0 := b0" {
		t.Errorf("String = %q", got)
	}
}

func TestTraceAndOrChain(t *testing.T) {
	db := NewDB()
	a, b, c := db.NewVar(), db.NewVar(), db.NewVar()
	and := db.And(Maybe(a), Maybe(b))
	or := db.Or(and, Maybe(c))
	l := Trace(db, or.Var())
	if l.Depth != 2 {
		t.Errorf("depth = %d, want 2", l.Depth)
	}
	if len(l.Base) != 3 {
		t.Errorf("base = %v, want 3 vars", l.Base)
	}
	if !l.DependsOn(a) || !l.DependsOn(b) || !l.DependsOn(c) {
		t.Error("DependsOn missing base vars")
	}
	if l.DependsOn(or.Var()) {
		t.Error("root is not a base dependency")
	}
	s := l.String()
	if !strings.Contains(s, "OR(AND(b0, b1), b2)") {
		t.Errorf("String = %q", s)
	}
}

func TestTraceCountDef(t *testing.T) {
	db := NewDB()
	r := NewRelation("R", "G", "X")
	vs := db.NewVars(3)
	for i, v := range vs {
		r.Insert(Maybe(v), IntVal(1), IntVal(int64(i)))
	}
	r.Insert(Certain, IntVal(1), IntVal(99))
	out := CountPredicate(db, r, []string{"G"}, CountGE, 3)
	if out.Len() != 1 {
		t.Fatalf("out: %v", out)
	}
	l := TraceExt(db, out.Tuples[0].Ext)
	if len(l.Base) != 3 {
		t.Errorf("base = %v", l.Base)
	}
	if !strings.Contains(l.String(), "COUNT>=3[+1](") {
		t.Errorf("String = %q", l.String())
	}
}

func TestTraceExtCertain(t *testing.T) {
	db := NewDB()
	l := TraceExt(db, Certain)
	if l.String() != "1" {
		t.Errorf("certain lineage = %q", l.String())
	}
	exp := l.Explain(nil)
	if len(exp) != 1 || !strings.Contains(exp[0], "certain") {
		t.Errorf("Explain = %v", exp)
	}
}

func TestExplainPaths(t *testing.T) {
	db := NewDB()
	a, b := db.NewVar(), db.NewVar()
	or := db.Or(db.And(Maybe(a), Maybe(b)), Maybe(a))
	l := Trace(db, or.Var())

	assign := make([]uint8, db.NumVars())
	assign[a] = 1
	db.Extend(assign)
	lines := l.Explain(assign)
	if len(lines) == 0 || !strings.Contains(lines[0], "= 1 (OR") {
		t.Errorf("Explain(true) = %v", lines)
	}

	assign = make([]uint8, db.NumVars())
	db.Extend(assign)
	lines = l.Explain(assign)
	if len(lines) == 0 || !strings.Contains(lines[0], "= 0 (OR") {
		t.Errorf("Explain(false) = %v", lines)
	}
	// A false OR must explain every alternative.
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "AND") {
		t.Errorf("false OR should recurse into alternatives: %v", lines)
	}
}

func TestExplainCountNode(t *testing.T) {
	db := NewDB()
	vs := db.NewVars(2)
	r := NewRelation("R", "G", "X")
	for i, v := range vs {
		r.Insert(Maybe(v), IntVal(1), IntVal(int64(i)))
	}
	out := CountPredicate(db, r, []string{"G"}, CountLE, 1)
	l := TraceExt(db, out.Tuples[0].Ext)
	assign := make([]uint8, db.NumVars())
	assign[vs[0]] = 1
	db.Extend(assign)
	lines := l.Explain(assign)
	found := false
	for _, ln := range lines {
		if strings.Contains(ln, "count 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("Explain should show the count: %v", lines)
	}
}

func TestTraceDeepChainRenderCap(t *testing.T) {
	db := NewDB()
	cur := Maybe(db.NewVar())
	for i := 0; i < 20; i++ {
		cur = db.And(cur, Maybe(db.NewVar()))
	}
	l := Trace(db, cur.Var())
	if l.Depth != 20 {
		t.Errorf("depth = %d", l.Depth)
	}
	if !strings.Contains(l.String(), "{...}") {
		t.Error("deep lineage should be elided in rendering")
	}
}

var _ = expr.Var(0)
