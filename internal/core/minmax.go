package core

import (
	"fmt"
	"sort"

	"licm/internal/expr"
	"licm/internal/solver"
)

// MinMaxResult bounds a MIN or MAX aggregate over all possible worlds
// in which the input relation is non-empty.
type MinMaxResult struct {
	// Lo and Hi bound the aggregate: in every non-empty world the
	// aggregate lies in [Lo, Hi], and both ends are attained by some
	// world.
	Lo, Hi int64
	// CanBeEmpty reports whether some world instantiates the relation
	// to nothing, leaving the aggregate undefined there (SQL NULL).
	CanBeEmpty bool
}

// MinBounds computes exact bounds for MIN(col) over the relation
// across all possible worlds (Section IV-C notes MIN and MAX follow
// the same case-based recipe as COUNT and SUM). Unlike COUNT, the
// extremes of MIN are not a single linear objective; they are found
// with a descending scan of candidate values, each a feasibility
// query on the constraint store.
func MinBounds(db *DB, r *Relation, col string, opts solver.Options) (MinMaxResult, error) {
	return extremeBounds(db, r, col, opts, true)
}

// MaxBounds computes exact bounds for MAX(col) across all possible
// worlds; see MinBounds.
func MaxBounds(db *DB, r *Relation, col string, opts solver.Options) (MinMaxResult, error) {
	return extremeBounds(db, r, col, opts, false)
}

func extremeBounds(db *DB, r *Relation, col string, opts solver.Options, isMin bool) (MinMaxResult, error) {
	j := -1
	for i, c := range r.Cols {
		if c == col {
			j = i
			break
		}
	}
	if j < 0 {
		return MinMaxResult{}, fmt.Errorf("core: relation %q has no column %q", r.Name, col)
	}
	if len(r.Tuples) == 0 {
		return MinMaxResult{}, fmt.Errorf("core: MIN/MAX over relation with no possible tuples")
	}
	// Group tuple Exts by value.
	type slot struct {
		val     int64
		certain bool
		vars    []expr.Var
	}
	byVal := map[int64]*slot{}
	var vals []int64
	for _, t := range r.Tuples {
		v := t.Vals[j]
		if v.Kind() != KindInt {
			return MinMaxResult{}, fmt.Errorf("core: MIN/MAX over non-numeric column %q", col)
		}
		s, ok := byVal[v.Int()]
		if !ok {
			s = &slot{val: v.Int()}
			byVal[v.Int()] = s
			vals = append(vals, v.Int())
		}
		if t.Ext.IsCertain() {
			s.certain = true
		} else {
			s.vars = append(s.vars, t.Ext.Var())
		}
	}
	// Order candidate values from the aggregate's "best" end: for MIN
	// ascending, for MAX descending.
	sort.Slice(vals, func(a, b int) bool {
		if isMin {
			return vals[a] < vals[b]
		}
		return vals[a] > vals[b]
	})

	res := MinMaxResult{}
	// The "easy" end (Lo for MIN, Hi for MAX): the first value whose
	// slot can be non-empty in some world.
	easy, found := int64(0), false
	for _, v := range vals {
		s := byVal[v]
		if s.certain {
			easy, found = v, true
			break
		}
		if feasible(db, opts, expr.NewConstraint(expr.Sum(s.vars...), expr.GE, 1)) {
			easy, found = v, true
			break
		}
	}
	if !found {
		return MinMaxResult{}, fmt.Errorf("core: relation is empty in every world; MIN/MAX undefined")
	}
	// The "hard" end: the last value x (scanning from the far end)
	// such that some world has every better slot empty and slot x
	// non-empty.
	hard := easy
	for i := len(vals) - 1; i >= 0; i-- {
		x := vals[i]
		s := byVal[x]
		// Better-than-x slots must all be empty.
		blocked := false
		var zero []expr.Constraint
		for _, v := range vals {
			if v == x {
				break // vals is ordered best-first; stop at x
			}
			bs := byVal[v]
			if bs.certain {
				blocked = true
				break
			}
			if len(bs.vars) > 0 {
				zero = append(zero, expr.NewConstraint(expr.Sum(bs.vars...), expr.EQ, 0))
			}
		}
		if blocked {
			continue
		}
		if !s.certain {
			zero = append(zero, expr.NewConstraint(expr.Sum(s.vars...), expr.GE, 1))
		}
		if feasible(db, opts, zero...) {
			hard = x
			break
		}
	}
	if isMin {
		res.Lo, res.Hi = easy, hard
	} else {
		res.Lo, res.Hi = hard, easy
	}
	// Emptiness: every tuple absent simultaneously.
	anyCertain := false
	var allVars []expr.Var
	for _, t := range r.Tuples {
		if t.Ext.IsCertain() {
			anyCertain = true
			break
		}
		allVars = append(allVars, t.Ext.Var())
	}
	if !anyCertain {
		res.CanBeEmpty = feasible(db, opts, expr.NewConstraint(expr.Sum(allVars...), expr.EQ, 0))
	}
	return res, nil
}

// feasible reports whether the store plus the extra constraints admit
// a world.
func feasible(db *DB, opts solver.Options, extra ...expr.Constraint) bool {
	cons := make([]expr.Constraint, 0, db.NumConstraints()+len(extra))
	cons = append(cons, db.Constraints()...)
	cons = append(cons, extra...)
	derived := make([]bool, db.NumVars())
	for v := range derived {
		derived[v] = db.Def(expr.Var(v)).Kind != DefBase
	}
	p := &solver.Problem{
		NumVars:     db.NumVars(),
		Constraints: cons,
		Objective:   expr.Lin{},
		Derived:     derived,
	}
	// A zero objective turns the solve into pure feasibility. Pruning
	// would discard everything (the objective reaches nothing), so
	// force the extra constraints to be considered by disabling it —
	// the feasibility dive keeps this cheap.
	fopts := opts
	fopts.Prune = false
	fopts.CompleteWitness = false
	_, err := solver.Maximize(p, fopts)
	return err == nil
}
