package core

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of an LICM relation: constant attribute values plus
// the existence attribute Ext (Definition 2).
type Tuple struct {
	Vals []Value
	Ext  Ext
}

// Relation is an LICM relation: a schema of named attributes over
// finite domains plus the special Ext attribute, and a list of tuples.
// Tuples reference variables owned by a DB.
type Relation struct {
	Name   string
	Cols   []string
	Tuples []Tuple
}

// NewRelation creates an empty relation with the given column names
// (excluding Ext, which is implicit).
func NewRelation(name string, cols ...string) *Relation {
	return &Relation{Name: name, Cols: append([]string(nil), cols...)}
}

// colIndex returns the position of col; it panics on an unknown
// column, which is a programming error in query construction.
func (r *Relation) colIndex(col string) int {
	for i, c := range r.Cols {
		if c == col {
			return i
		}
	}
	panic(fmt.Sprintf("core: relation %q has no column %q", r.Name, col))
}

// HasCol reports whether the relation has the named column.
func (r *Relation) HasCol(col string) bool {
	for _, c := range r.Cols {
		if c == col {
			return true
		}
	}
	return false
}

// Insert appends a tuple. The number of values must match the schema.
func (r *Relation) Insert(ext Ext, vals ...Value) {
	if len(vals) != len(r.Cols) {
		panic(fmt.Sprintf("core: relation %q: %d values for %d columns", r.Name, len(vals), len(r.Cols)))
	}
	r.Tuples = append(r.Tuples, Tuple{Vals: append([]Value(nil), vals...), Ext: ext})
}

// Len returns the number of tuples (certain and maybe).
func (r *Relation) Len() int { return len(r.Tuples) }

// Row gives typed access to one tuple's values through the schema.
type Row struct {
	rel *Relation
	t   *Tuple
}

// RowAt returns an accessor for the i-th tuple.
func (r *Relation) RowAt(i int) Row { return Row{rel: r, t: &r.Tuples[i]} }

// Get returns the value of the named column.
func (w Row) Get(col string) Value { return w.t.Vals[w.rel.colIndex(col)] }

// Int returns the named column as an integer.
func (w Row) Int(col string) int64 { return w.Get(col).Int() }

// Str returns the named column as a string.
func (w Row) Str(col string) string { return w.Get(col).Str() }

// Ext returns the tuple's existence attribute.
func (w Row) Ext() Ext { return w.t.Ext }

// String renders the relation as an aligned table, in the style of the
// paper's figures.
func (r *Relation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(%s, Ext)\n", r.Name, strings.Join(r.Cols, ", "))
	for _, t := range r.Tuples {
		parts := make([]string, len(t.Vals))
		for i, v := range t.Vals {
			parts[i] = v.String()
		}
		fmt.Fprintf(&sb, "  %s | %s\n", strings.Join(parts, ", "), t.Ext)
	}
	return sb.String()
}

// SortTuples orders tuples by their values (for deterministic output
// in tests and goldens); it does not change semantics.
func (r *Relation) SortTuples() {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		a, b := r.Tuples[i].Vals, r.Tuples[j].Vals
		for k := range a {
			if a[k].Less(b[k]) {
				return true
			}
			if b[k].Less(a[k]) {
				return false
			}
		}
		return false
	})
}
