package seedflag

import (
	"flag"
	"io"
	"testing"
)

func TestRegisterDefaultAndParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	seed := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *seed != Default {
		t.Errorf("default seed = %d, want %d", *seed, Default)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	seed = Register(fs)
	if err := fs.Parse([]string{"-seed", "0"}); err != nil {
		t.Fatal(err)
	}
	if *seed != 0 {
		t.Errorf("zero is a valid seed; got %d", *seed)
	}
}

// TestDeriveStreamsDisjoint pins the stream offsets: dataset is the
// identity (historical artifacts keep their bytes), and no two
// streams of one master seed collide.
func TestDeriveStreamsDisjoint(t *testing.T) {
	if got := Derive(7, DatasetStream); got != 7 {
		t.Errorf("dataset stream must be the seed itself, got %d", got)
	}
	streams := []int64{DatasetStream, MCStream, FallbackStream, WorkloadStream}
	seen := map[int64]bool{}
	for _, s := range streams {
		d := Derive(42, s)
		if seen[d] {
			t.Errorf("stream offset %d collides at derived seed %d", s, d)
		}
		seen[d] = true
	}
}
