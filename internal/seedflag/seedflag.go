// Package seedflag is the single home of the -seed flag and its
// semantics, shared by every LICM CLI that consumes randomness
// (licmgen, licmexp, licmq, licmload).
//
// The contract, documented once here instead of per-tool:
//
//   - Every CLI takes exactly one -seed flag with Default (1) as its
//     default. There is no per-purpose seed flag; all random streams a
//     tool uses are derived from the one seed.
//   - Any value, including 0, is a deterministic seed: rerunning a
//     tool with the same seed and inputs reproduces its output
//     bit-for-bit. No tool ever falls back to a time-based seed.
//   - Independent random streams (dataset synthesis, Monte-Carlo
//     sampling, the supervisor's sampled fallback, workload query
//     generation) are derived with Derive and the fixed stream
//     offsets below, so the streams stay decorrelated without any
//     hidden constants scattered across packages.
package seedflag

import "flag"

// Default is the seed every CLI uses when -seed is not given.
const Default = 1

// Stream offsets for Derive. The dataset stream is the seed itself so
// that `licmgen -seed S` and historical artifacts generated before
// streams were centralized keep their bytes.
const (
	// DatasetStream seeds synthetic dataset generation.
	DatasetStream int64 = 0
	// MCStream seeds Monte-Carlo world sampling (the paper's baseline
	// and the ground-truth estimates).
	MCStream int64 = 100
	// FallbackStream seeds the anytime supervisor's sampled fallback.
	FallbackStream int64 = 200
	// WorkloadStream seeds randomized workload query generation.
	WorkloadStream int64 = 300
)

// Derive maps (seed, stream) to the seed of one derived random
// stream. It is a plain offset: collisions between streams of
// different base seeds are harmless (the streams still differ in
// purpose), and the arithmetic is obvious when reproducing a run by
// hand.
func Derive(seed, stream int64) int64 { return seed + stream }

// Register installs the shared -seed flag on a FlagSet and returns
// the destination. Every randomized CLI calls this instead of
// declaring its own flag, so the name, default and help text cannot
// drift apart.
func Register(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", Default, "master random seed; all random streams derive from it deterministically (0 is a valid seed, never time-based)")
}
