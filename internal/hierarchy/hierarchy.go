// Package hierarchy provides item generalization hierarchies, the
// domain structure behind generalization-based anonymization
// (Figure 2(b) of the paper): a tree whose leaves are concrete items
// and whose internal nodes are "generalized items" standing for the
// set of leaves below them.
package hierarchy

import (
	"fmt"
)

// NodeID identifies a node. Leaves occupy [0, NumLeaves); internal
// nodes follow; the root has the largest id.
type NodeID int32

// Hierarchy is an immutable generalization tree.
type Hierarchy struct {
	numLeaves int
	parent    []NodeID // parent[root] == -1
	children  [][]NodeID
	names     []string
	height    []int // height[n] = distance to deepest leaf below n
	depth     []int // depth[n] = distance from root
}

// Build creates a balanced hierarchy over numLeaves items by grouping
// consecutive ranges of `fanout` nodes level by level until a single
// root remains. Leaf i is named names[i] when names is non-nil
// (otherwise "item<i>"); internal nodes get synthetic names.
func Build(numLeaves, fanout int, names []string) (*Hierarchy, error) {
	if numLeaves < 1 {
		return nil, fmt.Errorf("hierarchy: need at least one leaf, got %d", numLeaves)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("hierarchy: fanout must be >= 2, got %d", fanout)
	}
	if names != nil && len(names) != numLeaves {
		return nil, fmt.Errorf("hierarchy: %d names for %d leaves", len(names), numLeaves)
	}
	h := &Hierarchy{numLeaves: numLeaves}
	for i := 0; i < numLeaves; i++ {
		if names != nil {
			h.names = append(h.names, names[i])
		} else {
			h.names = append(h.names, fmt.Sprintf("item%d", i))
		}
		h.parent = append(h.parent, -1)
		h.children = append(h.children, nil)
	}
	level := make([]NodeID, numLeaves)
	for i := range level {
		level[i] = NodeID(i)
	}
	gen := 0
	for len(level) > 1 {
		gen++
		var next []NodeID
		for lo := 0; lo < len(level); lo += fanout {
			hi := lo + fanout
			if hi > len(level) {
				hi = len(level)
			}
			if hi-lo == 1 && len(next) > 0 {
				// Attach a trailing singleton to the previous group
				// instead of chaining unary nodes.
				last := next[len(next)-1]
				child := level[lo]
				h.parent[child] = last
				h.children[last] = append(h.children[last], child)
				continue
			}
			id := NodeID(len(h.parent))
			h.parent = append(h.parent, -1)
			h.children = append(h.children, nil)
			h.names = append(h.names, fmt.Sprintf("g%d_%d", gen, len(next)))
			for _, child := range level[lo:hi] {
				h.parent[child] = id
				h.children[id] = append(h.children[id], child)
			}
			next = append(next, id)
		}
		level = next
	}
	h.names[len(h.names)-1] = "All"
	h.finish()
	return h, nil
}

// FromParents creates a hierarchy from an explicit parent array (for
// hand-built trees such as the paper's Figure 2(b)). parent[i] == -1
// marks the root; leaves are the first numLeaves nodes.
func FromParents(numLeaves int, parent []NodeID, names []string) (*Hierarchy, error) {
	n := len(parent)
	if numLeaves < 1 || numLeaves > n {
		return nil, fmt.Errorf("hierarchy: numLeaves %d out of range for %d nodes", numLeaves, n)
	}
	if names != nil && len(names) != n {
		return nil, fmt.Errorf("hierarchy: %d names for %d nodes", len(names), n)
	}
	h := &Hierarchy{
		numLeaves: numLeaves,
		parent:    append([]NodeID(nil), parent...),
		children:  make([][]NodeID, n),
		names:     make([]string, n),
	}
	roots := 0
	for i, p := range parent {
		if names != nil {
			h.names[i] = names[i]
		} else {
			h.names[i] = fmt.Sprintf("node%d", i)
		}
		switch {
		case p == -1:
			roots++
			if i != n-1 {
				return nil, fmt.Errorf("hierarchy: root must be the last node, found at %d", i)
			}
		case p <= NodeID(i) || int(p) >= n:
			return nil, fmt.Errorf("hierarchy: parent of %d is %d; parents must come later", i, p)
		default:
			h.children[p] = append(h.children[p], NodeID(i))
		}
	}
	if roots != 1 {
		return nil, fmt.Errorf("hierarchy: want exactly one root, got %d", roots)
	}
	for i := 0; i < numLeaves; i++ {
		if len(h.children[i]) != 0 {
			return nil, fmt.Errorf("hierarchy: leaf %d has children", i)
		}
	}
	h.finish()
	return h, nil
}

// finish computes heights and depths. Parents always have larger ids
// than children (guaranteed by both constructors), so single passes in
// id order suffice.
func (h *Hierarchy) finish() {
	n := len(h.parent)
	h.height = make([]int, n)
	h.depth = make([]int, n)
	for i := 0; i < n; i++ {
		for _, c := range h.children[i] {
			if h.height[c]+1 > h.height[i] {
				h.height[i] = h.height[c] + 1
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		if p := h.parent[i]; p >= 0 {
			h.depth[i] = h.depth[p] + 1
		}
	}
}

// NumLeaves returns the number of leaf items.
func (h *Hierarchy) NumLeaves() int { return h.numLeaves }

// NumNodes returns the total number of nodes.
func (h *Hierarchy) NumNodes() int { return len(h.parent) }

// Root returns the root node.
func (h *Hierarchy) Root() NodeID { return NodeID(len(h.parent) - 1) }

// IsLeaf reports whether n is a leaf (a concrete item).
func (h *Hierarchy) IsLeaf(n NodeID) bool { return int(n) < h.numLeaves }

// Parent returns n's parent, or -1 for the root.
func (h *Hierarchy) Parent(n NodeID) NodeID { return h.parent[n] }

// Children returns n's children (nil for leaves). The slice is owned
// by the hierarchy.
func (h *Hierarchy) Children(n NodeID) []NodeID { return h.children[n] }

// Name returns the node's display name.
func (h *Hierarchy) Name(n NodeID) string { return h.names[n] }

// Height returns the distance from n to its deepest descendant leaf.
func (h *Hierarchy) Height(n NodeID) int { return h.height[n] }

// Depth returns the distance from the root to n.
func (h *Hierarchy) Depth(n NodeID) int { return h.depth[n] }

// LeavesUnder returns all leaf items below n (n itself if a leaf).
func (h *Hierarchy) LeavesUnder(n NodeID) []NodeID {
	if h.IsLeaf(n) {
		return []NodeID{n}
	}
	var out []NodeID
	stack := []NodeID{n}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h.IsLeaf(x) {
			out = append(out, x)
			continue
		}
		stack = append(stack, h.children[x]...)
	}
	return out
}

// CountLeavesUnder returns the number of leaves below n without
// materializing them.
func (h *Hierarchy) CountLeavesUnder(n NodeID) int {
	if h.IsLeaf(n) {
		return 1
	}
	total := 0
	stack := []NodeID{n}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h.IsLeaf(x) {
			total++
			continue
		}
		stack = append(stack, h.children[x]...)
	}
	return total
}

// Generalize climbs `steps` levels up from n, stopping at the root.
func (h *Hierarchy) Generalize(n NodeID, steps int) NodeID {
	for steps > 0 && h.parent[n] >= 0 {
		n = h.parent[n]
		steps--
	}
	return n
}

// AncestorAtDepth returns the ancestor of n at the given depth from
// the root (n itself if already at or above that depth).
func (h *Hierarchy) AncestorAtDepth(n NodeID, depth int) NodeID {
	for h.depth[n] > depth {
		n = h.parent[n]
	}
	return n
}

// LCA returns the lowest common ancestor of a and b.
func (h *Hierarchy) LCA(a, b NodeID) NodeID {
	for h.depth[a] > h.depth[b] {
		a = h.parent[a]
	}
	for h.depth[b] > h.depth[a] {
		b = h.parent[b]
	}
	for a != b {
		a = h.parent[a]
		b = h.parent[b]
	}
	return a
}

// IsAncestor reports whether a is an ancestor of (or equal to) b.
func (h *Hierarchy) IsAncestor(a, b NodeID) bool {
	for b >= 0 {
		if a == b {
			return true
		}
		b = h.parent[b]
	}
	return false
}

// Fig2b builds the paper's example hierarchy of Figure 2(b): All over
// {Alcohol: Beer, Wine, Liquor} and {Health Care: Diapers,
// Pregnancy test, Shampoo}. Leaves are nodes 0-5, Alcohol 6, Health
// Care 7, All 8.
func Fig2b() *Hierarchy {
	h, err := FromParents(6,
		[]NodeID{6, 6, 6, 7, 7, 7, 8, 8, -1},
		[]string{"Beer", "Wine", "Liquor", "Diapers", "Pregnancy test", "Shampoo", "Alcohol", "Health Care", "All"})
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return h
}
