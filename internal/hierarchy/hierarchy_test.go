package hierarchy

import (
	"math/rand"
	"testing"
)

func TestFig2b(t *testing.T) {
	h := Fig2b()
	if h.NumLeaves() != 6 || h.NumNodes() != 9 {
		t.Fatalf("leaves=%d nodes=%d", h.NumLeaves(), h.NumNodes())
	}
	if h.Root() != 8 || h.Name(8) != "All" {
		t.Fatalf("root = %d %q", h.Root(), h.Name(h.Root()))
	}
	if h.Name(6) != "Alcohol" || h.Name(7) != "Health Care" {
		t.Error("internal names wrong")
	}
	leaves := h.LeavesUnder(6)
	if len(leaves) != 3 {
		t.Fatalf("alcohol leaves = %v", leaves)
	}
	for _, l := range leaves {
		if !h.IsLeaf(l) || h.Parent(l) != 6 {
			t.Errorf("leaf %d wrong", l)
		}
	}
	if h.CountLeavesUnder(8) != 6 || h.CountLeavesUnder(0) != 1 {
		t.Error("CountLeavesUnder wrong")
	}
	if h.Height(8) != 2 || h.Height(6) != 1 || h.Height(0) != 0 {
		t.Error("heights wrong")
	}
	if h.Depth(8) != 0 || h.Depth(6) != 1 || h.Depth(0) != 2 {
		t.Error("depths wrong")
	}
	if h.LCA(0, 2) != 6 || h.LCA(0, 3) != 8 || h.LCA(6, 1) != 6 {
		t.Error("LCA wrong")
	}
	if !h.IsAncestor(8, 0) || !h.IsAncestor(6, 6) || h.IsAncestor(7, 0) {
		t.Error("IsAncestor wrong")
	}
	if h.Generalize(0, 1) != 6 || h.Generalize(0, 2) != 8 || h.Generalize(0, 9) != 8 {
		t.Error("Generalize wrong")
	}
	if h.AncestorAtDepth(0, 1) != 6 || h.AncestorAtDepth(0, 0) != 8 || h.AncestorAtDepth(0, 2) != 0 {
		t.Error("AncestorAtDepth wrong")
	}
}

func TestBuildBalanced(t *testing.T) {
	h, err := Build(16, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLeaves() != 16 {
		t.Fatalf("leaves = %d", h.NumLeaves())
	}
	// 16 leaves, fanout 4: 4 internal at level 1, 1 root = 21 nodes.
	if h.NumNodes() != 21 {
		t.Fatalf("nodes = %d, want 21", h.NumNodes())
	}
	if got := len(h.LeavesUnder(h.Root())); got != 16 {
		t.Fatalf("root covers %d leaves", got)
	}
	if h.Name(h.Root()) != "All" {
		t.Error("root should be named All")
	}
}

func TestBuildUnevenSingleton(t *testing.T) {
	// 5 leaves with fanout 2 produces a trailing singleton which must
	// be merged, never chained as a unary node.
	h, err := Build(5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := NodeID(0); int(n) < h.NumNodes(); n++ {
		if !h.IsLeaf(n) && len(h.Children(n)) < 2 {
			t.Errorf("internal node %d has %d children", n, len(h.Children(n)))
		}
	}
	if got := len(h.LeavesUnder(h.Root())); got != 5 {
		t.Fatalf("root covers %d leaves", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(0, 2, nil); err == nil {
		t.Error("want error for zero leaves")
	}
	if _, err := Build(4, 1, nil); err == nil {
		t.Error("want error for fanout 1")
	}
	if _, err := Build(4, 2, []string{"a"}); err == nil {
		t.Error("want error for name count mismatch")
	}
}

func TestBuildSingleLeaf(t *testing.T) {
	h, err := Build(1, 2, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 1 || h.Root() != 0 || !h.IsLeaf(0) {
		t.Fatalf("single-leaf hierarchy wrong: %d nodes", h.NumNodes())
	}
	if h.Generalize(0, 3) != 0 {
		t.Error("generalizing the root should stay put")
	}
}

func TestFromParentsErrors(t *testing.T) {
	if _, err := FromParents(0, []NodeID{-1}, nil); err == nil {
		t.Error("want error for zero leaves")
	}
	if _, err := FromParents(1, []NodeID{-1, -1}, nil); err == nil {
		t.Error("want error for two roots")
	}
	if _, err := FromParents(2, []NodeID{2, 0, -1}, nil); err == nil {
		t.Error("want error for backward parent")
	}
	if _, err := FromParents(2, []NodeID{-1, 2, 2}, nil); err == nil {
		t.Error("want error for root not last")
	}
	if _, err := FromParents(1, []NodeID{1, -1}, []string{"a"}); err == nil {
		t.Error("want error for name count mismatch")
	}
}

func TestRandomTreeInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		leaves := 2 + r.Intn(60)
		fanout := 2 + r.Intn(6)
		h, err := Build(leaves, fanout, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Every leaf reaches the root; depth+height <= root height.
		rootH := h.Height(h.Root())
		for l := NodeID(0); int(l) < leaves; l++ {
			if !h.IsAncestor(h.Root(), l) {
				t.Fatalf("leaf %d detached", l)
			}
			if h.Depth(l) > rootH {
				t.Fatalf("leaf %d deeper than root height", l)
			}
			if h.Generalize(l, rootH+1) != h.Root() {
				t.Fatalf("leaf %d does not generalize to root", l)
			}
		}
		// LeavesUnder partitions across each node's children.
		for n := NodeID(leaves); int(n) < h.NumNodes(); n++ {
			total := 0
			for _, c := range h.Children(n) {
				total += h.CountLeavesUnder(c)
			}
			if total != h.CountLeavesUnder(n) {
				t.Fatalf("node %d: children cover %d of %d leaves", n, total, h.CountLeavesUnder(n))
			}
		}
	}
}
