// Package mc is the "naive" Monte-Carlo baseline of the paper's
// evaluation (Sections IV-D and V): sample possible worlds uniformly,
// evaluate the aggregate query on each with a deterministic engine (in
// the role of SQL Server), and report the min/max over the sample.
//
// As the paper shows, MC explores a narrow band around the center of
// the answer distribution: random independent choices rarely produce
// the correlated extremes, so the MC range is far inside the exact
// LICM bounds. The samplers here are exactly uniform per uncertainty
// group (non-empty subsets for generalized items, permutations for
// bipartite groups, fixed-size subsets for suppression), which is the
// "all outcomes equally likely" assumption the paper criticizes.
package mc

import (
	"math"
	"math/rand"
	"time"

	"licm/internal/core"
	"licm/internal/encode"
	"licm/internal/engine"
	"licm/internal/expr"
	"licm/internal/obs"
	"licm/internal/queries"
)

// Sampler draws uniform possible worlds from an encoded database.
type Sampler struct {
	enc   *encode.Encoded
	rng   *rand.Rand
	trans *engine.Table
	items *engine.Table
	// assign is reused across samples.
	assign []uint8
	// tr, when set, receives an "mc.run" span per Run with one
	// "mc.sample" event per sampled world (subject to EventEvery).
	tr *obs.Tracer
	// EventEvery downsamples the per-world "mc.sample" trace events:
	// only every EventEvery-th world (the 0th, EventEvery-th, ...) is
	// emitted, and the mc.run span records the number dropped as the
	// samples_dropped attr. 0 or 1 traces every world (the default).
	// Large MC sweeps otherwise dominate a trace file — 500 worlds is
	// 500 lines per run — while the run-level min/max/acceptance
	// summary is usually what the analysis needs.
	EventEvery int
	// Rejection-sampling work for SubsetGE1 groups: attempts counts
	// every candidate subset drawn, accepted the non-empty ones kept.
	subsetAttempts int64
	subsetAccepted int64
	// reg, when set, receives live mc.* instruments per run: worlds
	// sampled, rejection-sampling attempts/accepted, and the last
	// acceptance rate — the dashboard's acceptance-rate feed.
	reg *obs.Registry
}

// SetTracer attaches a tracer to the sampler; nil detaches.
func (s *Sampler) SetTracer(tr *obs.Tracer) { s.tr = tr }

// SetMetrics attaches a metrics registry to the sampler; nil detaches.
func (s *Sampler) SetMetrics(reg *obs.Registry) { s.reg = reg }

// recordRunMetrics publishes one run's sampling work to the registry
// (no-op without SetMetrics). The acceptance rate is stored in parts
// per million, the registry being integer-valued.
func (s *Sampler) recordRunMetrics(worlds int, attempts, accepted int64, rate float64) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("mc.worlds").Add(int64(worlds))
	s.reg.Counter("mc.subset_attempts").Add(attempts)
	s.reg.Counter("mc.subset_accepted").Add(accepted)
	s.reg.Gauge("mc.acceptance_rate_ppm").Set(int64(rate * 1e6))
}

// NewSampler creates a sampler; sampling is deterministic in seed.
func NewSampler(enc *encode.Encoded, seed int64) *Sampler {
	s := &Sampler{
		enc:    enc,
		rng:    rand.New(rand.NewSource(seed)),
		assign: make([]uint8, enc.DB.NumVars()),
		trans:  engine.New("Trans", "TID", "Location"),
		items:  engine.New("Items", "Item", "Price"),
	}
	s.trans.InsertRows(core.Instantiate(enc.Trans, nil))
	s.items.InsertRows(core.Instantiate(enc.Items, nil))
	return s
}

// SampleWorld draws one uniform valid world and materializes it as
// deterministic tables.
func (s *Sampler) SampleWorld() *queries.World {
	s.sampleAssign()
	return s.MaterializeWorld()
}

// sampleAssign draws one uniform valid base assignment into s.assign
// without materializing tables.
func (s *Sampler) sampleAssign() {
	for i := range s.assign {
		s.assign[i] = 0
	}
	for _, g := range s.enc.Groups {
		switch g.Kind {
		case encode.SubsetGE1:
			// Uniform over non-empty subsets by rejection.
			for {
				s.subsetAttempts++
				any := false
				for _, v := range g.Vars {
					if s.rng.Intn(2) == 1 {
						s.assign[v] = 1
						any = true
					} else {
						s.assign[v] = 0
					}
				}
				if any {
					s.subsetAccepted++
					break
				}
			}
		case encode.Permutation:
			perm := s.rng.Perm(len(g.Matrix))
			for i, j := range perm {
				s.assign[g.Matrix[i][j]] = 1
			}
		case encode.ExactCount:
			idx := s.rng.Perm(len(g.Vars))
			for i := 0; i < g.Count && i < len(idx); i++ {
				s.assign[g.Vars[idx[i]]] = 1
			}
		}
	}
}

// MaterializeWorld builds the deterministic tables for the current
// assignment (set by SampleWorld or by the Enumerate oracle).
func (s *Sampler) MaterializeWorld() *queries.World {
	return &queries.World{Trans: s.trans, Items: s.items, TransItem: s.transItemTable()}
}

// transItemTable materializes the TransItem table of the current
// assignment.
func (s *Sampler) transItemTable() *engine.Table {
	if s.enc.TransItem != nil {
		t := engine.New("TransItem", "TID", "Item")
		t.InsertRows(core.Instantiate(s.enc.TransItem, s.assign))
		return t
	}
	// Bipartite: TG ⋈ G ⋈ IG on the instantiated group tables.
	tg := engine.New("TransGroup", "TID", "LNodeID")
	tg.InsertRows(core.Instantiate(s.enc.TransGroup, s.assign))
	ig := engine.New("ItemGroup", "Item", "RNodeID")
	ig.InsertRows(core.Instantiate(s.enc.ItemGroup, s.assign))
	g := engine.New("G", "LNodeID", "RNodeID")
	g.InsertRows(core.Instantiate(s.enc.Graph, nil))
	joined := tg.Join(g, "LNodeID").Join(ig, "RNodeID")
	out := joined.Project("TID", "Item")
	out.Name = "TransItem"
	return out
}

// Valid reports whether the last sampled world satisfies the encoded
// constraint store (a sampler invariant; exercised by tests).
func (s *Sampler) Valid() bool {
	full := make([]uint8, len(s.assign))
	copy(full, s.assign)
	s.enc.DB.Extend(full)
	return s.enc.DB.Valid(full)
}

// Assignment exposes a copy of the last sampled base assignment.
func (s *Sampler) Assignment() []uint8 {
	return append([]uint8(nil), s.assign...)
}

// Result is the outcome of a Monte-Carlo run.
type Result struct {
	Min, Max int64
	Answers  []int64
	// SubsetAttempts and SubsetAccepted count the rejection-sampling
	// draws for SubsetGE1 groups during this run; accepted/attempts is
	// the acceptance rate (1 when no such groups exist). A low rate
	// flags small generalization groups where the non-empty-subset
	// rejection loop dominates sampling cost.
	SubsetAttempts int64
	SubsetAccepted int64
}

// AcceptanceRate returns SubsetAccepted/SubsetAttempts, or 1 when the
// run needed no rejection sampling.
func (r Result) AcceptanceRate() float64 {
	if r.SubsetAttempts == 0 {
		return 1
	}
	return float64(r.SubsetAccepted) / float64(r.SubsetAttempts)
}

// Run samples n worlds and evaluates the query on each, returning the
// observed range — the paper's M_min / M_max series.
func (s *Sampler) Run(q queries.Query, n int) Result {
	sp := s.tr.Start("mc.run", obs.Int("samples", n))
	attempts0, accepted0 := s.subsetAttempts, s.subsetAccepted
	res := Result{Min: 1 << 62, Max: -(1 << 62)}
	every := s.EventEvery
	if every < 1 {
		every = 1
	}
	dropped := 0
	for i := 0; i < n; i++ {
		var t0 time.Time
		if s.tr.Enabled() {
			t0 = time.Now()
		}
		w := s.SampleWorld()
		a := q.Eval(w)
		if s.tr.Enabled() {
			if i%every == 0 {
				sp.Event("mc.sample", obs.Int("i", i), obs.I64("answer", a), obs.DurNs("dur", time.Since(t0)))
			} else {
				dropped++
			}
		}
		res.Answers = append(res.Answers, a)
		if a < res.Min {
			res.Min = a
		}
		if a > res.Max {
			res.Max = a
		}
	}
	if n == 0 {
		res.Min, res.Max = 0, 0
	}
	res.SubsetAttempts = s.subsetAttempts - attempts0
	res.SubsetAccepted = s.subsetAccepted - accepted0
	s.recordRunMetrics(n, res.SubsetAttempts, res.SubsetAccepted, res.AcceptanceRate())
	sp.End(
		obs.I64("min", res.Min),
		obs.I64("max", res.Max),
		obs.F64("acceptance_rate", res.AcceptanceRate()),
		obs.Int("samples_dropped", dropped),
	)
	return res
}

// Estimate summarizes the distribution of a linear objective over a
// set of sampled worlds. It carries no proof: the true optimum can lie
// far outside [Min, Max] (the paper's central criticism of MC), which
// is why the supervisor labels results built from it as Sampled.
type Estimate struct {
	Samples  int
	Min, Max int64
	Mean     float64
	// StdErr is the standard error of Mean (sample standard deviation
	// over sqrt(Samples)); 0 when Samples < 2.
	StdErr float64
}

// EstimateObjective evaluates a linear objective directly on n sampled
// assignments (base variables sampled, derived variables completed via
// the constraint store), skipping table materialization and query
// evaluation. It is the degraded-mode fallback of the solve
// supervisor: when no proven interval exists within budget, a sampled
// range is still better than a bare error.
func (s *Sampler) EstimateObjective(obj expr.Lin, n int) Estimate {
	est := Estimate{Samples: n}
	if n <= 0 {
		return est
	}
	sp := s.tr.Start("mc.estimate", obs.Int("samples", n))
	attempts0, accepted0 := s.subsetAttempts, s.subsetAccepted
	defer func() {
		attempts := s.subsetAttempts - attempts0
		accepted := s.subsetAccepted - accepted0
		rate := 1.0
		if attempts > 0 {
			rate = float64(accepted) / float64(attempts)
		}
		s.recordRunMetrics(n, attempts, accepted, rate)
	}()
	full := make([]uint8, len(s.assign))
	var mean, m2 float64
	for i := 0; i < n; i++ {
		s.sampleAssign()
		copy(full, s.assign)
		s.enc.DB.Extend(full)
		v := obj.Const()
		for _, t := range obj.Terms() {
			if full[t.Var] == 1 {
				v += t.Coef
			}
		}
		if i == 0 || v < est.Min {
			est.Min = v
		}
		if i == 0 || v > est.Max {
			est.Max = v
		}
		d := float64(v) - mean
		mean += d / float64(i+1)
		m2 += d * (float64(v) - mean)
	}
	est.Mean = mean
	if n > 1 {
		est.StdErr = math.Sqrt(m2 / float64(n-1) / float64(n))
	}
	sp.End(
		obs.I64("min", est.Min),
		obs.I64("max", est.Max),
		obs.F64("mean", est.Mean),
		obs.F64("stderr", est.StdErr))
	return est
}

// ExpectedValue returns the average answer over n sampled worlds —
// the "statistically unprincipled" expected value of Section IV-D,
// provided for completeness.
func (s *Sampler) ExpectedValue(q queries.Query, n int) float64 {
	if n <= 0 {
		return 0
	}
	var sum int64
	for i := 0; i < n; i++ {
		sum += q.Eval(s.SampleWorld())
	}
	return float64(sum) / float64(n)
}
