package mc

import (
	"fmt"

	"licm/internal/encode"
)

// Enumerate yields every possible world of an encoded database by
// walking the product of its uncertainty groups (non-empty subsets ×
// permutations × fixed-size subsets). It calls fn with a sampler
// whose current assignment is the world; fn can materialize it via
// the usual accessors. Enumeration stops with an error if the world
// count would exceed maxWorlds.
//
// This is the test oracle counterpart of SampleWorld: exact bounds
// computed by the solver must match the min/max over these worlds.
func Enumerate(enc *encode.Encoded, maxWorlds int, fn func(s *Sampler)) error {
	total := 1
	for _, g := range enc.Groups {
		n := 0
		switch g.Kind {
		case encode.SubsetGE1:
			if len(g.Vars) > 20 {
				return fmt.Errorf("mc: group too large to enumerate (%d vars)", len(g.Vars))
			}
			n = 1<<uint(len(g.Vars)) - 1
		case encode.Permutation:
			n = 1
			for i := 2; i <= len(g.Matrix); i++ {
				n *= i
			}
		case encode.ExactCount:
			n = binom(len(g.Vars), g.Count)
		}
		if n <= 0 {
			return fmt.Errorf("mc: empty uncertainty group")
		}
		total *= n
		if total > maxWorlds {
			return fmt.Errorf("mc: %d+ worlds exceed limit %d", total, maxWorlds)
		}
	}
	s := NewSampler(enc, 0)
	var rec func(gi int)
	rec = func(gi int) {
		if gi == len(enc.Groups) {
			fn(s)
			return
		}
		g := enc.Groups[gi]
		switch g.Kind {
		case encode.SubsetGE1:
			for mask := 1; mask < 1<<uint(len(g.Vars)); mask++ {
				for i, v := range g.Vars {
					if mask&(1<<uint(i)) != 0 {
						s.assign[v] = 1
					} else {
						s.assign[v] = 0
					}
				}
				rec(gi + 1)
			}
		case encode.Permutation:
			k := len(g.Matrix)
			perm := make([]int, k)
			used := make([]bool, k)
			var permRec func(i int)
			permRec = func(i int) {
				if i == k {
					for r := 0; r < k; r++ {
						for c := 0; c < k; c++ {
							s.assign[g.Matrix[r][c]] = 0
						}
					}
					for r, c := range perm {
						s.assign[g.Matrix[r][c]] = 1
					}
					rec(gi + 1)
					return
				}
				for c := 0; c < k; c++ {
					if used[c] {
						continue
					}
					used[c] = true
					perm[i] = c
					permRec(i + 1)
					used[c] = false
				}
			}
			permRec(0)
		case encode.ExactCount:
			n := len(g.Vars)
			idx := make([]int, 0, g.Count)
			var subRec func(start int)
			subRec = func(start int) {
				if len(idx) == g.Count {
					for _, v := range g.Vars {
						s.assign[v] = 0
					}
					for _, i := range idx {
						s.assign[g.Vars[i]] = 1
					}
					rec(gi + 1)
					return
				}
				for i := start; i < n; i++ {
					idx = append(idx, i)
					subRec(i + 1)
					idx = idx[:len(idx)-1]
				}
			}
			subRec(0)
		}
	}
	rec(0)
	return nil
}

func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 1; i <= k; i++ {
		r = r * (n - k + i) / i
	}
	return r
}
