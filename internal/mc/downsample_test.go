package mc_test

import (
	"testing"

	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/queries"
)

// TestEventEveryDownsamples: EventEvery=k keeps every k-th mc.sample
// event (world 0 first) and accounts for the rest in the mc.run span's
// samples_dropped attr. Results are unaffected.
func TestEventEveryDownsamples(t *testing.T) {
	const n = 20
	q := queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 9}, Pb: queries.Pred{Lo: 0, Hi: 9}}
	for _, tc := range []struct {
		every       int
		wantSamples int
	}{
		{0, n},  // default: trace every world
		{1, n},  // explicit default
		{7, 3},  // worlds 0, 7, 14
		{n, 1},  // only world 0
		{99, 1}, // every > n still traces world 0
	} {
		enc := smallEncodings(t, 40, 3)["k-anon"]
		s := mc.NewSampler(enc, 11)
		s.EventEvery = tc.every
		sink := &obs.CollectSink{}
		s.SetTracer(obs.New(sink))
		res := s.Run(q, n)
		if len(res.Answers) != n {
			t.Fatalf("every=%d: %d answers, want %d", tc.every, len(res.Answers), n)
		}
		samples := 0
		var runEnd *obs.Event
		for _, e := range sink.Events() {
			e := e
			switch {
			case e.Kind == obs.KindEvent && e.Name == "mc.sample":
				samples++
			case e.Kind == obs.KindSpanEnd && e.Name == "mc.run":
				runEnd = &e
			}
		}
		if samples != tc.wantSamples {
			t.Errorf("every=%d: %d mc.sample events, want %d", tc.every, samples, tc.wantSamples)
		}
		if runEnd == nil {
			t.Fatalf("every=%d: missing mc.run span_end", tc.every)
		}
		if got := runEnd.Attrs["samples_dropped"]; got != n-tc.wantSamples {
			t.Errorf("every=%d: samples_dropped = %v, want %d", tc.every, got, n-tc.wantSamples)
		}
	}
}

// TestEventEveryUntracedDropsNothing: without a tracer no events exist
// to drop, and downsampling changes no numeric result.
func TestEventEveryUntracedDropsNothing(t *testing.T) {
	q := queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 9}, Pb: queries.Pred{Lo: 0, Hi: 9}}
	enc := smallEncodings(t, 40, 3)["k-anon"]
	plain := mc.NewSampler(enc, 11)
	base := plain.Run(q, 15)

	enc2 := smallEncodings(t, 40, 3)["k-anon"]
	down := mc.NewSampler(enc2, 11)
	down.EventEvery = 5
	sink := &obs.CollectSink{}
	down.SetTracer(obs.New(sink))
	got := down.Run(q, 15)

	if base.Min != got.Min || base.Max != got.Max {
		t.Errorf("downsampling changed results: [%d,%d] vs [%d,%d]", base.Min, base.Max, got.Min, got.Max)
	}
}
