package mc_test

import (
	"testing"

	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/queries"
)

// TestRunTraceAndAcceptance: a traced Run emits the mc.run span with
// one mc.sample event per world, and the k-anon encoding (SubsetGE1
// groups) reports a meaningful rejection-sampling acceptance rate.
func TestRunTraceAndAcceptance(t *testing.T) {
	enc := smallEncodings(t, 40, 3)["k-anon"]
	s := mc.NewSampler(enc, 11)
	sink := &obs.CollectSink{}
	s.SetTracer(obs.New(sink))
	q := queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 9}, Pb: queries.Pred{Lo: 0, Hi: 9}}

	const n = 20
	res := s.Run(q, n)
	if len(res.Answers) != n {
		t.Fatalf("got %d answers, want %d", len(res.Answers), n)
	}

	var runEnd *obs.Event
	samples := 0
	for _, e := range sink.Events() {
		e := e
		switch {
		case e.Kind == obs.KindSpanEnd && e.Name == "mc.run":
			runEnd = &e
		case e.Kind == obs.KindEvent && e.Name == "mc.sample":
			samples++
			if d, ok := e.Attrs["dur"].(int64); !ok || d < 0 {
				t.Errorf("mc.sample dur = %v", e.Attrs["dur"])
			}
		}
	}
	if runEnd == nil {
		t.Fatal("missing mc.run span_end")
	}
	if samples != n {
		t.Errorf("saw %d mc.sample events, want %d", samples, n)
	}
	if runEnd.Attrs["min"] != res.Min || runEnd.Attrs["max"] != res.Max {
		t.Errorf("mc.run attrs min/max = %v/%v, want %d/%d",
			runEnd.Attrs["min"], runEnd.Attrs["max"], res.Min, res.Max)
	}

	// Generalized encodings sample non-empty subsets by rejection, so
	// the run must record at least one attempt per accepted draw.
	if res.SubsetAccepted == 0 {
		t.Error("k-anon run recorded no accepted subset draws")
	}
	if res.SubsetAttempts < res.SubsetAccepted {
		t.Errorf("attempts %d < accepted %d", res.SubsetAttempts, res.SubsetAccepted)
	}
	rate := res.AcceptanceRate()
	if rate <= 0 || rate > 1 {
		t.Errorf("acceptance rate %v out of (0,1]", rate)
	}
	if got := runEnd.Attrs["acceptance_rate"]; got != rate {
		t.Errorf("mc.run acceptance_rate attr = %v, want %v", got, rate)
	}
}

// TestRunUntracedKeepsCounts: acceptance accounting works without a
// tracer, and a second Run reports only its own draws.
func TestRunUntracedKeepsCounts(t *testing.T) {
	enc := smallEncodings(t, 40, 3)["k-anon"]
	s := mc.NewSampler(enc, 11)
	q := queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 9}, Pb: queries.Pred{Lo: 0, Hi: 9}}
	first := s.Run(q, 10)
	second := s.Run(q, 10)
	if first.SubsetAccepted == 0 || second.SubsetAccepted == 0 {
		t.Fatalf("accepted counts: %d, %d", first.SubsetAccepted, second.SubsetAccepted)
	}
	// Equal sample counts over the same encoding: per-run accounting,
	// not cumulative (accepted draws are deterministic per group count).
	if first.SubsetAccepted != second.SubsetAccepted {
		t.Errorf("accepted differs across equal runs: %d vs %d", first.SubsetAccepted, second.SubsetAccepted)
	}
	// The bipartite encoding has no SubsetGE1 groups: rate is 1.
	bip := smallEncodings(t, 40, 3)["bipartite"]
	sb := mc.NewSampler(bip, 11)
	rb := sb.Run(q, 5)
	if rb.SubsetAttempts != 0 || rb.AcceptanceRate() != 1 {
		t.Errorf("bipartite: attempts=%d rate=%v, want 0 and 1", rb.SubsetAttempts, rb.AcceptanceRate())
	}
}
