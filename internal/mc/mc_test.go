package mc_test

import (
	"testing"

	"licm/internal/anon"
	"licm/internal/core"
	"licm/internal/dataset"
	"licm/internal/encode"
	"licm/internal/hierarchy"
	"licm/internal/mc"
	"licm/internal/queries"
	"licm/internal/solver"
)

func smallEncodings(t *testing.T, n int, seed int64) map[string]*encode.Encoded {
	t.Helper()
	cfg := dataset.Config{
		NumTransactions: n,
		NumItems:        32,
		AvgSize:         3,
		MaxSize:         8,
		ZipfS:           1.3,
		LocationRange:   10,
		PriceRange:      10,
		Seed:            seed,
	}
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hierarchy.Build(32, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*encode.Encoded{}
	if g, err := anon.KAnonymize(d, h, 2); err == nil {
		out["k-anon"] = encode.Generalized(g, d.Items)
	} else {
		t.Fatal(err)
	}
	if bg, err := anon.BipartiteAnonymize(d, 2, 2); err == nil {
		out["bipartite"] = encode.Bipartite(d, bg)
	} else {
		t.Fatal(err)
	}
	if sp, err := anon.SuppressAnonymize(d, 3); err == nil {
		out["suppress"] = encode.Suppressed(sp, d.Items)
	} else {
		t.Fatal(err)
	}
	return out
}

// TestSampledWorldsAreValid: every sampled world satisfies the
// encoded constraint store.
func TestSampledWorldsAreValid(t *testing.T) {
	for name, enc := range smallEncodings(t, 40, 1) {
		s := mc.NewSampler(enc, 7)
		for i := 0; i < 25; i++ {
			s.SampleWorld()
			if !s.Valid() {
				t.Fatalf("%s: sample %d invalid", name, i)
			}
		}
	}
}

// TestSamplerDeterministic: same seed, same worlds.
func TestSamplerDeterministic(t *testing.T) {
	encs := smallEncodings(t, 30, 2)
	enc := encs["k-anon"]
	a := mc.NewSampler(enc, 3)
	b := mc.NewSampler(enc, 3)
	for i := 0; i < 5; i++ {
		wa := a.SampleWorld()
		wb := b.SampleWorld()
		ka, kb := wa.TransItem.SortedKeys(), wb.TransItem.SortedKeys()
		if len(ka) != len(kb) {
			t.Fatal("row counts differ")
		}
		for j := range ka {
			if ka[j] != kb[j] {
				t.Fatal("worlds differ under same seed")
			}
		}
	}
}

// TestMCRangeInsideLICMBounds is the paper's core comparison: the MC
// observed range must sit inside the proven outer bounds (exactly the
// bounds when both sides are proven, which they are for this narrow
// selectivity).
func TestMCRangeInsideLICMBounds(t *testing.T) {
	q := queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 0}, Pb: queries.Pred{Lo: 0, Hi: 4}}
	opts := solver.DefaultOptions()
	opts.MaxNodes = 500_000
	for name, enc := range smallEncodings(t, 40, 3) {
		rel, err := q.BuildLICM(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := core.CountBounds(enc.DB, rel, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := mc.NewSampler(enc, 11)
		r := s.Run(q, 20)
		// MinBound <= true min <= MC min and MC max <= true max <=
		// MaxBound always; with proven sides the outer bounds are the
		// true bounds.
		if r.Min < res.MinBound || r.Max > res.MaxBound {
			t.Errorf("%s: MC [%d,%d] outside proven bounds [%d,%d]", name, r.Min, r.Max, res.MinBound, res.MaxBound)
		}
		if res.MinProven && r.Min < res.Min {
			t.Errorf("%s: MC min %d below proven min %d", name, r.Min, res.Min)
		}
		if res.MaxProven && r.Max > res.Max {
			t.Errorf("%s: MC max %d above proven max %d", name, r.Max, res.Max)
		}
		if len(r.Answers) != 20 {
			t.Errorf("%s: %d answers", name, len(r.Answers))
		}
	}
}

func TestRunZeroSamples(t *testing.T) {
	encs := smallEncodings(t, 30, 4)
	s := mc.NewSampler(encs["k-anon"], 1)
	r := s.Run(queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 9}, Pb: queries.Pred{Lo: 0, Hi: 9}}, 0)
	if r.Min != 0 || r.Max != 0 || r.Answers != nil {
		t.Errorf("zero-sample run = %+v", r)
	}
}

func TestExpectedValue(t *testing.T) {
	encs := smallEncodings(t, 30, 5)
	enc := encs["k-anon"]
	q := queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 9}, Pb: queries.Pred{Lo: 0, Hi: 9}}
	s := mc.NewSampler(enc, 13)
	ev := s.ExpectedValue(q, 10)
	if ev <= 0 {
		t.Errorf("expected value %v should be positive for an all-pass predicate", ev)
	}
	if s.ExpectedValue(q, 0) != 0 {
		t.Error("zero samples should give 0")
	}
}

func TestEnumerateCountsWorlds(t *testing.T) {
	// A single generalized group of 3 leaves enumerates 7 worlds.
	d := &dataset.Dataset{
		Items: []dataset.Item{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}},
		Trans: []dataset.Transaction{
			{ID: 0, Location: 0, Items: []int32{0}},
			{ID: 1, Location: 0, Items: []int32{1}},
		},
	}
	h, err := hierarchy.Build(4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := anon.KAnonymize(d, h, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := encode.Generalized(g, d.Items)
	n := 0
	if err := mc.Enumerate(enc, 1000, func(s *mc.Sampler) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no worlds enumerated")
	}
	// Both transactions generalize identically; count = product of
	// per-group non-empty subset counts.
	want := 1
	for _, grp := range enc.Groups {
		want *= 1<<uint(len(grp.Vars)) - 1
	}
	if n != want {
		t.Fatalf("enumerated %d worlds, want %d", n, want)
	}
}

func TestEnumerateLimit(t *testing.T) {
	encs := smallEncodings(t, 40, 6)
	if err := mc.Enumerate(encs["k-anon"], 2, func(*mc.Sampler) {}); err == nil {
		t.Error("want limit error")
	}
}

func TestAssignmentCopy(t *testing.T) {
	encs := smallEncodings(t, 30, 7)
	s := mc.NewSampler(encs["k-anon"], 1)
	s.SampleWorld()
	a := s.Assignment()
	a[0] = 99
	b := s.Assignment()
	if b[0] == 99 {
		t.Error("Assignment must return a copy")
	}
}

func TestEnumeratePermutationWorlds(t *testing.T) {
	// One 3x3 transaction group and one 3x3 item group: 3! x 3! = 36
	// worlds, all valid.
	d := &dataset.Dataset{
		Items: []dataset.Item{{ID: 0}, {ID: 1}, {ID: 2}},
		Trans: []dataset.Transaction{
			{ID: 0, Location: 0, Items: []int32{0}},
			{ID: 1, Location: 1, Items: []int32{1}},
			{ID: 2, Location: 2, Items: []int32{2}},
		},
	}
	bg := &anon.BipartiteGroups{
		TransGroups: [][]int{{0, 1, 2}},
		ItemGroups:  [][]int32{{0, 1, 2}},
	}
	enc := encode.Bipartite(d, bg)
	n := 0
	err := mc.Enumerate(enc, 1000, func(s *mc.Sampler) {
		if !s.Valid() {
			t.Fatal("enumerated permutation world invalid")
		}
		w := s.MaterializeWorld()
		if w.TransItem.Len() != 3 {
			t.Fatalf("bipartite world should keep the edge count: %d", w.TransItem.Len())
		}
		n++
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 36 {
		t.Fatalf("worlds = %d, want 36", n)
	}
}

func TestEnumerateExactCountWorlds(t *testing.T) {
	// Suppression with 4 candidates and one suppressed slot per
	// transaction: C(4,1) per transaction.
	d := &dataset.Dataset{
		Items: []dataset.Item{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}},
		Trans: []dataset.Transaction{
			{ID: 0, Location: 0, Items: []int32{0, 4}},
			{ID: 1, Location: 1, Items: []int32{1, 4}},
			{ID: 2, Location: 2, Items: []int32{2, 4}},
			{ID: 3, Location: 3, Items: []int32{3, 4}},
		},
	}
	s, err := anon.SuppressAnonymize(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := encode.Suppressed(s, d.Items)
	n := 0
	err = mc.Enumerate(enc, 100000, func(smp *mc.Sampler) {
		if !smp.Valid() {
			t.Fatal("invalid world")
		}
		n++
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 256 { // 4 slots x 4 candidates each = 4^4
		t.Fatalf("worlds = %d, want 256", n)
	}
}

func TestSamplerBipartiteWorldsValid(t *testing.T) {
	encs := smallEncodings(t, 40, 8)
	s := mc.NewSampler(encs["bipartite"], 5)
	for i := 0; i < 10; i++ {
		w := s.SampleWorld()
		if !s.Valid() {
			t.Fatalf("sample %d invalid", i)
		}
		if w.TransItem.Len() == 0 {
			t.Fatal("bipartite world lost all edges")
		}
	}
}

func TestMCRunBipartiteAndSuppress(t *testing.T) {
	q := queries.Q1{Pa: queries.Pred{Lo: 0, Hi: 9}, Pb: queries.Pred{Lo: 0, Hi: 9}}
	for name, enc := range smallEncodings(t, 30, 9) {
		s := mc.NewSampler(enc, 2)
		r := s.Run(q, 8)
		if r.Min > r.Max {
			t.Errorf("%s: inverted MC range", name)
		}
		if len(r.Answers) != 8 {
			t.Errorf("%s: %d answers", name, len(r.Answers))
		}
	}
}
