package check

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"licm/internal/expr"
)

// Store is the neutral view of a constraint store that the pass
// analyzes. Both solver.Problem and core.DB project onto it.
type Store struct {
	// NumVars is the number of binary variables; ids are 0..NumVars-1.
	NumVars int
	// Constraints is the constraint set C.
	Constraints []expr.Constraint
	// Objective is optional; an expression with no terms is treated as
	// "no objective" (variable-reachability findings then consider
	// constraint membership only).
	Objective expr.Lin
	// Derived optionally marks lineage variables, which must be tied
	// to their arguments by at least one defining constraint.
	Derived []bool
}

// Analysis limits. They bound the work per constraint to a constant,
// keeping the whole pass linear in the store size.
const (
	// maskSetLimit is the largest variable-set size for which the pass
	// computes the exact joint feasibility of the set's constraints by
	// enumerating all 2^n activations of that set (n <= 8: at most 256
	// evaluations per constraint).
	maskSetLimit = 8
	// overflowBudget is the activation-magnitude threshold above which
	// int64 evaluation of an expression is considered overflow-prone;
	// such constraints get W105 and are excluded from the sound
	// analyses (whose arithmetic must not wrap).
	overflowBudget = math.MaxInt64 / 4
	// coefSmellAbs flags coefficients far beyond anything the paper's
	// binary encodings produce (they are bounded by group sizes).
	coefSmellAbs = int64(1) << 40
	// maxListedVars truncates Vars lists on aggregate diagnostics.
	maxListedVars = 16
)

// Check runs every diagnostic over the store. The returned report
// lists errors first; see the package comment and CHECKS.md for the
// soundness contract per code.
func Check(s Store) Report {
	var diags []Diagnostic

	if d, ok := structural(s); !ok {
		return Report{Diags: []Diagnostic{d}}
	}

	inCons := make([]bool, s.NumVars)
	risky := make([]bool, len(s.Constraints)) // overflow-prone; excluded from sound analyses
	buckets := make(map[string]*bucket)
	var order []string
	seen := make(map[string]int) // full-constraint key -> first index

	for i, c := range s.Constraints {
		for _, t := range c.Lin.Terms() {
			inCons[t.Var] = true
		}

		if mag := activationMagnitude(c.Lin) + abs64(c.RHS); mag > overflowBudget || mag < 0 {
			risky[i] = true
			diags = append(diags, Diagnostic{
				Code: CodeOverflowRisk, Severity: SevWarning,
				Message: fmt.Sprintf("constraint c%d: coefficient magnitudes risk int64 overflow during evaluation", i),
				Cons:    []int{i},
			})
		}
		// flagged: this constraint alone already proves infeasibility;
		// keep it out of the cross-constraint buckets so the same root
		// cause is not reported twice.
		flagged := false
		if !risky[i] {
			if d, ok := smell(i, c); ok {
				diags = append(diags, d)
			}
			if c.Infeasible() {
				flagged = true
				lo, hi := c.Lin.Bounds()
				diags = append(diags, Diagnostic{
					Code: CodeInfeasibleCon, Severity: SevError,
					Message: fmt.Sprintf("constraint c%d (%s) is infeasible: achievable LHS range is [%d, %d]", i, c, lo, hi),
					Cons:    []int{i},
					Vars:    truncVars(termVars(c.Lin)),
				})
			} else if c.Trivial() {
				diags = append(diags, Diagnostic{
					Code: CodeRedundant, Severity: SevWarning,
					Message: fmt.Sprintf("constraint c%d (%s) holds for every 0/1 assignment", i, c),
					Cons:    []int{i},
				})
			} else if d, ok := divisibility(i, c); ok {
				flagged = true
				diags = append(diags, d)
			}
		}

		key := conKey(c)
		if first, dup := seen[key]; dup {
			diags = append(diags, Diagnostic{
				Code: CodeDuplicate, Severity: SevWarning,
				Message: fmt.Sprintf("constraint c%d (%s) duplicates c%d exactly", i, c, first),
				Cons:    []int{first, i},
			})
		} else {
			seen[key] = i
		}

		if c.Lin.Len() > 0 && !risky[i] && !flagged {
			sk := setKey(c.Lin)
			b := buckets[sk]
			if b == nil {
				b = &bucket{vars: termVars(c.Lin)}
				buckets[sk] = b
				order = append(order, sk)
			}
			b.add(i, c)
		}
	}

	for _, sk := range order {
		diags = append(diags, buckets[sk].analyze(s.Constraints)...)
	}

	diags = append(diags, varFindings(s, inCons)...)

	sortDiags(diags)
	return Report{Diags: diags}
}

// structural verifies the store is analyzable: variable ids in range
// and expressions normalized (sorted by variable, no duplicate or
// zero-coefficient terms). A malformed store yields a single C000.
func structural(s Store) (Diagnostic, bool) {
	bad := func(msg string, args ...any) (Diagnostic, bool) {
		return Diagnostic{
			Code: CodeMalformed, Severity: SevError,
			Message: fmt.Sprintf(msg, args...),
		}, false
	}
	if s.NumVars < 0 {
		return bad("store has negative NumVars (%d)", s.NumVars)
	}
	if s.Derived != nil && len(s.Derived) != s.NumVars {
		return bad("Derived has length %d but the store has %d variables", len(s.Derived), s.NumVars)
	}
	checkLin := func(l expr.Lin, what string) (Diagnostic, bool) {
		prev := expr.Var(-1)
		for _, t := range l.Terms() {
			if t.Var < 0 || int(t.Var) >= s.NumVars {
				return bad("%s references variable b%d outside [0,%d)", what, t.Var, s.NumVars)
			}
			if t.Coef == 0 {
				return bad("%s has a zero-coefficient term for b%d", what, t.Var)
			}
			if t.Var == prev {
				return bad("%s has duplicate terms for b%d", what, t.Var)
			}
			if t.Var < prev {
				return bad("%s terms are not sorted by variable id", what)
			}
			prev = t.Var
		}
		return Diagnostic{}, true
	}
	if d, ok := checkLin(s.Objective, "objective"); !ok {
		return d, false
	}
	for i, c := range s.Constraints {
		if d, ok := checkLin(c.Lin, fmt.Sprintf("constraint c%d", i)); !ok {
			return d, false
		}
	}
	return Diagnostic{}, true
}

// divisibility reports an equality whose left-hand side can only take
// multiples of g while the right-hand side is not one.
func divisibility(i int, c expr.Constraint) (Diagnostic, bool) {
	if c.Op != expr.EQ || c.Lin.Len() == 0 {
		return Diagnostic{}, false
	}
	g := int64(0)
	for _, t := range c.Lin.Terms() {
		g = gcd64(g, abs64(t.Coef))
	}
	rhs := c.RHS - c.Lin.Const()
	if g > 1 && rhs%g != 0 {
		return Diagnostic{
			Code: CodeDivisibility, Severity: SevError,
			Message: fmt.Sprintf("constraint c%d (%s) is infeasible: the LHS is always a multiple of %d, the RHS is not", i, c, g),
			Cons:    []int{i},
			Vars:    truncVars(termVars(c.Lin)),
		}, true
	}
	return Diagnostic{}, false
}

// smell flags coefficients far outside the binary-encoding range.
func smell(i int, c expr.Constraint) (Diagnostic, bool) {
	for _, t := range c.Lin.Terms() {
		if abs64(t.Coef) >= coefSmellAbs {
			return Diagnostic{
				Code: CodeCoefSmell, Severity: SevWarning,
				Message: fmt.Sprintf("constraint c%d: coefficient %d of b%d is far outside the range binary encodings produce; suspected encoding error", i, t.Coef, t.Var),
				Cons:    []int{i},
				Vars:    []expr.Var{t.Var},
			}, true
		}
	}
	return Diagnostic{}, false
}

// bucket groups the constraints sharing one exact variable set.
type bucket struct {
	vars []expr.Var
	cons []int
	cs   []expr.Constraint

	// Count interval implied by the unit-coefficient members:
	// lo <= sum(vars) <= hi, with the constraint indices that set each
	// side (-1 when the side is still the trivial 0/n bound).
	lo, hi     int64
	loC, hiC   int
	unitMember bool
}

func (b *bucket) add(i int, c expr.Constraint) {
	if len(b.cons) == 0 {
		b.lo, b.hi = 0, int64(len(b.vars))
		b.loC, b.hiC = -1, -1
	}
	b.cons = append(b.cons, i)
	b.cs = append(b.cs, c)
	if !allUnit(c.Lin) {
		return
	}
	b.unitMember = true
	rhs := c.RHS - c.Lin.Const()
	set := func(side *int64, idx *int, v int64, tighter func(int64, int64) bool) {
		if tighter(v, *side) {
			*side = v
			*idx = i
		}
	}
	switch c.Op {
	case expr.GE:
		set(&b.lo, &b.loC, rhs, func(a, b int64) bool { return a > b })
	case expr.LE:
		set(&b.hi, &b.hiC, rhs, func(a, b int64) bool { return a < b })
	case expr.EQ:
		set(&b.lo, &b.loC, rhs, func(a, b int64) bool { return a > b })
		set(&b.hi, &b.hiC, rhs, func(a, b int64) bool { return a < b })
	}
}

// analyze emits the cross-constraint findings for the bucket:
// contradictory count bounds (C002) from the unit-coefficient
// interval, and exact joint unsatisfiability (C003) for small sets.
func (b *bucket) analyze(all []expr.Constraint) []Diagnostic {
	var diags []Diagnostic
	if b.unitMember && b.lo > b.hi && len(b.cons) >= 2 {
		wit := witnesses(b.loC, b.hiC, b.cons)
		diags = append(diags, Diagnostic{
			Code: CodeBoundClash, Severity: SevError,
			Message: fmt.Sprintf("contradictory cardinality bounds over {%s}: constraints demand at least %d and at most %d existing tuples",
				varList(b.vars), b.lo, b.hi),
			Cons: wit,
			Vars: truncVars(b.vars),
		})
		return diags
	}
	if len(b.vars) > maskSetLimit {
		return diags
	}
	// Exact joint check: AND together each constraint's satisfied-
	// assignment bitset over the 2^n activations of the set. Constant
	// work per constraint (n <= maskSetLimit). Individually-infeasible
	// constraints never reach the bucket, so an empty intersection here
	// is a genuinely cross-constraint (or parity-style) contradiction
	// — e.g. a mutex against a co-existence over the same pair, or
	// 2*b0 + 3*b1 = 1.
	n := len(b.vars)
	live := make([]uint64, (1<<uint(n)+63)/64)
	for i := range live {
		live[i] = math.MaxUint64
	}
	for _, c := range b.cs {
		for a := 0; a < 1<<uint(n); a++ {
			if !holdsActivation(c, b.vars, uint64(a)) {
				live[a/64] &^= 1 << uint(a%64)
			}
		}
	}
	any := uint64(0)
	for a := 0; a < 1<<uint(n); a++ {
		any |= live[a/64] & (1 << uint(a%64))
	}
	if any == 0 {
		diags = append(diags, Diagnostic{
			Code: CodeGroupUnsat, Severity: SevError,
			Message: fmt.Sprintf("the %d constraint(s) over {%s} admit no joint 0/1 assignment", len(b.cons), varList(b.vars)),
			Cons:    append([]int(nil), b.cons...),
			Vars:    truncVars(b.vars),
		})
	}
	return diags
}

func holdsActivation(c expr.Constraint, vars []expr.Var, a uint64) bool {
	return c.Holds(func(v expr.Var) bool {
		for i, bv := range vars {
			if bv == v {
				return a&(1<<uint(i)) != 0
			}
		}
		return false
	})
}

// varFindings emits the variable-level aggregates: unreachable
// variables (W103) and dangling derived variables (W104).
func varFindings(s Store, inCons []bool) []Diagnostic {
	var diags []Diagnostic
	inObj := make(map[expr.Var]bool, s.Objective.Len())
	for _, t := range s.Objective.Terms() {
		inObj[t.Var] = true
	}
	derived := func(v int) bool { return s.Derived != nil && s.Derived[v] }
	var unreachable, dangling []expr.Var
	for v := 0; v < s.NumVars; v++ {
		switch {
		case derived(v) && !inCons[v]:
			dangling = append(dangling, expr.Var(v))
		case !inCons[v] && !inObj[expr.Var(v)]:
			unreachable = append(unreachable, expr.Var(v))
		}
	}
	if len(dangling) > 0 {
		diags = append(diags, Diagnostic{
			Code: CodeDangling, Severity: SevWarning,
			Message: fmt.Sprintf("%d derived variable(s) have no defining constraint (first: %s); their values are unconstrained instead of determined by lineage",
				len(dangling), varList(truncVars(dangling))),
			Vars: truncVars(dangling),
		})
	}
	if len(unreachable) > 0 {
		diags = append(diags, Diagnostic{
			Code: CodeUnreachable, Severity: SevWarning,
			Message: fmt.Sprintf("%d variable(s) appear in no constraint and not in the objective (first: %s)",
				len(unreachable), varList(truncVars(unreachable))),
			Vars: truncVars(unreachable),
		})
	}
	// Objective overflow is the same hazard as constraint overflow.
	if mag := activationMagnitude(s.Objective); mag > overflowBudget || mag < 0 {
		diags = append(diags, Diagnostic{
			Code: CodeOverflowRisk, Severity: SevWarning,
			Message: "objective coefficient magnitudes risk int64 overflow during evaluation",
		})
	}
	return diags
}

// activationMagnitude is sum(|coef|) + |const| with saturation; a
// negative result signals saturation overflow.
func activationMagnitude(l expr.Lin) int64 {
	s := abs64(l.Const())
	for _, t := range l.Terms() {
		s += abs64(t.Coef)
		if s < 0 {
			return -1
		}
	}
	return s
}

func allUnit(l expr.Lin) bool {
	for _, t := range l.Terms() {
		if t.Coef != 1 {
			return false
		}
	}
	return true
}

func witnesses(loC, hiC int, cons []int) []int {
	var w []int
	add := func(i int) {
		if i < 0 {
			return
		}
		for _, e := range w {
			if e == i {
				return
			}
		}
		w = append(w, i)
	}
	add(loC)
	add(hiC)
	if len(w) == 0 {
		w = append(w, cons...)
	}
	sort.Ints(w)
	return w
}

func termVars(l expr.Lin) []expr.Var {
	vs := make([]expr.Var, l.Len())
	for i, t := range l.Terms() {
		vs[i] = t.Var
	}
	return vs
}

func truncVars(vs []expr.Var) []expr.Var {
	if len(vs) > maxListedVars {
		vs = vs[:maxListedVars]
	}
	return append([]expr.Var(nil), vs...)
}

func varList(vs []expr.Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("b%d", v)
	}
	return strings.Join(parts, ", ")
}

func setKey(l expr.Lin) string {
	var sb strings.Builder
	for _, t := range l.Terms() {
		fmt.Fprintf(&sb, "%d,", t.Var)
	}
	return sb.String()
}

func conKey(c expr.Constraint) string {
	var sb strings.Builder
	for _, t := range c.Lin.Terms() {
		fmt.Fprintf(&sb, "%d*%d,", t.Coef, t.Var)
	}
	fmt.Fprintf(&sb, "|%d|%d|%d", c.Lin.Const(), c.Op, c.RHS)
	return sb.String()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
