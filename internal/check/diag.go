// Package check is a vet-style static diagnostics pass for LICM
// constraint stores: a linear-time (no search) analysis over binary
// integer linear constraints that reports proven infeasibilities,
// likely-contradictory cardinality bounds, redundant or duplicated
// constraints, dangling lineage variables, and overflow-prone
// coefficients — before a store is handed to the optimizer.
//
// The motivating failure mode is a store produced by query
// translation, anonymization, or hand construction whose defects
// surface only as a confusing ErrInfeasible (or a silently wrong
// bound) deep inside a long solve. The checks here are deliberately
// cheap and sound: an ERROR-severity diagnostic proves the store is
// infeasible (no 0/1 assignment satisfies the constraint set), while
// WARNING diagnostics never change semantics — they flag smells that
// are worth a look but are compatible with a feasible store.
//
// CHECKS.md catalogs every diagnostic code with a minimal triggering
// example. The pass is wired in three places: the licmvet command
// (standalone vetting of LP-format stores), solver.Options.Check
// (an opt-in fast path that turns a proven-infeasible store into an
// immediate ErrInfeasible with the diagnostics attached), and
// core.DB.Check (vetting a database while operators build it up).
package check

import (
	"fmt"
	"sort"
	"strings"

	"licm/internal/expr"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities. SevError diagnostics are sound proofs of infeasibility
// (except C000, which reports a malformed store that cannot be
// analyzed at all); SevWarning diagnostics never change semantics.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String returns the conventional upper-case name.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "INFO"
	case SevWarning:
		return "WARNING"
	case SevError:
		return "ERROR"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Code identifies one kind of finding. C-codes are errors, W-codes
// warnings; the numbering is stable and documented in CHECKS.md.
type Code string

// Diagnostic codes.
const (
	// CodeMalformed: the store is structurally invalid (out-of-range
	// variable ids, non-normalized expressions) and was not analyzed.
	// Unlike every other C-code it does not prove infeasibility.
	CodeMalformed Code = "C000"
	// CodeInfeasibleCon: a single constraint no 0/1 assignment can
	// satisfy (activation-bound analysis: the min/max achievable LHS
	// excludes the RHS).
	CodeInfeasibleCon Code = "C001"
	// CodeBoundClash: two cardinality constraints over the same
	// variable set demand contradictory counts (e.g. sum >= k and
	// sum <= k' with k' < k).
	CodeBoundClash Code = "C002"
	// CodeGroupUnsat: the constraints over one small variable set
	// (at most 8 variables) admit no joint 0/1 assignment — e.g. a
	// mutex and a co-existence constraint over the same pair.
	CodeGroupUnsat Code = "C003"
	// CodeDivisibility: an equality whose coefficients share a common
	// divisor that does not divide the right-hand side.
	CodeDivisibility Code = "C004"
	// CodeRedundant: a constraint that holds for every 0/1 assignment.
	CodeRedundant Code = "W101"
	// CodeDuplicate: a constraint textually identical to an earlier one.
	CodeDuplicate Code = "W102"
	// CodeUnreachable: variables appearing in no constraint and not in
	// the objective; they cannot influence any query answer.
	CodeUnreachable Code = "W103"
	// CodeDangling: derived (lineage) variables with no defining
	// constraint; their value is unconstrained instead of determined.
	CodeDangling Code = "W104"
	// CodeOverflowRisk: coefficient magnitudes large enough that
	// evaluating the expression could overflow int64.
	CodeOverflowRisk Code = "W105"
	// CodeCoefSmell: a coefficient far outside the range any of the
	// paper's binary encodings produce; usually an encoding bug.
	CodeCoefSmell Code = "W106"
)

// Diagnostic is one structured finding.
type Diagnostic struct {
	Code     Code       `json:"code"`
	Severity Severity   `json:"severity"`
	Message  string     `json:"message"`
	Vars     []expr.Var `json:"vars,omitempty"` // involved variables (possibly truncated; the message carries totals)
	Cons     []int      `json:"cons,omitempty"` // indices of involved constraints in the store
}

// String renders the diagnostic on one line, e.g.
// "ERROR C002: ... (constraints c1, c4)".
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s: %s", d.Severity, d.Code, d.Message)
	if len(d.Cons) > 0 {
		parts := make([]string, len(d.Cons))
		for i, c := range d.Cons {
			parts[i] = fmt.Sprintf("c%d", c)
		}
		fmt.Fprintf(&sb, " (constraints %s)", strings.Join(parts, ", "))
	}
	return sb.String()
}

// Report is the outcome of a Check call.
type Report struct {
	Diags []Diagnostic
}

// HasErrors reports whether any diagnostic has SevError severity
// (including C000).
func (r Report) HasErrors() bool {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			return true
		}
	}
	return false
}

// ProvenInfeasible reports whether the diagnostics prove the store
// has no satisfying 0/1 assignment: any SevError finding other than
// C000 (a malformed store is broken, not necessarily infeasible).
func (r Report) ProvenInfeasible() bool {
	for _, d := range r.Diags {
		if d.Severity == SevError && d.Code != CodeMalformed {
			return true
		}
	}
	return false
}

// Count returns the number of diagnostics with the given severity.
func (r Report) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// String renders all diagnostics, one per line.
func (r Report) String() string {
	var sb strings.Builder
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// sortDiags orders errors first, then warnings, each group by first
// involved constraint (variable-level findings, which carry no
// constraint, come last within their group).
func sortDiags(diags []Diagnostic) {
	key := func(d Diagnostic) int {
		if len(d.Cons) == 0 {
			return 1 << 30
		}
		return d.Cons[0]
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Severity != diags[j].Severity {
			return diags[i].Severity > diags[j].Severity
		}
		return key(diags[i]) < key(diags[j])
	})
}
