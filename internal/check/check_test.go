package check

import (
	"math"
	"strings"
	"testing"

	"licm/internal/expr"
)

func lin(terms ...expr.Term) expr.Lin { return expr.NewLin(0, terms...) }

func t64(v expr.Var, c int64) expr.Term { return expr.Term{Var: v, Coef: c} }

func codes(r Report) []Code {
	cs := make([]Code, len(r.Diags))
	for i, d := range r.Diags {
		cs[i] = d.Code
	}
	return cs
}

func hasCode(r Report, c Code) bool {
	for _, d := range r.Diags {
		if d.Code == c {
			return true
		}
	}
	return false
}

func TestCleanStore(t *testing.T) {
	// b0 + b1 >= 1 with objective b0 + b1: nothing to report.
	s := Store{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1),
		},
		Objective: expr.Sum(0, 1),
	}
	r := Check(s)
	if len(r.Diags) != 0 {
		t.Fatalf("clean store produced diagnostics: %v", r)
	}
	if r.HasErrors() || r.ProvenInfeasible() {
		t.Fatal("clean store flagged")
	}
}

func TestInfeasibleConstraint(t *testing.T) {
	cases := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1), expr.GE, 3),  // max achievable 2
		expr.NewConstraint(expr.Sum(0, 1), expr.LE, -1), // min achievable 0
		expr.NewConstraint(expr.Sum(0), expr.EQ, 2),
		expr.NewConstraint(lin(t64(0, -2)), expr.GE, 1),
	}
	for _, c := range cases {
		r := Check(Store{NumVars: 2, Constraints: []expr.Constraint{c}})
		if !hasCode(r, CodeInfeasibleCon) {
			t.Errorf("constraint %v: want C001, got %v", c, codes(r))
		}
		if !r.ProvenInfeasible() {
			t.Errorf("constraint %v: not marked infeasible", c)
		}
	}
}

func TestBoundClash(t *testing.T) {
	// sum >= 3 and sum <= 2 over the same 4-variable set — classic
	// contradictory cardinality bounds. The set has more than 8
	// variables? No: keep it above the mask limit to exercise the
	// interval path specifically.
	vars := make([]expr.Var, 12)
	for i := range vars {
		vars[i] = expr.Var(i)
	}
	s := Store{
		NumVars: 12,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(vars...), expr.GE, 7),
			expr.NewConstraint(expr.Sum(vars...), expr.LE, 5),
		},
	}
	r := Check(s)
	if !hasCode(r, CodeBoundClash) {
		t.Fatalf("want C002, got %v", codes(r))
	}
	var d Diagnostic
	for _, x := range r.Diags {
		if x.Code == CodeBoundClash {
			d = x
		}
	}
	if len(d.Cons) != 2 || d.Cons[0] != 0 || d.Cons[1] != 1 {
		t.Fatalf("C002 witnesses = %v, want [0 1]", d.Cons)
	}
}

func TestEqClash(t *testing.T) {
	vars := []expr.Var{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s := Store{
		NumVars: 10,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(vars...), expr.EQ, 3),
			expr.NewConstraint(expr.Sum(vars...), expr.EQ, 4),
		},
	}
	if r := Check(s); !r.ProvenInfeasible() {
		t.Fatalf("conflicting equalities not flagged: %v", codes(r))
	}
}

func TestMutexVsCoexist(t *testing.T) {
	// b0 + b1 = 1 (mutex) against b0 - b1 = 0 (co-existence): no joint
	// assignment. Caught by the exact small-set mask (C003).
	s := Store{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.EQ, 1),
			expr.NewConstraint(lin(t64(0, 1), t64(1, -1)), expr.EQ, 0),
		},
	}
	r := Check(s)
	if !hasCode(r, CodeGroupUnsat) {
		t.Fatalf("want C003, got %v", codes(r))
	}
}

func TestParitySingleConstraint(t *testing.T) {
	// 2*b0 + 3*b1 = 1: interval [0,5] contains 1 and gcd(2,3)=1, so
	// neither C001 nor C004 applies — the exact mask must catch it.
	s := Store{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(lin(t64(0, 2), t64(1, 3)), expr.EQ, 1),
		},
	}
	r := Check(s)
	if !r.ProvenInfeasible() {
		t.Fatalf("parity-infeasible equality not flagged: %v", codes(r))
	}
}

func TestDivisibility(t *testing.T) {
	// 2*b0 + 2*b1 + 2*b2 + ... = odd over a large set (no mask).
	terms := make([]expr.Term, 12)
	for i := range terms {
		terms[i] = t64(expr.Var(i), 2)
	}
	s := Store{
		NumVars: 12,
		Constraints: []expr.Constraint{
			expr.NewConstraint(lin(terms...), expr.EQ, 7),
		},
	}
	r := Check(s)
	if !hasCode(r, CodeDivisibility) {
		t.Fatalf("want C004, got %v", codes(r))
	}
}

func TestRedundantAndDuplicate(t *testing.T) {
	c := expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1)
	s := Store{
		NumVars: 2,
		Constraints: []expr.Constraint{
			c,
			expr.NewConstraint(expr.Sum(0, 1), expr.LE, 2), // always true
			c, // exact duplicate of c0
		},
	}
	r := Check(s)
	if !hasCode(r, CodeRedundant) {
		t.Errorf("want W101, got %v", codes(r))
	}
	if !hasCode(r, CodeDuplicate) {
		t.Errorf("want W102, got %v", codes(r))
	}
	if r.HasErrors() {
		t.Errorf("warnings-only store reported errors: %v", r)
	}
}

func TestUnreachableAndDangling(t *testing.T) {
	s := Store{
		NumVars: 4,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0), expr.LE, 1),
		},
		Objective: expr.Sum(1),
		Derived:   []bool{false, false, false, true},
	}
	// b0 constrained, b1 in objective, b2 unreachable, b3 derived with
	// no defining constraint.
	r := Check(s)
	var unreach, dangling *Diagnostic
	for i := range r.Diags {
		switch r.Diags[i].Code {
		case CodeUnreachable:
			unreach = &r.Diags[i]
		case CodeDangling:
			dangling = &r.Diags[i]
		}
	}
	if unreach == nil || len(unreach.Vars) != 1 || unreach.Vars[0] != 2 {
		t.Errorf("W103 = %+v, want exactly b2", unreach)
	}
	if dangling == nil || len(dangling.Vars) != 1 || dangling.Vars[0] != 3 {
		t.Errorf("W104 = %+v, want exactly b3", dangling)
	}
}

func TestOverflowRisk(t *testing.T) {
	huge := int64(math.MaxInt64 / 2)
	s := Store{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(lin(t64(0, huge), t64(1, huge)), expr.LE, 1),
		},
		Objective: lin(t64(0, huge), t64(1, huge)),
	}
	r := Check(s)
	n := 0
	for _, d := range r.Diags {
		if d.Code == CodeOverflowRisk {
			n++
		}
	}
	if n != 2 { // one for the constraint, one for the objective
		t.Fatalf("want 2 W105 findings, got %d in %v", n, codes(r))
	}
	// Overflow-prone constraints must not produce ERROR findings: the
	// sound analyses cannot trust wrapped arithmetic.
	if r.HasErrors() {
		t.Fatalf("overflow-risk store wrongly marked infeasible: %v", r)
	}
}

func TestCoefficientSmell(t *testing.T) {
	s := Store{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(lin(t64(0, 1<<41), t64(1, 1)), expr.LE, 1<<41),
		},
	}
	if r := Check(s); !hasCode(r, CodeCoefSmell) {
		t.Fatalf("want W106, got %v", codes(r))
	}
}

func TestMalformedStore(t *testing.T) {
	cases := []Store{
		{NumVars: -1},
		{NumVars: 1, Derived: []bool{true, false}},
		{NumVars: 1, Constraints: []expr.Constraint{
			{Lin: expr.Sum(5), Op: expr.LE, RHS: 1}, // b5 out of range
		}},
		{NumVars: 3, Constraints: []expr.Constraint{
			{Lin: expr.RawLin(0, []expr.Term{{Var: 1, Coef: 1}, {Var: 1, Coef: 1}}), Op: expr.LE, RHS: 1},
		}},
		{NumVars: 3, Constraints: []expr.Constraint{
			{Lin: expr.RawLin(0, []expr.Term{{Var: 1, Coef: 0}}), Op: expr.LE, RHS: 1},
		}},
		{NumVars: 3, Constraints: []expr.Constraint{
			{Lin: expr.RawLin(0, []expr.Term{{Var: 2, Coef: 1}, {Var: 0, Coef: 1}}), Op: expr.LE, RHS: 1},
		}},
	}
	for i, s := range cases {
		r := Check(s)
		if len(r.Diags) != 1 || r.Diags[0].Code != CodeMalformed {
			t.Errorf("case %d: got %v, want exactly one C000", i, codes(r))
		}
		if r.ProvenInfeasible() {
			t.Errorf("case %d: C000 must not claim infeasibility", i)
		}
	}
}

func TestReportRendering(t *testing.T) {
	s := Store{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.GE, 3),
		},
	}
	out := Check(s).String()
	if !strings.Contains(out, "ERROR C001") || !strings.Contains(out, "c0") {
		t.Fatalf("report rendering missing code or constraint: %q", out)
	}
}

func TestErrorsSortFirst(t *testing.T) {
	s := Store{
		NumVars: 4,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.LE, 2), // W101
			expr.NewConstraint(expr.Sum(2, 3), expr.GE, 3), // C001
		},
	}
	r := Check(s)
	if len(r.Diags) < 2 || r.Diags[0].Severity != SevError {
		t.Fatalf("errors not sorted first: %v", r)
	}
}
