package check_test

// Consistency fuzzing for the static diagnostics pass, backing the
// soundness contract in two ways:
//
//   - FuzzCheckSound: on arbitrary random small stores, any
//     ProvenInfeasible report must agree with brute-force enumeration
//     of all 2^n worlds (an ERROR diagnostic is a proof, never a
//     heuristic).
//
//   - FuzzCheckSolverAgree: on stores drawn from the structured
//     families the pass is exact for (constraints over variable-
//     disjoint groups: arbitrary small-coefficient sets of <= 8
//     variables, which the activation mask decides exactly, and
//     all-unit cardinality groups of any size, which the count
//     interval decides exactly), the verdict must agree with the BIP
//     solver in both directions: an ERROR diagnostic implies
//     solver.ErrInfeasible, and an error-free report implies the
//     solver finds an optimum.

import (
	"errors"
	"testing"

	"licm/internal/check"
	"licm/internal/expr"
	"licm/internal/solver"
)

// byteReader drains a fuzz payload one bounded value at a time.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// intn returns a value in [0, n).
func (r *byteReader) intn(n int) int { return int(r.byte()) % n }

func (r *byteReader) done() bool { return r.pos >= len(r.data) }

// bruteSatisfiable enumerates every 0/1 assignment.
func bruteSatisfiable(numVars int, cons []expr.Constraint) bool {
	for a := 0; a < 1<<uint(numVars); a++ {
		val := func(v expr.Var) bool { return a&(1<<uint(v)) != 0 }
		ok := true
		for _, c := range cons {
			if !c.Holds(val) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// genArbitrary builds an unconstrained-shape random store: any
// variable mix per constraint, coefficients in [-3,3].
func genArbitrary(r *byteReader) check.Store {
	numVars := 1 + r.intn(10)
	var cons []expr.Constraint
	for len(cons) < 14 && !r.done() {
		nTerms := 1 + r.intn(6)
		terms := make([]expr.Term, 0, nTerms)
		for t := 0; t < nTerms; t++ {
			coef := int64(r.intn(7)) - 3
			if coef == 0 {
				coef = 1
			}
			terms = append(terms, expr.Term{Var: expr.Var(r.intn(numVars)), Coef: coef})
		}
		op := expr.Op(r.intn(3))
		rhs := int64(r.intn(13)) - 6
		cons = append(cons, expr.NewConstraint(expr.NewLin(0, terms...), op, rhs))
	}
	var objTerms []expr.Term
	for v := 0; v < numVars; v++ {
		objTerms = append(objTerms, expr.Term{Var: expr.Var(v), Coef: int64(r.intn(5)) - 2})
	}
	return check.Store{
		NumVars:     numVars,
		Constraints: cons,
		Objective:   expr.NewLin(0, objTerms...),
	}
}

func FuzzCheckSound(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 2, 0, 9})
	f.Add([]byte{9, 4, 0, 1, 2, 3, 1, 12, 4, 0, 1, 2, 3, 0, 1})
	f.Add([]byte("licm-check-soundness"))
	f.Add([]byte{1, 1, 0, 2, 5, 1, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		s := genArbitrary(r)
		rep := check.Check(s)
		if !rep.ProvenInfeasible() {
			return
		}
		if bruteSatisfiable(s.NumVars, s.Constraints) {
			t.Fatalf("unsound ERROR diagnostic on a satisfiable store:\n%v\nconstraints: %v", rep, s.Constraints)
		}
	})
}

// genGrouped builds a store from variable-disjoint groups on which
// the pass is a decision procedure (see the file comment), so the
// check verdict and the solver must agree exactly.
func genGrouped(r *byteReader) check.Store {
	numGroups := 1 + r.intn(4)
	var cons []expr.Constraint
	next := 0
	for g := 0; g < numGroups; g++ {
		big := r.intn(4) == 0
		size := 1 + r.intn(8)
		if big {
			size = 9 + r.intn(4)
		}
		vars := make([]expr.Var, size)
		for i := range vars {
			vars[i] = expr.Var(next)
			next++
		}
		nCons := 1 + r.intn(3)
		for c := 0; c < nCons; c++ {
			terms := make([]expr.Term, size)
			for i, v := range vars {
				coef := int64(1)
				if !big {
					coef = int64(r.intn(7)) - 3
					if coef == 0 {
						coef = 1
					}
				}
				terms[i] = expr.Term{Var: v, Coef: coef}
			}
			op := expr.Op(r.intn(3))
			rhs := int64(r.intn(2*size+5)) - int64(size) - 2
			if big {
				rhs = int64(r.intn(size + 3))
			}
			cons = append(cons, expr.NewConstraint(expr.NewLin(0, terms...), op, rhs))
		}
	}
	var objTerms []expr.Term
	for v := 0; v < next; v++ {
		objTerms = append(objTerms, expr.Term{Var: expr.Var(v), Coef: int64(r.intn(5)) - 2})
	}
	return check.Store{
		NumVars:     next,
		Constraints: cons,
		Objective:   expr.NewLin(0, objTerms...),
	}
}

func FuzzCheckSolverAgree(f *testing.F) {
	f.Add([]byte{0, 0, 3, 1, 2, 0, 4, 9})
	f.Add([]byte{2, 1, 5, 0, 2, 1, 1, 3, 2, 2, 0, 0, 7, 7})
	f.Add([]byte("agreement-between-check-and-solver"))
	f.Add([]byte{3, 0, 2, 2, 1, 0, 1, 2, 2, 0, 1, 1, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		s := genGrouped(r)
		rep := check.Check(s)
		p := &solver.Problem{
			NumVars:     s.NumVars,
			Constraints: s.Constraints,
			Objective:   s.Objective,
		}
		_, err := solver.Maximize(p, solver.DefaultOptions())
		switch {
		case rep.ProvenInfeasible():
			if !errors.Is(err, solver.ErrInfeasible) {
				t.Fatalf("check proved infeasibility but the solver returned %v\nreport:\n%v\nconstraints: %v",
					err, rep, s.Constraints)
			}
		case !rep.HasErrors():
			if err != nil {
				t.Fatalf("error-free report but the solver failed: %v\nconstraints: %v", err, s.Constraints)
			}
		}
	})
}
