package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestUnarmedIsNoop(t *testing.T) {
	if Enabled() {
		t.Fatal("Enabled() with no plan armed")
	}
	if a := Check(CtrlBatch); a != None {
		t.Fatalf("unarmed Check = %v, want None", a)
	}
}

func TestFiresExactlyOnceAtChosenHit(t *testing.T) {
	disarm := Arm(Plan{Site: CtrlBatch, Hit: 2, Action: Panic})
	defer disarm()
	got := make([]Action, 0, 5)
	for i := 0; i < 5; i++ {
		got = append(got, Check(CtrlBatch))
	}
	want := []Action{None, None, Panic, None, None}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: action %v, want %v", i, got[i], want[i])
		}
	}
	if h := Hits(CtrlBatch); h != 5 {
		t.Fatalf("Hits = %d, want 5", h)
	}
}

func TestSitesCountIndependently(t *testing.T) {
	disarm := Arm(Plan{Site: LPPivot, Hit: 0, Action: JitterNaN})
	defer disarm()
	if a := Check(CtrlBatch); a != None {
		t.Fatalf("CtrlBatch fired a plan armed for LPPivot: %v", a)
	}
	if a := Check(LPPivot); a != JitterNaN {
		t.Fatalf("LPPivot hit 0 = %v, want JitterNaN", a)
	}
	if Hits(CtrlBatch) != 1 || Hits(LPPivot) != 1 {
		t.Fatalf("hits = %d/%d, want 1/1", Hits(CtrlBatch), Hits(LPPivot))
	}
}

func TestCountingModeAndRearmResets(t *testing.T) {
	disarm := Arm(Plan{Site: CtrlBatch, Hit: -1, Action: None})
	for i := 0; i < 7; i++ {
		if a := Check(CtrlBatch); a != None {
			t.Fatalf("counting mode injected %v", a)
		}
	}
	if Hits(CtrlBatch) != 7 {
		t.Fatalf("Hits = %d, want 7", Hits(CtrlBatch))
	}
	disarm()
	disarm2 := Arm(Plan{Site: CtrlBatch, Hit: 0, Action: Cancel})
	defer disarm2()
	if Hits(CtrlBatch) != 0 {
		t.Fatalf("re-arm did not reset hits: %d", Hits(CtrlBatch))
	}
	if a := Check(CtrlBatch); a != Cancel {
		t.Fatalf("hit 0 after re-arm = %v, want Cancel", a)
	}
}

func TestDoubleArmPanics(t *testing.T) {
	disarm := Arm(Plan{Site: CtrlBatch, Hit: 0, Action: None})
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Fatal("second Arm did not panic")
		}
	}()
	Arm(Plan{Site: LPPivot, Hit: 0, Action: None})
}

func TestInjectedIsError(t *testing.T) {
	var err error = &Injected{Site: LPPivot, Hit: 3}
	var inj *Injected
	if !errors.As(err, &inj) || inj.Site != LPPivot || inj.Hit != 3 {
		t.Fatalf("errors.As failed on %v", err)
	}
}

// TestConcurrentChecks exercises the lock-free hook path under the
// race detector: concurrent Check calls against one armed plan must be
// safe and fire the action exactly once.
func TestConcurrentChecks(t *testing.T) {
	disarm := Arm(Plan{Site: CtrlBatch, Hit: 500, Action: Panic})
	defer disarm()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if Check(CtrlBatch) == Panic {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := fired.Load(); n != 1 {
		t.Fatalf("plan fired %d times, want exactly once", n)
	}
	if Hits(CtrlBatch) != 2000 {
		t.Fatalf("Hits = %d, want 2000", Hits(CtrlBatch))
	}
}
