// Package faultinject provides deterministic fault-injection hook
// points for the solver's hot paths. Production code compiles the
// hooks in permanently; when no plan is armed they cost a single
// atomic load, so they are safe to leave in release builds (the same
// trade the ctrl nil-check makes for instrumentation).
//
// Tests arm a Plan naming a site, a 0-based hit index, and an action;
// the hook fires exactly once, at the chosen hit. Hit counters are
// global atomics, so a fixed-seed single-worker solve replays the same
// injection point on every run — the property the chaos sweep in
// internal/super relies on to cover every ctrl batch boundary.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Site identifies a hook point compiled into the solver.
type Site uint8

// The hook sites. CtrlBatch fires at every ctrl counter flush (about
// every ctrlGranularity branch-and-bound nodes — the solver's batch
// boundary and cancellation poll point). LPPivot fires at every
// simplex pivot.
const (
	CtrlBatch Site = iota
	LPPivot
	numSites
)

// String names the site for error messages and trace events.
func (s Site) String() string {
	switch s {
	case CtrlBatch:
		return "ctrl-batch"
	case LPPivot:
		return "lp-pivot"
	default:
		return fmt.Sprintf("Site(%d)", uint8(s))
	}
}

// Action is what a hook site does when its plan fires.
type Action uint8

const (
	// None leaves the site untouched (also the counting-only mode: an
	// armed plan with Action None measures hit counts without injecting).
	None Action = iota
	// Panic makes the site panic with an *Injected value.
	Panic
	// Cancel latches the solve's cooperative cancellation, as if
	// Options.Cancel had fired. Honored at CtrlBatch only (the simplex
	// layer has no cancellation channel); at LPPivot it is a no-op.
	Cancel
	// JitterNaN poisons the site's numeric state with a NaN. Honored at
	// LPPivot (corrupting the pivot element, which spreads through the
	// tableau and surfaces as a NaN/garbage LP objective); at CtrlBatch
	// it is a no-op.
	JitterNaN
	// JitterInf poisons the site's numeric state with +Inf, the
	// overflow twin of JitterNaN. Honored at LPPivot only.
	JitterInf
)

// String names the action.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Cancel:
		return "cancel"
	case JitterNaN:
		return "jitter-nan"
	case JitterInf:
		return "jitter-inf"
	default:
		return fmt.Sprintf("Action(%d)", uint8(a))
	}
}

// Plan is one armed injection: at the Hit-th (0-based) hit of Site,
// perform Action.
type Plan struct {
	Site   Site
	Hit    int64
	Action Action
}

// Injected is the value thrown by a site honoring a Panic action.
// Recovery boundaries can detect injected panics by type.
type Injected struct {
	Site Site
	Hit  int64
}

// Error describes the injection; *Injected satisfies error so
// recovered panics can be wrapped uniformly.
func (p *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s hit %d", p.Site, p.Hit)
}

var (
	armed   atomic.Bool
	planPtr atomic.Pointer[Plan]
	hits    [numSites]atomic.Int64

	// armMu serializes Arm/disarm so two concurrent tests cannot
	// interleave plans; hook-side reads stay lock-free.
	armMu sync.Mutex
)

// Enabled is the hook fast path: false (one atomic load) whenever no
// plan is armed.
func Enabled() bool { return armed.Load() }

// Arm installs the plan, resets all hit counters, and returns the
// disarm func. Only one plan can be armed at a time; Arm panics if a
// plan is already active (tests must disarm between cases).
func Arm(p Plan) (disarm func()) {
	armMu.Lock()
	defer armMu.Unlock()
	if armed.Load() {
		panic("faultinject: Arm while already armed")
	}
	for i := range hits {
		hits[i].Store(0)
	}
	pc := p
	planPtr.Store(&pc)
	armed.Store(true)
	return func() {
		armMu.Lock()
		defer armMu.Unlock()
		armed.Store(false)
		planPtr.Store(nil)
	}
}

// Hits reports how many times site has been reached since the last
// Arm. Arm a Plan with Action None to measure a workload's hit counts
// before sweeping injections across them.
func Hits(s Site) int64 { return hits[s].Load() }

// Check records a hit at site and returns the action the site must
// perform, None in the overwhelmingly common case. Callers should
// guard with Enabled() to keep the unarmed cost to one atomic load.
func Check(s Site) Action {
	if !armed.Load() {
		return None
	}
	n := hits[s].Add(1) - 1
	p := planPtr.Load()
	if p == nil || p.Site != s || p.Hit != n {
		return None
	}
	return p.Action
}
