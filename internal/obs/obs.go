// Package obs is the repository's lightweight, dependency-free
// observability layer: a structured event tracer with span timings, an
// atomic counter/gauge/histogram registry, and pluggable sinks
// (JSON-lines for machines, text for humans).
//
// The paper's evaluation (Section V) is entirely about where time goes
// — pruning effectiveness, BIP solve cost, LICM vs Monte-Carlo — so
// every pipeline stage (operators, solver phases, MC sampling, bench
// cells) reports through this package. OBSERVABILITY.md documents the
// event schema, the counter names, and how spans map onto the paper's
// cost breakdown.
//
// The zero-cost path is central: a nil *Tracer is a valid tracer whose
// methods do nothing and allocate nothing, so instrumented code calls
// tracer methods unconditionally and pays only a nil check when
// tracing is off. Likewise a nil *Registry hands out counters that
// discard updates.
package obs

import (
	"sync/atomic"
	"time"
)

// Kind classifies a trace event.
type Kind string

// Event kinds. Span events come in start/end pairs sharing a span id;
// the end event carries the measured duration.
const (
	KindSpanStart Kind = "span_start"
	KindSpanEnd   Kind = "span_end"
	KindEvent     Kind = "event"
	KindProgress  Kind = "progress"
)

// Attr is one key/value annotation on an event.
type Attr struct {
	Key   string
	Value any
}

// Int annotates an event with an int value.
func Int(key string, v int) Attr { return Attr{Key: key, Value: v} }

// I64 annotates an event with an int64 value.
func I64(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// F64 annotates an event with a float64 value.
func F64(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Str annotates an event with a string value.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Bool annotates an event with a bool value.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: v} }

// DurNs annotates an event with a duration, recorded in nanoseconds.
func DurNs(key string, d time.Duration) Attr {
	return Attr{Key: key, Value: d.Nanoseconds()}
}

// SchemaVersion identifies the trace event schema, major.minor. The
// major version changes only on incompatible layout changes (renamed
// fields, changed units); readers must reject majors they do not know
// (tracean.Reader does). Minor bumps are additive and safe to ignore.
const SchemaVersion = "1.0"

// Event is one trace record. Span and Parent are span ids (0 = none);
// DurNs is set on span_end events only. Schema carries SchemaVersion
// on the first event of each trace and is empty afterwards.
type Event struct {
	Seq    int64          `json:"seq"`
	Time   time.Time      `json:"time"`
	Kind   Kind           `json:"ev"`
	Name   string         `json:"name"`
	Schema string         `json:"schema,omitempty"`
	Span   int64          `json:"span,omitempty"`
	Parent int64          `json:"parent,omitempty"`
	DurNs  int64          `json:"dur_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Tracer emits structured events to a sink. All methods are safe for
// concurrent use and safe on a nil receiver (the no-op fast path).
//
// Tracers derived with Fork share one counter state, so span and
// sequence ids stay unique across a process even when requests tee
// their events into private capture sinks.
type Tracer struct {
	sink  Sink
	state *tracerState
	stamp []Attr
}

// tracerState is the id/clock state shared by a tracer and all its
// forks: one seq stream and one span-id space per New call.
type tracerState struct {
	seq atomic.Int64
	ids atomic.Int64
	now func() time.Time
}

func (st *tracerState) nextSeq() int64    { return st.seq.Add(1) }
func (st *tracerState) nextSpanID() int64 { return st.ids.Add(1) }

// New returns a tracer writing to sink. A nil sink yields a tracer
// that drops everything (equivalent to a nil *Tracer).
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, state: &tracerState{now: time.Now}}
}

// Enabled reports whether events reach a sink.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Fork derives a tracer that tees every event to extra in addition to
// this tracer's sink, stamping the given attrs onto each event it
// emits (explicit event attrs win on key collision). The fork shares
// the parent's span-id and sequence counters, so events from many
// concurrent forks interleave into one shared sink without id
// collisions, while each fork's private sink sees only its own
// events. This is the serving path's per-request capture primitive: a
// request forks the process tracer with a request_id stamp and a
// CollectSink, so the flight recorder gets the request's exact span
// tree and the shared trace file gets the same events tagged for
// licmtrace -request filtering.
//
// Fork on a nil or disabled tracer still works when extra is non-nil:
// the fork writes to extra alone (with fresh counters when the
// receiver is nil). If both the receiver's sink and extra are nil the
// result is a nil tracer.
func (t *Tracer) Fork(extra Sink, stamp ...Attr) *Tracer {
	var base Sink
	state := (*tracerState)(nil)
	var inherited []Attr
	if t != nil {
		base = t.sink
		state = t.state
		inherited = t.stamp
	}
	sink := base
	switch {
	case extra == nil:
	case base == nil:
		sink = extra
	default:
		sink = MultiSink(base, extra)
	}
	if sink == nil {
		return nil
	}
	if state == nil {
		state = &tracerState{now: time.Now}
	}
	merged := make([]Attr, 0, len(inherited)+len(stamp))
	merged = append(merged, inherited...)
	merged = append(merged, stamp...)
	return &Tracer{sink: sink, state: state, stamp: merged}
}

func (t *Tracer) emit(kind Kind, name string, span, parent, durNs int64, attrs []Attr) {
	if !t.Enabled() {
		return
	}
	e := &Event{
		Seq:    t.state.nextSeq(),
		Time:   t.state.now(),
		Kind:   kind,
		Name:   name,
		Span:   span,
		Parent: parent,
		DurNs:  durNs,
	}
	if e.Seq == 1 {
		e.Schema = SchemaVersion
	}
	if n := len(attrs) + len(t.stamp); n > 0 {
		e.Attrs = make(map[string]any, n)
		for _, a := range t.stamp {
			e.Attrs[a.Key] = a.Value
		}
		for _, a := range attrs {
			e.Attrs[a.Key] = a.Value
		}
	}
	t.sink.Emit(e)
}

// Event emits a standalone (non-span) event.
func (t *Tracer) Event(name string, attrs ...Attr) {
	t.emit(KindEvent, name, 0, 0, 0, attrs)
}

// Progress emits a progress event — a periodic cumulative snapshot of
// a long-running operation, distinguishable from one-shot events.
func (t *Tracer) Progress(name string, attrs ...Attr) {
	t.emit(KindProgress, name, 0, 0, 0, attrs)
}

// Start opens a root span. End the returned span to record its
// duration. Safe on a nil tracer (returns a nil, no-op span).
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if !t.Enabled() {
		return nil
	}
	return t.start(name, 0, attrs)
}

func (t *Tracer) start(name string, parent int64, attrs []Attr) *Span {
	s := &Span{tr: t, id: t.state.nextSpanID(), parent: parent, name: name, start: t.state.now()}
	t.emit(KindSpanStart, name, s.id, parent, 0, attrs)
	return s
}

// Span is one timed region of the pipeline. A nil *Span is valid and
// inert, so callers never need to branch on whether tracing is on.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
}

// Start opens a child span.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s.id, attrs)
}

// End closes the span, emitting a span_end event carrying the elapsed
// duration (also returned; 0 from a nil span).
func (s *Span) End(attrs ...Attr) time.Duration {
	if s == nil {
		return 0
	}
	d := s.tr.state.now().Sub(s.start)
	s.tr.emit(KindSpanEnd, s.name, s.id, s.parent, d.Nanoseconds(), attrs)
	return d
}

// Event emits an event parented to this span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tr.emit(KindEvent, name, 0, s.id, 0, attrs)
}
