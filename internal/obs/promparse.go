package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a deliberately small, dependency-free reader for the
// Prometheus text exposition format 0.0.4 — enough to round-trip what
// WritePrometheus emits plus the common output of other exporters. It
// backs the in-test scrape assertions and the `licmtrace promcheck`
// CLI used by the CI telemetry-smoke job, so a formatting regression
// in the exposition path is caught by our own tooling rather than by a
// production scraper.

// PromSample is one parsed sample line: a metric name, its label set,
// and the sample value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of the named label, or "" when absent.
func (s PromSample) Label(name string) string { return s.Labels[name] }

// PromFamily groups the samples of one metric family together with the
// type declared by its # TYPE line ("untyped" when none was seen).
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// Sample returns the first sample with the given name suffix appended
// to the family name ("" for the bare name), or nil.
func (f *PromFamily) Sample(suffix string) *PromSample {
	want := f.Name + suffix
	for i := range f.Samples {
		if f.Samples[i].Name == want {
			return &f.Samples[i]
		}
	}
	return nil
}

// ParseProm reads a text-format 0.0.4 exposition into metric families,
// in input order. Samples are attached to the most recently declared
// family whose name they extend (histogram samples carry _bucket,
// _sum, _count suffixes); samples with no matching declaration form an
// "untyped" family of their own. Returns an error on any line that is
// neither a comment, blank, nor a well-formed sample.
func ParseProm(r io.Reader) ([]PromFamily, error) {
	var (
		fams  []PromFamily
		index = map[string]int{} // family name -> fams index
	)
	family := func(name, typ string) *PromFamily {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		fams = append(fams, PromFamily{Name: name, Type: typ})
		index[name] = len(fams) - 1
		return &fams[len(fams)-1]
	}
	// owner maps a histogram/summary sample name back to its family.
	owner := func(sample string) *PromFamily {
		if i, ok := index[sample]; ok {
			return &fams[i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(sample, suffix)
			if !ok {
				continue
			}
			if i, ok := index[base]; ok && (fams[i].Type == "histogram" || fams[i].Type == "summary") {
				return &fams[i]
			}
		}
		return nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if !promNameOK(name) {
					return nil, fmt.Errorf("line %d: bad metric name %q in TYPE", lineNo, name)
				}
				if i, ok := index[name]; ok {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q (first declared as %s)", lineNo, name, fams[i].Type)
				}
				family(name, typ)
			}
			continue // HELP and other comments are ignored
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := owner(sample.Name)
		if fam == nil {
			fam = family(sample.Name, "untyped")
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return fams, nil
}

// parsePromSample parses one `name{l="v",...} value [timestamp]` line.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !promNameOK(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = strings.TrimLeft(rest, " \t")
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimLeft(rest[end+1:], " \t")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after %q, got %q", s.Name, rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parsePromLabels parses `a="x",b="y"` (no escapes beyond \\, \", \n —
// the ones the format defines) into dst.
func parsePromLabels(body string, dst map[string]string) error {
	body = strings.TrimSpace(body)
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if !promLabelOK(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		body = strings.TrimLeft(body[eq+1:], " \t")
		if !strings.HasPrefix(body, `"`) {
			return fmt.Errorf("label %s value not quoted", name)
		}
		body = body[1:]
		var val strings.Builder
		for {
			i := strings.IndexAny(body, `"\`)
			if i < 0 {
				return fmt.Errorf("unterminated label value for %s", name)
			}
			val.WriteString(body[:i])
			if body[i] == '"' {
				body = body[i+1:]
				break
			}
			// escape sequence
			if i+1 >= len(body) {
				return fmt.Errorf("dangling escape in label %s", name)
			}
			switch body[i+1] {
			case '\\':
				val.WriteByte('\\')
			case '"':
				val.WriteByte('"')
			case 'n':
				val.WriteByte('\n')
			default:
				return fmt.Errorf("bad escape \\%c in label %s", body[i+1], name)
			}
			body = body[i+2:]
		}
		if _, dup := dst[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		dst[name] = val.String()
		body = strings.TrimLeft(body, " \t")
		if body == "" {
			break
		}
		if !strings.HasPrefix(body, ",") {
			return fmt.Errorf("expected ',' between labels, got %q", body)
		}
		body = strings.TrimLeft(body[1:], " \t,")
	}
	return nil
}

// parsePromValue accepts the format's value grammar: Go float syntax
// plus +Inf/-Inf/NaN spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func promNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func promLabelOK(name string) bool {
	if name == "" || strings.ContainsRune(name, ':') {
		return false
	}
	return promNameOK(name)
}

// ValidateProm checks the structural invariants a scraper relies on:
// legal metric and label names, known family types, finite counter and
// histogram sample values, and — for histograms — strictly increasing
// le bounds, monotone non-decreasing cumulative bucket counts, a
// mandatory +Inf bucket, and _count consistent with that bucket. It
// returns the first violation found, or nil for a clean exposition.
func ValidateProm(fams []PromFamily) error {
	seen := map[string]bool{}
	for i := range fams {
		f := &fams[i]
		if seen[f.Name] {
			return fmt.Errorf("family %s declared twice", f.Name)
		}
		seen[f.Name] = true
		switch f.Type {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("family %s has unknown type %q", f.Name, f.Type)
		}
		if len(f.Samples) == 0 {
			continue
		}
		for _, s := range f.Samples {
			if math.IsNaN(s.Value) && f.Type != "gauge" && f.Type != "untyped" {
				return fmt.Errorf("%s: NaN sample in %s family", s.Name, f.Type)
			}
		}
		switch f.Type {
		case "counter":
			for _, s := range f.Samples {
				if s.Value < 0 || math.IsInf(s.Value, 0) {
					return fmt.Errorf("counter %s has non-finite or negative value %v", s.Name, s.Value)
				}
			}
		case "histogram":
			if err := validatePromHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func validatePromHistogram(f *PromFamily) error {
	type bucket struct {
		le float64
		n  float64
	}
	var buckets []bucket
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		leStr, ok := s.Labels["le"]
		if !ok {
			return fmt.Errorf("%s: bucket sample without le label", f.Name)
		}
		le, err := parsePromValue(leStr)
		if err != nil {
			return fmt.Errorf("%s: bad le %q", f.Name, leStr)
		}
		buckets = append(buckets, bucket{le: le, n: s.Value})
	}
	if len(buckets) == 0 {
		return fmt.Errorf("histogram %s has no buckets", f.Name)
	}
	sort.SliceStable(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for i := 1; i < len(buckets); i++ {
		if !floatLess(buckets[i-1].le, buckets[i].le) {
			return fmt.Errorf("histogram %s: duplicate le bound %v", f.Name, buckets[i].le)
		}
		if buckets[i].n < buckets[i-1].n {
			return fmt.Errorf("histogram %s: cumulative count drops from %v (le=%v) to %v (le=%v)",
				f.Name, buckets[i-1].n, buckets[i-1].le, buckets[i].n, buckets[i].le)
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", f.Name)
	}
	count := f.Sample("_count")
	if count == nil {
		return fmt.Errorf("histogram %s missing _count", f.Name)
	}
	if f.Sample("_sum") == nil {
		return fmt.Errorf("histogram %s missing _sum", f.Name)
	}
	if !floatEq(count.Value, last.n) {
		return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", f.Name, count.Value, last.n)
	}
	return nil
}
