package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format 0.0.4, sent by the /metrics handler.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promNamespace prefixes every exported metric so scrapes from mixed
// fleets stay attributable to this process family.
const promNamespace = "licm_"

// PromName converts a registry instrument name into a legal Prometheus
// metric name: the licm_ namespace prefix, dots mapped to underscores,
// and any other rune outside [a-zA-Z0-9_:] replaced by '_'. Counter
// names additionally get a _total suffix at render time (not here), so
// "solver.nodes" scrapes as licm_solver_nodes_total.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(promNamespace) + len(name))
	b.WriteString(promNamespace)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a typed snapshot of the registry in the
// Prometheus text exposition format 0.0.4. Counters become
// <name>_total counters, gauges become gauges, and the power-of-two
// histograms become cumulative le-bucket histograms: an obs bucket
// with bound Lt holds values v < Lt, so the inclusive Prometheus bound
// is le = Lt-1 (exact, since observations are integers), followed by
// the mandatory le="+Inf" bucket and the _sum/_count pair. A nil
// registry writes nothing and returns nil.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	ex := r.Export()
	for _, c := range ex.Counters {
		name := PromName(c.Name)
		if !strings.HasSuffix(name, "_total") {
			name += "_total"
		}
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, c.Value)
	}
	for _, g := range ex.Gauges {
		name := PromName(g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", name, name, g.Value)
	}
	for _, h := range ex.Hists {
		name := PromName(h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		var cum int64
		for _, b := range h.Snap.Buckets {
			cum += b.N
			fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, b.Lt-1, cum)
		}
		// The +Inf bucket must equal _count; use the snapshot count
		// (>= the bucket sum if observations raced the snapshot).
		count := h.Snap.Count
		if cum > count {
			count = cum
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", name, h.Snap.Sum, name, count)
	}
	return bw.Flush()
}

// PromHandler returns an http.Handler serving the registry at scrape
// time in the text exposition format; the backing for /metrics on the
// debug server.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		// A write error means the scraper hung up; nothing to do.
		_ = WritePrometheus(w, r)
	})
}
