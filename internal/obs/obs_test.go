package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	// Readers race the writers below: Snapshot, typed Export, and the
	// Prometheus renderer must all be safe against concurrent updates
	// and instrument creation under -race.
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = reg.Snapshot()
				_ = reg.Export()
				if err := WritePrometheus(io.Discard, reg); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		writers.Add(1)
		go func() {
			defer wg.Done()
			defer writers.Done()
			// Mix cached-pointer updates with registry lookups so the
			// map access path races against itself under -race.
			c := reg.Counter("shared")
			for i := 0; i < perG; i++ {
				c.Inc()
				reg.Counter("shared2").Add(2)
				reg.Gauge("g").Set(int64(i))
				reg.Histogram("h").Observe(int64(i))
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("shared = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Counter("shared2").Value(); got != 2*goroutines*perG {
		t.Errorf("shared2 = %d, want %d", got, 2*goroutines*perG)
	}
	if got := reg.Histogram("h").Snapshot().Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("root", Int("x", 1))
	child := sp.Start("child")
	child.Event("ev")
	if d := child.End(); d != 0 {
		t.Errorf("nil span End = %v, want 0", d)
	}
	sp.End()
	tr.Event("standalone")
	tr.Progress("p")
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}

	var reg *Registry
	reg.Counter("c").Add(5)
	reg.Gauge("g").Set(5)
	reg.Histogram("h").Observe(5)
	if v := reg.Counter("c").Value(); v != 0 {
		t.Errorf("nil registry counter = %d", v)
	}
	if len(reg.Snapshot()) != 0 {
		t.Error("nil registry snapshot non-empty")
	}
}

func TestSpanNestingOrder(t *testing.T) {
	sink := &CollectSink{}
	tr := New(sink)
	root := tr.Start("root")
	a := root.Start("a")
	aa := a.Start("aa")
	aa.End()
	a.End()
	b := root.Start("b")
	b.End()
	root.End()

	evs := sink.Events()
	var names []string
	for _, e := range evs {
		names = append(names, string(e.Kind)+":"+e.Name)
	}
	want := []string{
		"span_start:root", "span_start:a", "span_start:aa",
		"span_end:aa", "span_end:a", "span_start:b", "span_end:b", "span_end:root",
	}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("event order = %v, want %v", names, want)
	}
	// Parent links: a and b under root, aa under a.
	spanID := map[string]int64{}
	for _, e := range evs {
		if e.Kind == KindSpanStart {
			spanID[e.Name] = e.Span
		}
	}
	for _, e := range evs {
		switch e.Name {
		case "root":
			if e.Parent != 0 {
				t.Errorf("root parent = %d", e.Parent)
			}
		case "a", "b":
			if e.Parent != spanID["root"] {
				t.Errorf("%s parent = %d, want %d", e.Name, e.Parent, spanID["root"])
			}
		case "aa":
			if e.Parent != spanID["a"] {
				t.Errorf("aa parent = %d, want %d", e.Parent, spanID["a"])
			}
		}
	}
	// Sequence numbers strictly increase.
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("seq not increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONLSink(&buf))
	sp := tr.Start("solve", Int("vars", 42), Str("sense", "max"))
	sp.Event("incumbent", I64("value", 7))
	tr.Progress("progress", I64("nodes", 1000), F64("rate", 0.5))
	sp.End(Bool("proven", true), DurNs("search", 1500*time.Nanosecond))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	var evs []Event
	for i, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, ln)
		}
		evs = append(evs, e)
	}
	if evs[0].Kind != KindSpanStart || evs[0].Name != "solve" {
		t.Errorf("first event = %+v", evs[0])
	}
	if got := evs[0].Attrs["vars"]; got != float64(42) {
		t.Errorf("vars attr = %v (%T)", got, got)
	}
	if got := evs[0].Attrs["sense"]; got != "max" {
		t.Errorf("sense attr = %v", got)
	}
	if evs[1].Kind != KindEvent || evs[1].Parent != evs[0].Span {
		t.Errorf("span event = %+v", evs[1])
	}
	if evs[2].Kind != KindProgress {
		t.Errorf("progress kind = %v", evs[2].Kind)
	}
	last := evs[3]
	if last.Kind != KindSpanEnd || last.Span != evs[0].Span || last.DurNs < 0 {
		t.Errorf("end event = %+v", last)
	}
	if got := last.Attrs["proven"]; got != true {
		t.Errorf("proven attr = %v", got)
	}
	if got := last.Attrs["search"]; got != float64(1500) {
		t.Errorf("duration attr = %v", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 1, 3, 100, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 100 {
		t.Errorf("count=%d sum=%d", s.Count, s.Sum)
	}
	total := int64(0)
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != 6 {
		t.Errorf("bucket total = %d, want 6", total)
	}
}

func TestTextAndMultiSink(t *testing.T) {
	var txt bytes.Buffer
	collect := &CollectSink{}
	tr := New(MultiSink(NewTextSink(&txt), collect))
	sp := tr.Start("phase", Int("n", 3))
	inner := sp.Start("inner")
	inner.End()
	sp.End()
	out := txt.String()
	if !strings.Contains(out, "phase") || !strings.Contains(out, "inner") || !strings.Contains(out, "n=3") {
		t.Errorf("text output missing content:\n%s", out)
	}
	if len(collect.Events()) != 4 {
		t.Errorf("collect got %d events, want 4", len(collect.Events()))
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Add(3)
	reg.Gauge("b").Set(-1)
	reg.Histogram("c").Observe(9)
	snap := reg.Snapshot()
	if snap["a"] != int64(3) || snap["b"] != int64(-1) {
		t.Errorf("snapshot = %v", snap)
	}
	names := reg.Names()
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("names = %v", names)
	}
}

func TestSetup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var verbose bytes.Buffer
	tr, closeFn, err := Setup(path, true, &verbose)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled() {
		t.Fatal("tracer should be enabled")
	}
	tr.Start("x").End()
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace file has %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("bad line %q: %v", ln, err)
		}
	}
	if !strings.Contains(verbose.String(), "x") {
		t.Error("verbose sink got nothing")
	}

	// Both off: nil tracer, working close.
	tr2, close2, err := Setup("", false, nil)
	if err != nil || tr2 != nil {
		t.Fatalf("Setup off = %v, %v", tr2, err)
	}
	if err := close2(); err != nil {
		t.Fatal(err)
	}
}

func TestServeDebugAndExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(1)
	if !PublishExpvar("test_obs_reg", reg) {
		t.Error("first PublishExpvar returned false")
	}
	if PublishExpvar("test_obs_reg", reg) {
		t.Error("duplicate PublishExpvar returned true")
	}
	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Addr() == "" {
		t.Fatal("empty address")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "licm_hits_total 1") {
		t.Errorf("/metrics = %d\n%s", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "test_obs_reg") {
		t.Errorf("/debug/vars = %d\n%.200s", code, body)
	}
	if code, body := get("/debug/licm"); code != 200 || !strings.Contains(body, "licm live metrics") {
		t.Errorf("/debug/licm = %d\n%.200s", code, body)
	}
	code, body := get("/debug/licm/timeseries")
	if code != 200 {
		t.Fatalf("/debug/licm/timeseries = %d", code)
	}
	var snap TSSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("timeseries not JSON: %v\n%.200s", err, body)
	}
	found := false
	for _, s := range snap.Series {
		if s.Name == "hits" && s.Kind == "counter" && len(s.Points) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("timeseries missing hits counter: %+v", snap.Series)
	}
	// The runtime sampler ran at least once before ServeDebug returned.
	if reg.Gauge("runtime.heap_bytes").Value() <= 0 {
		t.Error("runtime.heap_bytes gauge not populated")
	}
	if reg.Gauge("runtime.goroutines").Value() <= 0 {
		t.Error("runtime.goroutines gauge not populated")
	}
	// Closing twice is safe and idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
