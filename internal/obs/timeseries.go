package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// TimeSeries keeps the recent history of every registry instrument in
// fixed-size rings so a dashboard (or curl) can read the last N
// minutes without an external time-series database. Each sample tick
// captures a typed registry export: counters and gauges record their
// value, histograms contribute two derived counter series,
// <name>.count and <name>.sum. Memory is bounded by
// capacity × series — there is no allocation after the rings fill.
type TimeSeries struct {
	cap      int
	interval time.Duration

	mu     sync.Mutex
	series map[string]*tsRing
	stop   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// tsRing is one fixed-capacity series ring.
type tsRing struct {
	kind string // "counter" | "gauge"
	t    []int64
	v    []int64
	next int
	full bool
}

func (r *tsRing) push(t, v int64) {
	if len(r.t) < cap(r.t) {
		r.t = append(r.t, t)
		r.v = append(r.v, v)
		return
	}
	r.t[r.next] = t
	r.v[r.next] = v
	r.next = (r.next + 1) % len(r.t)
	r.full = true
}

// ordered returns (times, values) oldest → newest.
func (r *tsRing) ordered() ([]int64, []int64) {
	if !r.full {
		return append([]int64(nil), r.t...), append([]int64(nil), r.v...)
	}
	n := len(r.t)
	ts := make([]int64, 0, n)
	vs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		j := (r.next + i) % n
		ts = append(ts, r.t[j])
		vs = append(vs, r.v[j])
	}
	return ts, vs
}

// NewTimeSeries builds rings holding capacity points per series
// (default 300 when capacity <= 0) sampled every interval (default 1s
// when interval <= 0): the defaults retain five minutes.
func NewTimeSeries(capacity int, interval time.Duration) *TimeSeries {
	if capacity <= 0 {
		capacity = 300
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &TimeSeries{
		cap:      capacity,
		interval: interval,
		series:   make(map[string]*tsRing),
		stop:     make(chan struct{}),
	}
}

// Sample appends one point per instrument at the given timestamp.
func (ts *TimeSeries) Sample(reg *Registry, now time.Time) {
	ex := reg.Export()
	t := now.UnixMilli()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, c := range ex.Counters {
		ts.ring(c.Name, "counter").push(t, c.Value)
	}
	for _, g := range ex.Gauges {
		ts.ring(g.Name, "gauge").push(t, g.Value)
	}
	for _, h := range ex.Hists {
		ts.ring(h.Name+".count", "counter").push(t, h.Snap.Count)
		ts.ring(h.Name+".sum", "counter").push(t, h.Snap.Sum)
	}
}

// ring returns the named ring, creating it if needed. Caller holds mu.
func (ts *TimeSeries) ring(name, kind string) *tsRing {
	r, ok := ts.series[name]
	if !ok {
		r = &tsRing{
			kind: kind,
			t:    make([]int64, 0, ts.cap),
			v:    make([]int64, 0, ts.cap),
		}
		ts.series[name] = r
	}
	return r
}

// Start samples reg every interval until Stop (or the returned cancel
// function) is called. One synchronous sample runs immediately so the
// endpoint is non-empty from the first scrape.
func (ts *TimeSeries) Start(reg *Registry) (cancel func()) {
	ts.Sample(reg, time.Now())
	ts.wg.Add(1)
	go func() {
		defer ts.wg.Done()
		t := time.NewTicker(ts.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ts.Sample(reg, time.Now())
			case <-ts.stop:
				return
			}
		}
	}()
	return ts.Stop
}

// Stop halts the sampling loop started by Start and waits for it.
// Idempotent; a TimeSeries that was never started stops trivially.
func (ts *TimeSeries) Stop() {
	ts.once.Do(func() { close(ts.stop) })
	ts.wg.Wait()
}

// TSPoint is one exported sample.
type TSPoint struct {
	T int64 `json:"t"` // Unix milliseconds
	V int64 `json:"v"`
}

// TSSeries is one exported series, oldest point first.
type TSSeries struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"` // "counter" | "gauge"
	Points []TSPoint `json:"points"`
}

// TSSnapshot is the /debug/licm/timeseries response body.
type TSSnapshot struct {
	IntervalMs int64      `json:"interval_ms"`
	Capacity   int        `json:"capacity"`
	Series     []TSSeries `json:"series"`
}

// Snapshot exports every series, name-sorted, oldest point first.
func (ts *TimeSeries) Snapshot() TSSnapshot {
	out := TSSnapshot{IntervalMs: ts.interval.Milliseconds(), Capacity: ts.cap}
	ts.mu.Lock()
	for name, r := range ts.series {
		times, vals := r.ordered()
		s := TSSeries{Name: name, Kind: r.kind, Points: make([]TSPoint, len(times))}
		for i := range times {
			s.Points[i] = TSPoint{T: times[i], V: vals[i]}
		}
		out.Series = append(out.Series, s)
	}
	ts.mu.Unlock()
	sort.Slice(out.Series, func(i, j int) bool { return out.Series[i].Name < out.Series[j].Name })
	return out
}

// ServeHTTP serves the snapshot as JSON; mounted at
// /debug/licm/timeseries by the debug server.
func (ts *TimeSeries) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	// Write errors mean the client hung up.
	_ = enc.Encode(ts.Snapshot())
}
