package obs

import (
	"sync"
	"testing"
)

// TestForkTeeAndStamp pins the per-request capture contract the serve
// flight recorder relies on: a fork tees every event to both the
// shared sink and the private sink, stamps its attrs on each event,
// and lets explicit event attrs win a key collision.
func TestForkTeeAndStamp(t *testing.T) {
	shared := &CollectSink{}
	private := &CollectSink{}
	tr := New(shared)

	fork := tr.Fork(private, Str("request_id", "r-1"))
	sp := fork.Start("serve.request", Int("vars", 3))
	sp.Event("note", Str("request_id", "override"))
	sp.End()
	tr.Event("unrelated")

	priv := private.Events()
	if len(priv) != 3 {
		t.Fatalf("private sink saw %d events, want 3 (fork-only)", len(priv))
	}
	for i, e := range priv {
		got, ok := e.Attrs["request_id"]
		if !ok {
			t.Fatalf("private event %d (%s) missing request_id stamp", i, e.Name)
		}
		want := "r-1"
		if e.Name == "note" {
			want = "override"
		}
		if got != want {
			t.Errorf("event %s request_id = %v, want %q", e.Name, got, want)
		}
	}
	if v := priv[0].Attrs["vars"]; v != 3 {
		t.Errorf("span start vars attr = %v, want 3 (stamp must not drop explicit attrs)", v)
	}

	all := shared.Events()
	if len(all) != 4 {
		t.Fatalf("shared sink saw %d events, want 4 (fork events + parent event)", len(all))
	}
	if _, ok := all[3].Attrs["request_id"]; ok {
		t.Error("parent tracer event carries the fork's stamp; stamps must stay fork-local")
	}
}

// TestForkSharedIDs pins that concurrent forks share one span-id and
// seq space, so a multiplexed trace file never has two spans with the
// same id.
func TestForkSharedIDs(t *testing.T) {
	shared := &CollectSink{}
	tr := New(shared)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fork := tr.Fork(&CollectSink{})
			for j := 0; j < 50; j++ {
				fork.Start("work").End()
			}
		}()
	}
	wg.Wait()

	seenSpan := map[int64]bool{}
	seenSeq := map[int64]bool{}
	for _, e := range shared.Events() {
		if seenSeq[e.Seq] {
			t.Fatalf("duplicate seq %d across forks", e.Seq)
		}
		seenSeq[e.Seq] = true
		if e.Kind != KindSpanStart {
			continue
		}
		if seenSpan[e.Span] {
			t.Fatalf("duplicate span id %d across forks", e.Span)
		}
		seenSpan[e.Span] = true
	}
	if len(seenSpan) != 8*50 {
		t.Fatalf("saw %d distinct spans, want %d", len(seenSpan), 8*50)
	}
}

// TestForkNilCases pins the nil contract: forking a nil or disabled
// tracer with a capture sink still records (fresh counters), and
// forking with nothing to write to yields a nil no-op tracer.
func TestForkNilCases(t *testing.T) {
	var nilTr *Tracer
	private := &CollectSink{}
	fork := nilTr.Fork(private, Str("request_id", "r-2"))
	fork.Start("serve.request").End()
	evs := private.Events()
	if len(evs) != 2 {
		t.Fatalf("nil-parent fork recorded %d events, want 2", len(evs))
	}
	if evs[0].Schema != SchemaVersion {
		t.Errorf("nil-parent fork first event schema = %q, want %q", evs[0].Schema, SchemaVersion)
	}

	disabled := New(nil)
	if f := disabled.Fork(private); !f.Enabled() {
		t.Error("fork of disabled tracer with capture sink should be enabled")
	}
	if f := nilTr.Fork(nil); f != nil {
		t.Error("fork with no sinks should be nil")
	}
	if f := disabled.Fork(nil); f.Enabled() {
		t.Error("fork of disabled tracer with no extra sink should stay disabled")
	}
}
