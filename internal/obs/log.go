package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogOptions carries the shared structured-logging CLI surface. Every
// licm command registers the same two flags so log pipelines can
// ingest any of them identically:
//
//	-log-level debug|info|warn|error   (default warn)
//	-log-format text|json              (default text)
type LogOptions struct {
	Level  string
	Format string
}

// RegisterFlags registers -log-level and -log-format on fs.
func (o *LogOptions) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.Level, "log-level", "warn", "minimum structured-log level: debug | info | warn | error")
	fs.StringVar(&o.Format, "log-format", "text", "structured-log encoding: text | json")
}

// NewLogger builds the slog.Logger described by the options, writing
// to w. Unknown levels or formats are flag errors, reported rather
// than defaulted so a typo in a service config does not silently
// discard logs.
func (o LogOptions) NewLogger(w io.Writer) (*slog.Logger, error) {
	level, err := ParseLogLevel(o.Level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(o.Format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown -log-format %q (want text or json)", o.Format)
	}
	return slog.New(h), nil
}

// NewLogger builds a logger with explicit level and format strings;
// the programmatic twin of LogOptions.NewLogger.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return LogOptions{Level: level, Format: format}.NewLogger(w)
}

// ParseLogLevel maps a -log-level value to a slog.Level. The empty
// string means warn, the quiet-by-default posture for CLIs whose
// stdout is the deliverable.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "warn", "warning":
		return slog.LevelWarn, nil
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "error":
		return slog.LevelError, nil
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: unknown -log-level %q (want debug, info, warn or error)", s)
	}
	return level, nil
}
