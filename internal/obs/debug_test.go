package obs

import (
	"sync"
	"testing"
)

// TestDebugServerCloseConcurrent pins the shutdown contract licmd's
// drain path relies on: Close is idempotent and safe under concurrent
// shutdown — a signal handler's Close racing a deferred Close must not
// double-stop the sampler or the HTTP server, and every caller
// observes the same result. A nil receiver is a no-op, so callers that
// never started a debug server can close unconditionally.
func TestDebugServerCloseConcurrent(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	const closers = 8
	errs := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Errorf("closer %d returned %v, closer 0 returned %v — concurrent Close results disagree", i, err, errs[0])
		}
		if err != nil {
			t.Errorf("closer %d: %v", i, err)
		}
	}

	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil DebugServer Close: %v", err)
	}
}
