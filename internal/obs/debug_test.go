package obs

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
)

// TestDebugServerCloseConcurrent pins the shutdown contract licmd's
// drain path relies on: Close is idempotent and safe under concurrent
// shutdown — a signal handler's Close racing a deferred Close must not
// double-stop the sampler or the HTTP server, and every caller
// observes the same result. A nil receiver is a no-op, so callers that
// never started a debug server can close unconditionally.
func TestDebugServerCloseConcurrent(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	const closers = 8
	errs := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Errorf("closer %d returned %v, closer 0 returned %v — concurrent Close results disagree", i, err, errs[0])
		}
		if err != nil {
			t.Errorf("closer %d: %v", i, err)
		}
	}

	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil DebugServer Close: %v", err)
	}
}

// TestDebugServerHandleAfterServe pins late route registration: a
// handler added after the server started must be reachable, and
// Handle racing concurrent Close must either register cleanly (true)
// or be a defined no-op (false) — never a panic or a write to a dying
// mux. Run under -race this also proves Handle/Close/ServeHTTP
// synchronization.
func TestDebugServerHandleAfterServe(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ok := srv.Handle("/debug/licm/requests", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("recorded")) //nolint:errcheck
	}))
	if !ok {
		t.Fatal("Handle on a live server returned false")
	}
	resp, err := http.Get("http://" + srv.Addr() + "/debug/licm/requests")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "recorded" {
		t.Fatalf("late-registered route: status %d body %q", resp.StatusCode, body)
	}

	// Hammer Handle (distinct patterns) against a concurrent Close.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			srv.Handle(fmt.Sprintf("/debug/licm/race/%d", i), http.NotFoundHandler())
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Close() //nolint:errcheck
	}()
	wg.Wait()

	if srv.Handle("/debug/licm/after-close", http.NotFoundHandler()) {
		t.Error("Handle after Close returned true, want defined no-op false")
	}
	var nilSrv *DebugServer
	if nilSrv.Handle("/x", http.NotFoundHandler()) {
		t.Error("Handle on nil DebugServer returned true")
	}
}
