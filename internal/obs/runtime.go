package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// The runtime gauges mirror a fixed set of runtime/metrics readings
// into the registry so one /metrics scrape carries solver progress and
// resource consumption side by side. Readings whose metric is absent
// or has an unexpected kind under the running toolchain are skipped,
// never zero-filled.

// runtimeUint64Gauges maps uint64-valued runtime metrics to gauge
// names.
var runtimeUint64Gauges = []struct{ metric, gauge string }{
	{"/memory/classes/heap/objects:bytes", "runtime.heap_bytes"},
	{"/memory/classes/total:bytes", "runtime.total_bytes"},
	{"/gc/heap/allocs:bytes", "runtime.alloc_bytes"},
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/gc/cycles/total:gc-cycles", "runtime.gc_cycles"},
}

// runtimeHistGauges maps histogram-valued runtime metrics (seconds) to
// nanosecond quantile gauges.
var runtimeHistGauges = []struct {
	metric, gauge string
	q             float64
}{
	{"/sched/pauses/total/gc:seconds", "runtime.gc_pause_p99_ns", 0.99},
	{"/sched/latencies:seconds", "runtime.sched_latency_p99_ns", 0.99},
}

// SampleRuntime reads the runtime metric set once into the registry's
// runtime.* gauges. Safe on a nil registry (the reads still happen;
// the stores discard).
func SampleRuntime(r *Registry) {
	samples := make([]metrics.Sample, 0, len(runtimeUint64Gauges)+len(runtimeHistGauges))
	for _, m := range runtimeUint64Gauges {
		samples = append(samples, metrics.Sample{Name: m.metric})
	}
	for _, m := range runtimeHistGauges {
		samples = append(samples, metrics.Sample{Name: m.metric})
	}
	metrics.Read(samples)
	for i, m := range runtimeUint64Gauges {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			r.Gauge(m.gauge).Set(clampInt64(samples[i].Value.Uint64()))
		}
	}
	for i, m := range runtimeHistGauges {
		s := samples[len(runtimeUint64Gauges)+i]
		if s.Value.Kind() == metrics.KindFloat64Histogram {
			sec := histogramQuantile(s.Value.Float64Histogram(), m.q)
			r.Gauge(m.gauge).Set(int64(sec * 1e9))
		}
	}
}

// histogramQuantile returns an upper estimate of the q-quantile of a
// runtime Float64Histogram: the upper bound of the bucket where the
// cumulative count crosses q*total (falling back to the bucket's lower
// bound when the upper bound is +Inf). Returns 0 on an empty
// histogram.
func histogramQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			if math.IsInf(ub, -1) {
				return 0
			}
			return ub
		}
	}
	return 0
}

// clampInt64 converts a uint64 reading to the registry's int64 gauges
// without wrapping.
func clampInt64(v uint64) int64 {
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v)
}

// RuntimeSampler periodically feeds the runtime.* gauges. Start one
// per process next to a debug server (ServeDebug does this for you);
// Stop is idempotent and waits for the loop to exit.
type RuntimeSampler struct {
	reg      *Registry
	interval time.Duration
	stop     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
}

// StartRuntimeSampler samples the runtime into reg's gauges every
// interval (default 1s when interval <= 0). One synchronous sample
// runs before it returns, so the gauges exist — and /metrics carries
// them — before the first tick.
func StartRuntimeSampler(reg *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &RuntimeSampler{reg: reg, interval: interval, stop: make(chan struct{})}
	SampleRuntime(reg)
	s.wg.Add(1)
	go s.loop()
	return s
}

func (s *RuntimeSampler) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			SampleRuntime(s.reg)
		case <-s.stop:
			return
		}
	}
}

// Stop halts the sampler and waits for its goroutine.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}
