package obs

import (
	"fmt"
	"io"
	"os"
)

// Setup builds the tracer behind the shared CLI flags --trace=<file>
// and --verbose: a JSON-lines sink on the trace file (when tracePath
// is non-empty) plus a human-readable text sink on verboseW (when
// verbose is set). It returns a nil (no-op) tracer when both are off.
// The returned close function flushes and closes the trace file and
// reports any write error; it is always non-nil.
func Setup(tracePath string, verbose bool, verboseW io.Writer) (*Tracer, func() error, error) {
	var sinks []Sink
	var file *os.File
	var jsonl *JSONLSink
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, func() error { return nil }, err
		}
		file = f
		jsonl = NewJSONLSink(f)
		sinks = append(sinks, jsonl)
	}
	if verbose {
		if verboseW == nil {
			verboseW = os.Stderr
		}
		sinks = append(sinks, NewTextSink(verboseW))
	}
	closeFn := func() error {
		if file == nil {
			return nil
		}
		err := jsonl.Err()
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: trace %s: %w", tracePath, err)
		}
		return nil
	}
	switch len(sinks) {
	case 0:
		return nil, closeFn, nil
	case 1:
		return New(sinks[0]), closeFn, nil
	default:
		return New(MultiSink(sinks...)), closeFn, nil
	}
}
