package obs

import (
	"testing"
)

// TestSchemaStampOnFirstEventOnly: a tracer stamps SchemaVersion on the
// event that wins seq 1 and on no other, so a trace file carries
// exactly one version marker however it was produced.
func TestSchemaStampOnFirstEventOnly(t *testing.T) {
	sink := &CollectSink{}
	tr := New(sink)
	tr.Event("a")
	sp := tr.Start("b")
	sp.End()
	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Schema != SchemaVersion {
		t.Errorf("first event schema = %q, want %q", evs[0].Schema, SchemaVersion)
	}
	for _, e := range evs[1:] {
		if e.Schema != "" {
			t.Errorf("event seq %d carries schema %q, want empty", e.Seq, e.Schema)
		}
	}
}

// TestHistogramQuantile: Quantile returns the upper bound of the bucket
// holding the q-th observation.
func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	// 90 small observations in the [8,16) bucket, 10 large in [1024,2048).
	for i := 0; i < 90; i++ {
		h.Observe(10)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	snap := h.Snapshot()
	if got := snap.Quantile(0.5); got != 16 {
		t.Errorf("p50 = %d, want bucket bound 16", got)
	}
	if got := snap.Quantile(0.99); got != 2048 {
		t.Errorf("p99 = %d, want bucket bound 2048", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}
