package obs

// Exact float comparisons for the exposition parser live here: bucket
// bounds and counts in a Prometheus scrape are decimal renderings of
// integers, so bitwise equality is the correct check — there is no
// arithmetic between parse and compare that could introduce rounding.
// (The floatcmp lint confines ==/!= on floats to tol.go files.)

// floatEq reports a == b.
func floatEq(a, b float64) bool { return a == b }

// floatLess reports a < b with NaN and equal values both false; used
// to reject duplicate le bounds after sorting.
func floatLess(a, b float64) bool { return a < b }
