package obs

import "net/http"

// The dashboard is a single self-contained HTML page: no external
// assets, no build step, nothing to deploy. It polls the JSON
// time-series endpoint and draws inline-SVG sparklines — counters as
// per-second rates (nodes/s, LP solves/s, acceptance/s), gauges raw
// (heap bytes, goroutines). Featured solver/runtime series are pinned
// to the top; everything else follows alphabetically, so new
// instruments show up without touching this file.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>licm live metrics</title>
<style>
  body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
  h1 { font-size: 1.2em; margin: 0 0 .2em; }
  #status { color: #888; margin-bottom: 1em; }
  #grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(270px, 1fr)); gap: 10px; }
  .card { background: #fff; border: 1px solid #ddd; border-radius: 6px; padding: 8px 10px; }
  .card .name { color: #555; font-family: ui-monospace, monospace; font-size: 11px; }
  .card .val { font-size: 1.25em; font-weight: 600; margin: 2px 0; }
  .card .unit { color: #888; font-size: .7em; font-weight: 400; }
  svg { display: block; width: 100%; height: 36px; }
  polyline { fill: none; stroke: #2a6fb0; stroke-width: 1.5; }
  .gauge polyline { stroke: #b05a2a; }
</style>
</head>
<body>
<h1>licm live metrics</h1>
<div><a href="/debug/licm/requests?format=html">request forensics</a> (when served by licmd)</div>
<div id="status">connecting&hellip;</div>
<div id="grid"></div>
<script>
"use strict";
var FEATURED = ["solver.nodes", "solver.lp_solves", "runtime.heap_bytes",
  "mc.subset_accepted", "solver.incumbents", "runtime.goroutines",
  "solver.components", "explain.components", "explain.distinct_fingerprints",
  "workload.queries", "workload.qerr_ppm", "workload.violations",
  "serve.requests", "serve.shed", "serve.queue_depth",
  "serve.inflight", "serve.panics_contained", "serve.draining",
  "slo.worst_burn_ppm"];
function fmt(v) {
  var a = Math.abs(v);
  if (a >= 1e9) return (v / 1e9).toFixed(2) + "G";
  if (a >= 1e6) return (v / 1e6).toFixed(2) + "M";
  if (a >= 1e3) return (v / 1e3).toFixed(1) + "k";
  return String(v);
}
function spark(pts) {
  if (pts.length < 2) return "";
  var lo = Infinity, hi = -Infinity, i;
  for (i = 0; i < pts.length; i++) { lo = Math.min(lo, pts[i]); hi = Math.max(hi, pts[i]); }
  if (hi - lo < 1e-9) { lo -= 1; hi += 1; }
  var w = 260, h = 34, out = [];
  for (i = 0; i < pts.length; i++) {
    out.push((i * w / (pts.length - 1)).toFixed(1) + "," +
             (h - 2 - (pts[i] - lo) / (hi - lo) * (h - 4)).toFixed(1));
  }
  return '<svg viewBox="0 0 ' + w + ' ' + h + '" preserveAspectRatio="none">' +
         '<polyline points="' + out.join(" ") + '"/></svg>';
}
function rates(points) {
  // counter -> per-second rate between consecutive samples
  var out = [], i;
  for (i = 1; i < points.length; i++) {
    var dt = (points[i].t - points[i - 1].t) / 1000;
    out.push(dt > 0 ? Math.max(0, (points[i].v - points[i - 1].v) / dt) : 0);
  }
  return out;
}
function order(a, b) {
  var ia = FEATURED.indexOf(a.name), ib = FEATURED.indexOf(b.name);
  if (ia < 0) ia = FEATURED.length;
  if (ib < 0) ib = FEATURED.length;
  return ia - ib || (a.name < b.name ? -1 : a.name > b.name ? 1 : 0);
}
function render(snap) {
  var grid = document.getElementById("grid");
  var html = "", series = snap.series.slice().sort(order);
  series.forEach(function (s) {
    if (!s.points || !s.points.length) return;
    var cls = s.kind, vals, cur, unit;
    if (s.kind === "counter") {
      vals = rates(s.points);
      cur = vals.length ? vals[vals.length - 1] : 0;
      unit = "/s";
    } else {
      vals = s.points.map(function (p) { return p.v; });
      cur = vals[vals.length - 1];
      unit = "";
    }
    html += '<div class="card ' + cls + '"><div class="name">' + s.name +
      '</div><div class="val">' + fmt(Math.round(cur * 100) / 100) +
      '<span class="unit">' + unit + "</span></div>" + spark(vals) + "</div>";
  });
  grid.innerHTML = html;
  document.getElementById("status").textContent =
    series.length + " series, " + (snap.interval_ms / 1000) + "s resolution, " +
    new Date().toLocaleTimeString();
}
function tick() {
  fetch("/debug/licm/timeseries").then(function (r) {
    if (!r.ok) throw new Error("HTTP " + r.status);
    return r.json();
  }).then(render).catch(function (e) {
    document.getElementById("status").textContent = "fetch failed: " + e;
  });
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
`

// dashboardHandler serves the embedded dashboard page.
func dashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHTML))
	})
}
