package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing atomic counter. All methods
// are safe on a nil receiver, which discards updates — the no-op path
// handed out by a nil *Registry.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates int64 observations into power-of-two buckets
// (bucket i counts values whose bit length is i, i.e. in
// [2^(i-1), 2^i)). Lock-free; Observe is safe from any goroutine.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [66]atomic.Int64 // index 0: v <= 0; 1..64 by bit length; 65 unused guard
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// HistBucket is one non-empty histogram bucket: N observations with
// value < Lt (Lt == 1 collects v <= 0).
type HistBucket struct {
	Lt int64 `json:"lt"`
	N  int64 `json:"n"`
}

// HistSnapshot is a point-in-time view of a histogram.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Quantile returns an upper estimate of the q-quantile (0 <= q <= 1):
// the Lt bound of the bucket where the cumulative count crosses
// q*Count. Power-of-two buckets make this exact to within a factor of
// two, which is the right resolution for latency distributions whose
// interesting changes are multiplicative. Returns 0 on an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		cum += float64(b.N)
		if cum >= target {
			return b.Lt
		}
	}
	return s.Buckets[len(s.Buckets)-1].Lt
}

// Snapshot captures the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lt := int64(1)
			if i > 0 && i < 63 {
				lt = int64(1) << uint(i)
			} else if i >= 63 {
				lt = 1<<63 - 1
			}
			s.Buckets = append(s.Buckets, HistBucket{Lt: lt, N: n})
		}
	}
	return s
}

// Registry is a named collection of counters, gauges and histograms.
// Lookup methods create instruments on first use; a nil *Registry
// hands out nil (discarding) instruments, so instrumented code never
// branches on whether metrics are enabled.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter with the given name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns all instruments as a name → value map (counters and
// gauges as int64, histograms as HistSnapshot), suitable for expvar
// publishing or test assertions.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the sorted instrument names.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NamedValue is one exported counter or gauge reading.
type NamedValue struct {
	Name  string
	Value int64
}

// NamedHist is one exported histogram snapshot.
type NamedHist struct {
	Name string
	Snap HistSnapshot
}

// RegistryExport is a typed, name-sorted point-in-time view of every
// instrument in a registry. Unlike Snapshot's uniform name → any map
// (where counters and gauges are indistinguishable int64s), the export
// keeps the instrument kinds apart — the input for exposition formats
// that must declare a type per metric (Prometheus rendering, the
// time-series sampler).
type RegistryExport struct {
	Counters []NamedValue
	Gauges   []NamedValue
	Hists    []NamedHist
}

// Export captures a typed snapshot of the registry. A nil registry
// exports nothing.
func (r *Registry) Export() RegistryExport {
	var ex RegistryExport
	if r == nil {
		return ex
	}
	r.mu.Lock()
	for name, c := range r.counters {
		ex.Counters = append(ex.Counters, NamedValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		ex.Gauges = append(ex.Gauges, NamedValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		ex.Hists = append(ex.Hists, NamedHist{Name: name, Snap: h.Snapshot()})
	}
	r.mu.Unlock()
	sort.Slice(ex.Counters, func(i, j int) bool { return ex.Counters[i].Name < ex.Counters[j].Name })
	sort.Slice(ex.Gauges, func(i, j int) bool { return ex.Gauges[i].Name < ex.Gauges[j].Name })
	sort.Slice(ex.Hists, func(i, j int) bool { return ex.Hists[i].Name < ex.Hists[j].Name })
	return ex
}
