package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
)

// ServeDebug starts a background HTTP server on addr exposing
// production-style profiling endpoints out of the box:
//
//	/debug/pprof/   — net/http/pprof (CPU, heap, goroutine, ...)
//	/debug/vars     — expvar, including registries published with
//	                  PublishExpvar
//
// It returns the bound address (useful with ":0"). The server runs
// until the process exits; this is the --debug-addr flag's backend in
// the licm commands.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, http.DefaultServeMux) //nolint:errcheck // best-effort debug server
	return ln.Addr().String(), nil
}

// PublishExpvar exposes the registry under name on /debug/vars. The
// value is re-snapshotted on every scrape, so live counters (solver
// nodes, LP solves, ...) are watchable mid-solve. Publishing the same
// name twice is a no-op (expvar forbids duplicates).
func PublishExpvar(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
