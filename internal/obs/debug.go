package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is a running telemetry/debug HTTP server bound to its
// own mux — never http.DefaultServeMux, so tests and processes hosting
// several servers cannot collide on global handler registrations.
type DebugServer struct {
	addr    string
	srv     *http.Server
	ln      net.Listener
	sampler *RuntimeSampler
	tsStop  func()
	once    sync.Once
	err     error

	mu     sync.Mutex
	mux    *http.ServeMux
	closed bool
}

// Addr returns the bound address (useful with ":0").
func (s *DebugServer) Addr() string { return s.addr }

// Handle registers handler for pattern on the running server's mux,
// so subsystems that come up after ServeDebug (the serve flight
// recorder's /debug/licm/requests, for one) can attach routes without
// rebuilding the server. Registration is serialized against Close: a
// call that loses the race is a defined no-op returning false instead
// of mutating a dying mux, and a nil receiver also returns false (the
// obs nil no-op contract). Re-registering a pattern already present
// panics, as http.ServeMux does.
func (s *DebugServer) Handle(pattern string, handler http.Handler) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.mux == nil {
		return false
	}
	s.mux.Handle(pattern, handler)
	return true
}

// Close stops the runtime sampler, the time-series loop, and the HTTP
// server. Idempotent and safe under concurrent shutdown: a signal
// handler's Close racing a deferred Close blocks until the first call
// finishes and returns the same error. A nil receiver is a no-op, so
// `defer srv.Close()` is safe on paths where the server was never
// started (the obs nil no-op contract).
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.once.Do(func() {
		if s.sampler != nil {
			s.sampler.Stop()
		}
		if s.tsStop != nil {
			s.tsStop()
		}
		if s.srv != nil {
			s.err = s.srv.Close()
		}
	})
	return s.err
}

// NewDebugMux builds the debug routing table on a fresh mux:
//
//	/debug/pprof/           — net/http/pprof (CPU, heap, goroutine, ...)
//	/debug/vars             — expvar, including PublishExpvar registries
//	/metrics                — Prometheus text exposition of reg
//	/debug/licm             — embedded live dashboard (requires ts)
//	/debug/licm/timeseries  — recent-history JSON rings (requires ts)
//
// pprof handlers are registered explicitly (not via the package's
// blank-import side effect on the default mux). ts may be nil, which
// drops the two dashboard routes.
func NewDebugMux(reg *Registry, ts *TimeSeries) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", PromHandler(reg))
	if ts != nil {
		mux.Handle("/debug/licm/timeseries", ts)
		mux.Handle("/debug/licm", dashboardHandler())
		mux.Handle("/debug/licm/", dashboardHandler())
	}
	return mux
}

// ServeDebug starts a background HTTP server on addr exposing the full
// telemetry surface for reg (see NewDebugMux), plus a 1s
// RuntimeSampler feeding reg's runtime.* gauges and a five-minute
// TimeSeries ring behind the dashboard. It also publishes reg on
// /debug/vars under the process-wide expvar name "licm" (first caller
// wins; see PublishExpvar). This is the -debug-addr flag's backend in
// the licm commands. Close the returned server to release the port and
// the sampling goroutines; servers left open run until process exit,
// which is the normal CLI posture.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	PublishExpvar("licm", reg)
	ts := NewTimeSeries(300, time.Second)
	s := &DebugServer{
		addr:    ln.Addr().String(),
		ln:      ln,
		sampler: StartRuntimeSampler(reg, time.Second),
		tsStop:  ts.Start(reg),
		mux:     NewDebugMux(reg, ts),
	}
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln) //nolint:errcheck // best-effort debug server
	return s, nil
}

// PublishExpvar exposes the registry under name on /debug/vars. The
// value is re-snapshotted on every scrape, so live counters (solver
// nodes, LP solves, ...) are watchable mid-solve. expvar forbids
// duplicate names process-wide; PublishExpvar reports whether this
// call actually published (false: the name was already taken, the
// registry bound first stays visible).
func PublishExpvar(name string, r *Registry) bool {
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	return true
}
