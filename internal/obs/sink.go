package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sink receives trace events. Implementations must be safe for
// concurrent Emit calls (solver workers trace from multiple
// goroutines).
type Sink interface {
	Emit(e *Event)
}

// JSONLSink writes one JSON object per event per line (JSON-lines),
// the machine-readable trace format documented in OBSERVABILITY.md.
type JSONLSink struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink encoding events to w.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{enc: json.NewEncoder(w)}
}

// Emit writes the event as one JSON line. The first encode error is
// retained (see Err) and subsequent events are dropped.
func (s *JSONLSink) Emit(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// TextSink renders events as human-readable lines with timestamps
// relative to the first event and two-space indentation per span
// nesting level — the --verbose view of a trace.
type TextSink struct {
	mu    sync.Mutex
	w     io.Writer
	epoch time.Time
	depth map[int64]int
}

// NewTextSink returns a sink printing to w.
func NewTextSink(w io.Writer) *TextSink {
	return &TextSink{w: w, depth: make(map[int64]int)}
}

// Emit prints the event.
func (s *TextSink) Emit(e *Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch.IsZero() {
		s.epoch = e.Time
	}
	d := 0
	switch e.Kind {
	case KindSpanStart:
		d = s.depth[e.Parent] + 1
		s.depth[e.Span] = d
	case KindSpanEnd:
		d = s.depth[e.Span]
		delete(s.depth, e.Span)
	default:
		d = s.depth[e.Parent] + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %s%-10s %s", e.Time.Sub(s.epoch).Round(time.Microsecond), strings.Repeat("  ", d), e.Kind, e.Name)
	if e.Kind == KindSpanEnd {
		fmt.Fprintf(&b, " (%s)", time.Duration(e.DurNs).Round(time.Microsecond))
	}
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%v", k, e.Attrs[k])
	}
	b.WriteByte('\n')
	io.WriteString(s.w, b.String())
}

// MultiSink fans every event out to all sinks.
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

type multiSink []Sink

func (m multiSink) Emit(e *Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// CollectSink buffers events in memory, for tests and in-process
// analysis.
type CollectSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends a copy of the event.
func (s *CollectSink) Emit(e *Event) {
	s.mu.Lock()
	s.events = append(s.events, *e)
	s.mu.Unlock()
}

// Events returns a snapshot of the collected events.
func (s *CollectSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
