package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"solver.nodes":     "licm_solver_nodes",
		"runtime.heap":     "licm_runtime_heap",
		"a-b c/d":          "licm_a_b_c_d",
		"already_ok":       "licm_already_ok",
		"with:colon.9":     "licm_with:colon_9",
		"mc.subset_accept": "licm_mc_subset_accept",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusRendersAllKinds(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("solver.nodes").Add(1234)
	reg.Gauge("runtime.heap_bytes").Set(-7) // gauges may be negative
	h := reg.Histogram("solver.lp_ns")
	for _, v := range []int64{0, 1, 3, 3, 100, 5000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE licm_solver_nodes_total counter",
		"licm_solver_nodes_total 1234",
		"# TYPE licm_runtime_heap_bytes gauge",
		"licm_runtime_heap_bytes -7",
		"# TYPE licm_solver_lp_ns histogram",
		`licm_solver_lp_ns_bucket{le="+Inf"} 6`,
		"licm_solver_lp_ns_sum 5107",
		"licm_solver_lp_ns_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Round-trip through our own parser and validator.
	fams, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, out)
	}
	if err := ValidateProm(fams); err != nil {
		t.Fatalf("ValidateProm: %v\n%s", err, out)
	}

	// Cumulative buckets must agree with the histogram snapshot:
	// every snapshot bucket [_, Lt) maps to le = Lt-1 with the
	// cumulative count up to that bucket.
	byName := map[string]*PromFamily{}
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}
	hf := byName["licm_solver_lp_ns"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", byName)
	}
	snap := h.Snapshot()
	var cum int64
	for _, b := range snap.Buckets {
		cum += b.N
		found := false
		for _, s := range hf.Samples {
			if s.Name == "licm_solver_lp_ns_bucket" && s.Label("le") != "+Inf" {
				le, err := parsePromValue(s.Label("le"))
				if err != nil {
					t.Fatalf("bad le %q", s.Label("le"))
				}
				if int64(le) == b.Lt-1 {
					found = true
					if int64(s.Value) != cum {
						t.Errorf("bucket le=%d = %v, want cumulative %d", b.Lt-1, s.Value, cum)
					}
				}
			}
		}
		if !found {
			t.Errorf("no bucket with le=%d in exposition", b.Lt-1)
		}
	}
	if c := hf.Sample("_count"); c == nil || int64(c.Value) != snap.Count {
		t.Errorf("_count = %+v, want %d", c, snap.Count)
	}
	if s := hf.Sample("_sum"); s == nil || int64(s.Value) != snap.Sum {
		t.Errorf("_sum = %+v, want %d", s, snap.Sum)
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	var reg *Registry
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

func TestRegistryExportTyped(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.count").Inc()
	reg.Counter("a.count").Add(2)
	reg.Gauge("g").Set(9)
	reg.Histogram("h").Observe(4)
	ex := reg.Export()
	if len(ex.Counters) != 2 || ex.Counters[0].Name != "a.count" || ex.Counters[1].Name != "b.count" {
		t.Errorf("counters = %+v", ex.Counters)
	}
	if len(ex.Gauges) != 1 || ex.Gauges[0].Value != 9 {
		t.Errorf("gauges = %+v", ex.Gauges)
	}
	if len(ex.Hists) != 1 || ex.Hists[0].Snap.Count != 1 {
		t.Errorf("hists = %+v", ex.Hists)
	}
	var nilReg *Registry
	if ex := nilReg.Export(); len(ex.Counters)+len(ex.Gauges)+len(ex.Hists) != 0 {
		t.Error("nil registry export non-empty")
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	bad := []string{
		"metric",     // no value
		"1metric 3",  // bad name
		`m{le=} 3`,   // unquoted label
		`m{le="x" 3`, // unterminated label set
		"m 3 4 5",    // trailing garbage
		"# TYPE m counter\n# TYPE m counter\nm 1", // duplicate TYPE
	}
	for _, in := range bad {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm(%q) accepted malformed input", in)
		}
	}
}

func TestValidatePromCatchesBrokenHistograms(t *testing.T) {
	cases := map[string]string{
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"non-monotone": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 7\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"negative counter": "# TYPE c_total counter\nc_total -1\n",
		"unknown type":     "# TYPE x sparkline\nx 1\n",
	}
	for name, in := range cases {
		fams, err := ParseProm(strings.NewReader(in))
		if err != nil {
			t.Errorf("%s: parse error %v (should parse, fail validation)", name, err)
			continue
		}
		if err := ValidateProm(fams); err == nil {
			t.Errorf("%s: validation accepted broken exposition", name)
		}
	}

	// And a good one passes.
	good := "# TYPE h histogram\n" +
		"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n" +
		"# TYPE c counter\nc_total 5\n# TYPE g gauge\ng -2\n"
	fams, err := ParseProm(strings.NewReader(good))
	if err != nil {
		t.Fatalf("good exposition failed to parse: %v", err)
	}
	if err := ValidateProm(fams); err != nil {
		t.Fatalf("good exposition failed validation: %v", err)
	}
}

func TestParsePromValues(t *testing.T) {
	if v, err := parsePromValue("+Inf"); err != nil || !math.IsInf(v, 1) {
		t.Errorf("+Inf = %v, %v", v, err)
	}
	if v, err := parsePromValue("-Inf"); err != nil || !math.IsInf(v, -1) {
		t.Errorf("-Inf = %v, %v", v, err)
	}
	if v, err := parsePromValue("NaN"); err != nil || !math.IsNaN(v) {
		t.Errorf("NaN = %v, %v", v, err)
	}
	if v, err := parsePromValue("2.5e3"); err != nil || int64(v) != 2500 {
		t.Errorf("2.5e3 = %v, %v", v, err)
	}
}

func TestTimeSeriesRingWraps(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	ts := NewTimeSeries(4, time.Second)
	base := time.UnixMilli(1_000_000)
	for i := 0; i < 10; i++ {
		c.Inc()
		ts.Sample(reg, base.Add(time.Duration(i)*time.Second))
	}
	snap := ts.Snapshot()
	if len(snap.Series) != 1 {
		t.Fatalf("series = %+v", snap.Series)
	}
	s := snap.Series[0]
	if s.Name != "x" || s.Kind != "counter" {
		t.Fatalf("series meta = %+v", s)
	}
	if len(s.Points) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(s.Points))
	}
	// Oldest → newest, the last 4 of 10 samples (values 7..10).
	for i, p := range s.Points {
		if want := int64(7 + i); p.V != want {
			t.Errorf("point %d = %+v, want v=%d", i, p, want)
		}
		if i > 0 && p.T <= s.Points[i-1].T {
			t.Errorf("timestamps not increasing: %+v", s.Points)
		}
	}
}

func TestTimeSeriesHistogramDerivedSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat").Observe(5)
	reg.Histogram("lat").Observe(7)
	reg.Gauge("heap").Set(42)
	ts := NewTimeSeries(8, time.Second)
	ts.Sample(reg, time.UnixMilli(1))
	snap := ts.Snapshot()
	got := map[string]TSSeries{}
	for _, s := range snap.Series {
		got[s.Name] = s
	}
	if s := got["lat.count"]; s.Kind != "counter" || len(s.Points) != 1 || s.Points[0].V != 2 {
		t.Errorf("lat.count = %+v", s)
	}
	if s := got["lat.sum"]; s.Kind != "counter" || s.Points[0].V != 12 {
		t.Errorf("lat.sum = %+v", s)
	}
	if s := got["heap"]; s.Kind != "gauge" || s.Points[0].V != 42 {
		t.Errorf("heap = %+v", s)
	}
}

func TestSampleRuntimePopulatesGauges(t *testing.T) {
	reg := NewRegistry()
	SampleRuntime(reg)
	if v := reg.Gauge("runtime.heap_bytes").Value(); v <= 0 {
		t.Errorf("runtime.heap_bytes = %d", v)
	}
	if v := reg.Gauge("runtime.goroutines").Value(); v <= 0 {
		t.Errorf("runtime.goroutines = %d", v)
	}
	// Quantile gauges exist (possibly zero early in process life).
	if v := reg.Gauge("runtime.gc_pause_p99_ns").Value(); v < 0 {
		t.Errorf("runtime.gc_pause_p99_ns = %d", v)
	}
	// Nil registry: the no-op contract holds.
	var nilReg *Registry
	SampleRuntime(nilReg)

	s := StartRuntimeSampler(reg, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	var nilSampler *RuntimeSampler
	nilSampler.Stop()
}
