package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"strings"
	"testing"
)

func TestLogOptionsFlagsAndLevels(t *testing.T) {
	var o LogOptions
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o.RegisterFlags(fs)
	if err := fs.Parse([]string{"-log-level", "info", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	log, err := o.NewLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("shown", "k", 1)
	line := strings.TrimSpace(buf.String())
	if strings.Contains(line, "hidden") {
		t.Errorf("debug record leaked at info level: %s", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("json format produced non-JSON %q: %v", line, err)
	}
	if rec["msg"] != "shown" || rec["k"] != float64(1) {
		t.Errorf("record = %v", rec)
	}
}

func TestLogOptionsDefaultsToWarnText(t *testing.T) {
	var buf bytes.Buffer
	log, err := LogOptions{}.NewLogger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("quiet")
	log.Warn("loud", "reason", "deadline")
	out := buf.String()
	if strings.Contains(out, "quiet") {
		t.Errorf("info leaked at default warn level: %s", out)
	}
	if !strings.Contains(out, "loud") || !strings.Contains(out, "reason=deadline") {
		t.Errorf("text handler output = %q", out)
	}
}

func TestLogOptionsRejectsBadValues(t *testing.T) {
	if _, err := (LogOptions{Level: "loudest"}).NewLogger(io.Discard); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := (LogOptions{Format: "xml"}).NewLogger(io.Discard); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := NewLogger(io.Discard, "debug", "json"); err != nil {
		t.Errorf("NewLogger(debug, json): %v", err)
	}
}
