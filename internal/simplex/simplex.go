// Package simplex implements a dense two-phase primal simplex method
// for linear programs with bounded variables:
//
//	maximize    c·x
//	subject to  a_i·x  (<= | >= | =)  b_i     for every row i
//	            lo_j <= x_j <= hi_j           for every variable j
//
// It exists to provide LP relaxation bounds for the binary integer
// programs produced by LICM query answering (internal/solver); the
// relaxation of a BIP simply sets every bound to [0,1]. The
// implementation favors robustness over raw speed: problems are
// decomposed into small connected components before they reach this
// package, so a dense tableau is appropriate.
//
// The paper solves its BIP instances with IBM ILOG CPLEX; this package
// together with internal/solver is the pure-Go substitute (see
// DESIGN.md, "Substitutions").
package simplex

import (
	"fmt"
	"math"

	"licm/internal/faultinject"
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies all constraints and bounds.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
	// IterLimit means the iteration budget was exhausted before
	// convergence; the result must not be trusted as a bound.
	IterLimit
)

// String returns a readable name for the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Op is a row comparison operator.
type Op int8

// Row operators.
const (
	LE Op = iota // <=
	GE           // >=
	EQ           // =
)

// Entry is one non-zero coefficient of a constraint row.
type Entry struct {
	Col  int
	Coef float64
}

type row struct {
	entries []Entry
	op      Op
	rhs     float64
}

// LP is a linear program under construction. Create with New, populate
// with SetObjective/SetBounds/AddRow, then call Solve.
type LP struct {
	n    int // structural variables
	obj  []float64
	lo   []float64
	hi   []float64
	rows []row
}

// New returns an LP with n structural variables, each bounded to
// [0,1] by default, and a zero objective.
func New(n int) *LP {
	lp := &LP{
		n:   n,
		obj: make([]float64, n),
		lo:  make([]float64, n),
		hi:  make([]float64, n),
	}
	for j := range lp.hi {
		lp.hi[j] = 1
	}
	return lp
}

// NumVars returns the number of structural variables.
func (lp *LP) NumVars() int { return lp.n }

// SetObjective sets the maximization objective coefficient of variable j.
func (lp *LP) SetObjective(j int, c float64) { lp.obj[j] = c }

// SetBounds sets the bounds of variable j. Use math.Inf for an
// unbounded side.
func (lp *LP) SetBounds(j int, lo, hi float64) {
	lp.lo[j] = lo
	lp.hi[j] = hi
}

// AddRow appends the constraint  sum(entries) op rhs.
func (lp *LP) AddRow(entries []Entry, op Op, rhs float64) {
	lp.rows = append(lp.rows, row{entries: append([]Entry(nil), entries...), op: op, rhs: rhs})
}

// Solution is the result of a successful Solve.
type Solution struct {
	// Obj is the optimal objective value.
	Obj float64
	// X holds the optimal values of the structural variables.
	X []float64
}

const eps = 1e-9

// Solve runs the two-phase simplex method and returns the solution
// when Status is Optimal. For any other status the solution contents
// are undefined.
func (lp *LP) Solve() (Solution, Status) {
	t := newTableau(lp)
	sol, st, _ := t.solve(false)
	return sol, st
}

// DualInfo carries per-row multipliers read off the final tableau.
// The vectors are float candidates, not proofs: a consumer that wants
// a sound bound must clip each multiplier to the sign its row operator
// admits and re-derive the bound in exact arithmetic (internal/cert
// does exactly that). Extraction never affects the primal result.
type DualInfo struct {
	// Duals has one multiplier per row when Status is Optimal: the
	// simplex multipliers y = c_B B^{-1} of the phase-2 optimum.
	Duals []float64
	// Farkas has one multiplier per row when Status is Infeasible:
	// the phase-1 multipliers at the infeasible optimum, a candidate
	// certificate that the row system admits no point in the box.
	Farkas []float64
}

// SolveWithDuals is Solve plus dual extraction: on Optimal the
// returned DualInfo carries the row duals, on Infeasible a Farkas
// candidate. Other statuses leave DualInfo empty.
func (lp *LP) SolveWithDuals() (Solution, Status, DualInfo) {
	t := newTableau(lp)
	return t.solve(true)
}

// tableau holds the dense working state of a solve. Columns are laid
// out as [0,n) structural, [n,n+m) slack, then one artificial column
// per row whose slack cannot start basic-feasible.
type tableau struct {
	n, m    int
	ncols   int
	nart    int
	a       [][]float64 // m x ncols, current tableau rows (B^{-1} A)
	lo, hi  []float64
	x       []float64
	atUpper []bool
	basis   []int
	inBasis []bool
	obj     []float64 // phase-2 objective, padded with zeros
	// corrupt latches when a pivot element is non-finite or vanishing:
	// the tableau can no longer be trusted and the solve must end with
	// IterLimit rather than a fabricated Optimal.
	corrupt bool
}

func newTableau(lp *LP) *tableau {
	n, m := lp.n, len(lp.rows)
	// First pass: compute residuals and decide which rows need an
	// artificial column (slack value out of its bounds).
	resid := make([]float64, m)
	needsArt := make([]bool, m)
	start := make([]float64, n)
	nart := 0
	for j := 0; j < n; j++ {
		switch {
		case !math.IsInf(lp.lo[j], -1):
			start[j] = lp.lo[j]
		case !math.IsInf(lp.hi[j], 1):
			start[j] = lp.hi[j]
		}
	}
	for i, r := range lp.rows {
		v := r.rhs
		for _, e := range r.entries {
			v -= e.Coef * start[e.Col]
		}
		resid[i] = v
		switch r.op {
		case LE:
			needsArt[i] = v < 0
		case GE:
			needsArt[i] = v > 0
		case EQ:
			needsArt[i] = !exactlyZero(v)
		}
		if needsArt[i] {
			nart++
		}
	}
	ncols := n + m + nart
	t := &tableau{
		n:       n,
		m:       m,
		ncols:   ncols,
		nart:    nart,
		a:       make([][]float64, m),
		lo:      make([]float64, ncols),
		hi:      make([]float64, ncols),
		x:       make([]float64, ncols),
		atUpper: make([]bool, ncols),
		basis:   make([]int, m),
		inBasis: make([]bool, ncols),
		obj:     make([]float64, ncols),
	}
	copy(t.lo, lp.lo)
	copy(t.hi, lp.hi)
	copy(t.obj, lp.obj)
	nextArt := n + m
	for i, r := range lp.rows {
		rowv := make([]float64, ncols)
		for _, e := range r.entries {
			rowv[e.Col] += e.Coef
		}
		slack := n + i
		rowv[slack] = 1
		switch r.op {
		case LE:
			t.lo[slack], t.hi[slack] = 0, math.Inf(1)
		case GE:
			t.lo[slack], t.hi[slack] = math.Inf(-1), 0
		case EQ:
			t.lo[slack], t.hi[slack] = 0, 0
		}
		if !needsArt[i] {
			// The slack itself starts basic at the residual value,
			// which is within its bounds: no artificial needed.
			t.a[i] = rowv
			t.basis[i] = slack
			t.inBasis[slack] = true
			t.x[slack] = resid[i]
			continue
		}
		// Artificial variable absorbs the initial residual so that the
		// starting basis is feasible for phase 1. Negate the row when
		// the residual is negative so the artificial's column is +1:
		// basic columns must form an identity.
		art := nextArt
		nextArt++
		if resid[i] < 0 {
			for k := range rowv {
				rowv[k] = -rowv[k]
			}
		}
		rowv[art] = 1
		t.lo[art], t.hi[art] = 0, math.Inf(1)
		t.a[i] = rowv
		t.basis[i] = art
		t.inBasis[art] = true
		t.x[art] = math.Abs(resid[i])
	}
	for j := 0; j < n; j++ {
		t.x[j] = start[j]
		t.atUpper[j] = math.IsInf(t.lo[j], -1) && !math.IsInf(t.hi[j], 1)
	}
	// Nonbasic slacks start at 0, a bound in all three cases. A GE
	// slack's finite bound is its upper bound.
	for i := 0; i < m; i++ {
		slack := n + i
		if !t.inBasis[slack] {
			t.atUpper[slack] = math.IsInf(t.lo[slack], -1)
		}
	}
	return t
}

func (t *tableau) solve(wantDuals bool) (Solution, Status, DualInfo) {
	var di DualInfo
	// Phase 1: maximize -(sum of artificials).
	if t.nart > 0 {
		phase1 := make([]float64, t.ncols)
		for art := t.n + t.m; art < t.ncols; art++ {
			phase1[art] = -1
		}
		st := t.iterate(phase1)
		if st == IterLimit {
			return Solution{}, IterLimit, di
		}
		infeas := 0.0
		for art := t.n + t.m; art < t.ncols; art++ {
			infeas += t.x[art]
		}
		if infeas > 1e-7 {
			if wantDuals {
				di.Farkas = t.rowDuals(phase1)
			}
			return Solution{}, Infeasible, di
		}
	}
	// Forbid artificials from re-entering or growing.
	for art := t.n + t.m; art < t.ncols; art++ {
		t.hi[art] = 0
		t.lo[art] = 0
		t.x[art] = 0
	}
	// Phase 2: the real objective.
	st := t.iterate(t.obj)
	switch st {
	case Optimal:
		sol := Solution{X: make([]float64, t.n)}
		copy(sol.X, t.x[:t.n])
		for j := 0; j < t.n; j++ {
			sol.Obj += t.obj[j] * t.x[j]
		}
		if wantDuals {
			di.Duals = t.rowDuals(t.obj)
		}
		return sol, Optimal, di
	default:
		return Solution{}, st, di
	}
}

// rowDuals reads the simplex multipliers off the final tableau:
// y_i = sum_k obj[basis[k]] * a[k][n+i], the reduced-cost defect of
// row i's slack column. That column is the i-th column of B^{-1} up to
// the sign flip newTableau applies to rows whose residual forced an
// artificial — but the same flip also relates the tableau's dual frame
// to the caller's row frame, so the two cancel and no sign correction
// is needed. Rows are small and dense here, so the m x m sweep is fine.
func (t *tableau) rowDuals(obj []float64) []float64 {
	y := make([]float64, t.m)
	for k := 0; k < t.m; k++ {
		cb := obj[t.basis[k]]
		if exactlyZero(cb) {
			continue
		}
		row := t.a[k]
		for i := 0; i < t.m; i++ {
			y[i] += cb * row[t.n+i]
		}
	}
	return y
}

// iterate runs primal simplex iterations maximizing obj until optimal,
// unbounded, or the iteration budget is hit.
func (t *tableau) iterate(obj []float64) Status {
	maxIter := 200*(t.m+t.ncols) + 2000
	stall := 0
	lastObj := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		if t.corrupt {
			return IterLimit
		}
		bland := stall > 2*(t.m+t.n)+50
		j, dir := t.chooseEntering(obj, bland)
		if j < 0 {
			return Optimal
		}
		delta, leave, leaveToUpper := t.ratioTest(j, dir)
		if math.IsInf(delta, 1) {
			return Unbounded
		}
		t.applyStep(j, dir, delta, leave, leaveToUpper)
		cur := 0.0
		for _, bi := range t.basis {
			cur += obj[bi] * t.x[bi]
		}
		for jj := 0; jj < t.ncols; jj++ {
			if !t.inBasis[jj] && !exactlyZero(obj[jj]) {
				cur += obj[jj] * t.x[jj]
			}
		}
		if cur > lastObj+eps {
			stall = 0
			lastObj = cur
		} else {
			stall++
		}
	}
	return IterLimit
}

// chooseEntering returns the entering column and its direction (+1 to
// increase from lower bound, -1 to decrease from upper bound), or
// (-1,0) if no candidate has a favorable reduced cost (optimal).
func (t *tableau) chooseEntering(obj []float64, bland bool) (int, int) {
	// Precompute the rows whose basic variable has a non-zero
	// objective weight; only those contribute to reduced costs. LICM
	// objectives are sparse, so this list is short in phase 2.
	type weighted struct {
		row int
		w   float64
	}
	var wrows []weighted
	for i := 0; i < t.m; i++ {
		if cb := obj[t.basis[i]]; !exactlyZero(cb) {
			wrows = append(wrows, weighted{i, cb})
		}
	}
	best, bestScore, bestDir := -1, eps, 0
	for j := 0; j < t.ncols; j++ {
		if t.inBasis[j] {
			continue
		}
		if exactlyEqual(t.lo[j], t.hi[j]) { // fixed variable can never move
			continue
		}
		// Reduced cost d_j = obj_j - sum_i obj_basis[i] * a[i][j].
		d := obj[j]
		for _, wr := range wrows {
			d -= wr.w * t.a[wr.row][j]
		}
		var dir int
		switch {
		case d > eps && !t.atUpper[j]:
			dir = +1
		case d < -eps && t.atUpper[j]:
			dir = -1
		default:
			continue
		}
		if bland {
			return j, dir
		}
		if s := math.Abs(d); s > bestScore {
			best, bestScore, bestDir = j, s, dir
		}
	}
	return best, bestDir
}

// ratioTest computes how far the entering variable j can move in
// direction dir before it or a basic variable hits a bound. It returns
// the step length, the limiting basic row (-1 for a bound flip of j
// itself), and whether the leaving variable leaves at its upper bound.
func (t *tableau) ratioTest(j, dir int) (delta float64, leave int, leaveToUpper bool) {
	delta = math.Inf(1)
	leave = -1
	// The entering variable's own opposite bound.
	if dir > 0 && !math.IsInf(t.hi[j], 1) {
		delta = t.hi[j] - t.x[j]
	} else if dir < 0 && !math.IsInf(t.lo[j], -1) {
		delta = t.x[j] - t.lo[j]
	}
	for i := 0; i < t.m; i++ {
		alpha := float64(dir) * t.a[i][j]
		bi := t.basis[i]
		switch {
		case alpha > eps: // basic variable decreases
			if !math.IsInf(t.lo[bi], -1) {
				if lim := (t.x[bi] - t.lo[bi]) / alpha; lim < delta-eps ||
					(lim < delta+eps && (leave == -1 || bi < t.basis[leave])) {
					if lim < 0 {
						lim = 0
					}
					delta, leave, leaveToUpper = lim, i, false
				}
			}
		case alpha < -eps: // basic variable increases
			if !math.IsInf(t.hi[bi], 1) {
				if lim := (t.hi[bi] - t.x[bi]) / (-alpha); lim < delta-eps ||
					(lim < delta+eps && (leave == -1 || bi < t.basis[leave])) {
					if lim < 0 {
						lim = 0
					}
					delta, leave, leaveToUpper = lim, i, true
				}
			}
		}
	}
	return delta, leave, leaveToUpper
}

// applyStep moves the entering variable, updates all basic values, and
// performs the pivot (or bound flip).
func (t *tableau) applyStep(j, dir int, delta float64, leave int, leaveToUpper bool) {
	if delta > 0 {
		t.x[j] += float64(dir) * delta
		for i := 0; i < t.m; i++ {
			t.x[t.basis[i]] -= float64(dir) * delta * t.a[i][j]
		}
	}
	if leave < 0 {
		// Bound flip: j moves to its opposite bound and stays nonbasic.
		t.atUpper[j] = dir > 0
		return
	}
	leaving := t.basis[leave]
	t.inBasis[leaving] = false
	t.atUpper[leaving] = leaveToUpper
	// Snap the leaving variable exactly onto its bound to stop
	// numerical drift from accumulating.
	if leaveToUpper {
		t.x[leaving] = t.hi[leaving]
	} else {
		t.x[leaving] = t.lo[leaving]
	}
	t.pivot(leave, j)
	t.basis[leave] = j
	t.inBasis[j] = true
}

// pivot performs Gaussian elimination so that column j becomes the
// unit vector for row r. It is the fault-injection site for numerical
// corruption: an armed plan can poison the pivot element (NaN/Inf) or
// panic at an exact pivot index, exercising the solver's defenses
// against a misbehaving LP kernel.
func (t *tableau) pivot(r, j int) {
	if faultinject.Enabled() {
		switch faultinject.Check(faultinject.LPPivot) {
		case faultinject.Panic:
			panic(&faultinject.Injected{Site: faultinject.LPPivot, Hit: faultinject.Hits(faultinject.LPPivot) - 1})
		case faultinject.JitterNaN:
			t.a[r][j] = math.NaN()
		case faultinject.JitterInf:
			t.a[r][j] = math.Inf(1)
		}
	}
	piv := t.a[r][j]
	if math.IsNaN(piv) || math.IsInf(piv, 0) || math.Abs(piv) < 1e-12 {
		t.corrupt = true
		return
	}
	inv := 1 / piv
	rowR := t.a[r]
	for k := 0; k < t.ncols; k++ {
		rowR[k] *= inv
	}
	rowR[j] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][j]
		if exactlyZero(f) {
			continue
		}
		rowI := t.a[i]
		for k := 0; k < t.ncols; k++ {
			rowI[k] -= f * rowR[k]
		}
		rowI[j] = 0 // exact
	}
}
