package simplex

// This file is the one place in the package (and, by licmlint's
// floatcmp rule, in the repository) where floating-point values are
// compared with == or !=. Each helper documents why exact comparison
// is correct at its call sites; everything else must use the
// eps-based tests. Keeping the exact comparisons here means a reader
// auditing the numerics has one short file to review, and a refactor
// that introduces a new raw comparison is caught by `licmlint`.

// exactlyZero reports v == 0 with no tolerance. Correct where v is
// known to be exactly representable or where only the literal zero
// matters: skipping a pivot row whose multiplier is the stored 0.0
// (any other value, however tiny, must still be eliminated to keep
// the tableau consistent), or testing coefficients that were copied
// verbatim from the int64 problem.
func exactlyZero(v float64) bool { return v == 0 }

// exactlyEqual reports a == b with no tolerance. Correct for values
// that were assigned, not computed — e.g. variable bounds, where
// lo == hi means "fixed variable" only if both ends hold the very
// same stored value.
func exactlyEqual(a, b float64) bool { return a == b }
