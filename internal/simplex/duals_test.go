package simplex

import (
	"math"
	"testing"
)

// dualTestLP is a small LP spec the dual tests can replay: rows are
// kept so the test can recompute weak-duality bounds from the
// extracted multipliers.
type dualTestLP struct {
	name string
	n    int
	obj  []float64
	lo   []float64
	hi   []float64
	rows []row
}

func (d *dualTestLP) build() *LP {
	lp := New(d.n)
	for j, c := range d.obj {
		lp.SetObjective(j, c)
	}
	if d.lo != nil {
		for j := range d.lo {
			lp.SetBounds(j, d.lo[j], d.hi[j])
		}
	}
	for _, r := range d.rows {
		lp.AddRow(r.entries, r.op, r.rhs)
	}
	return lp
}

// clipSign zeroes multipliers whose sign the row operator does not
// admit (LE wants y>=0, GE wants y<=0, EQ is free) — the same
// sanitation internal/cert applies before exact re-checking.
func clipSign(rows []row, y []float64) []float64 {
	out := append([]float64(nil), y...)
	for i, r := range rows {
		switch {
		case r.op == LE && out[i] < 0:
			out[i] = 0
		case r.op == GE && out[i] > 0:
			out[i] = 0
		}
	}
	return out
}

// dualBound computes the weak-duality bound sum_i y_i b_i + sum_j
// max_{x_j in [lo,hi]} r_j x_j with r = c - A^T y.
func dualBound(d *dualTestLP, y []float64) float64 {
	r := append([]float64(nil), d.obj...)
	u := 0.0
	for i, rw := range d.rows {
		u += y[i] * rw.rhs
		for _, e := range rw.entries {
			r[e.Col] -= y[i] * e.Coef
		}
	}
	for j := 0; j < d.n; j++ {
		lo, hi := 0.0, 1.0
		if d.lo != nil {
			lo, hi = d.lo[j], d.hi[j]
		}
		u += math.Max(r[j]*lo, r[j]*hi)
	}
	return u
}

func TestSolveWithDualsWeakDuality(t *testing.T) {
	cases := []dualTestLP{
		{
			name: "binding-le",
			n:    2,
			obj:  []float64{1, 1},
			rows: []row{{entries: []Entry{{0, 1}, {1, 1}}, op: LE, rhs: 1}},
		},
		{
			name: "negated-row-artificial",
			// -x <= -1 forces an artificial with a negative residual,
			// exercising the row-flip path of newTableau.
			n:    1,
			obj:  []float64{-1},
			lo:   []float64{0},
			hi:   []float64{2},
			rows: []row{{entries: []Entry{{0, -1}}, op: LE, rhs: -1}},
		},
		{
			name: "mixed-ops",
			n:    3,
			obj:  []float64{3, -2, 1},
			rows: []row{
				{entries: []Entry{{0, 1}, {1, 1}, {2, 1}}, op: LE, rhs: 2},
				{entries: []Entry{{0, 1}, {1, -1}}, op: GE, rhs: 0},
				{entries: []Entry{{1, 1}, {2, 1}}, op: EQ, rhs: 1},
			},
		},
		{
			name: "cardinality-like",
			n:    4,
			obj:  []float64{5, 1, 4, 2},
			rows: []row{
				{entries: []Entry{{0, 1}, {1, 1}}, op: LE, rhs: 1},
				{entries: []Entry{{2, 1}, {3, 1}}, op: GE, rhs: 1},
				{entries: []Entry{{0, 1}, {2, 1}, {3, 1}}, op: LE, rhs: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lp := tc.build()
			sol, st, di := lp.SolveWithDuals()
			if st != Optimal {
				t.Fatalf("status = %v, want optimal", st)
			}
			if len(di.Duals) != len(tc.rows) {
				t.Fatalf("got %d duals, want %d", len(di.Duals), len(tc.rows))
			}
			y := clipSign(tc.rows, di.Duals)
			u := dualBound(&tc, y)
			if u < sol.Obj-1e-6 {
				t.Fatalf("dual bound %.9f below primal optimum %.9f: not a valid bound", u, sol.Obj)
			}
			if u > sol.Obj+1e-4 {
				t.Fatalf("dual bound %.9f far above optimum %.9f: extraction is not tight", u, sol.Obj)
			}
		})
	}
}

func TestSolveWithDualsFarkas(t *testing.T) {
	cases := []dualTestLP{
		{
			name: "ge-over-capacity",
			// x0 + x1 >= 3 cannot hold inside the unit box.
			n:    2,
			rows: []row{{entries: []Entry{{0, 1}, {1, 1}}, op: GE, rhs: 3}},
		},
		{
			name: "contradictory-pair",
			n:    2,
			rows: []row{
				{entries: []Entry{{0, 1}, {1, 1}}, op: LE, rhs: 1},
				{entries: []Entry{{0, 1}}, op: GE, rhs: 1},
				{entries: []Entry{{1, 1}}, op: GE, rhs: 1},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lp := tc.build()
			_, st, di := lp.SolveWithDuals()
			if st != Infeasible {
				t.Fatalf("status = %v, want infeasible", st)
			}
			if len(di.Farkas) != len(tc.rows) {
				t.Fatalf("got %d farkas multipliers, want %d", len(di.Farkas), len(tc.rows))
			}
			// The extracted vector certifies infeasibility when, after
			// sign clipping, min over the box of (sum_i y_i a_i)x exceeds
			// sum_i y_i b_i. Sign conventions between the phase-1 frame
			// and the row frame can differ, so try both orientations —
			// exactly what the certificate emitter does.
			if !farkasValid(&tc, clipSign(tc.rows, di.Farkas)) &&
				!farkasValid(&tc, clipSign(tc.rows, negate(di.Farkas))) {
				t.Fatalf("neither orientation of the farkas candidate %v certifies infeasibility", di.Farkas)
			}
		})
	}
}

func negate(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = -x
	}
	return out
}

func farkasValid(d *dualTestLP, y []float64) bool {
	agg := make([]float64, d.n)
	e := 0.0
	for i, rw := range d.rows {
		e += y[i] * rw.rhs
		for _, en := range rw.entries {
			agg[en.Col] += y[i] * en.Coef
		}
	}
	minAct := 0.0
	for j := 0; j < d.n; j++ {
		lo, hi := 0.0, 1.0
		if d.lo != nil {
			lo, hi = d.lo[j], d.hi[j]
		}
		minAct += math.Min(agg[j]*lo, agg[j]*hi)
	}
	return minAct > e+1e-7
}

// TestSolveMatchesSolveWithDuals pins that dual extraction is a pure
// read of the final tableau: the primal answer must be bit-identical
// to what Solve returns.
func TestSolveMatchesSolveWithDuals(t *testing.T) {
	lp1 := New(3)
	lp2 := New(3)
	for _, lp := range []*LP{lp1, lp2} {
		lp.SetObjective(0, 2)
		lp.SetObjective(1, 3)
		lp.SetObjective(2, 1)
		lp.AddRow([]Entry{{0, 1}, {1, 1}, {2, 1}}, LE, 2)
		lp.AddRow([]Entry{{0, 1}, {1, -1}}, GE, 0)
	}
	s1, st1 := lp1.Solve()
	s2, st2, _ := lp2.SolveWithDuals()
	if st1 != st2 || s1.Obj != s2.Obj {
		t.Fatalf("Solve (%v, %v) and SolveWithDuals (%v, %v) disagree", s1.Obj, st1, s2.Obj, st2)
	}
	for j := range s1.X {
		if s1.X[j] != s2.X[j] {
			t.Fatalf("x[%d]: %v vs %v", j, s1.X[j], s2.X[j])
		}
	}
}
