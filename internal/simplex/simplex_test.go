package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func solveOrFatal(t *testing.T, lp *LP) Solution {
	t.Helper()
	sol, st := lp.Solve()
	if st != Optimal {
		t.Fatalf("Solve status = %v, want optimal", st)
	}
	return sol
}

func TestTrivialNoRows(t *testing.T) {
	lp := New(3)
	lp.SetObjective(0, 1)
	lp.SetObjective(1, -2)
	lp.SetObjective(2, 0.5)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-1.5) > 1e-7 {
		t.Errorf("obj = %v, want 1.5", sol.Obj)
	}
	if math.Abs(sol.X[0]-1) > 1e-7 || math.Abs(sol.X[1]) > 1e-7 || math.Abs(sol.X[2]-1) > 1e-7 {
		t.Errorf("x = %v", sol.X)
	}
}

func TestSingleLERow(t *testing.T) {
	// max x0 + x1  s.t. x0 + x1 <= 1, x in [0,1]^2.
	lp := New(2)
	lp.SetObjective(0, 1)
	lp.SetObjective(1, 1)
	lp.AddRow([]Entry{{0, 1}, {1, 1}}, LE, 1)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-1) > 1e-7 {
		t.Errorf("obj = %v, want 1", sol.Obj)
	}
}

func TestGERowNeedsPhase1(t *testing.T) {
	// max -x0 - x1  s.t. x0 + x1 >= 1: optimum -1.
	lp := New(2)
	lp.SetObjective(0, -1)
	lp.SetObjective(1, -1)
	lp.AddRow([]Entry{{0, 1}, {1, 1}}, GE, 1)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj+1) > 1e-7 {
		t.Errorf("obj = %v, want -1", sol.Obj)
	}
}

func TestEqualityRow(t *testing.T) {
	// max x0  s.t. x0 + x1 = 1, x1 >= 0.4: optimum x0 = 0.6.
	lp := New(2)
	lp.SetObjective(0, 1)
	lp.AddRow([]Entry{{0, 1}, {1, 1}}, EQ, 1)
	lp.AddRow([]Entry{{1, 1}}, GE, 0.4)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-0.6) > 1e-7 {
		t.Errorf("obj = %v, want 0.6", sol.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	lp := New(2)
	lp.AddRow([]Entry{{0, 1}, {1, 1}}, GE, 3) // impossible in [0,1]^2
	_, st := lp.Solve()
	if st != Infeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
}

func TestInfeasibleEquality(t *testing.T) {
	lp := New(1)
	lp.AddRow([]Entry{{0, 1}}, EQ, 2)
	_, st := lp.Solve()
	if st != Infeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
}

func TestWiderBounds(t *testing.T) {
	// max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, 0<=x<=10, 0<=y<=10.
	// Optimum at (4,0): 12.
	lp := New(2)
	lp.SetBounds(0, 0, 10)
	lp.SetBounds(1, 0, 10)
	lp.SetObjective(0, 3)
	lp.SetObjective(1, 2)
	lp.AddRow([]Entry{{0, 1}, {1, 1}}, LE, 4)
	lp.AddRow([]Entry{{0, 1}, {1, 3}}, LE, 6)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-12) > 1e-7 {
		t.Errorf("obj = %v, want 12", sol.Obj)
	}
}

func TestClassicDantzig(t *testing.T) {
	// max 5x + 4y + 3z
	// s.t. 2x + 3y + z <= 5; 4x + y + 2z <= 11; 3x + 4y + 2z <= 8.
	// Known optimum 13 at (2, 0, 1).
	lp := New(3)
	for j := 0; j < 3; j++ {
		lp.SetBounds(j, 0, 100)
	}
	lp.SetObjective(0, 5)
	lp.SetObjective(1, 4)
	lp.SetObjective(2, 3)
	lp.AddRow([]Entry{{0, 2}, {1, 3}, {2, 1}}, LE, 5)
	lp.AddRow([]Entry{{0, 4}, {1, 1}, {2, 2}}, LE, 11)
	lp.AddRow([]Entry{{0, 3}, {1, 4}, {2, 2}}, LE, 8)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-13) > 1e-6 {
		t.Errorf("obj = %v, want 13", sol.Obj)
	}
}

func TestFractionalOptimum(t *testing.T) {
	// max x + y s.t. 2x + y <= 2, x + 2y <= 2 in [0,1]^2:
	// optimum at (2/3, 2/3) = 4/3.
	lp := New(2)
	lp.SetObjective(0, 1)
	lp.SetObjective(1, 1)
	lp.AddRow([]Entry{{0, 2}, {1, 1}}, LE, 2)
	lp.AddRow([]Entry{{0, 1}, {1, 2}}, LE, 2)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-4.0/3.0) > 1e-7 {
		t.Errorf("obj = %v, want 4/3", sol.Obj)
	}
}

func TestLICMLineageShape(t *testing.T) {
	// The constraints the intersection operator generates:
	// max b5 s.t. b5 <= b1, b5 <= b3, b5 >= b1 + b3 - 1, b1 + b2 >= 1.
	// LP optimum is 1 (b1 = b3 = b5 = 1).
	lp := New(4) // b1,b2,b3,b5 -> cols 0,1,2,3
	lp.SetObjective(3, 1)
	lp.AddRow([]Entry{{3, 1}, {0, -1}}, LE, 0)
	lp.AddRow([]Entry{{3, 1}, {2, -1}}, LE, 0)
	lp.AddRow([]Entry{{3, 1}, {0, -1}, {2, -1}}, GE, -1)
	lp.AddRow([]Entry{{0, 1}, {1, 1}}, GE, 1)
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-1) > 1e-7 {
		t.Errorf("obj = %v, want 1", sol.Obj)
	}
}

func TestPermutationRelaxation(t *testing.T) {
	// Bijection constraints on a 3x3 assignment; maximize the diagonal.
	// The LP over the Birkhoff polytope has integral optimum 3.
	lp := New(9)
	idx := func(i, j int) int { return 3*i + j }
	for i := 0; i < 3; i++ {
		var r, c []Entry
		for j := 0; j < 3; j++ {
			r = append(r, Entry{idx(i, j), 1})
			c = append(c, Entry{idx(j, i), 1})
		}
		lp.AddRow(r, EQ, 1)
		lp.AddRow(c, EQ, 1)
	}
	for i := 0; i < 3; i++ {
		lp.SetObjective(idx(i, i), 1)
	}
	sol := solveOrFatal(t, lp)
	if math.Abs(sol.Obj-3) > 1e-6 {
		t.Errorf("obj = %v, want 3", sol.Obj)
	}
}

func TestSolutionWithinBoundsAndRows(t *testing.T) {
	// Random LPs: verify the reported solution is feasible and its
	// objective matches c·x.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(5)
		m := r.Intn(5)
		lp := New(n)
		for j := 0; j < n; j++ {
			lp.SetObjective(j, float64(r.Intn(11)-5))
		}
		type savedRow struct {
			entries []Entry
			op      Op
			rhs     float64
		}
		var rows []savedRow
		for i := 0; i < m; i++ {
			var entries []Entry
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					entries = append(entries, Entry{j, float64(r.Intn(7) - 3)})
				}
			}
			if len(entries) == 0 {
				continue
			}
			op := Op(r.Intn(2)) // LE or GE; EQ covered elsewhere
			rhs := float64(r.Intn(5) - 1)
			lp.AddRow(entries, op, rhs)
			rows = append(rows, savedRow{entries, op, rhs})
		}
		sol, st := lp.Solve()
		if st == Infeasible {
			continue
		}
		if st != Optimal {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		obj := 0.0
		for j := 0; j < n; j++ {
			x := sol.X[j]
			if x < -1e-6 || x > 1+1e-6 {
				t.Fatalf("trial %d: x[%d] = %v out of [0,1]", trial, j, x)
			}
			obj += lp.obj[j] * x
		}
		if math.Abs(obj-sol.Obj) > 1e-6 {
			t.Fatalf("trial %d: reported obj %v != recomputed %v", trial, sol.Obj, obj)
		}
		for _, rr := range rows {
			v := 0.0
			for _, e := range rr.entries {
				v += e.Coef * sol.X[e.Col]
			}
			ok := true
			switch rr.op {
			case LE:
				ok = v <= rr.rhs+1e-6
			case GE:
				ok = v >= rr.rhs-1e-6
			}
			if !ok {
				t.Fatalf("trial %d: row violated: %v vs %v", trial, v, rr.rhs)
			}
		}
	}
}

// TestAgainstVertexEnumeration compares the simplex optimum with a
// brute-force scan over the 0/1 cube refined by bisection along edges.
// For LPs whose optimum is at a cube vertex this is exact; we restrict
// to generated instances with totally unimodular-ish single-row
// structure so the optimum is integral.
func TestAgainstVertexEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(4)
		lp := New(n)
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = float64(r.Intn(9) - 4)
			lp.SetObjective(j, c[j])
		}
		// One cardinality row: sum of a subset >= or <= bound. The LP
		// optimum is then attained at a 0/1 point.
		var entries []Entry
		for j := 0; j < n; j++ {
			if r.Intn(2) == 0 {
				entries = append(entries, Entry{j, 1})
			}
		}
		op := Op(r.Intn(2))
		rhs := float64(r.Intn(n + 1))
		if len(entries) > 0 {
			lp.AddRow(entries, op, rhs)
		}
		sol, st := lp.Solve()
		// Brute force over 0/1 vertices.
		best := math.Inf(-1)
		feasibleExists := false
		for mask := 0; mask < 1<<n; mask++ {
			v := 0.0
			for _, e := range entries {
				if mask&(1<<e.Col) != 0 {
					v += e.Coef
				}
			}
			ok := len(entries) == 0
			if !ok {
				switch op {
				case LE:
					ok = v <= rhs
				case GE:
					ok = v >= rhs
				}
			}
			if !ok {
				continue
			}
			feasibleExists = true
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += c[j]
				}
			}
			best = math.Max(best, obj)
		}
		if !feasibleExists {
			if st != Infeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, st)
			}
			continue
		}
		if st != Optimal {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		if sol.Obj < best-1e-6 {
			t.Fatalf("trial %d: LP obj %v below integral optimum %v", trial, sol.Obj, best)
		}
		// With a single cardinality row the LP relaxation is exact.
		if math.Abs(sol.Obj-best) > 1e-6 {
			t.Fatalf("trial %d: LP obj %v, integral optimum %v", trial, sol.Obj, best)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("Status.String mismatch")
	}
}

func BenchmarkSolveAssignment8(b *testing.B) {
	// An 8x8 Birkhoff polytope LP, the shape produced by bipartite
	// grouping with k = 8.
	build := func() *LP {
		lp := New(64)
		idx := func(i, j int) int { return 8*i + j }
		for i := 0; i < 8; i++ {
			var r, c []Entry
			for j := 0; j < 8; j++ {
				r = append(r, Entry{idx(i, j), 1})
				c = append(c, Entry{idx(j, i), 1})
			}
			lp.AddRow(r, EQ, 1)
			lp.AddRow(c, EQ, 1)
		}
		for i := 0; i < 8; i++ {
			lp.SetObjective(idx(i, (i+3)%8), 1)
		}
		return lp
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lp := build()
		if _, st := lp.Solve(); st != Optimal {
			b.Fatalf("status %v", st)
		}
	}
}
