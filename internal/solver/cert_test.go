package solver

import (
	"errors"
	"strings"
	"testing"

	"licm/internal/expr"
)

// walkCert does structural validation of a proof tree: branch nodes
// decide an in-range, not-yet-decided variable and have both
// children; leaves carry a known kind. It returns the leaf-kind
// census. Exact replay of the leaf justifications is the job of
// internal/cert (the independent verifier); here we pin the recorder
// contract.
func walkCert(t *testing.T, cc *CertComp) map[string]int {
	t.Helper()
	leaves := map[string]int{}
	dec := make([]int8, cc.Vars)
	for i := range dec {
		dec[i] = -1
	}
	var walk func(nd *CertNode)
	walk = func(nd *CertNode) {
		if nd == nil {
			t.Fatalf("component %d: nil node inside proof tree", cc.Index)
		}
		if nd.Var >= 0 {
			if int(nd.Var) >= cc.Vars {
				t.Fatalf("component %d: branch on out-of-range variable %d", cc.Index, nd.Var)
			}
			if dec[nd.Var] != -1 {
				t.Fatalf("component %d: variable %d decided twice on one path", cc.Index, nd.Var)
			}
			if nd.Zero == nil || nd.One == nil {
				t.Fatalf("component %d: branch node missing a child", cc.Index)
			}
			dec[nd.Var] = 0
			walk(nd.Zero)
			dec[nd.Var] = 1
			walk(nd.One)
			dec[nd.Var] = -1
			return
		}
		switch nd.Leaf {
		case CertLeafDual, CertLeafIntopt, CertLeafFarkas:
			leaves[nd.Leaf]++
		default:
			t.Fatalf("component %d: leaf with unknown kind %q", cc.Index, nd.Leaf)
		}
		if nd.Y != nil && len(nd.Y) != len(cc.Cons) {
			t.Fatalf("component %d: leaf multiplier vector has %d entries, want %d", cc.Index, len(nd.Y), len(cc.Cons))
		}
		if nd.Leaf == CertLeafIntopt && len(nd.X) != cc.Vars {
			t.Fatalf("component %d: intopt point has %d entries, want %d", cc.Index, len(nd.X), cc.Vars)
		}
	}
	walk(cc.Tree)
	return leaves
}

// TestCertifyOptimal: a proven solve certifies every component, the
// value accounting Base + sum(values) == Result.Value holds exactly,
// and each witness achieves its claimed value.
func TestCertifyOptimal(t *testing.T) {
	p := hardProblem()
	crec := &CertRecorder{}
	opts := DefaultOptions()
	opts.Certify = crec
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatal("expected a proven solve")
	}
	runs := crec.Runs()
	if len(runs) != 1 {
		t.Fatalf("recorded %d runs, want 1", len(runs))
	}
	run := runs[0]
	if run.Sense != "max" || !run.Proven || run.Err != "" {
		t.Fatalf("run header = %+v, want proven max with no error", run)
	}
	if run.Value != res.Value {
		t.Fatalf("run value %d != result value %d", run.Value, res.Value)
	}
	if len(run.Comps) == 0 {
		t.Fatal("no components recorded")
	}
	sum := run.Base
	for i := range run.Comps {
		cc := &run.Comps[i]
		if cc.Status != CertOptimal {
			t.Fatalf("component %d status %q (skip=%q), want optimal", cc.Index, cc.Status, cc.Skip)
		}
		if len(cc.Witness) != cc.Vars {
			t.Fatalf("component %d witness length %d, want %d", cc.Index, len(cc.Witness), cc.Vars)
		}
		val, feas := pointCheck(&ExplainComp{Vars: cc.Vars, Cons: cc.Cons, Obj: cc.Obj}, cc.Witness)
		if !feas || val != cc.Value {
			t.Fatalf("component %d witness: feasible=%v value=%d, claimed %d", cc.Index, feas, val, cc.Value)
		}
		walkCert(t, cc)
		sum += cc.Value
	}
	if sum != res.Value {
		t.Fatalf("base %d + component values = %d, result value %d", run.Base, sum, res.Value)
	}
}

// TestCertifyBranchingTree: an odd cycle with weight-2 objective makes
// the root LP bound too weak (3 vs optimum 2), forcing the
// certification pass to actually branch; the tree must still close
// and contain at least one branch node.
func TestCertifyBranchingTree(t *testing.T) {
	cons := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1), expr.LE, 1),
		expr.NewConstraint(expr.Sum(1, 2), expr.LE, 1),
		expr.NewConstraint(expr.Sum(0, 2), expr.LE, 1),
	}
	obj := expr.Lin{}
	for v := 0; v < 3; v++ {
		obj = obj.AddTerm(expr.Var(v), 2)
	}
	p := &Problem{NumVars: 3, Constraints: cons, Objective: obj}
	crec := &CertRecorder{}
	opts := DefaultOptions()
	opts.Certify = crec
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 || !res.Proven {
		t.Fatalf("value = %d proven=%v, want proven 2", res.Value, res.Proven)
	}
	run := crec.Runs()[0]
	if len(run.Comps) != 1 || run.Comps[0].Status != CertOptimal {
		t.Fatalf("unexpected certificate shape: %+v", run.Comps)
	}
	cc := run.Comps[0]
	branches := 0
	var count func(nd *CertNode)
	count = func(nd *CertNode) {
		if nd == nil || nd.Var < 0 {
			return
		}
		branches++
		count(nd.Zero)
		count(nd.One)
	}
	count(cc.Tree)
	if branches == 0 {
		t.Fatal("expected the weak-LP cycle to force at least one branch node")
	}
	walkCert(t, &cc)
}

// TestCertifyInfeasible: a component-level contradiction (not caught
// by presolve) yields an infeasibility certificate made of farkas
// leaves, on a run that records the infeasibility error.
func TestCertifyInfeasible(t *testing.T) {
	cons := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1, 2), expr.GE, 2),
		expr.NewConstraint(expr.Sum(0, 1, 2), expr.LE, 1),
	}
	p := &Problem{NumVars: 3, Constraints: cons, Objective: expr.Sum(0)}
	crec := &CertRecorder{}
	opts := DefaultOptions()
	opts.Certify = crec
	_, err := Maximize(p, opts)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want infeasible", err)
	}
	run := crec.Runs()[0]
	if run.Err == "" || run.Proven {
		t.Fatalf("infeasible run recorded as %+v", run)
	}
	if len(run.Comps) != 1 {
		t.Fatalf("recorded %d components, want 1", len(run.Comps))
	}
	cc := run.Comps[0]
	if cc.Status != CertInfeasible {
		t.Fatalf("status %q (skip=%q), want infeasible", cc.Status, cc.Skip)
	}
	leaves := walkCert(t, &cc)
	if leaves[CertLeafFarkas] == 0 {
		t.Fatalf("infeasibility tree has no farkas leaves: %v", leaves)
	}
	if leaves[CertLeafDual] != 0 || leaves[CertLeafIntopt] != 0 {
		t.Fatalf("infeasibility tree carries optimality leaves: %v", leaves)
	}
}

// TestCertifyUnprovenSkips: when the search cannot prove optimality,
// the component is skipped with a reason instead of certified — a
// certificate must never claim more than the solver proved.
func TestCertifyUnprovenSkips(t *testing.T) {
	p := hardProblem()
	crec := &CertRecorder{}
	opts := DefaultOptions()
	opts.UseLP = false // cripple bounding so the budget trips
	opts.MaxNodes = 50
	opts.Certify = crec
	res, err := Maximize(p, opts)
	if err != nil {
		// Budget starvation before any feasible point is also fine for
		// this test; the run then records the error.
		t.Skipf("budget starved before a feasible point: %v", err)
	}
	if res.Proven {
		t.Skip("solve unexpectedly proven; cannot exercise the skip path")
	}
	run := crec.Runs()[0]
	skipped := 0
	for _, cc := range run.Comps {
		if cc.Status == CertSkipped {
			skipped++
			if !strings.Contains(cc.Skip, "unproven") {
				t.Fatalf("skip reason %q does not name the cause", cc.Skip)
			}
			if cc.Tree != nil || cc.Witness != nil {
				t.Fatal("skipped component still carries proof data")
			}
		}
	}
	if skipped == 0 {
		t.Fatal("unproven solve certified every component")
	}
	if run.Proven {
		t.Fatal("unproven solve marked proven on the cert run")
	}
}

// TestCertifyBoundsBothSenses: Bounds appends a max and a min run;
// the min run is recorded in the solver's negated (maximization)
// frame, so its value is the negation of the reported minimum.
func TestCertifyBoundsBothSenses(t *testing.T) {
	p := paperStyleProblem()
	crec := &CertRecorder{}
	opts := DefaultOptions()
	opts.Certify = crec
	minRes, maxRes, err := Bounds(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := crec.Runs()
	if len(runs) != 2 || runs[0].Sense != "max" || runs[1].Sense != "min" {
		t.Fatalf("runs = %+v, want a max run then a min run", runs)
	}
	if runs[0].Value != maxRes.Value {
		t.Fatalf("max run value %d != %d", runs[0].Value, maxRes.Value)
	}
	if runs[1].Value != -minRes.Value {
		t.Fatalf("min run value %d != negated minimum %d", runs[1].Value, -minRes.Value)
	}
	for _, run := range runs {
		sum := run.Base
		for i := range run.Comps {
			cc := &run.Comps[i]
			if cc.Status != CertOptimal {
				t.Fatalf("%s component %d: status %q (skip=%q)", run.Sense, cc.Index, cc.Status, cc.Skip)
			}
			walkCert(t, cc)
			sum += cc.Value
		}
		if sum != run.Value {
			t.Fatalf("%s run: base %d + components = %d, value %d", run.Sense, run.Base, sum, run.Value)
		}
	}
	crec.Reset()
	if len(crec.Runs()) != 0 {
		t.Fatal("Reset left runs behind")
	}
}

// TestCertifyMergedPath: the decomposition-ablation path (Decompose
// off) certifies the single merged component.
func TestCertifyMergedPath(t *testing.T) {
	p := paperStyleProblem()
	crec := &CertRecorder{}
	opts := DefaultOptions()
	opts.Decompose = false
	opts.Certify = crec
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	run := crec.Runs()[0]
	if len(run.Comps) != 1 {
		t.Fatalf("merged solve recorded %d components, want 1", len(run.Comps))
	}
	cc := run.Comps[0]
	if cc.Status != CertOptimal {
		t.Fatalf("status %q (skip=%q), want optimal", cc.Status, cc.Skip)
	}
	walkCert(t, &cc)
	if run.Base+cc.Value != res.Value {
		t.Fatalf("base %d + merged value %d != result %d", run.Base, cc.Value, res.Value)
	}
}
