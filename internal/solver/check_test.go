package solver

import (
	"errors"
	"math/rand"
	"testing"

	"licm/internal/expr"
	"licm/internal/obs"
)

// TestCheckRejectsInfeasibleStore: a store with contradictory
// cardinality bounds is rejected before the search, with the
// diagnostics attached and errors.Is(err, ErrInfeasible) holding.
func TestCheckRejectsInfeasibleStore(t *testing.T) {
	vars := []expr.Var{0, 1, 2, 3}
	p := &Problem{
		NumVars: 4,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(vars...), expr.GE, 3),
			expr.NewConstraint(expr.Sum(vars...), expr.LE, 1),
		},
		Objective: expr.Sum(vars...),
	}
	opts := DefaultOptions()
	opts.Check = true
	_, err := Maximize(p, opts)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CheckError", err)
	}
	if !ce.Report.ProvenInfeasible() {
		t.Fatalf("attached report does not prove infeasibility: %v", ce.Report)
	}
}

// TestCheckPhaseObservability: the check phase emits its span and
// counters through the existing obs layer.
func TestCheckPhaseObservability(t *testing.T) {
	sink := &obs.CollectSink{}
	tr := obs.New(sink)
	reg := obs.NewRegistry()
	p := &Problem{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.GE, 3), // C001
		},
		Objective: expr.Sum(0, 1),
	}
	opts := DefaultOptions()
	opts.Check = true
	opts.Trace = tr
	opts.Metrics = reg
	if _, err := Maximize(p, opts); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	found := false
	for _, e := range sink.Events() {
		if e.Name == "solver.check" && e.Kind == obs.KindSpanEnd {
			found = true
			if inf, ok := e.Attrs["infeasible"].(bool); !ok || !inf {
				t.Errorf("solver.check span_end attrs = %v, want infeasible=true", e.Attrs)
			}
		}
	}
	if !found {
		t.Fatal("no solver.check span in the trace")
	}
	if got := reg.Counter("check.errors").Value(); got < 1 {
		t.Errorf("check.errors counter = %d, want >= 1", got)
	}
	if got := reg.Counter("check.diags").Value(); got < 1 {
		t.Errorf("check.diags counter = %d, want >= 1", got)
	}
}

// TestCheckPreservesBounds: on feasible stores, enabling Options.Check
// must not change the solve outcome at all — same value, bound and
// proven flag, on a spread of randomly generated feasible instances
// plus hand-built paper-style stores.
func TestCheckPreservesBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	problems := []*Problem{
		paperStyleProblem(),
	}
	for i := 0; i < 25; i++ {
		problems = append(problems, randomFeasibleProblem(rng))
	}
	for i, p := range problems {
		base := DefaultOptions()
		checked := DefaultOptions()
		checked.Check = true
		for _, dir := range []string{"max", "min"} {
			solve := Maximize
			if dir == "min" {
				solve = Minimize
			}
			r0, err0 := solve(p, base)
			r1, err1 := solve(p, checked)
			if (err0 == nil) != (err1 == nil) {
				t.Fatalf("problem %d %s: err without check = %v, with = %v", i, dir, err0, err1)
			}
			if err0 != nil {
				if !errors.Is(err1, ErrInfeasible) || !errors.Is(err0, ErrInfeasible) {
					t.Fatalf("problem %d %s: unexpected errors %v / %v", i, dir, err0, err1)
				}
				continue
			}
			if r0.Value != r1.Value || r0.Bound != r1.Bound || r0.Proven != r1.Proven {
				t.Fatalf("problem %d %s: check changed the outcome: (%d,%d,%v) vs (%d,%d,%v)",
					i, dir, r0.Value, r0.Bound, r0.Proven, r1.Value, r1.Bound, r1.Proven)
			}
		}
	}
}

// paperStyleProblem builds a store shaped like the paper's encodings:
// generalization groups with sum >= 1, an exactly-one permutation
// row, and a mutex pair.
func paperStyleProblem() *Problem {
	var cons []expr.Constraint
	// Three generalization groups of 3: at least one leaf exists.
	for g := 0; g < 3; g++ {
		base := expr.Var(3 * g)
		cons = append(cons, expr.NewConstraint(expr.Sum(base, base+1, base+2), expr.GE, 1))
	}
	// An exactly-one row over 9..11.
	cons = append(cons, expr.NewConstraint(expr.Sum(9, 10, 11), expr.EQ, 1))
	// A mutex pair 12/13.
	cons = append(cons, expr.NewConstraint(expr.Sum(12, 13), expr.EQ, 1))
	return &Problem{
		NumVars:     14,
		Constraints: cons,
		Objective:   expr.Sum(0, 3, 6, 9, 12, 13),
	}
}

// randomFeasibleProblem generates constraints that always admit the
// all-zeros or all-ones world, so the instances stay feasible.
func randomFeasibleProblem(rng *rand.Rand) *Problem {
	n := 4 + rng.Intn(10)
	var cons []expr.Constraint
	m := 1 + rng.Intn(6)
	for i := 0; i < m; i++ {
		sz := 1 + rng.Intn(4)
		vars := make([]expr.Var, 0, sz)
		for len(vars) < sz {
			vars = append(vars, expr.Var(rng.Intn(n)))
		}
		s := expr.Sum(vars...)
		if rng.Intn(2) == 0 {
			cons = append(cons, expr.NewConstraint(s, expr.LE, int64(rng.Intn(sz+1)))) // all-zeros world satisfies
		} else {
			cons = append(cons, expr.NewConstraint(s, expr.GE, int64(rng.Intn(sz+1)))) // all-ones world may violate? no: sum = len(vars) >= rhs <= sz
		}
	}
	// Feasibility argument: every GE rhs is <= the term count, so the
	// all-ones world satisfies all GE rows; every LE rhs is >= 0, so
	// the all-zeros world satisfies all LE rows. Mixing could still be
	// infeasible, so keep rows one-sided per variable: simplest is to
	// accept possible infeasibility — the test tolerates matching
	// ErrInfeasible from both runs.
	obj := make([]expr.Term, n)
	for v := 0; v < n; v++ {
		obj[v] = expr.Term{Var: expr.Var(v), Coef: int64(rng.Intn(9)) - 4}
	}
	return &Problem{
		NumVars:     n,
		Constraints: cons,
		Objective:   expr.NewLin(0, obj...),
	}
}
