package solver

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"licm/internal/expr"
)

func TestWriteLPBasic(t *testing.T) {
	p := &Problem{
		NumVars: 3,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1, 2), expr.GE, 1),
			expr.NewConstraint(expr.Sum(0).AddTerm(1, -1), expr.LE, 0),
			expr.NewConstraint(expr.NewLin(0, expr.Term{Var: 2, Coef: 2}), expr.EQ, 2),
		},
		Objective: expr.Sum(0, 1).AddTerm(2, 3),
	}
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, SenseMax); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Maximize",
		"obj: b0 + b1 + 3 b2",
		"Subject To",
		"c0: b0 + b1 + b2 >= 1",
		"c1: b0 - b1 <= 0",
		"c2: 2 b2 = 2",
		"Binary",
		"b0 b1 b2",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteLPMinimizeAndConstant(t *testing.T) {
	p := &Problem{
		NumVars:   1,
		Objective: expr.Sum(0).AddConst(5),
	}
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, SenseMin); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Minimize") {
		t.Error("missing Minimize")
	}
	if !strings.Contains(out, "objective constant: 5") {
		t.Error("missing objective-constant comment")
	}
}

func TestWriteLPNegativeLeadingTerm(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: expr.NewLin(0, expr.Term{Var: 0, Coef: -2}, expr.Term{Var: 1, Coef: 1}),
	}
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, SenseMax); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obj: -2 b0 + b1") {
		t.Errorf("leading negative mis-rendered:\n%s", buf.String())
	}
}

func TestWriteLPValidates(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: expr.Sum(7)}
	if err := WriteLP(&bytes.Buffer{}, p, SenseMax); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestWriteLPManyVarsWraps(t *testing.T) {
	p := &Problem{NumVars: 45, Objective: expr.Sum(0)}
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, SenseMax); err != nil {
		t.Fatal(err)
	}
	// The Binary section must wrap at 20 variables per line.
	sc := bufio.NewScanner(&buf)
	inBinary := false
	maxPerLine := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "Binary" {
			inBinary = true
			continue
		}
		if line == "End" {
			break
		}
		if inBinary {
			if n := len(strings.Fields(line)); n > maxPerLine {
				maxPerLine = n
			}
		}
	}
	if maxPerLine != 20 {
		t.Errorf("max vars per Binary line = %d, want 20", maxPerLine)
	}
}

// TestLPRoundTripAgainstSolver: parse our own LP output naively and
// verify constraint count and objective terms survive, guarding
// against format drift.
func TestLPRoundTripShape(t *testing.T) {
	p := &Problem{
		NumVars: 4,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.LE, 1),
			expr.NewConstraint(expr.Sum(2, 3), expr.GE, 1),
		},
		Objective: expr.Sum(0, 2),
	}
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, SenseMax); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "\n c"); got != 2 {
		t.Errorf("constraint lines = %d, want 2\n%s", got, out)
	}
}
