package solver

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"licm/internal/expr"
)

// TestReadLPRoundTrip: WriteLP → ReadLP must reproduce the problem
// exactly (constraints, objective including its constant, NumVars and
// sense) on a spread of random instances.
func TestReadLPRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(25)
		m := rng.Intn(8)
		cons := make([]expr.Constraint, m)
		for i := range cons {
			sz := 1 + rng.Intn(5)
			if sz > n {
				sz = n
			}
			terms := map[expr.Var]int64{}
			for len(terms) < sz {
				c := int64(rng.Intn(9)) - 4
				if c == 0 {
					c = 5
				}
				terms[expr.Var(rng.Intn(n))] = c
			}
			lin := expr.NewLin(0)
			for v, c := range terms {
				lin = lin.AddTerm(v, c)
			}
			op := []expr.Op{expr.LE, expr.GE, expr.EQ}[rng.Intn(3)]
			cons[i] = expr.NewConstraint(lin, op, int64(rng.Intn(11))-5)
		}
		obj := expr.NewLin(int64(rng.Intn(21)) - 10)
		for v := 0; v < n; v++ {
			if c := int64(rng.Intn(7)) - 3; c != 0 {
				obj = obj.AddTerm(expr.Var(v), c)
			}
		}
		p := &Problem{NumVars: n, Constraints: cons, Objective: obj}
		sense := Sense(rng.Intn(2))

		var buf bytes.Buffer
		if err := WriteLP(&buf, p, sense); err != nil {
			t.Fatalf("trial %d: WriteLP: %v", trial, err)
		}
		got, gotSense, err := ReadLP(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ReadLP: %v\ninput:\n%s", trial, err, buf.String())
		}
		if gotSense != sense {
			t.Fatalf("trial %d: sense = %v, want %v", trial, gotSense, sense)
		}
		if got.NumVars != p.NumVars {
			t.Fatalf("trial %d: NumVars = %d, want %d\ninput:\n%s", trial, got.NumVars, p.NumVars, buf.String())
		}
		if got.Objective.String() != p.Objective.String() {
			t.Fatalf("trial %d: objective = %v, want %v", trial, got.Objective, p.Objective)
		}
		if len(got.Constraints) != len(p.Constraints) {
			t.Fatalf("trial %d: %d constraints, want %d", trial, len(got.Constraints), len(p.Constraints))
		}
		for i := range p.Constraints {
			if got.Constraints[i].String() != p.Constraints[i].String() {
				t.Fatalf("trial %d: constraint %d = %v, want %v",
					trial, i, got.Constraints[i], p.Constraints[i])
			}
		}
	}
}

// TestReadLPHandwritten parses a hand-written file using the laxer
// spellings ReadLP accepts (no labels, tight operators, =<, comments,
// continuation lines).
func TestReadLPHandwritten(t *testing.T) {
	src := `\ a hand-written instance
Minimize
 2 b0 - b1
   + 3 b2
Subject To
 b0 + b1 >= 1
 c1: 2 b0 - 3 b2=<4   \ tight operator, trailing comment
 b1 +
   b2 = 1
Binary
 b0 b1 b2
End
`
	p, sense, err := ReadLP(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadLP: %v", err)
	}
	if sense != SenseMin {
		t.Fatalf("sense = %v, want SenseMin", sense)
	}
	if p.NumVars != 3 {
		t.Fatalf("NumVars = %d, want 3", p.NumVars)
	}
	wantObj := expr.NewLin(0,
		expr.Term{Var: 0, Coef: 2}, expr.Term{Var: 1, Coef: -1}, expr.Term{Var: 2, Coef: 3})
	if p.Objective.String() != wantObj.String() {
		t.Fatalf("objective = %v, want %v", p.Objective, wantObj)
	}
	want := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1),
		expr.NewConstraint(expr.NewLin(0, expr.Term{Var: 0, Coef: 2}, expr.Term{Var: 2, Coef: -3}), expr.LE, 4),
		expr.NewConstraint(expr.Sum(1, 2), expr.EQ, 1),
	}
	if len(p.Constraints) != len(want) {
		t.Fatalf("%d constraints, want %d: %v", len(p.Constraints), len(want), p.Constraints)
	}
	for i := range want {
		if p.Constraints[i].String() != want[i].String() {
			t.Fatalf("constraint %d = %v, want %v", i, p.Constraints[i], want[i])
		}
	}
}

// TestReadLPObjectiveConstant: the "\ objective constant" comment is
// folded back into the objective.
func TestReadLPObjectiveConstant(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: expr.NewLin(7, expr.Term{Var: 0, Coef: 1}, expr.Term{Var: 1, Coef: 1}),
	}
	var buf bytes.Buffer
	if err := WriteLP(&buf, p, SenseMax); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective.Const() != 7 {
		t.Fatalf("objective constant = %d, want 7\n", got.Objective.Const())
	}
}

// TestReadLPErrors: malformed inputs are rejected with errors, not
// silently misparsed.
func TestReadLPErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "no objective"},
		{"no section", "b0 + b1\n", "expected Maximize or Minimize"},
		{"bad variable", "Maximize\n x0\nEnd\n", `bad token "x0"`},
		{"objective with operator", "Maximize\n b0 <= 1\nSubject To\nEnd\n", "comparison"},
		{"constraint without operator", "Maximize\n b0\nSubject To\n b0 + b1\nEnd\n", "no comparison operator"},
		{"missing rhs", "Maximize\n b0\nSubject To\n b0 >=\nEnd\n", "missing right-hand side"},
		{"fractional rhs", "Maximize\n b0\nSubject To\n b0 <= 0.5\nEnd\n", "only integer RHS"},
		{"bounds section", "Maximize\n b0\nBounds\nEnd\n", "unsupported section"},
		{"content after end", "Maximize\n b0\nEnd\n b1\n", "content after End"},
		{"consecutive numbers", "Maximize\n 2 3 b0\nEnd\n", "two consecutive numbers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadLP(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("ReadLP accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}
