package solver

import (
	"testing"

	"licm/internal/obs"
)

// TestLatencyHistograms: a metrics-attached solve fills the
// solver.lp_ns histogram with exactly one observation per LP relaxation
// and the solver.node_ns histogram with one per flushed node batch.
func TestLatencyHistograms(t *testing.T) {
	p := hardProblem()
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.MaxNodes = 50_000
	opts.Metrics = reg
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	lp := reg.Histogram("solver.lp_ns").Snapshot()
	if lp.Count != res.Stats.LPSolves {
		t.Errorf("solver.lp_ns count = %d, want one per LP solve (%d)", lp.Count, res.Stats.LPSolves)
	}
	if lp.Count > 0 && lp.Sum <= 0 {
		t.Errorf("solver.lp_ns sum = %d with %d observations", lp.Sum, lp.Count)
	}
	node := reg.Histogram("solver.node_ns").Snapshot()
	if res.Stats.Nodes > 0 && node.Count == 0 {
		t.Errorf("solver.node_ns empty after %d nodes", res.Stats.Nodes)
	}
	// One observation per flush batch: never more than one per node, and
	// at least nodes/ctrlGranularity (each component flushes at the
	// granularity plus once at the end).
	if node.Count > res.Stats.Nodes {
		t.Errorf("solver.node_ns count %d exceeds node count %d", node.Count, res.Stats.Nodes)
	}
	if minBatches := res.Stats.Nodes / ctrlGranularity; node.Count < minBatches {
		t.Errorf("solver.node_ns count %d below minimum batch count %d", node.Count, minBatches)
	}
}

// TestLatencyHistogramsOffWithoutMetrics: without a registry the
// latency clocks stay off (timingLatencies is the hot-path gate).
func TestLatencyHistogramsOffWithoutMetrics(t *testing.T) {
	opts := DefaultOptions()
	opts.Progress = func(ProgressInfo) {} // forces a non-nil ctrl
	k := newCtrl(opts)
	if k == nil {
		t.Fatal("ctrl unexpectedly nil")
	}
	if k.timingLatencies() {
		t.Error("timingLatencies() true without a metrics registry")
	}
	var nilCtrl *ctrl
	if nilCtrl.timingLatencies() {
		t.Error("nil ctrl claims to time latencies")
	}
}
