// Package solver is an exact binary integer programming (BIP) solver
// specialized for the optimization problems produced by LICM query
// answering: maximize or minimize an integer linear objective over
// binary variables subject to integer linear constraints.
//
// The paper hands these instances to IBM ILOG CPLEX; this package is
// the pure-Go substitute (see DESIGN.md). It wins the same way CPLEX
// does on these inputs — "each constraint contains only a very small
// number of variables" — by:
//
//  1. reachability pruning of variables and constraints not connected
//     to the objective (Section V, "Pruning"),
//  2. presolve fixing via bound propagation,
//  3. decomposition into connected components of the variable/
//     constraint graph, solved independently,
//  4. per-component branch-and-bound, using LP relaxation bounds
//     (internal/simplex) for larger components and plain
//     propagation-based DFS for small ones.
//
// Budgets (node limits) turn the solver into an anytime algorithm: on
// exhaustion it reports the best value found together with a proven
// bound and Proven=false, mirroring CPLEX reporting "quite tight
// approximate bounds" on the paper's hardest instance.
package solver

import (
	"errors"
	"fmt"
	"time"

	"licm/internal/check"
	"licm/internal/expr"
	"licm/internal/obs"
)

// ErrInfeasible is returned when no assignment satisfies the
// constraints.
var ErrInfeasible = errors.New("solver: infeasible")

// ErrCanceled is returned when Options.Cancel fired before any
// feasible point was found; when an incumbent exists, cancellation
// instead returns a best-effort result with Proven=false and
// Stats.Canceled=true.
var ErrCanceled = errors.New("solver: canceled before a feasible point was found")

// CheckError is returned (wrapped in ErrInfeasible) when Options.Check
// proves the store infeasible before the search starts. Report carries
// every diagnostic the pass produced, so the caller can show *why* the
// store admits no world instead of a bare "infeasible".
type CheckError struct {
	Report check.Report
}

// Error summarizes the findings; the full report is in e.Report.
func (e *CheckError) Error() string {
	for _, d := range e.Report.Diags {
		if d.Severity == check.SevError {
			return fmt.Sprintf("solver: infeasible (static check, %d diagnostic(s)): %s",
				len(e.Report.Diags), d.Message)
		}
	}
	return fmt.Sprintf("solver: infeasible (static check, %d diagnostic(s))", len(e.Report.Diags))
}

// Unwrap makes errors.Is(err, ErrInfeasible) hold: a check rejection
// is an infeasibility verdict with an attached explanation.
func (e *CheckError) Unwrap() error { return ErrInfeasible }

// Options control the solving strategy. The zero value is not useful;
// start from DefaultOptions.
type Options struct {
	// Check runs the static diagnostics pass (internal/check) over
	// the store before solving. A store the pass proves infeasible is
	// rejected immediately with a *CheckError (which unwraps to
	// ErrInfeasible and carries the diagnostics) instead of surfacing
	// a bare ErrInfeasible deep inside the search; warnings never
	// change the solve. The pass is linear in the store size — cheap
	// insurance on hand-built or translated stores, off by default
	// because query-generated stores are well-formed by construction.
	Check bool
	// Prune enables reachability pruning of constraints and variables
	// not connected to the objective.
	Prune bool
	// Decompose enables connected-component decomposition.
	Decompose bool
	// UseLP enables LP relaxation bounds inside branch-and-bound for
	// components larger than DFSThreshold.
	UseLP bool
	// DFSThreshold is the component size (free variables) at or below
	// which plain propagation DFS is used instead of LP-based B&B.
	DFSThreshold int
	// MaxLPVars is the component size above which LP bounding is
	// skipped (the dense tableau would be too large) and budgeted DFS
	// is used instead.
	MaxLPVars int
	// MaxLPRows is the constraint-count analogue of MaxLPVars.
	MaxLPRows int
	// MaxNodes bounds the total branch-and-bound nodes across all
	// components; 0 means unlimited. On exhaustion the result is
	// marked unproven.
	MaxNodes int64
	// OversizeNodes is the per-component node budget applied to
	// non-trivial components when MaxNodes is 0; it keeps worst-case
	// instances anytime (reporting proven outer bounds) instead of
	// unbounded. 0 disables the safety budget.
	OversizeNodes int64
	// CompleteWitness requests a feasible assignment for variables in
	// components that do not touch the objective (they do not affect
	// the optimum, but a full witness world needs them).
	CompleteWitness bool
	// WitnessBudget caps the nodes spent per dive while completing a
	// witness over pruned components; 0 means the default (500000).
	// When the budget runs out the bounds still stand but Assignment is
	// nil and Stats.WitnessExhausted is set.
	WitnessBudget int64
	// OrderSeed, when non-zero, deterministically perturbs the
	// branching order (a tie-break jitter on the objective-magnitude
	// keys). Any order is correct; a supervisor retries a panicked
	// solve with a fresh seed so a crash tied to one exploration order
	// is not replayed verbatim.
	OrderSeed int64
	// Workers > 1 solves independent components concurrently (the
	// parallelism the paper's conclusion calls for to scale LICM).
	// With a MaxNodes budget, the budget is split evenly across
	// components instead of being drawn from a shared pool, so
	// results are deterministic but can differ from a sequential run
	// on budget-limited instances.
	Workers int

	// Trace, if non-nil, receives structured span events for every
	// solver phase (validate, check, prune, presolve, decompose,
	// search, witness), incumbent events, and periodic progress
	// events. nil disables tracing at no measurable cost.
	Trace *obs.Tracer
	// Metrics, if non-nil, receives live counters: solver.nodes,
	// solver.lp_solves, solver.propagations, solver.incumbents. They
	// are updated in flight (within ctrlGranularity nodes), so a
	// long solve is watchable via expvar.
	Metrics *obs.Registry
	// Progress, if non-nil, is called with cumulative work totals
	// roughly every ProgressInterval nodes. It may be invoked from
	// worker goroutines when Workers > 1.
	Progress func(ProgressInfo)
	// ProgressInterval is the node spacing of Progress callbacks and
	// progress trace events; 0 means 65536.
	ProgressInterval int64
	// Cancel, if non-nil, is polled about every ctrlGranularity
	// nodes; when it returns true the solve aborts cooperatively and
	// returns the best incumbent found with Proven=false and
	// Stats.Canceled=true (or ErrCanceled if no feasible point was
	// reached). This is the abort path for runaway solves — a
	// deadline, a context, or a UI stop button can all be expressed
	// as a Cancel func.
	Cancel func() bool
	// Snapshots, if non-nil, receives per-component incumbent/bound
	// snapshots during the solve, so a supervisor can assemble an
	// anytime proven interval even when the solve is cancelled before
	// a global feasible point exists. Use a fresh board per solve; for
	// Minimize the board holds negated-sense values (see
	// SnapshotBoard).
	Snapshots *SnapshotBoard
	// Explain, if non-nil, records per-solve forensics: pruning
	// effect, the decomposed component list with each component's
	// projected constraint matrix, and per-component search
	// attribution (nodes, LP solves, wall and LP time). One recorder
	// may span several solves — a Bounds call records a "max" and a
	// "min" run. Package internal/explain turns recordings into
	// licm-explain/1 reports and workload censuses. nil disables
	// recording at no cost.
	Explain *ExplainRecorder
	// RequestID, when non-empty, names the serving-layer request this
	// solve belongs to. It is stamped as a request_id attribute on the
	// solver.solve root span and copied into Stats, so a served
	// answer's forensics (flight-recorder entry, licmtrace -request
	// filter) can attribute solver work to the exact HTTP request that
	// caused it. Purely observational: it never changes the solve.
	RequestID string
	// Certify, if non-nil, makes the solve certifying: after the
	// search, a dedicated certification pass re-derives for every
	// proven component a machine-checkable proof tree (optimality or
	// infeasibility) whose leaves an independent checker replays in
	// exact rational arithmetic — see CertRecorder. Package
	// internal/cert serializes recordings as licm-cert/1 and verifies
	// them (cmd/licmverify). nil disables certification at no cost.
	Certify *CertRecorder
}

// DefaultOptions returns the recommended settings.
func DefaultOptions() Options {
	return Options{
		Prune:           true,
		Decompose:       true,
		UseLP:           true,
		DFSThreshold:    22,
		MaxLPVars:       600,
		MaxLPRows:       1200,
		MaxNodes:        0,
		OversizeNodes:   2_000_000,
		CompleteWitness: true,
		WitnessBudget:   defaultWitnessBudget,
	}
}

// Stats reports work done and problem-size evolution during a solve.
// VarsBefore counts variables appearing in the objective or any
// constraint; the pruning figures reproduce the paper's Figure 7.
// The per-phase wall-clock durations split the solve the same way the
// paper's Figure 6 splits L-solve, so optimization claims can cite
// where the time actually went.
type Stats struct {
	VarsBefore      int
	ConsBefore      int
	VarsAfterPrune  int
	ConsAfterPrune  int
	FixedByPresolve int
	Components      int
	Nodes           int64
	LPSolves        int64
	// Propagations counts variable assignments made by constraint
	// propagation (presolve fixings plus search-tree propagation),
	// excluding witness completion.
	Propagations int64

	// Wall-clock durations per phase. SearchTime covers component
	// decomposition plus branch-and-bound; TotalTime is the whole
	// Maximize/Minimize call and bounds the sum of the others.
	PruneTime    time.Duration
	PresolveTime time.Duration
	SearchTime   time.Duration
	WitnessTime  time.Duration
	TotalTime    time.Duration

	// Canceled reports that Options.Cancel stopped the solve early;
	// the result is then best-effort (Proven is false).
	Canceled bool
	// WitnessExhausted reports that witness completion ran out of its
	// node budget (Options.WitnessBudget): the bounds stand but
	// Result.Assignment is nil instead of a full world.
	WitnessExhausted bool

	// RequestID echoes Options.RequestID, tying these stats to the
	// serving-layer request that triggered the solve (empty outside
	// the serving path).
	RequestID string

	// AllocBytes is the process-wide heap allocation (bytes, via
	// runtime/metrics) observed between solve start and end, and
	// PeakHeap the larger of the live-heap readings at those two
	// points. Both are recorded only when tracing or metrics are
	// attached (zero otherwise) and are process-level: concurrent
	// work on other goroutines is included.
	AllocBytes int64
	PeakHeap   int64
}

// Result is the outcome of a Maximize or Minimize call.
type Result struct {
	// Value is the best objective value found (the optimum when
	// Proven).
	Value int64
	// Bound is a proven bound on the optimum: an upper bound for
	// maximization, lower for minimization. Bound == Value when
	// Proven.
	Bound int64
	// Proven reports whether Value is the exact optimum.
	Proven bool
	// Assignment is a witness world achieving Value: Assignment[v] is
	// the value of variable v. It has length NumVars. When pruning is
	// enabled and CompleteWitness is false, variables outside the
	// objective's component may hold arbitrary values.
	Assignment []uint8
	// Stats describes the solve.
	Stats Stats
}

// Problem is a BIP instance: NumVars binary variables (ids
// 0..NumVars-1), Constraints over them, and an integer linear
// Objective.
type Problem struct {
	NumVars     int
	Constraints []expr.Constraint
	Objective   expr.Lin
	// Derived optionally marks variables that are functionally
	// determined by earlier variables through the constraints (LICM
	// lineage variables). The solver then branches on base variables
	// first and lets propagation settle the derived ones, which is
	// dramatically faster on query-translated stores. nil is fine.
	Derived []bool
}

// Validate checks the instance is structurally sound: NumVars is
// non-negative, every variable id is within range, expressions are
// normalized (no duplicate-variable or zero-coefficient terms, terms
// sorted by id — the invariant every expr constructor maintains and
// the propagator relies on), and Derived, when present, covers every
// variable.
func (p *Problem) Validate() error {
	if p.NumVars < 0 {
		return fmt.Errorf("solver: NumVars is negative (%d)", p.NumVars)
	}
	if p.Derived != nil && len(p.Derived) != p.NumVars {
		return fmt.Errorf("solver: Derived has length %d, want %d (one flag per variable)", len(p.Derived), p.NumVars)
	}
	checkLin := func(l expr.Lin, what string) error {
		prev := expr.Var(-1)
		for _, t := range l.Terms() {
			if t.Var < 0 || int(t.Var) >= p.NumVars {
				return fmt.Errorf("solver: %s references variable b%d outside [0,%d)", what, t.Var, p.NumVars)
			}
			if t.Coef == 0 {
				return fmt.Errorf("solver: %s has a zero-coefficient term for b%d", what, t.Var)
			}
			if t.Var == prev {
				return fmt.Errorf("solver: %s has duplicate terms for b%d", what, t.Var)
			}
			if t.Var < prev {
				return fmt.Errorf("solver: %s terms are not sorted by variable id (b%d after b%d)", what, t.Var, prev)
			}
			prev = t.Var
		}
		return nil
	}
	if err := checkLin(p.Objective, "objective"); err != nil {
		return err
	}
	for i, c := range p.Constraints {
		if err := checkLin(c.Lin, fmt.Sprintf("constraint %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// RunCheck projects the problem onto the static diagnostics pass and
// returns its report. This is what Options.Check invokes before a
// solve; it is exposed so callers can vet a problem without solving.
func (p *Problem) RunCheck() check.Report {
	return check.Check(check.Store{
		NumVars:     p.NumVars,
		Constraints: p.Constraints,
		Objective:   p.Objective,
		Derived:     p.Derived,
	})
}

// Maximize finds the maximum of p.Objective subject to p.Constraints.
func Maximize(p *Problem, opts Options) (Result, error) {
	return solve(p, opts, false)
}

// Minimize finds the minimum of p.Objective subject to p.Constraints.
func Minimize(p *Problem, opts Options) (Result, error) {
	neg := &Problem{NumVars: p.NumVars, Constraints: p.Constraints, Objective: p.Objective.Neg(), Derived: p.Derived}
	r, err := solve(neg, opts, true)
	if err != nil {
		return r, err
	}
	r.Value = -r.Value
	r.Bound = -r.Bound
	return r, nil
}

// Bounds computes both the minimum and maximum of the objective. This
// answers the paper's headline question: the exact lower and upper
// bounds of an aggregate query over all possible worlds.
func Bounds(p *Problem, opts Options) (min, max Result, err error) {
	max, err = Maximize(p, opts)
	if err != nil {
		return
	}
	min, err = Minimize(p, opts)
	return
}
