package solver

// This file is the one place internal/solver compares floats with
// ==/!= (the floatcmp lint allows exact comparisons only here, next
// to the argument for their exactness).

// exactlyZeroOrOne reports r ∈ {0, 1} with no tolerance. Correct
// where r is the result of math.Round, which returns exact integers:
// a rounded value is 0.0 or 1.0 bit-for-bit or it is some other
// integer, never "almost" one.
func exactlyZeroOrOne(r float64) bool { return r == 0 || r == 1 }
