package solver

import (
	"strings"
	"testing"

	"licm/internal/expr"
)

// TestValidateTable exercises every Validate error path, including the
// malformed expressions only expr.RawLin can build (the public expr
// constructors always normalize).
func TestValidateTable(t *testing.T) {
	raw := func(terms ...expr.Term) expr.Lin { return expr.RawLin(0, terms) }
	cases := []struct {
		name    string
		p       Problem
		wantErr string // substring; "" means valid
	}{
		{
			name: "valid",
			p: Problem{
				NumVars: 3,
				Constraints: []expr.Constraint{
					expr.NewConstraint(expr.Sum(0, 1, 2), expr.GE, 1),
				},
				Objective: expr.Sum(0, 2),
			},
		},
		{
			name: "valid empty",
			p:    Problem{},
		},
		{
			name:    "negative NumVars",
			p:       Problem{NumVars: -4},
			wantErr: "NumVars is negative",
		},
		{
			name: "derived length mismatch",
			p: Problem{
				NumVars: 3,
				Derived: []bool{false, true},
			},
			wantErr: "Derived has length 2, want 3",
		},
		{
			name: "objective variable out of range",
			p: Problem{
				NumVars:   2,
				Objective: expr.Sum(0, 5),
			},
			wantErr: "objective references variable b5 outside [0,2)",
		},
		{
			name: "constraint variable out of range",
			p: Problem{
				NumVars: 2,
				Constraints: []expr.Constraint{
					expr.NewConstraint(expr.Sum(1, 2), expr.LE, 1),
				},
			},
			wantErr: "constraint 0 references variable b2",
		},
		{
			name: "negative variable id",
			p: Problem{
				NumVars: 2,
				Constraints: []expr.Constraint{
					{Lin: raw(expr.Term{Var: -1, Coef: 1}), Op: expr.LE, RHS: 1},
				},
			},
			wantErr: "references variable b-1",
		},
		{
			name: "zero-coefficient term in objective",
			p: Problem{
				NumVars:   2,
				Objective: raw(expr.Term{Var: 0, Coef: 0}),
			},
			wantErr: "objective has a zero-coefficient term for b0",
		},
		{
			name: "zero-coefficient term in constraint",
			p: Problem{
				NumVars: 2,
				Constraints: []expr.Constraint{
					{Lin: raw(expr.Term{Var: 0, Coef: 1}, expr.Term{Var: 1, Coef: 0}), Op: expr.GE, RHS: 0},
				},
			},
			wantErr: "constraint 0 has a zero-coefficient term for b1",
		},
		{
			name: "duplicate variable terms",
			p: Problem{
				NumVars: 2,
				Constraints: []expr.Constraint{
					{Lin: raw(expr.Term{Var: 1, Coef: 1}, expr.Term{Var: 1, Coef: 2}), Op: expr.EQ, RHS: 1},
				},
			},
			wantErr: "constraint 0 has duplicate terms for b1",
		},
		{
			name: "unsorted terms",
			p: Problem{
				NumVars: 3,
				Constraints: []expr.Constraint{
					{Lin: raw(expr.Term{Var: 2, Coef: 1}, expr.Term{Var: 0, Coef: 1}), Op: expr.LE, RHS: 1},
				},
			},
			wantErr: "constraint 0 terms are not sorted",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestSolveRejectsMalformed confirms malformed problems are rejected
// by the full solve entry points, not just by Validate directly.
func TestSolveRejectsMalformed(t *testing.T) {
	p := &Problem{NumVars: -1}
	if _, err := Maximize(p, DefaultOptions()); err == nil {
		t.Fatal("Maximize accepted a malformed problem")
	}
	if _, err := Minimize(p, DefaultOptions()); err == nil {
		t.Fatal("Minimize accepted a malformed problem")
	}
}
