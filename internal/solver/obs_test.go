package solver

import (
	"sync"
	"testing"

	"licm/internal/expr"
	"licm/internal/obs"
)

// hardProblem returns an instance whose DFS tree is large: one
// knapsack-style component (many equally-attractive variables) plus a
// few small cardinality groups.
func hardProblem() *Problem {
	const big = 40
	var cons []expr.Constraint
	cons = append(cons, expr.NewConstraint(expr.Sum(seqVars(0, big)...), expr.LE, 20))
	obj := expr.Lin{}
	for v := 0; v < big; v++ {
		obj = obj.AddTerm(expr.Var(v), 1)
	}
	n := big
	for g := 0; g < 4; g++ {
		vs := seqVars(n, 5)
		n += 5
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.GE, 1))
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.LE, 3))
		for _, v := range vs {
			obj = obj.AddTerm(v, int64(2+g))
		}
	}
	return &Problem{NumVars: n, Constraints: cons, Objective: obj}
}

func seqVars(start, n int) []expr.Var {
	vs := make([]expr.Var, n)
	for i := range vs {
		vs[i] = expr.Var(start + i)
	}
	return vs
}

// TestObsCountersMatchStats is the integration contract of the live
// metrics: after a solve, the registry counters equal Result.Stats.
func TestObsCountersMatchStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := hardProblem()
		reg := obs.NewRegistry()
		sink := &obs.CollectSink{}
		opts := DefaultOptions()
		opts.MaxNodes = 50_000
		opts.Workers = workers
		opts.Metrics = reg
		opts.Trace = obs.New(sink)
		res, err := Maximize(p, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.Nodes == 0 {
			t.Fatalf("workers=%d: no nodes explored", workers)
		}
		if got := reg.Counter("solver.nodes").Value(); got != res.Stats.Nodes {
			t.Errorf("workers=%d: counter nodes = %d, stats = %d", workers, got, res.Stats.Nodes)
		}
		if got := reg.Counter("solver.lp_solves").Value(); got != res.Stats.LPSolves {
			t.Errorf("workers=%d: counter lp_solves = %d, stats = %d", workers, got, res.Stats.LPSolves)
		}
		if got := reg.Counter("solver.propagations").Value(); got != res.Stats.Propagations {
			t.Errorf("workers=%d: counter propagations = %d, stats = %d", workers, got, res.Stats.Propagations)
		}
		if res.Stats.Propagations == 0 {
			t.Errorf("workers=%d: propagation count not populated", workers)
		}
	}
}

// TestTraceSpansCoverPhases checks the trace covers every solver phase
// with properly paired and nested spans, and that phase durations are
// consistent with the reported total.
func TestTraceSpansCoverPhases(t *testing.T) {
	p := hardProblem()
	sink := &obs.CollectSink{}
	opts := DefaultOptions()
	opts.MaxNodes = 20_000
	opts.Trace = obs.New(sink)
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	evs := sink.Events()
	starts := map[string]obs.Event{}
	ends := map[string]obs.Event{}
	open := 0
	for _, e := range evs {
		switch e.Kind {
		case obs.KindSpanStart:
			open++
			starts[e.Name] = e
		case obs.KindSpanEnd:
			open--
			ends[e.Name] = e
		}
	}
	if open != 0 {
		t.Errorf("unbalanced span events: %d unclosed", open)
	}
	for _, phase := range []string{"solver.solve", "solver.validate", "solver.prune", "solver.presolve", "solver.decompose", "solver.search"} {
		if _, ok := starts[phase]; !ok {
			t.Errorf("missing span_start for %s", phase)
		}
		if _, ok := ends[phase]; !ok {
			t.Errorf("missing span_end for %s", phase)
		}
	}
	rootID := starts["solver.solve"].Span
	for _, phase := range []string{"solver.validate", "solver.prune", "solver.presolve", "solver.decompose", "solver.search"} {
		if got := starts[phase].Parent; got != rootID {
			t.Errorf("%s parent = %d, want root %d", phase, got, rootID)
		}
	}
	// Child durations sum to no more than the root's.
	var sum int64
	for _, phase := range []string{"solver.validate", "solver.prune", "solver.presolve", "solver.decompose", "solver.search", "solver.witness"} {
		if e, ok := ends[phase]; ok {
			sum += e.DurNs
		}
	}
	if rootDur := ends["solver.solve"].DurNs; sum > rootDur {
		t.Errorf("phase durations sum %dns exceeds root %dns", sum, rootDur)
	}

	// Stats durations mirror the spans.
	st := res.Stats
	if st.TotalTime <= 0 {
		t.Error("TotalTime not populated")
	}
	if got := st.PruneTime + st.PresolveTime + st.SearchTime + st.WitnessTime; got > st.TotalTime {
		t.Errorf("phase durations %v exceed total %v", got, st.TotalTime)
	}
	if st.SearchTime <= 0 {
		t.Error("SearchTime not populated")
	}
}

// TestProgressCallback checks the periodic callback fires during a
// long search with monotonically non-decreasing totals.
func TestProgressCallback(t *testing.T) {
	p := hardProblem()
	var mu sync.Mutex
	var infos []ProgressInfo
	opts := DefaultOptions()
	opts.UseLP = false // keep the search in node-heavy DFS
	opts.MaxNodes = 100_000
	opts.ProgressInterval = 2048
	opts.Progress = func(pi ProgressInfo) {
		mu.Lock()
		infos = append(infos, pi)
		mu.Unlock()
	}
	if _, err := Maximize(p, opts); err != nil {
		t.Fatal(err)
	}
	if len(infos) < 2 {
		t.Fatalf("progress fired %d times, want >= 2", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].Nodes < infos[i-1].Nodes {
			t.Errorf("nodes regressed: %d then %d", infos[i-1].Nodes, infos[i].Nodes)
		}
	}
}

// TestCancelReturnsBestEffort checks the cooperative abort path: a
// firing Cancel stops an otherwise multi-million-node search almost
// immediately and still reports an unproven best-effort result.
func TestCancelReturnsBestEffort(t *testing.T) {
	p := hardProblem()
	opts := DefaultOptions()
	opts.UseLP = false // DFS would run to the 2M oversize budget
	opts.Cancel = func() bool { return true }
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Error("canceled solve reported proven")
	}
	if !res.Stats.Canceled {
		t.Error("Stats.Canceled not set")
	}
	if res.Stats.Nodes > 50_000 {
		t.Errorf("cancel was slow: %d nodes explored", res.Stats.Nodes)
	}
	if res.Value > res.Bound {
		t.Errorf("value %d exceeds bound %d", res.Value, res.Bound)
	}
	// The dive should still find the easy incumbent.
	if res.Value <= 0 {
		t.Errorf("no useful best-effort value: %d", res.Value)
	}
}

// TestCancelHonoredAcrossBoundsCall checks both directions of a
// Bounds call observe the cancellation independently.
func TestCancelHonoredAcrossBoundsCall(t *testing.T) {
	p := hardProblem()
	opts := DefaultOptions()
	opts.UseLP = false
	calls := 0
	opts.Cancel = func() bool { calls++; return calls > 3 }
	min, max, err := Bounds(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if min.Proven && max.Proven {
		t.Error("both sides proven despite cancellation")
	}
	if min.Value > max.Value {
		t.Errorf("min %d > max %d", min.Value, max.Value)
	}
}

// TestTracingOffIsNoop: a solve without instrumentation produces the
// same result and stats as one with it (modulo durations).
func TestTracingOffIsNoop(t *testing.T) {
	p := hardProblem()
	opts := DefaultOptions()
	opts.MaxNodes = 20_000
	plain, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace = obs.New(&obs.CollectSink{})
	opts.Metrics = obs.NewRegistry()
	traced, err := Maximize(hardProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != traced.Value || plain.Bound != traced.Bound || plain.Proven != traced.Proven {
		t.Errorf("tracing changed the result: %+v vs %+v", plain, traced)
	}
	if plain.Stats.Nodes != traced.Stats.Nodes || plain.Stats.LPSolves != traced.Stats.LPSolves {
		t.Errorf("tracing changed the search: %+v vs %+v", plain.Stats, traced.Stats)
	}
}
