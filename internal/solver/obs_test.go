package solver

import (
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"licm/internal/expr"
	"licm/internal/obs"
)

// hardProblem returns an instance whose DFS tree is large: one
// knapsack-style component (many equally-attractive variables) plus a
// few small cardinality groups.
func hardProblem() *Problem {
	const big = 40
	var cons []expr.Constraint
	cons = append(cons, expr.NewConstraint(expr.Sum(seqVars(0, big)...), expr.LE, 20))
	obj := expr.Lin{}
	for v := 0; v < big; v++ {
		obj = obj.AddTerm(expr.Var(v), 1)
	}
	n := big
	for g := 0; g < 4; g++ {
		vs := seqVars(n, 5)
		n += 5
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.GE, 1))
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.LE, 3))
		for _, v := range vs {
			obj = obj.AddTerm(v, int64(2+g))
		}
	}
	return &Problem{NumVars: n, Constraints: cons, Objective: obj}
}

func seqVars(start, n int) []expr.Var {
	vs := make([]expr.Var, n)
	for i := range vs {
		vs[i] = expr.Var(start + i)
	}
	return vs
}

// TestObsCountersMatchStats is the integration contract of the live
// metrics: after a solve, the registry counters equal Result.Stats.
func TestObsCountersMatchStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := hardProblem()
		reg := obs.NewRegistry()
		sink := &obs.CollectSink{}
		opts := DefaultOptions()
		opts.MaxNodes = 50_000
		opts.Workers = workers
		opts.Metrics = reg
		opts.Trace = obs.New(sink)
		res, err := Maximize(p, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Stats.Nodes == 0 {
			t.Fatalf("workers=%d: no nodes explored", workers)
		}
		if got := reg.Counter("solver.nodes").Value(); got != res.Stats.Nodes {
			t.Errorf("workers=%d: counter nodes = %d, stats = %d", workers, got, res.Stats.Nodes)
		}
		if got := reg.Counter("solver.lp_solves").Value(); got != res.Stats.LPSolves {
			t.Errorf("workers=%d: counter lp_solves = %d, stats = %d", workers, got, res.Stats.LPSolves)
		}
		if got := reg.Counter("solver.propagations").Value(); got != res.Stats.Propagations {
			t.Errorf("workers=%d: counter propagations = %d, stats = %d", workers, got, res.Stats.Propagations)
		}
		if res.Stats.Propagations == 0 {
			t.Errorf("workers=%d: propagation count not populated", workers)
		}
	}
}

// TestTraceSpansCoverPhases checks the trace covers every solver phase
// with properly paired and nested spans, and that phase durations are
// consistent with the reported total.
func TestTraceSpansCoverPhases(t *testing.T) {
	p := hardProblem()
	sink := &obs.CollectSink{}
	opts := DefaultOptions()
	opts.MaxNodes = 20_000
	opts.Trace = obs.New(sink)
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}

	evs := sink.Events()
	starts := map[string]obs.Event{}
	ends := map[string]obs.Event{}
	open := 0
	for _, e := range evs {
		switch e.Kind {
		case obs.KindSpanStart:
			open++
			starts[e.Name] = e
		case obs.KindSpanEnd:
			open--
			ends[e.Name] = e
		}
	}
	if open != 0 {
		t.Errorf("unbalanced span events: %d unclosed", open)
	}
	for _, phase := range []string{"solver.solve", "solver.validate", "solver.prune", "solver.presolve", "solver.decompose", "solver.search"} {
		if _, ok := starts[phase]; !ok {
			t.Errorf("missing span_start for %s", phase)
		}
		if _, ok := ends[phase]; !ok {
			t.Errorf("missing span_end for %s", phase)
		}
	}
	rootID := starts["solver.solve"].Span
	for _, phase := range []string{"solver.validate", "solver.prune", "solver.presolve", "solver.decompose", "solver.search"} {
		if got := starts[phase].Parent; got != rootID {
			t.Errorf("%s parent = %d, want root %d", phase, got, rootID)
		}
	}
	// Child durations sum to no more than the root's.
	var sum int64
	for _, phase := range []string{"solver.validate", "solver.prune", "solver.presolve", "solver.decompose", "solver.search", "solver.witness"} {
		if e, ok := ends[phase]; ok {
			sum += e.DurNs
		}
	}
	if rootDur := ends["solver.solve"].DurNs; sum > rootDur {
		t.Errorf("phase durations sum %dns exceeds root %dns", sum, rootDur)
	}

	// Stats durations mirror the spans.
	st := res.Stats
	if st.TotalTime <= 0 {
		t.Error("TotalTime not populated")
	}
	if got := st.PruneTime + st.PresolveTime + st.SearchTime + st.WitnessTime; got > st.TotalTime {
		t.Errorf("phase durations %v exceed total %v", got, st.TotalTime)
	}
	if st.SearchTime <= 0 {
		t.Error("SearchTime not populated")
	}
}

// TestProgressCallback checks the periodic callback fires during a
// long search with monotonically non-decreasing totals.
func TestProgressCallback(t *testing.T) {
	p := hardProblem()
	var mu sync.Mutex
	var infos []ProgressInfo
	opts := DefaultOptions()
	opts.UseLP = false // keep the search in node-heavy DFS
	opts.MaxNodes = 100_000
	opts.ProgressInterval = 2048
	opts.Progress = func(pi ProgressInfo) {
		mu.Lock()
		infos = append(infos, pi)
		mu.Unlock()
	}
	if _, err := Maximize(p, opts); err != nil {
		t.Fatal(err)
	}
	if len(infos) < 2 {
		t.Fatalf("progress fired %d times, want >= 2", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].Nodes < infos[i-1].Nodes {
			t.Errorf("nodes regressed: %d then %d", infos[i-1].Nodes, infos[i].Nodes)
		}
	}
}

// TestCancelReturnsBestEffort checks the cooperative abort path: a
// firing Cancel stops an otherwise multi-million-node search almost
// immediately and still reports an unproven best-effort result.
func TestCancelReturnsBestEffort(t *testing.T) {
	p := hardProblem()
	opts := DefaultOptions()
	opts.UseLP = false // DFS would run to the 2M oversize budget
	opts.Cancel = func() bool { return true }
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Error("canceled solve reported proven")
	}
	if !res.Stats.Canceled {
		t.Error("Stats.Canceled not set")
	}
	if res.Stats.Nodes > 50_000 {
		t.Errorf("cancel was slow: %d nodes explored", res.Stats.Nodes)
	}
	if res.Value > res.Bound {
		t.Errorf("value %d exceeds bound %d", res.Value, res.Bound)
	}
	// The dive should still find the easy incumbent.
	if res.Value <= 0 {
		t.Errorf("no useful best-effort value: %d", res.Value)
	}
}

// TestCancelHonoredAcrossBoundsCall checks both directions of a
// Bounds call observe the cancellation independently.
func TestCancelHonoredAcrossBoundsCall(t *testing.T) {
	p := hardProblem()
	opts := DefaultOptions()
	opts.UseLP = false
	calls := 0
	opts.Cancel = func() bool { calls++; return calls > 3 }
	min, max, err := Bounds(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if min.Proven && max.Proven {
		t.Error("both sides proven despite cancellation")
	}
	if min.Value > max.Value {
		t.Errorf("min %d > max %d", min.Value, max.Value)
	}
}

// TestTracingOffIsNoop: a solve without instrumentation produces the
// same result and stats as one with it (modulo durations).
func TestTracingOffIsNoop(t *testing.T) {
	p := hardProblem()
	opts := DefaultOptions()
	opts.MaxNodes = 20_000
	plain, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Trace = obs.New(&obs.CollectSink{})
	opts.Metrics = obs.NewRegistry()
	traced, err := Maximize(hardProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != traced.Value || plain.Bound != traced.Bound || plain.Proven != traced.Proven {
		t.Errorf("tracing changed the result: %+v vs %+v", plain, traced)
	}
	if plain.Stats.Nodes != traced.Stats.Nodes || plain.Stats.LPSolves != traced.Stats.LPSolves {
		t.Errorf("tracing changed the search: %+v vs %+v", plain.Stats, traced.Stats)
	}
	// The memory probe only arms when instrumentation is attached.
	if plain.Stats.AllocBytes != 0 || plain.Stats.PeakHeap != 0 {
		t.Errorf("uninstrumented solve recorded memory stats: alloc=%d peak=%d",
			plain.Stats.AllocBytes, plain.Stats.PeakHeap)
	}
}

// TestMemProbeRecordsAllocations: an instrumented solve reports
// process-level allocation and peak-heap figures in Stats and mirrors
// them into the registry.
func TestMemProbeRecordsAllocations(t *testing.T) {
	p := hardProblem()
	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.MaxNodes = 20_000
	opts.Metrics = reg
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AllocBytes <= 0 {
		t.Errorf("AllocBytes = %d, want > 0", res.Stats.AllocBytes)
	}
	if res.Stats.PeakHeap <= 0 {
		t.Errorf("PeakHeap = %d, want > 0", res.Stats.PeakHeap)
	}
	if got := reg.Counter("solver.alloc_bytes").Value(); got != res.Stats.AllocBytes {
		t.Errorf("counter alloc_bytes = %d, stats = %d", got, res.Stats.AllocBytes)
	}
	if got := reg.Gauge("solver.peak_heap_bytes").Value(); got != res.Stats.PeakHeap {
		t.Errorf("gauge peak_heap_bytes = %d, stats = %d", got, res.Stats.PeakHeap)
	}
}

// TestMetricsScrapeDuringSolve boots the debug server, runs a live
// solve against its registry, and scrapes /metrics over HTTP while the
// search is flushing counters — the full production telemetry path.
// The exposition must parse as Prometheus text format 0.0.4, validate
// (types, monotone cumulative buckets, _sum/_count consistency), and
// carry the solver instruments alongside the runtime gauges.
func TestMetricsScrapeDuringSolve(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	opts := DefaultOptions()
	opts.UseLP = false // node-heavy DFS: plenty of counter flushes to observe
	opts.MaxNodes = 300_000
	opts.Metrics = reg
	done := make(chan error, 1)
	go func() {
		_, err := Maximize(hardProblem(), opts)
		done <- err
	}()

	scrape := func() []obs.PromFamily {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
			t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
		}
		fams, err := obs.ParseProm(resp.Body)
		if err != nil {
			t.Fatalf("scrape does not parse: %v", err)
		}
		if err := obs.ValidateProm(fams); err != nil {
			t.Fatalf("scrape does not validate: %v", err)
		}
		return fams
	}
	family := func(fams []obs.PromFamily, name string) *obs.PromFamily {
		for i := range fams {
			if fams[i].Name == name {
				return &fams[i]
			}
		}
		return nil
	}

	// Poll until the search's periodic flush makes the node counter
	// visible; every intermediate scrape must already be valid.
	deadline := time.Now().Add(30 * time.Second)
	for {
		fams := scrape()
		f := family(fams, "licm_solver_nodes_total")
		if f != nil && f.Type == "counter" && len(f.Samples) == 1 && f.Samples[0].Value > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("solver.nodes never appeared on /metrics")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Final scrape: every registry instrument plus the runtime gauges.
	fams := scrape()
	for _, name := range []string{"licm_solver_nodes_total", "licm_solver_lp_solves_total", "licm_solver_propagations_total"} {
		f := family(fams, name)
		if f == nil || f.Type != "counter" {
			t.Errorf("missing or mistyped counter %s", name)
		}
	}
	for _, name := range []string{"licm_runtime_heap_bytes", "licm_runtime_goroutines", "licm_solver_peak_heap_bytes"} {
		f := family(fams, name)
		if f == nil || f.Type != "gauge" {
			t.Errorf("missing or mistyped gauge %s", name)
			continue
		}
		if len(f.Samples) != 1 || f.Samples[0].Value <= 0 {
			t.Errorf("%s: want one positive sample, got %+v", name, f.Samples)
		}
	}

	// Histogram exposition is consistent with the registry snapshot.
	snap := reg.Histogram("solver.node_ns").Snapshot()
	if snap.Count == 0 {
		t.Fatal("solver.node_ns recorded nothing")
	}
	f := family(fams, "licm_solver_node_ns")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("missing histogram licm_solver_node_ns")
	}
	if s := f.Sample("_count"); s == nil || int64(s.Value) != snap.Count {
		t.Errorf("_count = %v, snapshot count = %d", s, snap.Count)
	}
	if s := f.Sample("_sum"); s == nil || int64(s.Value) != snap.Sum {
		t.Errorf("_sum = %v, snapshot sum = %d", s, snap.Sum)
	}
	var inf *obs.PromSample
	for i := range f.Samples {
		if f.Samples[i].Name == "licm_solver_node_ns_bucket" && f.Samples[i].Label("le") == "+Inf" {
			inf = &f.Samples[i]
		}
	}
	if inf == nil || int64(inf.Value) != snap.Count {
		t.Errorf("+Inf bucket = %v, want %d", inf, snap.Count)
	}

	// The dashboard and time-series endpoints ride on the same mux.
	for _, path := range []string{"/debug/licm", "/debug/licm/timeseries"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}
