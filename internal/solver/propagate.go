package solver

import "licm/internal/expr"

// lcon is a constraint in compact local form: parallel slices of
// variable indices and coefficients, a comparison operator, and a
// right-hand side.
type lcon struct {
	vars []int32
	coef []int64
	op   expr.Op
	rhs  int64
}

func toLcon(c expr.Constraint, remap func(expr.Var) int32) lcon {
	terms := c.Lin.Terms()
	l := lcon{
		vars: make([]int32, len(terms)),
		coef: make([]int64, len(terms)),
		op:   c.Op,
		rhs:  c.RHS - c.Lin.Const(),
	}
	for i, t := range terms {
		l.vars[i] = remap(t.Var)
		l.coef[i] = t.Coef
	}
	return l
}

// holds evaluates the constraint under a complete assignment.
func (l *lcon) holds(dom []int8) bool {
	var v int64
	for i, x := range l.vars {
		if dom[x] == 1 {
			v += l.coef[i]
		}
	}
	switch l.op {
	case expr.LE:
		return v <= l.rhs
	case expr.GE:
		return v >= l.rhs
	default:
		return v == l.rhs
	}
}

// varRef locates one term of one constraint.
type varRef struct {
	ci int32 // constraint index
	ti int32 // term index within the constraint
}

// propagator performs bound-consistency propagation for integer linear
// constraints over binary variables, with a trail for backtracking.
// Domains are dom[v] = -1 (free), 0, or 1.
//
// Activity bounds (minAct/maxAct) are maintained incrementally as
// variables are fixed and unfixed, so each fix costs O(number of
// constraint terms touching the variable) instead of rescanning whole
// constraints — essential for the cardinality groups produced by
// heavy generalization, which can span hundreds of variables.
type propagator struct {
	cons    []lcon
	varCons [][]varRef // variable -> terms containing it
	dom     []int8
	trail   []int32
	queue   []int32
	inQueue []bool
	minAct  []int64 // per constraint, min activity over current domains
	maxAct  []int64 // per constraint, max activity over current domains
	free    []int32 // per constraint, number of free variables
	maxPos  []int64 // per constraint, largest positive coefficient
	maxNeg  []int64 // per constraint, largest |negative| coefficient
	// nAssigns counts every assignment ever made (monotonic; undo does
	// not decrement it) — the propagation-work figure reported in
	// Stats.Propagations and the solver.propagations counter.
	nAssigns int64
}

func newPropagator(numVars int, cons []lcon) *propagator {
	p := &propagator{
		cons:    cons,
		varCons: make([][]varRef, numVars),
		dom:     make([]int8, numVars),
		inQueue: make([]bool, len(cons)),
		minAct:  make([]int64, len(cons)),
		maxAct:  make([]int64, len(cons)),
		free:    make([]int32, len(cons)),
		maxPos:  make([]int64, len(cons)),
		maxNeg:  make([]int64, len(cons)),
	}
	for i := range p.dom {
		p.dom[i] = -1
	}
	for ci := range cons {
		c := &cons[ci]
		for ti, v := range c.vars {
			p.varCons[v] = append(p.varCons[v], varRef{ci: int32(ci), ti: int32(ti)})
			cf := c.coef[ti]
			if cf > 0 {
				p.maxAct[ci] += cf
				if cf > p.maxPos[ci] {
					p.maxPos[ci] = cf
				}
			} else {
				p.minAct[ci] += cf
				if -cf > p.maxNeg[ci] {
					p.maxNeg[ci] = -cf
				}
			}
		}
		p.free[ci] = int32(len(c.vars))
	}
	return p
}

// mark returns a trail position for later undo.
func (p *propagator) mark() int { return len(p.trail) }

// undo unfixes every variable fixed since the given mark, reversing
// the incremental activity updates.
func (p *propagator) undo(mark int) {
	for i := len(p.trail) - 1; i >= mark; i-- {
		v := p.trail[i]
		val := p.dom[v]
		p.dom[v] = -1
		for _, r := range p.varCons[v] {
			cf := p.cons[r.ci].coef[r.ti]
			p.unapply(r.ci, cf, val)
		}
	}
	p.trail = p.trail[:mark]
}

// apply updates constraint ci's activity bounds for fixing a variable
// with coefficient cf to val.
func (p *propagator) apply(ci int32, cf int64, val int8) {
	if cf > 0 {
		if val == 1 {
			p.minAct[ci] += cf
		} else {
			p.maxAct[ci] -= cf
		}
	} else {
		if val == 1 {
			p.maxAct[ci] += cf
		} else {
			p.minAct[ci] -= cf
		}
	}
	p.free[ci]--
}

// unapply reverses apply.
func (p *propagator) unapply(ci int32, cf int64, val int8) {
	if cf > 0 {
		if val == 1 {
			p.minAct[ci] -= cf
		} else {
			p.maxAct[ci] += cf
		}
	} else {
		if val == 1 {
			p.maxAct[ci] -= cf
		} else {
			p.minAct[ci] += cf
		}
	}
	p.free[ci]++
}

// fix assigns v := val and propagates consequences. It returns false
// on conflict (some constraint became unsatisfiable); the caller must
// undo to a previous mark before continuing.
func (p *propagator) fix(v int32, val int8) bool {
	if d := p.dom[v]; d != -1 {
		return d == val
	}
	p.assign(v, val)
	return p.drain()
}

// propagateAll enqueues every constraint and drains the queue; used
// for root presolve.
func (p *propagator) propagateAll() bool {
	for ci := range p.cons {
		p.enqueue(int32(ci))
	}
	return p.drain()
}

func (p *propagator) assign(v int32, val int8) {
	p.nAssigns++
	p.dom[v] = val
	p.trail = append(p.trail, v)
	for _, r := range p.varCons[v] {
		cf := p.cons[r.ci].coef[r.ti]
		p.apply(r.ci, cf, val)
		p.enqueue(r.ci)
	}
}

func (p *propagator) enqueue(ci int32) {
	if !p.inQueue[ci] {
		p.inQueue[ci] = true
		p.queue = append(p.queue, ci)
	}
}

func (p *propagator) drain() bool {
	for len(p.queue) > 0 {
		ci := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		p.inQueue[ci] = false
		if !p.check(ci) {
			// Clear the queue so the propagator is reusable after undo.
			for _, c := range p.queue {
				p.inQueue[c] = false
			}
			p.queue = p.queue[:0]
			return false
		}
	}
	return true
}

// check examines constraint ci using the cached activity bounds:
// detects conflict in O(1) and scans for forced variables only when
// the bounds show forcing is possible at all.
func (p *propagator) check(ci int32) bool {
	c := &p.cons[ci]
	minAct, maxAct := p.minAct[ci], p.maxAct[ci]
	needLE := c.op == expr.LE || c.op == expr.EQ
	needGE := c.op == expr.GE || c.op == expr.EQ
	if needLE && minAct > c.rhs {
		return false
	}
	if needGE && maxAct < c.rhs {
		return false
	}
	if p.free[ci] == 0 {
		return true
	}
	// Forcing is only possible when some coefficient could push the
	// activity past the bound; these O(1) tests skip the scan in the
	// common satisfied case.
	scanLE := needLE && (minAct+p.maxPos[ci] > c.rhs || minAct+p.maxNeg[ci] > c.rhs)
	scanGE := needGE && (maxAct-p.maxPos[ci] < c.rhs || maxAct-p.maxNeg[ci] < c.rhs)
	if !scanLE && !scanGE {
		return true
	}
	for i, v := range c.vars {
		if p.dom[v] != -1 {
			continue
		}
		cf := c.coef[i]
		if scanLE {
			if cf > 0 && minAct+cf > c.rhs {
				p.assign(v, 0)
				continue
			}
			if cf < 0 && minAct-cf > c.rhs {
				p.assign(v, 1)
				continue
			}
		}
		if scanGE {
			if cf > 0 && maxAct-cf < c.rhs {
				p.assign(v, 1)
				continue
			}
			if cf < 0 && maxAct+cf < c.rhs {
				p.assign(v, 0)
				continue
			}
		}
	}
	return true
}

// numFree counts unfixed variables.
func (p *propagator) numFree() int {
	n := 0
	for _, d := range p.dom {
		if d == -1 {
			n++
		}
	}
	return n
}
