package solver

import (
	"sync"
	"time"

	"licm/internal/expr"
)

// ExplainRecorder collects per-solve forensics: the pruning effect,
// the decomposed component list with each component's projected
// constraint matrix, and per-component search attribution (nodes, LP
// solves, wall time). Attach one via Options.Explain; a single
// recorder may span several solves — a Bounds call appends a "max"
// and a "min" run, and a supervised solve appends one run per retry.
//
// The recorder is the raw-data layer: it exports matrices and
// counters and knows nothing about fingerprints or reports; package
// internal/explain builds the licm-explain/1 report and the workload
// census on top. All methods are safe for concurrent use (components
// may run on worker goroutines).
type ExplainRecorder struct {
	mu   sync.Mutex
	runs []ExplainRun
}

// ExplainRun is the record of one Maximize/Minimize call.
type ExplainRun struct {
	// Sense is "max" or "min" (the solver's label; Minimize negates
	// the objective, so a min run's component objectives are negated).
	Sense string
	// Quality is the supervisor's degradation tag for the run
	// ("exact", "proven-interval", "sampled", "failed"); empty for
	// unsupervised solves. See ExplainRecorder.TagSense.
	Quality string

	// Pruning effect (the same figures as Stats).
	VarsBefore      int
	ConsBefore      int
	VarsAfterPrune  int
	ConsAfterPrune  int
	FixedByPresolve int

	// Components are the decomposed subproblems, registered before any
	// search work — so they survive cancellation and budget exhaustion
	// even though the run totals may then be lost.
	Components []ExplainComp

	// Work totals and phase durations, copied from Stats when the
	// solve returns. On an error return the solver zeroes its Result,
	// so Nodes/LPSolves/Propagations are reconstructed from the
	// per-component records instead (presolve propagations included
	// via FixedByPresolve).
	Nodes        int64
	LPSolves     int64
	Propagations int64
	PruneNs      int64
	PresolveNs   int64
	SearchNs     int64
	WitnessNs    int64
	TotalNs      int64
	AllocBytes   int64
	PeakHeap     int64

	Canceled         bool
	WitnessExhausted bool
	Proven           bool
	// Err is the terminal error text, empty on success.
	Err string
}

// ExplainComp is one decomposed component: its projected constraint
// matrix over local variable ids 0..Vars-1 (globally-fixed variables
// folded into the right-hand sides, exactly as the component solver
// sees it) plus the work the search spent on it.
type ExplainComp struct {
	// Index is the component's slot in the decomposition (the same
	// index CompSnapshot and CompPanic use).
	Index int
	// Vars is the number of local variables.
	Vars int
	// Cons is the projected constraint matrix.
	Cons []ExplainCon
	// Obj holds the local objective coefficients (length Vars).
	Obj []int64

	// Search attribution, filled when the component's search returns;
	// zero (with Solved false) when cancellation struck first.
	Solved       bool
	Nodes        int64
	LPSolves     int64
	Propagations int64
	// SolveNs is the component's wall-clock solve time; LPNs the part
	// spent inside LP relaxation solves.
	SolveNs int64
	LPNs    int64

	Feasible bool
	Proven   bool
	Best     int64
	Bound    int64
}

// ExplainCon is one projected constraint row in local variable ids.
type ExplainCon struct {
	Vars []int32
	Coef []int64
	Op   expr.Op
	RHS  int64
}

// Runs returns a snapshot of the recorded runs.
func (r *ExplainRecorder) Runs() []ExplainRun {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ExplainRun, len(r.runs))
	copy(out, r.runs)
	for i := range out {
		out[i].Components = append([]ExplainComp(nil), out[i].Components...)
	}
	return out
}

// Reset drops all recorded runs, so one recorder can be reused across
// queries (e.g. per experiment cell).
func (r *ExplainRecorder) Reset() {
	r.mu.Lock()
	r.runs = r.runs[:0]
	r.mu.Unlock()
}

// TagSense stamps quality onto every recorded run with the given
// sense ("max" or "min") — the hook internal/super uses to attach its
// degradation-ladder verdict to the runs (including retries) of one
// side.
func (r *ExplainRecorder) TagSense(sense, quality string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for i := range r.runs {
		if r.runs[i].Sense == sense {
			r.runs[i].Quality = quality
		}
	}
	r.mu.Unlock()
}

// start opens a new run and returns its index.
func (r *ExplainRecorder) start(sense string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs = append(r.runs, ExplainRun{Sense: sense})
	return len(r.runs) - 1
}

// setPrune records the pruning/presolve figures as soon as they are
// known, so they survive a later error return (which zeroes Stats).
func (r *ExplainRecorder) setPrune(run int, st *Stats) {
	r.mu.Lock()
	rr := &r.runs[run]
	rr.VarsBefore = st.VarsBefore
	rr.ConsBefore = st.ConsBefore
	rr.VarsAfterPrune = st.VarsAfterPrune
	rr.ConsAfterPrune = st.ConsAfterPrune
	rr.FixedByPresolve = st.FixedByPresolve
	rr.PruneNs = st.PruneTime.Nanoseconds()
	rr.PresolveNs = st.PresolveTime.Nanoseconds()
	r.mu.Unlock()
}

// registerComponents installs the decomposed component list. Called
// once per run, after decomposition and before any search work.
func (r *ExplainRecorder) registerComponents(run int, comps []ExplainComp) {
	r.mu.Lock()
	r.runs[run].Components = comps
	r.mu.Unlock()
}

// recordComp fills component ci's search attribution.
func (r *ExplainRecorder) recordComp(run, ci int, cr compResult, solveNs int64) {
	r.mu.Lock()
	comps := r.runs[run].Components
	if ci >= 0 && ci < len(comps) {
		c := &comps[ci]
		c.Solved = true
		c.Nodes = cr.nodes
		c.LPSolves = cr.lpSolves
		c.Propagations = cr.props
		c.SolveNs = solveNs
		c.LPNs = cr.lpNs
		c.Feasible = cr.feasible
		c.Proven = cr.proven
		c.Best = cr.best
		c.Bound = cr.bound
	}
	r.mu.Unlock()
}

// finish closes the run with the solve's final Stats and error.
func (r *ExplainRecorder) finish(run int, res *Result, err error) {
	r.mu.Lock()
	rr := &r.runs[run]
	st := &res.Stats
	rr.Nodes = st.Nodes
	rr.LPSolves = st.LPSolves
	rr.Propagations = st.Propagations
	rr.SearchNs = st.SearchTime.Nanoseconds()
	rr.WitnessNs = st.WitnessTime.Nanoseconds()
	rr.TotalNs = st.TotalTime.Nanoseconds()
	rr.AllocBytes = st.AllocBytes
	rr.PeakHeap = st.PeakHeap
	rr.Canceled = st.Canceled
	rr.WitnessExhausted = st.WitnessExhausted
	rr.Proven = err == nil && res.Proven
	if err != nil {
		rr.Err = err.Error()
		// The error return zeroed Result.Stats; the per-component
		// records are the best remaining account of the work done.
		rr.Nodes, rr.LPSolves, rr.Propagations = 0, 0, int64(rr.FixedByPresolve)
		for i := range rr.Components {
			c := &rr.Components[i]
			rr.Nodes += c.Nodes
			rr.LPSolves += c.LPSolves
			rr.Propagations += c.Propagations
		}
	}
	r.mu.Unlock()
}

// buildExplainComps projects each component's constraints and
// objective into local variable ids, folding globally-fixed variables
// into the right-hand sides — the same projection solveOne performs,
// captured here so the explain layer fingerprints exactly what the
// component solver works on.
func buildExplainComps(comps []component, lcons []lcon, objCoef map[expr.Var]int64, globalDom []int8) []ExplainComp {
	out := make([]ExplainComp, len(comps))
	for i, cm := range comps {
		ec := ExplainComp{Index: i, Vars: len(cm.vars)}
		local := make(map[expr.Var]int32, len(cm.vars))
		for j, v := range cm.vars {
			local[v] = int32(j)
		}
		ec.Cons = make([]ExplainCon, 0, len(cm.cons))
		for _, ci := range cm.cons {
			src := &lcons[ci]
			con := ExplainCon{Op: src.op, RHS: src.rhs}
			for k, v := range src.vars {
				switch globalDom[v] {
				case 1:
					con.RHS -= src.coef[k]
				case 0:
					// contributes nothing
				default:
					con.Vars = append(con.Vars, local[expr.Var(v)])
					con.Coef = append(con.Coef, src.coef[k])
				}
			}
			ec.Cons = append(ec.Cons, con)
		}
		ec.Obj = make([]int64, len(cm.vars))
		for j, v := range cm.vars {
			ec.Obj[j] = objCoef[v]
		}
		out[i] = ec
	}
	return out
}

// explainTimer returns the start time for a component solve when a
// recorder is attached (zero otherwise, keeping the unexplained path
// clock-free).
func explainTimer(rec *ExplainRecorder) time.Time {
	if rec == nil {
		return time.Time{}
	}
	return time.Now()
}
