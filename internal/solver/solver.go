package solver

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"licm/internal/check"
	"licm/internal/expr"
	"licm/internal/obs"
)

// defaultWitnessBudget caps the nodes spent completing a witness over
// pruned (objective-irrelevant) components when Options.WitnessBudget
// is left zero.
const defaultWitnessBudget = 500_000

// solve maximizes p.Objective. Minimization is handled by the caller
// via negation; minimized only labels the trace.
func solve(p *Problem, opts Options, minimized bool) (res Result, err error) {
	start := time.Now()
	tr := opts.Trace
	sense := "max"
	if minimized {
		sense = "min"
	}
	rootAttrs := []obs.Attr{
		obs.Str("sense", sense),
		obs.Int("vars", p.NumVars),
		obs.Int("cons", len(p.Constraints)),
	}
	if opts.RequestID != "" {
		rootAttrs = append(rootAttrs, obs.Str("request_id", opts.RequestID))
	}
	root := tr.Start("solver.solve", rootAttrs...)
	rec := opts.Explain
	runIdx := -1
	if rec != nil {
		runIdx = rec.start(sense)
		// Registered first, so it runs after the stats defer below has
		// filled TotalTime/Canceled/memory into res.Stats.
		defer func() { rec.finish(runIdx, &res, err) }()
	}
	crec := opts.Certify
	certIdx := -1
	if crec != nil {
		certIdx = crec.start(sense)
		defer func() { crec.finish(certIdx, &res, err) }()
	}
	mp := startMemProbe(opts.Metrics != nil || tr.Enabled())
	defer func() {
		res.Stats.TotalTime = time.Since(start)
		mp.stop(&res.Stats)
		if opts.Metrics != nil {
			opts.Metrics.Counter("solver.alloc_bytes").Add(res.Stats.AllocBytes)
			opts.Metrics.Gauge("solver.peak_heap_bytes").Set(res.Stats.PeakHeap)
		}
		// Surface the solve-latency distributions in the trace so
		// post-processors (licmtrace summary) see them without scraping
		// expvar. Values are cumulative over the registry's lifetime —
		// a Bounds call reports totals across both directions.
		if opts.Metrics != nil && tr.Enabled() {
			for _, h := range []string{"solver.lp_ns", "solver.node_ns"} {
				snap := opts.Metrics.Histogram(h).Snapshot()
				if snap.Count == 0 {
					continue
				}
				tr.Event("solver.hist",
					obs.Str("hist", h),
					obs.I64("count", snap.Count),
					obs.I64("sum", snap.Sum),
					obs.F64("mean", snap.Mean),
					obs.I64("p50", snap.Quantile(0.5)),
					obs.I64("p99", snap.Quantile(0.99)))
			}
		}
		root.End(
			obs.Bool("ok", err == nil),
			obs.Bool("proven", res.Proven),
			obs.Bool("canceled", res.Stats.Canceled),
			obs.I64("nodes", res.Stats.Nodes),
			obs.I64("lp_solves", res.Stats.LPSolves),
			obs.I64("propagations", res.Stats.Propagations),
			obs.I64("alloc_bytes", res.Stats.AllocBytes),
			obs.I64("peak_heap", res.Stats.PeakHeap))
	}()

	sp := root.Start("solver.validate")
	err = p.Validate()
	sp.End()
	if err != nil {
		return Result{}, err
	}

	// Opt-in static diagnostics: reject a provably-infeasible store
	// before any search work, with the findings attached to the error.
	if opts.Check {
		sp = root.Start("solver.check")
		rep := p.RunCheck()
		if opts.Metrics != nil {
			opts.Metrics.Counter("check.diags").Add(int64(len(rep.Diags)))
			opts.Metrics.Counter("check.errors").Add(int64(rep.Count(check.SevError)))
		}
		infeasible := rep.ProvenInfeasible()
		sp.End(
			obs.Int("diags", len(rep.Diags)),
			obs.Int("errors", rep.Count(check.SevError)),
			obs.Bool("infeasible", infeasible))
		if infeasible {
			return Result{}, &CheckError{Report: rep}
		}
	}

	kc := newCtrl(opts)
	res = Result{
		Assignment: make([]uint8, p.NumVars),
		Proven:     true,
		Stats: Stats{
			VarsBefore: p.NumVars,
			ConsBefore: len(p.Constraints),
			RequestID:  opts.RequestID,
		},
	}
	defer func() {
		if kc != nil {
			res.Stats.Canceled = kc.isCanceled()
			if res.Stats.Canceled {
				res.Proven = false
			}
		}
	}()

	// Reachability pruning (Section V, "Pruning").
	phaseStart := time.Now()
	sp = root.Start("solver.prune", obs.Bool("enabled", opts.Prune))
	kept := p.Constraints
	var dropped []expr.Constraint
	if opts.Prune {
		pr := Prune(p.NumVars, p.Constraints, p.Objective)
		kept = make([]expr.Constraint, 0, len(pr.KeptConstraints))
		di := 0
		for i, c := range p.Constraints {
			if di < len(pr.KeptConstraints) && pr.KeptConstraints[di] == i {
				kept = append(kept, c)
				di++
			} else {
				dropped = append(dropped, c)
			}
		}
		res.Stats.VarsAfterPrune = pr.NumReachable
		res.Stats.ConsAfterPrune = len(kept)
	} else {
		res.Stats.VarsAfterPrune = p.NumVars
		res.Stats.ConsAfterPrune = len(p.Constraints)
	}
	res.Stats.PruneTime = time.Since(phaseStart)
	sp.End(
		obs.Int("kept_vars", res.Stats.VarsAfterPrune),
		obs.Int("kept_cons", res.Stats.ConsAfterPrune))

	// Root presolve over the kept constraints.
	phaseStart = time.Now()
	sp = root.Start("solver.presolve")
	lcons := make([]lcon, len(kept))
	identity := func(v expr.Var) int32 { return int32(v) }
	for i, c := range kept {
		lcons[i] = toLcon(c, identity)
	}
	prop := newPropagator(p.NumVars, lcons)
	feasible := prop.propagateAll()
	res.Stats.FixedByPresolve = len(prop.trail)
	res.Stats.Propagations = prop.nAssigns
	if kc != nil {
		kc.add(0, 0, prop.nAssigns)
	}
	res.Stats.PresolveTime = time.Since(phaseStart)
	sp.End(obs.Int("fixed", res.Stats.FixedByPresolve), obs.Bool("feasible", feasible))
	if !feasible {
		return Result{}, ErrInfeasible
	}

	// Objective bookkeeping: constant + contribution of fixed
	// variables; remaining terms feed component objectives.
	total := p.Objective.Const()
	objCoef := make(map[expr.Var]int64, p.Objective.Len())
	inObjective := make([]bool, p.NumVars)
	for _, t := range p.Objective.Terms() {
		switch prop.dom[t.Var] {
		case 1:
			total += t.Coef
		case 0:
			// contributes nothing
		default:
			objCoef[t.Var] = t.Coef
			inObjective[t.Var] = true
		}
	}
	for v := 0; v < p.NumVars; v++ {
		if prop.dom[v] == 1 {
			res.Assignment[v] = 1
		}
	}

	// Decompose into connected components over free variables.
	searchStart := time.Now()
	sp = root.Start("solver.decompose", obs.Bool("enabled", opts.Decompose))
	free := make([]bool, p.NumVars)
	for v := 0; v < p.NumVars; v++ {
		free[v] = prop.dom[v] == -1
	}
	comps := decompose(p.NumVars, kept, free, inObjective)
	res.Stats.Components = len(comps)
	sp.End(obs.Int("components", len(comps)))
	if opts.Metrics != nil {
		opts.Metrics.Gauge("solver.components").Set(int64(len(comps)))
	}
	if rec != nil {
		rec.setPrune(runIdx, &res.Stats)
	}

	// Register the snapshot board before any search work, so an
	// anytime interval is available from the first moment a fault can
	// strike: base is the constant-plus-presolve value, each
	// component's initial bound the sum of its positive coefficients.
	if opts.Snapshots != nil {
		if !opts.Decompose && len(comps) > 1 {
			// Merged-ablation path: everything is one slot.
			var ub int64
			for _, c := range objCoef {
				if c > 0 {
					ub += c
				}
			}
			opts.Snapshots.register(total, []int64{ub})
		} else {
			ubs := make([]int64, len(comps))
			for ci, cm := range comps {
				for _, v := range cm.vars {
					if c := objCoef[v]; c > 0 {
						ubs[ci] += c
					}
				}
			}
			opts.Snapshots.register(total, ubs)
		}
	}

	sp = root.Start("solver.search", obs.Int("components", len(comps)))
	endSearch := func() {
		res.Stats.SearchTime = time.Since(searchStart)
		sp.End(
			obs.I64("nodes", res.Stats.Nodes),
			obs.I64("lp_solves", res.Stats.LPSolves),
			obs.Bool("proven", res.Proven))
	}
	// budgetErr distinguishes a deliberate cancellation from genuine
	// budget exhaustion when no feasible point was reached. The
	// component index is folded into the error text so a supervisor
	// (or log reader) can tell which part of the search starved;
	// errors.Is(err, ErrCanceled) still matches through the wrap.
	budgetErr := func(ci int) error {
		if kc.isCanceled() {
			return fmt.Errorf("solver: component %d: %w", ci, ErrCanceled)
		}
		return fmt.Errorf("solver: component %d: node budget exhausted before finding a feasible point", ci)
	}
	var budget *int64
	if opts.MaxNodes > 0 {
		b := opts.MaxNodes
		budget = &b
	}
	bound := total
	if crec != nil {
		// Base is everything the components do not account for: the
		// objective constant plus presolve-fixed contributions. The
		// verifier checks Base + sum(component values) == Value.
		crec.setBase(certIdx, total)
	}
	if opts.Decompose || len(comps) <= 1 {
		if rec != nil {
			rec.registerComponents(runIdx, buildExplainComps(comps, lcons, objCoef, prop.dom))
		}
		results := solveAll(comps, lcons, objCoef, prop.dom, p.Derived, opts, budget, kc, rec, runIdx)
		if crec != nil {
			// Certification is a post-search pass over the projected
			// matrices and outcomes: it never touches live search state,
			// so a certifying solve explores exactly the same tree.
			crec.certify(certIdx, buildExplainComps(comps, lcons, objCoef, prop.dom), results)
		}
		for ci, cr := range results {
			res.Stats.Nodes += cr.nodes
			res.Stats.LPSolves += cr.lpSolves
			res.Stats.Propagations += cr.props
			if !cr.feasible {
				endSearch()
				if !cr.proven {
					return Result{}, budgetErr(ci)
				}
				return Result{}, ErrInfeasible
			}
			total += cr.best
			bound += cr.bound
			if !cr.proven {
				res.Proven = false
			}
			for i, v := range comps[ci].vars {
				if cr.assign[i] == 1 {
					res.Assignment[v] = 1
				}
			}
		}
	}
	if !opts.Decompose && len(comps) > 1 {
		// Merge all components into a single solve (used by the
		// decomposition ablation benchmark).
		merged := mergeComponents(comps)
		if rec != nil {
			rec.registerComponents(runIdx, buildExplainComps([]component{merged}, lcons, objCoef, prop.dom))
		}
		t0 := explainTimer(rec)
		cr := solveOneGuarded(0, merged, lcons, objCoef, prop.dom, p.Derived, opts, budget, kc)
		if rec != nil {
			rec.recordComp(runIdx, 0, cr, time.Since(t0).Nanoseconds())
		}
		if crec != nil {
			crec.certify(certIdx, buildExplainComps([]component{merged}, lcons, objCoef, prop.dom), []compResult{cr})
		}
		res.Stats.Nodes += cr.nodes
		res.Stats.LPSolves += cr.lpSolves
		res.Stats.Propagations += cr.props
		res.Stats.Components = 1
		if !cr.feasible {
			endSearch()
			if !cr.proven {
				return Result{}, budgetErr(0)
			}
			return Result{}, ErrInfeasible
		}
		total += cr.best
		bound += cr.bound
		if !cr.proven {
			res.Proven = false
		}
		for i, v := range merged.vars {
			if cr.assign[i] == 1 {
				res.Assignment[v] = 1
			}
		}
	}
	res.Value = total
	res.Bound = bound
	endSearch()

	// Complete the witness over pruned components: they cannot change
	// the optimum of a *feasible* problem, but a full world needs
	// values for their variables — and if the pruned part is
	// infeasible, so is the whole problem.
	if opts.CompleteWitness && len(dropped) > 0 {
		phaseStart = time.Now()
		wsp := root.Start("solver.witness", obs.Int("dropped_cons", len(dropped)))
		ok, infeasible := completeWitness(p.NumVars, dropped, res.Assignment, opts)
		res.Stats.WitnessTime = time.Since(phaseStart)
		wsp.End(obs.Bool("complete", ok), obs.Bool("infeasible", infeasible))
		if infeasible {
			return Result{}, ErrInfeasible
		}
		if !ok {
			// Too hard within budget; the bounds stand, but the
			// witness is partial. Record the exhaustion so callers can
			// tell a dropped witness from a problem with none.
			res.Assignment = nil
			res.Stats.WitnessExhausted = true
		}
	}
	return res, nil
}

// solveAll solves every component, sequentially or with a worker pool
// when opts.Workers > 1. A panic on any worker is captured, remaining
// components are abandoned, and the first panic is re-thrown (as a
// *CompPanic) once every worker has stopped — so a dying component can
// never strand the pool.
func solveAll(comps []component, lcons []lcon, objCoef map[expr.Var]int64, globalDom []int8, derived []bool, opts Options, budget *int64, kc *ctrl, rec *ExplainRecorder, runIdx int) []compResult {
	results := make([]compResult, len(comps))
	if opts.Workers <= 1 || len(comps) <= 1 {
		for ci, cm := range comps {
			t0 := explainTimer(rec)
			results[ci] = solveOneGuarded(ci, cm, lcons, objCoef, globalDom, derived, opts, budget, kc)
			if rec != nil {
				rec.recordComp(runIdx, ci, results[ci], time.Since(t0).Nanoseconds())
			}
		}
		return results
	}
	// Parallel path: split any budget evenly so workers never share
	// mutable state. Work is handed out through an atomic index rather
	// than a feeder channel: a feeder would block forever on a send to
	// a pool whose workers have panicked.
	var perComp int64
	if budget != nil {
		perComp = *budget / int64(len(comps))
		if perComp < 1000 {
			perComp = 1000
		}
	}
	workers := opts.Workers
	if workers > len(comps) {
		workers = len(comps)
	}
	var wg sync.WaitGroup
	var nextIdx atomic.Int64
	var panicked atomic.Bool
	var panicMu sync.Mutex
	var firstPanic *CompPanic
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					cp, ok := r.(*CompPanic)
					if !ok {
						cp = &CompPanic{Component: -1, Value: r, Stack: debug.Stack()}
					}
					panicMu.Lock()
					if firstPanic == nil {
						firstPanic = cp
					}
					panicMu.Unlock()
					panicked.Store(true)
				}
			}()
			for {
				ci := int(nextIdx.Add(1) - 1)
				if ci >= len(comps) || panicked.Load() {
					return
				}
				var b *int64
				if budget != nil {
					local := perComp
					b = &local
				}
				t0 := explainTimer(rec)
				results[ci] = solveOneGuarded(ci, comps[ci], lcons, objCoef, globalDom, derived, opts, b, kc)
				if rec != nil {
					rec.recordComp(runIdx, ci, results[ci], time.Since(t0).Nanoseconds())
				}
			}
		}()
	}
	wg.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
	return results
}

// solveOne extracts and solves a single component. ci is the
// component's slot on the solve's SnapshotBoard (-1 when the work is
// not board-tracked, e.g. witness completion).
func solveOne(ci int, cm component, lcons []lcon, objCoef map[expr.Var]int64, globalDom []int8, derived []bool, opts Options, budget *int64, kc *ctrl) compResult {
	n := len(cm.vars)
	local := make(map[expr.Var]int32, n)
	for i, v := range cm.vars {
		local[v] = int32(i)
	}
	// Fold globally-fixed variables out of the component's constraints.
	cons := make([]lcon, 0, len(cm.cons))
	for _, ci := range cm.cons {
		src := &lcons[ci]
		lc := lcon{op: src.op, rhs: src.rhs}
		for k, v := range src.vars {
			switch globalDom[v] {
			case 1:
				lc.rhs -= src.coef[k]
			case 0:
				// drop
			default:
				lc.vars = append(lc.vars, local[expr.Var(v)])
				lc.coef = append(lc.coef, src.coef[k])
			}
		}
		cons = append(cons, lc)
	}
	obj := make([]int64, n)
	for i, v := range cm.vars {
		obj[i] = objCoef[v]
	}
	var der []bool
	if derived != nil {
		der = make([]bool, n)
		for i, v := range cm.vars {
			der[i] = derived[v]
		}
	}
	prop := newPropagator(n, cons)
	return solveComp(ci, n, cons, obj, der, prop, opts, budget, kc)
}

// component groups free variables connected through constraints, plus
// the indices of those constraints.
type component struct {
	vars []expr.Var
	cons []int
}

// decompose partitions the free variables into connected components of
// the variable/constraint graph. Free variables that appear in the
// objective but in no constraint become singleton components; free
// variables in neither are omitted entirely.
func decompose(numVars int, cons []expr.Constraint, free, inObjective []bool) []component {
	parent := make([]int32, numVars)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	inCons := make([]bool, numVars)
	for _, c := range cons {
		first := int32(-1)
		for _, t := range c.Lin.Terms() {
			if !free[t.Var] {
				continue
			}
			inCons[t.Var] = true
			if first == -1 {
				first = int32(t.Var)
			} else {
				union(first, int32(t.Var))
			}
		}
	}
	byRoot := make(map[int32]*component)
	ordered := make([]*component, 0, 16)
	compOf := func(root int32) *component {
		if c, ok := byRoot[root]; ok {
			return c
		}
		c := &component{}
		byRoot[root] = c
		ordered = append(ordered, c)
		return c
	}
	for v := 0; v < numVars; v++ {
		if !free[v] {
			continue
		}
		if !inCons[v] && !inObjective[v] {
			continue
		}
		compOf(find(int32(v))).vars = append(compOf(find(int32(v))).vars, expr.Var(v))
	}
	for ci, c := range cons {
		for _, t := range c.Lin.Terms() {
			if free[t.Var] {
				cc := compOf(find(int32(t.Var)))
				cc.cons = append(cc.cons, ci)
				break
			}
		}
	}
	out := make([]component, 0, len(ordered))
	for _, c := range ordered {
		out = append(out, *c)
	}
	return out
}

// mergeComponents joins all components into one (decomposition
// ablation path).
func mergeComponents(comps []component) component {
	var m component
	for _, c := range comps {
		m.vars = append(m.vars, c.vars...)
		m.cons = append(m.cons, c.cons...)
	}
	return m
}

// completeWitness finds feasible values for the variables of the
// pruned constraints and writes them into assign. ok is false when no
// completion was found within budget; infeasible is true when the
// pruned constraints are provably unsatisfiable (making the entire
// problem infeasible).
func completeWitness(numVars int, dropped []expr.Constraint, assign []uint8, opts Options) (ok, infeasible bool) {
	lcons := make([]lcon, len(dropped))
	identity := func(v expr.Var) int32 { return int32(v) }
	for i, c := range dropped {
		lcons[i] = toLcon(c, identity)
	}
	prop := newPropagator(numVars, lcons)
	if !prop.propagateAll() {
		return false, true
	}
	for v := 0; v < numVars; v++ {
		if prop.dom[v] == 1 {
			assign[v] = 1
		}
	}
	// Fast path: one global feasibility dive over the variables of
	// the pruned constraints (and only those — pruning guarantees they
	// are disjoint from the objective's part, whose assignment must
	// not be disturbed). Pruned constraints are the untouched
	// base-uncertainty families plus lineage chains outside the
	// objective, for which a propagation-guided 1-first dive in
	// variable order succeeds essentially linearly.
	{
		inDropped := make([]bool, numVars)
		var order []int32
		for i := range lcons {
			for _, v := range lcons[i].vars {
				if !inDropped[v] {
					inDropped[v] = true
					order = append(order, v)
				}
			}
		}
		sortInt32s(order)
		b := witnessNodeBudget(opts)
		c := &comp{
			n:           numVars,
			cons:        lcons,
			obj:         make([]int64, numVars),
			prop:        prop,
			opts:        opts,
			budget:      &b,
			stopAtFirst: true,
			feasOnly:    true,
			order:       order,
		}
		c.dfsNode(0)
		if c.hasIncumbent {
			for _, v := range order {
				if c.assign[v] == 1 {
					assign[v] = 1
				}
			}
			return true, false
		}
		// The dive restored the propagator to its root state on the
		// way out; fall through to the decomposed search.
	}
	// Slow path: decompose and solve the components independently.
	free := make([]bool, numVars)
	for v := 0; v < numVars; v++ {
		free[v] = prop.dom[v] == -1
	}
	noObj := make([]bool, numVars)
	comps := decompose(numVars, dropped, free, noObj)
	wopts := opts
	wopts.UseLP = false
	// Witness components have no board slots: their values never move
	// the objective, so publishing them would corrupt the interval.
	wopts.Snapshots = nil
	// Witness work is deliberately not attached to the solve's ctrl:
	// its nodes do not count toward Stats.Nodes, so live counters
	// would drift from the reported totals. Each dive is budgeted, so
	// cancellation latency stays bounded anyway.
	for _, cm := range comps {
		b := witnessNodeBudget(opts)
		cr := solveOne(-1, cm, lcons, nil, prop.dom, nil, wopts, &b, nil)
		if !cr.feasible {
			return false, cr.proven
		}
		for i, v := range cm.vars {
			if cr.assign[i] == 1 {
				assign[v] = 1
			}
		}
	}
	return true, false
}

// witnessNodeBudget returns the node budget of one witness dive:
// Options.WitnessBudget, or the historical default when unset.
func witnessNodeBudget(opts Options) int64 {
	if opts.WitnessBudget > 0 {
		return opts.WitnessBudget
	}
	return defaultWitnessBudget
}

// sortInt32s sorts ascending, keeping the witness dive deterministic.
func sortInt32s(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
