package solver

import (
	"math/rand"
	"testing"

	"licm/internal/expr"
)

func lconsOf(numVars int, cons ...expr.Constraint) []lcon {
	out := make([]lcon, len(cons))
	identity := func(v expr.Var) int32 { return int32(v) }
	for i, c := range cons {
		out[i] = toLcon(c, identity)
	}
	return out
}

func TestToLconFoldsConstant(t *testing.T) {
	c := expr.NewConstraint(expr.Sum(0, 1).AddConst(3), expr.LE, 5)
	l := toLcon(c, func(v expr.Var) int32 { return int32(v) })
	if l.rhs != 2 {
		t.Fatalf("rhs = %d, want 2", l.rhs)
	}
}

func TestFixForcesGroupMember(t *testing.T) {
	// b0 + b1 + b2 >= 1: fixing b0 = b1 = 0 forces b2 = 1.
	cons := lconsOf(3, expr.NewConstraint(expr.Sum(0, 1, 2), expr.GE, 1))
	p := newPropagator(3, cons)
	if !p.fix(0, 0) || !p.fix(1, 0) {
		t.Fatal("unexpected conflict")
	}
	if p.dom[2] != 1 {
		t.Fatalf("b2 = %d, want forced 1", p.dom[2])
	}
}

func TestFixConflict(t *testing.T) {
	cons := lconsOf(2,
		expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1),
		expr.NewConstraint(expr.Sum(0, 1), expr.LE, 1),
	)
	p := newPropagator(2, cons)
	if !p.fix(0, 0) {
		t.Fatal("first fix should succeed")
	}
	// b1 forced to 1 by GE; now contradict it.
	if p.dom[1] != 1 {
		t.Fatalf("b1 = %d, want 1", p.dom[1])
	}
	m := p.mark()
	if p.fix(1, 0) {
		t.Fatal("contradiction not detected")
	}
	p.undo(m)
}

func TestFixAlreadyFixed(t *testing.T) {
	p := newPropagator(1, nil)
	if !p.fix(0, 1) {
		t.Fatal("fix failed")
	}
	if !p.fix(0, 1) {
		t.Fatal("re-fixing to same value should succeed")
	}
	if p.fix(0, 0) {
		t.Fatal("re-fixing to other value should fail")
	}
}

func TestUndoRestoresActivities(t *testing.T) {
	cons := lconsOf(4,
		expr.NewConstraint(expr.Sum(0, 1, 2, 3), expr.GE, 2),
		expr.NewConstraint(expr.NewLin(0,
			expr.Term{Var: 0, Coef: 2}, expr.Term{Var: 1, Coef: -3}), expr.LE, 1),
	)
	p := newPropagator(4, cons)
	min0, max0 := append([]int64(nil), p.minAct...), append([]int64(nil), p.maxAct...)
	free0 := append([]int32(nil), p.free...)
	m := p.mark()
	p.fix(0, 1)
	p.fix(1, 0)
	p.undo(m)
	for ci := range cons {
		if p.minAct[ci] != min0[ci] || p.maxAct[ci] != max0[ci] || p.free[ci] != free0[ci] {
			t.Fatalf("activities not restored for constraint %d", ci)
		}
	}
	for v := 0; v < 4; v++ {
		if p.dom[v] != -1 {
			t.Fatalf("domain %d not restored", v)
		}
	}
}

func TestPropagateAllRootFixes(t *testing.T) {
	// b0 = 1 (EQ with single var) and b0 + b1 <= 1 force b1 = 0.
	cons := lconsOf(2,
		expr.NewConstraint(expr.Sum(0), expr.EQ, 1),
		expr.NewConstraint(expr.Sum(0, 1), expr.LE, 1),
	)
	p := newPropagator(2, cons)
	if !p.propagateAll() {
		t.Fatal("conflict at root")
	}
	if p.dom[0] != 1 || p.dom[1] != 0 {
		t.Fatalf("dom = %v", p.dom[:2])
	}
	if p.numFree() != 0 {
		t.Fatal("all vars should be fixed")
	}
}

func TestNegativeCoefficientForcing(t *testing.T) {
	// b0 - b1 >= 0 with b1 = 1 forces b0 = 1.
	cons := lconsOf(2, expr.NewConstraint(expr.Sum(0).AddTerm(1, -1), expr.GE, 0))
	p := newPropagator(2, cons)
	if !p.fix(1, 1) {
		t.Fatal("conflict")
	}
	if p.dom[0] != 1 {
		t.Fatalf("b0 = %d, want 1", p.dom[0])
	}
	// And b0 = 0 forces b1 = 0 (fresh propagator).
	p = newPropagator(2, cons)
	if !p.fix(0, 0) {
		t.Fatal("conflict")
	}
	if p.dom[1] != 0 {
		t.Fatalf("b1 = %d, want 0", p.dom[1])
	}
}

func TestHolds(t *testing.T) {
	cons := lconsOf(2, expr.NewConstraint(expr.Sum(0, 1), expr.EQ, 1))
	dom := []int8{1, 0}
	if !cons[0].holds(dom) {
		t.Fatal("1+0 = 1 should hold")
	}
	dom = []int8{1, 1}
	if cons[0].holds(dom) {
		t.Fatal("2 = 1 should not hold")
	}
}

// TestQuickIncrementalActivitiesMatchRescan does random fix/undo
// sequences and cross-checks the cached activity bounds against a
// from-scratch recomputation.
func TestQuickIncrementalActivitiesMatchRescan(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		numVars := 2 + r.Intn(8)
		numCons := 1 + r.Intn(5)
		cons := make([]expr.Constraint, numCons)
		for i := range cons {
			cons[i] = randomConstraint(r, numVars)
		}
		p := newPropagator(numVars, lconsOf(numVars, cons...))
		var marks []int
		for step := 0; step < 30; step++ {
			if len(marks) > 0 && r.Intn(3) == 0 {
				i := r.Intn(len(marks))
				p.undo(marks[i])
				marks = marks[:i]
			} else {
				v := int32(r.Intn(numVars))
				if p.dom[v] != -1 {
					continue
				}
				marks = append(marks, p.mark())
				if !p.fix(v, int8(r.Intn(2))) {
					p.undo(marks[len(marks)-1])
					marks = marks[:len(marks)-1]
				}
			}
			// Cross-check cached activities.
			for ci := range p.cons {
				c := &p.cons[ci]
				var wantMin, wantMax int64
				var wantFree int32
				for k, v := range c.vars {
					switch p.dom[v] {
					case 1:
						wantMin += c.coef[k]
						wantMax += c.coef[k]
					case 0:
					default:
						wantFree++
						if c.coef[k] > 0 {
							wantMax += c.coef[k]
						} else {
							wantMin += c.coef[k]
						}
					}
				}
				if p.minAct[ci] != wantMin || p.maxAct[ci] != wantMax || p.free[ci] != wantFree {
					t.Fatalf("trial %d step %d: cached (%d,%d,%d) want (%d,%d,%d)",
						trial, step, p.minAct[ci], p.maxAct[ci], p.free[ci], wantMin, wantMax, wantFree)
				}
			}
		}
	}
}

// TestPropagationSoundness: propagation-forced values appear in every
// brute-force solution extending the fixed prefix.
func TestPropagationSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 200; trial++ {
		numVars := 2 + r.Intn(6)
		numCons := 1 + r.Intn(4)
		cons := make([]expr.Constraint, numCons)
		for i := range cons {
			cons[i] = randomConstraint(r, numVars)
		}
		p := newPropagator(numVars, lconsOf(numVars, cons...))
		v0 := int32(r.Intn(numVars))
		val0 := int8(r.Intn(2))
		okProp := p.propagateAll() && p.fix(v0, val0)
		// Brute force solutions with v0 = val0.
		anySolution := false
		consistentWithProp := false
		for mask := 0; mask < 1<<numVars; mask++ {
			get := func(v expr.Var) bool { return mask&(1<<uint(v)) != 0 }
			if get(expr.Var(v0)) != (val0 == 1) {
				continue
			}
			ok := true
			for _, c := range cons {
				if !c.Holds(get) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			anySolution = true
			match := true
			for v := 0; v < numVars; v++ {
				if d := p.dom[v]; d != -1 && get(expr.Var(v)) != (d == 1) {
					match = false
					break
				}
			}
			if match {
				consistentWithProp = true
			}
		}
		if okProp && anySolution && !consistentWithProp {
			t.Fatalf("trial %d: propagation fixed values excluded every solution", trial)
		}
		if !okProp && anySolution {
			t.Fatalf("trial %d: propagation reported conflict but solutions exist", trial)
		}
	}
}
