package solver

import (
	"bufio"
	"fmt"
	"io"

	"licm/internal/expr"
)

// WriteLP serializes the problem in the CPLEX LP file format, the
// interchange format the paper's prototype used to hand instances to
// CPLEX ("the constraints are encoded in the LP file format"). The
// output can be fed to CPLEX, Gurobi, SCIP, lp_solve or any other
// MIP solver for cross-checking this package's results:
//
//	Maximize
//	 obj: b0 + b1 + 2 b3
//	Subject To
//	 c0: b0 + b1 + b2 >= 1
//	Binary
//	 b0 b1 b2 b3
//	End
//
// sense selects the objective direction.
func WriteLP(w io.Writer, p *Problem, sense Sense) error {
	if err := p.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if sense == SenseMin {
		fmt.Fprintln(bw, "Minimize")
	} else {
		fmt.Fprintln(bw, "Maximize")
	}
	fmt.Fprint(bw, " obj:")
	writeLin(bw, p.Objective)
	if k := p.Objective.Const(); k != 0 {
		// The LP format has no objective constant; emit a comment so
		// round-trips are lossless for human readers.
		fmt.Fprintf(bw, "\n\\ objective constant: %d (add to the optimum)", k)
	}
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "Subject To")
	for i, c := range p.Constraints {
		fmt.Fprintf(bw, " c%d:", i)
		writeLin(bw, c.Lin)
		switch c.Op {
		case expr.LE:
			fmt.Fprintf(bw, " <= %d\n", c.RHS)
		case expr.GE:
			fmt.Fprintf(bw, " >= %d\n", c.RHS)
		case expr.EQ:
			fmt.Fprintf(bw, " = %d\n", c.RHS)
		}
	}
	fmt.Fprintln(bw, "Binary")
	line := 0
	for v := 0; v < p.NumVars; v++ {
		fmt.Fprintf(bw, " b%d", v)
		line++
		if line == 20 {
			fmt.Fprintln(bw)
			line = 0
		}
	}
	if line != 0 {
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

// Sense selects the optimization direction for WriteLP.
type Sense int

// Optimization senses.
const (
	SenseMax Sense = iota
	SenseMin
)

// writeLin emits a linear expression in LP syntax (no constant term —
// callers fold it into the RHS or a comment).
func writeLin(w io.Writer, l expr.Lin) {
	if l.Len() == 0 {
		fmt.Fprint(w, " 0 b0")
		return
	}
	first := true
	for _, t := range l.Terms() {
		c := t.Coef
		switch {
		case first && c < 0:
			fmt.Fprint(w, " -")
			c = -c
		case first:
			fmt.Fprint(w, " ")
		case c < 0:
			fmt.Fprint(w, " - ")
			c = -c
		default:
			fmt.Fprint(w, " + ")
		}
		if c != 1 {
			fmt.Fprintf(w, "%d ", c)
		}
		fmt.Fprintf(w, "b%d", t.Var)
		first = false
	}
}
