package solver

import (
	"sync/atomic"
	"time"

	"licm/internal/obs"
)

// ProgressInfo is a cumulative snapshot of solver work, delivered to
// Options.Progress and emitted as obs progress events, so long solves
// are watchable in flight. Counts are totals across all components
// (and all workers) of the current Maximize/Minimize call.
type ProgressInfo struct {
	Nodes        int64
	LPSolves     int64
	Propagations int64
	Incumbents   int64
}

// ctrlGranularity is how many branch-and-bound nodes a component
// explores between flushes of its local counters into the shared
// atomics (and polls of Options.Cancel). It bounds both the staleness
// of live counters and the latency of cancellation.
const ctrlGranularity = 1024

// ctrl is the shared live-instrumentation and cancellation state of
// one solve. Components — possibly running on worker goroutines —
// flush counter deltas into it; it forwards them to the metrics
// registry, fires the periodic progress callback, and polls the
// cancel hook. A nil *ctrl (instrumentation fully off) costs the hot
// path a single pointer comparison per node.
type ctrl struct {
	trace    *obs.Tracer
	progress func(ProgressInfo)
	cancel   func() bool
	interval int64

	nodes        atomic.Int64
	lpSolves     atomic.Int64
	propagations atomic.Int64
	incumbents   atomic.Int64
	lastEmit     atomic.Int64 // node total at the last progress emission
	canceled     atomic.Bool

	cNodes, cLPs, cProps, cInc *obs.Counter
	hLP, hNode                 *obs.Histogram
}

// newCtrl returns the control block for a solve, or nil when no
// instrumentation is requested (the fast path).
func newCtrl(opts Options) *ctrl {
	if opts.Trace == nil && opts.Metrics == nil && opts.Progress == nil && opts.Cancel == nil {
		return nil
	}
	k := &ctrl{
		trace:    opts.Trace,
		progress: opts.Progress,
		cancel:   opts.Cancel,
		interval: opts.ProgressInterval,
	}
	if k.interval <= 0 {
		k.interval = 1 << 16
	}
	if opts.Metrics != nil {
		k.cNodes = opts.Metrics.Counter("solver.nodes")
		k.cLPs = opts.Metrics.Counter("solver.lp_solves")
		k.cProps = opts.Metrics.Counter("solver.propagations")
		k.cInc = opts.Metrics.Counter("solver.incumbents")
		k.hLP = opts.Metrics.Histogram("solver.lp_ns")
		k.hNode = opts.Metrics.Histogram("solver.node_ns")
	}
	return k
}

// timingLatencies reports whether per-LP and per-node-batch latencies
// should be measured (they cost a clock read each, so they are tied to
// an attached metrics registry rather than always on).
func (k *ctrl) timingLatencies() bool {
	return k != nil && k.hLP != nil
}

// observeLP records one LP relaxation's wall-clock duration into the
// solver.lp_ns histogram.
func (k *ctrl) observeLP(d time.Duration) {
	k.hLP.Observe(d.Nanoseconds())
}

// observeNodeBatch records the mean per-node latency of a flushed
// batch of nodes into the solver.node_ns histogram. Batches are
// ctrlGranularity nodes (smaller on the final flush), so one
// observation summarizes up to that many nodes — cheap enough for the
// hot loop while still capturing how node cost shifts between plain
// DFS and LP-bounded search.
func (k *ctrl) observeNodeBatch(elapsed time.Duration, nodes int64) {
	if nodes > 0 {
		k.hNode.Observe(elapsed.Nanoseconds() / nodes)
	}
}

// snapshot returns the current cumulative totals.
func (k *ctrl) snapshot() ProgressInfo {
	return ProgressInfo{
		Nodes:        k.nodes.Load(),
		LPSolves:     k.lpSolves.Load(),
		Propagations: k.propagations.Load(),
		Incumbents:   k.incumbents.Load(),
	}
}

// add flushes counter deltas, polls cancellation, and possibly emits a
// progress event. It returns false when the solve should abort
// (Options.Cancel fired, now or earlier).
func (k *ctrl) add(nodes, lps, props int64) bool {
	if nodes != 0 {
		k.nodes.Add(nodes)
		k.cNodes.Add(nodes)
	}
	if lps != 0 {
		k.lpSolves.Add(lps)
		k.cLPs.Add(lps)
	}
	if props != 0 {
		k.propagations.Add(props)
		k.cProps.Add(props)
	}
	if k.canceled.Load() {
		return false
	}
	if k.cancel != nil && k.cancel() {
		k.canceled.Store(true)
		k.trace.Event("solver.canceled", obs.I64("nodes", k.nodes.Load()))
		return false
	}
	k.maybeEmit()
	return true
}

// maybeEmit fires the progress callback and trace event when at least
// interval nodes have passed since the previous emission. The CAS
// elects a single emitter under concurrent workers; callbacks may
// still arrive from any worker goroutine.
func (k *ctrl) maybeEmit() {
	total := k.nodes.Load()
	last := k.lastEmit.Load()
	if total-last < k.interval {
		return
	}
	if !k.lastEmit.CompareAndSwap(last, total) {
		return
	}
	p := k.snapshot()
	if k.progress != nil {
		k.progress(p)
	}
	k.trace.Progress("solver.progress",
		obs.I64("nodes", p.Nodes),
		obs.I64("lp_solves", p.LPSolves),
		obs.I64("propagations", p.Propagations),
		obs.I64("incumbents", p.Incumbents))
}

// incumbent records an incumbent update (live counter + trace event).
func (k *ctrl) incumbent(value, compNodes int64) {
	k.incumbents.Add(1)
	k.cInc.Inc()
	k.trace.Event("solver.incumbent",
		obs.I64("value", value),
		obs.I64("component_nodes", compNodes))
}

// isCanceled reports whether Options.Cancel has fired.
func (k *ctrl) isCanceled() bool {
	return k != nil && k.canceled.Load()
}

// forceCancel latches cancellation directly, bypassing the
// Options.Cancel poll — the injected-cancellation path of the
// fault-injection harness.
func (k *ctrl) forceCancel() {
	if k != nil && !k.canceled.Swap(true) {
		k.trace.Event("solver.canceled", obs.I64("nodes", k.nodes.Load()), obs.Bool("injected", true))
	}
}
