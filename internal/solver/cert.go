package solver

import (
	"fmt"
	"math"
	"math/big"
	"sync"

	"licm/internal/expr"
	"licm/internal/simplex"
)

// This file makes the solver *certifying*: attach a CertRecorder via
// Options.Certify and every proven component of a solve additionally
// produces a machine-checkable optimality (or infeasibility) proof —
// a branch tree over the component's 0/1 space whose every leaf is
// closed by a justification an independent checker can replay in
// exact rational arithmetic, with no search of its own:
//
//	dual    a multiplier vector y whose weak-duality box bound is
//	        below the incumbent (the subtree cannot beat it);
//	intopt  an exact feasible 0/1 point plus a dual bound showing the
//	        subtree cannot beat that point by a whole unit;
//	farkas  a multiplier vector proving the subtree's LP is empty.
//
// The proofs are produced by a dedicated post-solve certification
// pass, not by mirroring the production search: the search prunes via
// propagation, warm starts and adaptive LP control, none of which a
// checker should have to trust. The pass re-derives the branch tree
// using only checker-replayable closures, extracting candidate
// multipliers from internal/simplex's final tableau (SolveWithDuals)
// and validating every closure in math/big.Rat *before* emission —
// so float noise in the LP can never produce a certificate that a
// sound verifier would reject. If exact validation fails, the pass
// branches deeper instead; if it cannot close the tree within its
// node budget (or discovers the solver's claim is simply wrong), the
// component is recorded as skipped with the reason, never with a
// bogus proof.
//
// The recorder is the raw-data layer, mirroring ExplainRecorder:
// package internal/cert serializes runs as licm-cert/1 JSONL and
// implements the independent verifier. That verifier deliberately
// re-implements the leaf checks rather than importing this file —
// two implementations of the soundness-critical arithmetic mean a
// shared bug cannot silently bless a wrong optimum.

// Leaf kinds of a certificate branch tree.
const (
	CertLeafDual   = "dual"
	CertLeafIntopt = "intopt"
	CertLeafFarkas = "farkas"
)

// Component certification statuses.
const (
	CertOptimal    = "optimal"
	CertInfeasible = "infeasible"
	CertSkipped    = "skipped"
)

// defaultCertNodes is the per-component node budget of the
// certification pass when CertRecorder.NodeBudget is zero.
const defaultCertNodes = 200_000

// CertRecorder collects per-solve certificates. Attach one via
// Options.Certify; like ExplainRecorder, a single recorder may span
// several solves (a Bounds call appends a "max" and a "min" run).
// All methods are safe for concurrent use.
type CertRecorder struct {
	mu   sync.Mutex
	runs []CertRun

	// NodeBudget caps the certification pass's branch nodes per
	// component; 0 means defaultCertNodes. Components whose proof
	// does not close within the budget are recorded as skipped.
	NodeBudget int64
}

// CertRun is the certificate of one Maximize/Minimize call. Values
// are in the solver's internal maximization frame: Minimize negates
// the objective before solving and negates the result after, so a
// "min" run's Base/Value/component objectives are the negated ones —
// exactly as ExplainRun records them.
type CertRun struct {
	Sense string

	// Base is the objective constant plus the contribution of
	// variables fixed by presolve — the part of the final value no
	// component accounts for. Value is the run's final objective
	// value; when every component certifies optimal,
	// Base + sum(component values) == Value must hold exactly.
	Base  int64
	Value int64

	Proven bool
	// Err is the terminal error text, empty on success. A run that
	// errored (infeasible, budget starvation) makes no value claim.
	Err string

	Comps []CertComp
}

// CertComp is one component's certificate: the projected matrix the
// claim is about (same projection as ExplainComp, so the same
// fingerprint identifies it), the claim, and its proof tree.
type CertComp struct {
	Index int
	Vars  int
	Cons  []ExplainCon
	Obj   []int64

	// Status is CertOptimal, CertInfeasible or CertSkipped. Skip
	// carries the reason when skipped (unproven solve, budget, or a
	// detected solver/certifier disagreement).
	Status string
	Skip   string

	// Value and Witness are the optimality claim (CertOptimal only):
	// Witness is a feasible 0/1 point achieving Value, and Tree
	// proves no point does better.
	Value   int64
	Witness []int8
	Tree    *CertNode
}

// CertNode is a node of the proof tree. Branch nodes have Var >= 0
// and both children; leaves have Var == -1 and a Leaf kind. Y holds
// one exact multiplier per constraint row (nil means all-zero, the
// compact form of purely combinatorial bounds). Bound is the claimed
// weak-duality box bound of dual/intopt leaves; X the feasible point
// of an intopt leaf.
type CertNode struct {
	Var       int32
	Zero, One *CertNode

	Leaf  string
	Y     []*big.Rat
	X     []int8
	Bound *big.Rat
}

// Runs returns a snapshot of the recorded runs. The snapshot shares
// tree and multiplier storage with the recorder; treat it as
// read-only (the serialization layer does).
func (r *CertRecorder) Runs() []CertRun {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CertRun, len(r.runs))
	copy(out, r.runs)
	for i := range out {
		out[i].Comps = append([]CertComp(nil), out[i].Comps...)
	}
	return out
}

// Reset drops all recorded runs so one recorder can be reused.
func (r *CertRecorder) Reset() {
	r.mu.Lock()
	r.runs = r.runs[:0]
	r.mu.Unlock()
}

// start opens a new run and returns its index.
func (r *CertRecorder) start(sense string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs = append(r.runs, CertRun{Sense: sense})
	return len(r.runs) - 1
}

// setBase records the run's non-component objective part.
func (r *CertRecorder) setBase(run int, base int64) {
	r.mu.Lock()
	r.runs[run].Base = base
	r.mu.Unlock()
}

// certify runs the certification pass over every solved component and
// stores the results. comps carries the projected matrices (the same
// buildExplainComps output the explain layer fingerprints), results
// the search outcomes, aligned by index.
func (r *CertRecorder) certify(run int, comps []ExplainComp, results []compResult) {
	budget := r.NodeBudget
	if budget <= 0 {
		budget = defaultCertNodes
	}
	out := make([]CertComp, len(comps))
	for i := range comps {
		out[i] = certifyComp(&comps[i], &results[i], budget)
	}
	r.mu.Lock()
	r.runs[run].Comps = out
	r.mu.Unlock()
}

// finish closes the run with the solve's final value and error.
func (r *CertRecorder) finish(run int, res *Result, err error) {
	r.mu.Lock()
	rr := &r.runs[run]
	rr.Proven = err == nil && res.Proven
	rr.Value = res.Value
	if err != nil {
		rr.Err = err.Error()
	}
	r.mu.Unlock()
}

// certifyComp produces one component's certificate.
func certifyComp(ec *ExplainComp, cr *compResult, budget int64) CertComp {
	cc := CertComp{
		Index: ec.Index,
		Vars:  ec.Vars,
		Cons:  ec.Cons,
		Obj:   ec.Obj,
	}
	if !cr.proven {
		cc.Status = CertSkipped
		cc.Skip = "solve is unproven (budget or cancellation): no optimality claim to certify"
		return cc
	}
	ct := &certifier{
		n:      ec.Vars,
		cons:   ec.Cons,
		obj:    ec.Obj,
		dec:    make([]int8, ec.Vars),
		budget: budget,
	}
	for i := range ct.dec {
		ct.dec[i] = -1
	}
	if !cr.feasible {
		cc.Status = CertInfeasible
		cc.Tree = ct.node()
		if ct.failed != nil {
			return skipFor(cc, ct.failed)
		}
		return cc
	}
	// Optimality claim: validate the witness first — it is the
	// certificate's positive half, and a malformed one means the
	// search recorded something unusable.
	if len(cr.assign) != ec.Vars {
		return skipFor(cc, fmt.Errorf("witness has %d entries, component has %d variables", len(cr.assign), ec.Vars))
	}
	for _, v := range cr.assign {
		if v != 0 && v != 1 {
			return skipFor(cc, fmt.Errorf("witness is not a complete 0/1 point"))
		}
	}
	if val, feas := pointCheck(ec, cr.assign); !feas {
		return skipFor(cc, fmt.Errorf("recorded witness violates the component constraints"))
	} else if val != cr.best {
		return skipFor(cc, fmt.Errorf("recorded witness has value %d, solver claimed %d", val, cr.best))
	}
	cc.Status = CertOptimal
	cc.Value = cr.best
	cc.Witness = append([]int8(nil), cr.assign...)
	ct.vstar = cr.best
	ct.hasVstar = true
	cc.Tree = ct.node()
	if ct.failed != nil {
		return skipFor(cc, ct.failed)
	}
	return cc
}

// skipFor downgrades a certificate to skipped, keeping the matrix so
// the record still identifies which component could not be certified.
func skipFor(cc CertComp, err error) CertComp {
	cc.Status = CertSkipped
	cc.Skip = err.Error()
	cc.Value = 0
	cc.Witness = nil
	cc.Tree = nil
	return cc
}

// pointCheck evaluates a complete 0/1 point against a component:
// its objective value and exact feasibility. Pure int64 arithmetic.
func pointCheck(ec *ExplainComp, x []int8) (val int64, feasible bool) {
	for j, c := range ec.Obj {
		if x[j] == 1 {
			val += c
		}
	}
	for i := range ec.Cons {
		con := &ec.Cons[i]
		var act int64
		for k, v := range con.Vars {
			if x[v] == 1 {
				act += con.Coef[k]
			}
		}
		switch con.Op {
		case expr.LE:
			if act > con.RHS {
				return val, false
			}
		case expr.GE:
			if act < con.RHS {
				return val, false
			}
		default:
			if act != con.RHS {
				return val, false
			}
		}
	}
	return val, true
}

// errCertBudget reports certification-node exhaustion.
var errCertBudget = fmt.Errorf("certification node budget exhausted before the proof tree closed")

// certifier rebuilds a checker-friendly branch tree for one component
// claim. dec is the current decision prefix (-1 free); all closure
// tests are exact.
type certifier struct {
	n    int
	cons []ExplainCon
	obj  []int64

	vstar    int64
	hasVstar bool

	dec    []int8
	budget int64
	failed error
}

// node certifies the subtree under the current decision prefix.
func (ct *certifier) node() *CertNode {
	if ct.failed != nil {
		return nil
	}
	if ct.budget <= 0 {
		ct.failed = errCertBudget
		return nil
	}
	ct.budget--
	// Combinatorial closure: the box bound of the objective alone
	// cannot beat the incumbent. Emitted as a dual leaf with the
	// all-zero multiplier vector, whose box bound is exactly this.
	if ct.hasVstar {
		if cb := ct.combBound(); cb <= ct.vstar {
			return &CertNode{Var: -1, Leaf: CertLeafDual, Bound: new(big.Rat).SetInt64(cb)}
		}
	}
	// A single interval-violated row refutes the whole box: a Farkas
	// leaf with the row's unit multiplier.
	if i, dir, ok := ct.findViolated(); ok {
		return ct.unitFarkas(i, dir)
	}
	// Forced fix (one-step propagation): some free variable's wrong
	// value interval-violates a row on its own. Branch on it; the
	// wrong side closes with that row's unit Farkas leaf, the right
	// side continues. This keeps proof trees near-linear on the
	// lineage chains propagation handles in the production search.
	if v, val, row, dir, ok := ct.findForced(); ok {
		nd := &CertNode{Var: v}
		ct.dec[v] = 1 - val
		opp := ct.unitFarkas(row, dir)
		ct.dec[v] = val
		same := ct.node()
		ct.dec[v] = -1
		if val == 0 {
			nd.Zero, nd.One = same, opp
		} else {
			nd.Zero, nd.One = opp, same
		}
		if ct.failed != nil {
			return nil
		}
		return nd
	}
	if v := ct.firstFree(); v == -1 {
		// Fully decided with no violated row: an exact feasible point.
		val := ct.decidedValue()
		if !ct.hasVstar {
			ct.failed = fmt.Errorf("solver claimed infeasible, but certification found a feasible point")
			return nil
		}
		if val > ct.vstar {
			ct.failed = fmt.Errorf("certification found a point of value %d, better than the claimed optimum %d", val, ct.vstar)
			return nil
		}
		return &CertNode{
			Var:   -1,
			Leaf:  CertLeafIntopt,
			X:     append([]int8(nil), ct.dec...),
			Bound: new(big.Rat).SetInt64(val),
		}
	}
	leaf, hint := ct.tryLP()
	if ct.failed != nil {
		return nil
	}
	if leaf != nil {
		return leaf
	}
	v := hint
	if v < 0 {
		v = ct.pickBranch()
	}
	nd := &CertNode{Var: v}
	ct.dec[v] = 0
	nd.Zero = ct.node()
	ct.dec[v] = 1
	nd.One = ct.node()
	ct.dec[v] = -1
	if ct.failed != nil {
		return nil
	}
	return nd
}

// combBound is the objective's exact box bound under dec: decided
// contributions plus every positive free coefficient.
func (ct *certifier) combBound() int64 {
	var b int64
	for j, c := range ct.obj {
		switch {
		case ct.dec[j] == 1:
			b += c
		case ct.dec[j] == -1 && c > 0:
			b += c
		}
	}
	return b
}

// decidedValue is the objective value of the (fully decided) prefix.
func (ct *certifier) decidedValue() int64 {
	var v int64
	for j, c := range ct.obj {
		if ct.dec[j] == 1 {
			v += c
		}
	}
	return v
}

// rowRange returns the exact activity interval of row i over the box.
func (ct *certifier) rowRange(i int) (lo, hi int64) {
	con := &ct.cons[i]
	for k, v := range con.Vars {
		c := con.Coef[k]
		switch ct.dec[v] {
		case 1:
			lo += c
			hi += c
		case 0:
			// contributes nothing
		default:
			if c > 0 {
				hi += c
			} else {
				lo += c
			}
		}
	}
	return lo, hi
}

// findViolated looks for a row no point in the box can satisfy. dir
// is +1 when the row's LE side is violated (activity always above an
// upper bound), -1 for the GE side.
func (ct *certifier) findViolated() (row int, dir int, ok bool) {
	for i := range ct.cons {
		lo, hi := ct.rowRange(i)
		op, rhs := ct.cons[i].Op, ct.cons[i].RHS
		if (op == expr.LE || op == expr.EQ) && lo > rhs {
			return i, +1, true
		}
		if (op == expr.GE || op == expr.EQ) && hi < rhs {
			return i, -1, true
		}
	}
	return 0, 0, false
}

// findForced looks for a free variable one of whose values
// single-handedly interval-violates a row; the forced value is the
// other one. dir is the violation direction of the wrong value, as in
// findViolated.
func (ct *certifier) findForced() (v int32, val int8, row int, dir int, ok bool) {
	for i := range ct.cons {
		lo, hi := ct.rowRange(i)
		con := &ct.cons[i]
		upper := con.Op == expr.LE || con.Op == expr.EQ
		lower := con.Op == expr.GE || con.Op == expr.EQ
		for k, u := range con.Vars {
			if ct.dec[u] != -1 {
				continue
			}
			c := con.Coef[k]
			if upper {
				// lo already counts negative c (free var at 1); setting
				// the var to its activity-raising value lifts lo by |c|.
				if c > 0 && lo+c > con.RHS {
					return u, 0, i, +1, true
				}
				if c < 0 && lo-c > con.RHS {
					return u, 1, i, +1, true
				}
			}
			if lower {
				if c > 0 && hi-c < con.RHS {
					return u, 1, i, -1, true
				}
				if c < 0 && hi+c < con.RHS {
					return u, 0, i, -1, true
				}
			}
		}
	}
	return 0, 0, 0, 0, false
}

// unitFarkas builds the Farkas leaf of a single interval-violated
// row: the unit multiplier in the row's violated direction. Exact by
// construction — rowRange already proved min over the box of
// dir*(a_i x) exceeds dir*b_i.
func (ct *certifier) unitFarkas(row, dir int) *CertNode {
	y := make([]*big.Rat, len(ct.cons))
	y[row] = new(big.Rat).SetInt64(int64(dir))
	return &CertNode{Var: -1, Leaf: CertLeafFarkas, Y: y}
}

// firstFree returns a free variable id, or -1 when fully decided.
func (ct *certifier) firstFree() int32 {
	for j, d := range ct.dec {
		if d == -1 {
			return int32(j)
		}
	}
	return -1
}

// pickBranch chooses a deterministic branching variable: the free
// variable with the largest absolute objective weight (ties to the
// lowest id), falling back to the first free one.
func (ct *certifier) pickBranch() int32 {
	best, bestAbs := int32(-1), int64(-1)
	for j, d := range ct.dec {
		if d != -1 {
			continue
		}
		a := ct.obj[j]
		if a < 0 {
			a = -a
		}
		if a > bestAbs {
			best, bestAbs = int32(j), a
		}
	}
	return best
}

// certLPCap bounds the LP size the certification pass will build; at
// this scale the production solver fell back to DFS too, and the
// combinatorial closures must carry the proof.
const certLPCap = 700

// tryLP solves the node's LP relaxation (decided variables pinned via
// bounds) and attempts a leaf from the extracted multipliers, exact-
// checking every candidate before emitting it. When no sound leaf
// materializes it returns a branching hint from the LP point (the
// most fractional column), or -1.
func (ct *certifier) tryLP() (leaf *CertNode, hint int32) {
	hint = -1
	if ct.n > certLPCap || len(ct.cons) > 2*certLPCap {
		return nil, -1
	}
	lp := simplex.New(ct.n)
	for j := 0; j < ct.n; j++ {
		if ct.hasVstar && ct.obj[j] != 0 {
			lp.SetObjective(j, float64(ct.obj[j]))
		}
		if d := ct.dec[j]; d >= 0 {
			lp.SetBounds(j, float64(d), float64(d))
		}
	}
	for i := range ct.cons {
		con := &ct.cons[i]
		entries := make([]simplex.Entry, len(con.Vars))
		for k, v := range con.Vars {
			entries[k] = simplex.Entry{Col: int(v), Coef: float64(con.Coef[k])}
		}
		lp.AddRow(entries, simplex.Op(con.Op), float64(con.RHS))
	}
	sol, st, di := lp.SolveWithDuals()
	switch st {
	case simplex.Infeasible:
		// The phase-1 frame's sign convention relative to the row
		// frame is not guaranteed; try both orientations and keep
		// whichever passes the exact check.
		for _, sign := range [2]int64{1, -1} {
			y := ct.ratify(di.Farkas, sign)
			if y != nil && ct.farkasValid(y) {
				return &CertNode{Var: -1, Leaf: CertLeafFarkas, Y: y}, -1
			}
		}
		return nil, -1
	case simplex.Optimal:
		if !ct.hasVstar {
			// Infeasibility certificate wanted but this box has LP
			// points: only deeper Farkas leaves can close it.
			return nil, ct.fracHint(sol.X)
		}
		y := ct.ratify(di.Duals, 1)
		if y == nil {
			return nil, ct.fracHint(sol.X)
		}
		u := ct.dualBound(y)
		if x, ok := roundIntegral(sol.X, ct.dec); ok {
			if val, feas := ct.pointValue(x); feas {
				if val > ct.vstar {
					ct.failed = fmt.Errorf("certification found a point of value %d, better than the claimed optimum %d", val, ct.vstar)
					return nil, -1
				}
				if u.Cmp(new(big.Rat).SetInt64(val+1)) < 0 {
					return &CertNode{Var: -1, Leaf: CertLeafIntopt, Y: y, X: x, Bound: u}, -1
				}
			}
		}
		if u.Cmp(new(big.Rat).SetInt64(ct.vstar+1)) < 0 {
			return &CertNode{Var: -1, Leaf: CertLeafDual, Y: y, Bound: u}, -1
		}
		return nil, ct.fracHint(sol.X)
	default:
		return nil, -1
	}
}

// ratify converts a float multiplier vector into exact rationals,
// scaled by sign and clipped to the sign each row's operator admits
// (clipping can only weaken a valid vector, never unsound-en it).
// Returns nil on any non-finite entry.
func (ct *certifier) ratify(y []float64, sign int64) []*big.Rat {
	if len(y) != len(ct.cons) {
		return nil
	}
	out := make([]*big.Rat, len(y))
	s := new(big.Rat).SetInt64(sign)
	for i, f := range y {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		r := new(big.Rat).SetFloat64(f)
		r.Mul(r, s)
		switch ct.cons[i].Op {
		case expr.LE:
			if r.Sign() < 0 {
				r.SetInt64(0)
			}
		case expr.GE:
			if r.Sign() > 0 {
				r.SetInt64(0)
			}
		}
		if r.Sign() != 0 {
			out[i] = r
		}
	}
	return out
}

// dualBound computes the exact weak-duality box bound of a
// sign-correct multiplier vector under the current decisions:
// sum_i y_i b_i + sum_j max over the box of (c_j - sum_i y_i a_ij) x_j.
func (ct *certifier) dualBound(y []*big.Rat) *big.Rat {
	u := new(big.Rat)
	red := make([]*big.Rat, ct.n)
	for j, c := range ct.obj {
		if c != 0 {
			red[j] = new(big.Rat).SetInt64(c)
		}
	}
	tmp := new(big.Rat)
	for i, yi := range y {
		if yi == nil {
			continue
		}
		con := &ct.cons[i]
		u.Add(u, tmp.Mul(yi, new(big.Rat).SetInt64(con.RHS)))
		for k, v := range con.Vars {
			if red[v] == nil {
				red[v] = new(big.Rat)
			}
			red[v].Sub(red[v], new(big.Rat).Mul(yi, new(big.Rat).SetInt64(con.Coef[k])))
		}
	}
	for j, r := range red {
		if r == nil {
			continue
		}
		switch ct.dec[j] {
		case 1:
			u.Add(u, r)
		case 0:
			// x_j = 0 contributes nothing
		default:
			if r.Sign() > 0 {
				u.Add(u, r)
			}
		}
	}
	return u
}

// farkasValid exact-checks a Farkas candidate: min over the box of
// (sum_i y_i a_i)·x must strictly exceed sum_i y_i b_i.
func (ct *certifier) farkasValid(y []*big.Rat) bool {
	agg := make([]*big.Rat, ct.n)
	e := new(big.Rat)
	tmp := new(big.Rat)
	for i, yi := range y {
		if yi == nil {
			continue
		}
		con := &ct.cons[i]
		e.Add(e, tmp.Mul(yi, new(big.Rat).SetInt64(con.RHS)))
		for k, v := range con.Vars {
			if agg[v] == nil {
				agg[v] = new(big.Rat)
			}
			agg[v].Add(agg[v], new(big.Rat).Mul(yi, new(big.Rat).SetInt64(con.Coef[k])))
		}
	}
	minAct := new(big.Rat)
	for j, a := range agg {
		if a == nil {
			continue
		}
		switch ct.dec[j] {
		case 1:
			minAct.Add(minAct, a)
		case 0:
			// contributes nothing
		default:
			if a.Sign() < 0 {
				minAct.Add(minAct, a)
			}
		}
	}
	return minAct.Cmp(e) > 0
}

// pointValue evaluates a complete 0/1 point exactly against the
// component (int64 arithmetic).
func (ct *certifier) pointValue(x []int8) (val int64, feasible bool) {
	ec := ExplainComp{Vars: ct.n, Cons: ct.cons, Obj: ct.obj}
	return pointCheck(&ec, x)
}

// fracHint returns the most fractional LP column as a branching hint,
// or -1 when the point is (near-)integral.
func (ct *certifier) fracHint(x []float64) int32 {
	best, bestDist := -1, 1e-6
	for j, v := range x {
		if f := math.Abs(v - math.Round(v)); f > bestDist {
			best, bestDist = j, f
		}
	}
	return int32(best)
}

// roundIntegral rounds a near-integral LP point to an exact 0/1
// vector consistent with the decisions; ok is false when any entry is
// meaningfully fractional or out of the box.
func roundIntegral(x []float64, dec []int8) ([]int8, bool) {
	out := make([]int8, len(x))
	for j, v := range x {
		r := math.Round(v)
		if math.Abs(v-r) > 1e-6 || !exactlyZeroOrOne(r) {
			return nil, false
		}
		b := int8(r)
		if dec[j] >= 0 && dec[j] != b {
			return nil, false
		}
		out[j] = b
	}
	return out, true
}
