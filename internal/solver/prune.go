package solver

import "licm/internal/expr"

// PruneResult describes the outcome of reachability pruning.
type PruneResult struct {
	// KeptConstraints are indices into the original constraint slice,
	// in their original order.
	KeptConstraints []int
	// Reachable[v] reports whether variable v is connected to the
	// objective through kept constraints.
	Reachable []bool
	// NumReachable is the number of reachable variables.
	NumReachable int
}

// Prune computes the subset of constraints and variables reachable
// from the variables of the objective, per the paper's Section V
// ("Pruning"): variables and constraints not reachable from the
// objective cannot influence the optimum and can be dropped to shrink
// the instance handed to the optimizer.
//
// The paper performs a single backward pass, relying on lineage
// variables being created after the constraints that define their
// inputs. Base constraints can interlink in either direction, so this
// implementation iterates passes to a fixpoint; on LICM-generated
// stores the first backward pass already does almost all of the work.
func Prune(numVars int, cons []expr.Constraint, objective expr.Lin) PruneResult {
	reach := make([]bool, numVars)
	n := 0
	for _, t := range objective.Terms() {
		if !reach[t.Var] {
			reach[t.Var] = true
			n++
		}
	}
	kept := make([]bool, len(cons))
	for {
		changed := false
		// Backward pass: lineage constraints appear after the
		// constraints over their input variables, so scanning from the
		// last constraint to the first reaches the base data in one
		// sweep.
		for i := len(cons) - 1; i >= 0; i-- {
			if kept[i] {
				continue
			}
			hit := false
			for _, t := range cons[i].Lin.Terms() {
				if reach[t.Var] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			kept[i] = true
			changed = true
			for _, t := range cons[i].Lin.Terms() {
				if !reach[t.Var] {
					reach[t.Var] = true
					n++
				}
			}
		}
		if !changed {
			break
		}
	}
	res := PruneResult{Reachable: reach, NumReachable: n}
	for i, k := range kept {
		if k {
			res.KeptConstraints = append(res.KeptConstraints, i)
		}
	}
	return res
}
