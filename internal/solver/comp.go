package solver

import (
	"math"
	"time"

	"licm/internal/faultinject"
	"licm/internal/simplex"
)

// comp is one connected component of the variable/constraint graph,
// with variables renumbered to 0..n-1. It is always solved as a
// maximization.
type comp struct {
	n       int
	cons    []lcon
	obj     []int64 // objective coefficient per local variable
	derived []bool  // nil, or per-variable lineage marker
	prop    *propagator
	opts    Options

	// ci/board identify this component's slot on the solve's
	// SnapshotBoard; board is nil (and publishing a no-op) for
	// heuristic dives and witness completion.
	ci    int
	board *SnapshotBoard

	order []int32 // branching order over local variables

	best         int64
	hasIncumbent bool
	assign       []int8 // best complete assignment
	openBound    int64  // max bound among subtrees abandoned by budget
	hasOpen      bool
	exhausted    bool
	stopAtFirst  bool // heuristic dive: stop at the first feasible leaf
	feasOnly     bool // all-zero objective: skip bound bookkeeping
	done         bool

	budget   *int64 // shared node budget; nil means unlimited
	nodes    int64
	lpSolves int64
	lpNs     int64 // wall time inside LP relaxation solves (explain/metrics only)

	// Live instrumentation (nil ctrl = off, the fast path). flushed*
	// remember what has already been pushed into the shared atomics so
	// flushCtrl sends exact deltas; aborted latches a cancellation so
	// the search unwinds without re-polling.
	ctrl         *ctrl
	flushedNodes int64
	flushedLPs   int64
	flushedProps int64
	aborted      bool
	// lastBatch is the wall-clock time of the previous flush, set only
	// when the ctrl records latency histograms (solver.node_ns).
	lastBatch time.Time

	// Adaptive LP control: when relaxation solves stop pruning, the
	// search falls back to plain DFS (the LP is rebuilt from scratch
	// at every node, so a non-pruning relaxation is pure overhead).
	lpPruned   int64
	lpJudged   int64 // LP solves made while an incumbent existed
	lpDisabled bool
	rootLP     int64 // root relaxation bound (valid upper bound)
	hasRootLP  bool
	valueHint  []int8 // per-variable preferred branch value from the root LP

	// Incrementally-maintained objective state: cur is the value of
	// the variables fixed to 1, optExtra the sum of positive
	// coefficients of still-free variables. The node bound
	// cur+optExtra is then O(1) instead of an O(n) rescan.
	cur      int64
	optExtra int64
}

// initObjTrack initializes cur/optExtra from the current domains.
func (c *comp) initObjTrack() {
	c.cur, c.optExtra = 0, 0
	for v := 0; v < c.n; v++ {
		switch c.prop.dom[v] {
		case 1:
			c.cur += c.obj[v]
		case -1:
			if c.obj[v] > 0 {
				c.optExtra += c.obj[v]
			}
		}
	}
}

// absorb accounts all variables fixed on the trail since `from`.
func (c *comp) absorb(from int) {
	for _, v := range c.prop.trail[from:] {
		o := c.obj[v]
		if o > 0 {
			c.optExtra -= o
		}
		if c.prop.dom[v] == 1 {
			c.cur += o
		}
	}
}

// fixT is prop.fix plus objective tracking; it returns the pre-fix
// trail mark for undoT. Tracking happens even on conflict, since the
// trail keeps the partial fixes until undoT reverses them.
func (c *comp) fixT(v int32, val int8) (bool, int) {
	m := c.prop.mark()
	ok := c.prop.fix(v, val)
	c.absorb(m)
	return ok, m
}

// undoT reverses objective tracking and the propagator trail.
func (c *comp) undoT(mark int) {
	trail := c.prop.trail
	for i := len(trail) - 1; i >= mark; i-- {
		v := trail[i]
		o := c.obj[v]
		if c.prop.dom[v] == 1 {
			c.cur -= o
		}
		if o > 0 {
			c.optExtra += o
		}
	}
	c.prop.undo(mark)
}

// compResult is the outcome of solving one component.
type compResult struct {
	feasible bool
	best     int64
	bound    int64
	proven   bool
	assign   []int8
	nodes    int64
	lpSolves int64
	lpNs     int64
	props    int64
}

// flushCtrl pushes counter deltas since the previous flush into the
// shared ctrl and polls cancellation; it returns false (and latches
// aborted) when the solve should stop. It is the solver's batch
// boundary, so the fault-injection hook lives here: an armed plan can
// panic or latch cancellation at an exact batch index.
func (c *comp) flushCtrl() bool {
	if faultinject.Enabled() {
		switch faultinject.Check(faultinject.CtrlBatch) {
		case faultinject.Panic:
			panic(&faultinject.Injected{Site: faultinject.CtrlBatch, Hit: faultinject.Hits(faultinject.CtrlBatch) - 1})
		case faultinject.Cancel:
			c.ctrl.forceCancel()
		}
	}
	dn := c.nodes - c.flushedNodes
	dl := c.lpSolves - c.flushedLPs
	dp := c.prop.nAssigns - c.flushedProps
	c.flushedNodes, c.flushedLPs, c.flushedProps = c.nodes, c.lpSolves, c.prop.nAssigns
	if c.ctrl.timingLatencies() {
		now := time.Now()
		if !c.lastBatch.IsZero() {
			c.ctrl.observeNodeBatch(now.Sub(c.lastBatch), dn)
		}
		c.lastBatch = now
	}
	if !c.ctrl.add(dn, dl, dp) {
		c.aborted = true
		return false
	}
	return true
}

// solveComp maximizes c.obj over the component. The propagator's
// domains may carry fixings from global presolve. ci is the
// component's index on the solve's SnapshotBoard (ignored when
// opts.Snapshots is nil).
func solveComp(ci, n int, cons []lcon, obj []int64, derived []bool, prop *propagator, opts Options, budget *int64, kc *ctrl) compResult {
	c := &comp{n: n, cons: cons, obj: obj, derived: derived, prop: prop, opts: opts, budget: budget, ctrl: kc,
		ci: ci, board: opts.Snapshots}
	if kc.timingLatencies() {
		c.lastBatch = time.Now()
	}
	c.feasOnly = allZero(obj)
	if c.feasOnly {
		c.stopAtFirst = true
	}
	if !prop.drain() {
		if c.ctrl != nil {
			c.flushCtrl()
		}
		r := compResult{feasible: false, proven: true, props: prop.nAssigns}
		c.board.finish(c.ci, r)
		return r
	}
	c.buildOrder()
	c.initObjTrack()
	nFree := prop.numFree()
	fitsLP := nFree <= opts.MaxLPVars && (opts.MaxLPRows <= 0 || len(cons) <= opts.MaxLPRows)
	useLP := opts.UseLP && nFree > opts.DFSThreshold && fitsLP
	if budget == nil && opts.OversizeNodes > 0 && nFree > opts.DFSThreshold {
		// No caller budget on a non-trivial component: apply the
		// safety budget so the solve stays anytime (the result is
		// marked unproven if it trips). Without this, a component
		// whose LP bound stops pruning could search forever.
		b := opts.OversizeNodes
		c.budget = &b
	}
	if useLP {
		// Solve the root relaxation once: its value caps the final
		// reported bound, and its rounded solution steers the seed
		// dive toward a good first incumbent (LP bounds can only
		// prune once an incumbent exists, so solving relaxations
		// during an unguided initial plunge is pure overhead). The
		// relaxation covers the free part only, so root-fixed
		// contributions (c.cur) are folded in; a non-finite objective
		// (numerical corruption, exercised by fault injection) is
		// discarded rather than trusted as a bound.
		var hint []int8
		if sol, status, cols := c.solveRelaxation(c.cur); status == simplex.Optimal && isFinite(sol.Obj) {
			c.rootLP, c.hasRootLP = int64(math.Floor(sol.Obj+1e-6)), true
			c.board.refineUB(c.ci, c.rootLP)
			hint = make([]int8, n)
			for i := range hint {
				hint[i] = -1
			}
			for col, v := range cols {
				if sol.X[col] >= 0.5 {
					hint[v] = 1
				} else {
					hint[v] = 0
				}
			}
		}
		diveBudget := int64(64*n + 2048)
		d := &comp{n: n, cons: cons, obj: obj, derived: derived, prop: prop, opts: opts,
			order: c.order, budget: &diveBudget, stopAtFirst: true, valueHint: hint}
		d.initObjTrack()
		d.dfsNode(0)
		if d.hasIncumbent {
			c.best, c.hasIncumbent, c.assign = d.best, true, d.assign
			c.publishIncumbent()
		}
		c.nodes += d.nodes
		c.valueHint = hint
		if c.hasIncumbent && c.hasRootLP && c.rootLP <= c.best {
			// The seed already matches the relaxation bound: optimal.
			c.lpPruned++
		} else {
			c.lpNode(0)
		}
	} else {
		c.dfsNode(0)
	}
	if c.exhausted && !c.hasIncumbent {
		// The budget ran out before any feasible leaf was reached. Run
		// a cheap heuristic dive (first feasible leaf, bounded
		// backtracking) so an unproven value can still be reported.
		diveBudget := int64(256*n + 4096)
		d := &comp{n: n, cons: cons, obj: obj, derived: derived, prop: prop, opts: opts,
			order: c.order, budget: &diveBudget, stopAtFirst: true}
		d.initObjTrack()
		d.dfsNode(0)
		if d.hasIncumbent {
			c.best, c.hasIncumbent, c.assign = d.best, true, d.assign
			c.publishIncumbent()
		}
		c.nodes += d.nodes
	}
	if c.ctrl != nil {
		// Final flush: exact totals (including heuristic-dive nodes,
		// which bypass the periodic flush) so live counters end equal
		// to the reported Stats.
		c.flushCtrl()
	}
	res := compResult{
		feasible: c.hasIncumbent,
		best:     c.best,
		assign:   c.assign,
		nodes:    c.nodes,
		lpSolves: c.lpSolves,
		lpNs:     c.lpNs,
		props:    c.prop.nAssigns,
	}
	res.proven = !c.exhausted
	res.bound = c.best
	if c.hasOpen && c.openBound > res.bound {
		res.bound = c.openBound
	}
	if !c.hasIncumbent && c.hasOpen {
		// Budget ran out before any feasible point was found: the only
		// valid bound is the optimistic one.
		res.best = 0
		res.bound = c.openBound
	}
	if c.hasRootLP && c.rootLP < res.bound && res.bound > res.best {
		// The root relaxation is a proven upper bound; use it when it
		// beats the combinatorial bound of abandoned subtrees.
		res.bound = c.rootLP
		if res.bound < res.best {
			res.bound = res.best
		}
	}
	c.board.finish(c.ci, res)
	return res
}

// publishIncumbent mirrors the component's current best feasible value
// onto the snapshot board (a no-op when no board is attached).
func (c *comp) publishIncumbent() {
	if c.board != nil && c.hasIncumbent {
		c.board.observeIncumbent(c.ci, c.best)
	}
}

// isFinite reports whether x is a usable objective value: NaN and ±Inf
// must never be floored into an int64 bound (the conversion is
// platform-defined and can silently fabricate a pruning bound).
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// buildOrder sorts branching candidates: base variables before
// derived lineage variables (whose values propagation determines once
// the base is fixed), then by |objective coefficient| descending.
func (c *comp) buildOrder() {
	c.order = make([]int32, c.n)
	for i := range c.order {
		c.order[i] = int32(i)
	}
	abs := func(x int64) int64 {
		if x < 0 {
			return -x
		}
		return x
	}
	const baseBoost = int64(1) << 40
	seed := c.opts.OrderSeed
	quickSortByKeyDesc(c.order, func(v int32) int64 {
		k := abs(c.obj[v])
		if seed != 0 {
			// Deterministic perturbation for restart-after-fault: shift
			// the true key up and fill the low byte with a hash of
			// (seed, v), so equal-coefficient ties — the common case —
			// resolve differently per seed while the coefficient
			// ordering itself stays intact and well below baseBoost.
			k = k<<8 | orderJitter(seed, v)
		}
		if c.derived == nil || !c.derived[v] {
			k += baseBoost
		}
		return k
	})
}

// orderJitter hashes (seed, v) to a byte, the tie-break perturbation
// used by buildOrder when Options.OrderSeed is set.
func orderJitter(seed int64, v int32) int64 {
	x := uint64(seed) ^ (uint64(uint32(v))+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x & 0xff)
}

// quickSortByKeyDesc sorts ids by key(id) descending, breaking ties by
// id ascending, using a simple recursive quicksort.
func quickSortByKeyDesc(ids []int32, key func(int32) int64) {
	if len(ids) < 2 {
		return
	}
	pivot := ids[len(ids)/2]
	pk := key(pivot)
	less := func(a int32) bool {
		ka := key(a)
		return ka > pk || (ka == pk && a < pivot)
	}
	i, j := 0, len(ids)-1
	for i <= j {
		for less(ids[i]) {
			i++
		}
		for key(ids[j]) < pk || (key(ids[j]) == pk && ids[j] > pivot) {
			j--
		}
		if i <= j {
			ids[i], ids[j] = ids[j], ids[i]
			i++
			j--
		}
	}
	quickSortByKeyDesc(ids[:j+1], key)
	quickSortByKeyDesc(ids[i:], key)
}

// curAndOptimistic returns the objective value of current fixings and
// the optimistic completion bound (fixed value plus all positive free
// coefficients), from the incrementally-maintained state.
func (c *comp) curAndOptimistic() (cur, opt int64) {
	return c.cur, c.cur + c.optExtra
}

// spendNode consumes one unit of budget; it returns false when the
// budget is exhausted or the solve has been canceled.
func (c *comp) spendNode() bool {
	c.nodes++
	if c.ctrl != nil {
		if c.aborted {
			return false
		}
		if c.nodes-c.flushedNodes >= ctrlGranularity && !c.flushCtrl() {
			return false
		}
	}
	if c.budget == nil {
		return true
	}
	if *c.budget <= 0 {
		return false
	}
	*c.budget--
	return true
}

// abandon records the optimistic bound of a subtree the budget forced
// us to skip.
func (c *comp) abandon(bound int64) {
	c.exhausted = true
	if !c.hasOpen || bound > c.openBound {
		c.openBound = bound
		c.hasOpen = true
	}
}

// recordIncumbent captures the current complete assignment.
func (c *comp) recordIncumbent(val int64) {
	if c.stopAtFirst {
		c.done = true
	}
	if c.hasIncumbent && val <= c.best {
		return
	}
	if c.ctrl != nil {
		c.ctrl.incumbent(val, c.nodes)
	}
	c.best = val
	c.hasIncumbent = true
	if c.assign == nil {
		c.assign = make([]int8, c.n)
	}
	copy(c.assign, c.prop.dom)
	c.publishIncumbent()
}

// preferredValue picks the branch value to try first: follow the
// objective where it has an opinion; otherwise prefer 1, which is the
// propagation-friendly direction for LICM constraint families
// ("at least one of", bijection rows, AND-support for lineage) and
// avoids the pathological all-zeros dive on lineage variables.
func (c *comp) preferredValue(v int32) int8 {
	if c.valueHint != nil {
		if h := c.valueHint[v]; h >= 0 {
			return h
		}
	}
	if c.obj[v] < 0 {
		return 0
	}
	return 1
}

// nextFree returns the first unfixed variable in branching order, or
// -1 when the assignment is complete.
func (c *comp) nextFree() int32 {
	v, _ := c.nextFreeFrom(0)
	return v
}

// nextFreeFrom scans the branching order starting at position pos and
// returns the first unfixed variable and its position (or -1, len).
// Threading the position through the DFS makes the scan amortized
// O(1) along a dive instead of O(n) per node.
func (c *comp) nextFreeFrom(pos int) (int32, int) {
	for ; pos < len(c.order); pos++ {
		if v := c.order[pos]; c.prop.dom[v] == -1 {
			return v, pos
		}
	}
	return -1, pos
}

// allZero reports whether every objective coefficient is zero.
func allZero(obj []int64) bool {
	for _, o := range obj {
		if o != 0 {
			return false
		}
	}
	return true
}

// dfsNode explores the current node with propagation-based DFS.
// Precondition: the propagator is in a consistent (non-conflicting)
// state.
func (c *comp) dfsNode(pos int) {
	if c.done {
		return
	}
	var cur, opt int64
	if !c.feasOnly {
		cur, opt = c.curAndOptimistic()
		if c.hasIncumbent && opt <= c.best {
			return
		}
	}
	if !c.spendNode() {
		c.abandon(opt)
		return
	}
	v, pos := c.nextFreeFrom(pos)
	if v == -1 {
		c.recordIncumbent(cur)
		return
	}
	first := c.preferredValue(v)
	for _, val := range [2]int8{first, 1 - first} {
		ok, m := c.fixT(v, val)
		if ok {
			c.dfsNode(pos)
		}
		c.undoT(m)
	}
}

// lpNode explores the current node using an LP relaxation bound,
// falling back to plain DFS once few variables remain free.
func (c *comp) lpNode(pos int) {
	if c.done {
		return
	}
	if c.lpDisabled {
		c.dfsNode(pos)
		return
	}
	cur, opt := c.curAndOptimistic()
	if c.hasIncumbent && opt <= c.best {
		return
	}
	nFree := c.prop.numFree()
	if nFree <= c.opts.DFSThreshold {
		c.dfsNode(pos)
		return
	}
	if !c.spendNode() {
		c.abandon(opt)
		return
	}
	sol, status, cols := c.solveRelaxation(cur)
	switch status {
	case simplex.Infeasible:
		c.lpPruned++
		return
	case simplex.Optimal:
		// fall through
	default:
		// Numerical trouble: keep searching with the combinatorial
		// bound only.
		c.dfsNode(pos)
		return
	}
	if !isFinite(sol.Obj) {
		// A corrupted objective (NaN/Inf) must not become a bound:
		// flooring it into int64 is platform-defined and could prune
		// the true optimum. Treat it like any other numerical failure.
		c.dfsNode(pos)
		return
	}
	bound := int64(math.Floor(sol.Obj + 1e-6))
	if c.hasIncumbent && bound <= c.best {
		c.lpPruned++
		return
	}
	// Stagnation check: after a warm-up, require the relaxation to
	// prune a reasonable share of the nodes it is solved at; otherwise
	// abandon it for this component. Solves made before the first
	// incumbent exists are not held against it — nothing can prune
	// until there is a bound to prune against.
	if c.hasIncumbent {
		c.lpJudged++
		if c.lpJudged >= 8 && c.lpPruned*4 < c.lpJudged {
			c.lpDisabled = true
			c.dfsNode(pos)
			return
		}
	}
	// Integral LP solution: verify exactly and accept as incumbent.
	if frac := mostFractional(sol.X); frac == -1 {
		m := c.prop.mark()
		ok := true
		for col, v := range cols {
			val := int8(0)
			if sol.X[col] > 0.5 {
				val = 1
			}
			if !c.prop.fix(v, val) {
				ok = false
				break
			}
		}
		c.absorb(m)
		if ok && c.nextFree() == -1 {
			c.lpPruned++
			leafCur, _ := c.curAndOptimistic()
			c.recordIncumbent(leafCur)
			c.undoT(m)
			return
		}
		if ok {
			// Propagation left untouched variables (constraint-free
			// ones); finish them with DFS.
			c.dfsNode(pos)
			c.undoT(m)
			return
		}
		c.undoT(m)
		// The rounded point was invalid (numerics); branch normally on
		// the first free variable.
	}
	v, prefer := c.branchVar(sol.X, cols)
	for _, val := range [2]int8{prefer, 1 - prefer} {
		ok, m := c.fixT(v, val)
		if ok {
			c.lpNode(pos)
		}
		c.undoT(m)
	}
}

// solveRelaxation builds and solves the LP relaxation of the free part
// of the component. cols maps LP column -> local variable. The
// returned objective includes the value of already-fixed variables.
func (c *comp) solveRelaxation(fixedVal int64) (simplex.Solution, simplex.Status, []int32) {
	c.lpSolves++
	timing := c.ctrl.timingLatencies()
	if timing || c.opts.Explain != nil {
		t0 := time.Now()
		defer func() {
			d := time.Since(t0)
			if timing {
				c.ctrl.observeLP(d)
			}
			c.lpNs += d.Nanoseconds()
		}()
	}
	col := make(map[int32]int, 16)
	var cols []int32
	colOf := func(v int32) int {
		if j, ok := col[v]; ok {
			return j
		}
		j := len(cols)
		col[v] = j
		cols = append(cols, v)
		return j
	}
	type lpRow struct {
		entries []simplex.Entry
		op      simplex.Op
		rhs     float64
	}
	var rows []lpRow
	for i := range c.cons {
		con := &c.cons[i]
		var entries []simplex.Entry
		rhs := float64(con.rhs)
		for k, v := range con.vars {
			switch c.prop.dom[v] {
			case 1:
				rhs -= float64(con.coef[k])
			case 0:
				// contributes nothing
			default:
				entries = append(entries, simplex.Entry{Col: -1, Coef: float64(con.coef[k])})
				// column index resolved below once all frees are known
				entries[len(entries)-1].Col = colOf(v)
			}
		}
		if len(entries) == 0 {
			continue
		}
		rows = append(rows, lpRow{entries, simplex.Op(con.op), rhs})
	}
	// Free variables with objective weight but no active constraint
	// still need a column so the LP maximizes them.
	for v := int32(0); v < int32(c.n); v++ {
		if c.prop.dom[v] == -1 && c.obj[v] != 0 {
			colOf(v)
		}
	}
	lp := simplex.New(len(cols))
	for j, v := range cols {
		if c.obj[v] != 0 {
			lp.SetObjective(j, float64(c.obj[v]))
		}
	}
	for _, r := range rows {
		lp.AddRow(r.entries, r.op, r.rhs)
	}
	sol, st := lp.Solve()
	if st == simplex.Optimal {
		sol.Obj += float64(fixedVal)
	}
	return sol, st, cols
}

// mostFractional returns the index of the entry farthest from
// integrality, or -1 when all entries are integral to tolerance.
func mostFractional(x []float64) int {
	best, bestDist := -1, 1e-6
	for j, v := range x {
		f := math.Abs(v - math.Round(v))
		if f > bestDist {
			best, bestDist = j, f
		}
	}
	return best
}

// branchVar selects the branching variable from the LP solution (most
// fractional) and the value to try first (the nearest integer).
func (c *comp) branchVar(x []float64, cols []int32) (int32, int8) {
	if j := mostFractional(x); j != -1 {
		prefer := int8(0)
		if x[j] >= 0.5 {
			prefer = 1
		}
		return cols[j], prefer
	}
	v := c.nextFree()
	return v, c.preferredValue(v)
}
