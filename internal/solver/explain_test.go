package solver

import (
	"testing"
)

// TestExplainRecorderMatchesStats is the attribution contract: the
// per-component records sum exactly to the solve's Stats counters, in
// both sequential and parallel search.
func TestExplainRecorderMatchesStats(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := hardProblem()
		rec := &ExplainRecorder{}
		opts := DefaultOptions()
		opts.MaxNodes = 50_000
		opts.Workers = workers
		opts.Explain = rec
		res, err := Maximize(p, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		runs := rec.Runs()
		if len(runs) != 1 {
			t.Fatalf("workers=%d: recorded %d runs, want 1", workers, len(runs))
		}
		run := runs[0]
		if run.Sense != "max" {
			t.Errorf("workers=%d: sense = %q, want max", workers, run.Sense)
		}
		st := res.Stats
		if run.VarsBefore != st.VarsBefore || run.VarsAfterPrune != st.VarsAfterPrune ||
			run.ConsBefore != st.ConsBefore || run.ConsAfterPrune != st.ConsAfterPrune ||
			run.FixedByPresolve != st.FixedByPresolve {
			t.Errorf("workers=%d: prune figures %+v do not match stats %+v", workers, run, st)
		}
		if len(run.Components) != st.Components {
			t.Errorf("workers=%d: recorded %d components, stats say %d", workers, len(run.Components), st.Components)
		}
		if run.Nodes != st.Nodes || run.LPSolves != st.LPSolves || run.Propagations != st.Propagations {
			t.Errorf("workers=%d: run totals (%d,%d,%d) != stats (%d,%d,%d)",
				workers, run.Nodes, run.LPSolves, run.Propagations, st.Nodes, st.LPSolves, st.Propagations)
		}
		var nodes, lps, props, solveNs int64
		for _, c := range run.Components {
			if !c.Solved {
				t.Errorf("workers=%d: component %d not marked solved", workers, c.Index)
			}
			if c.Vars <= 0 || len(c.Cons) == 0 {
				t.Errorf("workers=%d: component %d has empty matrix (vars=%d cons=%d)", workers, c.Index, c.Vars, len(c.Cons))
			}
			if len(c.Obj) != c.Vars {
				t.Errorf("workers=%d: component %d objective length %d, vars %d", workers, c.Index, len(c.Obj), c.Vars)
			}
			if c.LPNs > c.SolveNs {
				t.Errorf("workers=%d: component %d LP time %d exceeds solve time %d", workers, c.Index, c.LPNs, c.SolveNs)
			}
			nodes += c.Nodes
			lps += c.LPSolves
			props += c.Propagations
			solveNs += c.SolveNs
		}
		if nodes != st.Nodes {
			t.Errorf("workers=%d: component nodes sum %d != stats %d", workers, nodes, st.Nodes)
		}
		if lps != st.LPSolves {
			t.Errorf("workers=%d: component lp_solves sum %d != stats %d", workers, lps, st.LPSolves)
		}
		if props != st.Propagations-int64(st.FixedByPresolve) {
			t.Errorf("workers=%d: component propagations sum %d != stats %d - presolve %d",
				workers, props, st.Propagations, st.FixedByPresolve)
		}
		if solveNs <= 0 {
			t.Errorf("workers=%d: no component solve time recorded", workers)
		}
		if run.TotalNs <= 0 || run.SearchNs <= 0 {
			t.Errorf("workers=%d: phase durations not recorded: total=%d search=%d", workers, run.TotalNs, run.SearchNs)
		}
		if !run.Proven {
			t.Errorf("workers=%d: proven solve not marked proven in run", workers)
		}
	}
}

// TestExplainBoundsRecordsBothSenses: a Bounds call appends one run
// per sense onto the same recorder, with the min run's component
// objectives negated relative to the max run's.
func TestExplainBoundsRecordsBothSenses(t *testing.T) {
	p := hardProblem()
	rec := &ExplainRecorder{}
	opts := DefaultOptions()
	opts.MaxNodes = 50_000
	opts.Explain = rec
	if _, _, err := Bounds(p, opts); err != nil {
		t.Fatal(err)
	}
	runs := rec.Runs()
	if len(runs) != 2 {
		t.Fatalf("recorded %d runs, want 2", len(runs))
	}
	senses := map[string]ExplainRun{}
	for _, r := range runs {
		senses[r.Sense] = r
	}
	mx, okMax := senses["max"]
	mn, okMin := senses["min"]
	if !okMax || !okMin {
		t.Fatalf("senses = %v, want max and min", []string{runs[0].Sense, runs[1].Sense})
	}
	if len(mx.Components) == 0 || len(mx.Components) != len(mn.Components) {
		t.Fatalf("component counts: max %d, min %d", len(mx.Components), len(mn.Components))
	}
	// Minimize negates the objective; the recorded matrices show it.
	neg := false
	for i := range mx.Components {
		for j := range mx.Components[i].Obj {
			if mx.Components[i].Obj[j] != 0 && mn.Components[i].Obj[j] == -mx.Components[i].Obj[j] {
				neg = true
			}
		}
	}
	if !neg {
		t.Error("min run objective not negated relative to max run")
	}
}

// TestExplainCanceledKeepsComponents: components register before any
// search work, so a cancellation still leaves the decomposition (and
// its sizes) in the record — the detail experiment cells need even
// for failed solves.
func TestExplainCanceledKeepsComponents(t *testing.T) {
	p := hardProblem()
	rec := &ExplainRecorder{}
	opts := DefaultOptions()
	opts.UseLP = false
	opts.Explain = rec
	opts.Cancel = func() bool { return true }
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Canceled {
		t.Fatal("solve was not canceled")
	}
	runs := rec.Runs()
	if len(runs) != 1 {
		t.Fatalf("recorded %d runs, want 1", len(runs))
	}
	run := runs[0]
	if !run.Canceled {
		t.Error("run not marked canceled")
	}
	if len(run.Components) == 0 {
		t.Fatal("canceled run lost its component list")
	}
	maxVars := 0
	for _, c := range run.Components {
		if c.Vars > maxVars {
			maxVars = c.Vars
		}
	}
	if maxVars <= 0 {
		t.Errorf("component sizes missing: max vars = %d", maxVars)
	}
}

// TestExplainRecorderIsNoop: attaching a recorder does not change the
// search or its result.
func TestExplainRecorderIsNoop(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxNodes = 20_000
	plain, err := Maximize(hardProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Explain = &ExplainRecorder{}
	traced, err := Maximize(hardProblem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != traced.Value || plain.Bound != traced.Bound || plain.Proven != traced.Proven {
		t.Errorf("recorder changed the result: %+v vs %+v", plain, traced)
	}
	if plain.Stats.Nodes != traced.Stats.Nodes || plain.Stats.LPSolves != traced.Stats.LPSolves {
		t.Errorf("recorder changed the search: %+v vs %+v", plain.Stats, traced.Stats)
	}
}

// TestExplainTagSenseAndReset covers the supervisor hook and reuse.
func TestExplainTagSenseAndReset(t *testing.T) {
	rec := &ExplainRecorder{}
	i := rec.start("max")
	rec.finish(i, &Result{}, nil)
	i = rec.start("min")
	rec.finish(i, &Result{}, nil)
	rec.TagSense("max", "sampled")
	runs := rec.Runs()
	if runs[0].Quality != "sampled" || runs[1].Quality != "" {
		t.Errorf("TagSense mis-stamped: %q / %q", runs[0].Quality, runs[1].Quality)
	}
	rec.Reset()
	if len(rec.Runs()) != 0 {
		t.Error("Reset left runs behind")
	}
}
