package solver

import (
	"math/rand"
	"testing"

	"licm/internal/expr"
)

// chainProblem builds a reachability chain b0 - b1 - ... - bk through
// two-variable constraints ordered so that the backward scan reaches
// only one new link per pass: constraint i links (b_i, b_{i+1}) and
// constraints are stored in ascending order, while the scan walks
// from the last constraint to the first. Only b0 is in the objective,
// so pass 1 keeps just constraint 0, pass 2 constraint 1, and so on —
// the fixpoint loop must run k passes to keep the whole chain.
func chainProblem(k int) (int, []expr.Constraint, expr.Lin) {
	cons := make([]expr.Constraint, k)
	for i := 0; i < k; i++ {
		cons[i] = expr.NewConstraint(expr.Sum(expr.Var(i), expr.Var(i+1)), expr.GE, 1)
	}
	return k + 1, cons, expr.Sum(0)
}

func TestPruneFixpointChain(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 20} {
		n, cons, obj := chainProblem(k)
		pr := Prune(n, cons, obj)
		if len(pr.KeptConstraints) != k {
			t.Fatalf("chain k=%d: kept %d constraints, want all %d", k, len(pr.KeptConstraints), k)
		}
		if pr.NumReachable != n {
			t.Fatalf("chain k=%d: %d reachable vars, want %d", k, pr.NumReachable, n)
		}
		for v := 0; v < n; v++ {
			if !pr.Reachable[v] {
				t.Fatalf("chain k=%d: b%d not reachable", k, v)
			}
		}
	}
}

// TestPruneFixpointPartial interleaves a multi-pass chain with a
// disconnected family: the fixpoint must absorb the whole chain and
// still drop everything not connected to the objective.
func TestPruneFixpointPartial(t *testing.T) {
	// Chain over b0..b3 in ascending order (needs 3 passes), plus an
	// island b4..b6 that must stay pruned.
	cons := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1), // 0: kept pass 1
		expr.NewConstraint(expr.Sum(1, 2), expr.GE, 1), // 1: kept pass 2
		expr.NewConstraint(expr.Sum(2, 3), expr.GE, 1), // 2: kept pass 3
		expr.NewConstraint(expr.Sum(4, 5), expr.EQ, 1), // 3: island
		expr.NewConstraint(expr.Sum(5, 6), expr.LE, 1), // 4: island
	}
	pr := Prune(7, cons, expr.Sum(0))
	if got, want := len(pr.KeptConstraints), 3; got != want {
		t.Fatalf("kept %d constraints, want %d (%v)", got, want, pr.KeptConstraints)
	}
	for i, want := range []int{0, 1, 2} {
		if pr.KeptConstraints[i] != want {
			t.Fatalf("KeptConstraints = %v, want [0 1 2]", pr.KeptConstraints)
		}
	}
	if pr.NumReachable != 4 {
		t.Fatalf("NumReachable = %d, want 4", pr.NumReachable)
	}
	for v := 4; v < 7; v++ {
		if pr.Reachable[v] {
			t.Fatalf("island variable b%d wrongly reachable", v)
		}
	}
}

// TestPruneFixpointDiamond: two ascending branches that merge — the
// second branch is only reachable through a variable discovered on a
// later pass, and joins on yet another pass.
func TestPruneFixpointDiamond(t *testing.T) {
	cons := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1),    // reaches b1 (pass 1)
		expr.NewConstraint(expr.Sum(1, 2), expr.GE, 1),    // reaches b2 (pass 2)
		expr.NewConstraint(expr.Sum(2, 3, 4), expr.LE, 2), // reaches b3, b4 (pass 3)
		expr.NewConstraint(expr.Sum(4, 5), expr.EQ, 1),    // reaches b5 (pass 4)
	}
	pr := Prune(6, cons, expr.Sum(0))
	if len(pr.KeptConstraints) != 4 || pr.NumReachable != 6 {
		t.Fatalf("kept=%v reachable=%d, want all 4 constraints and 6 vars",
			pr.KeptConstraints, pr.NumReachable)
	}
}

// TestPruneSolveAgreement: solving with pruning enabled and disabled
// must agree on multi-pass chains (the bug pruning tests guard
// against is dropping a constraint that actually binds the optimum).
func TestPruneSolveAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(8)
		n, cons, _ := chainProblem(k)
		// A binding chain: force alternation pressure with mutexes so
		// pruning a link would change the optimum.
		obj := make([]expr.Term, n)
		for v := 0; v < n; v++ {
			obj[v] = expr.Term{Var: expr.Var(v), Coef: int64(rng.Intn(5)) - 2}
		}
		p := &Problem{NumVars: n, Constraints: cons, Objective: expr.NewLin(0, obj...)}
		with := DefaultOptions()
		without := DefaultOptions()
		without.Prune = false
		r1, err1 := Maximize(p, with)
		r2, err2 := Maximize(p, without)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errors %v / %v", trial, err1, err2)
		}
		if r1.Value != r2.Value {
			t.Fatalf("trial %d: pruned value %d != unpruned %d", trial, r1.Value, r2.Value)
		}
		if !r1.Proven || !r2.Proven {
			t.Fatalf("trial %d: unproven on a tiny instance", trial)
		}
	}
}
