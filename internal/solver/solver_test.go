package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"licm/internal/expr"
)

// bruteForce returns (min, max, feasible) of obj over all valid 0/1
// assignments of numVars variables.
func bruteForce(numVars int, cons []expr.Constraint, obj expr.Lin) (int64, int64, bool) {
	minV, maxV := int64(math.MaxInt64), int64(math.MinInt64)
	feasible := false
	for mask := 0; mask < 1<<numVars; mask++ {
		val := func(v expr.Var) bool { return mask&(1<<uint(v)) != 0 }
		ok := true
		for _, c := range cons {
			if !c.Holds(val) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		feasible = true
		o := obj.Eval(val)
		if o < minV {
			minV = o
		}
		if o > maxV {
			maxV = o
		}
	}
	return minV, maxV, feasible
}

// checkWitness verifies the assignment satisfies every constraint and
// achieves the reported value.
func checkWitness(t *testing.T, p *Problem, r Result) {
	t.Helper()
	if r.Assignment == nil {
		t.Fatalf("nil witness assignment")
	}
	val := func(v expr.Var) bool { return r.Assignment[v] == 1 }
	for i, c := range p.Constraints {
		if !c.Holds(val) {
			t.Fatalf("witness violates constraint %d: %v", i, c)
		}
	}
	if got := p.Objective.Eval(val); got != r.Value {
		t.Fatalf("witness objective = %d, reported %d", got, r.Value)
	}
}

func TestSimpleCardinality(t *testing.T) {
	// Example 1 of the paper: 5 possible records, between 1 and 2 are
	// true. COUNT bounds are [1,2].
	p := &Problem{
		NumVars: 5,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1, 2, 3, 4), expr.GE, 1),
			expr.NewConstraint(expr.Sum(0, 1, 2, 3, 4), expr.LE, 2),
		},
		Objective: expr.Sum(0, 1, 2, 3, 4),
	}
	min, max, err := Bounds(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.Value != 1 || max.Value != 2 {
		t.Fatalf("bounds = [%d,%d], want [1,2]", min.Value, max.Value)
	}
	if !min.Proven || !max.Proven {
		t.Error("bounds should be proven")
	}
	checkWitness(t, p, min)
	checkWitness(t, p, max)
}

func TestMutualExclusionCoexistenceImplication(t *testing.T) {
	// Example 5 of the paper: the three standard correlations.
	p := &Problem{
		NumVars: 4,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.EQ, 1),                     // mutual exclusion
			expr.NewConstraint(expr.Sum(2).Add(expr.Sum(3).Neg()), expr.EQ, 0), // co-existence
			expr.NewConstraint(expr.Sum(0).Add(expr.Sum(2).Neg()), expr.LE, 0), // b0 -> b2
		},
		Objective: expr.Sum(0, 1, 2, 3),
	}
	min, max, err := Bounds(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Worlds: b0=1 forces b2=b3=1 (count 3, with b1=0); b1=1 allows
	// b2=b3 in {0,1} (counts 1 or 3).
	if min.Value != 1 || max.Value != 3 {
		t.Fatalf("bounds = [%d,%d], want [1,3]", min.Value, max.Value)
	}
}

func TestPermutation(t *testing.T) {
	// A 3x3 bijection; objective counts the diagonal. Min 0, max 3.
	var cons []expr.Constraint
	idx := func(i, j int) expr.Var { return expr.Var(3*i + j) }
	for i := 0; i < 3; i++ {
		cons = append(cons,
			expr.NewConstraint(expr.Sum(idx(i, 0), idx(i, 1), idx(i, 2)), expr.EQ, 1),
			expr.NewConstraint(expr.Sum(idx(0, i), idx(1, i), idx(2, i)), expr.EQ, 1),
		)
	}
	p := &Problem{
		NumVars:     9,
		Constraints: cons,
		Objective:   expr.Sum(idx(0, 0), idx(1, 1), idx(2, 2)),
	}
	min, max, err := Bounds(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.Value != 0 || max.Value != 3 {
		t.Fatalf("bounds = [%d,%d], want [0,3]", min.Value, max.Value)
	}
	checkWitness(t, p, max)
}

func TestLineageANDChain(t *testing.T) {
	// b2 = b0 AND b1 (intersection lineage); maximize b2 with
	// b0 + b1 <= 1: max is 0.
	p := &Problem{
		NumVars: 3,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(2).Add(expr.Sum(0).Neg()), expr.LE, 0),
			expr.NewConstraint(expr.Sum(2).Add(expr.Sum(1).Neg()), expr.LE, 0),
			expr.NewConstraint(expr.Sum(2).Add(expr.Sum(0, 1).Neg()), expr.GE, -1),
			expr.NewConstraint(expr.Sum(0, 1), expr.LE, 1),
		},
		Objective: expr.Sum(2),
	}
	max, err := Maximize(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if max.Value != 0 {
		t.Fatalf("max = %d, want 0", max.Value)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.GE, 2),
			expr.NewConstraint(expr.Sum(0, 1), expr.LE, 1),
		},
		Objective: expr.Sum(0),
	}
	_, err := Maximize(p, DefaultOptions())
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: expr.Sum(3)}
	if _, err := Maximize(p, DefaultOptions()); err == nil {
		t.Fatal("expected validation error")
	}
	p = &Problem{
		NumVars:     1,
		Constraints: []expr.Constraint{expr.NewConstraint(expr.Sum(5), expr.LE, 1)},
		Objective:   expr.Sum(0),
	}
	if _, err := Maximize(p, DefaultOptions()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestObjectiveConstant(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: expr.Sum(0, 1).AddConst(10),
	}
	min, max, err := Bounds(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.Value != 10 || max.Value != 12 {
		t.Fatalf("bounds = [%d,%d], want [10,12]", min.Value, max.Value)
	}
}

func TestNegativeCoefficients(t *testing.T) {
	// max 2*b0 - 3*b1 with b0 + b1 >= 1: max 2 (b0=1,b1=0), min -3.
	p := &Problem{
		NumVars: 2,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1),
		},
		Objective: expr.NewLin(0, expr.Term{Var: 0, Coef: 2}, expr.Term{Var: 1, Coef: -3}),
	}
	min, max, err := Bounds(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if max.Value != 2 || min.Value != -3 {
		t.Fatalf("bounds = [%d,%d], want [-3,2]", min.Value, max.Value)
	}
}

func TestPruningStats(t *testing.T) {
	// Two disjoint groups; the objective touches only the first. The
	// second group's constraint must be pruned.
	p := &Problem{
		NumVars: 6,
		Constraints: []expr.Constraint{
			expr.NewConstraint(expr.Sum(0, 1, 2), expr.GE, 1),
			expr.NewConstraint(expr.Sum(3, 4, 5), expr.GE, 2),
		},
		Objective: expr.Sum(0, 1, 2),
	}
	max, err := Maximize(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if max.Value != 3 {
		t.Fatalf("max = %d, want 3", max.Value)
	}
	if max.Stats.ConsAfterPrune != 1 || max.Stats.VarsAfterPrune != 3 {
		t.Errorf("prune stats = %+v", max.Stats)
	}
	// Witness completion must still satisfy the pruned constraint.
	checkWitness(t, p, max)
}

func TestPruneChain(t *testing.T) {
	// Lineage chain: objective over b3; b3 defined from b1,b2; b1 in a
	// base group with b0. Everything is reachable; nothing pruned.
	cons := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1), expr.GE, 1),
		expr.NewConstraint(expr.Sum(3).Add(expr.Sum(1).Neg()), expr.LE, 0),
		expr.NewConstraint(expr.Sum(3).Add(expr.Sum(2).Neg()), expr.LE, 0),
		expr.NewConstraint(expr.Sum(3).Add(expr.Sum(1, 2).Neg()), expr.GE, -1),
	}
	pr := Prune(4, cons, expr.Sum(3))
	if len(pr.KeptConstraints) != 4 {
		t.Fatalf("kept %d constraints, want 4", len(pr.KeptConstraints))
	}
	if pr.NumReachable != 4 {
		t.Fatalf("reachable = %d, want 4", pr.NumReachable)
	}
}

func TestPruneForwardBaseLink(t *testing.T) {
	// Base constraints linked "forward": constraint 0 over {b0,b1},
	// constraint 1 over {b1}, objective over b0. A single backward
	// pass would miss constraint 1; the fixpoint must keep both.
	cons := []expr.Constraint{
		expr.NewConstraint(expr.Sum(0, 1), expr.LE, 1),
		expr.NewConstraint(expr.Sum(1), expr.GE, 1),
	}
	pr := Prune(2, cons, expr.Sum(0))
	if len(pr.KeptConstraints) != 2 {
		t.Fatalf("kept %d constraints, want 2", len(pr.KeptConstraints))
	}
	// And the solve must respect it: b1 forced 1, so b0 <= 0.
	p := &Problem{NumVars: 2, Constraints: cons, Objective: expr.Sum(0)}
	max, err := Maximize(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if max.Value != 0 {
		t.Fatalf("max = %d, want 0", max.Value)
	}
}

func randomConstraint(r *rand.Rand, numVars int) expr.Constraint {
	n := 1 + r.Intn(4)
	terms := make([]expr.Term, 0, n)
	for i := 0; i < n; i++ {
		terms = append(terms, expr.Term{
			Var:  expr.Var(r.Intn(numVars)),
			Coef: int64(r.Intn(5) - 2),
		})
	}
	lin := expr.NewLin(0, terms...)
	op := expr.Op(r.Intn(3))
	rhs := int64(r.Intn(2*numVars+1) - numVars/2)
	return expr.NewConstraint(lin, op, rhs)
}

func randomObjective(r *rand.Rand, numVars int) expr.Lin {
	terms := make([]expr.Term, 0, numVars)
	for v := 0; v < numVars; v++ {
		if r.Intn(3) != 0 {
			terms = append(terms, expr.Term{Var: expr.Var(v), Coef: int64(r.Intn(9) - 4)})
		}
	}
	return expr.NewLin(int64(r.Intn(5)-2), terms...)
}

// TestRandomAgainstBruteForce is the core exactness check: on random
// small instances the solver must match exhaustive enumeration.
func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		numVars := 1 + r.Intn(10)
		numCons := r.Intn(8)
		cons := make([]expr.Constraint, 0, numCons)
		for i := 0; i < numCons; i++ {
			cons = append(cons, randomConstraint(r, numVars))
		}
		obj := randomObjective(r, numVars)
		p := &Problem{NumVars: numVars, Constraints: cons, Objective: obj}

		wantMin, wantMax, feasible := bruteForce(numVars, cons, obj)
		min, max, err := Bounds(p, DefaultOptions())
		if !feasible {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: want infeasible, got err=%v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if min.Value != wantMin || max.Value != wantMax {
			t.Fatalf("trial %d: bounds [%d,%d], brute force [%d,%d]\ncons: %v\nobj: %v",
				trial, min.Value, max.Value, wantMin, wantMax, cons, obj)
		}
		if !min.Proven || !max.Proven {
			t.Fatalf("trial %d: unproven without budget", trial)
		}
		if min.Assignment != nil {
			checkWitness(t, p, min)
		}
		if max.Assignment != nil {
			checkWitness(t, p, max)
		}
	}
}

// TestRandomLPPathAgainstDFS forces the LP branch-and-bound path by
// setting DFSThreshold to 0 and compares with the pure DFS path.
func TestRandomLPPathAgainstDFS(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	lpOpts := DefaultOptions()
	lpOpts.DFSThreshold = 0
	dfsOpts := DefaultOptions()
	dfsOpts.UseLP = false
	for trial := 0; trial < 300; trial++ {
		numVars := 2 + r.Intn(9)
		numCons := 1 + r.Intn(6)
		cons := make([]expr.Constraint, 0, numCons)
		for i := 0; i < numCons; i++ {
			cons = append(cons, randomConstraint(r, numVars))
		}
		obj := randomObjective(r, numVars)
		p := &Problem{NumVars: numVars, Constraints: cons, Objective: obj}
		a, errA := Maximize(p, lpOpts)
		b, errB := Maximize(p, dfsOpts)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: LP err=%v, DFS err=%v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Value != b.Value {
			t.Fatalf("trial %d: LP=%d, DFS=%d\ncons: %v\nobj: %v", trial, a.Value, b.Value, cons, obj)
		}
	}
}

// TestRandomNoPruneNoDecompose checks the ablation paths give the same
// optima.
func TestRandomNoPruneNoDecompose(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		numVars := 2 + r.Intn(9)
		numCons := r.Intn(6)
		cons := make([]expr.Constraint, 0, numCons)
		for i := 0; i < numCons; i++ {
			cons = append(cons, randomConstraint(r, numVars))
		}
		obj := randomObjective(r, numVars)
		p := &Problem{NumVars: numVars, Constraints: cons, Objective: obj}
		base, errBase := Maximize(p, DefaultOptions())
		noPrune := DefaultOptions()
		noPrune.Prune = false
		noDecomp := DefaultOptions()
		noDecomp.Decompose = false
		a, errA := Maximize(p, noPrune)
		b, errB := Maximize(p, noDecomp)
		if (errBase == nil) != (errA == nil) || (errBase == nil) != (errB == nil) {
			t.Fatalf("trial %d: err mismatch %v / %v / %v", trial, errBase, errA, errB)
		}
		if errBase != nil {
			continue
		}
		if a.Value != base.Value || b.Value != base.Value {
			t.Fatalf("trial %d: base=%d noPrune=%d noDecompose=%d", trial, base.Value, a.Value, b.Value)
		}
	}
}

func TestBudgetedApproximation(t *testing.T) {
	// A hard-ish permutation objective with a tiny node budget: the
	// result must be a valid value/bound pair even when unproven.
	k := 7
	var cons []expr.Constraint
	idx := func(i, j int) expr.Var { return expr.Var(k*i + j) }
	for i := 0; i < k; i++ {
		var row, col []expr.Var
		for j := 0; j < k; j++ {
			row = append(row, idx(i, j))
			col = append(col, idx(j, i))
		}
		cons = append(cons,
			expr.NewConstraint(expr.Sum(row...), expr.EQ, 1),
			expr.NewConstraint(expr.Sum(col...), expr.EQ, 1),
		)
	}
	var terms []expr.Term
	r := rand.New(rand.NewSource(5))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			terms = append(terms, expr.Term{Var: idx(i, j), Coef: int64(r.Intn(10))})
		}
	}
	obj := expr.NewLin(0, terms...)
	p := &Problem{NumVars: k * k, Constraints: cons, Objective: obj}

	exact, err := Maximize(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxNodes = 3
	opts.UseLP = false
	approx, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Value > exact.Value {
		t.Fatalf("approx value %d exceeds exact %d", approx.Value, exact.Value)
	}
	if approx.Bound < exact.Value {
		t.Fatalf("approx bound %d below exact %d", approx.Bound, exact.Value)
	}
}

func TestLargeIndependentGroups(t *testing.T) {
	// 200 independent >=1 groups of 3: max count 600, min 200. The
	// decomposition must make this instant.
	var cons []expr.Constraint
	var all []expr.Var
	numVars := 600
	for g := 0; g < 200; g++ {
		vs := []expr.Var{expr.Var(3 * g), expr.Var(3*g + 1), expr.Var(3*g + 2)}
		all = append(all, vs...)
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.GE, 1))
	}
	p := &Problem{NumVars: numVars, Constraints: cons, Objective: expr.Sum(all...)}
	min, max, err := Bounds(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if min.Value != 200 || max.Value != 600 {
		t.Fatalf("bounds = [%d,%d], want [200,600]", min.Value, max.Value)
	}
	if max.Stats.Components != 200 {
		t.Errorf("components = %d, want 200", max.Stats.Components)
	}
}

func BenchmarkSolveGroups(b *testing.B) {
	var cons []expr.Constraint
	var all []expr.Var
	for g := 0; g < 500; g++ {
		vs := []expr.Var{expr.Var(3 * g), expr.Var(3*g + 1), expr.Var(3*g + 2)}
		all = append(all, vs...)
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.GE, 1))
	}
	p := &Problem{NumVars: 1500, Constraints: cons, Objective: expr.Sum(all...)}
	opts := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bounds(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolvePermutation8(b *testing.B) {
	k := 8
	var cons []expr.Constraint
	idx := func(i, j int) expr.Var { return expr.Var(k*i + j) }
	for i := 0; i < k; i++ {
		var row, col []expr.Var
		for j := 0; j < k; j++ {
			row = append(row, idx(i, j))
			col = append(col, idx(j, i))
		}
		cons = append(cons,
			expr.NewConstraint(expr.Sum(row...), expr.EQ, 1),
			expr.NewConstraint(expr.Sum(col...), expr.EQ, 1),
		)
	}
	var diag []expr.Var
	for i := 0; i < k; i++ {
		diag = append(diag, idx(i, (i+1)%k))
	}
	p := &Problem{NumVars: k * k, Constraints: cons, Objective: expr.Sum(diag...)}
	opts := DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Bounds(p, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelWorkersMatchSequential: component-parallel solving gives
// the same optima as sequential on unbudgeted instances.
func TestParallelWorkersMatchSequential(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	seq := DefaultOptions()
	par := DefaultOptions()
	par.Workers = 4
	for trial := 0; trial < 100; trial++ {
		numVars := 4 + r.Intn(12)
		numCons := 1 + r.Intn(6)
		cons := make([]expr.Constraint, 0, numCons)
		for i := 0; i < numCons; i++ {
			cons = append(cons, randomConstraint(r, numVars))
		}
		obj := randomObjective(r, numVars)
		p := &Problem{NumVars: numVars, Constraints: cons, Objective: obj}
		a, errA := Maximize(p, seq)
		b, errB := Maximize(p, par)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("trial %d: err mismatch %v vs %v", trial, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Value != b.Value {
			t.Fatalf("trial %d: sequential %d vs parallel %d", trial, a.Value, b.Value)
		}
	}
}

// TestParallelManyGroups exercises the worker pool on a instance with
// many independent components.
func TestParallelManyGroups(t *testing.T) {
	var cons []expr.Constraint
	var all []expr.Var
	for g := 0; g < 300; g++ {
		vs := []expr.Var{expr.Var(3 * g), expr.Var(3*g + 1), expr.Var(3*g + 2)}
		all = append(all, vs...)
		cons = append(cons, expr.NewConstraint(expr.Sum(vs...), expr.GE, 1))
	}
	p := &Problem{NumVars: 900, Constraints: cons, Objective: expr.Sum(all...)}
	opts := DefaultOptions()
	opts.Workers = 8
	min, max, err := Bounds(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if min.Value != 300 || max.Value != 900 {
		t.Fatalf("bounds = [%d,%d], want [300,900]", min.Value, max.Value)
	}
}

// buildMinCountInstance mimics the data-cleaning query shape: customer
// record groups with 1..2-of-n constraints, OR lineage per region, and
// count-threshold vars — the shape where min-side search needs LP
// guidance.
func buildMinCountInstance(nCustomers, nRegions int, seed int64) *Problem {
	r := rand.New(rand.NewSource(seed))
	var cons []expr.Constraint
	numVars := 0
	newVar := func() expr.Var { numVars++; return expr.Var(numVars - 1) }
	regionRecs := make([][]expr.Var, nRegions)
	for c := 0; c < nCustomers; c++ {
		n := 2 + r.Intn(3)
		vars := make([]expr.Var, n)
		for i := range vars {
			vars[i] = newVar()
			regionRecs[r.Intn(nRegions)] = append(regionRecs[r.Intn(nRegions)], vars[i])
		}
		cons = append(cons,
			expr.NewConstraint(expr.Sum(vars...), expr.GE, 1),
			expr.NewConstraint(expr.Sum(vars...), expr.LE, 2),
		)
	}
	derivedStart := numVars
	var objTerms []expr.Term
	for g := 0; g < nRegions; g++ {
		if len(regionRecs[g]) == 0 {
			continue
		}
		or := newVar()
		for _, a := range regionRecs[g] {
			cons = append(cons, expr.NewConstraint(expr.Sum(or).AddTerm(a, -1), expr.GE, 0))
		}
		cons = append(cons, expr.NewConstraint(expr.Sum(or).Add(expr.Sum(regionRecs[g]...).Neg()), expr.LE, 0))
		objTerms = append(objTerms, expr.Term{Var: or, Coef: 1})
	}
	derived := make([]bool, numVars)
	for v := derivedStart; v < numVars; v++ {
		derived[v] = true
	}
	return &Problem{
		NumVars:     numVars,
		Constraints: cons,
		Objective:   expr.NewLin(0, objTerms...),
		Derived:     derived,
	}
}

// TestLPGuidedSeedFindsMinimum: the min side of an OR-count objective
// must be solved exactly (the LP-guided seed dive lands on the
// relaxation's rounded optimum; without guidance the search stalls on
// a poor incumbent).
func TestLPGuidedSeedFindsMinimum(t *testing.T) {
	p := buildMinCountInstance(60, 6, 3)
	opts := DefaultOptions()
	min, err := Minimize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Every region can be avoided? Not necessarily; but the minimum
	// must match a fresh maximization of the complement check: verify
	// against the witness and prove optimality flags.
	if !min.Proven {
		t.Fatalf("min should be proven on this size, got value=%d bound=%d", min.Value, min.Bound)
	}
	if min.Assignment != nil {
		val := p.Objective.Eval(func(v expr.Var) bool { return min.Assignment[v] == 1 })
		if val != min.Value {
			t.Fatalf("witness value %d != reported %d", val, min.Value)
		}
	}
	// Cross-check against pure DFS with a large budget.
	dfsOpts := DefaultOptions()
	dfsOpts.UseLP = false
	dfsOpts.OversizeNodes = 5_000_000
	min2, err := Minimize(p, dfsOpts)
	if err != nil {
		t.Fatal(err)
	}
	if min2.Proven && min2.Value != min.Value {
		t.Fatalf("LP path %d vs DFS path %d", min.Value, min2.Value)
	}
	if !min2.Proven && min.Value < min2.Bound {
		t.Fatalf("LP min %d below DFS proven lower bound %d", min.Value, min2.Bound)
	}
}

// TestRootLPBoundCapsResult: with a tiny budget the reported outer
// bound must still benefit from the root relaxation.
func TestRootLPBoundCapsResult(t *testing.T) {
	p := buildMinCountInstance(80, 8, 5)
	opts := DefaultOptions()
	opts.MaxNodes = 50 // starve the search
	max, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The combinatorial bound would be the full number of OR vars;
	// the root LP cannot exceed it and the reported bound must respect
	// both sides.
	if max.Bound < max.Value {
		t.Fatalf("bound %d below value %d", max.Bound, max.Value)
	}
	nOrs := p.Objective.Len()
	if max.Bound > int64(nOrs) {
		t.Fatalf("bound %d exceeds trivial bound %d", max.Bound, nOrs)
	}
}

// TestWitnessCompletionDetectsInfeasiblePrunedPart: infeasibility
// hiding entirely in the pruned (objective-irrelevant) part must
// surface as ErrInfeasible, not as valid bounds.
func TestWitnessCompletionDetectsInfeasiblePrunedPart(t *testing.T) {
	p := &Problem{
		NumVars: 4,
		Constraints: []expr.Constraint{
			// Pruned part over b1..b3: pairwise "exactly one" triangle,
			// unsatisfiable over binaries (sum doubles to 3).
			expr.NewConstraint(expr.Sum(1, 2), expr.EQ, 1),
			expr.NewConstraint(expr.Sum(2, 3), expr.EQ, 1),
			expr.NewConstraint(expr.Sum(1, 3), expr.EQ, 1),
		},
		Objective: expr.Sum(0),
	}
	if _, err := Maximize(p, DefaultOptions()); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// With witness completion off, the pruned part is (by the paper's
	// own semantics) ignored.
	opts := DefaultOptions()
	opts.CompleteWitness = false
	max, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if max.Value != 1 {
		t.Fatalf("value = %d, want 1", max.Value)
	}
}
