package solver

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"licm/internal/expr"
)

// pairCoverProblem is a feasibility-hard gadget: 2k variables, a
// global "at most k" cap, and k pair-cover constraints. The only
// feasible points pick exactly one variable per pair, which a 1-first
// dive discovers only after massive backtracking — enough to exhaust
// the budgeted heuristic dives and expose the no-incumbent error
// paths. base is the id of the gadget's first variable.
func pairCoverProblem(base, k int) []expr.Constraint {
	var cons []expr.Constraint
	var all []expr.Var
	for i := 0; i < 2*k; i++ {
		all = append(all, expr.Var(base+i))
	}
	cons = append(cons, expr.NewConstraint(expr.Sum(all...), expr.LE, int64(k)))
	for i := 0; i < k; i++ {
		cons = append(cons, expr.NewConstraint(
			expr.Sum(expr.Var(base+2*i), expr.Var(base+2*i+1)), expr.GE, 1))
	}
	return cons
}

// TestCanceledErrorWrapsComponentContext: when cancellation strikes
// before any feasible point exists, the returned error must wrap
// ErrCanceled (errors.Is matches) and name the starved component.
func TestCanceledErrorWrapsComponentContext(t *testing.T) {
	k := 20
	var terms []expr.Term
	for i := 0; i < 2*k; i++ {
		terms = append(terms, expr.Term{Var: expr.Var(i), Coef: 1})
	}
	p := &Problem{
		NumVars:     2 * k,
		Constraints: pairCoverProblem(0, k),
		Objective:   expr.NewLin(0, terms...),
	}
	opts := DefaultOptions()
	opts.UseLP = false // the LP hint would gift the dive a feasible point
	opts.Cancel = func() bool { return true }
	_, err := Maximize(p, opts)
	if err == nil {
		t.Fatal("expected an error from a canceled incumbent-less solve")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if err.Error() == ErrCanceled.Error() {
		t.Fatalf("error was not wrapped with component context: %v", err)
	}
	if !strings.Contains(err.Error(), "component 0") {
		t.Fatalf("error does not name the component: %v", err)
	}
}

// TestWitnessBudgetExhaustedStat: a pruned part too hard for the
// configured witness budget must surface as Stats.WitnessExhausted
// with a nil Assignment — while the bounds stand.
func TestWitnessBudgetExhaustedStat(t *testing.T) {
	k := 20
	p := &Problem{
		NumVars:     1 + 2*k,
		Constraints: pairCoverProblem(1, k),
		Objective:   expr.Sum(expr.Var(0)),
	}
	opts := DefaultOptions()
	opts.WitnessBudget = 1000
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 1 || !res.Proven {
		t.Fatalf("bounds wrong: value=%d proven=%v", res.Value, res.Proven)
	}
	if !res.Stats.WitnessExhausted {
		t.Error("Stats.WitnessExhausted not set")
	}
	if res.Assignment != nil {
		t.Error("Assignment should be nil when the witness is incomplete")
	}
}

// TestCancelBetweenComponentsKeepsProvenBounds: cancellation striking
// after some components finished must keep their proven per-component
// bounds on the snapshot board, and the board interval must still
// contain the true optimum.
func TestCancelBetweenComponentsKeepsProvenBounds(t *testing.T) {
	// Three independent 7x7 permutation blocks with random weights:
	// each needs thousands of DFS nodes, so ctrl polls fire while later
	// blocks are still open.
	k := 7
	var cons []expr.Constraint
	var terms []expr.Term
	r := rand.New(rand.NewSource(9))
	for b := 0; b < 3; b++ {
		base := b * k * k
		idx := func(i, j int) expr.Var { return expr.Var(base + k*i + j) }
		for i := 0; i < k; i++ {
			var row, col []expr.Var
			for j := 0; j < k; j++ {
				row = append(row, idx(i, j))
				col = append(col, idx(j, i))
			}
			cons = append(cons,
				expr.NewConstraint(expr.Sum(row...), expr.EQ, 1),
				expr.NewConstraint(expr.Sum(col...), expr.EQ, 1))
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				terms = append(terms, expr.Term{Var: idx(i, j), Coef: int64(r.Intn(10))})
			}
		}
	}
	p := &Problem{NumVars: 3 * k * k, Constraints: cons, Objective: expr.NewLin(0, terms...)}

	exact, err := Maximize(p, DefaultOptions())
	if err != nil || !exact.Proven {
		t.Fatalf("reference solve: err=%v proven=%v", err, exact.Proven)
	}

	opts := DefaultOptions()
	opts.UseLP = false
	board := &SnapshotBoard{}
	opts.Snapshots = board
	latched := false
	opts.Cancel = func() bool {
		if latched {
			return true
		}
		_, comps, ok := board.Components()
		if !ok {
			return false
		}
		for _, cs := range comps {
			if cs.Done {
				latched = true
				return true
			}
		}
		return false
	}
	res, err := Maximize(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Canceled {
		t.Fatal("Stats.Canceled not set")
	}
	if res.Proven {
		t.Error("canceled solve reported proven")
	}
	_, comps, ok := board.Components()
	if !ok || len(comps) != 3 {
		t.Fatalf("board: ok=%v comps=%d, want 3", ok, len(comps))
	}
	provenComps := 0
	for ci, cs := range comps {
		if cs.Done && cs.HasIncumbent && cs.UpperBound == cs.Incumbent {
			provenComps++
		}
		if cs.HasIncumbent && cs.Incumbent > cs.UpperBound {
			t.Errorf("component %d: incumbent %d above bound %d", ci, cs.Incumbent, cs.UpperBound)
		}
	}
	if provenComps == 0 {
		t.Error("no component kept a proven (incumbent == bound) snapshot")
	}
	lo, hi, hasLo, ok := board.Interval()
	if !ok || !hasLo {
		t.Fatalf("board interval unavailable: ok=%v hasLo=%v", ok, hasLo)
	}
	if lo > exact.Value || hi < exact.Value {
		t.Errorf("board interval [%d,%d] excludes true optimum %d", lo, hi, exact.Value)
	}
}

// TestOrderSeedPreservesOptimum: the deterministic branching-order
// perturbation must never change proven results — any order is
// correct, only the exploration path differs.
func TestOrderSeedPreservesOptimum(t *testing.T) {
	p := buildMinCountInstance(40, 5, 11)
	base, err := Maximize(p, DefaultOptions())
	if err != nil || !base.Proven {
		t.Fatalf("base solve: err=%v proven=%v", err, base.Proven)
	}
	for _, seed := range []int64{1, 0x5eedbeef, -77} {
		opts := DefaultOptions()
		opts.OrderSeed = seed
		res, err := Maximize(p, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Proven || res.Value != base.Value {
			t.Fatalf("seed %d: value=%d proven=%v, want %d proven", seed, res.Value, res.Proven, base.Value)
		}
	}
}
