package solver

import (
	"fmt"
	"runtime/debug"
	"sync"

	"licm/internal/expr"
)

// CompSnapshot is one component's live state as seen by a
// SnapshotBoard: the best incumbent found so far and a bound that is
// valid at any moment of the search (the root optimistic bound,
// tightened by the root LP relaxation, and finally by the exact search
// bound when the component completes). All values are in the sense of
// the internal maximization (Minimize negates the objective before
// solving, so a board attached to a Minimize call holds negated
// values — see SnapshotBoard).
type CompSnapshot struct {
	// UpperBound is a proven upper bound on the component's optimum,
	// valid from the moment the components are registered.
	UpperBound int64
	// Incumbent is the best feasible value found; meaningful only when
	// HasIncumbent. It is a proven lower bound on the component optimum.
	Incumbent    int64
	HasIncumbent bool
	// Done is set when the component's search returned; Infeasible when
	// it proved the component (and therefore the problem) infeasible.
	Done       bool
	Infeasible bool
}

// SnapshotBoard collects per-component incumbent/bound snapshots
// during one solve, so a supervisor can assemble an anytime proven
// interval at the moment of cancellation, budget exhaustion, or a
// recovered panic — instead of being left with a bare error when no
// global feasible point was reached.
//
// Attach a fresh board per solve via Options.Snapshots. All methods
// are safe for concurrent use (components may run on worker
// goroutines). Values are in the sense of the internal maximization:
// for a Maximize call they bound the objective directly; for a
// Minimize call they bound the negated objective, so a caller must
// negate (and swap) the interval ends.
type SnapshotBoard struct {
	mu         sync.Mutex
	registered bool
	base       int64
	comps      []CompSnapshot
}

// register installs the constant-plus-presolve base value and one slot
// per component with its trivial root upper bound. Called once per
// solve, after decomposition and before any component search.
func (b *SnapshotBoard) register(base int64, ubs []int64) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.base = base
	b.comps = make([]CompSnapshot, len(ubs))
	for i, ub := range ubs {
		b.comps[i].UpperBound = ub
	}
	b.registered = true
}

// refineUB tightens component ci's upper bound (no-op if the new bound
// is not tighter).
func (b *SnapshotBoard) refineUB(ci int, ub int64) {
	if b == nil || ci < 0 {
		return
	}
	b.mu.Lock()
	if ci < len(b.comps) && ub < b.comps[ci].UpperBound {
		b.comps[ci].UpperBound = ub
	}
	b.mu.Unlock()
}

// observeIncumbent records a new best feasible value for component ci.
func (b *SnapshotBoard) observeIncumbent(ci int, v int64) {
	if b == nil || ci < 0 {
		return
	}
	b.mu.Lock()
	if ci < len(b.comps) {
		c := &b.comps[ci]
		if !c.HasIncumbent || v > c.Incumbent {
			c.Incumbent, c.HasIncumbent = v, true
		}
	}
	b.mu.Unlock()
}

// finish records the final outcome of component ci's search.
func (b *SnapshotBoard) finish(ci int, cr compResult) {
	if b == nil || ci < 0 {
		return
	}
	b.mu.Lock()
	if ci < len(b.comps) {
		c := &b.comps[ci]
		c.Done = true
		if cr.feasible {
			if !c.HasIncumbent || cr.best > c.Incumbent {
				c.Incumbent, c.HasIncumbent = cr.best, true
			}
			if cr.bound < c.UpperBound {
				c.UpperBound = cr.bound
			}
		} else if cr.proven {
			c.Infeasible = true
		}
	}
	b.mu.Unlock()
}

// Components returns the base value (objective constant plus
// presolve-fixed contributions) and a copy of the per-component
// snapshots. ok is false until the solve reached component
// registration (validation, static-check, or presolve failures leave
// the board empty).
func (b *SnapshotBoard) Components() (base int64, comps []CompSnapshot, ok bool) {
	if b == nil {
		return 0, nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.registered {
		return 0, nil, false
	}
	return b.base, append([]CompSnapshot(nil), b.comps...), true
}

// Interval assembles the anytime proven interval of the maximization
// objective from the current snapshots: hi is always a proven upper
// bound (base plus every component's upper bound); lo is a proven
// lower bound only when every component has a feasible incumbent
// (hasLo). ok is false when the board was never registered or some
// component proved infeasibility — in either case no interval claim
// can be made.
func (b *SnapshotBoard) Interval() (lo, hi int64, hasLo, ok bool) {
	base, comps, ok := b.Components()
	if !ok {
		return 0, 0, false, false
	}
	lo, hi = base, base
	hasLo = true
	for _, c := range comps {
		if c.Infeasible {
			return 0, 0, false, false
		}
		hi += c.UpperBound
		if c.HasIncumbent {
			lo += c.Incumbent
		} else {
			hasLo = false
		}
	}
	if !hasLo {
		lo = 0
	}
	return lo, hi, hasLo, true
}

// CompPanic wraps a panic raised while solving one component, so a
// recovery boundary (internal/super) can attribute the fault to the
// offending component instead of losing it in a bare panic value. The
// solver itself never recovers panics into errors — it re-panics the
// wrapped value, preserving crash semantics for callers that do not
// install a boundary.
type CompPanic struct {
	// Component is the index of the component whose search panicked
	// (the same index CompSnapshot slots use).
	Component int
	// Value is the original panic value.
	Value any
	// Stack is the stack captured at the recovery point.
	Stack []byte
}

// Error summarizes the panic; *CompPanic satisfies error so recovery
// boundaries can wrap it uniformly.
func (p *CompPanic) Error() string {
	return fmt.Sprintf("solver: panic in component %d: %v", p.Component, p.Value)
}

// solveOneGuarded is solveOne with panic attribution: any panic below
// it is re-thrown wrapped in a *CompPanic carrying the component index
// (unless it already is one).
func solveOneGuarded(ci int, cm component, lcons []lcon, objCoef map[expr.Var]int64, globalDom []int8, derived []bool, opts Options, budget *int64, kc *ctrl) compResult {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*CompPanic); ok {
				panic(r)
			}
			panic(&CompPanic{Component: ci, Value: r, Stack: debug.Stack()})
		}
	}()
	return solveOne(ci, cm, lcons, objCoef, globalDom, derived, opts, budget, kc)
}
