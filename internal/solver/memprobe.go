package solver

import "runtime/metrics"

// memProbe measures heap consumption across one solve through two
// runtime/metrics reads: the cumulative allocation counter yields
// Stats.AllocBytes as an end-minus-start delta, and the live-heap
// gauge yields Stats.PeakHeap as the larger of the two readings
// (an endpoint sample, not a continuous max — cheap enough to run on
// every instrumented solve). Both are process-wide, so concurrent
// solves (Bounds runs min and max in sequence, super may race a
// sampler) attribute shared allocation to every observer; the numbers
// answer "what did the process pay while this solve ran", which is
// the capacity-planning question. The probe only arms when tracing or
// metrics are on, keeping the disabled path at a single bool check.
type memProbe struct {
	on      bool
	allocs0 uint64
	heap0   uint64
}

const (
	memMetricAllocs = "/gc/heap/allocs:bytes"
	memMetricHeap   = "/memory/classes/heap/objects:bytes"
)

func startMemProbe(on bool) memProbe {
	if !on {
		return memProbe{}
	}
	a, h := readMemCounters()
	return memProbe{on: true, allocs0: a, heap0: h}
}

// readMemCounters returns the cumulative heap-allocation and live-heap
// byte readings, zero for any metric the toolchain does not provide.
func readMemCounters() (allocs, heap uint64) {
	s := [2]metrics.Sample{{Name: memMetricAllocs}, {Name: memMetricHeap}}
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		allocs = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		heap = s[1].Value.Uint64()
	}
	return allocs, heap
}

// stop records the deltas into st; a disarmed probe leaves st alone.
func (p memProbe) stop(st *Stats) {
	if !p.on {
		return
	}
	a, h := readMemCounters()
	if a >= p.allocs0 {
		st.AllocBytes = int64(a - p.allocs0)
	}
	peak := p.heap0
	if h > peak {
		peak = h
	}
	if peak <= 1<<62 { // defensive: never store a wrapped reading
		st.PeakHeap = int64(peak)
	}
}
