package solver

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"licm/internal/expr"
)

// ReadLP parses the subset of the CPLEX LP file format that WriteLP
// emits, so stores exported for CPLEX/Gurobi cross-checking (or
// written by hand in the same dialect) can be read back for vetting
// and solving — licmvet is built on this. Accepted shape:
//
//	Maximize            (or Minimize)
//	 obj: b0 + 2 b3 - b7
//	\ objective constant: 5 (add to the optimum)
//	Subject To
//	 c0: b0 + b1 >= 1
//	Binary
//	 b0 b1 b3 b7
//	End
//
// Variables must be named b<N>; N is the dense id. Labels ("obj:",
// "c0:") are optional, comparison operators may be written <=, =<, <,
// >=, => or >, and "\" starts a comment (the "objective constant"
// comment WriteLP emits is folded back into the objective, making
// Write/Read round trips lossless). The variable count is the highest
// id mentioned anywhere plus one. The problem is validated before
// being returned.
func ReadLP(r io.Reader) (*Problem, Sense, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	p := &Problem{}
	sense := SenseMax
	maxVar := expr.Var(-1)
	seenObjective := false
	section := "" // "", objective, subject, binary, end
	var pending strings.Builder
	lineNo := 0

	flushExpr := func() error {
		text := strings.TrimSpace(pending.String())
		pending.Reset()
		if text == "" {
			return nil
		}
		switch section {
		case "objective":
			lin, op, rhs, hasOp, err := parseLPExpr(text)
			if err != nil {
				return err
			}
			if hasOp {
				return fmt.Errorf("objective contains a comparison (%s %d)", op, rhs)
			}
			p.Objective = p.Objective.Add(lin)
			seenObjective = true
		case "subject":
			lin, op, rhs, hasOp, err := parseLPExpr(text)
			if err != nil {
				return err
			}
			if !hasOp {
				return fmt.Errorf("constraint %q has no comparison operator", text)
			}
			p.Constraints = append(p.Constraints, expr.NewConstraint(lin, op, rhs))
		}
		if v := linMaxVar(p.Objective); v > maxVar {
			maxVar = v
		}
		for _, c := range p.Constraints {
			if v := linMaxVar(c.Lin); v > maxVar {
				maxVar = v
			}
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '\\'); i >= 0 {
			comment := strings.TrimSpace(line[i+1:])
			line = line[:i]
			if k, ok := parseObjConstComment(comment); ok {
				p.Objective = p.Objective.AddConst(k)
			}
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lower := strings.ToLower(line)
		newSection := ""
		switch {
		case lower == "maximize" || lower == "max":
			newSection, sense = "objective", SenseMax
		case lower == "minimize" || lower == "min":
			newSection, sense = "objective", SenseMin
		case lower == "subject to" || lower == "st" || lower == "s.t." || lower == "such that":
			newSection = "subject"
		case lower == "binary" || lower == "bin" || lower == "binaries":
			newSection = "binary"
		case lower == "end":
			newSection = "end"
		case lower == "general" || lower == "generals" || lower == "bounds":
			return nil, sense, fmt.Errorf("line %d: unsupported section %q (only binary problems are read)", lineNo, line)
		}
		if newSection != "" {
			if err := flushExpr(); err != nil {
				return nil, sense, fmt.Errorf("line %d: %v", lineNo, err)
			}
			section = newSection
			continue
		}
		switch section {
		case "":
			return nil, sense, fmt.Errorf("line %d: expected Maximize or Minimize, got %q", lineNo, line)
		case "objective":
			pending.WriteByte(' ')
			pending.WriteString(line)
		case "subject":
			// One constraint per line once an operator is present;
			// continuation lines (no operator yet) accumulate.
			pending.WriteByte(' ')
			pending.WriteString(line)
			if strings.ContainsAny(line, "<>=") {
				if err := flushExpr(); err != nil {
					return nil, sense, fmt.Errorf("line %d: %v", lineNo, err)
				}
			}
		case "binary":
			for _, tok := range strings.Fields(line) {
				v, err := parseLPVar(tok)
				if err != nil {
					return nil, sense, fmt.Errorf("line %d: %v", lineNo, err)
				}
				if v > maxVar {
					maxVar = v
				}
			}
		case "end":
			return nil, sense, fmt.Errorf("line %d: content after End: %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, sense, err
	}
	if err := flushExpr(); err != nil {
		return nil, sense, err
	}
	if !seenObjective {
		return nil, sense, fmt.Errorf("no objective section")
	}
	p.NumVars = int(maxVar) + 1
	if err := p.Validate(); err != nil {
		return nil, sense, err
	}
	return p, sense, nil
}

// parseLPExpr parses "name: 2 b0 - b3 + 4 b7 [op rhs]".
func parseLPExpr(text string) (lin expr.Lin, op expr.Op, rhs int64, hasOp bool, err error) {
	if i := strings.IndexByte(text, ':'); i >= 0 {
		text = text[i+1:]
	}
	// Tokenize, splitting operators out of adjacent text.
	for _, sym := range []string{"<=", "=<", ">=", "=>", "<", ">", "=", "+", "-"} {
		text = strings.ReplaceAll(text, sym, " "+sym+" ")
	}
	// The two-rune operators got split by the pass over their one-rune
	// parts ("<=" -> "< ="); re-join.
	fields := strings.Fields(text)
	var toks []string
	for i := 0; i < len(fields); i++ {
		if i+1 < len(fields) {
			pair := fields[i] + fields[i+1]
			if pair == "<=" || pair == ">=" || pair == "=<" || pair == "=>" {
				toks = append(toks, pair)
				i++
				continue
			}
		}
		toks = append(toks, fields[i])
	}

	var terms []expr.Term
	konst := int64(0)
	sign := int64(1)
	var coef *int64
	flushNumber := func() {
		if coef != nil {
			konst += sign * (*coef)
			coef = nil
			sign = 1
		}
	}
	seenOp := false
	var rhsAcc []string
	for _, tok := range toks {
		if seenOp {
			rhsAcc = append(rhsAcc, tok)
			continue
		}
		switch tok {
		case "+":
			flushNumber()
		case "-":
			flushNumber()
			sign = -sign
		case "<=", "=<", "<":
			flushNumber()
			seenOp, hasOp, op = true, true, expr.LE
		case ">=", "=>", ">":
			flushNumber()
			seenOp, hasOp, op = true, true, expr.GE
		case "=":
			flushNumber()
			seenOp, hasOp, op = true, true, expr.EQ
		default:
			if n, perr := strconv.ParseInt(tok, 10, 64); perr == nil {
				if coef != nil {
					return lin, op, rhs, hasOp, fmt.Errorf("two consecutive numbers near %q", tok)
				}
				c := n
				coef = &c
				continue
			}
			v, verr := parseLPVar(tok)
			if verr != nil {
				return lin, op, rhs, hasOp, verr
			}
			c := int64(1)
			if coef != nil {
				c = *coef
				coef = nil
			}
			terms = append(terms, expr.Term{Var: v, Coef: sign * c})
			sign = 1
		}
	}
	flushNumber()
	if hasOp {
		if len(rhsAcc) == 0 {
			return lin, op, rhs, hasOp, fmt.Errorf("missing right-hand side")
		}
		text := strings.Join(rhsAcc, "")
		n, perr := strconv.ParseInt(text, 10, 64)
		if perr != nil {
			return lin, op, rhs, hasOp, fmt.Errorf("bad right-hand side %q (only integer RHS is supported)", text)
		}
		rhs = n
	}
	return expr.NewLin(konst, terms...), op, rhs, hasOp, nil
}

// parseLPVar parses a b<N> variable name.
func parseLPVar(tok string) (expr.Var, error) {
	if len(tok) < 2 || (tok[0] != 'b' && tok[0] != 'B') {
		return 0, fmt.Errorf("bad token %q: variables must be named b<N>", tok)
	}
	n, err := strconv.ParseInt(tok[1:], 10, 32)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad variable name %q", tok)
	}
	return expr.Var(n), nil
}

// parseObjConstComment recognizes WriteLP's lossless-round-trip
// comment "\ objective constant: K (add to the optimum)".
func parseObjConstComment(comment string) (int64, bool) {
	const prefix = "objective constant:"
	if !strings.HasPrefix(comment, prefix) {
		return 0, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(comment, prefix))
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func linMaxVar(l expr.Lin) expr.Var {
	return l.MaxVar()
}
