package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"licm/internal/workload"
)

// TestServeChaosMatrix is the serving half of the chaos suite: a live
// server with fault injection enabled is hammered with every
// site/action combination across several hit indexes, interleaved with
// clean queries, all concurrently. The assertion is the daemon's
// protocol contract, end to end over real HTTP: every single response
// is exact, proven-interval, sampled, or a structured typed error —
// no bare 5xx, no hung connection, no escaped panic. Client.Query
// already rejects any contract violation, so an err from it is a
// chaos finding.
//
// Faults are armed globally (internal/faultinject holds one plan at a
// time), so which in-flight solve actually absorbs an injection is
// scheduling-dependent — irrelevant here, since the contract must hold
// for every response no matter who got hit.
func TestServeChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow under -short")
	}
	s, client := testServer(t, func(c *Config) {
		c.AllowFaultHeader = true
		c.Workers = 4
	})
	specs := testSpecs(t, 4)

	var faults []string
	for _, site := range []string{"ctrl-batch", "lp-pivot"} {
		for _, action := range []string{"panic", "cancel", "jitter-nan", "jitter-inf"} {
			for _, hit := range []int{0, 3} {
				faults = append(faults, fmt.Sprintf("%s:%d:%s", site, hit, action))
			}
		}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	var panicsSeen, retriesSeen, sampledSeen int
	record := func(resp *Response, err error, label string) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", label, err))
			return
		}
		panicsSeen += resp.PanicsRecovered
		retriesSeen += resp.Retries
		if resp.Quality == "sampled" {
			sampledSeen++
		}
	}

	for i, fh := range faults {
		wg.Add(1)
		go func(i int, fh string) {
			defer wg.Done()
			c := &Client{BaseURL: client.BaseURL, FaultHeader: fh}
			sp := specs[i%len(specs)]
			resp, err := c.Query(ctx, &Request{Schema: workload.SpecSchema, Spec: sp})
			record(resp, err, fh)
		}(i, fh)
		// A clean query races every faulted one: injections must never
		// corrupt an innocent bystander's answer either.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Query(ctx, &Request{Spec: specs[(i+1)%len(specs)]})
			record(resp, err, "clean")
		}(i)
	}
	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d protocol-level failures under chaos:\n%s",
			len(failures), joinLines(failures))
	}
	// The matrix must actually have provoked the robustness machinery:
	// injected panics at hit 0 land in the first solve of some request,
	// so contained panics and perturbed-order retries must show up.
	if panicsSeen == 0 || retriesSeen == 0 {
		t.Errorf("chaos matrix provoked no contained panics (%d) or retries (%d) — injections not reaching the solver",
			panicsSeen, retriesSeen)
	}
	t.Logf("chaos: %d responses, %d panics contained, %d retries, %d sampled-rung answers",
		2*len(faults), panicsSeen, retriesSeen, sampledSeen)

	// Drain under pressure: fire one more volley and drain while it is
	// in flight. Every response must still satisfy the contract, and
	// the drain itself must complete cleanly.
	const volley = 4
	var wg2 sync.WaitGroup
	for i := 0; i < volley; i++ {
		wg2.Add(1)
		go func(i int) {
			defer wg2.Done()
			resp, err := client.Query(ctx, &Request{Spec: specs[i%len(specs)]})
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("drain volley: %v", err))
				mu.Unlock()
				return
			}
			if resp.Err != nil && resp.Err.Code != ErrDraining {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("drain volley: unexpected %s: %s", resp.Err.Code, resp.Err.Message))
				mu.Unlock()
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.reg.Counter("serve.requests").Value() < int64(2*len(faults)+volley) {
		if time.Now().After(deadline) {
			t.Fatal("drain volley never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	dctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	wg2.Wait()
	if len(failures) > 0 {
		t.Fatalf("%d protocol-level failures in the drain volley:\n%s",
			len(failures), joinLines(failures))
	}
}

func joinLines(ss []string) string {
	out := ""
	for _, s := range ss {
		out += "  " + s + "\n"
	}
	return out
}
