package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"licm/internal/workload"
)

// Client queries a running licmd over HTTP. The zero HTTPClient uses a
// dedicated client with a generous overall timeout; per-query budgets
// belong in Request.DeadlineMs (enforced server-side) or the context.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". A bare
	// host:port is accepted and gets the http scheme.
	BaseURL string
	// HTTPClient overrides the transport; nil uses a private client
	// with a 5-minute timeout.
	HTTPClient *http.Client
	// FaultHeader, when non-empty, is sent as X-Licm-Fault on every
	// query — the chaos harness's lever. Servers without
	// AllowFaultHeader reject it with a typed bad-request error.
	FaultHeader string
}

// base normalizes BaseURL into a scheme-qualified root without a
// trailing slash.
func (c *Client) base() string {
	b := strings.TrimRight(c.BaseURL, "/")
	if !strings.Contains(b, "://") {
		b = "http://" + b
	}
	return b
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

// Query answers one request. A transport failure returns an error; any
// HTTP response — success or typed error, whatever the status code —
// decodes into a Response that is then checked against the protocol
// contract, so a malformed or contract-violating server answer also
// surfaces as an error.
func (c *Client) Query(ctx context.Context, req *Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base()+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if c.FaultHeader != "" {
		hreq.Header.Set("X-Licm-Fault", c.FaultHeader)
	}
	hres, err := c.http().Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("serve: query %s: %w", req.Spec.Name(), err)
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("serve: read response: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("serve: status %d with undecodable body %q: %w",
			hres.StatusCode, trim(string(raw)), err)
	}
	if err := resp.Protocol(); err != nil {
		return nil, fmt.Errorf("serve: status %d: %w", hres.StatusCode, err)
	}
	return &resp, nil
}

// Answer adapts the client to workload.Config.Answer, making a remote
// licmd the answer source of a workload run: served answers, local
// ground truth and scoring. Typed server errors become run errors —
// the workload harness treats an errored query as a failed run, which
// is exactly right for a gate.
func (c *Client) Answer(sp workload.Spec) (*workload.Answer, error) {
	resp, err := c.Query(context.Background(), &Request{Schema: workload.SpecSchema, Spec: sp})
	if err != nil {
		return nil, err
	}
	if resp.Err != nil {
		return nil, fmt.Errorf("serve: %s: server error %s: %s", sp.Name(), resp.Err.Code, resp.Err.Message)
	}
	return &workload.Answer{
		Quality:              resp.Quality,
		RequestID:            resp.RequestID,
		Shed:                 resp.Shed,
		Lb:                   resp.Lb,
		Ub:                   resp.Ub,
		Infeasible:           resp.Infeasible,
		LatencyNs:            resp.LatencyNs,
		Vars:                 resp.Vars,
		Cons:                 resp.Cons,
		Components:           resp.Components,
		DistinctFingerprints: resp.DistinctFingerprints,
	}, nil
}

// Healthz reports whether the server's liveness endpoint answers 200.
func (c *Client) Healthz(ctx context.Context) error {
	return c.check(ctx, "/healthz")
}

// Readyz reports whether the server currently accepts new queries.
func (c *Client) Readyz(ctx context.Context) error {
	return c.check(ctx, "/readyz")
}

func (c *Client) check(ctx context.Context, path string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base()+path, nil)
	if err != nil {
		return err
	}
	hres, err := c.http().Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	io.Copy(io.Discard, io.LimitReader(hres.Body, 4096)) //nolint:errcheck // drain for keep-alive
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: %s: status %d", path, hres.StatusCode)
	}
	return nil
}
