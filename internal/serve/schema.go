package serve

import (
	"fmt"
	"strings"

	"licm/internal/workload"
)

// ResponseSchema versions the serve answer record. The shape mirrors
// the measured half of a licm-load/1 query record (quality, bounds,
// proven-ness, latency, problem shape), so the workload tooling can
// score a served stream the same way it scores local solves.
const ResponseSchema = "licm-serve/1"

// RequestIDHeader carries the request id on both directions of the
// query protocol: a client may propose an id (so a caller's own
// correlation id flows into the server's forensics), and the server
// always echoes the effective id on the response. Proposed ids are
// restricted to [A-Za-z0-9._-]{1,64}; anything else is rejected as a
// bad request rather than laundered into traces and dumps.
const RequestIDHeader = "X-Licm-Request-Id"

// maxRequestIDLen bounds accepted client-proposed request ids.
const maxRequestIDLen = 64

// ValidRequestID reports whether a client-proposed request id is
// acceptable on the wire and in trace attributes.
func ValidRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Request is the body of POST /v1/query: one licm-queries/1 spec plus
// per-request serving controls.
type Request struct {
	// Schema, when present, must be the licm-queries/1 tag the spec
	// line format carries; an empty schema is accepted so hand-written
	// requests stay ergonomic.
	Schema string `json:"schema,omitempty"`
	workload.Spec
	// DeadlineMs caps this query's end-to-end budget — admission wait
	// plus solve — in milliseconds. The server propagates it into the
	// solve context, so a request that overstays its budget degrades
	// down the anytime ladder instead of hogging a worker. 0 uses the
	// server's default; values above the server's maximum are clamped.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// Validate checks the request envelope and the embedded spec.
func (r *Request) Validate() error {
	if r.Schema != "" && r.Schema != workload.SpecSchema {
		return fmt.Errorf("serve: request schema %q, want %s", r.Schema, workload.SpecSchema)
	}
	if r.DeadlineMs < 0 {
		return fmt.Errorf("serve: negative deadline_ms %d", r.DeadlineMs)
	}
	return r.Spec.Validate()
}

// ErrCode classifies a structured serve error. The daemon's protocol
// contract is that every response is either a ladder-tagged answer
// (exact, proven-interval, sampled) or one of these typed errors —
// never a bare 5xx, a hung connection or an escaped panic.
type ErrCode string

const (
	// ErrBadRequest rejects an unparsable body or an invalid spec.
	ErrBadRequest ErrCode = "bad-request"
	// ErrDraining rejects new queries while the server drains after
	// SIGTERM; in-flight queries still complete.
	ErrDraining ErrCode = "draining"
	// ErrOverloaded rejects a query when even the sampled shed path is
	// unavailable (shed sampling disabled by configuration).
	ErrOverloaded ErrCode = "overloaded"
	// ErrInternal reports a contained failure: a handler panic caught
	// at the request boundary, or a ladder outcome with no usable
	// value on either side.
	ErrInternal ErrCode = "internal"
)

// httpStatus maps a typed error to its transport status code.
func (c ErrCode) httpStatus() int {
	switch c {
	case ErrBadRequest:
		return 400
	case ErrDraining, ErrOverloaded:
		return 503
	default:
		return 500
	}
}

// ErrorInfo is the structured error payload of a refused or failed
// query.
type ErrorInfo struct {
	Code    ErrCode `json:"code"`
	Message string  `json:"message"`
}

// Response is one answered (or refused) query. Exactly one of the two
// shapes is populated: a ladder answer (Quality set, Err nil) or a
// typed error (Err set, Quality empty).
type Response struct {
	Schema string `json:"schema"`
	ID     int    `json:"id"`
	Name   string `json:"name,omitempty"`
	// RequestID is the server-assigned (or client-proposed and
	// accepted) id of this request, echoed on the X-Licm-Request-Id
	// response header as well. It keys the server-side forensics: the
	// request_id attribute on every trace span the request produced,
	// the flight-recorder entry at /debug/licm/requests, and the
	// request_id field of a licm-load/1 record scored against this
	// server.
	RequestID string `json:"request_id,omitempty"`

	// Quality is the supervisor's ladder tag: exact, proven-interval
	// or sampled. The failed rung never crosses the wire — a ladder
	// outcome with no usable value surfaces as an ErrInternal typed
	// error instead.
	Quality string `json:"quality,omitempty"`
	// Lb/Ub are the reported bounds; Proven mirrors the ladder
	// semantics (true only for exact and proven-interval).
	Lb         int64 `json:"lb"`
	Ub         int64 `json:"ub"`
	Proven     bool  `json:"proven"`
	Infeasible bool  `json:"infeasible,omitempty"`
	// Shed marks an answer produced on the overload shed path: the
	// query skipped the solver queue entirely and was answered with a
	// Monte-Carlo estimate at the sampled ladder rung.
	Shed bool `json:"shed,omitempty"`

	// LatencyNs is the server-side answer wall time (solve or shed
	// estimate); QueueNs the admission wait before a worker picked the
	// query up.
	LatencyNs int64 `json:"latency_ns"`
	QueueNs   int64 `json:"queue_ns,omitempty"`

	// Problem shape and decomposition of the answering solve (zero on
	// the shed path, which never builds a solver problem).
	Vars                 int `json:"vars,omitempty"`
	Cons                 int `json:"cons,omitempty"`
	Components           int `json:"components,omitempty"`
	DistinctFingerprints int `json:"distinct_fingerprints,omitempty"`

	// Supervisor robustness counters for this request.
	Retries         int `json:"retries,omitempty"`
	PanicsRecovered int `json:"panics_recovered,omitempty"`

	// Err is the structured typed error of a refused or failed query.
	Err *ErrorInfo `json:"error,omitempty"`
}

// Protocol checks the daemon's response contract: schema tag present,
// and either a usable ladder answer or a fully-populated typed error.
// The chaos harness asserts this on every response it provokes.
func (r *Response) Protocol() error {
	if r.Schema != ResponseSchema {
		return fmt.Errorf("serve: response schema %q, want %s", r.Schema, ResponseSchema)
	}
	if r.Err != nil {
		if r.Err.Code == "" || r.Err.Message == "" {
			return fmt.Errorf("serve: typed error missing code or message: %+v", r.Err)
		}
		switch r.Err.Code {
		case ErrBadRequest, ErrDraining, ErrOverloaded, ErrInternal:
		default:
			return fmt.Errorf("serve: unknown error code %q", r.Err.Code)
		}
		if r.Quality != "" {
			return fmt.Errorf("serve: response carries both quality %q and error %q", r.Quality, r.Err.Code)
		}
		return nil
	}
	switch r.Quality {
	case "exact", "proven-interval", "sampled":
	default:
		return fmt.Errorf("serve: response quality %q is neither a servable ladder rung nor a typed error", r.Quality)
	}
	proven := r.Quality == "exact" || r.Quality == "proven-interval"
	if r.Proven != proven {
		return fmt.Errorf("serve: proven=%v inconsistent with quality %q", r.Proven, r.Quality)
	}
	if r.Proven && !r.Infeasible && r.Lb > r.Ub {
		return fmt.Errorf("serve: proven bounds inverted [%d, %d]", r.Lb, r.Ub)
	}
	if r.Shed && r.Quality != "sampled" {
		return fmt.Errorf("serve: shed answer with quality %q, want sampled", r.Quality)
	}
	return nil
}

// errResponse builds a typed-error response envelope.
func errResponse(id int, code ErrCode, format string, args ...any) *Response {
	return &Response{
		Schema: ResponseSchema,
		ID:     id,
		Err:    &ErrorInfo{Code: code, Message: fmt.Sprintf(format, args...)},
	}
}

// trim caps a message destined for a JSON error payload; injected
// panic values can drag arbitrary state along.
func trim(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) > 512 {
		s = s[:512] + "…"
	}
	return s
}
