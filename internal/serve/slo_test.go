package serve

import (
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"licm/internal/obs"
)

// newTestLogger captures structured log output for assertions.
func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

func TestParseSLO(t *testing.T) {
	cases := []struct {
		spec      string
		name      string
		budget    float64
		threshold time.Duration
	}{
		{"p99<=250ms", "latency_p99", 0.01, 250 * time.Millisecond},
		{"p50<=20ms", "latency_p50", 0.50, 20 * time.Millisecond},
		{"  p95<=1s ", "latency_p95", 0.05, time.Second},
		{"exact-rate>=0.9", "exact_rate", 0.1, 0},
		{"proven-rate>=0.95", "proven_rate", 0.05, 0},
	}
	for _, c := range cases {
		slo, err := ParseSLO(c.spec)
		if err != nil {
			t.Fatalf("ParseSLO(%q): %v", c.spec, err)
		}
		if slo.Name != c.name {
			t.Errorf("ParseSLO(%q).Name = %q, want %q", c.spec, slo.Name, c.name)
		}
		if slo.Threshold != c.threshold {
			t.Errorf("ParseSLO(%q).Threshold = %v, want %v", c.spec, slo.Threshold, c.threshold)
		}
		if diff := slo.Budget - c.budget; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ParseSLO(%q).Budget = %g, want %g", c.spec, slo.Budget, c.budget)
		}
	}

	for _, bad := range []string{
		"", "p99", "p0<=10ms", "p100<=10ms", "p99<=0s", "p99<=banana",
		"exact-rate>=1", "exact-rate>=0", "exact-rate>=-0.5", "proven-rate>=1.5",
		"latency<250ms", "exact-rate<=0.9",
	} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted, want error", bad)
		}
	}
}

func TestParseSLOsRejectsDuplicates(t *testing.T) {
	if _, err := ParseSLOs([]string{"p99<=1s", "p99<=2s"}); err == nil {
		t.Fatal("duplicate latency_p99 accepted")
	}
	slos, err := ParseSLOs([]string{"p99<=1s", "p50<=10ms", "exact-rate>=0.9"})
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 3 {
		t.Fatalf("got %d objectives, want 3", len(slos))
	}
}

func TestSLOViolationClassification(t *testing.T) {
	lat, _ := ParseSLO("p99<=100ms")
	if lat.violated(50*time.Millisecond, "exact", false) {
		t.Error("fast request violated latency SLO")
	}
	if !lat.violated(150*time.Millisecond, "exact", false) {
		t.Error("slow request did not violate latency SLO")
	}

	exact, _ := ParseSLO("exact-rate>=0.9")
	if exact.violated(0, "exact", false) {
		t.Error("exact answer violated exact-rate")
	}
	if !exact.violated(0, "proven-interval", false) {
		t.Error("proven-interval did not violate exact-rate")
	}
	if !exact.violated(0, "", true) {
		t.Error("failed request did not violate exact-rate")
	}

	proven, _ := ParseSLO("proven-rate>=0.9")
	if proven.violated(0, "proven-interval", false) {
		t.Error("proven-interval violated proven-rate")
	}
	if !proven.violated(0, "sampled", false) {
		t.Error("sampled did not violate proven-rate")
	}
}

func TestSLOTrackerBurnAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	slos, err := ParseSLOs([]string{"p50<=10ms", "exact-rate>=0.5"})
	if err != nil {
		t.Fatal(err)
	}
	var logs strings.Builder
	logger := newTestLogger(&logs)
	trk := newSLOTracker(slos, reg, logger)
	if trk == nil {
		t.Fatal("tracker is nil with objectives configured")
	}

	// Series are registered before any traffic.
	if got := reg.Gauge("slo.worst_burn_ppm").Value(); got != 0 {
		t.Fatalf("initial worst burn %d, want 0", got)
	}

	// 4 fast exact answers: no violations anywhere.
	for i := 0; i < 4; i++ {
		trk.observe(time.Millisecond, "exact", false)
	}
	if got := reg.Counter("slo.latency_p50.violations").Value(); got != 0 {
		t.Fatalf("latency violations %d, want 0", got)
	}
	if got := reg.Gauge("slo.worst_burn_ppm").Value(); got != 0 {
		t.Fatalf("worst burn %d, want 0", got)
	}

	// One slow sampled answer: violates both objectives. Latency burn:
	// violating fraction 1/5 over budget 0.5 = 0.4; exact-rate burn:
	// 1/5 over 0.5 = 0.4. Worst = 0.4 → 400000 ppm.
	trk.observe(time.Second, "sampled", false)
	if got := reg.Counter("slo.latency_p50.requests").Value(); got != 5 {
		t.Fatalf("latency requests %d, want 5", got)
	}
	if got := reg.Counter("slo.latency_p50.violations").Value(); got != 1 {
		t.Fatalf("latency violations %d, want 1", got)
	}
	if got := reg.Gauge("slo.worst_burn_ppm").Value(); got != 400_000 {
		t.Fatalf("worst burn %d ppm, want 400000", got)
	}
	if strings.Contains(logs.String(), "error budget burned") {
		t.Fatalf("warn logged before budget exhausted: %s", logs.String())
	}

	// Four more slow sampled answers: latency violating fraction 5/9
	// over budget 0.5 → burn > 1; the edge-triggered warn fires once.
	for i := 0; i < 4; i++ {
		trk.observe(time.Second, "sampled", false)
	}
	if got := reg.Gauge("slo.worst_burn_ppm").Value(); got <= 1_000_000 {
		t.Fatalf("worst burn %d ppm, want > 1e6", got)
	}
	if n := strings.Count(logs.String(), "error budget burned"); n != 2 {
		// Both objectives burned (latency and exact-rate), one warn each.
		t.Fatalf("got %d burn warnings, want 2: %s", n, logs.String())
	}
	before := strings.Count(logs.String(), "error budget burned")
	trk.observe(time.Second, "sampled", false)
	if n := strings.Count(logs.String(), "error budget burned"); n != before {
		t.Fatalf("burn warning re-fired while still burning (%d -> %d)", before, n)
	}

	// Nil tracker is inert.
	var nilTrk *sloTracker
	nilTrk.observe(time.Second, "failed", true)
}
