package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"licm/internal/obs"
	"licm/internal/solver"
	"licm/internal/workload"
)

// testWorkload is the small fixed-seed store every serve test runs
// against: large enough to exercise all query shapes, small enough
// that solves stay in the exact/proven band and the whole suite —
// faulted solves serialize on the global fault plan — survives the
// race detector on a single-core runner.
func testWorkload() workload.Config {
	opts := solver.DefaultOptions()
	opts.CompleteWitness = false
	return workload.Config{
		NumTransactions: 60,
		NumItems:        30,
		Scheme:          "k",
		K:               4,
		Seed:            3,
		MCSamples:       10,
		Solver:          opts,
		Metrics:         obs.NewRegistry(),
	}
}

// testServer starts a drained-on-cleanup server on a free port.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *Client) {
	t.Helper()
	cfg := Config{Workload: testWorkload()}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s, &Client{BaseURL: addr}
}

func testSpecs(t *testing.T, n int) []workload.Spec {
	t.Helper()
	specs := workload.GenerateSpecs(n, 7, 1000, 40)
	if len(specs) != n {
		t.Fatalf("GenerateSpecs returned %d specs, want %d", len(specs), n)
	}
	return specs
}

// TestServeEndToEndParity is the core serving contract: a served
// answer must be byte-identical in its proven figures to the local
// supervised solve of the same spec on the same store, and the health
// and metrics surfaces must hold up around it.
func TestServeEndToEndParity(t *testing.T) {
	_, client := testServer(t, nil)
	specs := testSpecs(t, 6)

	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := client.Readyz(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}

	// Local reference run on an identical config.
	cfg := testWorkload()
	local, err := workload.Execute(cfg, specs)
	if err != nil {
		t.Fatalf("local Execute: %v", err)
	}

	for i, sp := range specs {
		resp, err := client.Query(ctx, &Request{Schema: workload.SpecSchema, Spec: sp})
		if err != nil {
			t.Fatalf("query %s: %v", sp.Name(), err)
		}
		if resp.Err != nil {
			t.Fatalf("query %s: typed error %s: %s", sp.Name(), resp.Err.Code, resp.Err.Message)
		}
		lr := &local.Records[i]
		if resp.Quality != lr.Quality {
			t.Errorf("query %s: served quality %s, local %s", sp.Name(), resp.Quality, lr.Quality)
		}
		if resp.Proven && (resp.Lb != lr.Lb || resp.Ub != lr.Ub) {
			t.Errorf("query %s: served proven bounds [%d, %d], local [%d, %d]",
				sp.Name(), resp.Lb, resp.Ub, lr.Lb, lr.Ub)
		}
		if resp.Vars != lr.Vars || resp.Cons != lr.Cons {
			t.Errorf("query %s: served shape %d/%d, local %d/%d",
				sp.Name(), resp.Vars, resp.Cons, lr.Vars, lr.Cons)
		}
		if resp.LatencyNs <= 0 {
			t.Errorf("query %s: non-positive latency %d", sp.Name(), resp.LatencyNs)
		}
	}

	// The metrics endpoint must expose a parseable, valid exposition
	// that accounts for every request.
	hres, err := http.Get("http://" + client.BaseURL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer hres.Body.Close()
	fams, err := obs.ParseProm(hres.Body)
	if err != nil {
		t.Fatalf("metrics parse: %v", err)
	}
	if err := obs.ValidateProm(fams); err != nil {
		t.Fatalf("metrics validate: %v", err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "licm_serve_requests_total" {
			found = true
			if len(f.Samples) != 1 || f.Samples[0].Value < float64(len(specs)) {
				t.Errorf("licm_serve_requests_total = %+v, want >= %d", f.Samples, len(specs))
			}
		}
	}
	if !found {
		t.Error("metrics exposition lacks licm_serve_requests_total")
	}
}

// TestServeClientAnswer checks the workload adapter: a remote answer
// feeds a scored workload run whose records pass the same validation
// as local solves, with zero violations against local ground truth.
func TestServeClientAnswer(t *testing.T) {
	_, client := testServer(t, nil)
	specs := testSpecs(t, 4)

	cfg := testWorkload()
	cfg.Answer = client.Answer
	run, err := workload.Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute via target: %v", err)
	}
	if run.Summary.Violations != 0 {
		t.Fatalf("served run has %d consistency violations", run.Summary.Violations)
	}
	for i := range run.Records {
		if err := run.Records[i].Validate(); err != nil {
			t.Errorf("record %s: %v", run.Records[i].Name, err)
		}
	}
}

func TestServeBadRequests(t *testing.T) {
	_, client := testServer(t, nil)
	base := "http://" + client.BaseURL

	post := func(body, hdr string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set("X-Licm-Fault", hdr)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	check := func(res *http.Response, wantStatus int) {
		t.Helper()
		defer res.Body.Close()
		if res.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", res.StatusCode, wantStatus)
		}
		var resp Response
		if err := decodeJSON(res, &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := resp.Protocol(); err != nil {
			t.Fatalf("protocol: %v", err)
		}
		if resp.Err == nil || resp.Err.Code != ErrBadRequest {
			t.Fatalf("error %+v, want %s", resp.Err, ErrBadRequest)
		}
	}

	check(post("{not json", ""), 400)
	check(post(`{"schema":"wrong/1","id":1,"kind":"q1","agg":"count"}`, ""), 400)
	check(post(`{"id":1,"kind":"q9","agg":"count"}`, ""), 400)
	check(post(`{"id":1,"kind":"q1","agg":"count","bogus_field":1}`, ""), 400)
	// Fault injection refused loudly on a server that does not allow it.
	check(post(`{"id":1,"kind":"q1","agg":"count","x":3}`, "ctrl-batch:0:panic"), 400)

	// Wrong method.
	res, err := http.Get(base + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	check(res, 400)
}

func decodeJSON(res *http.Response, v any) error {
	defer res.Body.Close()
	return json.NewDecoder(res.Body).Decode(v)
}

// TestServeShedPath pins the overload behavior: with the admission
// queue at its watermark and no worker available, a query is never
// refused — it is answered inline at the sampled ladder rung, marked
// Shed, and still satisfies the protocol contract.
func TestServeShedPath(t *testing.T) {
	cfg := Config{Workload: testWorkload(),
		Workers:    -1, // no worker pool: admission state is fully test-controlled
		QueueDepth: 4, ShedWatermark: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Pin the queue at the watermark; with no workers it stays there.
	s.queue <- &task{}

	client := &Client{BaseURL: ts.URL}
	sp := testSpecs(t, 1)[0]
	resp, err := client.Query(context.Background(), &Request{Spec: sp})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.Err != nil {
		t.Fatalf("shed query got typed error %s: %s", resp.Err.Code, resp.Err.Message)
	}
	if !resp.Shed || resp.Quality != "sampled" {
		t.Fatalf("shed=%v quality=%s, want shed sampled answer", resp.Shed, resp.Quality)
	}
	if resp.Lb > resp.Ub {
		t.Fatalf("shed bounds inverted [%d, %d]", resp.Lb, resp.Ub)
	}

	// With shedding disabled by configuration, the same overload is a
	// typed overloaded error — still never a bare 503.
	cfg.ShedSamples = -1
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	s2.queue <- &task{}
	resp, err = (&Client{BaseURL: ts2.URL}).Query(context.Background(), &Request{Spec: sp})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.Err == nil || resp.Err.Code != ErrOverloaded {
		t.Fatalf("got %+v, want typed %s error", resp, ErrOverloaded)
	}
}

// TestServeDrain walks the SIGTERM lifecycle: readiness flips, queries
// admitted before the drain complete, queries after it get a typed
// draining error, and Drain is idempotent.
func TestServeDrain(t *testing.T) {
	cfg := Config{Workload: testWorkload()}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	client := &Client{BaseURL: addr}
	ctx := context.Background()
	specs := testSpecs(t, 3)

	// In-flight queries launched just before the drain must complete
	// with real answers.
	var wg sync.WaitGroup
	results := make([]*Response, len(specs))
	errs := make([]error, len(specs))
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Query(ctx, &Request{Spec: specs[i]})
		}(i)
	}

	// Wait until every query has reached the handler before draining,
	// so the listener is not torn down under connections still dialing.
	deadline := time.Now().Add(10 * time.Second)
	for s.reg.Counter("serve.requests").Value() < int64(len(specs)) {
		if time.Now().After(deadline) {
			t.Fatal("queries never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	dctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("in-flight query %d: %v", i, errs[i])
		}
		// A query that raced the drain may be refused with the typed
		// draining error; one that was admitted must be answered.
		if results[i].Err != nil && results[i].Err.Code != ErrDraining {
			t.Errorf("in-flight query %d: unexpected error %+v", i, results[i].Err)
		}
	}

	// Liveness stays up through the drain; readiness is down.
	if err := client.Healthz(ctx); err == nil {
		// The HTTP intake is closed after drain, so healthz now fails
		// at the transport level — both outcomes (typed 503 before
		// close, transport error after) are acceptable here. What must
		// never happen is readiness still reporting OK:
		if rerr := client.Readyz(ctx); rerr == nil {
			t.Error("readyz still OK after drain")
		}
	}

	// New queries are refused with the typed draining error while the
	// listener still answers, and Drain is idempotent.
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestServeDrainRefusesNewQueries pins the typed refusal while the
// intake is still open: drain with nothing in flight, then query.
func TestServeDrainRefusesNewQueries(t *testing.T) {
	cfg := Config{Workload: testWorkload()}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := client.Query(context.Background(), &Request{Spec: testSpecs(t, 1)[0]})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.Err == nil || resp.Err.Code != ErrDraining {
		t.Fatalf("got %+v, want typed %s error", resp, ErrDraining)
	}
	if err := client.Readyz(context.Background()); err == nil {
		t.Error("readyz OK on a draining server")
	}
	if err := client.Healthz(context.Background()); err != nil {
		t.Errorf("healthz failed on a draining server: %v", err)
	}
}

// TestServeDeadlinePropagation: a request-supplied deadline reaches
// the solve context. With a 1ms budget the answer may still complete
// exact (tiny store) or degrade to sampled — both are fine; what is
// pinned is that the response is a protocol-valid answer either way,
// and that an absurd deadline is clamped rather than honored.
func TestServeDeadlinePropagation(t *testing.T) {
	_, client := testServer(t, func(c *Config) { c.MaxDeadline = 5 * time.Second })
	sp := testSpecs(t, 1)[0]
	for _, ms := range []int64{1, 1 << 40} {
		resp, err := client.Query(context.Background(), &Request{Spec: sp, DeadlineMs: ms})
		if err != nil {
			t.Fatalf("deadline_ms=%d: %v", ms, err)
		}
		if resp.Err != nil {
			t.Fatalf("deadline_ms=%d: typed error %+v", ms, resp.Err)
		}
	}
}
