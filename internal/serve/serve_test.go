package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"licm/internal/obs"
	"licm/internal/solver"
	"licm/internal/workload"
)

// testWorkload is the small fixed-seed store every serve test runs
// against: large enough to exercise all query shapes, small enough
// that solves stay in the exact/proven band and the whole suite —
// faulted solves serialize on the global fault plan — survives the
// race detector on a single-core runner.
func testWorkload() workload.Config {
	opts := solver.DefaultOptions()
	opts.CompleteWitness = false
	return workload.Config{
		NumTransactions: 60,
		NumItems:        30,
		Scheme:          "k",
		K:               4,
		Seed:            3,
		MCSamples:       10,
		Solver:          opts,
		Metrics:         obs.NewRegistry(),
	}
}

// testServer starts a drained-on-cleanup server on a free port.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *Client) {
	t.Helper()
	cfg := Config{Workload: testWorkload()}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s, &Client{BaseURL: addr}
}

func testSpecs(t *testing.T, n int) []workload.Spec {
	t.Helper()
	specs := workload.GenerateSpecs(n, 7, 1000, 40)
	if len(specs) != n {
		t.Fatalf("GenerateSpecs returned %d specs, want %d", len(specs), n)
	}
	return specs
}

// TestServeEndToEndParity is the core serving contract: a served
// answer must be byte-identical in its proven figures to the local
// supervised solve of the same spec on the same store, and the health
// and metrics surfaces must hold up around it.
func TestServeEndToEndParity(t *testing.T) {
	_, client := testServer(t, nil)
	specs := testSpecs(t, 6)

	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := client.Readyz(ctx); err != nil {
		t.Fatalf("readyz: %v", err)
	}

	// Local reference run on an identical config.
	cfg := testWorkload()
	local, err := workload.Execute(cfg, specs)
	if err != nil {
		t.Fatalf("local Execute: %v", err)
	}

	for i, sp := range specs {
		resp, err := client.Query(ctx, &Request{Schema: workload.SpecSchema, Spec: sp})
		if err != nil {
			t.Fatalf("query %s: %v", sp.Name(), err)
		}
		if resp.Err != nil {
			t.Fatalf("query %s: typed error %s: %s", sp.Name(), resp.Err.Code, resp.Err.Message)
		}
		lr := &local.Records[i]
		if resp.Quality != lr.Quality {
			t.Errorf("query %s: served quality %s, local %s", sp.Name(), resp.Quality, lr.Quality)
		}
		if resp.Proven && (resp.Lb != lr.Lb || resp.Ub != lr.Ub) {
			t.Errorf("query %s: served proven bounds [%d, %d], local [%d, %d]",
				sp.Name(), resp.Lb, resp.Ub, lr.Lb, lr.Ub)
		}
		if resp.Vars != lr.Vars || resp.Cons != lr.Cons {
			t.Errorf("query %s: served shape %d/%d, local %d/%d",
				sp.Name(), resp.Vars, resp.Cons, lr.Vars, lr.Cons)
		}
		if resp.LatencyNs <= 0 {
			t.Errorf("query %s: non-positive latency %d", sp.Name(), resp.LatencyNs)
		}
	}

	// The metrics endpoint must expose a parseable, valid exposition
	// that accounts for every request.
	hres, err := http.Get("http://" + client.BaseURL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer hres.Body.Close()
	fams, err := obs.ParseProm(hres.Body)
	if err != nil {
		t.Fatalf("metrics parse: %v", err)
	}
	if err := obs.ValidateProm(fams); err != nil {
		t.Fatalf("metrics validate: %v", err)
	}
	found := false
	for _, f := range fams {
		if f.Name == "licm_serve_requests_total" {
			found = true
			if len(f.Samples) != 1 || f.Samples[0].Value < float64(len(specs)) {
				t.Errorf("licm_serve_requests_total = %+v, want >= %d", f.Samples, len(specs))
			}
		}
	}
	if !found {
		t.Error("metrics exposition lacks licm_serve_requests_total")
	}
}

// TestServeClientAnswer checks the workload adapter: a remote answer
// feeds a scored workload run whose records pass the same validation
// as local solves, with zero violations against local ground truth.
func TestServeClientAnswer(t *testing.T) {
	_, client := testServer(t, nil)
	specs := testSpecs(t, 4)

	cfg := testWorkload()
	cfg.Answer = client.Answer
	run, err := workload.Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute via target: %v", err)
	}
	if run.Summary.Violations != 0 {
		t.Fatalf("served run has %d consistency violations", run.Summary.Violations)
	}
	for i := range run.Records {
		if err := run.Records[i].Validate(); err != nil {
			t.Errorf("record %s: %v", run.Records[i].Name, err)
		}
	}
}

func TestServeBadRequests(t *testing.T) {
	_, client := testServer(t, nil)
	base := "http://" + client.BaseURL

	post := func(body, hdr string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/query", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if hdr != "" {
			req.Header.Set("X-Licm-Fault", hdr)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	check := func(res *http.Response, wantStatus int) {
		t.Helper()
		defer res.Body.Close()
		if res.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", res.StatusCode, wantStatus)
		}
		var resp Response
		if err := decodeJSON(res, &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := resp.Protocol(); err != nil {
			t.Fatalf("protocol: %v", err)
		}
		if resp.Err == nil || resp.Err.Code != ErrBadRequest {
			t.Fatalf("error %+v, want %s", resp.Err, ErrBadRequest)
		}
	}

	check(post("{not json", ""), 400)
	check(post(`{"schema":"wrong/1","id":1,"kind":"q1","agg":"count"}`, ""), 400)
	check(post(`{"id":1,"kind":"q9","agg":"count"}`, ""), 400)
	check(post(`{"id":1,"kind":"q1","agg":"count","bogus_field":1}`, ""), 400)
	// Fault injection refused loudly on a server that does not allow it.
	check(post(`{"id":1,"kind":"q1","agg":"count","x":3}`, "ctrl-batch:0:panic"), 400)

	// Wrong method.
	res, err := http.Get(base + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	check(res, 400)
}

func decodeJSON(res *http.Response, v any) error {
	defer res.Body.Close()
	return json.NewDecoder(res.Body).Decode(v)
}

// TestServeShedPath pins the overload behavior: with the admission
// queue at its watermark and no worker available, a query is never
// refused — it is answered inline at the sampled ladder rung, marked
// Shed, and still satisfies the protocol contract.
func TestServeShedPath(t *testing.T) {
	cfg := Config{Workload: testWorkload(),
		Workers:    -1, // no worker pool: admission state is fully test-controlled
		QueueDepth: 4, ShedWatermark: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Pin the queue at the watermark; with no workers it stays there.
	s.queue <- &task{}

	client := &Client{BaseURL: ts.URL}
	sp := testSpecs(t, 1)[0]
	resp, err := client.Query(context.Background(), &Request{Spec: sp})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.Err != nil {
		t.Fatalf("shed query got typed error %s: %s", resp.Err.Code, resp.Err.Message)
	}
	if !resp.Shed || resp.Quality != "sampled" {
		t.Fatalf("shed=%v quality=%s, want shed sampled answer", resp.Shed, resp.Quality)
	}
	if resp.Lb > resp.Ub {
		t.Fatalf("shed bounds inverted [%d, %d]", resp.Lb, resp.Ub)
	}

	// With shedding disabled by configuration, the same overload is a
	// typed overloaded error — still never a bare 503.
	cfg.ShedSamples = -1
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	s2.queue <- &task{}
	resp, err = (&Client{BaseURL: ts2.URL}).Query(context.Background(), &Request{Spec: sp})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.Err == nil || resp.Err.Code != ErrOverloaded {
		t.Fatalf("got %+v, want typed %s error", resp, ErrOverloaded)
	}
}

// TestServeDrain walks the SIGTERM lifecycle: readiness flips, queries
// admitted before the drain complete, queries after it get a typed
// draining error, and Drain is idempotent.
func TestServeDrain(t *testing.T) {
	cfg := Config{Workload: testWorkload()}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	client := &Client{BaseURL: addr}
	ctx := context.Background()
	specs := testSpecs(t, 3)

	// In-flight queries launched just before the drain must complete
	// with real answers.
	var wg sync.WaitGroup
	results := make([]*Response, len(specs))
	errs := make([]error, len(specs))
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Query(ctx, &Request{Spec: specs[i]})
		}(i)
	}

	// Wait until every query has reached the handler before draining,
	// so the listener is not torn down under connections still dialing.
	deadline := time.Now().Add(10 * time.Second)
	for s.reg.Counter("serve.requests").Value() < int64(len(specs)) {
		if time.Now().After(deadline) {
			t.Fatal("queries never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	dctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i := range specs {
		if errs[i] != nil {
			t.Fatalf("in-flight query %d: %v", i, errs[i])
		}
		// A query that raced the drain may be refused with the typed
		// draining error; one that was admitted must be answered.
		if results[i].Err != nil && results[i].Err.Code != ErrDraining {
			t.Errorf("in-flight query %d: unexpected error %+v", i, results[i].Err)
		}
	}

	// Liveness stays up through the drain; readiness is down.
	if err := client.Healthz(ctx); err == nil {
		// The HTTP intake is closed after drain, so healthz now fails
		// at the transport level — both outcomes (typed 503 before
		// close, transport error after) are acceptable here. What must
		// never happen is readiness still reporting OK:
		if rerr := client.Readyz(ctx); rerr == nil {
			t.Error("readyz still OK after drain")
		}
	}

	// New queries are refused with the typed draining error while the
	// listener still answers, and Drain is idempotent.
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestServeDrainRefusesNewQueries pins the typed refusal while the
// intake is still open: drain with nothing in flight, then query.
func TestServeDrainRefusesNewQueries(t *testing.T) {
	cfg := Config{Workload: testWorkload()}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL}

	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err := client.Query(context.Background(), &Request{Spec: testSpecs(t, 1)[0]})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if resp.Err == nil || resp.Err.Code != ErrDraining {
		t.Fatalf("got %+v, want typed %s error", resp, ErrDraining)
	}
	if err := client.Readyz(context.Background()); err == nil {
		t.Error("readyz OK on a draining server")
	}
	if err := client.Healthz(context.Background()); err != nil {
		t.Errorf("healthz failed on a draining server: %v", err)
	}
}

// TestServeDeadlinePropagation: a request-supplied deadline reaches
// the solve context. With a 1ms budget the answer may still complete
// exact (tiny store) or degrade to sampled — both are fine; what is
// pinned is that the response is a protocol-valid answer either way,
// and that an absurd deadline is clamped rather than honored.
func TestServeDeadlinePropagation(t *testing.T) {
	_, client := testServer(t, func(c *Config) { c.MaxDeadline = 5 * time.Second })
	sp := testSpecs(t, 1)[0]
	for _, ms := range []int64{1, 1 << 40} {
		resp, err := client.Query(context.Background(), &Request{Spec: sp, DeadlineMs: ms})
		if err != nil {
			t.Fatalf("deadline_ms=%d: %v", ms, err)
		}
		if resp.Err != nil {
			t.Fatalf("deadline_ms=%d: typed error %+v", ms, resp.Err)
		}
	}
}

// TestServeRequestIDs pins the correlation contract of the request-id
// layer: every response carries a valid id (body and header agree), a
// valid client-proposed id is adopted verbatim, ids are distinct
// across requests, and an invalid proposed id is a typed bad-request
// — never silently laundered into traces.
func TestServeRequestIDs(t *testing.T) {
	_, client := testServer(t, nil)
	base := "http://" + client.BaseURL
	body, err := json.Marshal(&Request{Schema: workload.SpecSchema, Spec: testSpecs(t, 1)[0]})
	if err != nil {
		t.Fatal(err)
	}

	post := func(proposed string) (string, *Response) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if proposed != "" {
			req.Header.Set(RequestIDHeader, proposed)
		}
		hres, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		hdr := hres.Header.Get(RequestIDHeader)
		var resp Response
		if err := decodeJSON(hres, &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return hdr, &resp
	}

	hdr, resp := post("")
	if resp.Err != nil {
		t.Fatalf("query: typed error %+v", resp.Err)
	}
	if resp.RequestID == "" || !ValidRequestID(resp.RequestID) {
		t.Fatalf("server-assigned request id %q is empty or invalid", resp.RequestID)
	}
	if hdr != resp.RequestID {
		t.Errorf("header id %q != body id %q", hdr, resp.RequestID)
	}
	first := resp.RequestID

	_, resp = post("")
	if resp.RequestID == first {
		t.Errorf("two requests share id %q", first)
	}

	hdr, resp = post("client-chosen.id-1")
	if resp.RequestID != "client-chosen.id-1" || hdr != resp.RequestID {
		t.Errorf("proposed id not adopted: body %q header %q", resp.RequestID, hdr)
	}

	for _, bad := range []string{"has space", strings.Repeat("x", maxRequestIDLen+1), "no/slash"} {
		hdr, resp = post(bad)
		if resp.Err == nil || resp.Err.Code != ErrBadRequest {
			t.Errorf("proposed id %q: got %+v, want typed %s", bad, resp.Err, ErrBadRequest)
		}
		// Even the rejection is correlatable — by a server-assigned id.
		if resp.RequestID == "" || resp.RequestID == bad || hdr != resp.RequestID {
			t.Errorf("rejection of %q carries id %q (header %q)", bad, resp.RequestID, hdr)
		}
	}
}

// TestServeForensicsCorrelation is the end-to-end acceptance flow of
// the forensics layer, on a fixed-seed store: run a scored workload
// against the server with every solve deadline-starved so it degrades,
// then fetch /debug/licm/requests over HTTP and require that each
// scored record's request id resolves to a flight-recorder entry whose
// span tree agrees with the record's latency — the solve span is
// bracketed by the scored latency, which is bracketed by the request
// envelope. Also checks SLO burn for the degraded run and the detail
// and HTML views of the endpoint.
func TestServeForensicsCorrelation(t *testing.T) {
	slos, err := ParseSLOs([]string{"p99<=1h", "exact-rate>=0.5"})
	if err != nil {
		t.Fatal(err)
	}
	srv, client := testServer(t, func(c *Config) {
		// Every solve starts with its budget already spent, so the
		// supervisor deterministically lands on the sampled rung: a
		// degraded, deadline-violated request for the recorder.
		c.DefaultDeadline = time.Nanosecond
		c.SLOs = slos
	})
	specs := testSpecs(t, 4)
	cfg := testWorkload()
	cfg.Answer = client.Answer
	run, err := workload.Execute(cfg, specs)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if run.Summary.Violations != 0 {
		t.Fatalf("served run has %d consistency violations", run.Summary.Violations)
	}
	seen := map[string]bool{}
	for i := range run.Records {
		rec := &run.Records[i]
		if rec.RequestID == "" {
			t.Fatalf("record %s carries no request id", rec.Name)
		}
		if seen[rec.RequestID] {
			t.Fatalf("duplicate request id %s", rec.RequestID)
		}
		seen[rec.RequestID] = true
		if rec.Quality == "exact" {
			t.Fatalf("record %s stayed exact under a spent deadline", rec.Name)
		}
	}

	hres, err := http.Get("http://" + client.BaseURL + "/debug/licm/requests")
	if err != nil {
		t.Fatalf("fetch recorder: %v", err)
	}
	d, err := ReadDump(hres.Body)
	hres.Body.Close()
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}

	for i := range run.Records {
		rec := &run.Records[i]
		var entry *RecordedRequest
		for j := range d.Entries {
			if d.Entries[j].RequestID == rec.RequestID {
				entry = &d.Entries[j]
				break
			}
		}
		if entry == nil {
			t.Fatalf("record %s (request %s) has no flight-recorder entry among %d",
				rec.Name, rec.RequestID, len(d.Entries))
		}
		if !hasBadge(entry.Badges, BadgeDegraded) || !hasBadge(entry.Badges, BadgeDeadlineViolated) {
			t.Errorf("entry %s badges %v, want degraded and deadline-violated", rec.RequestID, entry.Badges)
		}
		if entry.Response == nil || entry.Response.RequestID != rec.RequestID {
			t.Fatalf("entry %s retains no matching response", rec.RequestID)
		}

		// The span tree is self-contained and request-stamped.
		if len(entry.Events) == 0 {
			t.Fatalf("entry %s retains no trace events", rec.RequestID)
		}
		var superNs, requestNs int64
		for _, ev := range entry.Events {
			if got := ev.Attrs["request_id"]; got != rec.RequestID {
				t.Fatalf("entry %s holds event %s stamped %v", rec.RequestID, ev.Name, got)
			}
			if ev.Kind == obs.KindSpanEnd {
				switch ev.Name {
				case "super.solve":
					superNs = ev.DurNs
				case "serve.request":
					requestNs = ev.DurNs
				}
			}
		}
		if superNs <= 0 || requestNs <= 0 {
			t.Fatalf("entry %s span tree lacks super.solve/serve.request ends (%d events)",
				rec.RequestID, len(entry.Events))
		}

		// Latency agreement: solve span <= scored record latency <=
		// request envelope, all from the same monotonic measurements
		// (1ms slack for clock rounding), and the envelope overhead
		// above the solve is bounded — a unit mismatch or a swapped
		// correlation would blow these brackets apart.
		slack := int64(time.Millisecond)
		if superNs > rec.LatencyNs+slack {
			t.Errorf("entry %s: solve span %s exceeds scored latency %s",
				rec.RequestID, time.Duration(superNs), time.Duration(rec.LatencyNs))
		}
		if rec.LatencyNs > entry.TotalNs+slack {
			t.Errorf("entry %s: scored latency %s exceeds request envelope %s",
				rec.RequestID, time.Duration(rec.LatencyNs), time.Duration(entry.TotalNs))
		}
		if overhead := entry.TotalNs - superNs; overhead < 0 || overhead > int64(2*time.Second) {
			t.Errorf("entry %s: envelope-minus-solve overhead %s out of bounds",
				rec.RequestID, time.Duration(overhead))
		}
	}

	// The all-sampled run torches the exact-rate budget (burn 1/0.5 = 2)
	// while the 1h latency objective stays green.
	if got := srv.reg.Gauge("slo.exact_rate.burn_ppm").Value(); got < 1_000_000 {
		t.Errorf("exact-rate burn %d ppm, want >= 1e6 on an all-degraded run", got)
	}
	if got := srv.reg.Counter("slo.latency_p99.violations").Value(); got != 0 {
		t.Errorf("latency violations %d, want 0 under a 1h objective", got)
	}

	// Detail and HTML views answer for a retained id.
	id := run.Records[0].RequestID
	for _, q := range []string{"?id=" + id, "?format=html"} {
		res, err := http.Get("http://" + client.BaseURL + "/debug/licm/requests" + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Errorf("GET %s: status %d", q, res.StatusCode)
		}
	}
	res, err := http.Get("http://" + client.BaseURL + "/debug/licm/requests?id=absent")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Errorf("absent id: status %d, want 404", res.StatusCode)
	}
}
