package serve

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// entry builds a minimal recorded request for recorder tests.
func entry(id string, totalNs int64, mutate func(*RecordedRequest)) *RecordedRequest {
	e := &RecordedRequest{
		RequestID: id,
		Start:     time.Unix(0, 0),
		TotalNs:   totalNs,
		Response:  &Response{Schema: ResponseSchema, RequestID: id, Quality: "exact"},
	}
	if mutate != nil {
		mutate(e)
	}
	return e
}

func TestRecorderBadges(t *testing.T) {
	rec := NewRecorder(4)
	rec.Observe(entry("fast-exact", 10, nil))
	rec.Observe(entry("degraded", 20, func(e *RecordedRequest) {
		e.Response.Quality = "sampled"
	}))
	rec.Observe(entry("shed", 30, func(e *RecordedRequest) {
		e.Response.Quality = "sampled"
		e.Response.Shed = true
	}))
	rec.Observe(entry("panicked", 40, func(e *RecordedRequest) {
		e.Response.PanicsRecovered = 1
	}))
	rec.Observe(entry("late", 50, func(e *RecordedRequest) {
		e.DeadlineNs = 25
	}))

	want := map[string][]string{
		"fast-exact": {BadgeSlowest},
		"degraded":   {BadgeDegraded, BadgeSlowest},
		"shed":       {BadgeDegraded, BadgeShed, BadgeSlowest},
		"panicked":   {BadgePanicked, BadgeSlowest},
		// The worst-4 set was full when "late" arrived but it is the
		// slowest request seen, so it evicts "fast-exact".
		"late": {BadgeDeadlineViolated, BadgeSlowest},
	}
	snap := rec.Snapshot()
	got := map[string][]string{}
	for _, e := range snap {
		got[e.RequestID] = e.Badges
	}
	if _, ok := got["fast-exact"]; ok {
		t.Error("fast-exact survived eviction from a full worst-N set with no badge")
	}
	for id, badges := range want {
		if id == "fast-exact" {
			continue
		}
		if !equalStrings(got[id], badges) {
			t.Errorf("%s badges = %v, want %v", id, got[id], badges)
		}
	}
	if len(snap) != 4 {
		t.Errorf("retained %d entries, want 4", len(snap))
	}
	// Slowest-first ordering.
	for i := 1; i < len(snap); i++ {
		if snap[i].TotalNs > snap[i-1].TotalNs {
			t.Errorf("snapshot not slowest-first at %d: %d after %d", i, snap[i].TotalNs, snap[i-1].TotalNs)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := append([]string(nil), a...), append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestRecorderConcurrentWorstN is the race-mode forensic guarantee: a
// worker pool hammering Observe while snapshots and dumps are drawn
// concurrently must not lose any of the N slowest requests, and the
// final drain-time dump must be clean. Run with -race.
func TestRecorderConcurrentWorstN(t *testing.T) {
	const (
		depth      = 8
		workers    = 8
		perWorker  = 200
		totalCount = workers * perWorker
	)
	rec := NewRecorder(depth)

	// Pre-assign every request a distinct latency so "the N slowest"
	// is unambiguous regardless of interleaving.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: snapshots and dumps drawn mid-flight must
	// never observe torn state (the race detector checks the rest).
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = rec.Snapshot()
				var buf bytes.Buffer
				if err := rec.WriteDump(&buf); err != nil {
					t.Errorf("mid-flight dump: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n := int64(w*perWorker + i + 1)
				e := entry(fmt.Sprintf("r-%d", n), n, nil)
				if n%7 == 0 {
					e.Response.Quality = "sampled"
				}
				rec.Observe(e)
			}
		}(w)
	}
	// Wait for the writers, then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	// Every one of the depth slowest requests (latencies totalCount,
	// totalCount-1, ...) must be retained with the slowest badge.
	snap := rec.Snapshot()
	byID := map[string]RecordedRequest{}
	for _, e := range snap {
		byID[e.RequestID] = e
	}
	for n := totalCount; n > totalCount-depth; n-- {
		id := fmt.Sprintf("r-%d", n)
		e, ok := byID[id]
		if !ok {
			t.Fatalf("slowest entry %s (latency %d) lost under concurrency", id, n)
		}
		if !hasBadge(e.Badges, BadgeSlowest) {
			t.Errorf("%s retained without the slowest badge: %v", id, e.Badges)
		}
	}

	// Clean dump after the drain: round-trips through the reader.
	var buf bytes.Buffer
	if err := rec.WriteDump(&buf); err != nil {
		t.Fatalf("WriteDump: %v", err)
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("ReadDump: %v", err)
	}
	if d.Schema != RequestsSchema || d.Depth != depth {
		t.Errorf("dump header = %q/%d, want %q/%d", d.Schema, d.Depth, RequestsSchema, depth)
	}
	if len(d.Entries) != len(snap) {
		t.Errorf("dump holds %d entries, snapshot %d", len(d.Entries), len(snap))
	}
}

func TestRecorderNilIsInert(t *testing.T) {
	var rec *Recorder
	rec.Observe(entry("x", 1, nil))
	if got := rec.Snapshot(); got != nil {
		t.Errorf("nil Snapshot = %v, want nil", got)
	}
	var buf bytes.Buffer
	if err := rec.WriteDump(&buf); err != nil {
		t.Fatalf("nil WriteDump: %v", err)
	}
	d, err := ReadDump(&buf)
	if err != nil {
		t.Fatalf("nil dump round-trip: %v", err)
	}
	if len(d.Entries) != 0 || d.Depth != 0 {
		t.Errorf("nil dump = %d entries depth %d, want empty", len(d.Entries), d.Depth)
	}

	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("nil recorder handler status %d, want 404", resp.StatusCode)
	}
}

func TestReadDumpRejectsForeignSchemas(t *testing.T) {
	if _, err := ReadDump(strings.NewReader(`{"schema":"licm-bench/1"}`)); err == nil {
		t.Error("licm-bench/1 accepted as a requests dump")
	}
	if _, err := ReadDump(strings.NewReader(`{"schema":"licm-requests/9"}`)); err == nil {
		t.Error("future schema major accepted")
	}
	if _, err := ReadDump(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
