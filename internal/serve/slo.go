package serve

import (
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"licm/internal/obs"
)

// SLO is one declarative serving objective. Two kinds exist:
//
//   - Latency: "p99<=250ms" — at most 1% of answered requests may take
//     longer than 250ms end-to-end (quantile q ≤ D is equivalent to a
//     violation budget of 1-q).
//   - Quality rate: "exact-rate>=0.9" / "proven-rate>=0.95" — at least
//     that fraction of answered requests must land on the exact rung
//     (respectively a proven rung: exact or proven-interval), i.e. the
//     violation budget is 1 minus the target rate. The paper's answer
//     model makes quality a first-class observable, so it gets the
//     same error-budget treatment as latency.
//
// Burn is the classic error-budget ratio: observed violation fraction
// divided by the allowed fraction. Burn < 1 means the objective holds;
// burn ≥ 1 means the budget is spent.
type SLO struct {
	// Name is the metric-safe identifier derived from the spec string
	// (e.g. "latency_p99", "exact_rate"), used in licm_slo_* series.
	Name string
	// Spec is the original declaration, echoed in logs.
	Spec string
	// Threshold is the latency cutoff for latency SLOs (0 for rate
	// SLOs).
	Threshold time.Duration
	// Budget is the allowed violation fraction in (0, 1].
	Budget float64
	// violated classifies one answered request against the objective.
	violated func(latency time.Duration, quality string, failed bool) bool
}

// ParseSLO parses one objective declaration:
//
//	pNN<=DUR        latency quantile, e.g. p99<=250ms, p50<=20ms
//	exact-rate>=F   exact-rung rate, e.g. exact-rate>=0.9
//	proven-rate>=F  proven (exact or proven-interval) rate
func ParseSLO(s string) (SLO, error) {
	spec := strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(spec, "p") && strings.Contains(spec, "<="):
		parts := strings.SplitN(spec, "<=", 2)
		q, err := strconv.Atoi(strings.TrimPrefix(parts[0], "p"))
		if err != nil || q < 1 || q > 99 {
			return SLO{}, fmt.Errorf("serve: slo %q: quantile must be p1..p99", s)
		}
		d, err := time.ParseDuration(parts[1])
		if err != nil || d <= 0 {
			return SLO{}, fmt.Errorf("serve: slo %q: bad latency threshold %q", s, parts[1])
		}
		return SLO{
			Name:      fmt.Sprintf("latency_p%d", q),
			Spec:      spec,
			Threshold: d,
			Budget:    1 - float64(q)/100,
			violated: func(lat time.Duration, _ string, _ bool) bool {
				return lat > d
			},
		}, nil
	case strings.HasPrefix(spec, "exact-rate>="):
		f, err := parseRate(strings.TrimPrefix(spec, "exact-rate>="))
		if err != nil {
			return SLO{}, fmt.Errorf("serve: slo %q: %w", s, err)
		}
		return SLO{
			Name:   "exact_rate",
			Spec:   spec,
			Budget: 1 - f,
			violated: func(_ time.Duration, quality string, failed bool) bool {
				return failed || quality != "exact"
			},
		}, nil
	case strings.HasPrefix(spec, "proven-rate>="):
		f, err := parseRate(strings.TrimPrefix(spec, "proven-rate>="))
		if err != nil {
			return SLO{}, fmt.Errorf("serve: slo %q: %w", s, err)
		}
		return SLO{
			Name:   "proven_rate",
			Spec:   spec,
			Budget: 1 - f,
			violated: func(_ time.Duration, quality string, failed bool) bool {
				return failed || (quality != "exact" && quality != "proven-interval")
			},
		}, nil
	default:
		return SLO{}, fmt.Errorf("serve: slo %q: want pNN<=DUR, exact-rate>=F or proven-rate>=F", s)
	}
}

// parseRate parses a target rate in (0, 1).
func parseRate(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f <= 0 || f >= 1 {
		return 0, fmt.Errorf("rate %q must be in (0, 1)", s)
	}
	return f, nil
}

// ParseSLOs parses a list of declarations, rejecting duplicate names
// (two objectives writing the same licm_slo_* series would clobber
// each other silently).
func ParseSLOs(specs []string) ([]SLO, error) {
	var out []SLO
	seen := map[string]bool{}
	for _, s := range specs {
		slo, err := ParseSLO(s)
		if err != nil {
			return nil, err
		}
		if seen[slo.Name] {
			return nil, fmt.Errorf("serve: duplicate slo %s (from %q)", slo.Name, s)
		}
		seen[slo.Name] = true
		out = append(out, slo)
	}
	return out, nil
}

// sloTracker accumulates error-budget burn per objective over the
// server's lifetime and publishes the licm_slo_* series:
//
//	licm_slo_<name>_requests_total    answered requests counted
//	licm_slo_<name>_violations_total  requests that violated the objective
//	licm_slo_<name>_burn_ppm          burn ratio × 1e6 (gauge; 1e6 = budget spent)
//	licm_slo_worst_burn_ppm           max burn across objectives (dashboard ring)
//
// Crossing burn ≥ 1 emits one structured warn record (edge-triggered,
// re-armed when burn falls back under ½) so log pipelines see budget
// exhaustion without a firehose.
type sloTracker struct {
	slos []SLO
	reg  *obs.Registry
	log  *slog.Logger

	mu         sync.Mutex
	total      []int64
	violations []int64
	burning    []bool
}

// newSLOTracker returns nil when no objectives are configured (the
// serving path calls observe unconditionally on the nil no-op).
func newSLOTracker(slos []SLO, reg *obs.Registry, log *slog.Logger) *sloTracker {
	if len(slos) == 0 {
		return nil
	}
	t := &sloTracker{
		slos:       slos,
		reg:        reg,
		log:        log,
		total:      make([]int64, len(slos)),
		violations: make([]int64, len(slos)),
		burning:    make([]bool, len(slos)),
	}
	// Register the series up front so every scrape carries them, 0
	// burn included — dashboards should not discover an SLO only once
	// it is violated.
	for _, slo := range slos {
		reg.Counter("slo." + slo.Name + ".requests")
		reg.Counter("slo." + slo.Name + ".violations")
		reg.Gauge("slo." + slo.Name + ".burn_ppm").Set(0)
	}
	reg.Gauge("slo.worst_burn_ppm").Set(0)
	return t
}

// observe scores one answered request against every objective.
// failed marks typed-error responses (they violate every quality
// objective and count toward latency ones like any other request).
func (t *sloTracker) observe(latency time.Duration, quality string, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var worst float64
	for i, slo := range t.slos {
		t.total[i]++
		t.reg.Counter("slo." + slo.Name + ".requests").Inc()
		if slo.violated(latency, quality, failed) {
			t.violations[i]++
			t.reg.Counter("slo." + slo.Name + ".violations").Inc()
		}
		burn := (float64(t.violations[i]) / float64(t.total[i])) / slo.Budget
		if burn > worst {
			worst = burn
		}
		t.reg.Gauge("slo." + slo.Name + ".burn_ppm").Set(int64(burn * 1e6))
		switch {
		case burn >= 1 && !t.burning[i]:
			t.burning[i] = true
			if t.log != nil {
				t.log.Warn("slo error budget burned",
					"slo", slo.Spec,
					"burn", fmt.Sprintf("%.2f", burn),
					"violations", t.violations[i],
					"requests", t.total[i])
			}
		case burn < 0.5 && t.burning[i]:
			t.burning[i] = false
		}
	}
	t.reg.Gauge("slo.worst_burn_ppm").Set(int64(worst * 1e6))
}
