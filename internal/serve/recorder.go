package serve

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"licm/internal/explain"
	"licm/internal/obs"
)

// RequestsSchema versions the flight-recorder dump artifact served at
// /debug/licm/requests and written by licmd -requests-dump; licmtrace
// requests is its reader.
const RequestsSchema = "licm-requests/1"

// Badges classifying why a request was retained by the flight
// recorder. One entry can carry several.
const (
	BadgeSlowest          = "slowest"
	BadgeDegraded         = "degraded"
	BadgeShed             = "shed"
	BadgePanicked         = "panicked"
	BadgeDeadlineViolated = "deadline-violated"
)

// badgeClasses is the retention-ring order (and the dump's class
// listing order). BadgeSlowest is handled by the worst-N heap, not a
// last-N ring.
var badgeClasses = []string{BadgeDegraded, BadgeShed, BadgePanicked, BadgeDeadlineViolated}

// RecordedRequest is one flight-recorder entry: everything needed to
// reconstruct why one request got the answer it got — the request and
// response bodies, the request's own span tree (every trace event the
// request's forked tracer emitted, request_id-stamped), and the
// explain report of the answering solve when one ran.
type RecordedRequest struct {
	RequestID string    `json:"request_id"`
	Badges    []string  `json:"badges"`
	Start     time.Time `json:"start"`
	// TotalNs is the end-to-end handler time: decode, admission, queue
	// wait, solve (or shed estimate), encode decision — the figure the
	// slowest-N and deadline-violation policies rank by.
	TotalNs int64 `json:"total_ns"`
	// DeadlineNs is the effective per-request budget (0 = none);
	// TotalNs > DeadlineNs earns BadgeDeadlineViolated.
	DeadlineNs int64           `json:"deadline_ns,omitempty"`
	Request    *Request        `json:"request,omitempty"`
	Response   *Response       `json:"response"`
	Events     []obs.Event     `json:"events,omitempty"`
	Explain    *explain.Report `json:"explain,omitempty"`
}

// RequestsDump is the serialized recorder state: licm-requests/1.
type RequestsDump struct {
	Schema string `json:"schema"`
	// Depth is the per-class retention depth the recorder ran with.
	Depth   int               `json:"depth"`
	Entries []RecordedRequest `json:"entries"`
}

// Recorder is the bounded in-memory flight recorder: it retains the
// worst-N requests per policy — the N slowest overall plus the last N
// of each badge class (degraded, shed, panicked, deadline-violated) —
// and serves them as JSON or HTML at /debug/licm/requests. All methods
// are safe for concurrent use; a nil *Recorder is inert (the obs nil
// no-op contract), so the serving path records unconditionally.
type Recorder struct {
	depth int

	mu sync.Mutex
	// slow is the worst-N-by-TotalNs set, kept as a min-heap-by-scan
	// (depth is small): a new entry evicts the current fastest once
	// the set is full, so the N slowest requests ever seen survive
	// arbitrary interleaving — the property the race test pins.
	slow []*RecordedRequest
	// rings holds a last-N circular buffer per badge class.
	rings map[string]*entryRing
	seen  int64
}

// entryRing is a fixed-size last-N buffer.
type entryRing struct {
	buf  []*RecordedRequest
	next int
	n    int
}

func (r *entryRing) add(e *RecordedRequest) {
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// NewRecorder builds a recorder retaining depth entries per class
// (depth <= 0 selects the default 32).
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		depth = 32
	}
	rec := &Recorder{depth: depth, rings: map[string]*entryRing{}}
	for _, c := range badgeClasses {
		rec.rings[c] = &entryRing{buf: make([]*RecordedRequest, depth)}
	}
	return rec
}

// badges derives an entry's retention badges from its outcome. The
// slowest badge is decided at observation time (it depends on the
// current worst-N set), so it is not assigned here.
func badges(e *RecordedRequest) []string {
	var b []string
	resp := e.Response
	if resp == nil {
		return b
	}
	if resp.Quality != "" && resp.Quality != "exact" {
		b = append(b, BadgeDegraded)
	}
	if resp.Shed {
		b = append(b, BadgeShed)
	}
	if resp.PanicsRecovered > 0 ||
		(resp.Err != nil && strings.HasPrefix(resp.Err.Message, "contained")) {
		b = append(b, BadgePanicked)
	}
	if e.DeadlineNs > 0 && e.TotalNs > e.DeadlineNs {
		b = append(b, BadgeDeadlineViolated)
	}
	return b
}

// Observe offers one finished request to the recorder. The entry is
// retained if it earns any badge or displaces a faster entry in the
// worst-N set; otherwise it is dropped (bounded memory is the point).
func (r *Recorder) Observe(e *RecordedRequest) {
	if r == nil || e == nil || e.Response == nil {
		return
	}
	e.Badges = badges(e)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if len(r.slow) < r.depth {
		e.Badges = append(e.Badges, BadgeSlowest)
		r.slow = append(r.slow, e)
	} else if mi := minIdx(r.slow); e.TotalNs > r.slow[mi].TotalNs {
		evicted := r.slow[mi]
		evicted.Badges = removeBadge(evicted.Badges, BadgeSlowest)
		e.Badges = append(e.Badges, BadgeSlowest)
		r.slow[mi] = e
	}
	for _, c := range badgeClasses {
		if hasBadge(e.Badges, c) {
			r.rings[c].add(e)
		}
	}
}

func minIdx(es []*RecordedRequest) int {
	mi := 0
	for i, e := range es {
		if e.TotalNs < es[mi].TotalNs {
			mi = i
		}
	}
	return mi
}

func hasBadge(bs []string, b string) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

func removeBadge(bs []string, b string) []string {
	out := bs[:0]
	for _, x := range bs {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// Snapshot returns the retained entries, deduplicated by request id
// and sorted slowest-first. Entries are deep-shared (the recorder
// never mutates an entry after Observe), so callers may serialize
// them without copying.
func (r *Recorder) Snapshot() []RecordedRequest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var out []RecordedRequest
	add := func(e *RecordedRequest) {
		if e == nil || seen[e.RequestID] {
			return
		}
		seen[e.RequestID] = true
		out = append(out, *e)
	}
	for _, e := range r.slow {
		add(e)
	}
	for _, c := range badgeClasses {
		ring := r.rings[c]
		for _, e := range ring.buf {
			add(e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		return out[i].RequestID < out[j].RequestID
	})
	return out
}

// Get returns the retained entry with the given request id.
func (r *Recorder) Get(id string) (RecordedRequest, bool) {
	for _, e := range r.Snapshot() {
		if e.RequestID == id {
			return e, true
		}
	}
	return RecordedRequest{}, false
}

// Dump packages the recorder state as a licm-requests/1 artifact.
func (r *Recorder) Dump() *RequestsDump {
	depth := 0
	if r != nil {
		depth = r.depth
	}
	d := &RequestsDump{Schema: RequestsSchema, Depth: depth, Entries: r.Snapshot()}
	if d.Entries == nil {
		d.Entries = []RecordedRequest{}
	}
	return d
}

// WriteDump serializes the recorder as indented licm-requests/1 JSON —
// the drain-time artifact behind licmd -requests-dump.
func (r *Recorder) WriteDump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump())
}

// ReadDump parses a licm-requests/1 artifact, rejecting unknown schema
// majors instead of mis-rendering them.
func ReadDump(rd io.Reader) (*RequestsDump, error) {
	var d RequestsDump
	if err := json.NewDecoder(rd).Decode(&d); err != nil {
		return nil, fmt.Errorf("serve: requests dump: %w", err)
	}
	if !strings.HasPrefix(d.Schema, "licm-requests/") {
		return nil, fmt.Errorf("serve: not a requests dump (schema %q, want licm-requests/*)", d.Schema)
	}
	if d.Schema != RequestsSchema {
		return nil, fmt.Errorf("serve: unsupported requests schema %q (this reader understands %s)", d.Schema, RequestsSchema)
	}
	return &d, nil
}

// Handler serves the recorder over HTTP:
//
//	GET /debug/licm/requests              — licm-requests/1 JSON dump
//	GET /debug/licm/requests?id=<rid>     — one entry (404 when absent)
//	GET /debug/licm/requests?format=html  — HTML drill-down table
//
// Registered on both the service mux and (via obs.DebugServer.Handle)
// the debug server, so forensics stay reachable from whichever port a
// probe already knows.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		if id := req.URL.Query().Get("id"); id != "" {
			e, ok := r.Get(id)
			if !ok {
				http.Error(w, fmt.Sprintf("request %q not retained", id), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(e)
			return
		}
		if req.URL.Query().Get("format") == "html" {
			r.writeHTML(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteDump(w)
	})
}

// writeHTML renders the drill-down table: one row per retained entry,
// linking to its JSON detail view.
func (r *Recorder) writeHTML(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	entries := r.Snapshot()
	fmt.Fprint(w, `<!DOCTYPE html><html><head><meta charset="utf-8">
<title>licm request forensics</title>
<style>
 body { font: 13px/1.4 system-ui, sans-serif; margin: 1.5em; background: #fafafa; color: #222; }
 table { border-collapse: collapse; background: #fff; }
 th, td { border: 1px solid #ddd; padding: 4px 8px; text-align: left; font-size: 12px; }
 th { background: #f0f0f0; }
 .badge { display: inline-block; background: #2a6fb0; color: #fff; border-radius: 3px;
          padding: 0 5px; margin-right: 3px; font-size: 11px; }
 .badge.shed, .badge.panicked, .badge.deadline-violated { background: #b05a2a; }
 code { font-family: ui-monospace, monospace; }
</style></head><body><h1>licm request forensics</h1>`)
	fmt.Fprintf(w, "<p>%d retained entr%s (worst-%d per class). <a href=\"/debug/licm/requests\">JSON dump</a></p>",
		len(entries), map[bool]string{true: "y", false: "ies"}[len(entries) == 1], r.depth)
	fmt.Fprint(w, `<table><tr><th>request</th><th>query</th><th>quality</th><th>total</th><th>latency</th><th>badges</th><th>spans</th></tr>`)
	for _, e := range entries {
		quality, name := "", ""
		var latency int64
		if e.Response != nil {
			name = e.Response.Name
			latency = e.Response.LatencyNs
			quality = e.Response.Quality
			if e.Response.Err != nil {
				quality = "error:" + string(e.Response.Err.Code)
			}
		}
		var badges strings.Builder
		for _, b := range e.Badges {
			fmt.Fprintf(&badges, `<span class="badge %s">%s</span>`, html.EscapeString(b), html.EscapeString(b))
		}
		spans := 0
		for _, ev := range e.Events {
			if ev.Kind == obs.KindSpanStart {
				spans++
			}
		}
		fmt.Fprintf(w, `<tr><td><a href="/debug/licm/requests?id=%s"><code>%s</code></a></td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>`,
			html.EscapeString(e.RequestID), html.EscapeString(e.RequestID),
			html.EscapeString(name), html.EscapeString(quality),
			time.Duration(e.TotalNs).Round(time.Microsecond),
			time.Duration(latency).Round(time.Microsecond),
			badges.String(), spans)
	}
	fmt.Fprint(w, `</table></body></html>`)
}
