// Package serve is the long-lived LICM query service behind cmd/licmd:
// it loads one anonymized possibilistic store, then answers aggregate
// bounds queries over HTTP/JSON (licm-queries/1 specs in, licm-serve/1
// records out) through the anytime supervisor.
//
// The robustness machinery is the point of the package:
//
//   - A bounded worker pool with admission control: queries queue up to
//     a fixed depth and a shed watermark. Above the watermark a query
//     is not refused — it degrades to the sampled ladder rung
//     (mc.EstimateObjective on the handler goroutine), so overload
//     trades answer quality for throughput instead of availability.
//   - Per-request deadlines with server-side propagation: the deadline
//     covers queue wait plus solve, so a query that overstays its
//     budget degrades down the Exact → ProvenInterval → Sampled ladder
//     instead of hogging a worker.
//   - Panic containment at two boundaries: solver panics are contained
//     by the supervisor (with one jittered perturbed-order retry), and
//     anything that escapes a request handler is converted into a
//     structured typed error, never a dead connection.
//   - Graceful drain: readiness flips immediately, in-flight and
//     queued queries finish, then the HTTP intake and the debug server
//     close. New queries during drain get a typed "draining" error.
//   - Test-only fault injection: when enabled, an X-Licm-Fault header
//     arms an internal/faultinject plan around that request's solve,
//     so chaos harnesses can hammer a live server at every ladder
//     rung.
//
// The protocol contract, asserted by Response.Protocol and the chaos
// CI job: every response is exact, proven-interval, sampled, or a
// structured typed error.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"licm/internal/core"
	"licm/internal/encode"
	"licm/internal/explain"
	"licm/internal/faultinject"
	"licm/internal/mc"
	"licm/internal/obs"
	"licm/internal/seedflag"
	"licm/internal/solver"
	"licm/internal/super"
	"licm/internal/workload"
)

// Config controls one Server.
type Config struct {
	// Workload carries the store parameters (dataset scale, scheme,
	// seed), the base solver options, the fallback sample count
	// (MCSamples) and the Trace/Metrics/Log surfaces — the same block
	// licmload uses, so a licmload -target client pointed at this
	// server scores against an identical store.
	Workload workload.Config

	// Workers sizes the solve worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; 0 means 64.
	QueueDepth int
	// ShedWatermark is the queue depth at and above which new queries
	// shed to the sampled rung instead of queueing; 0 means half the
	// queue depth. A full queue sheds regardless of the watermark.
	ShedWatermark int
	// ShedSamples sizes the Monte-Carlo estimate of the shed path; 0
	// means the workload's MCSamples. Negative disables shedding, in
	// which case overload surfaces as typed "overloaded" errors (the
	// configuration escape hatch; the default never serves a bare 503
	// while a degraded answer is computable).
	ShedSamples int

	// DefaultDeadline bounds queries that carry no deadline_ms; 0
	// means no deadline (the solver's node budget still bounds work).
	DefaultDeadline time.Duration
	// MaxDeadline clamps client-requested deadlines; 0 means 2m.
	MaxDeadline time.Duration

	// AllowFaultHeader honors the X-Licm-Fault header, arming an
	// internal/faultinject plan around the request's solve. Test-only:
	// never set it on a production server.
	AllowFaultHeader bool

	// RecorderDepth sizes the flight recorder's per-class retention (the
	// N slowest requests plus the last N of each badge class); 0 means
	// 32, negative disables the recorder entirely.
	RecorderDepth int
	// SLOs are the declarative serving objectives (see ParseSLO) whose
	// error-budget burn the server tracks as licm_slo_* series.
	SLOs []SLO
}

// normalized fills the config's zero values with defaults.
func (cfg Config) normalized() Config {
	cfg.Workload = cfg.Workload.Normalized()
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ShedWatermark == 0 {
		cfg.ShedWatermark = cfg.QueueDepth / 2
	}
	if cfg.ShedWatermark < 1 {
		cfg.ShedWatermark = 1
	}
	if cfg.ShedSamples == 0 {
		cfg.ShedSamples = cfg.Workload.MCSamples
	}
	if cfg.MaxDeadline == 0 {
		cfg.MaxDeadline = 2 * time.Minute
	}
	return cfg
}

// task is one admitted query waiting for a worker.
type task struct {
	req   *Request
	ctx   context.Context
	fault *faultinject.Plan
	enq   time.Time
	done  chan *Response // buffered; the worker's send never blocks

	// rid is the effective request id; tr the request's forked tracer
	// (request_id-stamped, teeing the service sink with the flight
	// recorder's capture sink). Both may be zero for internal tasks.
	rid string
	tr  *obs.Tracer
	// explain is filled by answer for the flight-recorder entry.
	explain *explain.Report
}

// Server is a running query service. Create with New, expose with
// Handler or Start, stop with Drain.
type Server struct {
	cfg    Config
	newEnc func() *encode.Encoded
	reg    *obs.Registry
	tr     *obs.Tracer
	log    *slog.Logger

	queue   chan *task
	workers sync.WaitGroup
	// pending counts admitted-but-unanswered queries (queued, solving,
	// or shedding inline); Drain waits on it before stopping workers.
	pending sync.WaitGroup

	mu       sync.Mutex // guards draining against concurrent admission
	draining bool

	// rec retains the worst-N requests for /debug/licm/requests; nil
	// when disabled. slo tracks error-budget burn; nil when no SLOs.
	rec *Recorder
	slo *sloTracker
	// ridNonce makes server-generated request ids distinct across
	// restarts (ids are <nonce>-<seq>).
	ridNonce string
	ridSeq   atomic.Int64

	reqSeq atomic.Int64
	// faultMu serializes fault-armed solves: internal/faultinject holds
	// one global plan at a time.
	faultMu sync.Mutex

	srv   *http.Server
	ln    net.Listener
	debug *obs.DebugServer
}

// New builds the server: it generates and anonymizes the store once
// (failing fast on bad parameters), warms one encoding to validate the
// factory, and starts the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.normalized()
	if cfg.Workload.MCSamples < 1 {
		// The sampled rung must always be reachable: a server whose
		// ladder can land on Failed would violate the protocol contract.
		return nil, fmt.Errorf("serve: MCSamples must be >= 1 (the sampled rung backs the protocol contract)")
	}
	newEnc, err := cfg.Workload.Encoder()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		newEnc:   newEnc,
		reg:      cfg.Workload.Metrics,
		tr:       cfg.Workload.Trace,
		log:      cfg.Workload.Log,
		queue:    make(chan *task, cfg.QueueDepth),
		slo:      newSLOTracker(cfg.SLOs, cfg.Workload.Metrics, cfg.Workload.Log),
		ridNonce: strconv.FormatInt(time.Now().UnixNano()&0xfffffff, 36),
	}
	if cfg.RecorderDepth >= 0 {
		s.rec = NewRecorder(cfg.RecorderDepth)
	}
	enc := newEnc()
	s.reg.Gauge("serve.store_vars").Set(int64(enc.DB.NumVars()))
	s.reg.Gauge("serve.store_cons").Set(int64(enc.DB.NumConstraints()))
	s.reg.Gauge("serve.workers").Set(int64(cfg.Workers))
	// Register the drain gauge up front so every scrape carries it:
	// dashboards and the serve-smoke gate read it as 0 while serving.
	s.reg.Gauge("serve.draining").Set(0)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the service routing table:
//
//	POST /v1/query            — answer one licm-queries/1 spec
//	GET  /healthz             — liveness: 200 while the process runs
//	GET  /readyz              — readiness: 200 until drain begins, then 503
//	GET  /metrics             — Prometheus text exposition of the registry
//	GET  /debug/licm/requests — flight-recorder forensics (JSON/HTML)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.Handle("/debug/licm/requests", s.rec.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.isDraining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", obs.PromHandler(s.reg))
	return mux
}

// Start binds addr (":0" picks a free port) and serves the Handler in
// the background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Drain
	return ln.Addr().String(), nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// AttachDebug starts the PR-5 debug server (pprof, /metrics,
// /debug/licm dashboard) on addr, sharing the service registry. Drain
// closes it.
func (s *Server) AttachDebug(addr string) (string, error) {
	d, err := obs.ServeDebug(addr, s.reg)
	if err != nil {
		return "", err
	}
	// Forensics ride the debug port too, so a probe that only knows
	// -debug-addr can still drill into retained requests.
	d.Handle("/debug/licm/requests", s.rec.Handler())
	s.debug = d
	return d.Addr(), nil
}

// Requests exposes the flight recorder (nil when disabled); licmd uses
// it to write the drain-time licm-requests/1 dump.
func (s *Server) Requests() *Recorder { return s.rec }

// isDraining reports whether drain has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain is the SIGTERM path: flip readiness, refuse new queries with a
// typed error, finish every admitted query, stop the workers, then
// close the HTTP intake and the debug server. It returns nil on a
// clean drain and an error when ctx expires first (workers are left
// running so in-flight solves still cancel via their own contexts).
// Idempotent: later calls re-wait on the same shutdown.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.reg.Gauge("serve.draining").Set(1)
	if s.log != nil && !already {
		s.log.Info("drain started", "queued", len(s.queue))
	}

	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
		if !already {
			// No admission can race this close: draining was flipped
			// before pending hit zero, and admission checks draining
			// under the same lock before adding to pending.
			close(s.queue)
		}
		s.workers.Wait()
	case <-ctx.Done():
		drainErr = fmt.Errorf("serve: drain timed out with queries in flight: %w", ctx.Err())
	}

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if s.srv != nil {
		if err := s.srv.Shutdown(sctx); err != nil && drainErr == nil {
			drainErr = fmt.Errorf("serve: http shutdown: %w", err)
		}
	}
	if err := s.debug.Close(); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("serve: debug server close: %w", err)
	}
	if s.log != nil && !already {
		s.log.Info("drain finished", "err", fmt.Sprint(drainErr))
	}
	return drainErr
}

// handleQuery is the /v1/query endpoint. It never lets a panic escape
// and never hangs a connection: every path writes exactly one
// licm-serve/1 response.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.reg.Counter("serve.requests").Inc()

	// Request-id assignment happens before any response path, so every
	// response — rejections included — carries a correlatable id. A
	// valid client-proposed id is adopted; an invalid one is rejected
	// below (after respond exists), never laundered into traces.
	proposed := r.Header.Get(RequestIDHeader)
	rid := proposed
	if rid == "" || !ValidRequestID(rid) {
		rid = s.ridNonce + "-" + strconv.FormatInt(s.ridSeq.Add(1), 10)
	}

	// Forensics state filled in as the request progresses; the respond
	// closure snapshots it into the flight recorder.
	var (
		deadlineNs int64
		capture    *obs.CollectSink
		reqp       *Request
		tk         *task
		sp         *obs.Span
	)

	wrote := false
	respond := func(status int, resp *Response) {
		wrote = true
		resp.RequestID = rid
		total := time.Since(t0)
		s.reg.Histogram("serve.latency_ns").Observe(int64(total))
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(RequestIDHeader, rid)
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(resp) // a write error means the client hung up

		// Score the request against the SLOs and offer it to the flight
		// recorder. Client-side refusals (bad request, draining) burn no
		// server error budget and carry no forensic value.
		failed := resp.Err != nil
		if failed && (resp.Err.Code == ErrBadRequest || resp.Err.Code == ErrDraining) {
			return
		}
		sp.End()
		s.slo.observe(total, resp.Quality, failed)
		if s.rec != nil {
			e := &RecordedRequest{
				RequestID:  rid,
				Start:      t0,
				TotalNs:    int64(total),
				DeadlineNs: deadlineNs,
				Request:    reqp,
				Response:   resp,
			}
			if capture != nil {
				e.Events = capture.Events()
			}
			if tk != nil {
				e.Explain = tk.explain
			}
			s.rec.Observe(e)
		}
	}
	defer func() {
		if v := recover(); v != nil {
			s.reg.Counter("serve.panics_contained").Inc()
			if s.log != nil {
				s.log.Error("request panic contained", "request_id", rid, "value", fmt.Sprint(v))
			}
			if !wrote {
				respond(ErrInternal.httpStatus(),
					errResponse(0, ErrInternal, "contained request panic: %s", trim(fmt.Sprint(v))))
			}
		}
	}()

	if proposed != "" && !ValidRequestID(proposed) {
		s.reject(respond, 0, ErrBadRequest,
			"bad %s header: want [A-Za-z0-9._-]{1,%d}", RequestIDHeader, maxRequestIDLen)
		return
	}
	if r.Method != http.MethodPost {
		s.reject(respond, 0, ErrBadRequest, "use POST")
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reject(respond, 0, ErrBadRequest, "bad request body: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		s.reject(respond, req.Spec.ID, ErrBadRequest, "%v", err)
		return
	}
	fault, err := s.faultPlan(r)
	if err != nil {
		s.reject(respond, req.Spec.ID, ErrBadRequest, "%v", err)
		return
	}
	reqp = &req

	// Per-request tracer fork: every event the request produces — the
	// serve.request span here, encode spans, the supervisor ladder, the
	// solver tree — is stamped with request_id and teed into the flight
	// recorder's capture sink alongside the service trace sink.
	capture = &obs.CollectSink{}
	rtr := s.tr.Fork(capture, obs.Str("request_id", rid))
	sp = rtr.Start("serve.request",
		obs.Str("query", req.Spec.Name()), obs.Int("id", req.Spec.ID))

	// Deadline propagation: the budget starts at admission and covers
	// queue wait plus solve. The request context is the parent, so a
	// client hangup cancels the solve too.
	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	if deadline > 0 {
		deadlineNs = int64(deadline)
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	// Admission. Under the lock so drain's "no new pending work after
	// draining flips" invariant holds.
	t := &task{req: &req, ctx: ctx, fault: fault, enq: time.Now(),
		done: make(chan *Response, 1), rid: rid, tr: rtr}
	tk = t
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reject(respond, req.Spec.ID, ErrDraining, "server is draining")
		return
	}
	s.pending.Add(1)
	queued := false
	if len(s.queue) < s.cfg.ShedWatermark {
		select {
		case s.queue <- t:
			queued = true
		default:
		}
	}
	s.mu.Unlock()
	s.reg.Gauge("serve.queue_depth").Set(int64(len(s.queue)))

	if !queued {
		// Overload: answer inline at the sampled rung rather than
		// refuse. pending was already added, so drain waits for inline
		// sheds too.
		resp := func() *Response {
			defer s.pending.Done()
			return s.shedAnswer(&req, rtr)
		}()
		status := 200
		if resp.Err != nil {
			status = resp.Err.Code.httpStatus()
		}
		respond(status, resp)
		return
	}

	resp := <-t.done
	status := 200
	if resp.Err != nil {
		status = resp.Err.Code.httpStatus()
	}
	respond(status, resp)
}

// reject counts and writes one typed-error response.
func (s *Server) reject(respond func(int, *Response), id int, code ErrCode, format string, args ...any) {
	s.reg.Counter("serve.rejected").Inc()
	respond(code.httpStatus(), errResponse(id, code, format, args...))
}

// worker consumes admitted tasks until the queue closes on drain.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.queue {
		s.reg.Gauge("serve.queue_depth").Set(int64(len(s.queue)))
		wait := time.Since(t.enq)
		s.reg.Histogram("serve.queue_wait_ns").Observe(int64(wait))
		s.reg.Gauge("serve.inflight").Add(1)
		resp := s.guardedAnswer(t)
		resp.QueueNs = int64(wait)
		s.reg.Gauge("serve.inflight").Add(-1)
		t.done <- resp
		s.pending.Done()
	}
}

// guardedAnswer runs one solve with the worker-level panic boundary:
// whatever escapes the supervisor (encoding bugs, fault injections
// outside the solver's own guards) becomes a typed internal error, not
// a dead worker.
func (s *Server) guardedAnswer(t *task) (resp *Response) {
	defer func() {
		if v := recover(); v != nil {
			s.reg.Counter("serve.panics_contained").Inc()
			if s.log != nil {
				s.log.Error("worker panic contained", "query", t.req.Spec.Name(), "value", fmt.Sprint(v))
			}
			resp = errResponse(t.req.Spec.ID, ErrInternal, "contained worker panic: %s", trim(fmt.Sprint(v)))
		}
	}()
	if t.fault != nil {
		// One global fault plan at a time: faulted solves serialize.
		s.faultMu.Lock()
		defer s.faultMu.Unlock()
		disarm := faultinject.Arm(*t.fault)
		defer disarm()
		s.reg.Counter("serve.faults_armed").Inc()
	}
	return s.answer(t)
}

// answer runs the full supervised solve for one request.
func (s *Server) answer(t *task) *Response {
	req := t.req
	tr := t.tr
	if tr == nil {
		// Internal callers without a per-request fork fall back to the
		// service tracer.
		tr = s.tr
	}
	resp := &Response{Schema: ResponseSchema, ID: req.Spec.ID, Name: req.Spec.Name()}
	start := time.Now()
	enc := s.newEnc()
	enc.DB.SetTracer(tr)
	obj, _, err := req.Spec.Build(enc)
	if err != nil {
		s.reg.Counter("serve.rejected").Inc()
		resp.Err = &ErrorInfo{Code: ErrBadRequest, Message: trim(err.Error())}
		return resp
	}
	resp.Vars, resp.Cons = enc.DB.NumVars(), enc.DB.NumConstraints()

	opts := s.cfg.Workload.Solver
	opts.Trace = tr
	opts.Metrics = s.reg
	opts.RequestID = t.rid
	xrec := &solver.ExplainRecorder{}
	opts.Explain = xrec

	// The retry seed jitters per request, so a fault that survives one
	// request's perturbed-order retry is explored differently by the
	// next instead of replaying the identical crash path fleet-wide.
	n := s.reqSeq.Add(1)
	seed := s.cfg.Workload.Seed
	scfg := super.Config{
		Solver: opts,
		Sample: super.MCFallback(enc, obj,
			seedflag.Derive(seed, seedflag.FallbackStream)+int64(req.Spec.ID), s.cfg.Workload.MCSamples),
		RetrySeed: seed ^ int64(uint64(n)*0x9e3779b97f4a7c15),
		Log:       s.log,
	}
	out := super.Bounds(t.ctx, core.BuildProblem(enc.DB, obj), scfg)
	resp.LatencyNs = int64(time.Since(start))
	resp.Retries = out.Retries
	resp.PanicsRecovered = out.PanicsRecovered

	rep := explain.Build(resp.Name, xrec)
	t.explain = rep
	fps := map[string]bool{}
	for ri := range rep.Runs {
		resp.Components += len(rep.Runs[ri].Components)
		for ci := range rep.Runs[ri].Components {
			fps[rep.Runs[ri].Components[ci].Fingerprint] = true
		}
	}
	resp.DistinctFingerprints = len(fps)

	if out.Quality == super.Failed {
		// The ladder produced nothing usable; keep the wire contract
		// (never an untyped failure) by converting to a typed error.
		s.reg.Counter("serve.failed").Inc()
		msg := "no usable result"
		if out.Min.Err != nil {
			msg = out.Min.Err.Error()
		} else if out.Max.Err != nil {
			msg = out.Max.Err.Error()
		}
		resp.Err = &ErrorInfo{Code: ErrInternal, Message: trim("ladder exhausted: " + msg)}
		return resp
	}

	resp.Quality = out.Quality.String()
	resp.Infeasible = out.Infeasible
	resp.Lb, resp.Ub = out.Interval()
	resp.Proven = out.Quality == super.Exact || out.Quality == super.ProvenInterval
	s.countQuality(resp.Quality)
	return resp
}

// shedAnswer is the overload path: no queue, no solver — a direct
// Monte-Carlo estimate of the objective at the sampled ladder rung.
// tr is the request's forked tracer (may be nil).
func (s *Server) shedAnswer(req *Request, tr *obs.Tracer) (resp *Response) {
	defer func() {
		if v := recover(); v != nil {
			s.reg.Counter("serve.panics_contained").Inc()
			resp = errResponse(req.Spec.ID, ErrInternal, "contained shed panic: %s", trim(fmt.Sprint(v)))
		}
	}()
	resp = &Response{Schema: ResponseSchema, ID: req.Spec.ID, Name: req.Spec.Name()}
	if s.cfg.ShedSamples < 1 {
		s.reg.Counter("serve.rejected").Inc()
		resp.Err = &ErrorInfo{Code: ErrOverloaded, Message: "query queue is full and shed sampling is disabled"}
		return resp
	}
	s.reg.Counter("serve.shed").Inc()
	defer tr.Start("serve.shed", obs.Int("samples", s.cfg.ShedSamples)).End()
	start := time.Now()
	enc := s.newEnc()
	obj, _, err := req.Spec.Build(enc)
	if err != nil {
		s.reg.Counter("serve.rejected").Inc()
		resp.Err = &ErrorInfo{Code: ErrBadRequest, Message: trim(err.Error())}
		return resp
	}
	sampler := mc.NewSampler(enc,
		seedflag.Derive(s.cfg.Workload.Seed, seedflag.FallbackStream)+int64(req.Spec.ID))
	est := sampler.EstimateObjective(obj, s.cfg.ShedSamples)
	resp.Quality = "sampled"
	resp.Shed = true
	resp.Lb, resp.Ub = est.Min, est.Max
	resp.LatencyNs = int64(time.Since(start))
	s.countQuality(resp.Quality)
	return resp
}

// countQuality bumps the per-rung answer counter.
func (s *Server) countQuality(q string) {
	switch q {
	case "exact":
		s.reg.Counter("serve.exact").Inc()
	case "proven-interval":
		s.reg.Counter("serve.proven_interval").Inc()
	case "sampled":
		s.reg.Counter("serve.sampled").Inc()
	}
}

// faultPlan parses the test-only X-Licm-Fault header
// ("<site>:<hit>:<action>", e.g. "ctrl-batch:0:panic" or
// "lp-pivot:3:jitter-nan"). Servers without AllowFaultHeader reject
// any attempt loudly rather than silently ignoring it.
func (s *Server) faultPlan(r *http.Request) (*faultinject.Plan, error) {
	h := r.Header.Get("X-Licm-Fault")
	if h == "" {
		return nil, nil
	}
	if !s.cfg.AllowFaultHeader {
		return nil, fmt.Errorf("serve: fault injection is not enabled on this server")
	}
	parts := strings.Split(h, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("serve: fault header %q, want site:hit:action", h)
	}
	var plan faultinject.Plan
	switch parts[0] {
	case "ctrl-batch":
		plan.Site = faultinject.CtrlBatch
	case "lp-pivot":
		plan.Site = faultinject.LPPivot
	default:
		return nil, fmt.Errorf("serve: unknown fault site %q", parts[0])
	}
	hit, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || hit < 0 {
		return nil, fmt.Errorf("serve: bad fault hit %q", parts[1])
	}
	plan.Hit = hit
	switch parts[2] {
	case "panic":
		plan.Action = faultinject.Panic
	case "cancel":
		plan.Action = faultinject.Cancel
	case "jitter-nan":
		plan.Action = faultinject.JitterNaN
	case "jitter-inf":
		plan.Action = faultinject.JitterInf
	case "none":
		plan.Action = faultinject.None
	default:
		return nil, fmt.Errorf("serve: unknown fault action %q", parts[2])
	}
	return &plan, nil
}
