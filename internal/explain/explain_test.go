package explain

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"licm/internal/expr"
	"licm/internal/solver"
	"licm/internal/super"
)

// liveProblem is a four-component instance where every component is a
// hard weighted knapsack bounded from both sides (profits nearly
// proportional to weights — the classic B&B-hostile case), so both
// the max and the min sense spend milliseconds in real search and the
// per-component wall times dominate the search phase.
func liveProblem() *solver.Problem {
	const nComp, nVar = 4, 20
	var cons []expr.Constraint
	obj := expr.Lin{}
	n := 0
	for c := 0; c < nComp; c++ {
		w := expr.Lin{}
		var totW int64
		for i := 0; i < nVar; i++ {
			v := expr.Var(n + i)
			wi := int64(3 + (i*7+c*5)%13)
			w = w.AddTerm(v, wi)
			totW += wi
			obj = obj.AddTerm(v, wi+int64(i%3))
		}
		n += nVar
		cons = append(cons, expr.NewConstraint(w, expr.LE, totW/2))
		cons = append(cons, expr.NewConstraint(w, expr.GE, totW/4))
	}
	return &solver.Problem{NumVars: n, Constraints: cons, Objective: obj}
}

// TestExplainReportRoundTrip is the live acceptance test: solve both
// senses with a recorder, build the report, and check (a) the
// per-component counter sums equal the solver's Stats exactly, (b)
// per-component time shares sum to within 5% of the run's search
// time, and (c) the report survives a strict JSONL round trip intact.
func TestExplainReportRoundTrip(t *testing.T) {
	p := liveProblem()
	rec := &solver.ExplainRecorder{}
	opts := solver.DefaultOptions()
	opts.Workers = 1 // sequential: component wall times partition the search phase
	opts.Explain = rec
	min, max, err := solver.Bounds(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := Build("roundtrip", rec)
	rep.Scheme = "k"
	rep.K = 3
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Quality != "exact" {
		t.Errorf("quality = %q, want exact", rep.Quality)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(rep.Runs))
	}
	stats := map[string]solver.Stats{"max": max.Stats, "min": min.Stats}
	for _, run := range rep.Runs {
		st, ok := stats[run.Sense]
		if !ok {
			t.Fatalf("unexpected sense %q", run.Sense)
		}
		var nodes, lps, solveNs int64
		for _, c := range run.Components {
			if c.Fingerprint == "" || !c.Solved {
				t.Errorf("%s: component %d unsolved or unfingerprinted: %+v", run.Sense, c.Index, c)
			}
			nodes += c.Nodes
			lps += c.LPSolves
			solveNs += c.SolveNs
		}
		if nodes != st.Nodes || lps != st.LPSolves {
			t.Errorf("%s: component sums (%d nodes, %d lp) != stats (%d, %d)",
				run.Sense, nodes, lps, st.Nodes, st.LPSolves)
		}
		if run.SearchNs <= 0 {
			t.Fatalf("%s: search time missing", run.Sense)
		}
		share := float64(solveNs) / float64(run.SearchNs)
		if math.Abs(share-1) > 0.05 {
			t.Errorf("%s: component time shares sum to %.1f%% of search time (solve=%dns search=%dns), want within 5%%",
				run.Sense, share*100, solveNs, run.SearchNs)
		}
	}
	// The two senses see the same structure but different objectives,
	// so the fingerprint sets must be disjoint.
	maxFPs := map[string]bool{}
	for _, run := range rep.Runs {
		for _, c := range run.Components {
			if run.Sense == "max" {
				maxFPs[c.Fingerprint] = true
			} else if maxFPs[c.Fingerprint] {
				t.Errorf("min component shares fingerprint %s with a max component", c.Fingerprint)
			}
		}
	}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(&got[0], rep) {
		t.Errorf("JSONL round trip changed the report")
	}
}

// TestExplainSupervisedTagging: a supervised Bounds call stamps its
// ladder verdict onto the recorded runs, and the built report adopts
// the worst tag as the overall quality.
func TestExplainSupervisedTagging(t *testing.T) {
	rec := &solver.ExplainRecorder{}
	cfg := super.Config{Solver: solver.DefaultOptions()}
	cfg.Solver.Explain = rec
	out := super.Bounds(context.Background(), liveProblem(), cfg)
	if out.Quality != super.Exact {
		t.Fatalf("outcome quality = %v, want exact", out.Quality)
	}
	rep := Build("supervised", rec)
	if rep.Quality != "exact" {
		t.Errorf("report quality = %q, want exact", rep.Quality)
	}
	for _, run := range rep.Runs {
		if run.Quality != "exact" {
			t.Errorf("%s run quality = %q, want exact", run.Sense, run.Quality)
		}
	}

	// A starved node budget degrades below exact; the tags follow.
	rec.Reset()
	cfg.Solver.MaxNodes = 1
	out = super.Bounds(context.Background(), liveProblem(), cfg)
	if out.Quality == super.Exact {
		t.Fatal("starved solve still finished exactly")
	}
	rep = Build("degraded", rec)
	if rep.Quality == "exact" || rep.Quality == "" {
		t.Errorf("degraded report quality = %q, want a degraded tag", rep.Quality)
	}
	if rep.Quality != out.Quality.String() {
		t.Errorf("report quality %q != outcome quality %q", rep.Quality, out.Quality)
	}
}

// TestReadJSONLStrict covers the schema-drift guard: unknown fields
// and wrong schema tags fail in strict mode but pass in lax mode.
func TestReadJSONLStrict(t *testing.T) {
	good := `{"schema":"licm-explain/1","query":"q","prune":{"vars_before":1,"cons_before":1,"vars_after":1,"cons_after":1,"fixed_by_presolve":0},"runs":[]}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(good), true); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	drift := `{"schema":"licm-explain/1","runs":[],"prune":{},"surprise":42}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(drift), true); err == nil {
		t.Error("unknown field accepted in strict mode")
	}
	if _, err := ReadJSONL(strings.NewReader(drift), false); err != nil {
		t.Errorf("lax mode rejected unknown field: %v", err)
	}
	wrong := `{"schema":"licm-explain/9","runs":[],"prune":{}}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(wrong), true); err == nil {
		t.Error("wrong schema accepted in strict mode")
	}
	bad := "{not json}\n"
	if _, err := ReadJSONL(strings.NewReader(bad), false); err == nil {
		t.Error("malformed line accepted")
	}
	// Blank lines are skipped in either mode.
	if reps, err := ReadJSONL(strings.NewReader("\n"+good+"\n"), true); err != nil || len(reps) != 1 {
		t.Errorf("blank-line handling: %d reports, err %v", len(reps), err)
	}
}
