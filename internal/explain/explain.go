// Package explain turns the solver's raw ExplainRecorder data into
// the licm-explain/1 report — a structured per-query account of the
// solve ("EXPLAIN ANALYZE" for LICM): pruning effect, decomposed
// component list with canonical fingerprints, and per-component
// search attribution. Reports serialize as JSONL and feed the
// workload-level component census (census.go), which measures how
// often structurally identical components recur across a workload —
// the empirical case for the ROADMAP's component solve cache.
package explain

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"licm/internal/solver"
)

// Schema identifies the report format. Consumers (licmtrace census,
// the CI telemetry smoke check) reject records with any other value,
// so schema drift fails loudly instead of producing silent garbage.
const Schema = "licm-explain/1"

// Report is one query's explain record.
type Report struct {
	Schema string `json:"schema"`
	// Query is a caller-chosen label (query name, experiment cell id).
	Query string `json:"query,omitempty"`
	// Scheme/K describe the constraint scheme the store was built
	// under, when the caller knows it (licmq, licmexp).
	Scheme string `json:"scheme,omitempty"`
	K      int    `json:"k,omitempty"`
	// Quality is the overall verdict: the worst supervisor tag across
	// runs when the solve was supervised, else "exact" when every run
	// proved optimality and "interval" otherwise.
	Quality string `json:"quality,omitempty"`
	Prune   Prune  `json:"prune"`
	Runs    []Run  `json:"runs"`
}

// Prune is the pruning/presolve effect, identical across the runs of
// one query (min and max prune the same store).
type Prune struct {
	VarsBefore      int `json:"vars_before"`
	ConsBefore      int `json:"cons_before"`
	VarsAfter       int `json:"vars_after"`
	ConsAfter       int `json:"cons_after"`
	FixedByPresolve int `json:"fixed_by_presolve"`
}

// Run is one solver run (one sense; supervised solves may record
// several runs per sense as the degradation ladder retries).
type Run struct {
	Sense            string      `json:"sense"`
	Quality          string      `json:"quality,omitempty"`
	Nodes            int64       `json:"nodes"`
	LPSolves         int64       `json:"lp_solves"`
	Propagations     int64       `json:"propagations"`
	PruneNs          int64       `json:"prune_ns"`
	PresolveNs       int64       `json:"presolve_ns"`
	SearchNs         int64       `json:"search_ns"`
	WitnessNs        int64       `json:"witness_ns"`
	TotalNs          int64       `json:"total_ns"`
	AllocBytes       int64       `json:"alloc_bytes"`
	PeakHeap         int64       `json:"peak_heap"`
	Canceled         bool        `json:"canceled,omitempty"`
	WitnessExhausted bool        `json:"witness_exhausted,omitempty"`
	Proven           bool        `json:"proven"`
	Err              string      `json:"err,omitempty"`
	Components       []Component `json:"components"`
}

// Component is one decomposed subproblem with its canonical
// fingerprint and search attribution.
type Component struct {
	Index int `json:"index"`
	// Fingerprint is the canonical hash of the projected constraint
	// matrix plus objective (see Fingerprint) — the key a component
	// solve cache would use.
	Fingerprint  string `json:"fingerprint"`
	Vars         int    `json:"vars"`
	Cons         int    `json:"cons"`
	Solved       bool   `json:"solved"`
	Nodes        int64  `json:"nodes"`
	LPSolves     int64  `json:"lp_solves"`
	Propagations int64  `json:"propagations"`
	SolveNs      int64  `json:"solve_ns"`
	LPNs         int64  `json:"lp_ns"`
	Feasible     bool   `json:"feasible"`
	Proven       bool   `json:"proven"`
}

// Build assembles a Report from a recorder's runs. The recorder may
// be nil or empty (returns an empty, still-valid report), and stays
// untouched — call rec.Reset() between queries when reusing one.
func Build(query string, rec *solver.ExplainRecorder) *Report {
	rep := &Report{Schema: Schema, Query: query}
	runs := rec.Runs()
	if len(runs) == 0 {
		rep.Runs = []Run{}
		return rep
	}
	rep.Prune = Prune{
		VarsBefore:      runs[0].VarsBefore,
		ConsBefore:      runs[0].ConsBefore,
		VarsAfter:       runs[0].VarsAfterPrune,
		ConsAfter:       runs[0].ConsAfterPrune,
		FixedByPresolve: runs[0].FixedByPresolve,
	}
	tagged := false
	allProven := true
	clean := true
	worst := ""
	for _, sr := range runs {
		run := Run{
			Sense:            sr.Sense,
			Quality:          sr.Quality,
			Nodes:            sr.Nodes,
			LPSolves:         sr.LPSolves,
			Propagations:     sr.Propagations,
			PruneNs:          sr.PruneNs,
			PresolveNs:       sr.PresolveNs,
			SearchNs:         sr.SearchNs,
			WitnessNs:        sr.WitnessNs,
			TotalNs:          sr.TotalNs,
			AllocBytes:       sr.AllocBytes,
			PeakHeap:         sr.PeakHeap,
			Canceled:         sr.Canceled,
			WitnessExhausted: sr.WitnessExhausted,
			Proven:           sr.Proven,
			Err:              sr.Err,
			Components:       make([]Component, 0, len(sr.Components)),
		}
		for _, c := range sr.Components {
			run.Components = append(run.Components, Component{
				Index:        c.Index,
				Fingerprint:  ComponentFingerprint(c),
				Vars:         c.Vars,
				Cons:         len(c.Cons),
				Solved:       c.Solved,
				Nodes:        c.Nodes,
				LPSolves:     c.LPSolves,
				Propagations: c.Propagations,
				SolveNs:      c.SolveNs,
				LPNs:         c.LPNs,
				Feasible:     c.Feasible,
				Proven:       c.Proven,
			})
		}
		rep.Runs = append(rep.Runs, run)
		if sr.Quality != "" {
			tagged = true
			if qualityRank(sr.Quality) > qualityRank(worst) {
				worst = sr.Quality
			}
		}
		if !sr.Proven {
			allProven = false
		}
		if sr.Err != "" {
			clean = false
		}
	}
	switch {
	case tagged:
		rep.Quality = worst
	case allProven && clean:
		rep.Quality = "exact"
	default:
		rep.Quality = "interval"
	}
	return rep
}

// qualityRank orders supervisor tags from best to worst; unknown tags
// rank worst so a new ladder rung can never masquerade as exact.
func qualityRank(q string) int {
	switch q {
	case "":
		return -1
	case "exact":
		return 0
	case "proven-interval":
		return 1
	case "sampled":
		return 2
	case "failed":
		return 3
	default:
		return 4
	}
}

// ComponentSummary reports the component count and largest component
// size (in variables) across a recorder's runs — the figures an
// experiment cell carries even when the solve itself degraded or
// failed, since components are registered before any search work.
func ComponentSummary(rec *solver.ExplainRecorder) (count, maxVars int) {
	for _, run := range rec.Runs() {
		if len(run.Components) == 0 {
			continue
		}
		if count == 0 || len(run.Components) > count {
			count = len(run.Components)
		}
		for _, c := range run.Components {
			if c.Vars > maxVars {
				maxVars = c.Vars
			}
		}
	}
	return count, maxVars
}

// Validate checks the structural invariants a well-formed report
// satisfies. It is deliberately strict about the schema tag.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("explain: schema %q, want %q", r.Schema, Schema)
	}
	if r.Runs == nil {
		return fmt.Errorf("explain: missing runs array")
	}
	for i := range r.Runs {
		run := &r.Runs[i]
		if run.Sense != "max" && run.Sense != "min" {
			return fmt.Errorf("explain: run %d: sense %q, want max or min", i, run.Sense)
		}
		for j := range run.Components {
			c := &run.Components[j]
			if len(c.Fingerprint) != 16 {
				return fmt.Errorf("explain: run %d component %d: fingerprint %q, want 16 hex chars", i, j, c.Fingerprint)
			}
			if c.Vars < 0 || c.Cons < 0 {
				return fmt.Errorf("explain: run %d component %d: negative size", i, j)
			}
			if c.SolveNs < 0 || c.LPNs < 0 {
				return fmt.Errorf("explain: run %d component %d: negative duration", i, j)
			}
		}
	}
	return nil
}

// WriteJSONL appends the report as one JSON line.
func WriteJSONL(w io.Writer, rep *Report) error {
	b, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSONL parses a stream of reports, one JSON object per line
// (blank lines skipped). With strict set, unknown fields and
// Validate failures are errors — the schema-drift guard the CI
// telemetry smoke check relies on.
func ReadJSONL(r io.Reader, strict bool) ([]Report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 16<<20)
	var out []Report
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rep Report
		dec := json.NewDecoder(bytes.NewReader(raw))
		if strict {
			dec.DisallowUnknownFields()
		}
		if err := dec.Decode(&rep); err != nil {
			return nil, fmt.Errorf("explain: line %d: %w", line, err)
		}
		if strict {
			if err := rep.Validate(); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		}
		out = append(out, rep)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
