package explain

import (
	"math"
	"testing"

	"licm/internal/obs"
)

const (
	fpA = "1111111111111111"
	fpB = "2222222222222222"
	fpC = "3333333333333333"
	fpD = "4444444444444444"
)

// nsFor gives each fixture fingerprint a fixed per-occurrence cost so
// the totals are hand-checkable.
func nsFor(fp string) int64 {
	switch fp {
	case fpA:
		return 100_000
	case fpB:
		return 200_000
	case fpC:
		return 50_000
	default:
		return 1_000_000
	}
}

func fixtureRun(sense string, fps ...string) Run {
	run := Run{Sense: sense, Proven: true}
	for i, fp := range fps {
		run.Components = append(run.Components, Component{
			Index:       i,
			Fingerprint: fp,
			Vars:        3,
			Cons:        2,
			Solved:      true,
			Nodes:       10,
			LPSolves:    2,
			SolveNs:     nsFor(fp),
			LPNs:        nsFor(fp) / 4,
			Feasible:    true,
			Proven:      true,
		})
	}
	return run
}

// fixtureReports is the hand-checked census workload: 12 component
// occurrences over 4 distinct fingerprints.
//
//	q1: max+min runs, components [A, B]
//	q2: max+min runs, components [A, C]
//	q3: one max run,  components [A, B, C, D]
//
// So A occurs 5x, B 3x, C 3x, D 1x; unbounded hit rate 8/12; LRU
// capacity 2 over the access sequence A,B,A,B,A,C,A,C,A,B,C,D scores
// 6 hits (50%).
func fixtureReports() []*Report {
	return []*Report{
		{Schema: Schema, Query: "q1", Quality: "exact", Runs: []Run{
			fixtureRun("max", fpA, fpB), fixtureRun("min", fpA, fpB)}},
		{Schema: Schema, Query: "q2", Quality: "exact", Runs: []Run{
			fixtureRun("max", fpA, fpC), fixtureRun("min", fpA, fpC)}},
		{Schema: Schema, Query: "q3", Quality: "exact", Runs: []Run{
			fixtureRun("max", fpA, fpB, fpC, fpD)}},
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCensusSummaryHandChecked(t *testing.T) {
	c := NewCensus()
	for _, rep := range fixtureReports() {
		c.Observe(rep)
	}
	s := c.Summarize(3)
	if s.Queries != 3 || s.Runs != 5 {
		t.Errorf("queries=%d runs=%d, want 3 and 5", s.Queries, s.Runs)
	}
	if s.Components != 12 || s.Distinct != 4 {
		t.Errorf("components=%d distinct=%d, want 12 and 4", s.Components, s.Distinct)
	}
	if !almost(s.HitRate, 8.0/12.0) {
		t.Errorf("hit rate = %v, want 8/12", s.HitRate)
	}
	// Per-occurrence costs: A 5×100µs, B 3×200µs, C 3×50µs, D 1×1ms.
	if want := int64(500_000 + 600_000 + 150_000 + 1_000_000); s.TotalSolveNs != want {
		t.Errorf("total solve ns = %d, want %d", s.TotalSolveNs, want)
	}
	wantRec := []RecurrenceBucket{{Times: 1, Fingerprints: 1}, {Times: 3, Fingerprints: 2}, {Times: 5, Fingerprints: 1}}
	if len(s.Recurrence) != len(wantRec) {
		t.Fatalf("recurrence = %+v, want %+v", s.Recurrence, wantRec)
	}
	for i, b := range wantRec {
		if s.Recurrence[i] != b {
			t.Errorf("recurrence[%d] = %+v, want %+v", i, s.Recurrence[i], b)
		}
	}
	// Top-3 by cumulative solve time: D (1ms), B (600µs), A (500µs).
	if len(s.Top) != 3 {
		t.Fatalf("top = %+v, want 3 entries", s.Top)
	}
	for i, want := range []struct {
		fp string
		ns int64
		n  int64
	}{{fpD, 1_000_000, 1}, {fpB, 600_000, 3}, {fpA, 500_000, 5}} {
		got := s.Top[i]
		if got.Fingerprint != want.fp || got.SolveNs != want.ns || got.Count != want.n {
			t.Errorf("top[%d] = %+v, want fp=%s ns=%d count=%d", i, got, want.fp, want.ns, want.n)
		}
	}
}

func TestCensusSimulateLRU(t *testing.T) {
	c := NewCensus()
	for _, rep := range fixtureReports() {
		c.Observe(rep)
	}
	if hits, rate := c.SimulateLRU(0); hits != 8 || !almost(rate, 8.0/12.0) {
		t.Errorf("unbounded: hits=%d rate=%v, want 8 and 8/12", hits, rate)
	}
	// Capacity 2 over A,B,A,B,A,C,A,C,A,B,C,D: hits at positions
	// 3,4,5 (A,B,A), then C evicts B; 7,8,9 (A,C,A) hit; B evicts C,
	// C evicts A, D evicts B — 6 hits.
	if hits, rate := c.SimulateLRU(2); hits != 6 || !almost(rate, 0.5) {
		t.Errorf("capacity 2: hits=%d rate=%v, want 6 and 0.5", hits, rate)
	}
	// Capacity 1: only immediate repeats hit; the sequence has none.
	if hits, _ := c.SimulateLRU(1); hits != 0 {
		t.Errorf("capacity 1: hits=%d, want 0", hits)
	}
	// Capacity >= distinct behaves like unbounded.
	if hits, _ := c.SimulateLRU(4); hits != 8 {
		t.Errorf("capacity 4: hits=%d, want 8", hits)
	}
}

func TestCensusMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCensus()
	c.SetMetrics(reg)
	for _, rep := range fixtureReports() {
		c.Observe(rep)
	}
	if got := reg.Counter("explain.components").Value(); got != 12 {
		t.Errorf("explain.components = %d, want 12", got)
	}
	if got := reg.Gauge("explain.distinct_fingerprints").Value(); got != 4 {
		t.Errorf("explain.distinct_fingerprints = %d, want 4", got)
	}
	// The Prometheus names the dashboard and scrapers see (counters
	// gain the _total suffix at render time).
	if got := obs.PromName("explain.components") + "_total"; got != "licm_explain_components_total" {
		t.Errorf("counter prom name = %q", got)
	}
	if got := obs.PromName("explain.distinct_fingerprints"); got != "licm_explain_distinct_fingerprints" {
		t.Errorf("gauge prom name = %q", got)
	}
}

func TestCensusEmpty(t *testing.T) {
	c := NewCensus()
	s := c.Summarize(5)
	if s.Components != 0 || s.Distinct != 0 || s.HitRate != 0 {
		t.Errorf("empty census summary = %+v", s)
	}
	if hits, rate := c.SimulateLRU(2); hits != 0 || rate != 0 {
		t.Errorf("empty census LRU = %d, %v", hits, rate)
	}
}
