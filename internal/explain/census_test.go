package explain

import (
	"math"
	"testing"

	"licm/internal/obs"
)

const (
	fpA = "1111111111111111"
	fpB = "2222222222222222"
	fpC = "3333333333333333"
	fpD = "4444444444444444"
)

// nsFor gives each fixture fingerprint a fixed per-occurrence cost so
// the totals are hand-checkable.
func nsFor(fp string) int64 {
	switch fp {
	case fpA:
		return 100_000
	case fpB:
		return 200_000
	case fpC:
		return 50_000
	default:
		return 1_000_000
	}
}

func fixtureRun(sense string, fps ...string) Run {
	run := Run{Sense: sense, Proven: true}
	for i, fp := range fps {
		run.Components = append(run.Components, Component{
			Index:       i,
			Fingerprint: fp,
			Vars:        3,
			Cons:        2,
			Solved:      true,
			Nodes:       10,
			LPSolves:    2,
			SolveNs:     nsFor(fp),
			LPNs:        nsFor(fp) / 4,
			Feasible:    true,
			Proven:      true,
		})
	}
	return run
}

// fixtureReports is the hand-checked census workload: 12 component
// occurrences over 4 distinct fingerprints.
//
//	q1: max+min runs, components [A, B]
//	q2: max+min runs, components [A, C]
//	q3: one max run,  components [A, B, C, D]
//
// So A occurs 5x, B 3x, C 3x, D 1x; unbounded hit rate 8/12; LRU
// capacity 2 over the access sequence A,B,A,B,A,C,A,C,A,B,C,D scores
// 6 hits (50%).
func fixtureReports() []*Report {
	return []*Report{
		{Schema: Schema, Query: "q1", Quality: "exact", Runs: []Run{
			fixtureRun("max", fpA, fpB), fixtureRun("min", fpA, fpB)}},
		{Schema: Schema, Query: "q2", Quality: "exact", Runs: []Run{
			fixtureRun("max", fpA, fpC), fixtureRun("min", fpA, fpC)}},
		{Schema: Schema, Query: "q3", Quality: "exact", Runs: []Run{
			fixtureRun("max", fpA, fpB, fpC, fpD)}},
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCensusSummaryHandChecked(t *testing.T) {
	c := NewCensus()
	for _, rep := range fixtureReports() {
		c.Observe(rep)
	}
	s := c.Summarize(3)
	if s.Queries != 3 || s.Runs != 5 {
		t.Errorf("queries=%d runs=%d, want 3 and 5", s.Queries, s.Runs)
	}
	if s.Components != 12 || s.Distinct != 4 {
		t.Errorf("components=%d distinct=%d, want 12 and 4", s.Components, s.Distinct)
	}
	if !almost(s.HitRate, 8.0/12.0) {
		t.Errorf("hit rate = %v, want 8/12", s.HitRate)
	}
	// Per-occurrence costs: A 5×100µs, B 3×200µs, C 3×50µs, D 1×1ms.
	if want := int64(500_000 + 600_000 + 150_000 + 1_000_000); s.TotalSolveNs != want {
		t.Errorf("total solve ns = %d, want %d", s.TotalSolveNs, want)
	}
	wantRec := []RecurrenceBucket{{Times: 1, Fingerprints: 1}, {Times: 3, Fingerprints: 2}, {Times: 5, Fingerprints: 1}}
	if len(s.Recurrence) != len(wantRec) {
		t.Fatalf("recurrence = %+v, want %+v", s.Recurrence, wantRec)
	}
	for i, b := range wantRec {
		if s.Recurrence[i] != b {
			t.Errorf("recurrence[%d] = %+v, want %+v", i, s.Recurrence[i], b)
		}
	}
	// Top-3 by cumulative solve time: D (1ms), B (600µs), A (500µs).
	if len(s.Top) != 3 {
		t.Fatalf("top = %+v, want 3 entries", s.Top)
	}
	for i, want := range []struct {
		fp string
		ns int64
		n  int64
	}{{fpD, 1_000_000, 1}, {fpB, 600_000, 3}, {fpA, 500_000, 5}} {
		got := s.Top[i]
		if got.Fingerprint != want.fp || got.SolveNs != want.ns || got.Count != want.n {
			t.Errorf("top[%d] = %+v, want fp=%s ns=%d count=%d", i, got, want.fp, want.ns, want.n)
		}
	}
}

func TestCensusSimulateLRU(t *testing.T) {
	c := NewCensus()
	for _, rep := range fixtureReports() {
		c.Observe(rep)
	}
	if hits, rate := c.SimulateLRU(0); hits != 8 || !almost(rate, 8.0/12.0) {
		t.Errorf("unbounded: hits=%d rate=%v, want 8 and 8/12", hits, rate)
	}
	// Capacity 2 over A,B,A,B,A,C,A,C,A,B,C,D: hits at positions
	// 3,4,5 (A,B,A), then C evicts B; 7,8,9 (A,C,A) hit; B evicts C,
	// C evicts A, D evicts B — 6 hits.
	if hits, rate := c.SimulateLRU(2); hits != 6 || !almost(rate, 0.5) {
		t.Errorf("capacity 2: hits=%d rate=%v, want 6 and 0.5", hits, rate)
	}
	// Capacity 1: only immediate repeats hit; the sequence has none.
	if hits, _ := c.SimulateLRU(1); hits != 0 {
		t.Errorf("capacity 1: hits=%d, want 0", hits)
	}
	// Capacity >= distinct behaves like unbounded.
	if hits, _ := c.SimulateLRU(4); hits != 8 {
		t.Errorf("capacity 4: hits=%d, want 8", hits)
	}
}

// observeSeq feeds the census a single-run report whose components
// produce exactly the given fingerprint access sequence.
func observeSeq(c *Census, fps ...string) {
	c.Observe(&Report{Schema: Schema, Query: "adv", Quality: "exact",
		Runs: []Run{fixtureRun("max", fps...)}})
}

func TestCensusSimulateLRUCyclicThrash(t *testing.T) {
	// The classic LRU worst case: a cyclic working set one larger than
	// the cache. Every access evicts the entry that is needed soonest,
	// so a capacity-2 cache over A,B,C,A,B,C,A,B,C scores zero hits
	// even though every fingerprint recurs three times.
	c := NewCensus()
	observeSeq(c, fpA, fpB, fpC, fpA, fpB, fpC, fpA, fpB, fpC)
	if hits, rate := c.SimulateLRU(2); hits != 0 || rate != 0 {
		t.Errorf("cyclic capacity 2: hits=%d rate=%v, want 0 and 0", hits, rate)
	}
	// One more slot holds the whole working set: all 6 re-accesses hit.
	if hits, rate := c.SimulateLRU(3); hits != 6 || !almost(rate, 6.0/9.0) {
		t.Errorf("cyclic capacity 3: hits=%d rate=%v, want 6 and 6/9", hits, rate)
	}
	// The unbounded hit rate the Summary reports must not be fooled by
	// eviction order: (components-distinct)/components = 6/9.
	if s := c.Summarize(0); !almost(s.HitRate, 6.0/9.0) {
		t.Errorf("unbounded hit rate = %v, want 6/9", s.HitRate)
	}
}

func TestCensusSimulateLRUEvictJustBeforeReuse(t *testing.T) {
	// Adversarial recurrence: A is touched, pushed to the LRU tail by
	// two distinct fills, evicted by a third, and re-requested on the
	// very next access. Capacity 2 over A,B,C,A,B,C is the minimal such
	// trace — every recurrence arrives exactly one eviction too late.
	c := NewCensus()
	observeSeq(c, fpA, fpB, fpC, fpA)
	observeSeq(c, fpB, fpC)
	if hits, _ := c.SimulateLRU(2); hits != 0 {
		t.Errorf("evict-before-reuse capacity 2: hits=%d, want 0", hits)
	}
	// The same trace with room for three entries never evicts A early:
	// accesses 4..6 all hit.
	if hits, _ := c.SimulateLRU(3); hits != 3 {
		t.Errorf("evict-before-reuse capacity 3: hits=%d, want 3", hits)
	}
	// Interleaving across Observe calls must behave identically to one
	// long report: the census tracks a single global access order.
	c2 := NewCensus()
	observeSeq(c2, fpA, fpB, fpC, fpA, fpB, fpC)
	for cap := 1; cap <= 4; cap++ {
		h1, _ := c.SimulateLRU(cap)
		h2, _ := c2.SimulateLRU(cap)
		if h1 != h2 {
			t.Errorf("capacity %d: split-report hits %d != single-report hits %d", cap, h1, h2)
		}
	}
}

func TestCensusMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCensus()
	c.SetMetrics(reg)
	for _, rep := range fixtureReports() {
		c.Observe(rep)
	}
	if got := reg.Counter("explain.components").Value(); got != 12 {
		t.Errorf("explain.components = %d, want 12", got)
	}
	if got := reg.Gauge("explain.distinct_fingerprints").Value(); got != 4 {
		t.Errorf("explain.distinct_fingerprints = %d, want 4", got)
	}
	// The Prometheus names the dashboard and scrapers see (counters
	// gain the _total suffix at render time).
	if got := obs.PromName("explain.components") + "_total"; got != "licm_explain_components_total" {
		t.Errorf("counter prom name = %q", got)
	}
	if got := obs.PromName("explain.distinct_fingerprints"); got != "licm_explain_distinct_fingerprints" {
		t.Errorf("gauge prom name = %q", got)
	}
}

func TestCensusEmpty(t *testing.T) {
	c := NewCensus()
	s := c.Summarize(5)
	if s.Components != 0 || s.Distinct != 0 || s.HitRate != 0 {
		t.Errorf("empty census summary = %+v", s)
	}
	if hits, rate := c.SimulateLRU(2); hits != 0 || rate != 0 {
		t.Errorf("empty census LRU = %d, %v", hits, rate)
	}
}
