package explain

import (
	"fmt"
	"math/rand"
	"testing"

	"licm/internal/expr"
	"licm/internal/solver"
)

// con is a test shorthand for a projected constraint row.
func con(op expr.Op, rhs int64, terms ...int64) solver.ExplainCon {
	c := solver.ExplainCon{Op: op, RHS: rhs}
	for i := 0; i+1 < len(terms); i += 2 {
		c.Vars = append(c.Vars, int32(terms[i]))
		c.Coef = append(c.Coef, terms[i+1])
	}
	return c
}

// permute renumbers variables by perm (perm[old] = new) and shuffles
// constraint order and within-row term order — the full symmetry
// group the fingerprint must be invariant under.
func permute(nVars int, obj []int64, cons []solver.ExplainCon, perm []int, rng *rand.Rand) (int, []int64, []solver.ExplainCon) {
	newObj := make([]int64, nVars)
	for v := 0; v < nVars; v++ {
		if v < len(obj) {
			newObj[perm[v]] = obj[v]
		}
	}
	newCons := make([]solver.ExplainCon, len(cons))
	for i, c := range cons {
		nc := solver.ExplainCon{Op: c.Op, RHS: c.RHS}
		order := rng.Perm(len(c.Vars))
		for _, k := range order {
			nc.Vars = append(nc.Vars, int32(perm[c.Vars[k]]))
			nc.Coef = append(nc.Coef, c.Coef[k])
		}
		newCons[i] = nc
	}
	rng.Shuffle(len(newCons), func(i, j int) { newCons[i], newCons[j] = newCons[j], newCons[i] })
	return nVars, newObj, newCons
}

// TestFingerprintPermutationInvariance: renaming variables and
// reordering constraints never changes the fingerprint.
func TestFingerprintPermutationInvariance(t *testing.T) {
	cases := []struct {
		name  string
		nVars int
		obj   []int64
		cons  []solver.ExplainCon
	}{
		{
			name:  "cardinality pair",
			nVars: 5,
			obj:   []int64{1, 1, 1, 1, 1},
			cons: []solver.ExplainCon{
				con(expr.GE, 1, 0, 1, 1, 1, 2, 1, 3, 1, 4, 1),
				con(expr.LE, 3, 0, 1, 1, 1, 2, 1, 3, 1, 4, 1),
			},
		},
		{
			name:  "weighted knapsack",
			nVars: 6,
			obj:   []int64{3, 1, 4, 1, 5, 9},
			cons: []solver.ExplainCon{
				con(expr.LE, 10, 0, 2, 1, 3, 2, 5, 3, 7, 4, 1, 5, 2),
				con(expr.GE, 1, 0, 1, 2, 1, 4, 1),
				con(expr.EQ, 2, 1, 1, 3, 1, 5, 1),
			},
		},
		{
			name:  "asymmetric coefficients",
			nVars: 4,
			obj:   []int64{1, 2, 3, 4},
			cons: []solver.ExplainCon{
				con(expr.LE, 5, 0, 1, 1, 2, 2, 3, 3, 4),
				con(expr.GE, 2, 0, 1, 3, 1),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := Fingerprint(tc.nVars, tc.obj, tc.cons)
			if len(want) != 16 {
				t.Fatalf("fingerprint %q, want 16 hex chars", want)
			}
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 25; trial++ {
				perm := rng.Perm(tc.nVars)
				n, obj, cons := permute(tc.nVars, tc.obj, tc.cons, perm, rng)
				if got := Fingerprint(n, obj, cons); got != want {
					t.Fatalf("trial %d perm %v: fingerprint %q != %q", trial, perm, got, want)
				}
			}
		})
	}
}

// TestFingerprintDistinguishesStructure: structurally different
// components get different fingerprints — including the cases a lazy
// canonicalization would merge (changed RHS, changed op, changed
// objective, one extra variable).
func TestFingerprintDistinguishesStructure(t *testing.T) {
	base := func() (int, []int64, []solver.ExplainCon) {
		return 4, []int64{1, 1, 2, 2}, []solver.ExplainCon{
			con(expr.LE, 2, 0, 1, 1, 1, 2, 1, 3, 1),
			con(expr.GE, 1, 0, 1, 1, 1),
		}
	}
	ref := Fingerprint(base())
	mutants := map[string]func() (int, []int64, []solver.ExplainCon){
		"rhs changed": func() (int, []int64, []solver.ExplainCon) {
			n, o, c := base()
			c[0].RHS = 3
			return n, o, c
		},
		"op changed": func() (int, []int64, []solver.ExplainCon) {
			n, o, c := base()
			c[1].Op = expr.EQ
			return n, o, c
		},
		"coef changed": func() (int, []int64, []solver.ExplainCon) {
			n, o, c := base()
			c[0].Coef[2] = 2
			return n, o, c
		},
		"objective changed": func() (int, []int64, []solver.ExplainCon) {
			n, o, c := base()
			o[3] = 5
			return n, o, c
		},
		"objective negated (min run)": func() (int, []int64, []solver.ExplainCon) {
			n, o, c := base()
			for i := range o {
				o[i] = -o[i]
			}
			return n, o, c
		},
		"extra variable": func() (int, []int64, []solver.ExplainCon) {
			_, o, c := base()
			return 5, append(o, 1), c
		},
		"extra constraint": func() (int, []int64, []solver.ExplainCon) {
			n, o, c := base()
			return n, o, append(c, con(expr.LE, 1, 2, 1, 3, 1))
		},
	}
	for name, mk := range mutants {
		if got := Fingerprint(mk()); got == ref {
			t.Errorf("%s: fingerprint collides with base (%s)", name, ref)
		}
	}
}

// TestFingerprintNoCollisionsOnCorpus generates a corpus of random
// structurally-distinct components and checks no two share a
// fingerprint, while a permuted copy of each always does.
func TestFingerprintNoCollisionsOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seen := map[string]string{}
	for i := 0; i < 300; i++ {
		nVars := 2 + rng.Intn(8)
		obj := make([]int64, nVars)
		for v := range obj {
			obj[v] = int64(rng.Intn(7)) - 2
		}
		nCons := 1 + rng.Intn(4)
		cons := make([]solver.ExplainCon, nCons)
		for j := range cons {
			c := solver.ExplainCon{Op: expr.Op(rng.Intn(3)), RHS: int64(rng.Intn(10))}
			for v := 0; v < nVars; v++ {
				if rng.Intn(2) == 0 {
					c.Vars = append(c.Vars, int32(v))
					c.Coef = append(c.Coef, int64(1+rng.Intn(5)))
				}
			}
			if len(c.Vars) == 0 {
				c.Vars = append(c.Vars, 0)
				c.Coef = append(c.Coef, 1)
			}
			cons[j] = c
		}
		desc := fmt.Sprintf("case %d: vars=%d obj=%v cons=%+v", i, nVars, obj, cons)
		fp := Fingerprint(nVars, obj, cons)
		if prev, ok := seen[fp]; ok {
			// Random corpora can contain genuinely isomorphic instances;
			// only flag a collision between different canonical texts.
			t.Logf("shared fingerprint %s:\n  %s\n  %s", fp, prev, desc)
		}
		seen[fp] = desc
		perm := rng.Perm(nVars)
		_, pObj, pCons := permute(nVars, obj, cons, perm, rng)
		if got := Fingerprint(nVars, pObj, pCons); got != fp {
			t.Fatalf("%s: permuted copy got %s, want %s", desc, got, fp)
		}
	}
	if len(seen) < 290 {
		t.Errorf("only %d distinct fingerprints over 300 random cases — collision rate too high", len(seen))
	}
}

// FuzzFingerprint checks the two core properties on fuzzer-chosen
// inputs: the fingerprint is deterministic, and invariant under a
// derived permutation of variables and constraints.
func FuzzFingerprint(f *testing.F) {
	f.Add(int64(1), 5, 2)
	f.Add(int64(99), 3, 1)
	f.Add(int64(-7), 8, 4)
	f.Fuzz(func(t *testing.T, seed int64, nVars, nCons int) {
		if nVars < 1 || nVars > 24 || nCons < 0 || nCons > 12 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		obj := make([]int64, nVars)
		for v := range obj {
			obj[v] = int64(rng.Intn(9)) - 4
		}
		cons := make([]solver.ExplainCon, nCons)
		for j := range cons {
			c := solver.ExplainCon{Op: expr.Op(rng.Intn(3)), RHS: int64(rng.Intn(20)) - 5}
			for v := 0; v < nVars; v++ {
				if rng.Intn(3) == 0 {
					c.Vars = append(c.Vars, int32(v))
					c.Coef = append(c.Coef, int64(rng.Intn(11))-5)
				}
			}
			cons[j] = c
		}
		fp := Fingerprint(nVars, obj, cons)
		if len(fp) != 16 {
			t.Fatalf("fingerprint %q, want 16 hex chars", fp)
		}
		if again := Fingerprint(nVars, obj, cons); again != fp {
			t.Fatalf("not deterministic: %s then %s", fp, again)
		}
		perm := rng.Perm(nVars)
		_, pObj, pCons := permute(nVars, obj, cons, perm, rng)
		if got := Fingerprint(nVars, pObj, pCons); got != fp {
			t.Fatalf("permuted copy got %s, want %s (perm %v)", got, fp, perm)
		}
	})
}
