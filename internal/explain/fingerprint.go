package explain

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"licm/internal/solver"
)

// Fingerprint computes the canonical fingerprint of a projected
// component: a hash of the sort-normalized constraint matrix plus
// objective vector. Two components receive the same fingerprint
// whenever some renumbering of the variables maps one's constraint
// multiset and objective onto the other's — i.e. the fingerprint is
// invariant under tuple/variable permutation and constraint
// reordering, the canonical form the ROADMAP's component solve cache
// will key on. The objective participates deliberately: a min run's
// negated objective yields a different fingerprint, matching the fact
// that a cached max solve cannot answer a min query.
//
// Variables are ranked by Weisfeiler-Lehman-style signature
// refinement over the variable/constraint incidence graph (seeded
// with objective coefficients, a few rounds of neighbor mixing);
// constraint rows are rewritten over the ranks, sorted, and hashed.
// Symmetric variables tie on the same rank, which is exactly what
// makes permuted copies collide — by design.
func Fingerprint(nVars int, obj []int64, cons []solver.ExplainCon) string {
	rank := varRanks(nVars, obj, cons)

	// Canonical rows: each constraint becomes (op, rhs, sorted
	// (rank, coef) pairs); the objective becomes a pseudo-row of
	// sorted (rank, coef) pairs over its non-zero entries.
	rows := make([][]byte, 0, len(cons)+1)
	for i := range cons {
		c := &cons[i]
		pairs := make([][2]int64, len(c.Vars))
		for k, v := range c.Vars {
			pairs[k] = [2]int64{int64(rank[v]), c.Coef[k]}
		}
		sortPairs(pairs)
		row := make([]byte, 0, 24+16*len(pairs))
		row = appendU64(row, 1) // row kind: constraint
		row = appendU64(row, uint64(c.Op))
		row = appendU64(row, uint64(c.RHS))
		for _, p := range pairs {
			row = appendU64(row, uint64(p[0]))
			row = appendU64(row, uint64(p[1]))
		}
		rows = append(rows, row)
	}
	objPairs := make([][2]int64, 0, len(obj))
	for v := 0; v < nVars; v++ {
		if c := objAt(obj, v); c != 0 {
			objPairs = append(objPairs, [2]int64{int64(rank[v]), c})
		}
	}
	sortPairs(objPairs)
	objRow := make([]byte, 0, 8+16*len(objPairs))
	objRow = appendU64(objRow, 2) // row kind: objective
	for _, p := range objPairs {
		objRow = appendU64(objRow, uint64(p[0]))
		objRow = appendU64(objRow, uint64(p[1]))
	}
	rows = append(rows, objRow)
	sort.Slice(rows, func(i, j int) bool { return bytes.Compare(rows[i], rows[j]) < 0 })

	h := sha256.New()
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(nVars))
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(cons)))
	h.Write(hdr[:])
	for _, row := range rows {
		binary.BigEndian.PutUint64(hdr[:8], uint64(len(row)))
		h.Write(hdr[:8])
		h.Write(row)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// ComponentFingerprint fingerprints a solver-recorded component.
func ComponentFingerprint(c solver.ExplainComp) string {
	return Fingerprint(c.Vars, c.Obj, c.Cons)
}

// varRanks assigns each variable a permutation-invariant rank:
// signatures start from the objective coefficient and are refined by
// mixing in the signatures of the constraints touching the variable
// (themselves built from the sorted multiset of their terms). After
// the rounds, variables are ranked by sorted signature; structurally
// interchangeable variables share a rank.
func varRanks(nVars int, obj []int64, cons []solver.ExplainCon) []int32 {
	sig := make([]uint64, nVars)
	for v := range sig {
		sig[v] = mix(0x9e3779b97f4a7c15, uint64(objAt(obj, v)))
	}
	csig := make([]uint64, len(cons))
	terms := make([]uint64, 0, 16)
	touch := make([][]uint64, nVars)
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for i := range cons {
			c := &cons[i]
			terms = terms[:0]
			for k, v := range c.Vars {
				terms = append(terms, mix(uint64(c.Coef[k]), sig[v]))
			}
			sortU64(terms)
			h := mix(uint64(c.Op)+3, uint64(c.RHS))
			for _, t := range terms {
				h = mix(h, t)
			}
			csig[i] = h
		}
		for v := range touch {
			touch[v] = touch[v][:0]
		}
		for i := range cons {
			c := &cons[i]
			for k, v := range c.Vars {
				touch[v] = append(touch[v], mix(csig[i], uint64(c.Coef[k])))
			}
		}
		for v := 0; v < nVars; v++ {
			sortU64(touch[v])
			h := sig[v]
			for _, t := range touch[v] {
				h = mix(h, t)
			}
			sig[v] = h
		}
	}
	// Rank = index of the signature among the sorted distinct values.
	uniq := append([]uint64(nil), sig...)
	sortU64(uniq)
	uniq = dedupU64(uniq)
	rank := make([]int32, nVars)
	for v, s := range sig {
		rank[v] = int32(sort.Search(len(uniq), func(i int) bool { return uniq[i] >= s }))
	}
	return rank
}

// mix combines two words with a splitmix64-style finalizer; it is the
// only hash the refinement needs (collisions merely merge ranks,
// which the final SHA-256 over canonical rows tolerates).
func mix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b + 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// objAt reads an objective coefficient, tolerating a short slice.
func objAt(obj []int64, v int) int64 {
	if v < len(obj) {
		return obj[v]
	}
	return 0
}

func sortU64(a []uint64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func dedupU64(a []uint64) []uint64 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func sortPairs(p [][2]int64) {
	sort.Slice(p, func(i, j int) bool {
		if p[i][0] != p[j][0] {
			return p[i][0] < p[j][0]
		}
		return p[i][1] < p[j][1]
	})
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}
