package explain

import (
	"sort"

	"licm/internal/obs"
)

// Census accumulates component fingerprints across a workload of
// explain reports and answers the question the ROADMAP's component
// solve cache hinges on: how often do structurally identical
// components recur, and how much solve time would a cache save? It
// tracks distinct-vs-total counts, a recurrence histogram, cumulative
// per-fingerprint cost, and can simulate an LRU cache of any capacity
// over the observed access sequence.
type Census struct {
	reg          *obs.Registry
	queries      int
	runs         int
	total        int64
	totalSolveNs int64
	byFP         map[string]*FPStat
	// seq is the fingerprint access sequence in observation order —
	// what an actual cache would see — kept for LRU simulation.
	seq []string
}

// FPStat aggregates every occurrence of one fingerprint.
type FPStat struct {
	Fingerprint string `json:"fingerprint"`
	Count       int64  `json:"count"`
	// Vars/Cons describe the component shape (identical for every
	// occurrence by construction of the fingerprint).
	Vars     int   `json:"vars"`
	Cons     int   `json:"cons"`
	Nodes    int64 `json:"nodes"`
	LPSolves int64 `json:"lp_solves"`
	SolveNs  int64 `json:"solve_ns"`
	LPNs     int64 `json:"lp_ns"`
}

// NewCensus returns an empty census.
func NewCensus() *Census {
	return &Census{byFP: make(map[string]*FPStat)}
}

// SetMetrics wires the census to a metrics registry: Observe then
// bumps the explain.components counter (licm_explain_components_total)
// and the explain.distinct_fingerprints gauge
// (licm_explain_distinct_fingerprints). Nil unwires.
func (c *Census) SetMetrics(reg *obs.Registry) { c.reg = reg }

// Observe folds one report into the census.
func (c *Census) Observe(rep *Report) {
	if rep == nil {
		return
	}
	c.queries++
	var added int64
	for ri := range rep.Runs {
		run := &rep.Runs[ri]
		c.runs++
		for ci := range run.Components {
			comp := &run.Components[ci]
			fp := comp.Fingerprint
			st := c.byFP[fp]
			if st == nil {
				st = &FPStat{Fingerprint: fp, Vars: comp.Vars, Cons: comp.Cons}
				c.byFP[fp] = st
			}
			st.Count++
			st.Nodes += comp.Nodes
			st.LPSolves += comp.LPSolves
			st.SolveNs += comp.SolveNs
			st.LPNs += comp.LPNs
			c.total++
			added++
			c.totalSolveNs += comp.SolveNs
			c.seq = append(c.seq, fp)
		}
	}
	if c.reg != nil {
		c.reg.Counter("explain.components").Add(added)
		c.reg.Gauge("explain.distinct_fingerprints").Set(int64(len(c.byFP)))
	}
}

// RecurrenceBucket counts how many distinct fingerprints were seen
// exactly Times times.
type RecurrenceBucket struct {
	Times        int64 `json:"times"`
	Fingerprints int   `json:"fingerprints"`
}

// Summary is the census rollup.
type Summary struct {
	Queries    int   `json:"queries"`
	Runs       int   `json:"runs"`
	Components int64 `json:"components"`
	Distinct   int   `json:"distinct"`
	// HitRate is the simulated hit rate of an unbounded component
	// cache: (components - distinct) / components. Every occurrence
	// after a fingerprint's first would be served from cache.
	HitRate      float64            `json:"hit_rate"`
	TotalSolveNs int64              `json:"total_solve_ns"`
	Recurrence   []RecurrenceBucket `json:"recurrence"`
	// Top holds the costliest fingerprints by cumulative solve time,
	// descending — where a cache (or a per-shape optimization) pays.
	Top []FPStat `json:"top"`
}

// Summarize builds the rollup, keeping the topK costliest
// fingerprints (topK <= 0 keeps all).
func (c *Census) Summarize(topK int) Summary {
	s := Summary{
		Queries:      c.queries,
		Runs:         c.runs,
		Components:   c.total,
		Distinct:     len(c.byFP),
		TotalSolveNs: c.totalSolveNs,
	}
	if c.total > 0 {
		s.HitRate = float64(c.total-int64(len(c.byFP))) / float64(c.total)
	}
	counts := make(map[int64]int)
	for _, st := range c.byFP {
		counts[st.Count]++
		s.Top = append(s.Top, *st)
	}
	for times, n := range counts {
		s.Recurrence = append(s.Recurrence, RecurrenceBucket{Times: times, Fingerprints: n})
	}
	sort.Slice(s.Recurrence, func(i, j int) bool { return s.Recurrence[i].Times < s.Recurrence[j].Times })
	sort.Slice(s.Top, func(i, j int) bool {
		if s.Top[i].SolveNs != s.Top[j].SolveNs {
			return s.Top[i].SolveNs > s.Top[j].SolveNs
		}
		return s.Top[i].Fingerprint < s.Top[j].Fingerprint
	})
	if topK > 0 && len(s.Top) > topK {
		s.Top = s.Top[:topK]
	}
	return s
}

// SimulateLRU replays the observed fingerprint sequence against an
// LRU cache of the given capacity (entries, not bytes) and returns
// the hit count and rate. Capacity <= 0 means unbounded, which
// reduces to the (components - distinct) figure.
func (c *Census) SimulateLRU(capacity int) (hits int64, rate float64) {
	if len(c.seq) == 0 {
		return 0, 0
	}
	if capacity <= 0 {
		hits = c.total - int64(len(c.byFP))
		return hits, float64(hits) / float64(c.total)
	}
	// Doubly-linked LRU over a map; small capacities dominate usage.
	type node struct {
		fp         string
		prev, next *node
	}
	var head, tail *node
	idx := make(map[string]*node, capacity)
	unlink := func(n *node) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			tail = n.prev
		}
		n.prev, n.next = nil, nil
	}
	pushFront := func(n *node) {
		n.next = head
		if head != nil {
			head.prev = n
		}
		head = n
		if tail == nil {
			tail = n
		}
	}
	for _, fp := range c.seq {
		if n, ok := idx[fp]; ok {
			hits++
			unlink(n)
			pushFront(n)
			continue
		}
		if len(idx) >= capacity {
			ev := tail
			unlink(ev)
			delete(idx, ev.fp)
		}
		n := &node{fp: fp}
		idx[fp] = n
		pushFront(n)
	}
	return hits, float64(hits) / float64(len(c.seq))
}
