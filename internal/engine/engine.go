// Package engine is a small deterministic relational engine: tables of
// constant values with selection, projection, intersection, product,
// join, count-predicate and aggregation operators whose semantics
// mirror the LICM operator translations in internal/core, evaluated on
// ordinary (certain) data.
//
// It plays the role Microsoft SQL Server plays in the paper's
// evaluation: the Monte-Carlo baseline samples a possible world,
// instantiates it as engine tables, and runs the query here. The
// tests in internal/core also use it as the ground-truth oracle when
// checking that LICM query answering commutes with world
// instantiation.
package engine

import (
	"fmt"
	"sort"

	"licm/internal/core"
)

// Table is a deterministic relation: named columns and rows of
// constant values (bag semantics unless an operator dedupes).
type Table struct {
	Name string
	Cols []string
	Rows [][]core.Value
}

// New creates an empty table.
func New(name string, cols ...string) *Table {
	return &Table{Name: name, Cols: append([]string(nil), cols...)}
}

// Insert appends a row.
func (t *Table) Insert(vals ...core.Value) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("engine: table %q: %d values for %d columns", t.Name, len(vals), len(t.Cols)))
	}
	t.Rows = append(t.Rows, append([]core.Value(nil), vals...))
}

// InsertRows appends pre-built rows without copying.
func (t *Table) InsertRows(rows [][]core.Value) {
	t.Rows = append(t.Rows, rows...)
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

func (t *Table) colIndex(col string) int {
	for i, c := range t.Cols {
		if c == col {
			return i
		}
	}
	panic(fmt.Sprintf("engine: table %q has no column %q", t.Name, col))
}

// Row gives typed access to one row through the schema.
type Row struct {
	tab  *Table
	vals []core.Value
}

// RowAt returns an accessor for the i-th row.
func (t *Table) RowAt(i int) Row { return Row{tab: t, vals: t.Rows[i]} }

// Get returns the value of the named column.
func (r Row) Get(col string) core.Value { return r.vals[r.tab.colIndex(col)] }

// Int returns the named column as an integer.
func (r Row) Int(col string) int64 { return r.Get(col).Int() }

// Str returns the named column as a string.
func (r Row) Str(col string) string { return r.Get(col).Str() }

// Select returns the rows satisfying the predicate.
func (t *Table) Select(pred func(Row) bool) *Table {
	out := New("σ("+t.Name+")", t.Cols...)
	for _, row := range t.Rows {
		if pred(Row{tab: t, vals: row}) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Project returns the distinct values of the given columns (set
// semantics, matching relational algebra π).
func (t *Table) Project(cols ...string) *Table {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.colIndex(c)
	}
	out := New("π("+t.Name+")", cols...)
	seen := make(map[string]bool)
	for _, row := range t.Rows {
		vals := make([]core.Value, len(cols))
		for i, j := range idx {
			vals[i] = row[j]
		}
		k := core.Key(vals)
		if !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, vals)
		}
	}
	return out
}

// Distinct dedupes full rows.
func (t *Table) Distinct() *Table {
	out := t.Project(t.Cols...)
	out.Name = t.Name
	return out
}

// Intersect returns the rows present in both tables (set semantics).
func (t *Table) Intersect(u *Table) (*Table, error) {
	if len(t.Cols) != len(u.Cols) {
		return nil, fmt.Errorf("engine: intersect schema mismatch: %v vs %v", t.Cols, u.Cols)
	}
	for i := range t.Cols {
		if t.Cols[i] != u.Cols[i] {
			return nil, fmt.Errorf("engine: intersect schema mismatch: %v vs %v", t.Cols, u.Cols)
		}
	}
	in := make(map[string]bool, len(u.Rows))
	for _, row := range u.Rows {
		in[core.Key(row)] = true
	}
	out := New(t.Name+"∩"+u.Name, t.Cols...)
	seen := make(map[string]bool)
	for _, row := range t.Rows {
		k := core.Key(row)
		if in[k] && !seen[k] {
			seen[k] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// Union returns the distinct rows present in either table (set
// semantics, matching core.Union).
func (t *Table) Union(u *Table) (*Table, error) {
	if len(t.Cols) != len(u.Cols) {
		return nil, fmt.Errorf("engine: union schema mismatch: %v vs %v", t.Cols, u.Cols)
	}
	for i := range t.Cols {
		if t.Cols[i] != u.Cols[i] {
			return nil, fmt.Errorf("engine: union schema mismatch: %v vs %v", t.Cols, u.Cols)
		}
	}
	out := New(t.Name+"∪"+u.Name, t.Cols...)
	seen := make(map[string]bool)
	for _, rows := range [2][][]core.Value{t.Rows, u.Rows} {
		for _, row := range rows {
			k := core.Key(row)
			if !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return out, nil
}

// Product returns the Cartesian product, with columns prefixed by the
// input table names exactly as core.Product does.
func (t *Table) Product(u *Table) *Table {
	cols := make([]string, 0, len(t.Cols)+len(u.Cols))
	for _, c := range t.Cols {
		cols = append(cols, t.Name+"."+c)
	}
	for _, c := range u.Cols {
		cols = append(cols, u.Name+"."+c)
	}
	out := New(t.Name+"×"+u.Name, cols...)
	for _, r1 := range t.Rows {
		for _, r2 := range u.Rows {
			row := make([]core.Value, 0, len(cols))
			row = append(row, r1...)
			row = append(row, r2...)
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Join returns the natural equijoin on the given columns; the output
// schema is t's columns followed by u's non-join columns (matching
// core.Join).
func (t *Table) Join(u *Table, on ...string) *Table {
	idx1 := make([]int, len(on))
	idx2 := make([]int, len(on))
	for i, c := range on {
		idx1[i] = t.colIndex(c)
		idx2[i] = u.colIndex(c)
	}
	keep2 := make([]int, 0, len(u.Cols))
	cols := append([]string(nil), t.Cols...)
	for j, c := range u.Cols {
		joinCol := false
		for _, oc := range on {
			if c == oc {
				joinCol = true
				break
			}
		}
		if !joinCol {
			keep2 = append(keep2, j)
			cols = append(cols, c)
		}
	}
	out := New(t.Name+"⋈"+u.Name, cols...)
	buckets := make(map[string][][]core.Value)
	buf := make([]core.Value, len(on))
	for _, row := range u.Rows {
		for k, j := range idx2 {
			buf[k] = row[j]
		}
		key := core.Key(buf)
		buckets[key] = append(buckets[key], row)
	}
	for _, r1 := range t.Rows {
		for k, j := range idx1 {
			buf[k] = r1[j]
		}
		for _, r2 := range buckets[core.Key(buf)] {
			row := make([]core.Value, 0, len(cols))
			row = append(row, r1...)
			for _, j := range keep2 {
				row = append(row, r2[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// CountPredicate groups the distinct rows by the given columns and
// keeps the groups whose distinct-row count satisfies op d; the
// result has the group columns as schema (matching
// core.CountPredicate).
func (t *Table) CountPredicate(groupCols []string, op core.CmpOp, d int) *Table {
	dist := t.Distinct()
	idx := make([]int, len(groupCols))
	for i, c := range groupCols {
		idx[i] = dist.colIndex(c)
	}
	counts := make(map[string]int)
	vals := make(map[string][]core.Value)
	var order []string
	buf := make([]core.Value, len(groupCols))
	for _, row := range dist.Rows {
		for i, j := range idx {
			buf[i] = row[j]
		}
		k := core.Key(buf)
		if _, ok := counts[k]; !ok {
			order = append(order, k)
			vals[k] = append([]core.Value(nil), buf...)
		}
		counts[k]++
	}
	out := New(fmt.Sprintf("count(%s)", t.Name), groupCols...)
	for _, k := range order {
		ok := false
		switch op {
		case core.CountLE:
			ok = counts[k] <= d
		case core.CountGE:
			ok = counts[k] >= d
		}
		if ok {
			out.Rows = append(out.Rows, vals[k])
		}
	}
	return out
}

// Count returns the number of rows (bag semantics; apply Distinct
// first for set counts).
func (t *Table) Count() int64 { return int64(len(t.Rows)) }

// Sum returns the sum of an integer column over all rows.
func (t *Table) Sum(col string) int64 {
	j := t.colIndex(col)
	var s int64
	for _, row := range t.Rows {
		s += row[j].Int()
	}
	return s
}

// SortedKeys returns the multiset of row keys, sorted — a convenient
// canonical form for comparing tables in tests.
func (t *Table) SortedKeys() []string {
	keys := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		keys[i] = core.Key(row)
	}
	sort.Strings(keys)
	return keys
}
