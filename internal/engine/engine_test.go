package engine

import (
	"reflect"
	"testing"

	"licm/internal/core"
)

func iv(i int64) core.Value  { return core.IntVal(i) }
func sv(s string) core.Value { return core.StrVal(s) }

func sample() *Table {
	t := New("TransItem", "TID", "Item", "Price")
	t.Insert(iv(1), sv("beer"), iv(5))
	t.Insert(iv(1), sv("wine"), iv(12))
	t.Insert(iv(2), sv("beer"), iv(5))
	t.Insert(iv(2), sv("shampoo"), iv(3))
	t.Insert(iv(3), sv("wine"), iv(12))
	return t
}

func TestInsertAndAccessors(t *testing.T) {
	tab := sample()
	if tab.Len() != 5 {
		t.Fatalf("Len = %d", tab.Len())
	}
	row := tab.RowAt(1)
	if row.Int("TID") != 1 || row.Str("Item") != "wine" || row.Get("Price").Int() != 12 {
		t.Error("accessors wrong")
	}
}

func TestInsertArityPanics(t *testing.T) {
	tab := New("T", "A")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tab.Insert(iv(1), iv(2))
}

func TestUnknownColumnPanics(t *testing.T) {
	tab := sample()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tab.RowAt(0).Get("Nope")
}

func TestSelect(t *testing.T) {
	tab := sample()
	out := tab.Select(func(r Row) bool { return r.Str("Item") == "beer" })
	if out.Len() != 2 {
		t.Fatalf("Len = %d", out.Len())
	}
	if out.Name != "σ(TransItem)" {
		t.Errorf("name = %q", out.Name)
	}
}

func TestProjectDistinct(t *testing.T) {
	tab := sample()
	out := tab.Project("TID")
	if out.Len() != 3 {
		t.Fatalf("distinct TIDs = %d, want 3", out.Len())
	}
	out2 := tab.Project("Item", "Price")
	if out2.Len() != 3 {
		t.Fatalf("distinct (Item,Price) = %d, want 3", out2.Len())
	}
}

func TestDistinct(t *testing.T) {
	tab := New("T", "A")
	tab.Insert(iv(1))
	tab.Insert(iv(1))
	tab.Insert(iv(2))
	out := tab.Distinct()
	if out.Len() != 2 || out.Name != "T" {
		t.Fatalf("Distinct: %v", out)
	}
}

func TestIntersect(t *testing.T) {
	a := New("A", "X")
	a.Insert(iv(1))
	a.Insert(iv(2))
	a.Insert(iv(2))
	b := New("B", "X")
	b.Insert(iv(2))
	b.Insert(iv(3))
	out, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0].Int() != 2 {
		t.Fatalf("intersect: %v", out.Rows)
	}
	c := New("C", "Y")
	if _, err := a.Intersect(c); err == nil {
		t.Error("expected schema error")
	}
	d := New("D", "X", "Y")
	if _, err := a.Intersect(d); err == nil {
		t.Error("expected schema error")
	}
}

func TestProduct(t *testing.T) {
	a := New("A", "X")
	a.Insert(iv(1))
	a.Insert(iv(2))
	b := New("B", "Y")
	b.Insert(iv(10))
	out := a.Product(b)
	if out.Len() != 2 {
		t.Fatalf("product len = %d", out.Len())
	}
	if !reflect.DeepEqual(out.Cols, []string{"A.X", "B.Y"}) {
		t.Errorf("cols = %v", out.Cols)
	}
}

func TestJoin(t *testing.T) {
	items := sample()
	price := New("Loc", "TID", "Location")
	price.Insert(iv(1), iv(100))
	price.Insert(iv(2), iv(200))
	out := items.Join(price, "TID")
	if out.Len() != 4 { // TID 3 unmatched
		t.Fatalf("join len = %d", out.Len())
	}
	if !reflect.DeepEqual(out.Cols, []string{"TID", "Item", "Price", "Location"}) {
		t.Errorf("cols = %v", out.Cols)
	}
}

func TestCountPredicate(t *testing.T) {
	tab := sample()
	// Transactions with >= 2 items.
	out := tab.CountPredicate([]string{"TID"}, core.CountGE, 2)
	if out.Len() != 2 {
		t.Fatalf("groups = %d, want 2 (TIDs 1,2)", out.Len())
	}
	// Transactions with <= 1 item.
	out = tab.CountPredicate([]string{"TID"}, core.CountLE, 1)
	if out.Len() != 1 || out.Rows[0][0].Int() != 3 {
		t.Fatalf("LE groups: %v", out.Rows)
	}
}

func TestCountPredicateDedupes(t *testing.T) {
	tab := New("T", "G", "X")
	tab.Insert(iv(1), iv(7))
	tab.Insert(iv(1), iv(7)) // duplicate must count once
	out := tab.CountPredicate([]string{"G"}, core.CountGE, 2)
	if out.Len() != 0 {
		t.Fatalf("duplicates should collapse: %v", out.Rows)
	}
}

func TestCountAndSum(t *testing.T) {
	tab := sample()
	if tab.Count() != 5 {
		t.Errorf("Count = %d", tab.Count())
	}
	if got := tab.Sum("Price"); got != 37 {
		t.Errorf("Sum = %d, want 37", got)
	}
}

func TestSortedKeys(t *testing.T) {
	a := New("A", "X")
	a.Insert(iv(2))
	a.Insert(iv(1))
	b := New("B", "X")
	b.Insert(iv(1))
	b.Insert(iv(2))
	if !reflect.DeepEqual(a.SortedKeys(), b.SortedKeys()) {
		t.Error("SortedKeys should canonicalize order")
	}
}

func TestInsertRows(t *testing.T) {
	a := New("A", "X")
	a.InsertRows([][]core.Value{{iv(1)}, {iv(2)}})
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestUnion(t *testing.T) {
	a := New("A", "X")
	a.Insert(iv(1))
	a.Insert(iv(2))
	a.Insert(iv(2)) // duplicate inside one input
	b := New("B", "X")
	b.Insert(iv(2))
	b.Insert(iv(3))
	out, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("union rows = %d, want 3", out.Len())
	}
	c := New("C", "Y")
	if _, err := a.Union(c); err == nil {
		t.Error("want schema error")
	}
	d := New("D", "X", "Y")
	if _, err := a.Union(d); err == nil {
		t.Error("want arity error")
	}
}
