// Package cert defines the licm-cert/1 certificate format and its
// independent verifier: the third static-analysis layer of the repo
// (after internal/check over data and internal/analysis over source),
// this one over *solver artifacts*.
//
// A certificate is the machine-checkable record of one solver run's
// optimality claim: per component, the projected constraint matrix
// the claim is about (keyed by the same canonical fingerprint the
// explain layer uses), an incumbent witness, and a branch tree whose
// leaves are closed by justifications replayable in exact rational
// arithmetic — weak-duality bounds (dual), exact feasible points with
// a one-unit dominance bound (intopt), and Farkas infeasibility
// vectors (farkas). Verify replays every justification in
// math/big.Rat and checks branch-tree coverage of the full 0/1
// space, so a verdict of "verified" is sound even though the solver
// searched in floats.
//
// The verifier deliberately re-implements the leaf arithmetic rather
// than calling into internal/solver's emitter-side checks: two
// independent implementations of the soundness-critical math mean a
// shared bug cannot silently bless a wrong optimum — the point of
// certifying at all (the ROADMAP's solve-cache and warm-start work
// rewrites exactly the code that produces these claims).
package cert

import (
	"fmt"
	"math/big"

	"licm/internal/explain"
	"licm/internal/expr"
	"licm/internal/solver"
)

// Schema identifies the certificate format. The verifier rejects
// records with any other value, so schema drift fails loudly.
const Schema = "licm-cert/1"

// Leaf kinds and component statuses (mirrors internal/solver's
// constants; duplicated by design — see the package comment).
const (
	LeafDual   = "dual"
	LeafIntopt = "intopt"
	LeafFarkas = "farkas"

	StatusOptimal    = "optimal"
	StatusInfeasible = "infeasible"
	StatusSkipped    = "skipped"
)

// Certificate is one solver run's certificate (one JSONL line).
// Values are in the solver's internal maximization frame: a "min"
// run's base/value/objectives are the negated ones, exactly as the
// solver recorded them (negate to recover the reported minimum).
type Certificate struct {
	Schema string `json:"schema"`
	// Query/Scheme/K label the solve, when the caller knows them.
	Query  string `json:"query,omitempty"`
	Scheme string `json:"scheme,omitempty"`
	K      int    `json:"k,omitempty"`

	Sense string `json:"sense"`
	// Base is the run value not accounted to any component (objective
	// constant plus presolve fixings); Value the run's final value.
	// When Proven with no error, base + sum(component values) must
	// equal value exactly.
	Base   int64  `json:"base"`
	Value  int64  `json:"value"`
	Proven bool   `json:"proven"`
	Err    string `json:"err,omitempty"`

	Comps []Comp `json:"comps"`
}

// Comp is one component's certificate.
type Comp struct {
	Index int `json:"index"`
	// Fingerprint is the canonical matrix hash (explain.Fingerprint)
	// of (vars, obj, cons) — the key a component solve cache uses, and
	// the binding between this proof and the matrix it talks about.
	Fingerprint string  `json:"fingerprint"`
	Vars        int     `json:"vars"`
	Cons        []Con   `json:"cons"`
	Obj         []int64 `json:"obj"`

	Status string `json:"status"`
	Skip   string `json:"skip,omitempty"`

	Value   int64  `json:"value,omitempty"`
	Witness []int8 `json:"witness,omitempty"`
	Tree    *Node  `json:"tree,omitempty"`
}

// Con is one constraint row over local variable ids.
type Con struct {
	Vars []int32 `json:"vars"`
	Coef []int64 `json:"coef"`
	Op   string  `json:"op"` // "le" | "ge" | "eq"
	RHS  int64   `json:"rhs"`
}

// Node is a proof-tree node. Branch nodes carry Var (>= 0) and both
// children; leaves carry Var == -1 and a Leaf kind. Y holds one
// exact rational multiplier per constraint row as big.Rat strings
// ("p/q" or an integer); an absent Y is the all-zero vector. Bound
// is the leaf's claimed weak-duality box bound; X an intopt leaf's
// feasible 0/1 point.
type Node struct {
	Var  int32  `json:"var"`
	Zero *Node  `json:"zero,omitempty"`
	One  *Node  `json:"one,omitempty"`
	Leaf string `json:"leaf,omitempty"`

	Y     []string `json:"y,omitempty"`
	X     []int8   `json:"x,omitempty"`
	Bound string   `json:"bound,omitempty"`
}

// opNames maps expr.Op values to their wire form.
func opName(op expr.Op) (string, error) {
	switch op {
	case expr.LE:
		return "le", nil
	case expr.GE:
		return "ge", nil
	case expr.EQ:
		return "eq", nil
	default:
		return "", fmt.Errorf("cert: unknown operator %d", op)
	}
}

func parseOp(s string) (expr.Op, error) {
	switch s {
	case "le":
		return expr.LE, nil
	case "ge":
		return expr.GE, nil
	case "eq":
		return expr.EQ, nil
	default:
		return 0, fmt.Errorf("cert: unknown operator %q", s)
	}
}

// Build converts a recorder's runs into certificates, one per run,
// labeled with the caller's query/scheme/k. The recorder may be nil
// or empty (returns nil).
func Build(query, scheme string, k int, rec *solver.CertRecorder) ([]*Certificate, error) {
	runs := rec.Runs()
	if len(runs) == 0 {
		return nil, nil
	}
	out := make([]*Certificate, 0, len(runs))
	for _, run := range runs {
		c := &Certificate{
			Schema: Schema,
			Query:  query,
			Scheme: scheme,
			K:      k,
			Sense:  run.Sense,
			Base:   run.Base,
			Value:  run.Value,
			Proven: run.Proven,
			Err:    run.Err,
			Comps:  make([]Comp, 0, len(run.Comps)),
		}
		for i := range run.Comps {
			cc, err := buildComp(&run.Comps[i])
			if err != nil {
				return nil, err
			}
			c.Comps = append(c.Comps, cc)
		}
		out = append(out, c)
	}
	return out, nil
}

func buildComp(sc *solver.CertComp) (Comp, error) {
	cc := Comp{
		Index:       sc.Index,
		Fingerprint: explain.Fingerprint(sc.Vars, sc.Obj, sc.Cons),
		Vars:        sc.Vars,
		Obj:         sc.Obj,
		Status:      sc.Status,
		Skip:        sc.Skip,
		Value:       sc.Value,
		Witness:     sc.Witness,
	}
	if cc.Obj == nil {
		cc.Obj = []int64{}
	}
	cc.Cons = make([]Con, len(sc.Cons))
	for i, con := range sc.Cons {
		op, err := opName(con.Op)
		if err != nil {
			return Comp{}, err
		}
		cc.Cons[i] = Con{Vars: con.Vars, Coef: con.Coef, Op: op, RHS: con.RHS}
		if cc.Cons[i].Vars == nil {
			cc.Cons[i].Vars = []int32{}
			cc.Cons[i].Coef = []int64{}
		}
	}
	var err error
	cc.Tree, err = buildNode(sc.Tree)
	if err != nil {
		return Comp{}, err
	}
	return cc, nil
}

func buildNode(sn *solver.CertNode) (*Node, error) {
	if sn == nil {
		return nil, nil
	}
	nd := &Node{Var: sn.Var, Leaf: sn.Leaf, X: sn.X}
	if sn.Y != nil {
		nd.Y = make([]string, len(sn.Y))
		for i, y := range sn.Y {
			if y == nil {
				nd.Y[i] = "0"
				continue
			}
			nd.Y[i] = y.RatString()
		}
	}
	if sn.Bound != nil {
		nd.Bound = sn.Bound.RatString()
	}
	var err error
	if nd.Zero, err = buildNode(sn.Zero); err != nil {
		return nil, err
	}
	if nd.One, err = buildNode(sn.One); err != nil {
		return nil, err
	}
	return nd, nil
}

// parseRat parses a big.Rat wire string strictly.
func parseRat(s string) (*big.Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return nil, fmt.Errorf("cert: malformed rational %q", s)
	}
	return r, nil
}
