package cert

import "encoding/json"

// Mutant is a deliberately corrupted copy of a certificate, used to
// prove the verifier actually rejects tampering (licmverify
// -mutate-check and the CI cert gate). Every generated mutant is
// guaranteed-invalid by construction: a verifier that accepts one is
// broken.
type Mutant struct {
	Name string
	Cert *Certificate
}

// Mutants derives the deterministic corruption suite applicable to c.
// Each mutation targets a distinct verifier check: value accounting,
// witness binding, fingerprint binding, matrix binding, tree
// coverage, decision consistency, schema tag, and bound cross-check.
func Mutants(c *Certificate) []Mutant {
	var out []Mutant
	add := func(name string, mutate func(m *Certificate) bool) {
		m := clone(c)
		if mutate(m) {
			out = append(out, Mutant{Name: name, Cert: m})
		}
	}

	// Value accounting: inflating the run value breaks
	// base + sum(component optima) == value on a clean proven run.
	if c.Proven && c.Err == "" && len(c.Comps) > 0 {
		add("value-inflate", func(m *Certificate) bool {
			m.Value++
			return true
		})
	}

	// Witness binding: flipping a witness bit on a variable with a
	// nonzero objective coefficient changes the achieved value away
	// from the claim (or breaks feasibility).
	add("witness-flip", func(m *Certificate) bool {
		for i := range m.Comps {
			cc := &m.Comps[i]
			if cc.Status != StatusOptimal {
				continue
			}
			for j := range cc.Witness {
				if j < len(cc.Obj) && cc.Obj[j] != 0 {
					cc.Witness[j] = 1 - cc.Witness[j]
					return true
				}
			}
		}
		return false
	})

	// Fingerprint binding: a proof keyed to a different matrix hash.
	add("fingerprint-tamper", func(m *Certificate) bool {
		for i := range m.Comps {
			fp := []byte(m.Comps[i].Fingerprint)
			if len(fp) == 0 {
				continue
			}
			if fp[0] == '0' {
				fp[0] = '1'
			} else {
				fp[0] = '0'
			}
			m.Comps[i].Fingerprint = string(fp)
			return true
		}
		return false
	})

	// Matrix binding: editing a row under an unchanged fingerprint.
	add("rhs-tamper", func(m *Certificate) bool {
		for i := range m.Comps {
			if len(m.Comps[i].Cons) > 0 {
				m.Comps[i].Cons[0].RHS++
				return true
			}
		}
		return false
	})

	// Tree coverage: a branch that no longer covers both values.
	add("drop-child", func(m *Certificate) bool {
		for i := range m.Comps {
			if nd := firstBranch(m.Comps[i].Tree); nd != nil {
				nd.One = nil
				return true
			}
		}
		return false
	})

	// Decision consistency: wrapping a branch root in a second branch
	// on the same variable decides it twice on one path.
	add("dup-decision", func(m *Certificate) bool {
		for i := range m.Comps {
			root := m.Comps[i].Tree
			if root == nil || root.Var < 0 {
				continue
			}
			m.Comps[i].Tree = &Node{Var: root.Var, Zero: root, One: cloneNode(root)}
			return true
		}
		return false
	})

	// Schema tag: a format nobody defined.
	add("schema-tag", func(m *Certificate) bool {
		m.Schema = "licm-cert/0"
		return true
	})

	// Bound cross-check: a claimed bound the replay cannot reproduce.
	add("bound-tamper", func(m *Certificate) bool {
		for i := range m.Comps {
			if nd := firstClaimedBound(m.Comps[i].Tree); nd != nil {
				nd.Bound += "1"
				return true
			}
		}
		return false
	})

	return out
}

func clone(c *Certificate) *Certificate {
	b, err := json.Marshal(c)
	if err != nil {
		panic("cert: clone marshal: " + err.Error())
	}
	m := &Certificate{}
	if err := json.Unmarshal(b, m); err != nil {
		panic("cert: clone unmarshal: " + err.Error())
	}
	return m
}

func cloneNode(nd *Node) *Node {
	if nd == nil {
		return nil
	}
	cp := *nd
	if nd.Y != nil {
		cp.Y = append([]string(nil), nd.Y...)
	}
	if nd.X != nil {
		cp.X = append([]int8(nil), nd.X...)
	}
	cp.Zero = cloneNode(nd.Zero)
	cp.One = cloneNode(nd.One)
	return &cp
}

func firstBranch(nd *Node) *Node {
	if nd == nil || nd.Var < 0 {
		return nil
	}
	return nd
}

func firstClaimedBound(nd *Node) *Node {
	if nd == nil {
		return nil
	}
	if nd.Var < 0 {
		if nd.Bound != "" {
			return nd
		}
		return nil
	}
	if got := firstClaimedBound(nd.Zero); got != nil {
		return got
	}
	return firstClaimedBound(nd.One)
}
