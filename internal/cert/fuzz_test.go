package cert_test

// FuzzCertRoundTrip drives the full certificate pipeline on random
// small stores: certify a live solve, round-trip the certificate
// through strict JSONL, verify it clean, then demand that every
// deterministic corruption of it is rejected. This is the executable
// form of the soundness contract: a correct solve always yields an
// accepted certificate, and no mutant ever survives.

import (
	"bytes"
	"testing"

	"licm/internal/cert"
	"licm/internal/expr"
	"licm/internal/solver"
)

// fuzzReader drains a fuzz payload one bounded value at a time.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) intn(n int) int { return int(r.byte()) % n }

func (r *fuzzReader) done() bool { return r.pos >= len(r.data) }

// genProblem builds a random small store: up to 10 variables, up to
// 10 rows mixing small-coefficient constraints over arbitrary
// variable subsets with unit cardinality rows.
func genProblem(r *fuzzReader) *solver.Problem {
	numVars := 1 + r.intn(10)
	var cons []expr.Constraint
	for len(cons) < 10 && !r.done() {
		nTerms := 1 + r.intn(5)
		lin := expr.Lin{}
		seen := map[expr.Var]bool{}
		added := 0
		for t := 0; t < nTerms; t++ {
			v := expr.Var(r.intn(numVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			coef := int64(r.intn(5)) - 2
			if coef == 0 {
				coef = 1
			}
			lin = lin.AddTerm(v, coef)
			added++
		}
		if added == 0 {
			continue
		}
		op := expr.Op(r.intn(3))
		rhs := int64(r.intn(9)) - 3
		cons = append(cons, expr.NewConstraint(lin, op, rhs))
	}
	obj := expr.Lin{}
	for v := 0; v < numVars; v++ {
		obj = obj.AddTerm(expr.Var(v), int64(r.intn(7))-3)
	}
	return &solver.Problem{NumVars: numVars, Constraints: cons, Objective: obj}
}

func FuzzCertRoundTrip(f *testing.F) {
	f.Add([]byte{5, 3, 1, 0, 2, 2, 1, 4, 7, 3, 0, 1})
	f.Add([]byte{9, 4, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6})
	f.Add([]byte{1, 1, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		p := genProblem(&fuzzReader{data: data})
		crec := &solver.CertRecorder{}
		opts := solver.DefaultOptions()
		opts.Certify = crec
		res, solveErr := solver.Maximize(p, opts)
		certs, err := cert.Build("fuzz", "", 0, crec)
		if err != nil {
			t.Fatal(err)
		}
		if len(certs) != 1 {
			t.Fatalf("built %d certificates, want 1", len(certs))
		}

		var buf bytes.Buffer
		if err := cert.WriteJSONL(&buf, certs[0]); err != nil {
			t.Fatal(err)
		}
		back, err := cert.ReadJSONL(&buf, true)
		if err != nil {
			t.Fatalf("strict round trip failed: %v", err)
		}
		c := back[0]

		v, err := cert.Verify(c)
		if err != nil {
			t.Fatalf("live certificate rejected: %v (solve err %v)", err, solveErr)
		}
		if solveErr == nil && res.Proven {
			if len(v.Skipped) != 0 {
				t.Fatalf("proven solve produced skipped components: %v", v.Skipped)
			}
			if c.Value != res.Value {
				t.Fatalf("certificate value %d, solver reported %d", c.Value, res.Value)
			}
		}

		for _, m := range cert.Mutants(c) {
			var mb bytes.Buffer
			if err := cert.WriteJSONL(&mb, m.Cert); err != nil {
				t.Fatal(err)
			}
			mback, err := cert.ReadJSONL(&mb, true)
			if err != nil {
				continue // rejected at the strict-read gate
			}
			if _, err := cert.Verify(mback[0]); err == nil {
				t.Fatalf("mutant %q accepted by the verifier", m.Name)
			}
		}
	})
}
