package cert

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Validate checks the structural invariants a well-formed certificate
// satisfies — shapes and tags only. The mathematical claims are
// Verify's job; Validate is the cheap strict-read gate.
func (c *Certificate) Validate() error {
	if c.Schema != Schema {
		return fmt.Errorf("cert: schema %q, want %q", c.Schema, Schema)
	}
	if c.Sense != "max" && c.Sense != "min" {
		return fmt.Errorf("cert: sense %q, want max or min", c.Sense)
	}
	if c.Comps == nil {
		return fmt.Errorf("cert: missing comps array")
	}
	for i := range c.Comps {
		cc := &c.Comps[i]
		if len(cc.Fingerprint) != 16 {
			return fmt.Errorf("cert: component %d: fingerprint %q, want 16 hex chars", i, cc.Fingerprint)
		}
		if cc.Vars < 0 {
			return fmt.Errorf("cert: component %d: negative variable count", i)
		}
		if len(cc.Obj) != cc.Vars {
			return fmt.Errorf("cert: component %d: objective has %d coefficients, want %d", i, len(cc.Obj), cc.Vars)
		}
		for j := range cc.Cons {
			if _, err := parseOp(cc.Cons[j].Op); err != nil {
				return fmt.Errorf("cert: component %d row %d: %w", i, j, err)
			}
			if len(cc.Cons[j].Vars) != len(cc.Cons[j].Coef) {
				return fmt.Errorf("cert: component %d row %d: vars/coef length mismatch", i, j)
			}
		}
		switch cc.Status {
		case StatusOptimal, StatusInfeasible, StatusSkipped:
		default:
			return fmt.Errorf("cert: component %d: unknown status %q", i, cc.Status)
		}
	}
	return nil
}

// WriteJSONL appends the certificate as one JSON line.
func WriteJSONL(w io.Writer, c *Certificate) error {
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSONL parses a stream of certificates, one JSON object per line
// (blank lines skipped). With strict set, unknown fields and Validate
// failures are errors — the same schema-drift guard the explain layer
// uses.
func ReadJSONL(r io.Reader, strict bool) ([]*Certificate, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 64<<20)
	var out []*Certificate
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		c := &Certificate{}
		dec := json.NewDecoder(bytes.NewReader(raw))
		if strict {
			dec.DisallowUnknownFields()
		}
		if err := dec.Decode(c); err != nil {
			return nil, fmt.Errorf("cert: line %d: %w", line, err)
		}
		if strict {
			if err := c.Validate(); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		}
		out = append(out, c)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
